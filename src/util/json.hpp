/// \file json.hpp
/// Minimal JSON value type, parser, and serializer — no third-party
/// dependency, just what the corpus subsystem needs: manifests, the parse
/// metadata cache, and the JSONL results database (corpus/results_db.hpp).
///
/// Numbers are stored as double; integer counters round-trip exactly up to
/// 2^53, which covers every statistic the results schema records.  Object
/// keys are kept in a std::map, so serialization order is deterministic
/// (sorted by key) — diffs of emitted files are stable across runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

namespace pilot::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  /// One template for every arithmetic type (int, size_t, uint64_t, …);
  /// explicit double/bool constructors above take precedence.
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T> &&
                                                    !std::is_same_v<T, bool>>>
  Value(T i) : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  [[nodiscard]] Type type() const {
    return static_cast<Type>(data_.index());
  }
  [[nodiscard]] bool is_null() const { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type() == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type() == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type() == Type::kString; }
  [[nodiscard]] bool is_array() const { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type() == Type::kObject; }

  /// Loose accessors: return the fallback on a type mismatch, so readers of
  /// externally-edited files degrade gracefully instead of throwing.
  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return is_bool() ? std::get<bool>(data_) : fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const {
    return is_number() ? std::get<double>(data_) : fallback;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const {
    return is_number() ? static_cast<std::int64_t>(std::get<double>(data_))
                       : fallback;
  }
  [[nodiscard]] std::uint64_t as_uint(std::uint64_t fallback = 0) const {
    return is_number() && std::get<double>(data_) >= 0.0
               ? static_cast<std::uint64_t>(std::get<double>(data_))
               : fallback;
  }
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object lookup; returns a shared null Value when absent or not an
  /// object, so chained lookups are safe: v.at("a").at("b").as_int().
  [[nodiscard]] const Value& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const {
    return is_object() && as_object().count(key) > 0;
  }

  /// Compact single-line serialization (the JSONL row format).
  [[nodiscard]] std::string dump() const;

 private:
  std::variant<std::monostate, bool, double, std::string, Array, Object>
      data_;
};

/// Parses one JSON document.  Throws std::runtime_error with a byte-offset
/// annotated message on malformed input or trailing garbage.
[[nodiscard]] Value parse(const std::string& text);

/// Parses one document from `text` starting at `pos`; advances `pos` past
/// the value and any trailing whitespace.  The JSONL reader's primitive.
[[nodiscard]] Value parse_at(const std::string& text, std::size_t* pos);

/// Serializes a string with JSON escaping, including the quotes.
[[nodiscard]] std::string escape(const std::string& text);

}  // namespace pilot::json
