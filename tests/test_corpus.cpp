/// Corpus-subsystem tests: the Case bridge over synthetic suites, manifest
/// loading, directory scanning with the parse-metadata cache (cold, warm,
/// stale, malformed), suite export round trips, and run_matrix over a mixed
/// synthetic + on-disk corpus.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "aig/aiger_io.hpp"
#include "check/runner.hpp"
#include "circuits/families.hpp"
#include "corpus/corpus.hpp"
#include "corpus/manifest.hpp"

namespace fs = std::filesystem;

namespace pilot::corpus {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& name) {
    path_ = fs::temp_directory_path() /
            ("pilot_corpus_test_" + name + "_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] fs::path path() const { return path_; }

 private:
  fs::path path_;
};

void write_file(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

TEST(Corpus, ExpectedStringsRoundTrip) {
  EXPECT_EQ(expected_from_string("safe"), Expected::kSafe);
  EXPECT_EQ(expected_from_string("unsat"), Expected::kSafe);
  EXPECT_EQ(expected_from_string("unsafe"), Expected::kUnsafe);
  EXPECT_EQ(expected_from_string("sat"), Expected::kUnsafe);
  EXPECT_EQ(expected_from_string("unknown"), Expected::kUnknown);
  EXPECT_EQ(expected_from_string(""), Expected::kUnknown);
  EXPECT_THROW((void)expected_from_string("maybe"), std::invalid_argument);
  for (const Expected e :
       {Expected::kSafe, Expected::kUnsafe, Expected::kUnknown}) {
    EXPECT_EQ(expected_from_string(to_string(e)), e);
  }
}

TEST(Corpus, FromCircuitCarriesVerdictAndMetadata) {
  const circuits::CircuitCase cc = circuits::counter_unsafe(4, 6);
  const Case c = from_circuit(cc);
  EXPECT_EQ(c.name, cc.name);
  EXPECT_EQ(c.family, "counter");
  EXPECT_EQ(c.expected, Expected::kUnsafe);
  EXPECT_EQ(c.expected_cex_length, cc.expected_cex_length);
  EXPECT_TRUE(c.source.empty());
  EXPECT_EQ(c.num_latches, cc.aig.num_latches());
  EXPECT_EQ(c.size_estimate, cc.aig.num_ands() + cc.aig.num_latches());
  const aig::Aig loaded = c.load();
  EXPECT_EQ(loaded.num_latches(), cc.aig.num_latches());
  EXPECT_EQ(loaded.num_ands(), cc.aig.num_ands());
}

TEST(Corpus, SuiteCasesMirrorTheSuite) {
  const auto suite = circuits::make_suite(circuits::SuiteSize::kTiny);
  const auto cases = suite_cases(circuits::SuiteSize::kTiny);
  ASSERT_EQ(cases.size(), suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(cases[i].name, suite[i].name);
    EXPECT_EQ(cases[i].expected, expected_from_safe(suite[i].expected_safe));
  }
}

TEST(Corpus, ResolveCorpusUnderstandsSuiteSpecs) {
  EXPECT_EQ(resolve_corpus("suite:tiny").size(),
            circuits::make_suite(circuits::SuiteSize::kTiny).size());
  EXPECT_THROW((void)resolve_corpus("suite:giant"), std::invalid_argument);
  EXPECT_THROW((void)resolve_corpus("/no/such/path"), std::runtime_error);
}

TEST(Manifest, ExportSuiteRoundTrips) {
  TempDir dir("export");
  const Manifest written =
      export_suite(circuits::SuiteSize::kTiny, dir.str());
  EXPECT_TRUE(fs::exists(dir.path() / kManifestFilename));

  const ScanReport report = load_corpus(dir.str());
  EXPECT_TRUE(report.errors.empty());
  ASSERT_EQ(report.cases.size(), written.entries.size());
  EXPECT_EQ(report.parsed, written.entries.size());  // cold cache
  for (std::size_t i = 0; i < report.cases.size(); ++i) {
    EXPECT_EQ(report.cases[i].name, written.entries[i].name);
    EXPECT_EQ(report.cases[i].expected, written.entries[i].expected);
    EXPECT_EQ(report.cases[i].family, "aiger");
    EXPECT_FALSE(report.cases[i].content_hash.empty());
  }
  // A case materializes to the same circuit shape it was exported from.
  const auto suite = circuits::make_suite(circuits::SuiteSize::kTiny);
  const aig::Aig loaded = report.cases[0].load();
  EXPECT_EQ(loaded.num_latches(), suite[0].aig.num_latches());
}

TEST(Manifest, CacheSkipsUnchangedAndReparsesStaleEntries) {
  TempDir dir("cache");
  const circuits::CircuitCase a = circuits::token_ring_safe(4);
  const circuits::CircuitCase b = circuits::counter_unsafe(4, 6);
  aig::write_aiger_file(a.aig, (dir.path() / "a.aag").string());
  aig::write_aiger_file(b.aig, (dir.path() / "b.aag").string());

  const ScanReport cold = load_corpus(dir.str());
  EXPECT_EQ(cold.parsed, 2u);
  EXPECT_EQ(cold.cached, 0u);
  ASSERT_EQ(cold.cases.size(), 2u);
  EXPECT_TRUE(fs::exists(dir.path() / kCacheFilename));

  const ScanReport warm = load_corpus(dir.str());
  EXPECT_EQ(warm.parsed, 0u);
  EXPECT_EQ(warm.cached, 2u);
  ASSERT_EQ(warm.cases.size(), 2u);
  EXPECT_EQ(warm.cases[0].content_hash, cold.cases[0].content_hash);
  EXPECT_EQ(warm.cases[0].num_latches, cold.cases[0].num_latches);

  // Stale entry: replace a.aag with a different circuit (different size,
  // so the size+mtime check must miss) — only it is re-parsed.
  const circuits::CircuitCase bigger = circuits::token_ring_safe(7);
  aig::write_aiger_file(bigger.aig, (dir.path() / "a.aag").string());
  const ScanReport stale = load_corpus(dir.str());
  EXPECT_EQ(stale.parsed, 1u);
  EXPECT_EQ(stale.cached, 1u);
  ASSERT_EQ(stale.cases.size(), 2u);
  EXPECT_EQ(stale.cases[0].num_latches, bigger.aig.num_latches());
  EXPECT_NE(stale.cases[0].content_hash, cold.cases[0].content_hash);
}

TEST(Manifest, MalformedAagIsReportedAndSkipped) {
  TempDir dir("malformed");
  aig::write_aiger_file(circuits::mutex_safe().aig,
                        (dir.path() / "good.aag").string());
  write_file(dir.path() / "broken.aag", "aag 1 2 3\nnot an aiger file\n");

  const ScanReport report = load_corpus(dir.str());
  ASSERT_EQ(report.cases.size(), 1u);
  EXPECT_EQ(report.cases[0].name, "good");
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("broken.aag"), std::string::npos);

  // The malformed file must not poison the cache: a re-scan still reports
  // it and still serves the good file from cache.
  const ScanReport again = load_corpus(dir.str());
  EXPECT_EQ(again.cached, 1u);
  EXPECT_EQ(again.errors.size(), 1u);
}

TEST(Manifest, ManifestSelectsAndAnnotatesCases) {
  TempDir dir("manifest");
  aig::write_aiger_file(circuits::token_ring_safe(4).aig,
                        (dir.path() / "ring.aag").string());
  aig::write_aiger_file(circuits::counter_unsafe(4, 6).aig,
                        (dir.path() / "cnt.aag").string());
  aig::write_aiger_file(circuits::mutex_safe().aig,
                        (dir.path() / "ignored.aag").string());
  write_file(dir.path() / kManifestFilename,
             R"({"version":1,"cases":[)"
             R"({"name":"ring","path":"ring.aag","expect":"safe",)"
             R"("tags":["ring","hwmcc"]},)"
             R"({"path":"cnt.aag","expect":"unsafe","cex_depth":6}]})");

  const ScanReport report = load_corpus(dir.str());
  EXPECT_TRUE(report.errors.empty());
  ASSERT_EQ(report.cases.size(), 2u);  // ignored.aag not in the manifest
  EXPECT_EQ(report.cases[0].name, "ring");
  EXPECT_EQ(report.cases[0].expected, Expected::kSafe);
  ASSERT_EQ(report.cases[0].tags.size(), 2u);
  EXPECT_EQ(report.cases[0].tags[1], "hwmcc");
  EXPECT_EQ(report.cases[1].name, "cnt");  // name defaults to the stem
  EXPECT_EQ(report.cases[1].expected, Expected::kUnsafe);
  EXPECT_EQ(report.cases[1].expected_cex_length, 6);
}

TEST(Manifest, MissingFileIsAnErrorNotACrash) {
  TempDir dir("missing");
  write_file(dir.path() / kManifestFilename,
             R"({"version":1,"cases":[{"path":"gone.aag","expect":"safe"}]})");
  const ScanReport report = load_corpus(dir.str());
  EXPECT_TRUE(report.cases.empty());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("gone.aag"), std::string::npos);
}

TEST(Manifest, MalformedManifestThrows) {
  TempDir dir("badmanifest");
  write_file(dir.path() / kManifestFilename, "{not json");
  EXPECT_THROW((void)load_corpus(dir.str()), std::runtime_error);
  write_file(dir.path() / kManifestFilename, R"({"cases":[]})");
  EXPECT_THROW((void)load_corpus(dir.str()), std::runtime_error);
}

TEST(RunMatrix, MixedSyntheticAndOnDiskCorpus) {
  TempDir dir("mixed");
  const circuits::CircuitCase disk_case = circuits::counter_unsafe(4, 6);
  aig::write_aiger_file(disk_case.aig, (dir.path() / "cnt.aag").string());
  write_file(dir.path() / kManifestFilename,
             R"({"version":1,"cases":[)"
             R"({"path":"cnt.aag","expect":"unsafe","cex_depth":6}]})");

  std::vector<Case> cases = load_corpus(dir.str()).cases;
  cases.push_back(from_circuit(circuits::token_ring_safe(4)));
  ASSERT_EQ(cases.size(), 2u);

  check::RunMatrixOptions options;
  options.budget_ms = 30000;
  options.strict = true;  // construction-known verdicts: gate must hold
  const std::vector<std::string> engines{"ic3-ctg", "bmc"};
  const auto records = check::run_matrix(cases, engines, options);
  ASSERT_EQ(records.size(), 4u);

  // Case-major deterministic order: (cnt × ic3-ctg), (cnt × bmc), ...
  EXPECT_EQ(records[0].case_name, "cnt");
  EXPECT_EQ(records[0].engine, "ic3-ctg");
  EXPECT_EQ(records[0].verdict, ic3::Verdict::kUnsafe);
  EXPECT_EQ(records[1].engine, "bmc");
  EXPECT_EQ(records[1].verdict, ic3::Verdict::kUnsafe);
  EXPECT_EQ(records[2].case_name, cases[1].name);
  EXPECT_EQ(records[2].verdict, ic3::Verdict::kSafe);
  // BMC cannot prove the safe ring; it must finish without a verdict.
  EXPECT_EQ(records[3].verdict, ic3::Verdict::kUnknown);
  for (const auto& r : records) EXPECT_TRUE(r.error.empty());
}

TEST(RunMatrix, LoadFailureBecomesAnErrorRecord) {
  Case broken;
  broken.name = "broken";
  broken.family = "aiger";
  broken.source = "/no/such/file.aag";
  broken.load = []() { return aig::read_aiger_file("/no/such/file.aag"); };

  check::RunMatrixOptions options;
  options.budget_ms = 1000;
  options.strict = true;  // errors are not soundness violations
  const auto records =
      check::run_matrix(std::vector<Case>{broken},
                        std::vector<std::string>{"ic3-ctg", "bmc"}, options);
  ASSERT_EQ(records.size(), 2u);
  for (const auto& r : records) {
    EXPECT_FALSE(r.error.empty());
    EXPECT_FALSE(r.solved);
    EXPECT_EQ(r.verdict, ic3::Verdict::kUnknown);
  }
}

TEST(RunMatrix, UnknownEngineSpecThrowsUpFront) {
  const std::vector<Case> cases{from_circuit(circuits::mutex_safe())};
  check::RunMatrixOptions options;
  EXPECT_THROW((void)check::run_matrix(
                   cases, std::vector<std::string>{"no-such-engine"},
                   options),
               std::invalid_argument);
  EXPECT_THROW((void)check::run_matrix(
                   cases, std::vector<std::string>{"portfolio:bad+mix"},
                   options),
               std::invalid_argument);
}

TEST(RunMatrix, ExternalCancelShortCircuitsRemainingJobs) {
  // A pre-stopped token: every job must come back kUnknown immediately.
  CancelToken cancel;
  cancel.request_stop();
  check::RunMatrixOptions options;
  options.budget_ms = 60000;
  options.cancel = &cancel;
  options.jobs = 2;
  const auto records = check::run_matrix(
      suite_cases(circuits::SuiteSize::kTiny),
      std::vector<std::string>{"ic3-ctg"}, options);
  for (const auto& r : records) {
    EXPECT_FALSE(r.solved);
    EXPECT_EQ(r.verdict, ic3::Verdict::kUnknown);
  }
}

}  // namespace
}  // namespace pilot::corpus
