/// \file lifter.hpp
/// Lifting of concrete states to cubes, by SAT cores or ternary simulation.
///
/// SAT mode: given a full predecessor assignment (s, y) whose unique
/// successor lies in cube t, the query  s ∧ y ∧ T ∧ ¬t'  is unsatisfiable;
/// the final-conflict core over the s-literals is a partial cube every one
/// of whose states still transitions into t under input y.
///
/// Ternary mode (the original PDR approach): X-out one latch of s at a
/// time and keep the X if three-valued simulation still produces definite,
/// matching values on the successor cube (and keeps the constraints and —
/// for bad lifting — the bad signal definite).  No solver involved.
///
/// Two ternary backends (Config::lift_sim) produce bit-identical cubes:
///  * kByte   — the reference TernarySimulator, one full sweep per latch.
///  * kPacked — PackedTernarySimulator: one batched sweep triages 32
///    X-out candidates at once against the original assignment (a
///    candidate whose target goes X there can never be dropped later,
///    because ternary simulation is monotone in X), then the survivors are
///    confirmed one at a time with event-driven re-evaluation of only the
///    affected fanout cone.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "aig/simulation.hpp"
#include "ic3/config.hpp"
#include "ic3/cube.hpp"
#include "ic3/stats.hpp"
#include "sat/solver.hpp"
#include "ts/transition_system.hpp"
#include "util/timer.hpp"

namespace pilot::ic3 {

class Lifter {
 public:
  Lifter(const ts::TransitionSystem& ts, const Config& cfg, Ic3Stats& stats);

  /// Shrinks a full predecessor cube: every state of the result reaches a
  /// state in `successor` in one step under `inputs`.
  Cube lift_predecessor(const Cube& pred_full, const std::vector<Lit>& inputs,
                        const Cube& successor, const Deadline& deadline);

  /// Shrinks a full state in the bad cone: every state of the result can
  /// produce bad with `inputs`.
  Cube lift_bad(const Cube& state_full, const std::vector<Lit>& inputs,
                const Deadline& deadline);

 private:
  /// Judges one simulated frame: true when the lifting target (successor
  /// cube / bad signal, plus the invariant constraints) is still definite.
  /// The lane selects a pattern of the packed simulator; the byte
  /// simulator ignores it.
  using TargetFn = std::function<bool(std::size_t lane)>;

  void maybe_rebuild();
  Cube core_projection(const Cube& full) const;
  /// Value of `lit` on the active ternary backend.
  [[nodiscard]] aig::TV sim_value(aig::AigLit lit, std::size_t lane) const;
  /// Shared ternary-lifting entry; dispatches on the active backend.
  Cube ternary_lift(const Cube& full, const std::vector<Lit>& inputs,
                    const TargetFn& target_definite);
  Cube ternary_lift_byte(const Cube& full, const std::vector<Lit>& inputs,
                         const TargetFn& target_definite);
  Cube ternary_lift_packed(const Cube& full, const std::vector<Lit>& inputs,
                           const TargetFn& target_definite);
  Cube ternary_lift_predecessor(const Cube& pred_full,
                                const std::vector<Lit>& inputs,
                                const Cube& successor);
  Cube ternary_lift_bad(const Cube& state_full,
                        const std::vector<Lit>& inputs);

  const ts::TransitionSystem& ts_;
  const Config& cfg_;
  Ic3Stats& stats_;
  std::unique_ptr<sat::Solver> solver_;
  std::unique_ptr<aig::TernarySimulator> ternary_;
  std::unique_ptr<aig::PackedTernarySimulator> packed_;
  std::vector<aig::TV> latch_values_;
  std::vector<aig::TV> input_values_;
  std::size_t retired_tmp_ = 0;
};

}  // namespace pilot::ic3
