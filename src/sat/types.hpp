/// \file types.hpp
/// Core SAT domain types: variables, literals, and three-valued booleans.
///
/// The encoding follows the MiniSat convention: a literal packs a variable
/// index and a sign into one int (`2*var + sign`), so literals index arrays
/// directly and negation is a single XOR.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pilot::sat {

/// Variable index, 0-based.  Negative values are reserved for "undefined".
using Var = std::int32_t;

inline constexpr Var kVarUndef = -1;

/// A literal: variable plus sign.  sign()==true means the negated phase.
class Lit {
 public:
  constexpr Lit() = default;

  /// Builds a literal from a variable and a sign (true = negated).
  static constexpr Lit make(Var v, bool sign = false) {
    Lit l;
    l.code_ = (v << 1) | static_cast<std::int32_t>(sign);
    return l;
  }

  /// Reconstructs a literal from its dense index (see index()).
  static constexpr Lit from_index(std::int32_t index) {
    Lit l;
    l.code_ = index;
    return l;
  }

  [[nodiscard]] constexpr Var var() const { return code_ >> 1; }
  [[nodiscard]] constexpr bool sign() const { return (code_ & 1) != 0; }

  /// Dense non-negative index usable as an array subscript.
  [[nodiscard]] constexpr std::int32_t index() const { return code_; }

  [[nodiscard]] constexpr bool is_undef() const { return code_ < 0; }

  constexpr Lit operator~() const {
    Lit l;
    l.code_ = code_ ^ 1;
    return l;
  }

  /// Same variable with requested sign applied on top (xor).
  constexpr Lit operator^(bool flip) const {
    Lit l;
    l.code_ = code_ ^ static_cast<std::int32_t>(flip);
    return l;
  }

  constexpr auto operator<=>(const Lit&) const = default;

  /// Human-readable form, e.g. "3" / "-3" (1-based like DIMACS).
  [[nodiscard]] std::string to_string() const {
    return (sign() ? "-" : "") + std::to_string(var() + 1);
  }

 private:
  std::int32_t code_ = -2;
};

inline constexpr Lit kLitUndef{};

/// Three-valued boolean: true / false / undefined.
class LBool {
 public:
  constexpr LBool() = default;
  explicit constexpr LBool(std::uint8_t code) : code_(code) {}
  explicit constexpr LBool(bool b) : code_(b ? 0 : 1) {}

  [[nodiscard]] constexpr bool is_true() const { return code_ == 0; }
  [[nodiscard]] constexpr bool is_false() const { return code_ == 1; }
  [[nodiscard]] constexpr bool is_undef() const { return code_ >= 2; }

  constexpr bool operator==(const LBool& o) const {
    // All "undefined" codes compare equal.
    return (is_undef() && o.is_undef()) || code_ == o.code_;
  }

  /// Flips true<->false when `flip`; undefined is preserved.
  constexpr LBool operator^(bool flip) const {
    if (is_undef()) return *this;
    return LBool(static_cast<std::uint8_t>(code_ ^ (flip ? 1 : 0)));
  }

  [[nodiscard]] constexpr std::uint8_t code() const { return code_; }

 private:
  std::uint8_t code_ = 2;
};

inline constexpr LBool l_True{std::uint8_t{0}};
inline constexpr LBool l_False{std::uint8_t{1}};
inline constexpr LBool l_Undef{std::uint8_t{2}};

/// Outcome of a solve() call.
enum class SolveResult { kSat, kUnsat, kUnknown };

}  // namespace pilot::sat

template <>
struct std::hash<pilot::sat::Lit> {
  std::size_t operator()(pilot::sat::Lit l) const noexcept {
    return std::hash<std::int32_t>{}(l.index());
  }
};
