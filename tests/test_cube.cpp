/// Cube tests, including property-based checks of the paper's Theorems
/// 3.2–3.4 about diff sets (Definition 3.1) — the logical foundation the
/// prediction mechanism rests on.
#include <gtest/gtest.h>

#include "ic3/cube.hpp"
#include "util/rng.hpp"

namespace pilot::ic3 {
namespace {

Lit pos(int v) { return Lit::make(v); }
Lit neg(int v) { return Lit::make(v, true); }

TEST(Cube, FromLitsSortsAndDeduplicates) {
  const Cube c = Cube::from_lits({pos(5), pos(1), pos(5), neg(3)});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
  EXPECT_TRUE(c.contains(pos(1)));
  EXPECT_TRUE(c.contains(neg(3)));
  EXPECT_FALSE(c.contains(pos(3)));
}

TEST(Cube, SubsetOf) {
  const Cube small = Cube::from_lits({pos(1), neg(3)});
  const Cube big = Cube::from_lits({pos(1), neg(3), pos(7)});
  EXPECT_TRUE(small.subset_of(big));
  EXPECT_FALSE(big.subset_of(small));
  EXPECT_TRUE(small.subset_of(small));
  EXPECT_TRUE(Cube{}.subset_of(small));
}

TEST(Cube, WithAndWithout) {
  const Cube c = Cube::from_lits({pos(1), pos(4)});
  EXPECT_EQ(c.without(pos(1)), Cube::from_lits({pos(4)}));
  EXPECT_EQ(c.without(pos(9)), c);  // absent literal: no-op
  EXPECT_EQ(c.with_lit(pos(2)), Cube::from_lits({pos(1), pos(2), pos(4)}));
  EXPECT_EQ(c.with_lit(pos(4)), c);  // present literal: no-op
}

TEST(Cube, DiffSetDefinition) {
  // diff(a,b) = literals of a whose negation is in b (Definition 3.1).
  const Cube a = Cube::from_lits({pos(1), neg(2), pos(3)});
  const Cube b = Cube::from_lits({neg(1), pos(2), pos(3)});
  const Cube d = a.diff(b);
  EXPECT_EQ(d, Cube::from_lits({pos(1), neg(2)}));
  // Asymmetry: diff(b,a) has b's polarities.
  EXPECT_EQ(b.diff(a), Cube::from_lits({neg(1), pos(2)}));
}

TEST(Cube, NegatedLitsFormsTheLemmaClause) {
  const Cube c = Cube::from_lits({pos(1), neg(2)});
  const std::vector<Lit> clause = c.negated_lits();
  ASSERT_EQ(clause.size(), 2u);
  EXPECT_EQ(clause[0], neg(1));
  EXPECT_EQ(clause[1], pos(2));
}

TEST(Cube, HashingIsContentBased) {
  const Cube a = Cube::from_lits({pos(2), neg(7)});
  const Cube b = Cube::from_lits({neg(7), pos(2)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  const Cube c = Cube::from_lits({pos(2), pos(7)});
  EXPECT_NE(a, c);
}

// --- property tests of the paper's theorems ---------------------------------

class DiffSetProperties : public ::testing::TestWithParam<int> {
 protected:
  Cube random_cube(Rng& rng, int num_vars, double density) {
    std::vector<Lit> lits;
    for (int v = 0; v < num_vars; ++v) {
      if (rng.chance(density)) lits.push_back(Lit::make(v, rng.chance(0.5)));
    }
    return Cube::from_lits(std::move(lits));
  }
};

TEST_P(DiffSetProperties, Theorem32_EmptyDiffIffCubesIntersect) {
  // Theorem 3.2: for non-⊥ cubes a, b:  a ∧ b = ⊥  ⟺  diff(a,b) ≠ ∅.
  Rng rng(GetParam() * 131 + 7);
  for (int round = 0; round < 200; ++round) {
    const Cube a = random_cube(rng, 10, 0.5);
    const Cube b = random_cube(rng, 10, 0.5);
    // a ∧ b = ⊥ iff some variable appears with opposite signs.
    bool contradict = false;
    for (const Lit l : a) {
      if (b.contains(~l)) contradict = true;
    }
    EXPECT_EQ(contradict, !a.diff(b).empty());
    EXPECT_EQ(contradict, !b.diff(a).empty());  // symmetry of emptiness
  }
}

TEST_P(DiffSetProperties, Theorem33_IntersectingTheDiffPreservesNonEmpty) {
  // Theorem 3.3: diff(a,b) ≠ ∅ ∧ c ∩ diff(a,b) ≠ ∅ ⟹ diff(c,b) ≠ ∅.
  Rng rng(GetParam() * 733 + 3);
  for (int round = 0; round < 200; ++round) {
    const Cube a = random_cube(rng, 10, 0.5);
    const Cube b = random_cube(rng, 10, 0.5);
    const Cube c = random_cube(rng, 10, 0.5);
    const Cube d = a.diff(b);
    if (d.empty() || c.intersect(d).empty()) continue;
    EXPECT_FALSE(c.diff(b).empty());
  }
}

TEST_P(DiffSetProperties, Theorem34_ImplicationIsSupersetOfLiterals) {
  // Theorem 3.4: a ⇒ b iff b ⊆ a (for consistent cubes).  Check the
  // literal-set direction against brute-force state semantics.
  Rng rng(GetParam() * 517 + 1);
  const int num_vars = 6;
  for (int round = 0; round < 100; ++round) {
    const Cube a = random_cube(rng, num_vars, 0.6);
    const Cube b = random_cube(rng, num_vars, 0.4);
    auto satisfies = [&](std::uint32_t assignment, const Cube& c) {
      for (const Lit l : c) {
        const bool bit = ((assignment >> l.var()) & 1u) != 0;
        if (bit == l.sign()) return false;
      }
      return true;
    };
    bool implies = true;
    for (std::uint32_t s = 0; s < (1u << num_vars); ++s) {
      if (satisfies(s, a) && !satisfies(s, b)) {
        implies = false;
        break;
      }
    }
    EXPECT_EQ(implies, b.subset_of(a))
        << "a=" << a.to_string() << " b=" << b.to_string();
  }
}

TEST_P(DiffSetProperties, Equation6_CandidateConstruction) {
  // §3.2: c3 = c2 ∪ {l}, l ∈ diff(b, t) with c2 ⊆ b gives
  // t ⊭ c3, b ⊨ c3, c3 ⇒ c2  (Equations 2-4).
  Rng rng(GetParam() * 89 + 17);
  for (int round = 0; round < 200; ++round) {
    const Cube b = random_cube(rng, 10, 0.7);
    const Cube t = random_cube(rng, 10, 0.9);
    const Cube ds = b.diff(t);
    if (ds.empty() || b.empty()) continue;
    // c2: random subset of b.
    std::vector<Lit> sub;
    for (const Lit l : b) {
      if (rng.chance(0.5)) sub.push_back(l);
    }
    const Cube c2 = Cube::from_sorted(std::move(sub));
    const Lit extension = ds[rng.below(ds.size())];
    const Cube c3 = c2.with_lit(extension);
    EXPECT_FALSE(c3.diff(t).empty());   // Eq. 2 via Thm 3.2: c3 ∧ t = ⊥
    EXPECT_TRUE(c3.subset_of(b));       // Eq. 3: b ⊨ c3 (Thm 3.4)
    EXPECT_TRUE(c2.subset_of(c3));      // Eq. 4: c3 ⇒ c2
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffSetProperties, ::testing::Range(0, 6));

}  // namespace
}  // namespace pilot::ic3
