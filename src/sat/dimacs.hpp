/// \file dimacs.hpp
/// DIMACS CNF reading and writing.
///
/// Used by the test suite (round-trip and cross-validation against a
/// brute-force evaluator) and handy for debugging: any solver query can be
/// dumped and replayed offline.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace pilot::sat {

class Solver;

/// A CNF formula in memory: variable count plus clause list.
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;

  /// Evaluates the formula under a complete assignment
  /// (`assignment[v]` = value of variable v).  Used by brute-force checks.
  [[nodiscard]] bool evaluate(const std::vector<bool>& assignment) const;
};

/// Parses DIMACS text.  Throws std::runtime_error on malformed input.
Cnf parse_dimacs(std::istream& in);
Cnf parse_dimacs_string(const std::string& text);

/// Renders a formula in DIMACS format.
std::string to_dimacs(const Cnf& cnf);

/// Loads a formula into a solver, creating variables as needed.
/// Returns false if the solver derived top-level unsatisfiability.
bool load_into_solver(const Cnf& cnf, Solver& solver);

}  // namespace pilot::sat
