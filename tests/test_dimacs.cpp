/// DIMACS parser/printer tests: round trips, malformed inputs, evaluation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"

namespace pilot::sat {
namespace {

TEST(Dimacs, ParsesSimpleFormula) {
  const Cnf cnf = parse_dimacs_string("p cnf 3 2\n1 -2 0\n2 3 0\n");
  EXPECT_EQ(cnf.num_vars, 3);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0].size(), 2u);
  EXPECT_EQ(cnf.clauses[0][0], Lit::make(0));
  EXPECT_EQ(cnf.clauses[0][1], Lit::make(1, true));
}

TEST(Dimacs, SkipsComments) {
  const Cnf cnf =
      parse_dimacs_string("c a comment\np cnf 2 1\nc inner\n1 2 0\n");
  EXPECT_EQ(cnf.clauses.size(), 1u);
}

TEST(Dimacs, RoundTrip) {
  const std::string text = "p cnf 4 3\n1 -2 0\n-3 4 0\n1 2 3 4 0\n";
  const Cnf cnf = parse_dimacs_string(text);
  const Cnf again = parse_dimacs_string(to_dimacs(cnf));
  EXPECT_EQ(cnf.num_vars, again.num_vars);
  ASSERT_EQ(cnf.clauses.size(), again.clauses.size());
  for (std::size_t i = 0; i < cnf.clauses.size(); ++i) {
    EXPECT_EQ(cnf.clauses[i], again.clauses[i]);
  }
}

TEST(Dimacs, GrowsVarCountWhenLiteralsExceedHeader) {
  const Cnf cnf = parse_dimacs_string("p cnf 1 1\n5 0\n");
  EXPECT_EQ(cnf.num_vars, 5);
}

TEST(Dimacs, RejectsUnterminatedClause) {
  EXPECT_THROW(parse_dimacs_string("p cnf 2 1\n1 2\n"), std::runtime_error);
}

TEST(Dimacs, RejectsLiteralBeforeHeader) {
  EXPECT_THROW(parse_dimacs_string("1 0\n"), std::runtime_error);
}

TEST(Dimacs, RejectsGarbageToken) {
  EXPECT_THROW(parse_dimacs_string("p cnf 2 1\nfoo 0\n"),
               std::runtime_error);
}

TEST(Dimacs, EvaluateMatchesSemantics) {
  const Cnf cnf = parse_dimacs_string("p cnf 2 2\n1 2 0\n-1 -2 0\n");
  EXPECT_FALSE(cnf.evaluate({false, false}));
  EXPECT_TRUE(cnf.evaluate({true, false}));
  EXPECT_TRUE(cnf.evaluate({false, true}));
  EXPECT_FALSE(cnf.evaluate({true, true}));
}

TEST(Dimacs, LoadIntoSolverSolves) {
  const Cnf cnf = parse_dimacs_string("p cnf 3 3\n1 0\n-1 2 0\n-2 3 0\n");
  Solver solver;
  ASSERT_TRUE(load_into_solver(cnf, solver));
  ASSERT_EQ(solver.solve(), SolveResult::kSat);
  EXPECT_EQ(solver.model_value(Lit::make(2)), l_True);
}

TEST(Dimacs, EmptyClauseMakesSolverUnsat) {
  Cnf cnf;
  cnf.num_vars = 1;
  cnf.clauses.push_back({});
  Solver solver;
  EXPECT_FALSE(load_into_solver(cnf, solver));
  EXPECT_EQ(solver.solve(), SolveResult::kUnsat);
}

}  // namespace
}  // namespace pilot::sat
