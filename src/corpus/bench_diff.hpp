/// \file bench_diff.hpp
/// Comparator for google-benchmark JSON artifacts (the `micro_ops.json`
/// files the CI `bench-micro` job uploads) — the perf-gating counterpart
/// of results_db's diff_runs: it pairs benchmarks by name between a
/// baseline and a current run and flags slowdowns beyond a ratio
/// threshold.
///
/// Accepted input is the `--benchmark_out_format=json` schema.  When a
/// file contains aggregate rows (from --benchmark_repetitions), the
/// median aggregate is used and per-repetition rows are ignored; plain
/// single-run rows are used as-is.  Times are normalized to nanoseconds
/// via each row's time_unit.
///
/// The report is advisory by default (CI posts it into the job summary,
/// non-blocking); `fail_on_regress` turns regressions into a non-zero
/// exit for local gating.
#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

namespace pilot::corpus {

/// One benchmark measurement: `name` is the run name ("BM_X/8"); the
/// comparison metric is CPU time, normalized to nanoseconds (wall time is
/// too noisy on shared CI runners to gate on).
struct BenchEntry {
  std::string name;
  double cpu_time_ns = 0.0;
};

/// Parses a google-benchmark JSON document into one entry per benchmark,
/// preferring median aggregates when present.  Throws std::runtime_error
/// on documents without a "benchmarks" array.
[[nodiscard]] std::vector<BenchEntry> parse_benchmark_json(
    const json::Value& doc);

/// parse_benchmark_json over a file.  Throws on I/O or parse errors.
[[nodiscard]] std::vector<BenchEntry> load_benchmark_json(
    const std::string& path);

struct BenchDiffOptions {
  /// cur/base CPU-time ratio flagged as a slowdown (1.25 = +25%).
  double slow_ratio = 1.25;
  /// Symmetric ratio for reporting improvements (informational).
  double fast_ratio = 1.25;
  /// Ignore rows whose slower side is below this (filters timer noise).
  double min_time_ns = 100.0;
  /// Exit non-zero when slowdowns exist (default: advisory report only).
  bool fail_on_regress = false;
};

struct BenchDiffEntry {
  std::string name;
  double base_ns = 0.0;
  double cur_ns = 0.0;
  /// cur/base (> 1 is slower).
  [[nodiscard]] double ratio() const {
    return base_ns > 0.0 ? cur_ns / base_ns : 0.0;
  }
};

struct BenchDiffReport {
  std::vector<BenchDiffEntry> slowdowns;     // beyond slow_ratio
  std::vector<BenchDiffEntry> improvements;  // informational
  std::vector<BenchDiffEntry> unchanged;
  std::vector<std::string> only_in_baseline;
  std::vector<std::string> only_in_current;

  [[nodiscard]] bool failed(const BenchDiffOptions& options) const {
    return options.fail_on_regress && !slowdowns.empty();
  }
  /// Human-readable multi-line report.
  [[nodiscard]] std::string summary(const BenchDiffOptions& options) const;
  /// GitHub-flavored markdown table (for $GITHUB_STEP_SUMMARY).
  [[nodiscard]] std::string markdown(const BenchDiffOptions& options) const;
};

/// Pairs benchmarks by name and classifies each by CPU-time ratio.
[[nodiscard]] BenchDiffReport diff_benchmarks(
    const std::vector<BenchEntry>& baseline,
    const std::vector<BenchEntry>& current,
    const BenchDiffOptions& options);

}  // namespace pilot::corpus
