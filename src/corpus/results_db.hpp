/// \file results_db.hpp
/// The append-only run-record database and the baseline regression differ —
/// the storage layer every benchmark campaign writes into and CI reads
/// back.
///
/// Format: JSONL, one self-contained row per (case × engine) run:
///
///   {"case":"ring7","engine":"ic3-ctg","verdict":"SAFE","solved":true,
///    "seconds":0.012,"frames":3,"expected":"safe","family":"aiger",
///    "tags":["hwmcc17"],"budget_ms":2000,"seed":0,
///    "corpus":"bench/hwmcc17","commit":"abc123",
///    "timestamp":"2026-07-28T12:00:00Z","error":"","stats":{...}}
///
/// Append-only JSONL makes concurrent campaigns safe to interleave at line
/// granularity and keeps the file mergeable with `cat`; load() + merge()
/// resolve duplicates by (case, engine) key, last row wins — so re-running
/// a flaky subset and appending supersedes the old rows without rewriting.
///
/// diff_runs() is the CI gate: verdict flips (SAFE↔UNSAFE — a soundness
/// alarm) and newly-unsolved cases fail; time regressions beyond
/// `time_ratio` are reported and fail only with `fail_on_time`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "check/runner.hpp"
#include "util/json.hpp"

namespace pilot::corpus {

/// Campaign-level context stamped onto every row it produces.
struct RunContext {
  /// Corpus source: a manifest/directory path or "suite:<size>".
  std::string corpus;
  /// VCS revision; fill from campaign_commit() or leave "".
  std::string commit;
  /// ISO-8601 UTC; fill from now_utc_iso8601().
  std::string timestamp;
  std::int64_t budget_ms = 0;
  std::uint64_t seed = 0;
  /// Generalization-strategy override the campaign ran with
  /// (RunMatrixOptions::gen_spec); recorded so single-file `diff` re-runs
  /// reproduce the campaign exactly.  Empty = engines' own strategies.
  std::string gen_spec;
};

/// One database row: a check::RunRecord plus its campaign context.
struct RunRow {
  check::RunRecord record;
  RunContext context;

  /// Duplicate-resolution key.
  [[nodiscard]] std::string key() const {
    return record.case_name + "\x1f" + record.engine;
  }
};

[[nodiscard]] json::Value to_json(const RunRow& row);
/// Throws std::runtime_error on rows missing "case" or "engine".
[[nodiscard]] RunRow row_from_json(const json::Value& value);

/// The engine-statistics object embedded in every row's "stats" field —
/// public so `pilot --stats-json` can emit the identical shape for a single
/// run.  Includes per-phase wall time ("phases": name → {seconds, calls},
/// nonzero phases only) and the coarse time_* fields.  stats_from_json is
/// tolerant: fields absent in rows written by older builds load as 0/empty,
/// and unknown phase names are skipped, so existing baselines never need
/// regeneration.
[[nodiscard]] json::Value stats_to_json(const ic3::Ic3Stats& stats);
[[nodiscard]] ic3::Ic3Stats stats_from_json(const json::Value& value);

[[nodiscard]] std::string now_utc_iso8601();
/// PILOT_COMMIT or GITHUB_SHA from the environment, else "".
[[nodiscard]] std::string campaign_commit();
[[nodiscard]] ic3::Verdict verdict_from_string(const std::string& text);

/// A fresh campaign context: commit from the environment, timestamp = now.
[[nodiscard]] RunContext make_run_context(std::string corpus,
                                          std::int64_t budget_ms,
                                          std::uint64_t seed,
                                          std::string gen_spec = "");

/// Aggregate outcome of a campaign's records — the one definition of
/// "mismatch" and of the batch exit-code convention, shared by the `pilot`
/// and `pilot-bench` CLIs.
struct CampaignSummary {
  std::size_t total = 0;
  std::size_t solved = 0;
  std::size_t unknown = 0;
  std::size_t mismatches = 0;  // solved against a contradicting expected
  std::size_t errors = 0;      // cases that failed to load
  /// 0 = completed clean, 1 = expectation mismatches, 3 = load errors.
  [[nodiscard]] int exit_code() const {
    return errors > 0 ? 3 : (mismatches > 0 ? 1 : 0);
  }
};

/// True when a solved record contradicts its expected status.
[[nodiscard]] bool record_mismatch(const check::RunRecord& record);

[[nodiscard]] CampaignSummary summarize_campaign(
    const std::vector<check::RunRecord>& records);

class ResultsDb {
 public:
  /// Parses a JSONL file.  Unparseable lines throw (a results db is a
  /// machine-written artifact; silent row loss would corrupt diffs).
  static ResultsDb load(const std::string& path);

  void add(RunRow row) { rows_.push_back(std::move(row)); }
  /// Appends every row of `other`; on (case, engine) collisions the row
  /// from `other` supersedes (dedup() order: last added wins).
  void merge(const ResultsDb& other);
  /// Collapses duplicate (case, engine) rows, keeping the last-added of
  /// each; original first-seen order is preserved otherwise.
  void dedup();

  [[nodiscard]] const std::vector<RunRow>& rows() const { return rows_; }
  /// Rows matching the filters; empty filter = match all.
  [[nodiscard]] std::vector<RunRow> query(const std::string& engine,
                                          const std::string& case_substr)
      const;
  /// Distinct engine specs, in first-seen order.
  [[nodiscard]] std::vector<std::string> engines() const;

  /// Rewrites the whole db to `path` (one line per row).
  void save(const std::string& path) const;

  /// Append-only JSONL emitter, shared by `pilot --corpus` and
  /// `pilot-bench run`.  Lines are flushed as written, so a partial
  /// campaign still leaves a loadable prefix.
  class Writer {
   public:
    /// Opens for append (`truncate` starts the file fresh).  Throws when
    /// the file cannot be opened.  An empty path writes to stdout.
    explicit Writer(const std::string& path, bool truncate = false);
    ~Writer();
    Writer(const Writer&) = delete;
    Writer& operator=(const Writer&) = delete;

    void append(const RunRow& row);
    [[nodiscard]] std::size_t rows_written() const { return rows_written_; }

   private:
    void* stream_ = nullptr;  // FILE*; void* keeps <cstdio> out of the header
    bool owns_stream_ = false;
    std::size_t rows_written_ = 0;
  };

 private:
  std::vector<RunRow> rows_;
};

struct DiffOptions {
  /// A solved-in-both case regresses when cur/base exceeds this ratio and
  /// the slower side is at least `min_seconds` (absolute floor filters
  /// timer noise on trivially fast cases).
  double time_ratio = 1.5;
  double min_seconds = 0.25;
  /// Count time regressions as failures (default: report only).
  bool fail_on_time = false;
};

struct DiffEntry {
  std::string case_name;
  std::string engine;
  ic3::Verdict base_verdict = ic3::Verdict::kUnknown;
  ic3::Verdict cur_verdict = ic3::Verdict::kUnknown;
  double base_seconds = 0.0;
  double cur_seconds = 0.0;
};

struct DiffReport {
  std::vector<DiffEntry> verdict_flips;     // SAFE↔UNSAFE: hard failure
  std::vector<DiffEntry> newly_unsolved;    // solved → unknown: failure
  std::vector<DiffEntry> newly_solved;      // informational
  std::vector<DiffEntry> time_regressions;  // beyond time_ratio
  std::vector<std::string> only_in_baseline;  // "case × engine" keys
  std::vector<std::string> only_in_current;

  /// A soundness alarm, independent of options.
  [[nodiscard]] bool hard_failure() const { return !verdict_flips.empty(); }
  /// The CI exit condition.
  [[nodiscard]] bool failed(const DiffOptions& options) const {
    return hard_failure() || !newly_unsolved.empty() ||
           (options.fail_on_time && !time_regressions.empty());
  }
  /// Human-readable multi-line report.
  [[nodiscard]] std::string summary(const DiffOptions& options) const;
};

/// Compares `current` against `baseline` row-by-row on the (case, engine)
/// key (both sides deduped first; last row wins).
[[nodiscard]] DiffReport diff_runs(const ResultsDb& baseline,
                                   const ResultsDb& current,
                                   const DiffOptions& options);

}  // namespace pilot::corpus
