#include "ic3/generalizer.hpp"

#include <algorithm>
#include <unordered_set>

namespace pilot::ic3 {

Generalizer::Generalizer(const ts::TransitionSystem& ts,
                         SolverManager& solvers, Frames& frames,
                         const Config& cfg, Ic3Stats& stats)
    : ts_(ts), solvers_(solvers), frames_(frames), cfg_(cfg), stats_(stats) {}

Cube Generalizer::generalize(const Cube& cube, std::size_t level,
                             const Deadline& deadline,
                             const AddLemmaFn& add_lemma) {
  return mic(cube, level, /*depth=*/0, deadline, add_lemma);
}

std::vector<Lit> Generalizer::order_literals(const Cube& cube,
                                             std::size_t level) const {
  std::vector<Lit> order(cube.begin(), cube.end());
  if (cfg_.gen_mode != GenMode::kCav23 || level == 0) return order;
  // CAV'23 ordering: literals that do NOT occur in any parent lemma of the
  // previous frame are dropped first, so the surviving clause looks like a
  // parent lemma and is more likely to propagate.
  const std::vector<Cube> parents = frames_.parents_of(cube, level - 1);
  if (parents.empty()) return order;
  std::unordered_set<std::int32_t> parent_lits;
  for (const Cube& p : parents) {
    for (const Lit l : p) parent_lits.insert(l.index());
  }
  std::stable_partition(order.begin(), order.end(), [&](Lit l) {
    return parent_lits.find(l.index()) == parent_lits.end();
  });
  return order;
}

Cube Generalizer::mic(Cube cube, std::size_t level, int depth,
                      const Deadline& deadline, const AddLemmaFn& add_lemma) {
  const std::vector<Lit> order = order_literals(cube, level);
  for (const Lit l : order) {
    if (cube.size() <= 1) break;
    if (!cube.contains(l)) continue;  // removed by an earlier core shrink
    Cube cand = cube.without(l);
    if (ts_.cube_intersects_init(cand.lits())) continue;
    if (cfg_.gen_mode == GenMode::kCtg) {
      if (ctg_down(cand, level, depth, deadline, add_lemma)) {
        cube = cand;
        ++stats_.num_mic_drops;
      }
    } else {
      ++stats_.num_mic_queries;
      Cube core;
      if (solvers_.relative_inductive(cand, level - 1,
                                      /*cube_clause_in_frame=*/false, &core,
                                      deadline)) {
        cube = core;
        ++stats_.num_mic_drops;
      }
    }
  }
  return cube;
}

bool Generalizer::ctg_down(Cube& cand, std::size_t level, int depth,
                           const Deadline& deadline,
                           const AddLemmaFn& add_lemma) {
  std::size_t ctgs = 0;
  for (;;) {
    if (ts_.cube_intersects_init(cand.lits())) return false;
    ++stats_.num_mic_queries;
    Cube core;
    if (solvers_.relative_inductive(cand, level - 1,
                                    /*cube_clause_in_frame=*/false, &core,
                                    deadline)) {
      cand = core;
      return true;
    }
    // The relative-induction query failed: extract the CTG predecessor.
    const Cube ctg_full = solvers_.model_state(/*primed=*/false);
    const bool may_block_ctg =
        depth < cfg_.ctg_max_depth &&
        ctgs < static_cast<std::size_t>(cfg_.ctg_max_ctgs) && level > 1 &&
        !ts_.cube_intersects_init(ctg_full.lits());
    if (may_block_ctg) {
      Cube ctg_core;
      if (solvers_.relative_inductive(ctg_full, level - 2,
                                      /*cube_clause_in_frame=*/false,
                                      &ctg_core, deadline)) {
        // The CTG is itself inductive one frame down: block it as high as
        // possible, generalize it recursively, and retry the candidate.
        ++ctgs;
        ++stats_.num_ctg_blocked;
        std::size_t blocked_at = level - 1;
        while (blocked_at < frames_.top_level()) {
          Cube next_core;
          if (!solvers_.relative_inductive(ctg_core, blocked_at,
                                           /*cube_clause_in_frame=*/false,
                                           &next_core, deadline)) {
            break;
          }
          ctg_core = next_core;
          ++blocked_at;
        }
        const Cube g =
            mic(ctg_core, blocked_at, depth + 1, deadline, add_lemma);
        add_lemma(g, blocked_at);
        continue;
      }
    }
    // Join: keep only the literals the CTG shares with the candidate.
    ctgs = 0;
    const Cube joined = cand.intersect(ctg_full);
    if (joined.empty() || joined.size() == cand.size()) return false;
    cand = joined;
  }
}

}  // namespace pilot::ic3
