/// Option-parser, timer/deadline, and RNG utility tests.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace pilot {
namespace {

TEST(OptionParser, ParsesTypedFlags) {
  bool flag = false;
  std::int64_t count = 0;
  double ratio = 0.0;
  std::string name;
  OptionParser p("test");
  p.add_flag("verbose", &flag, "");
  p.add_int("count", &count, "");
  p.add_double("ratio", &ratio, "");
  p.add_string("name", &name, "");
  const char* argv[] = {"prog",    "--verbose", "--count", "42",
                        "--ratio", "0.5",       "--name",  "abc"};
  ASSERT_TRUE(p.parse(8, argv));
  EXPECT_TRUE(flag);
  EXPECT_EQ(count, 42);
  EXPECT_DOUBLE_EQ(ratio, 0.5);
  EXPECT_EQ(name, "abc");
}

TEST(OptionParser, NoPrefixDisablesFlag) {
  bool flag = true;
  OptionParser p("test");
  p.add_flag("verify", &flag, "");
  const char* argv[] = {"prog", "--no-verify"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_FALSE(flag);
}

TEST(OptionParser, OptDoubleBareUsesDefaultAndNeverEatsPositionals) {
  double secs = 0.0;
  OptionParser p("test");
  p.add_opt_double("progress", &secs, 2.0, "");
  // Bare `--progress` takes the bare value and the following token stays a
  // positional (the whole point of the opt-double kind).
  const char* argv[] = {"prog", "--progress", "model.aag"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_DOUBLE_EQ(secs, 2.0);
  ASSERT_EQ(p.positional().size(), 1u);
  EXPECT_EQ(p.positional()[0], "model.aag");
}

TEST(OptionParser, OptDoubleEqualsValue) {
  double secs = 0.0;
  OptionParser p("test");
  p.add_opt_double("progress", &secs, 2.0, "");
  const char* argv[] = {"prog", "--progress=0.5"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_DOUBLE_EQ(secs, 0.5);

  double secs2 = 0.0;
  OptionParser p2("test");
  p2.add_opt_double("progress", &secs2, 2.0, "");
  const char* bad[] = {"prog", "--progress=abc"};
  EXPECT_FALSE(p2.parse(2, bad));
}

TEST(OptionParser, EqualsSyntax) {
  std::int64_t n = 0;
  OptionParser p("test");
  p.add_int("n", &n, "");
  const char* argv[] = {"prog", "--n=17"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_EQ(n, 17);
}

TEST(OptionParser, ChoiceValidation) {
  std::string mode = "a";
  OptionParser p("test");
  p.add_choice("mode", &mode, {"a", "b"}, "");
  const char* good[] = {"prog", "--mode", "b"};
  ASSERT_TRUE(p.parse(3, good));
  EXPECT_EQ(mode, "b");
  const char* bad[] = {"prog", "--mode", "z"};
  OptionParser p2("test");
  p2.add_choice("mode", &mode, {"a", "b"}, "");
  EXPECT_FALSE(p2.parse(3, bad));
}

TEST(OptionParser, CollectsPositionals) {
  OptionParser p("test");
  const char* argv[] = {"prog", "one", "two"};
  ASSERT_TRUE(p.parse(3, argv));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "one");
}

TEST(OptionParser, RejectsUnknownOption) {
  OptionParser p("test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(OptionParser, MissingValueFails) {
  std::int64_t n = 0;
  OptionParser p("test");
  p.add_int("n", &n, "");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(Deadline, UnlimitedNeverExpires) {
  const Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_seconds()));
}

TEST(Deadline, ExpiresAfterBudget) {
  const Deadline d = Deadline::in_milliseconds(5);
  EXPECT_FALSE(d.unlimited());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_seconds(), 0.0);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.milliseconds(), 8.0);
  t.reset();
  EXPECT_LT(t.milliseconds(), 8.0);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  Rng c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  bool diverged = false;
  Rng a2(7);
  for (int i = 0; i < 100; ++i) {
    if (a2.next_u64() != c.next_u64()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(5);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++seen[v];
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_GT(seen[i], 700) << "value " << i << " under-represented";
  }
}

TEST(Rng, ChanceRespectsProbabilityGrossly)  {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_GT(hits, 2000);
  EXPECT_LT(hits, 3000);
}

}  // namespace
}  // namespace pilot
