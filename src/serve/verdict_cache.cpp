#include "serve/verdict_cache.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "cert/certificate.hpp"
#include "corpus/results_db.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace pilot::serve {

std::string cache_entry_to_json(const CacheEntry& entry) {
  json::Object o;
  o["hash"] = entry.hash;
  o["verdict"] = ic3::to_string(entry.verdict);
  o["engine"] = entry.engine;
  o["seconds"] = entry.seconds;
  o["frames"] = entry.frames;
  o["cert"] = entry.cert_text;
  o["case"] = entry.case_name;
  o["timestamp"] = entry.timestamp;
  return json::Value(std::move(o)).dump();
}

CacheEntry cache_entry_from_json_line(const std::string& line) {
  const json::Value v = json::parse(line);
  CacheEntry e;
  e.hash = v.at("hash").as_string();
  e.verdict = corpus::verdict_from_string(v.at("verdict").as_string());
  e.engine = v.at("engine").as_string();
  e.seconds = v.at("seconds").as_double();
  e.frames = v.at("frames").as_uint();
  e.cert_text = v.at("cert").as_string();
  e.case_name = v.at("case").as_string();
  e.timestamp = v.at("timestamp").as_string();
  if (e.hash.empty()) {
    throw std::runtime_error("verdict cache entry missing \"hash\"");
  }
  return e;
}

VerdictCache::VerdictCache(const std::string& path) : path_(path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;  // missing file = empty cache; first store creates it
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      CacheEntry e = cache_entry_from_json_line(line);
      entries_[e.hash] = std::move(e);  // last entry per hash wins
    } catch (const std::exception& ex) {
      throw std::runtime_error("verdict cache " + path + ":" +
                               std::to_string(line_no) + ": " + ex.what());
    }
  }
}

std::optional<CacheEntry> VerdictCache::lookup(const std::string& hash,
                                               const ts::TransitionSystem& ts,
                                               std::uint64_t seed) {
  PILOT_TRACE_ZONE("cache.lookup");
  stats_.lookups.fetch_add(1, std::memory_order_relaxed);

  CacheEntry candidate;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(hash);
    if (it == entries_.end()) {
      stats_.misses.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    candidate = it->second;  // copy: revalidate outside the map lock
  }

  // Revalidate-before-serve: the stored certificate must re-check against
  // the submitted circuit's transition system on the independent checker.
  bool ok = false;
  {
    PILOT_TRACE_ZONE("cache.revalidate");
    stats_.revalidations.fetch_add(1, std::memory_order_relaxed);
    std::string parse_error;
    const std::optional<cert::Certificate> c =
        cert::parse(candidate.cert_text, &parse_error);
    if (c.has_value()) ok = cert::check(ts, *c, seed).ok;
  }
  if (!ok) {
    PILOT_TRACE_INSTANT("cache.revalidation_failure");
    stats_.revalidation_failures.fetch_add(1, std::memory_order_relaxed);
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.erase(hash);  // poisoned entry: never offer it again
    return std::nullopt;
  }
  stats_.hits.fetch_add(1, std::memory_order_relaxed);
  return candidate;
}

std::optional<CacheEntry> VerdictCache::peek(const std::string& hash) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(hash);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool VerdictCache::store(const CacheEntry& entry) {
  if (entry.hash.empty() || entry.cert_text.empty() ||
      entry.verdict == ic3::Verdict::kUnknown) {
    return false;
  }
  PILOT_TRACE_ZONE("cache.store");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[entry.hash] = entry;
    if (!path_.empty()) append_to_file(entry);
  }
  stats_.stores.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void VerdictCache::append_to_file(const CacheEntry& entry) {
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out) {
    throw std::runtime_error("verdict cache: cannot append to " + path_);
  }
  out << cache_entry_to_json(entry) << "\n";
}

std::size_t VerdictCache::ingest(const corpus::ResultsDb& db) {
  std::size_t added = 0;
  for (const corpus::RunRow& row : db.rows()) {
    const check::RunRecord& r = row.record;
    if (!r.solved || r.content_hash.empty() || r.cert_path.empty()) continue;
    std::string error;
    const std::optional<cert::Certificate> c = cert::load(r.cert_path, &error);
    if (!c.has_value()) continue;  // unreadable cert: skip, never trust
    CacheEntry e;
    e.hash = r.content_hash;
    e.verdict = r.verdict;
    e.engine = r.engine;
    e.seconds = r.seconds;
    e.frames = r.frames;
    e.cert_text = cert::to_text(*c);
    e.case_name = r.case_name;
    e.timestamp = row.context.timestamp;
    if (store(e)) ++added;
  }
  return added;
}

std::size_t VerdictCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::string VerdictCache::summary() const {
  std::ostringstream out;
  out << size() << " entries, " << stats_.hits.load() << " hits, "
      << stats_.misses.load() << " misses, " << stats_.revalidations.load()
      << " revalidations (" << stats_.revalidation_failures.load()
      << " failed), " << stats_.stores.load() << " stores";
  return out.str();
}

}  // namespace pilot::serve
