#include "aig/simulation.hpp"

#include <cassert>

namespace pilot::aig {

BitSimulator::BitSimulator(const Aig& aig)
    : aig_(aig), values_(aig.num_nodes(), 0), state_(aig.num_nodes(), 0) {
  reset();
}

void BitSimulator::reset(std::uint64_t undef_fill) {
  for (const std::uint32_t n : aig_.latches()) {
    const LBool init = aig_.init(n);
    if (init == l_True) {
      state_[n] = ~0ULL;
    } else if (init == l_False) {
      state_[n] = 0;
    } else {
      state_[n] = undef_fill;
    }
  }
}

void BitSimulator::set_latch(std::uint32_t latch_node, std::uint64_t value) {
  assert(aig_.is_latch(latch_node));
  state_[latch_node] = value;
}

void BitSimulator::compute(std::span<const std::uint64_t> inputs) {
  assert(inputs.size() == aig_.num_inputs());
  values_[0] = 0;  // constant false
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    values_[aig_.inputs()[i]] = inputs[i];
  }
  for (const std::uint32_t n : aig_.latches()) values_[n] = state_[n];
  for (const std::uint32_t n : aig_.ands()) {
    values_[n] = value(aig_.fanin0(n)) & value(aig_.fanin1(n));
  }
}

void BitSimulator::latch_step() {
  // Two phases so that latch-to-latch feed-through uses pre-step values.
  std::vector<std::uint64_t> next_state;
  next_state.reserve(aig_.latches().size());
  for (const std::uint32_t n : aig_.latches()) {
    next_state.push_back(value(aig_.next(n)));
  }
  for (std::size_t i = 0; i < aig_.latches().size(); ++i) {
    state_[aig_.latches()[i]] = next_state[i];
  }
}

TernarySimulator::TernarySimulator(const Aig& aig)
    : aig_(aig), values_(aig.num_nodes(), TV::kX) {}

void TernarySimulator::compute(std::span<const TV> latch_values,
                               std::span<const TV> input_values) {
  assert(latch_values.size() == aig_.num_latches());
  assert(input_values.size() == aig_.num_inputs());
  values_[0] = TV::kZero;
  for (std::size_t i = 0; i < input_values.size(); ++i) {
    values_[aig_.inputs()[i]] = input_values[i];
  }
  for (std::size_t i = 0; i < latch_values.size(); ++i) {
    values_[aig_.latches()[i]] = latch_values[i];
  }
  for (const std::uint32_t n : aig_.ands()) {
    values_[n] = tv_and(value(aig_.fanin0(n)), value(aig_.fanin1(n)));
  }
}

// ----- packed ternary --------------------------------------------------------

namespace {

constexpr std::uint64_t kCan1Plane = 0x00000000FFFFFFFFULL;  // low half
constexpr std::uint64_t kCan0Plane = 0xFFFFFFFF00000000ULL;  // high half

constexpr std::uint64_t packed_broadcast(TV v) {
  switch (v) {
    case TV::kZero: return kCan0Plane;
    case TV::kOne: return kCan1Plane;
    default: return ~0ULL;
  }
}

constexpr std::uint64_t packed_not(std::uint64_t w) {
  return (w << 32) | (w >> 32);  // swap the planes
}

inline void packed_set_lane(std::uint64_t& w, std::size_t lane, TV v) {
  const std::uint64_t can1 = 1ULL << lane;
  const std::uint64_t can0 = 1ULL << (lane + 32);
  w |= can1 | can0;  // X
  if (v == TV::kZero) {
    w &= ~can1;
  } else if (v == TV::kOne) {
    w &= ~can0;
  }
}

}  // namespace

PackedTernarySimulator::PackedTernarySimulator(const Aig& aig)
    : aig_(aig),
      values_(aig.num_nodes(), ~0ULL),
      cones_(aig.num_latches()),
      cone_ready_(aig.num_latches(), 0) {
  values_[0] = packed_broadcast(TV::kZero);  // constant false
}

std::uint64_t PackedTernarySimulator::word(AigLit lit) const {
  const std::uint64_t w = values_[lit.node()];
  return lit.negated() ? packed_not(w) : w;
}

std::uint64_t PackedTernarySimulator::eval_and(std::uint32_t n) const {
  const std::uint64_t a = word(aig_.fanin0(n));
  const std::uint64_t b = word(aig_.fanin1(n));
  return ((a & b) & kCan1Plane) | ((a | b) & kCan0Plane);
}

void PackedTernarySimulator::compute(std::span<const TV> latch_values,
                                     std::span<const TV> input_values) {
  assert(latch_values.size() == aig_.num_latches());
  assert(input_values.size() == aig_.num_inputs());
  for (std::size_t i = 0; i < latch_values.size(); ++i) {
    values_[aig_.latches()[i]] = packed_broadcast(latch_values[i]);
  }
  for (std::size_t i = 0; i < input_values.size(); ++i) {
    values_[aig_.inputs()[i]] = packed_broadcast(input_values[i]);
  }
  compute();
}

void PackedTernarySimulator::set_latch(std::size_t latch_index, TV v) {
  assert(latch_index < aig_.num_latches());
  values_[aig_.latches()[latch_index]] = packed_broadcast(v);
}

void PackedTernarySimulator::set_latch(std::size_t latch_index,
                                       std::size_t lane, TV v) {
  assert(latch_index < aig_.num_latches() && lane < kLanes);
  packed_set_lane(values_[aig_.latches()[latch_index]], lane, v);
}

void PackedTernarySimulator::set_input(std::size_t input_index, TV v) {
  assert(input_index < aig_.num_inputs());
  values_[aig_.inputs()[input_index]] = packed_broadcast(v);
}

void PackedTernarySimulator::set_input(std::size_t input_index,
                                       std::size_t lane, TV v) {
  assert(input_index < aig_.num_inputs() && lane < kLanes);
  packed_set_lane(values_[aig_.inputs()[input_index]], lane, v);
}

void PackedTernarySimulator::compute() {
  assert(!trial_open_);
  for (const std::uint32_t n : aig_.ands()) values_[n] = eval_and(n);
  words_evaluated_ += aig_.num_ands();
}

void PackedTernarySimulator::latch_step() {
  assert(!trial_open_);
  // Two phases so that latch-to-latch feed-through uses pre-step values.
  std::vector<std::uint64_t> next_state;
  next_state.reserve(aig_.latches().size());
  for (const std::uint32_t n : aig_.latches()) {
    next_state.push_back(word(aig_.next(n)));
  }
  for (std::size_t i = 0; i < aig_.latches().size(); ++i) {
    values_[aig_.latches()[i]] = next_state[i];
  }
}

TV PackedTernarySimulator::value(AigLit lit, std::size_t lane) const {
  assert(lane < kLanes);
  const std::uint64_t w = word(lit);
  const bool can1 = ((w >> lane) & 1ULL) != 0;
  const bool can0 = ((w >> (lane + 32)) & 1ULL) != 0;
  if (can1 && can0) return TV::kX;
  return can1 ? TV::kOne : TV::kZero;
}

const std::vector<std::uint32_t>& PackedTernarySimulator::cone(
    std::size_t latch_index) {
  if (!cone_ready_[latch_index]) {
    std::vector<char> reach(aig_.num_nodes(), 0);
    reach[aig_.latches()[latch_index]] = 1;
    // AND ids are topological by construction, so one forward sweep finds
    // the whole transitive fanout in evaluation order.
    for (const std::uint32_t n : aig_.ands()) {
      if (reach[aig_.fanin0(n).node()] || reach[aig_.fanin1(n).node()]) {
        reach[n] = 1;
        cones_[latch_index].push_back(n);
      }
    }
    cone_ready_[latch_index] = 1;
  }
  return cones_[latch_index];
}

void PackedTernarySimulator::trial_set_latch(std::size_t latch_index, TV v) {
  assert(!trial_open_);
  trial_open_ = true;
  undo_.clear();
  const std::uint32_t latch_node = aig_.latches()[latch_index];
  undo_.emplace_back(latch_node, values_[latch_node]);
  values_[latch_node] = packed_broadcast(v);
  const std::vector<std::uint32_t>& fanout = cone(latch_index);
  for (const std::uint32_t n : fanout) {
    const std::uint64_t old = values_[n];
    const std::uint64_t now = eval_and(n);
    if (now != old) {
      undo_.emplace_back(n, old);
      values_[n] = now;
    }
  }
  words_evaluated_ += fanout.size();
}

void PackedTernarySimulator::trial_commit() {
  assert(trial_open_);
  trial_open_ = false;
  undo_.clear();
}

void PackedTernarySimulator::trial_rollback() {
  assert(trial_open_);
  trial_open_ = false;
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    values_[it->first] = it->second;
  }
  undo_.clear();
}

}  // namespace pilot::aig
