/// Tests for the IC3-shaped SAT hot paths: assumption-prefix trail reuse,
/// clause addition into a kept trail, and the solver-layer statistics —
/// plus an engine-level determinism check over the checked-in fixture
/// corpus (tests/corpus/) with reuse on and off.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "corpus/corpus.hpp"
#include "ic3/engine.hpp"
#include "sat/solver.hpp"
#include "ts/transition_system.hpp"
#include "util/rng.hpp"

namespace pilot::sat {
namespace {

Lit pos(Var v) { return Lit::make(v); }
Lit neg(Var v) { return Lit::make(v, true); }

Lit random_lit(Rng& rng, int num_vars) {
  return Lit::make(static_cast<Var>(rng.below(num_vars)), rng.chance(0.5));
}

/// True when `model_of` assigns at least one literal of every recorded
/// clause true and every assumption true.
void expect_model_valid(const Solver& solver,
                        const std::vector<std::vector<Lit>>& clauses,
                        const std::vector<Lit>& assumptions,
                        const char* label) {
  for (const std::vector<Lit>& clause : clauses) {
    bool satisfied = false;
    for (const Lit l : clause) {
      satisfied = satisfied || solver.model_value(l) == l_True;
    }
    EXPECT_TRUE(satisfied) << label << ": model falsifies a clause";
    if (!satisfied) return;
  }
  for (const Lit a : assumptions) {
    EXPECT_EQ(solver.model_value(a), l_True)
        << label << ": model violates assumption " << a.to_string();
  }
}

/// The core must be a subset of the assumptions, and the formula plus the
/// core must be unsatisfiable (verified with a fresh solver).
void expect_core_valid(const Solver& solver, int num_vars,
                       const std::vector<std::vector<Lit>>& clauses,
                       const std::vector<Lit>& assumptions,
                       const char* label) {
  const std::vector<Lit>& core = solver.core();
  for (const Lit l : core) {
    EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l),
              assumptions.end())
        << label << ": core literal " << l.to_string()
        << " is not an assumption";
  }
  Solver fresh;
  for (int i = 0; i < num_vars; ++i) fresh.new_var();
  for (const std::vector<Lit>& clause : clauses) fresh.add_clause(clause);
  EXPECT_EQ(fresh.solve(core), SolveResult::kUnsat)
      << label << ": core does not refute the formula";
}

// Drives a reuse-on and a reuse-off solver through an identical randomized
// incremental script — clause additions interleaved with solves whose
// assumption sequences share long mutating prefixes (the IC3 shape) — and
// checks verdict equivalence plus model/core validity on every call.
TEST(TrailReuse, RandomizedIncrementalEquivalence) {
  constexpr int kVars = 60;
  constexpr int kSteps = 200;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(0x5EED0000 + seed);
    Solver with_reuse;
    Solver without_reuse;
    with_reuse.set_trail_reuse(true);
    without_reuse.set_trail_reuse(false);
    for (int i = 0; i < kVars; ++i) {
      with_reuse.new_var();
      without_reuse.new_var();
    }
    std::vector<std::vector<Lit>> clauses;
    std::vector<Lit> prefix;  // persistent shared assumption prefix
    for (int step = 0; step < kSteps; ++step) {
      const double dice = rng.below(100) / 100.0;
      if (dice < 0.35) {
        std::vector<Lit> clause;
        const std::size_t size = 1 + rng.below(4);
        for (std::size_t j = 0; j < size; ++j) {
          clause.push_back(random_lit(rng, kVars));
        }
        with_reuse.add_clause(clause);
        without_reuse.add_clause(clause);
        clauses.push_back(std::move(clause));
        continue;
      }
      if (dice < 0.5) {
        if (!prefix.empty() && rng.chance(0.5)) {
          prefix.pop_back();
        } else {
          prefix.push_back(random_lit(rng, kVars));
        }
      }
      std::vector<Lit> assumptions = prefix;
      const std::size_t tail = rng.below(3);
      for (std::size_t j = 0; j < tail; ++j) {
        assumptions.push_back(random_lit(rng, kVars));
      }
      const SolveResult r1 = with_reuse.solve(assumptions);
      const SolveResult r2 = without_reuse.solve(assumptions);
      ASSERT_EQ(r1, r2) << "seed " << seed << " step " << step
                        << ": reuse on/off verdicts diverge";
      ASSERT_NE(r1, SolveResult::kUnknown);
      if (r1 == SolveResult::kSat) {
        expect_model_valid(with_reuse, clauses, assumptions, "reuse-on");
        expect_model_valid(without_reuse, clauses, assumptions, "reuse-off");
      } else {
        expect_core_valid(with_reuse, kVars, clauses, assumptions,
                          "reuse-on");
        expect_core_valid(without_reuse, kVars, clauses, assumptions,
                          "reuse-off");
      }
    }
    // The reuse-on solver must actually have reused something over a
    // 200-step script with persistent prefixes.
    EXPECT_GT(with_reuse.stats().trail_reuse_hits, 0u) << "seed " << seed;
    EXPECT_EQ(without_reuse.stats().trail_reuse_hits, 0u);
  }
}

TEST(TrailReuse, PrefixReuseIsCountedAndSaves) {
  Solver s;
  const Var x = s.new_var();
  const Var a0 = s.new_var();
  const Var a1 = s.new_var();
  const Var a2 = s.new_var();
  // Each activation implies a chain literal, IC3-style.
  s.add_binary(neg(a0), pos(x));
  const std::vector<Lit> q1{pos(a2), pos(a1), pos(a0)};
  ASSERT_EQ(s.solve(q1), SolveResult::kSat);
  EXPECT_EQ(s.stats().trail_reuse_hits, 0u);  // first call: nothing kept
  // Same prefix, one more tail literal: the three assumption levels and
  // the propagation of x survive.
  const std::vector<Lit> q2{pos(a2), pos(a1), pos(a0), pos(x)};
  ASSERT_EQ(s.solve(q2), SolveResult::kSat);
  EXPECT_EQ(s.stats().trail_reuse_hits, 1u);
  EXPECT_GE(s.stats().reused_levels, 3u);
  EXPECT_GT(s.stats().saved_propagations, 0u);
}

TEST(TrailReuse, DivergingPrefixBacktracksOnlyToDivergence) {
  Solver s;
  const Var a0 = s.new_var();
  const Var a1 = s.new_var();
  const Var a2 = s.new_var();
  const std::vector<Lit> q1{pos(a0), pos(a1), pos(a2)};
  ASSERT_EQ(s.solve(q1), SolveResult::kSat);
  // First two assumptions match, third flips: exactly 2 levels reused.
  const std::vector<Lit> q2{pos(a0), pos(a1), neg(a2)};
  ASSERT_EQ(s.solve(q2), SolveResult::kSat);
  EXPECT_EQ(s.stats().trail_reuse_hits, 1u);
  EXPECT_EQ(s.stats().reused_levels, 2u);
}

TEST(TrailReuse, ClauseAdditionIntoKeptTrailStaysSound) {
  Solver s;
  const Var x = s.new_var();
  const Var z = s.new_var();
  const Var w = s.new_var();
  const Var a1 = s.new_var();
  s.add_binary(neg(a1), pos(x));  // a1 → x
  const std::vector<Lit> assume_a1{pos(a1)};
  ASSERT_EQ(s.solve(assume_a1), SolveResult::kSat);
  EXPECT_EQ(s.model_value(pos(x)), l_True);

  // Attaches into the kept trail (two unassigned literals exist).
  ASSERT_TRUE(s.add_clause({neg(a1), pos(z), pos(w)}));
  ASSERT_EQ(s.solve(assume_a1), SolveResult::kSat);
  EXPECT_TRUE(s.model_value(pos(z)) == l_True ||
              s.model_value(pos(w)) == l_True);

  // Conflicting under the kept trail (a1 true, x true): the solver must
  // fall back to the root and still answer correctly.
  ASSERT_TRUE(s.add_clause({neg(a1), neg(x)}));
  ASSERT_EQ(s.solve(assume_a1), SolveResult::kUnsat);
  ASSERT_FALSE(s.core().empty());
  for (const Lit l : s.core()) EXPECT_EQ(l, pos(a1));
  // And without the poisoned activation everything is still satisfiable.
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(TrailReuse, DisablingReuseDropsTheTrail) {
  Solver s;
  const Var a0 = s.new_var();
  const Var a1 = s.new_var();
  const std::vector<Lit> q{pos(a0), pos(a1)};
  ASSERT_EQ(s.solve(q), SolveResult::kSat);
  s.set_trail_reuse(false);
  ASSERT_EQ(s.solve(q), SolveResult::kSat);
  EXPECT_EQ(s.stats().trail_reuse_hits, 0u);
}

TEST(TrailReuse, UnsatCallsKeepTheFailedPrefixCheap) {
  Solver s;
  const Var x = s.new_var();
  const Var a0 = s.new_var();
  s.add_binary(neg(a0), pos(x));
  const std::vector<Lit> bad{pos(a0), neg(x)};
  ASSERT_EQ(s.solve(bad), SolveResult::kUnsat);
  // Repeating the refuted query must stay UNSAT (and may reuse levels).
  ASSERT_EQ(s.solve(bad), SolveResult::kUnsat);
  ASSERT_FALSE(s.core().empty());
  // A satisfiable sibling query still works afterwards.
  const std::vector<Lit> good{pos(a0), pos(x)};
  EXPECT_EQ(s.solve(good), SolveResult::kSat);
}

TEST(SolverStats, BinaryPropagationsAreCountedSeparately) {
  Solver s;
  constexpr int kChain = 64;
  std::vector<Var> vars;
  for (int i = 0; i < kChain; ++i) vars.push_back(s.new_var());
  for (int i = 0; i + 1 < kChain; ++i) {
    s.add_binary(neg(vars[i]), pos(vars[i + 1]));
  }
  const std::vector<Lit> assume{pos(vars[0])};
  ASSERT_EQ(s.solve(assume), SolveResult::kSat);
  // The whole chain is binary: all implications ride the binary watches.
  EXPECT_GE(s.stats().binary_propagations,
            static_cast<std::uint64_t>(kChain - 1));
}

}  // namespace
}  // namespace pilot::sat

namespace pilot::ic3 {
namespace {

struct EngineRun {
  Verdict verdict = Verdict::kUnknown;
  std::uint64_t lemmas = 0;
  std::uint64_t sat_propagations = 0;
  std::uint64_t sat_reuse_hits = 0;
  std::uint64_t sat_saved_propagations = 0;
};

EngineRun run_engine(const ts::TransitionSystem& ts, bool trail_reuse) {
  Config cfg;
  cfg.predict_lemmas = true;
  cfg.sat_trail_reuse = trail_reuse;
  Engine engine(ts, cfg);
  const Result r = engine.check();
  EngineRun out;
  out.verdict = r.verdict;
  out.lemmas = r.stats.num_lemmas;
  out.sat_propagations = r.stats.sat_propagations;
  out.sat_reuse_hits = r.stats.sat_trail_reuse_hits;
  out.sat_saved_propagations = r.stats.sat_saved_propagations;
  return out;
}

// Engine-level determinism and reuse-equivalence over the checked-in
// fixture corpus: verdicts must match the manifest's expected status with
// trail reuse on and off, and repeated runs of the same configuration must
// produce identical lemma counts.
TEST(EngineTrailReuse, CorpusVerdictsAndLemmaCountsAreStable) {
  const std::vector<corpus::Case> cases =
      corpus::resolve_corpus(PILOT_TEST_CORPUS_DIR);
  ASSERT_FALSE(cases.empty());
  std::uint64_t total_reuse_hits = 0;
  std::uint64_t total_saved = 0;
  for (const corpus::Case& c : cases) {
    const ts::TransitionSystem ts =
        ts::TransitionSystem::from_aig(c.load());
    const EngineRun on1 = run_engine(ts, /*trail_reuse=*/true);
    const EngineRun on2 = run_engine(ts, /*trail_reuse=*/true);
    const EngineRun off1 = run_engine(ts, /*trail_reuse=*/false);
    const EngineRun off2 = run_engine(ts, /*trail_reuse=*/false);

    if (c.expected == corpus::Expected::kSafe) {
      EXPECT_EQ(on1.verdict, Verdict::kSafe) << c.name;
    } else if (c.expected == corpus::Expected::kUnsafe) {
      EXPECT_EQ(on1.verdict, Verdict::kUnsafe) << c.name;
    }
    EXPECT_EQ(on1.verdict, off1.verdict) << c.name;

    // Same configuration twice → bit-identical proof structure.
    EXPECT_EQ(on1.verdict, on2.verdict) << c.name;
    EXPECT_EQ(on1.lemmas, on2.lemmas) << c.name;
    EXPECT_EQ(on1.sat_propagations, on2.sat_propagations) << c.name;
    EXPECT_EQ(off1.verdict, off2.verdict) << c.name;
    EXPECT_EQ(off1.lemmas, off2.lemmas) << c.name;

    EXPECT_EQ(off1.sat_reuse_hits, 0u) << c.name;
    total_reuse_hits += on1.sat_reuse_hits;
    total_saved += on1.sat_saved_propagations;
  }
  // Across the corpus the reuse path must actually fire and save work.
  EXPECT_GT(total_reuse_hits, 0u);
  EXPECT_GT(total_saved, 0u);
}

}  // namespace
}  // namespace pilot::ic3
