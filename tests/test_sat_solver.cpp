/// Unit tests for the CDCL SAT solver: construction, solving, assumptions,
/// cores, incrementality, and budget handling.
#include <gtest/gtest.h>

#include "sat/solver.hpp"

namespace pilot::sat {
namespace {

Lit pos(Var v) { return Lit::make(v); }
Lit neg(Var v) { return Lit::make(v, true); }

TEST(SatSolver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(SatSolver, SingleUnitClause) {
  Solver s;
  const Var x = s.new_var();
  ASSERT_TRUE(s.add_unit(pos(x)));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.model_value(pos(x)), l_True);
  EXPECT_EQ(s.model_value(neg(x)), l_False);
}

TEST(SatSolver, ContradictoryUnitsAreUnsat) {
  Solver s;
  const Var x = s.new_var();
  EXPECT_TRUE(s.add_unit(pos(x)));
  EXPECT_FALSE(s.add_unit(neg(x)));
  EXPECT_FALSE(s.okay());
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(SatSolver, SimpleBinaryImplicationChain) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  // a → b → c, a asserted.
  s.add_binary(neg(a), pos(b));
  s.add_binary(neg(b), pos(c));
  s.add_unit(pos(a));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.model_value(pos(c)), l_True);
}

TEST(SatSolver, PigeonholeTwoIntoOneIsUnsat) {
  // Two pigeons, one hole: p1h1, p2h1, ¬p1h1 ∨ ¬p2h1 — with both pigeons
  // required to be placed.
  Solver s;
  const Var p1 = s.new_var();
  const Var p2 = s.new_var();
  s.add_unit(pos(p1));
  s.add_unit(pos(p2));
  s.add_binary(neg(p1), neg(p2));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(SatSolver, XorChainSatisfiable) {
  // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x0 ⊕ x2 = 0: consistent.
  Solver s;
  const Var x0 = s.new_var();
  const Var x1 = s.new_var();
  const Var x2 = s.new_var();
  auto add_xor = [&](Var a, Var b, bool value) {
    // a ⊕ b = value, as two clauses per polarity.
    if (value) {
      s.add_binary(pos(a), pos(b));
      s.add_binary(neg(a), neg(b));
    } else {
      s.add_binary(pos(a), neg(b));
      s.add_binary(neg(a), pos(b));
    }
  };
  add_xor(x0, x1, true);
  add_xor(x1, x2, true);
  add_xor(x0, x2, false);
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  const bool v0 = s.model_value(pos(x0)) == l_True;
  const bool v1 = s.model_value(pos(x1)) == l_True;
  const bool v2 = s.model_value(pos(x2)) == l_True;
  EXPECT_NE(v0, v1);
  EXPECT_NE(v1, v2);
  EXPECT_EQ(v0, v2);
}

TEST(SatSolver, XorChainUnsatisfiable) {
  // Odd cycle of XOR=1 constraints over 3 variables is unsatisfiable
  // together with x0 ⊕ x2 = 1.
  Solver s;
  const Var x0 = s.new_var();
  const Var x1 = s.new_var();
  const Var x2 = s.new_var();
  auto add_xor1 = [&](Var a, Var b) {
    s.add_binary(pos(a), pos(b));
    s.add_binary(neg(a), neg(b));
  };
  add_xor1(x0, x1);
  add_xor1(x1, x2);
  add_xor1(x0, x2);
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(SatSolver, AssumptionsSatAndUnsat) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(neg(a), pos(b));  // a → b
  const std::vector<Lit> assume_a{pos(a)};
  ASSERT_EQ(s.solve(assume_a), SolveResult::kSat);
  EXPECT_EQ(s.model_value(pos(b)), l_True);

  const std::vector<Lit> conflicting{pos(a), neg(b)};
  EXPECT_EQ(s.solve(conflicting), SolveResult::kUnsat);
  // Solver must remain usable after an assumption conflict.
  EXPECT_EQ(s.solve(assume_a), SolveResult::kSat);
}

TEST(SatSolver, CoreIsSubsetOfAssumptions) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  const Var d = s.new_var();
  s.add_binary(neg(a), neg(b));  // ¬(a ∧ b)
  const std::vector<Lit> assumptions{pos(a), pos(b), pos(c), pos(d)};
  ASSERT_EQ(s.solve(assumptions), SolveResult::kUnsat);
  const auto& core = s.core();
  EXPECT_FALSE(core.empty());
  for (const Lit l : core) {
    EXPECT_TRUE(std::find(assumptions.begin(), assumptions.end(), l) !=
                assumptions.end());
  }
  // c and d are irrelevant to the conflict.
  for (const Lit l : core) {
    EXPECT_TRUE(l == pos(a) || l == pos(b));
  }
}

TEST(SatSolver, CoreEmptyWhenFormulaItselfUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(pos(a));
  const Var b = s.new_var();
  EXPECT_TRUE(s.add_unit(pos(b)));
  EXPECT_FALSE(s.add_unit(neg(b)));
  const std::vector<Lit> assumptions{neg(a)};
  EXPECT_EQ(s.solve(assumptions), SolveResult::kUnsat);
  EXPECT_TRUE(s.core().empty());
}

TEST(SatSolver, IncrementalClauseAddition) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  s.add_binary(pos(a), pos(b));
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  s.add_unit(neg(a));
  s.add_unit(neg(b));
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(SatSolver, PhaseHintsRespectedOnFreeVariables) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(pos(a), pos(b));  // at least one true
  s.set_phase(a, false);         // prefer a = true
  s.set_phase(b, true);          // prefer b = false
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.model_value(pos(a)), l_True);
  EXPECT_EQ(s.model_value(pos(b)), l_False);
}

TEST(SatSolver, ConflictBudgetReturnsUnknown) {
  // A hard pigeonhole instance (5 pigeons, 4 holes) with a 1-conflict
  // budget must give up.
  Solver s;
  constexpr int kPigeons = 5;
  constexpr int kHoles = 4;
  std::vector<std::vector<Var>> at(kPigeons);
  for (int p = 0; p < kPigeons; ++p) {
    for (int h = 0; h < kHoles; ++h) at[p].push_back(s.new_var());
  }
  for (int p = 0; p < kPigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < kHoles; ++h) clause.push_back(pos(at[p][h]));
    s.add_clause(clause);
  }
  for (int h = 0; h < kHoles; ++h) {
    for (int p1 = 0; p1 < kPigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < kPigeons; ++p2) {
        s.add_binary(neg(at[p1][h]), neg(at[p2][h]));
      }
    }
  }
  s.set_conflict_budget(1);
  EXPECT_EQ(s.solve(), SolveResult::kUnknown);
  s.set_conflict_budget(0);
  EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(SatSolver, ExpiredDeadlineReturnsUnknownQuickly) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(pos(a));
  const Deadline expired = Deadline::in_milliseconds(0);
  // Give the deadline a moment to be definitely in the past.
  while (!expired.expired()) {
  }
  EXPECT_EQ(s.solve({}, expired), SolveResult::kUnknown);
}

TEST(SatSolver, ManyVariablesAndClausesStressReduceDb) {
  // A satisfiable random-ish 3-CNF shaped instance large enough to trigger
  // clause DB reductions and garbage collection paths.
  Solver s;
  constexpr int kVars = 300;
  std::vector<Var> vars;
  for (int i = 0; i < kVars; ++i) vars.push_back(s.new_var());
  // Chain implications with redundancy.
  for (int i = 0; i + 2 < kVars; ++i) {
    s.add_ternary(neg(vars[i]), pos(vars[i + 1]), pos(vars[i + 2]));
    s.add_ternary(neg(vars[i]), neg(vars[i + 1]), pos(vars[i + 2]));
  }
  s.add_unit(pos(vars[0]));
  EXPECT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_TRUE(s.okay());
}

TEST(SatSolver, TautologyAndDuplicateLiteralsHandled) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(a), neg(a)}));          // tautology: dropped
  EXPECT_TRUE(s.add_clause({pos(b), pos(b), pos(b)}));  // collapses to unit
  ASSERT_EQ(s.solve(), SolveResult::kSat);
  EXPECT_EQ(s.model_value(pos(b)), l_True);
}

TEST(SatSolver, SimplifyKeepsEquivalence) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  s.add_ternary(pos(a), pos(b), pos(c));
  s.add_unit(pos(a));  // satisfies the ternary at top level
  s.simplify();
  EXPECT_TRUE(s.okay());
  const std::vector<Lit> assumptions{neg(b), neg(c)};
  EXPECT_EQ(s.solve(assumptions), SolveResult::kSat);
}

}  // namespace
}  // namespace pilot::sat
