#include "ic3/solver_manager.hpp"

#include <algorithm>

#include "obs/phase.hpp"
#include "util/log.hpp"

namespace pilot::ic3 {
namespace {

/// Learnt clauses vivified per frame boundary (maybe_rebuild without a
/// rebuild).  Newest-first, so this bounds the boundary cost while still
/// covering the clauses driving the current search.
constexpr std::size_t kVivifyPerBoundary = 64;

}  // namespace

SolverManager::SolverManager(const TransitionSystem& ts, const Config& cfg,
                             Ic3Stats& stats)
    : ts_(ts), cfg_(cfg), stats_(stats) {
  solver_ = std::make_unique<sat::Solver>();
  solver_->set_seed(cfg_.seed);
  solver_->set_trail_reuse(cfg_.sat_trail_reuse);
  solver_->set_inprocess(cfg_.sat_inprocess);
  install_base();
}

void SolverManager::install_base() {
  ts_.install(*solver_);
  act_vars_.clear();
  retired_tmp_ = 0;
  // Level 0: the initial cube, guarded by act_0.
  ensure_level(0);
  for (const Lit l : ts_.init_literals()) {
    solver_->add_binary(~act(0), l);
  }
}

void SolverManager::ensure_level(std::size_t k) {
  while (act_vars_.size() <= k) {
    act_vars_.push_back(solver_->new_var());
  }
}

void SolverManager::add_lemma_clause(const Cube& cube, std::size_t level) {
  ensure_level(level);
  std::vector<Lit> clause = cube.negated_lits();
  clause.push_back(~act(level));
  // The ¬act(level) guard rides along into the subsumption pass, which
  // scopes it naturally: only same-level lemma clauses share the guard, so
  // only they can be retired or strengthened by the new install.
  if (cfg_.sat_inprocess) {
    obs::PhaseScope phase(&stats_.phases, obs::Phase::kSatInprocess);
    solver_->add_clause_subsuming(clause);
  } else {
    solver_->add_clause(clause);
  }
  if (batch_solver_) {
    // Mirror into every disjoint copy of the batch-probe solver (plain
    // install: the per-copy subsumption pass would triple the occurrence
    // scans for clauses the probes only ever assume).
    batch_ensure_level(level);
    const auto stride = static_cast<Var>(ts_.num_encoding_vars());
    for (std::size_t i = 0; i < batch_copies_; ++i) {
      std::vector<Lit> copy;
      copy.reserve(cube.size() + 1);
      for (const Lit l : cube) {
        const Lit n = ~l;
        copy.push_back(
            Lit::make(n.var() + static_cast<Var>(i) * stride, n.sign()));
      }
      copy.push_back(~Lit::make(batch_act_vars_[level]));
      batch_solver_->add_clause(copy);
    }
  }
}

std::vector<Lit> SolverManager::frame_assumptions(std::size_t level) const {
  // Descending activation order: every query assumes the same act_top,
  // act_top-1, … head, so consecutive queries — even at different levels —
  // share the longest possible prefix for the solver's trail reuse.
  std::vector<Lit> assumptions;
  assumptions.reserve(act_vars_.size() - level);
  for (std::size_t j = act_vars_.size(); j-- > level;) {
    assumptions.push_back(act(j));
  }
  return assumptions;
}

bool SolverManager::solve_bad(std::size_t level, const Deadline& deadline) {
  obs::PhaseScope phase(&stats_.phases, obs::Phase::kSatSolve);
  ensure_level(level);
  std::vector<Lit> assumptions = frame_assumptions(level);
  assumptions.push_back(ts_.bad());
  const sat::SolveResult res = solver_->solve(assumptions, deadline);
  if (res == sat::SolveResult::kUnknown) throw TimeoutError{};
  return res == sat::SolveResult::kSat;
}

bool SolverManager::relative_inductive(const Cube& c, std::size_t level,
                                       bool cube_clause_in_frame,
                                       Cube* core_out,
                                       const Deadline& deadline) {
  obs::PhaseScope phase(&stats_.phases, obs::Phase::kSatSolve);
  ensure_level(level);
  std::vector<Lit> assumptions = frame_assumptions(level);

  Lit tmp = sat::kLitUndef;
  if (!cube_clause_in_frame) {
    tmp = Lit::make(solver_->new_var());
    // The throw-away activation variable is never decided on and never
    // assumed again after this query, which leaves the temporary clause
    // permanently inert — no retiring unit clause is needed, so the kept
    // trail (and with it the assumption-prefix reuse) survives the query.
    solver_->set_decision_var(tmp.var(), false);
    std::vector<Lit> clause = c.negated_lits();
    clause.push_back(~tmp);
    solver_->add_clause(clause);
    assumptions.push_back(tmp);
  }
  for (const Lit l : c) assumptions.push_back(ts_.prime(l));

  const sat::SolveResult res = solver_->solve(assumptions, deadline);
  if (!cube_clause_in_frame) ++retired_tmp_;
  if (res == sat::SolveResult::kUnknown) throw TimeoutError{};
  if (res == sat::SolveResult::kSat) return false;
  if (core_out != nullptr) *core_out = shrink_with_core(c);
  return true;
}

void SolverManager::batch_ensure_level(std::size_t k) {
  while (batch_act_vars_.size() <= k) {
    batch_act_vars_.push_back(batch_solver_->new_var());
  }
}

void SolverManager::build_batch_solver(const Frames& frames) {
  if (batch_solver_) retired_sat_stats_ += batch_solver_->stats();
  batch_solver_ = std::make_unique<sat::Solver>();
  batch_solver_->set_seed(cfg_.seed);
  batch_solver_->set_trail_reuse(cfg_.sat_trail_reuse);
  batch_solver_->set_inprocess(cfg_.sat_inprocess);
  batch_copies_ = static_cast<std::size_t>(std::max(2, cfg_.gen_batch));
  batch_retired_tmp_ = 0;
  const auto stride = static_cast<Var>(ts_.num_encoding_vars());
  for (std::size_t i = 0; i < batch_copies_; ++i) {
    ts_.install_shifted(*batch_solver_, static_cast<Var>(i) * stride);
  }
  const auto shift = [stride](Lit l, std::size_t i) {
    return Lit::make(l.var() + static_cast<Var>(i) * stride, l.sign());
  };
  // One shared set of activation guards: every probe queries all copies at
  // the same level, and the guards occur in one polarity only, so they
  // cannot carry resolution across copies.
  batch_act_vars_.clear();
  batch_ensure_level(act_vars_.empty() ? 0 : act_vars_.size() - 1);
  for (std::size_t i = 0; i < batch_copies_; ++i) {
    for (const Lit l : ts_.init_literals()) {
      batch_solver_->add_binary(~Lit::make(batch_act_vars_[0]), shift(l, i));
    }
  }
  std::vector<std::vector<Cube>> buckets(frames.top_level() + 1);
  for (std::size_t j = 1; j <= frames.top_level(); ++j) {
    buckets[j] = frames.delta(j);
  }
  buckets = reduce_lemma_buckets(std::move(buckets), nullptr);
  for (std::size_t j = 1; j < buckets.size(); ++j) {
    batch_ensure_level(j);
    for (const Cube& c : buckets[j]) {
      for (std::size_t i = 0; i < batch_copies_; ++i) {
        std::vector<Lit> clause;
        clause.reserve(c.size() + 1);
        for (const Lit l : c) clause.push_back(shift(~l, i));
        clause.push_back(~Lit::make(batch_act_vars_[j]));
        batch_solver_->add_clause(clause);
      }
    }
  }
}

bool SolverManager::batch_drop_probe(const Cube& cube,
                                     const std::vector<Lit>& group,
                                     std::size_t level, const Frames& frames,
                                     BatchProbeResult* out,
                                     const Deadline& deadline) {
  obs::PhaseScope phase(&stats_.phases, obs::Phase::kSatSolve);
  if (!batch_solver_ || batch_retired_tmp_ >= cfg_.rebuild_tmp_threshold ||
      group.size() > batch_copies_) {
    build_batch_solver(frames);
  }
  batch_ensure_level(level);
  const auto stride = static_cast<Var>(ts_.num_encoding_vars());
  const auto shift = [stride](Lit l, std::size_t i) {
    return Lit::make(l.var() + static_cast<Var>(i) * stride, l.sign());
  };
  std::vector<Lit> assumptions;
  for (std::size_t j = batch_act_vars_.size(); j-- > level;) {
    assumptions.push_back(Lit::make(batch_act_vars_[j]));
  }
  // Copy i: temporary clause ¬(cube\mᵢ) under a throwaway activation (same
  // inert-retirement scheme as relative_inductive) plus (cube\mᵢ)′ assumed.
  std::vector<Lit> tmp_act(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    const Lit tmp = Lit::make(batch_solver_->new_var());
    batch_solver_->set_decision_var(tmp.var(), false);
    tmp_act[i] = tmp;
    std::vector<Lit> clause;
    clause.reserve(cube.size());
    for (const Lit x : cube) {
      if (x == group[i]) continue;
      clause.push_back(shift(~x, i));
    }
    clause.push_back(~tmp);
    batch_solver_->add_clause(clause);
    assumptions.push_back(tmp);
    for (const Lit x : cube) {
      if (x == group[i]) continue;
      assumptions.push_back(shift(ts_.prime(x), i));
    }
  }
  const sat::SolveResult res = batch_solver_->solve(assumptions, deadline);
  batch_retired_tmp_ += group.size();
  if (res == sat::SolveResult::kUnknown) throw TimeoutError{};

  if (res == sat::SolveResult::kSat) {
    // Every copy is satisfied, so every member's own single-drop query is
    // SAT: extract the per-copy models as exact CTIs.
    out->cti_states.clear();
    out->cti_inputs.clear();
    for (std::size_t i = 0; i < group.size(); ++i) {
      std::vector<Lit> state;
      state.reserve(ts_.num_latches());
      for (std::size_t j = 0; j < ts_.num_latches(); ++j) {
        const sat::LBool v = batch_solver_->model_value(
            shift(Lit::make(ts_.state_var(j)), i));
        if (v.is_undef()) continue;
        state.push_back(Lit::make(ts_.state_var(j), v.is_false()));
      }
      out->cti_states.push_back(Cube::from_lits(std::move(state)));
      std::vector<Lit> inputs;
      inputs.reserve(ts_.num_inputs());
      for (std::size_t j = 0; j < ts_.num_inputs(); ++j) {
        const sat::LBool v =
            batch_solver_->model_value(shift(Lit::make(ts_.input_var(j)), i));
        if (v.is_undef()) continue;
        inputs.push_back(Lit::make(ts_.input_var(j), v.is_false()));
      }
      out->cti_inputs.push_back(std::move(inputs));
    }
    return false;
  }

  // UNSAT: the copies share no variables (and the shared guards occur in
  // one polarity only), so the refutation lives inside one copy — the one
  // whose throwaway activation or primed assumptions the core mentions.
  const std::vector<Lit>& core = batch_solver_->core();
  std::size_t refuted = 0;
  bool found = false;
  for (const Lit l : core) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (l.var() == tmp_act[i].var()) {
        refuted = i;
        found = true;
        break;
      }
    }
    if (found) break;
    if (l.var() < static_cast<Var>(group.size()) * stride) {
      refuted = static_cast<std::size_t>(l.var() / stride);
      found = true;
      break;
    }
  }
  const Cube cand = cube.without(group[refuted]);
  for (const Lit l : core) {
    const auto idx = static_cast<std::size_t>(l.index());
    if (idx >= core_mark_.size()) core_mark_.resize(idx + 1, 0);
    core_mark_[idx] = 1;
  }
  std::vector<Lit> kept;
  for (const Lit l : cand) {
    const auto idx =
        static_cast<std::size_t>(shift(ts_.prime(l), refuted).index());
    if (idx < core_mark_.size() && core_mark_[idx] != 0) kept.push_back(l);
  }
  for (const Lit l : core) {
    core_mark_[static_cast<std::size_t>(l.index())] = 0;
  }
  Cube shrunk = Cube::from_sorted(std::move(kept));
  out->member_index = refuted;
  out->dropped =
      shrunk.empty() ? cand : repair_initiation(std::move(shrunk), cand);
  return true;
}

Cube SolverManager::repair_initiation(Cube shrunk, const Cube& full) const {
  if (!ts_.cube_intersects_init(shrunk.lits())) return shrunk;
  // Add back one literal of `full` that contradicts the initial cube.
  for (const Lit l : full) {
    if (shrunk.contains(l)) continue;
    const sat::LBool init = ts_.init_value(l.var());
    if (init.is_undef()) continue;
    const bool satisfied_in_init = init.is_true() != l.sign();
    if (!satisfied_in_init) {
      return shrunk.with_lit(l);
    }
  }
  return shrunk;
}

Cube SolverManager::shrink_with_core(const Cube& c) const {
  // Keep only the literals of c whose primed counterpart appears in the
  // final-conflict core, then repair initiation: the shrunk cube must stay
  // disjoint from I, which c itself is.  The core literals are marked in a
  // flag vector so the membership test is O(1) per literal instead of a
  // scan over the core.
  const std::vector<Lit>& core = solver_->core();
  for (const Lit l : core) {
    const auto idx = static_cast<std::size_t>(l.index());
    if (idx >= core_mark_.size()) core_mark_.resize(idx + 1, 0);
    core_mark_[idx] = 1;
  }
  std::vector<Lit> kept;
  for (const Lit l : c) {
    const auto idx = static_cast<std::size_t>(ts_.prime(l).index());
    if (idx < core_mark_.size() && core_mark_[idx] != 0) {
      kept.push_back(l);
    }
  }
  for (const Lit l : core) {
    core_mark_[static_cast<std::size_t>(l.index())] = 0;
  }
  Cube shrunk = Cube::from_sorted(std::move(kept));
  if (shrunk.empty()) return c;  // degenerate core; keep the original
  return repair_initiation(std::move(shrunk), c);
}

Cube SolverManager::model_state(bool primed) const {
  std::vector<Lit> lits;
  lits.reserve(ts_.num_latches());
  for (std::size_t i = 0; i < ts_.num_latches(); ++i) {
    const Var model_var =
        primed ? ts_.next_state_var(i) : ts_.state_var(i);
    const sat::LBool v = solver_->model_value(Lit::make(model_var));
    if (v.is_undef()) continue;
    lits.push_back(Lit::make(ts_.state_var(i), v.is_false()));
  }
  return Cube::from_lits(std::move(lits));
}

std::vector<Lit> SolverManager::model_inputs() const {
  std::vector<Lit> lits;
  lits.reserve(ts_.num_inputs());
  for (std::size_t i = 0; i < ts_.num_inputs(); ++i) {
    const Var v = ts_.input_var(i);
    const sat::LBool val = solver_->model_value(Lit::make(v));
    if (val.is_undef()) continue;
    lits.push_back(Lit::make(v, val.is_false()));
  }
  return lits;
}

void SolverManager::carry_solver_state(const sat::Solver& old,
                                       const std::vector<Var>& old_acts) {
  // Phase saving and VSIDS activities represent everything the retired
  // solver learned about where the search lives; starting the fresh solver
  // from them avoids re-warming the heuristics after every rebuild.
  // Encoding variables keep their indices across rebuilds; activation
  // literals are mapped level-by-level.  Activities are normalized so the
  // imported values sit in [0, 1] against the fresh solver's unit bump.
  const double max_act = old.max_activity();
  const double scale = max_act > 0.0 ? 1.0 / max_act : 0.0;
  std::uint64_t carried = 0;
  const Var encoding_vars = std::min<Var>(
      static_cast<Var>(ts_.num_encoding_vars()), solver_->num_vars());
  for (Var v = 0; v < encoding_vars; ++v) {
    solver_->set_phase(v, old.saved_phase(v));
    if (scale > 0.0) solver_->set_activity(v, old.activity(v) * scale);
    ++carried;
  }
  for (std::size_t j = 0; j < act_vars_.size() && j < old_acts.size(); ++j) {
    solver_->set_phase(act_vars_[j], old.saved_phase(old_acts[j]));
    if (scale > 0.0) {
      solver_->set_activity(act_vars_[j], old.activity(old_acts[j]) * scale);
    }
    ++carried;
  }
  stats_.num_rebuild_carried_phases += carried;
}

std::vector<std::vector<Cube>> reduce_lemma_buckets(
    std::vector<std::vector<Cube>> buckets, std::uint64_t* skipped) {
  // Flatten to (cube, level) and process smallest cubes first (ties: higher
  // level first): every potential subsumer precedes its victims, and of two
  // equal cubes the higher-level copy — whose clause covers a superset of
  // the frames — is the one kept.
  struct Entry {
    const Cube* cube;
    std::size_t level;
  };
  std::vector<Entry> entries;
  for (std::size_t j = 0; j < buckets.size(); ++j) {
    for (const Cube& c : buckets[j]) entries.push_back({&c, j});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.cube->size() != b.cube->size()) {
      return a.cube->size() < b.cube->size();
    }
    return a.level > b.level;
  });
  std::vector<std::vector<Cube>> kept(buckets.size());
  std::vector<Entry> accepted;
  std::uint64_t dropped = 0;
  for (const Entry& e : entries) {
    bool subsumed = false;
    for (const Entry& a : accepted) {
      // A kept cube at level ≥ e.level whose literals are a subset of e's
      // makes e redundant: its (stronger) clause is assumed in every frame
      // that would assume e's.
      if (a.level >= e.level && a.cube->subset_of(*e.cube)) {
        subsumed = true;
        break;
      }
    }
    if (subsumed) {
      ++dropped;
      continue;
    }
    accepted.push_back(e);
    kept[e.level].push_back(*e.cube);
  }
  if (skipped != nullptr) *skipped += dropped;
  return kept;
}

void SolverManager::rebuild(const Frames& frames) {
  obs::PhaseScope phase(&stats_.phases, obs::Phase::kRebuild);
  const std::size_t levels = act_vars_.size();
  const std::unique_ptr<sat::Solver> old = std::move(solver_);
  const std::vector<Var> old_acts = std::move(act_vars_);
  retired_sat_stats_ += old->stats();
  if (batch_solver_) {
    // Retire the batch-probe solver with the main one; the next probe
    // rebuilds it lazily from the freshly swept frames.
    retired_sat_stats_ += batch_solver_->stats();
    batch_solver_.reset();
    batch_act_vars_.clear();
  }
  solver_ = std::make_unique<sat::Solver>();
  solver_->set_seed(cfg_.seed);
  solver_->set_trail_reuse(cfg_.sat_trail_reuse);
  solver_->set_inprocess(cfg_.sat_inprocess);
  install_base();
  ensure_level(levels == 0 ? 0 : levels - 1);
  // Sweep the lemma set across levels before re-adding: rebuilds shrink
  // the CNF instead of replaying install history.  Plain add_clause here —
  // the swept set is subsumption-free, so the install-time pass would only
  // burn occurrence-list scans.
  std::vector<std::vector<Cube>> buckets(frames.top_level() + 1);
  for (std::size_t j = 1; j <= frames.top_level(); ++j) {
    buckets[j] = frames.delta(j);
  }
  buckets = reduce_lemma_buckets(std::move(buckets),
                                 &stats_.num_rebuild_subsumed);
  for (std::size_t j = 1; j < buckets.size(); ++j) {
    ensure_level(j);
    for (const Cube& c : buckets[j]) {
      std::vector<Lit> clause = c.negated_lits();
      clause.push_back(~act(j));
      solver_->add_clause(clause);
    }
  }
  if (cfg_.rebuild_carry_state) carry_solver_state(*old, old_acts);
  ++stats_.num_solver_rebuilds;
  PILOT_DEBUG("solver rebuilt; lemmas=" << frames.total_lemmas());
}

void SolverManager::maybe_rebuild(const Frames& frames) {
  if (retired_tmp_ >= cfg_.rebuild_tmp_threshold) {
    rebuild(frames);
  } else if (cfg_.sat_inprocess) {
    // Between rebuilds, spend the frame boundary vivifying the newest long
    // learnts — the trail is about to go cold here regardless.
    obs::PhaseScope phase(&stats_.phases, obs::Phase::kSatVivify);
    solver_->vivify_learnts(kVivifyPerBoundary);
  }
}

}  // namespace pilot::ic3
