/// \file invariant_mining.cpp
/// Uses the public API to extract, inspect, and independently certify the
/// inductive invariant IC3 produces for a safe design — the workflow a
/// verification engineer follows when the proof artifact matters as much as
/// the verdict (e.g. for certificate checking or design understanding).
///
/// Run:  ./build/examples/invariant_mining [--n N]
#include <cstdio>
#include <map>

#include "circuits/families.hpp"
#include "ic3/engine.hpp"
#include "ic3/witness.hpp"
#include "ts/transition_system.hpp"
#include "util/options.hpp"

using namespace pilot;

int main(int argc, char** argv) {
  std::int64_t n = 8;
  OptionParser parser("invariant_mining — extract & certify IC3 invariants");
  parser.add_int("n", &n, "token ring size");
  if (!parser.parse(argc, argv)) return 1;

  // A one-hot token ring: the textbook example of a design whose safety
  // proof IS its invariant ("exactly one token").
  const circuits::CircuitCase ring =
      circuits::token_ring_safe(static_cast<std::size_t>(n));
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(ring.aig);

  ic3::Config cfg;
  cfg.predict_lemmas = true;
  ic3::Engine engine(ts, cfg);
  const ic3::Result result = engine.check();

  if (result.verdict != ic3::Verdict::kSafe || !result.invariant) {
    std::printf("unexpected verdict %s\n", ic3::to_string(result.verdict));
    return 1;
  }

  const ic3::InductiveInvariant& inv = *result.invariant;
  std::printf("token_ring(%lld): SAFE in %.3fs, invariant has %zu clauses\n\n",
              static_cast<long long>(n), result.seconds, inv.num_clauses());

  // Lemma length histogram: short clauses = strong facts.
  std::map<std::size_t, int> histogram;
  for (const ic3::Cube& c : inv.lemma_cubes) ++histogram[c.size()];
  std::printf("clause length histogram:\n");
  for (const auto& [len, count] : histogram) {
    std::printf("  %2zu literals: %d clause(s)\n", len, count);
  }

  // Show a few lemmas in readable form (cube = set of blocked states).
  std::printf("\nsample lemmas (as blocked cubes over latch variables):\n");
  std::size_t shown = 0;
  for (const ic3::Cube& c : inv.lemma_cubes) {
    if (shown++ == 5) break;
    std::printf("  ¬%s\n", c.to_string().c_str());
  }

  // Independent certification (initiation, consecution, property).
  const ic3::CheckOutcome check = ic3::check_invariant(ts, inv);
  std::printf("\nindependent certification: %s%s%s\n",
              check.ok ? "PASSED" : "FAILED", check.ok ? "" : " — ",
              check.reason.c_str());
  return check.ok ? 0 : 1;
}
