#include "corpus/bench_diff.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace pilot::corpus {

namespace {

double to_nanoseconds(double value, const std::string& unit) {
  if (unit == "ns" || unit.empty()) return value;
  if (unit == "us") return value * 1e3;
  if (unit == "ms") return value * 1e6;
  if (unit == "s") return value * 1e9;
  throw std::runtime_error("benchmark json: unknown time_unit '" + unit +
                           "'");
}

std::string format_ns(double ns) {
  char buf[64];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3fs", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fns", ns);
  }
  return buf;
}

std::string format_ratio(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", (ratio - 1.0) * 100.0);
  return buf;
}

}  // namespace

std::vector<BenchEntry> parse_benchmark_json(const json::Value& doc) {
  const json::Value& rows = doc.at("benchmarks");
  if (!rows.is_array()) {
    throw std::runtime_error(
        "benchmark json: no \"benchmarks\" array (expected "
        "--benchmark_out_format=json output)");
  }
  // Two passes over one map: median aggregates supersede plain rows of the
  // same run name, so files with and without --benchmark_repetitions both
  // produce one entry per benchmark.
  std::map<std::string, BenchEntry> by_name;
  std::map<std::string, bool> from_aggregate;
  for (const json::Value& row : rows.as_array()) {
    const std::string run_type = row.at("run_type").as_string();
    const std::string aggregate = row.at("aggregate_name").as_string();
    const bool is_aggregate = run_type == "aggregate";
    if (is_aggregate && aggregate != "median") continue;
    // Aggregates carry the underlying benchmark name in run_name.
    std::string name = row.at("run_name").as_string();
    if (name.empty()) name = row.at("name").as_string();
    if (name.empty()) continue;
    if (from_aggregate[name] && !is_aggregate) continue;
    const std::string unit = row.at("time_unit").as_string();
    BenchEntry e;
    e.name = name;
    e.cpu_time_ns = to_nanoseconds(row.at("cpu_time").as_double(), unit);
    by_name[name] = std::move(e);
    from_aggregate[name] = is_aggregate;
  }
  std::vector<BenchEntry> out;
  out.reserve(by_name.size());
  for (auto& [name, entry] : by_name) out.push_back(std::move(entry));
  return out;
}

std::vector<BenchEntry> load_benchmark_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("benchmark json: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_benchmark_json(json::parse(text.str()));
}

BenchDiffReport diff_benchmarks(const std::vector<BenchEntry>& baseline,
                                const std::vector<BenchEntry>& current,
                                const BenchDiffOptions& options) {
  std::map<std::string, const BenchEntry*> cur_by_name;
  for (const BenchEntry& e : current) cur_by_name[e.name] = &e;

  BenchDiffReport report;
  std::map<std::string, bool> base_names;
  for (const BenchEntry& b : baseline) {
    base_names[b.name] = true;
    const auto it = cur_by_name.find(b.name);
    if (it == cur_by_name.end()) {
      report.only_in_baseline.push_back(b.name);
      continue;
    }
    BenchDiffEntry e;
    e.name = b.name;
    e.base_ns = b.cpu_time_ns;
    e.cur_ns = it->second->cpu_time_ns;
    const double slower = std::max(e.base_ns, e.cur_ns);
    if (slower < options.min_time_ns || e.base_ns <= 0.0) {
      report.unchanged.push_back(e);
    } else if (e.ratio() > options.slow_ratio) {
      report.slowdowns.push_back(e);
    } else if (e.ratio() < 1.0 / options.fast_ratio) {
      report.improvements.push_back(e);
    } else {
      report.unchanged.push_back(e);
    }
  }
  for (const BenchEntry& c : current) {
    if (base_names.find(c.name) == base_names.end()) {
      report.only_in_current.push_back(c.name);
    }
  }
  const auto worst_first = [](const BenchDiffEntry& a,
                              const BenchDiffEntry& b) {
    return a.ratio() > b.ratio();
  };
  std::sort(report.slowdowns.begin(), report.slowdowns.end(), worst_first);
  std::sort(report.improvements.begin(), report.improvements.end(),
            [](const BenchDiffEntry& a, const BenchDiffEntry& b) {
              return a.ratio() < b.ratio();
            });
  return report;
}

std::string BenchDiffReport::summary(const BenchDiffOptions& options) const {
  std::ostringstream out;
  const auto describe = [&](const char* label,
                            const std::vector<BenchDiffEntry>& entries) {
    if (entries.empty()) return;
    out << label << " (" << entries.size() << "):\n";
    for (const BenchDiffEntry& e : entries) {
      out << "  " << e.name << ": " << format_ns(e.base_ns) << " -> "
          << format_ns(e.cur_ns) << "  (" << format_ratio(e.ratio())
          << ")\n";
    }
  };
  char threshold[64];
  std::snprintf(threshold, sizeof(threshold),
                "SLOWDOWNS beyond %+.0f%%", (options.slow_ratio - 1.0) * 100);
  describe(threshold, slowdowns);
  describe("improvements", improvements);
  if (!only_in_baseline.empty()) {
    out << "only in baseline (" << only_in_baseline.size() << "):\n";
    for (const std::string& n : only_in_baseline) out << "  " << n << "\n";
  }
  if (!only_in_current.empty()) {
    out << "only in current (" << only_in_current.size() << "):\n";
    for (const std::string& n : only_in_current) out << "  " << n << "\n";
  }
  out << unchanged.size() << " within threshold\n";
  out << (failed(options)
              ? "RESULT: PERF REGRESSION"
              : (slowdowns.empty() ? "RESULT: OK"
                                   : "RESULT: SLOWDOWNS (advisory)"))
      << "\n";
  return out.str();
}

std::string BenchDiffReport::markdown(const BenchDiffOptions& options) const {
  std::ostringstream out;
  out << "### micro-benchmark diff\n\n";
  if (slowdowns.empty() && improvements.empty()) {
    out << "No benchmark moved beyond "
        << format_ratio(options.slow_ratio) << ".\n";
  } else {
    out << "| benchmark | baseline | current | delta |\n";
    out << "|---|---:|---:|---:|\n";
    for (const BenchDiffEntry& e : slowdowns) {
      out << "| :red_circle: " << e.name << " | " << format_ns(e.base_ns)
          << " | " << format_ns(e.cur_ns) << " | " << format_ratio(e.ratio())
          << " |\n";
    }
    for (const BenchDiffEntry& e : improvements) {
      out << "| :green_circle: " << e.name << " | " << format_ns(e.base_ns)
          << " | " << format_ns(e.cur_ns) << " | " << format_ratio(e.ratio())
          << " |\n";
    }
  }
  out << "\n" << unchanged.size() << " benchmark(s) within threshold";
  if (!only_in_current.empty()) {
    out << ", " << only_in_current.size() << " new";
  }
  if (!only_in_baseline.empty()) {
    out << ", " << only_in_baseline.size() << " removed";
  }
  out << ".\n";
  return out.str();
}

}  // namespace pilot::corpus
