/// \file fig2_cactus.cpp
/// Reproduces **Figure 2: Comparisons among the different configurations**
/// — the cactus/survival plot: for a growing time limit T, how many cases
/// each configuration solves within T.
///
/// Output: one series per configuration (rows: time-limit milliseconds,
/// cumulative solved count), ready for plotting.  The expected shape is the
/// `-pl` curves running above/left of their baselines.
#include <algorithm>

#include "bench/bench_common.hpp"

using namespace pilot;
using namespace pilot::bench;

int main(int argc, char** argv) {
  BenchArgs args;
  if (!parse_bench_args(argc, argv,
                        "fig2_cactus — Figure 2: time vs solved instances",
                        &args)) {
    return 1;
  }
  const auto records = run_suite(args, check::paper_configurations());
  const auto groups = by_engine(records);

  std::printf("Figure 2: cases solved within time limit (budget %lld ms)\n\n",
              static_cast<long long>(args.budget_ms));

  // Sample the survival curve at log-spaced time points.
  std::vector<double> points_ms;
  for (double t = 1.0; t <= static_cast<double>(args.budget_ms); t *= 2.0) {
    points_ms.push_back(t);
  }
  points_ms.push_back(static_cast<double>(args.budget_ms));

  std::printf("%-14s", "time-limit-ms");
  for (const std::string& spec : check::paper_configurations()) {
    std::printf(" %12s", paper_label(spec).c_str());
  }
  std::printf("\n");
  for (const double t : points_ms) {
    std::printf("%-14.0f", t);
    for (const std::string& spec : check::paper_configurations()) {
      int solved = 0;
      for (const auto& r : groups.at(spec)) {
        if (r.solved && r.seconds * 1000.0 <= t) ++solved;
      }
      std::printf(" %12d", solved);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check vs paper: the -pl series dominate their baselines for\n"
      "large T; all IC3 variants overtake PDR-style settings eventually.\n");
  return 0;
}
