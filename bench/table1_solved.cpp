/// \file table1_solved.cpp
/// Reproduces **Table 1: Summary of Results** — solved / safe / unsafe
/// counts for the six configurations.
///
/// Paper setting: HWMCC'15+'17 (730 cases), 1000 s, AMD EPYC 7532.
/// Here: the synthetic suite (DESIGN.md §1) with a scaled budget.  The
/// expected *shape* is that each `-pl` configuration solves at least as
/// many cases as its baseline, with the gains concentrated in safe cases
/// (as in the paper: +9/+5 safe vs +1/+3 unsafe).
#include "bench/bench_common.hpp"

using namespace pilot;
using namespace pilot::bench;

int main(int argc, char** argv) {
  BenchArgs args;
  if (!parse_bench_args(argc, argv,
                        "table1_solved — Table 1: Summary of Results", &args)) {
    return 1;
  }
  const auto records = run_suite(args, check::paper_configurations());
  const auto groups = by_engine(records);
  const std::size_t total = groups.begin()->second.size();

  std::printf("Table 1: Summary of Results  (%zu cases, %lld ms budget)\n\n",
              total, static_cast<long long>(args.budget_ms));
  std::printf("%-14s %8s %8s %8s\n", "Configuration", "Solved", "Safe",
              "Unsafe");
  for (const std::string& spec : check::paper_configurations()) {
    int solved = 0;
    int safe = 0;
    int unsafe = 0;
    for (const auto& r : groups.at(spec)) {
      if (!r.solved) continue;
      ++solved;
      if (r.verdict == ic3::Verdict::kSafe) ++safe;
      if (r.verdict == ic3::Verdict::kUnsafe) ++unsafe;
    }
    std::printf("%-14s %8d %8d %8d\n", paper_label(spec).c_str(), solved,
                safe, unsafe);
  }
  std::printf(
      "\nShape check vs paper: each -pl row should solve >= its baseline\n"
      "(paper: RIC3 365->375, IC3ref 371->379 of 730 cases at 1000s).\n");
  return 0;
}
