/// \file families.hpp
/// Parameterized synthetic benchmark families with verdicts known by
/// construction — the repository's substitute for the HWMCC'15/'17 sets
/// (see DESIGN.md §1 for the substitution rationale).
///
/// Every generator returns a `CircuitCase` whose `expected_safe` flag is
/// guaranteed by the construction; unsafe cases additionally record the
/// exact (or minimum) counterexample depth when it is known.  The families
/// deliberately cover the behaviours that drive IC3's code paths:
/// deep counterexamples (locks, counters), strong inductive invariants
/// (one-hot rings, twin counters, saturation bounds), push failures / CTPs
/// (wrap-around counters, fifo occupancy), and AIGER constraint handling
/// (constrained shift registers).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace pilot::circuits {

struct CircuitCase {
  std::string name;
  std::string family;
  aig::Aig aig;
  bool expected_safe = true;
  /// Exact bad-at-frame depth for unsafe cases (-1 when only the verdict is
  /// known).  Frame 0 means the initial state can already raise bad.
  int expected_cex_length = -1;
};

// --- counters ---------------------------------------------------------------

/// w-bit free-running counter; bad when it reaches `target` (unsafe,
/// depth = target).
CircuitCase counter_unsafe(std::size_t width, std::uint64_t target);

/// Counter wrapping at `limit`; bad at `target` ≥ limit (safe: IC3 must
/// learn count < limit bit lemmas).
CircuitCase counter_wrap_safe(std::size_t width, std::uint64_t limit,
                              std::uint64_t target);

/// Counter gated by an enable input; bad at `target` (unsafe, min depth
/// = target).
CircuitCase counter_enable_unsafe(std::size_t width, std::uint64_t target);

// --- combination locks (classic deep-counterexample stressors) --------------

/// Lock opening after the input matches `digits` in sequence
/// (unsafe, depth = |digits|).
CircuitCase combination_lock_unsafe(std::size_t input_width,
                                    const std::vector<std::uint64_t>& digits);

/// Same lock with one unsatisfiable stage (safe).
CircuitCase combination_lock_safe(std::size_t input_width,
                                  const std::vector<std::uint64_t>& digits,
                                  std::size_t broken_stage);

// --- shift registers ---------------------------------------------------------

/// Shift register; bad when the last stage is set.  Unsafe (depth = width)
/// unless `constrain_input_zero`, which adds an AIGER invariant constraint
/// forcing the input low (safe).
CircuitCase shift_register(std::size_t width, bool constrain_input_zero);

// --- token rings & arbiters ---------------------------------------------------

/// One-hot rotating token; bad = two tokens (safe).
CircuitCase token_ring_safe(std::size_t n);
/// Token duplication triggered by an input (unsafe, depth 1).
CircuitCase token_ring_unsafe(std::size_t n);

/// Round-robin arbiter: grants masked by a one-hot token; bad = two grants
/// (safe: needs the one-hot invariant).
CircuitCase arbiter_safe(std::size_t n);
/// Arbiter whose token duplicates when no request is pending
/// (unsafe, shallow).
CircuitCase arbiter_unsafe(std::size_t n);

// --- coding / datapath --------------------------------------------------------

/// Gray-code checker: consecutive encodings must differ in exactly one bit
/// (safe for the real Gray code).
CircuitCase gray_counter_safe(std::size_t width);
/// Same checker over the faulty encoding b ^ (b >> 2) (unsafe, depth 4).
CircuitCase gray_counter_unsafe(std::size_t width);

/// Fibonacci LFSR with MSB tap: never reaches the all-zero state (safe).
CircuitCase lfsr_safe(std::size_t width, std::uint64_t taps);
/// Bad = the state reached after `steps` iterations, found by simulation
/// (unsafe, depth = steps).
CircuitCase lfsr_unsafe(std::size_t width, std::uint64_t taps, int steps);

/// Rotating register with odd initial parity; bad = even parity (safe, but
/// the invariant is a wide XOR — intentionally hard for clause learning).
CircuitCase ring_parity_safe(std::size_t width);

// --- bounded resources ---------------------------------------------------------

/// FIFO occupancy counter with push/pop; bad = occupancy > capacity (safe).
CircuitCase fifo_safe(std::size_t width, std::uint64_t capacity);
/// Off-by-one full check (unsafe, depth = capacity + 1).
CircuitCase fifo_unsafe(std::size_t width, std::uint64_t capacity);

/// Saturating accumulator; bad = accumulator > cap (safe).
CircuitCase saturating_accumulator_safe(std::size_t width,
                                        std::uint64_t cap);
/// Saturation threshold off by one (unsafe).
CircuitCase saturating_accumulator_unsafe(std::size_t width,
                                          std::uint64_t cap);

// --- lockstep / protocol --------------------------------------------------------

/// Two counters in lockstep; bad = they differ (safe).
CircuitCase twin_counters_safe(std::size_t width);
/// Second counter gated by an input (unsafe, depth 1).
CircuitCase twin_counters_unsafe(std::size_t width);

/// Two-process mutual exclusion with a turn latch; bad = both critical
/// (safe).
CircuitCase mutex_safe();
/// "Enter when the other looks idle" shortcut (unsafe, shallow).
CircuitCase mutex_unsafe();

}  // namespace pilot::circuits
