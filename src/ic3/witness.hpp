/// \file witness.hpp
/// Verifiable certificates for both verdicts.
///
/// UNSAFE → a `Trace`: a chain of cubes with the inputs driving each step.
/// Lifting guarantees the chain is *universal*: every concrete state in
/// cube i transitions (under the recorded inputs) into cube i+1, and every
/// state of the last cube raises the bad signal — so a concrete
/// counterexample can be replayed by plain simulation from any init state
/// in the first cube.
///
/// SAFE → an `InductiveInvariant`: the clause set of the fixpoint frame.
/// Certification re-checks initiation, consecution, and property with an
/// independent SAT solver.
#pragma once

#include <string>
#include <vector>

#include "ic3/cube.hpp"
#include "ts/transition_system.hpp"

namespace pilot::ic3 {

/// Counterexample: states[0] intersects I; inputs[i] drives states[i] to
/// states[i+1]; inputs.back() drives states.back() into the bad signal.
struct Trace {
  std::vector<Cube> states;
  std::vector<std::vector<Lit>> inputs;

  [[nodiscard]] std::size_t length() const { return states.size(); }
};

/// Inductive strengthening: the conjunction of clauses ¬cube.
struct InductiveInvariant {
  std::vector<Cube> lemma_cubes;

  [[nodiscard]] std::size_t num_clauses() const { return lemma_cubes.size(); }
};

/// Outcome of a certificate check; `ok` plus a human-readable reason.
struct CheckOutcome {
  bool ok = true;
  std::string reason;
};

/// Replays the trace on the AIG with a concrete initial state drawn from
/// states[0] ∧ I and checks that the bad signal fires at the end.
CheckOutcome check_trace(const ts::TransitionSystem& ts, const Trace& trace);

/// Certifies the invariant with an independent solver:
///   (a) I ⇒ INV, (b) INV ∧ T ⇒ INV′, (c) INV ∧ bad unsatisfiable.
CheckOutcome check_invariant(const ts::TransitionSystem& ts,
                             const InductiveInvariant& inv);

/// Renders a concrete counterexample in the AIGER/HWMCC witness format:
///   1          (property violated)
///   b<index>   (which bad property)
///   <latch reset line>      e.g. 00100
///   <one input line per step>
///   .
/// The trace cubes are concretized with the same defaults the checker
/// uses (reset values, then cube literals, then 0), so the emitted witness
/// replays on any AIGER simulator.
std::string to_aiger_witness(const ts::TransitionSystem& ts,
                             const Trace& trace,
                             std::size_t property_index = 0);

}  // namespace pilot::ic3
