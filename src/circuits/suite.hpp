/// \file suite.hpp
/// The named benchmark suite: a deterministic set of CircuitCase instances
/// spanning all families, safe and unsafe, shallow and deep.
///
/// Three sizes share the same families and only differ in parameter ranges:
///   kTiny  — seconds-long CI runs (unit/integration tests)
///   kQuick — the default for the bench harness (default budgets)
///   kFull  — closest analogue of the paper's 730-case HWMCC evaluation
#pragma once

#include <vector>

#include "circuits/families.hpp"

namespace pilot::circuits {

enum class SuiteSize { kTiny, kQuick, kFull };

std::vector<CircuitCase> make_suite(SuiteSize size);

/// Convenience: parse "tiny"/"quick"/"full".
SuiteSize suite_size_from_string(const std::string& text);

}  // namespace pilot::circuits
