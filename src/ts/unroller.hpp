/// \file unroller.hpp
/// Incremental time-frame expansion of a transition system inside one SAT
/// solver — the substrate for BMC and k-induction.
///
/// Frame f gets a full copy of the combinational step variables; the latch
/// variables of frame f+1 are fresh and constrained to equal the next-state
/// functions evaluated at frame f.  Frames are only ever appended, so all
/// learnt clauses remain valid (pure incremental unrolling).
#pragma once

#include <vector>

#include "sat/solver.hpp"
#include "ts/transition_system.hpp"

namespace pilot::ts {

class Unroller {
 public:
  /// Binds the unroller to a fresh solver.  When `assert_init` holds, the
  /// initial-state cube is asserted at frame 0 (BMC); k-induction leaves the
  /// first frame unconstrained.
  Unroller(const TransitionSystem& ts, sat::Solver& solver,
           bool assert_init = true);

  /// Ensures frames 0..k exist (combinational logic encoded for each).
  void extend_to(int k);

  /// Number of encoded frames minus one (largest valid frame index).
  [[nodiscard]] int max_frame() const {
    return static_cast<int>(frame_base_.size()) - 1;
  }

  /// Literal of an AIG literal at time frame f.
  [[nodiscard]] Lit lit(AigLit l, int frame) const {
    return Lit::make(frame_base_[frame] + static_cast<Var>(l.node()),
                     l.negated());
  }

  /// Bad-cone literal at frame f.
  [[nodiscard]] Lit bad(int frame) const {
    return Lit::make(frame_base_[frame] + bad_template_.var(),
                     bad_template_.sign());
  }

  /// State variable of latch i at frame f.
  [[nodiscard]] Var state_var(std::size_t latch_index, int frame) const {
    return frame_base_[frame] +
           static_cast<Var>(ts_.aig().latches()[latch_index]);
  }
  /// Input variable of input i at frame f.
  [[nodiscard]] Var input_var(std::size_t input_index, int frame) const {
    return frame_base_[frame] +
           static_cast<Var>(ts_.aig().inputs()[input_index]);
  }

  const TransitionSystem& system() const { return ts_; }

 private:
  void encode_frame();

  const TransitionSystem& ts_;
  sat::Solver& solver_;
  bool assert_init_;
  Lit bad_template_;             // bad literal relative to a frame base
  std::vector<Var> frame_base_;  // first variable of each frame
};

}  // namespace pilot::ts
