#pragma once

/// Low-overhead structured tracing.
///
/// Each thread that records events owns a fixed-size ring buffer of POD
/// records; writers never take a lock on the hot path (one relaxed check of
/// the global enable flag, then stores into the thread's own ring).  The
/// collector keeps every ring alive after its thread exits so a post-run
/// exporter can merge all streams into a Chrome trace-event JSON file that
/// loads in Perfetto / chrome://tracing.
///
/// Hot-path cost model:
///  * runtime off (the default): one relaxed atomic load + branch per zone —
///    measured < 1% on the BM_TraceZoneOverhead microbench.
///  * runtime on: two steady_clock reads and two ring stores per zone.
///  * compile-time off (cmake -DPILOT_TRACE=OFF): the zone/counter macros
///    expand to `((void)0)`; the export API stays linkable and emits an
///    empty (but valid) trace.
///
/// Rings overwrite their oldest records when full ("drop-oldest"): the write
/// index is a monotonic event counter, the slot is `index % capacity`, so the
/// number of dropped events is exactly `max(0, index - capacity)`.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pilot::obs {

enum class EventType : std::uint8_t {
  kBegin = 0,    // zone open  (Chrome "B")
  kEnd = 1,      // zone close (Chrome "E")
  kInstant = 2,  // point event (Chrome "i")
  kCounter = 3,  // sampled counter value in a0 (Chrome "C")
};

/// Fixed-size trace record: timestamp, interned name id, type, and two
/// payload words whose meaning depends on the event type.
struct TraceEvent {
  std::uint64_t ts_ns = 0;    // nanoseconds since the collector epoch
  std::uint32_t name_id = 0;  // from intern_name(); 0 is "no event"
  EventType type = EventType::kInstant;
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
};

/// Global runtime switch. Off by default; flip before the run to record.
[[nodiscard]] bool trace_enabled();
void set_trace_enabled(bool on);

/// Interns `name` into the collector's string table and returns a stable id
/// (>= 1). Takes a mutex — call once per site and cache the result (the
/// PILOT_TRACE_ZONE macro does this with a function-local static).
[[nodiscard]] std::uint32_t intern_name(const std::string& name);

/// Records one event into the calling thread's ring (no-op when tracing is
/// runtime-disabled). The first record from a thread registers its stream
/// with the collector.
void record_event(EventType type, std::uint32_t name_id, std::uint64_t a0 = 0,
                  std::uint64_t a1 = 0);

/// Names the calling thread's track in the exported trace (e.g. the backend
/// name of a portfolio worker). Unnamed threads get "thread-<n>".
void name_current_thread(const std::string& name);

/// Merged export of every stream recorded since the last reset, as Chrome
/// trace-event JSON (the `{"traceEvents": [...]}` object form).
[[nodiscard]] std::string export_chrome_trace();

/// export_chrome_trace() to a file. Returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

/// Test hooks -----------------------------------------------------------------

/// Per-stream snapshot: the surviving events (oldest first) plus exact
/// recorded/dropped accounting.
struct StreamSnapshot {
  std::string thread_name;
  std::uint64_t recorded = 0;  // total events ever written to this ring
  std::uint64_t dropped = 0;   // overwritten before export
  std::vector<TraceEvent> events;
};

[[nodiscard]] std::vector<StreamSnapshot> snapshot_streams();

/// Drops all streams and starts a new collector epoch (threads re-register
/// their rings on the next record). Interned names survive. Tests only.
void reset_trace();

/// Ring capacity (in events) for streams registered after the call; takes
/// effect with reset_trace(). Tests only.
void set_ring_capacity(std::size_t events);

/// RAII zone: emits kBegin on construction and kEnd on destruction when
/// tracing was enabled at construction time.
class ScopedZone {
 public:
  explicit ScopedZone(std::uint32_t name_id, std::uint64_t a0 = 0,
                      std::uint64_t a1 = 0) {
    if (trace_enabled()) {
      name_id_ = name_id;
      record_event(EventType::kBegin, name_id, a0, a1);
    }
  }
  ~ScopedZone() {
    if (name_id_ != 0) record_event(EventType::kEnd, name_id_);
  }
  ScopedZone(const ScopedZone&) = delete;
  ScopedZone& operator=(const ScopedZone&) = delete;

 private:
  std::uint32_t name_id_ = 0;
};

}  // namespace pilot::obs

// Zone/counter macros. `cmake -DPILOT_TRACE=OFF` defines
// PILOT_TRACE_DISABLED on the build-flags target and compiles them away.
#if defined(PILOT_TRACE_DISABLED)

#define PILOT_TRACE_ZONE(name_) ((void)0)
#define PILOT_TRACE_COUNTER(name_, value_) ((void)0)
#define PILOT_TRACE_INSTANT(name_) ((void)0)

#else

#define PILOT_OBS_CONCAT2(a_, b_) a_##b_
#define PILOT_OBS_CONCAT(a_, b_) PILOT_OBS_CONCAT2(a_, b_)

/// Opens a trace zone covering the rest of the enclosing scope. `name_` must
/// be a string literal (it is interned once per call site).
#define PILOT_TRACE_ZONE(name_)                                              \
  static const std::uint32_t PILOT_OBS_CONCAT(pilot_trace_id_, __LINE__) =   \
      ::pilot::obs::intern_name(name_);                                      \
  const ::pilot::obs::ScopedZone PILOT_OBS_CONCAT(pilot_trace_zone_,         \
                                                  __LINE__)(                 \
      PILOT_OBS_CONCAT(pilot_trace_id_, __LINE__))

/// Records a sampled counter value (rendered as a counter track).
#define PILOT_TRACE_COUNTER(name_, value_)                                   \
  do {                                                                       \
    if (::pilot::obs::trace_enabled()) {                                     \
      static const std::uint32_t pilot_trace_ctr_id_ =                       \
          ::pilot::obs::intern_name(name_);                                  \
      ::pilot::obs::record_event(::pilot::obs::EventType::kCounter,          \
                                 pilot_trace_ctr_id_,                        \
                                 static_cast<std::uint64_t>(value_));        \
    }                                                                        \
  } while (0)

/// Records a point event.
#define PILOT_TRACE_INSTANT(name_)                                           \
  do {                                                                       \
    if (::pilot::obs::trace_enabled()) {                                     \
      static const std::uint32_t pilot_trace_evt_id_ =                       \
          ::pilot::obs::intern_name(name_);                                  \
      ::pilot::obs::record_event(::pilot::obs::EventType::kInstant,          \
                                 pilot_trace_evt_id_);                       \
    }                                                                        \
  } while (0)

#endif  // PILOT_TRACE_DISABLED
