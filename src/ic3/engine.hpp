/// \file engine.hpp
/// The IC3 model checking engine (Algorithm 1 of the paper, queue-based),
/// with the blue-line extensions of Algorithm 2 enabled by
/// Config::predict_lemmas.
///
/// Usage:
///   auto ts = ts::TransitionSystem::from_aig(aig);
///   ic3::Config cfg; cfg.predict_lemmas = true;
///   ic3::Engine engine(ts, cfg);
///   ic3::Result r = engine.check(Deadline::in_seconds(10));
///
/// The result carries a verifiable witness (trace or inductive invariant)
/// and the success-rate statistics of the paper's §4.3.
#pragma once

#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "ic3/config.hpp"
#include "ic3/cube.hpp"
#include "ic3/frames.hpp"
#include "ic3/generalizer.hpp"
#include "ic3/lemma_bus.hpp"
#include "ic3/lifter.hpp"
#include "ic3/solver_manager.hpp"
#include "ic3/stats.hpp"
#include "ic3/witness.hpp"
#include "ts/transition_system.hpp"
#include "util/timer.hpp"

namespace pilot::ic3 {

enum class Verdict { kSafe, kUnsafe, kUnknown };

[[nodiscard]] inline const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kSafe: return "SAFE";
    case Verdict::kUnsafe: return "UNSAFE";
    default: return "UNKNOWN";
  }
}

struct Result {
  Verdict verdict = Verdict::kUnknown;
  std::size_t frames = 0;
  double seconds = 0.0;
  Ic3Stats stats;
  std::optional<Trace> trace;                  // when UNSAFE
  std::optional<InductiveInvariant> invariant; // when SAFE
};

class Engine {
 public:
  explicit Engine(const ts::TransitionSystem& ts, Config cfg = {});

  /// Runs the check until a verdict, until the deadline expires, or until
  /// `cancel` (when non-null) requests a stop.  Timeout and cancellation
  /// both yield Verdict::kUnknown with the statistics gathered so far and
  /// an empty obligation queue, so the caller sees a clean partial run.
  Result check(Deadline deadline = {}, const CancelToken* cancel = nullptr);

  /// Obligations still queued (0 after every check(), including aborted
  /// ones — exposed so tests can assert cancellation leaves no dangling
  /// proof state).
  [[nodiscard]] std::size_t pending_obligations() const {
    return queue_.size();
  }

 private:
  struct Obligation {
    Cube cube;
    std::size_t level = 0;
    std::size_t depth = 0;
    int successor = -1;       // pool index of the obligation this one feeds
    std::vector<Lit> inputs;  // inputs driving cube into successor (or bad)
  };
  using QueueKey = std::tuple<std::size_t, std::size_t, int>;

  /// Blocks the root obligation; returns false when a counterexample chain
  /// reached the initial states (cex_leaf_ set).
  bool block(int root_index, const Deadline& deadline);

  void add_lemma(const Cube& cube, std::size_t level);
  bool propagate(const Deadline& deadline);
  /// Polls Config::lemma_bus (when set) and installs every peer lemma that
  /// survives one relative-induction validation query; called at each
  /// propagation boundary.
  void import_shared_lemmas(const Deadline& deadline);
  /// Refreshes the live SAT counters (absorb_sat is idempotent) and, when
  /// Config::progress is set, publishes a snapshot to the heartbeat sink.
  void publish_progress();
  Trace build_trace(int leaf_index) const;
  InductiveInvariant collect_invariant(std::size_t fixpoint_level) const;

  const ts::TransitionSystem& ts_;
  Config cfg_;
  Ic3Stats stats_;
  Frames frames_;
  SolverManager solvers_;
  Lifter lifter_;
  Generalizer generalizer_;

  std::vector<Obligation> pool_;
  std::set<QueueKey> queue_;
  int cex_leaf_ = -1;
  const CancelToken* cancel_ = nullptr;  // valid for the duration of check()
  /// True while installing an imported lemma, so add_lemma() does not echo
  /// it back onto the bus.
  bool importing_ = false;
};

}  // namespace pilot::ic3
