/// Observability tests: the trace ring buffers (wrap-around drop
/// accounting, concurrent writers), Chrome trace-event export
/// well-formedness over a real portfolio run, engine-trajectory identity
/// with tracing on vs off (tracing must observe, never steer), the
/// PhaseProfile arithmetic and name round-trips, the progress
/// sink/monitor, per-phase ResultsDb persistence, and the campaign phase
/// report.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "check/checker.hpp"
#include "circuits/families.hpp"
#include "corpus/corpus.hpp"
#include "corpus/report.hpp"
#include "corpus/results_db.hpp"
#include "engine/portfolio.hpp"
#include "ic3/engine.hpp"
#include "obs/phase.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "ts/transition_system.hpp"
#include "util/json.hpp"

namespace pilot {
namespace {

/// Restores the global trace state around every test that touches it, so
/// suite order cannot leak an enabled collector into unrelated tests.
class TraceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_trace_enabled(false);
    obs::reset_trace();
  }
  void TearDown() override {
    obs::set_trace_enabled(false);
    obs::set_ring_capacity(1 << 16);
    obs::reset_trace();
  }
};

using TraceRing = TraceFixture;
using TraceExport = TraceFixture;
using TraceIdentity = TraceFixture;

TEST_F(TraceRing, WrapAroundKeepsNewestAndCountsDrops) {
  obs::set_ring_capacity(8);
  obs::reset_trace();
  obs::set_trace_enabled(true);
  const std::uint32_t id = obs::intern_name("wrap-test");
  for (std::uint64_t i = 0; i < 20; ++i) {
    obs::record_event(obs::EventType::kInstant, id, /*a0=*/i);
  }
  obs::set_trace_enabled(false);

  const std::vector<obs::StreamSnapshot> streams = obs::snapshot_streams();
  ASSERT_EQ(streams.size(), 1u);
  const obs::StreamSnapshot& s = streams[0];
  EXPECT_EQ(s.recorded, 20u);
  EXPECT_EQ(s.dropped, 12u);  // exactly recorded - capacity
  ASSERT_EQ(s.events.size(), 8u);
  // Drop-oldest: the survivors are the last `capacity` events, in order.
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    EXPECT_EQ(s.events[i].a0, 12u + i);
    EXPECT_EQ(s.events[i].name_id, id);
  }
}

TEST_F(TraceRing, UnderCapacityDropsNothing) {
  obs::set_ring_capacity(64);
  obs::reset_trace();
  obs::set_trace_enabled(true);
  const std::uint32_t id = obs::intern_name("no-drop");
  for (int i = 0; i < 10; ++i) {
    obs::record_event(obs::EventType::kInstant, id);
  }
  const std::vector<obs::StreamSnapshot> streams = obs::snapshot_streams();
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0].recorded, 10u);
  EXPECT_EQ(streams[0].dropped, 0u);
  EXPECT_EQ(streams[0].events.size(), 10u);
}

TEST_F(TraceRing, ConcurrentWritersGetIndependentStreams) {
  obs::set_ring_capacity(1 << 12);
  obs::reset_trace();
  obs::set_trace_enabled(true);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kEvents = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      obs::name_current_thread("writer-" + std::to_string(t));
      const std::uint32_t id =
          obs::intern_name("evt-" + std::to_string(t));
      for (std::uint64_t i = 0; i < kEvents; ++i) {
        obs::record_event(obs::EventType::kInstant, id, i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  obs::set_trace_enabled(false);

  const std::vector<obs::StreamSnapshot> streams = obs::snapshot_streams();
  ASSERT_EQ(streams.size(), static_cast<std::size_t>(kThreads));
  std::uint64_t total = 0;
  std::set<std::string> names;
  for (const obs::StreamSnapshot& s : streams) {
    total += s.recorded;
    EXPECT_EQ(s.dropped, 0u);
    names.insert(s.thread_name);
    // Single-writer rings: each stream's events are in program order.
    for (std::size_t i = 1; i < s.events.size(); ++i) {
      EXPECT_EQ(s.events[i].a0, s.events[i - 1].a0 + 1);
    }
  }
  EXPECT_EQ(total, kThreads * kEvents);
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kThreads));
}

TEST_F(TraceExport, PortfolioTraceIsWellFormedChromeJson) {
  obs::reset_trace();
  obs::set_trace_enabled(true);
  const circuits::CircuitCase cc = circuits::token_ring_safe(8);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  engine::PortfolioOptions po;
  po.backends = {"ic3-ctg-pl", "ic3-down"};
  const engine::PortfolioResult pr = engine::run_portfolio(ts, po);
  obs::set_trace_enabled(false);
  EXPECT_EQ(pr.result.verdict, ic3::Verdict::kSafe);

  const json::Value trace = json::parse(obs::export_chrome_trace());
  ASSERT_TRUE(trace.at("traceEvents").is_array());
  const json::Array& events = trace.at("traceEvents").as_array();

  std::set<std::uint64_t> zone_tids;
  std::set<std::string> zone_names;
  std::map<std::uint64_t, std::int64_t> depth;  // B/E balance per track
  std::set<std::string> thread_names;
  for (const json::Value& e : events) {
    const std::string ph = e.at("ph").as_string();
    const std::uint64_t tid = e.at("tid").as_uint();
    if (ph == "B") {
      zone_tids.insert(tid);
      zone_names.insert(e.at("name").as_string());
      ++depth[tid];
    } else if (ph == "E") {
      --depth[tid];
      EXPECT_GE(depth[tid], 0) << "E without matching B on tid " << tid;
    } else if (ph == "M" && e.at("name").as_string() == "thread_name") {
      thread_names.insert(e.at("args").at("name").as_string());
    }
  }
  // Two racing backends → at least two thread tracks with zones.
  EXPECT_GE(zone_tids.size(), 2u);
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced zones on tid " << tid;
  }
  // The core engine taxonomy must be present.
  for (const char* required :
       {"block", "generalize", "propagate", "sat_solve"}) {
    EXPECT_TRUE(zone_names.count(required) == 1) << required;
  }
  // Portfolio workers name their tracks after the backend.
  EXPECT_TRUE(thread_names.count("ic3-ctg-pl") == 1);
  EXPECT_TRUE(thread_names.count("ic3-down") == 1);
}

/// Tracing must be a pure observer: the engine's trajectory — verdict,
/// frame count, lemma counts, and the invariant itself — is bit-identical
/// with tracing on and off, across the whole fixture corpus.
TEST_F(TraceIdentity, EngineTrajectoryIsIdenticalTracingOnVsOff) {
  const std::vector<corpus::Case> cases =
      corpus::resolve_corpus(PILOT_TEST_CORPUS_DIR);
  ASSERT_FALSE(cases.empty());
  for (const corpus::Case& c : cases) {
    const ts::TransitionSystem ts =
        ts::TransitionSystem::from_aig(c.load());
    auto run = [&](bool traced) {
      obs::reset_trace();
      obs::set_trace_enabled(traced);
      ic3::Config cfg;
      cfg.predict_lemmas = true;
      ic3::Engine engine(ts, cfg);
      const ic3::Result r = engine.check(Deadline::in_seconds(120));
      obs::set_trace_enabled(false);
      return r;
    };
    const ic3::Result off = run(false);
    const ic3::Result on = run(true);
    EXPECT_EQ(on.verdict, off.verdict) << c.name;
    EXPECT_EQ(on.frames, off.frames) << c.name;
    EXPECT_EQ(on.stats.num_lemmas, off.stats.num_lemmas) << c.name;
    EXPECT_EQ(on.stats.num_obligations, off.stats.num_obligations) << c.name;
    EXPECT_EQ(on.stats.sat_solve_calls, off.stats.sat_solve_calls) << c.name;
    ASSERT_EQ(on.invariant.has_value(), off.invariant.has_value()) << c.name;
    if (on.invariant.has_value()) {
      ASSERT_EQ(on.invariant->lemma_cubes.size(),
                off.invariant->lemma_cubes.size())
          << c.name;
      for (std::size_t i = 0; i < on.invariant->lemma_cubes.size(); ++i) {
        EXPECT_EQ(on.invariant->lemma_cubes[i], off.invariant->lemma_cubes[i])
            << c.name << " cube " << i;
      }
    }
  }
}

TEST(PhaseProfile, NamesRoundTrip) {
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    const auto p = static_cast<obs::Phase>(i);
    const std::optional<obs::Phase> back =
        obs::phase_from_name(obs::phase_name(p));
    ASSERT_TRUE(back.has_value()) << obs::phase_name(p);
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(obs::phase_from_name("no-such-phase").has_value());
}

TEST(PhaseProfile, AccumulatesAndMerges) {
  obs::PhaseProfile a;
  EXPECT_TRUE(a.empty());
  a.add(obs::Phase::kBlock, 1.0);
  a.add(obs::Phase::kSatSolve, 0.25, 10);
  EXPECT_FALSE(a.empty());
  obs::PhaseProfile b;
  b.add(obs::Phase::kSatSolve, 0.75, 30);
  a += b;
  EXPECT_DOUBLE_EQ(a.seconds_of(obs::Phase::kSatSolve), 1.0);
  EXPECT_EQ(a.calls_of(obs::Phase::kSatSolve), 40u);
  EXPECT_EQ(a.calls_of(obs::Phase::kBlock), 1u);

  const std::string table = a.table(2.0);
  EXPECT_NE(table.find("block"), std::string::npos);
  EXPECT_NE(table.find("sat_solve"), std::string::npos);
  // Phases that never ran are skipped.
  EXPECT_EQ(table.find("exchange"), std::string::npos);
}

TEST(PhaseProfile, ScopeAccumulatesIntoProfile) {
  obs::PhaseProfile p;
  { obs::PhaseScope scope(&p, obs::Phase::kPropagate); }
  { obs::PhaseScope scope(&p, obs::Phase::kPropagate); }
  { obs::PhaseScope scope(nullptr, obs::Phase::kBlock); }  // null-safe
  EXPECT_EQ(p.calls_of(obs::Phase::kPropagate), 2u);
  EXPECT_GE(p.seconds_of(obs::Phase::kPropagate), 0.0);
  EXPECT_EQ(p.calls_of(obs::Phase::kBlock), 0u);
}

TEST(Progress, SinkPublishReadAndLineFormat) {
  obs::ProgressSink sink("ic3-ctg");
  obs::ProgressSnapshot s;
  s.frames = 7;
  s.lemmas = 42;
  s.sat_solves = 300;
  sink.publish(s);
  const obs::ProgressSnapshot r = sink.read();
  EXPECT_EQ(r.frames, 7u);
  EXPECT_EQ(r.lemmas, 42u);

  obs::ProgressSnapshot prev;
  prev.sat_solves = 100;
  const std::string line =
      obs::format_progress_line("ic3-ctg", 1.5, r, prev, 2.0);
  EXPECT_NE(line.find("ic3-ctg"), std::string::npos);
  EXPECT_NE(line.find("frame=7"), std::string::npos);
  EXPECT_NE(line.find("lemmas=42"), std::string::npos);
  EXPECT_NE(line.find("sat=300"), std::string::npos);
  EXPECT_NE(line.find("(100 q/s)"), std::string::npos);  // (300-100)/2.0
}

TEST(Progress, MonitorStartStopIsSafe) {
  obs::ProgressMonitor monitor(0.01);
  monitor.start();
  obs::ProgressSink* a = monitor.add_channel("a");  // while running
  ASSERT_NE(a, nullptr);
  obs::ProgressSnapshot s;
  s.frames = 1;
  for (int i = 0; i < 50; ++i) {
    ++s.sat_solves;
    a->publish(s);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  monitor.stop();
  monitor.stop();  // idempotent
}

TEST(StatsJson, PhasesAndTimesRoundTrip) {
  ic3::Ic3Stats s;
  s.num_lemmas = 9;
  s.time_total = 2.5;
  s.time_generalize = 0.5;
  s.phases.add(obs::Phase::kBlock, 1.5, 3);
  s.phases.add(obs::Phase::kSatSolve, 0.75, 120);
  const json::Value v = corpus::stats_to_json(s);
  const ic3::Ic3Stats back = corpus::stats_from_json(v);
  EXPECT_EQ(back.num_lemmas, 9u);
  EXPECT_DOUBLE_EQ(back.time_total, 2.5);
  EXPECT_DOUBLE_EQ(back.time_generalize, 0.5);
  EXPECT_DOUBLE_EQ(back.phases.seconds_of(obs::Phase::kBlock), 1.5);
  EXPECT_EQ(back.phases.calls_of(obs::Phase::kBlock), 3u);
  EXPECT_EQ(back.phases.calls_of(obs::Phase::kSatSolve), 120u);
  // Phases that never ran are not serialized at all.
  EXPECT_FALSE(v.at("phases").contains("exchange"));
}

TEST(StatsJson, LoaderToleratesRowsWithoutPhases) {
  // A minimal pre-PR8 row shape: no time_* fields, no "phases" object.
  const json::Value v = json::parse(R"({"lemmas": 4, "max_frame": 2})");
  const ic3::Ic3Stats s = corpus::stats_from_json(v);
  EXPECT_EQ(s.num_lemmas, 4u);
  EXPECT_DOUBLE_EQ(s.time_total, 0.0);
  EXPECT_TRUE(s.phases.empty());
}

TEST(PhaseReport, AggregatesPerEngine) {
  corpus::ResultsDb db;
  auto make_row = [](const std::string& case_name, const std::string& engine,
                     bool solved, double seconds, double block_secs) {
    corpus::RunRow row;
    row.record.case_name = case_name;
    row.record.engine = engine;
    row.record.solved = solved;
    row.record.seconds = seconds;
    if (block_secs > 0.0) {
      row.record.stats.phases.add(obs::Phase::kBlock, block_secs, 1);
    }
    return row;
  };
  db.add(make_row("a", "ic3-ctg", true, 1.0, 0.5));
  db.add(make_row("b", "ic3-ctg", false, 2.0, 1.0));
  db.add(make_row("a", "bmc", true, 0.5, 0.0));  // pre-PR8 row: no phases

  const std::vector<corpus::EnginePhaseReport> rows =
      corpus::aggregate_phase_report(db);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].engine, "ic3-ctg");
  EXPECT_EQ(rows[0].cases, 2u);
  EXPECT_EQ(rows[0].solved, 1u);
  EXPECT_DOUBLE_EQ(rows[0].total_seconds, 3.0);
  EXPECT_DOUBLE_EQ(rows[0].phases.seconds_of(obs::Phase::kBlock), 1.5);
  EXPECT_EQ(rows[1].engine, "bmc");
  EXPECT_TRUE(rows[1].phases.empty());

  const std::string report = corpus::render_phase_report(rows);
  EXPECT_NE(report.find("ic3-ctg: 1/2 solved"), std::string::npos);
  EXPECT_NE(report.find("block"), std::string::npos);
  EXPECT_NE(report.find("no phase data"), std::string::npos);
}

/// End-to-end: a single-engine check with a progress interval publishes
/// real counters through the checker's own monitor without disturbing the
/// verdict.
TEST(Progress, CheckerHeartbeatDoesNotDisturbVerdict) {
  const circuits::CircuitCase cc = circuits::token_ring_safe(6);
  check::CheckOptions opts;
  opts.engine_spec = "ic3-ctg";
  opts.progress_interval = 0.005;
  const check::CheckResult r = check::check_aig(cc.aig, opts);
  EXPECT_EQ(r.verdict, ic3::Verdict::kSafe);
  EXPECT_TRUE(r.witness_checked);
}

}  // namespace
}  // namespace pilot
