#include "engine/lemma_exchange.hpp"

namespace pilot::engine {

std::size_t LemmaExchange::add_peer() {
  const std::lock_guard<std::mutex> lock(mutex_);
  cursors_.push_back(0);
  return cursors_.size() - 1;
}

void LemmaExchange::publish(std::size_t peer, const ic3::Cube& cube,
                            std::size_t level) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (store_.size() >= max_store_) {
    ++stats_.dropped_capacity;
    return;
  }
  // Exact-cube dedup: the same lemma re-published (by the same peer at a
  // pushed-up level, or independently discovered by another) crosses the
  // bus once.  Importers clamp and re-validate levels anyway.
  if (!seen_.insert(cube).second) {
    ++stats_.deduped;
    return;
  }
  store_.push_back(Entry{cube, level, peer});
  ++stats_.published;
}

std::vector<ic3::SharedLemma> LemmaExchange::poll(std::size_t peer) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ic3::SharedLemma> out;
  std::size_t& cursor = cursors_.at(peer);
  for (; cursor < store_.size(); ++cursor) {
    const Entry& e = store_[cursor];
    if (e.source == peer) continue;
    out.push_back(ic3::SharedLemma{e.cube, e.level});
  }
  stats_.delivered += out.size();
  return out;
}

std::size_t LemmaExchange::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_.size();
}

LemmaExchangeStats LemmaExchange::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace pilot::engine
