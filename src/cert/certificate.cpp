#include "cert/certificate.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "aig/simulation.hpp"
#include "obs/trace.hpp"
#include "sat/solver.hpp"
#include "ts/unroller.hpp"

namespace pilot::cert {
namespace {

ic3::CheckOutcome failure(std::string reason) {
  return ic3::CheckOutcome{false, std::move(reason)};
}

/// The deliberately-different solver configuration: no trail reuse, no
/// inprocessing, a perturbed seed and a slice of random decisions so the
/// checker explores a fresh variable order instead of replaying the
/// engine's.
void configure_independent(sat::Solver& solver, std::uint64_t seed) {
  solver.set_trail_reuse(false);
  solver.set_inprocess(false);
  solver.set_seed(seed ^ 0x9e3779b97f4a7c15ULL);
  solver.set_random_decision_freq(0.02);
}

/// Clause literal at `frame` of an unrolling; enc is ±(latch_index + 1).
sat::Lit clause_lit(const ts::Unroller& un, int enc, int frame) {
  const std::size_t idx = static_cast<std::size_t>(std::abs(enc)) - 1;
  return sat::Lit::make(un.state_var(idx, frame), /*negated=*/enc < 0);
}

/// "state at frame a != state at frame b", mirroring the k-induction
/// engine's simple-path strengthening (bmc/kinduction.cpp).
void add_state_disequality(sat::Solver& solver, const ts::Unroller& un,
                           const ts::TransitionSystem& ts, int a, int b) {
  std::vector<sat::Lit> diff_bits;
  for (std::size_t i = 0; i < ts.num_latches(); ++i) {
    const sat::Lit xa = sat::Lit::make(un.state_var(i, a));
    const sat::Lit xb = sat::Lit::make(un.state_var(i, b));
    const sat::Lit d = sat::Lit::make(solver.new_var());
    solver.add_ternary(~d, xa, xb);
    solver.add_ternary(~d, ~xa, ~xb);
    solver.add_ternary(d, ~xa, xb);
    solver.add_ternary(d, xa, ~xb);
    diff_bits.push_back(d);
  }
  if (diff_bits.empty()) {
    solver.add_clause(std::vector<sat::Lit>{});
    return;
  }
  solver.add_clause(diff_bits);
}

ic3::CheckOutcome check_shape(const ts::TransitionSystem& ts,
                              const Certificate& cert) {
  if (cert.num_latches != ts.num_latches()) {
    std::ostringstream oss;
    oss << "certificate declares " << cert.num_latches
        << " latches but the model has " << ts.num_latches();
    return failure(oss.str());
  }
  for (const std::vector<int>& clause : cert.clauses) {
    for (const int enc : clause) {
      if (enc == 0 ||
          static_cast<std::size_t>(std::abs(enc)) > cert.num_latches) {
        std::ostringstream oss;
        oss << "clause literal " << enc << " is out of range (latches: "
            << cert.num_latches << ")";
        return failure(oss.str());
      }
    }
  }
  return ic3::CheckOutcome{};
}

std::string clause_to_string(const std::vector<int>& clause) {
  std::ostringstream oss;
  oss << "(";
  for (std::size_t i = 0; i < clause.size(); ++i) {
    if (i != 0) oss << " ";
    oss << clause[i];
  }
  oss << ")";
  return oss.str();
}

ic3::CheckOutcome check_invariant_cert(const ts::TransitionSystem& ts,
                                       const Certificate& cert,
                                       std::uint64_t seed) {
  const aig::Aig& circuit = ts.aig();

  // (1) Init ⊆ Inv.  I is a cube over the latches, so a clause holds on
  // every initial state iff some literal of it is fixed true by the reset
  // values — an exact syntactic test, no solver involved.
  for (const std::vector<int>& clause : cert.clauses) {
    bool satisfied = false;
    for (const int enc : clause) {
      const std::size_t idx = static_cast<std::size_t>(std::abs(enc)) - 1;
      const aig::LBool init = circuit.init(circuit.latches()[idx]);
      if ((enc > 0 && init == aig::l_True) ||
          (enc < 0 && init == aig::l_False)) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) {
      return failure("initiation fails for clause " +
                     clause_to_string(clause));
    }
  }

  // Two-frame unrolling — a different encoding than the engines'
  // SolverManager install — with the invariant clauses asserted at frame 0.
  sat::Solver solver;
  configure_independent(solver, seed);
  ts::Unroller un(ts, solver, /*assert_init=*/false);
  un.extend_to(1);
  for (const std::vector<int>& clause : cert.clauses) {
    std::vector<sat::Lit> lits;
    lits.reserve(clause.size());
    for (const int enc : clause) lits.push_back(clause_lit(un, enc, 0));
    solver.add_clause(lits);
  }

  // (3) Inv ⇒ ¬Bad: the clauses alone must exclude the bad cone.
  if (solver.solve(std::vector<sat::Lit>{un.bad(0)}) !=
      sat::SolveResult::kUnsat) {
    return failure("invariant does not exclude the bad cone");
  }

  // (2) Inv ∧ T ⇒ Inv′: each clause must hold at frame 1 whenever all
  // clauses hold at frame 0.
  for (const std::vector<int>& clause : cert.clauses) {
    std::vector<sat::Lit> assumptions;
    assumptions.reserve(clause.size());
    for (const int enc : clause) {
      assumptions.push_back(~clause_lit(un, enc, 1));
    }
    if (solver.solve(assumptions) != sat::SolveResult::kUnsat) {
      return failure("consecution fails for clause " +
                     clause_to_string(clause));
    }
  }
  return ic3::CheckOutcome{};
}

ic3::CheckOutcome check_kinduction_cert(const ts::TransitionSystem& ts,
                                        const Certificate& cert,
                                        std::uint64_t seed) {
  if (cert.k < 0) return failure("k-induction certificate has no bound");
  const int k = cert.k;

  // Base cases: no counterexample of length 0..k from the initial states.
  {
    sat::Solver solver;
    configure_independent(solver, seed);
    ts::Unroller base(ts, solver, /*assert_init=*/true);
    base.extend_to(k);
    for (int i = 0; i <= k; ++i) {
      if (solver.solve(std::vector<sat::Lit>{base.bad(i)}) !=
          sat::SolveResult::kUnsat) {
        return failure("base case fails at frame " + std::to_string(i));
      }
    }
  }

  // Step case: ¬bad at frames 0..k, bad at frame k+1 — with the same
  // accumulated simple-path constraints (all frame pairs distinct) the
  // engine had when its step query closed.
  {
    sat::Solver solver;
    configure_independent(solver, seed + 1);
    ts::Unroller step(ts, solver, /*assert_init=*/false);
    step.extend_to(k + 1);
    for (int i = 0; i <= k; ++i) solver.add_unit(~step.bad(i));
    if (cert.simple_path) {
      for (int j = 1; j <= k + 1; ++j) {
        for (int i = 0; i < j; ++i) {
          add_state_disequality(solver, step, ts, i, j);
        }
      }
    }
    if (solver.solve(std::vector<sat::Lit>{step.bad(k + 1)}) !=
        sat::SolveResult::kUnsat) {
      return failure("step case fails at k = " + std::to_string(k));
    }
  }
  return ic3::CheckOutcome{};
}

/// Splits `text` into lines (without terminators); a trailing newline does
/// not produce a final empty line.
std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

ic3::CheckOutcome check_witness_cert(const ts::TransitionSystem& ts,
                                     const Certificate& cert) {
  const aig::Aig& circuit = ts.aig();
  const std::vector<std::string> lines = split_lines(cert.witness);
  // Layout: "1", "b<idx>", latch reset line, one input line per step, ".".
  if (lines.size() < 5) return failure("witness has too few lines");
  if (lines[0] != "1") {
    return failure("witness line 1: expected '1', got '" + lines[0] + "'");
  }
  if (lines[1].empty() || lines[1][0] != 'b') {
    return failure("witness line 2: expected 'b<index>', got '" + lines[1] +
                   "'");
  }
  if (lines.back() != ".") return failure("witness does not end with '.'");

  const std::string& latch_line = lines[2];
  if (latch_line.size() != circuit.num_latches()) {
    std::ostringstream oss;
    oss << "witness latch line has " << latch_line.size()
        << " bits, model has " << circuit.num_latches() << " latches";
    return failure(oss.str());
  }

  // Solver-free replay: drive the recorded inputs through the bit-parallel
  // simulator and confirm the bad cone fires on the final step.
  aig::BitSimulator sim(circuit);
  sim.reset();
  for (std::size_t i = 0; i < circuit.num_latches(); ++i) {
    const char c = latch_line[i];
    if (c != '0' && c != '1' && c != 'x') {
      return failure(std::string("witness latch line: invalid bit '") + c +
                     "'");
    }
    // The recorded state must be a legal *initial* state, or the replay
    // proves reachability from nowhere.
    const aig::LBool init = circuit.init(circuit.latches()[i]);
    if ((init == aig::l_True && c != '1') ||
        (init == aig::l_False && c != '0')) {
      return failure("witness initial state contradicts latch " +
                     std::to_string(i) + "'s reset value");
    }
    sim.set_latch(circuit.latches()[i], c == '1' ? ~0ULL : 0);
  }

  const std::size_t num_steps = lines.size() - 4;
  if (num_steps == 0) return failure("witness has no input frames");
  for (std::size_t step = 0; step < num_steps; ++step) {
    const std::string& input_line = lines[3 + step];
    if (input_line.size() != circuit.num_inputs()) {
      std::ostringstream oss;
      oss << "witness input frame " << step << " has " << input_line.size()
          << " bits, model has " << circuit.num_inputs() << " inputs";
      return failure(oss.str());
    }
    std::vector<std::uint64_t> input_bits(circuit.num_inputs(), 0);
    for (std::size_t i = 0; i < input_line.size(); ++i) {
      const char c = input_line[i];
      if (c != '0' && c != '1' && c != 'x') {
        return failure(std::string("witness input frame: invalid bit '") + c +
                       "'");
      }
      if (c == '1') input_bits[i] = ~0ULL;
    }
    sim.compute(input_bits);
    // A trajectory that leaves the constrained state space is not a real
    // counterexample, no matter what the bad cone says.
    for (const aig::AigLit con : circuit.constraints()) {
      if ((sim.value(con) & 1ULL) == 0) {
        return failure("witness violates an invariant constraint at step " +
                       std::to_string(step));
      }
    }
    if (step + 1 == num_steps) {
      const sat::Lit bad = ts.bad();
      const std::uint64_t v = sim.value(aig::AigLit::make(
          static_cast<std::uint32_t>(bad.var()), bad.sign()));
      if ((v & 1ULL) == 0) {
        return failure("bad signal not raised at the end of the witness");
      }
    } else {
      sim.latch_step();
    }
  }
  return ic3::CheckOutcome{};
}

}  // namespace

const char* to_string(Certificate::Kind kind) {
  switch (kind) {
    case Certificate::Kind::kInvariant: return "invariant";
    case Certificate::Kind::kKinduction: return "kinduction";
    case Certificate::Kind::kWitness: return "witness";
  }
  return "?";
}

Certificate from_invariant(const ts::TransitionSystem& ts,
                           const ic3::InductiveInvariant& inv,
                           std::size_t property_index) {
  Certificate cert;
  cert.kind = Certificate::Kind::kInvariant;
  cert.property_index = property_index;
  cert.num_latches = ts.num_latches();
  cert.clauses.reserve(inv.lemma_cubes.size());
  for (const ic3::Cube& cube : inv.lemma_cubes) {
    std::vector<int> clause;
    clause.reserve(cube.size());
    for (const ic3::Lit l : cube) {
      const int idx = ts.latch_index_of(l.var());
      if (idx < 0) {
        throw std::invalid_argument(
            "from_invariant: lemma literal is not a state variable");
      }
      // The clause is ¬cube: a cube literal "latch = 0" contributes the
      // clause literal "latch = 1" (positive encoding) and vice versa.
      clause.push_back(l.sign() ? idx + 1 : -(idx + 1));
    }
    cert.clauses.push_back(std::move(clause));
  }
  return cert;
}

Certificate from_kinduction(const ts::TransitionSystem& ts, int k,
                            bool simple_path, std::size_t property_index) {
  Certificate cert;
  cert.kind = Certificate::Kind::kKinduction;
  cert.property_index = property_index;
  cert.num_latches = ts.num_latches();
  cert.k = k;
  cert.simple_path = simple_path;
  return cert;
}

Certificate from_trace(const ts::TransitionSystem& ts, const ic3::Trace& trace,
                       std::size_t property_index) {
  Certificate cert;
  cert.kind = Certificate::Kind::kWitness;
  cert.property_index = property_index;
  cert.num_latches = ts.num_latches();
  cert.witness = ic3::to_aiger_witness(ts, trace, property_index);
  return cert;
}

std::optional<Certificate> from_verdict(
    const ts::TransitionSystem& ts, ic3::Verdict verdict,
    const std::optional<ic3::InductiveInvariant>& invariant,
    const std::optional<ic3::Trace>& trace, int kind_k, bool kind_simple_path,
    std::size_t property_index, std::string* why_none) {
  switch (verdict) {
    case ic3::Verdict::kSafe:
      if (invariant.has_value()) {
        return from_invariant(ts, *invariant, property_index);
      }
      if (kind_k >= 0) {
        return from_kinduction(ts, kind_k, kind_simple_path, property_index);
      }
      if (why_none != nullptr) {
        *why_none =
            "SAFE verdict carries neither an inductive invariant nor a "
            "k-induction bound";
      }
      return std::nullopt;
    case ic3::Verdict::kUnsafe:
      if (trace.has_value()) return from_trace(ts, *trace, property_index);
      if (why_none != nullptr) {
        *why_none = "UNSAFE verdict carries no counterexample trace";
      }
      return std::nullopt;
    case ic3::Verdict::kUnknown:
      break;
  }
  if (why_none != nullptr) *why_none = "verdict is UNKNOWN";
  return std::nullopt;
}

std::string to_text(const Certificate& cert) {
  std::ostringstream oss;
  oss << "pilot-cert v1\n";
  oss << "kind " << to_string(cert.kind) << "\n";
  oss << "property " << cert.property_index << "\n";
  oss << "latches " << cert.num_latches << "\n";
  switch (cert.kind) {
    case Certificate::Kind::kInvariant: {
      oss << "clauses " << cert.clauses.size() << "\n";
      for (const std::vector<int>& clause : cert.clauses) {
        for (std::size_t i = 0; i < clause.size(); ++i) {
          if (i != 0) oss << " ";
          oss << clause[i];
        }
        oss << "\n";
      }
      break;
    }
    case Certificate::Kind::kKinduction:
      oss << "k " << cert.k << "\n";
      oss << "simple-path " << (cert.simple_path ? 1 : 0) << "\n";
      break;
    case Certificate::Kind::kWitness: {
      const std::vector<std::string> lines = split_lines(cert.witness);
      oss << "witness " << lines.size() << "\n";
      for (const std::string& line : lines) oss << line << "\n";
      break;
    }
  }
  return oss.str();
}

namespace {

/// Sets `*error` to "certificate line N: <what>" and returns nullopt.
std::optional<Certificate> parse_fail(std::size_t line_no,
                                      const std::string& what,
                                      std::string* error) {
  if (error != nullptr) {
    *error = "certificate line " + std::to_string(line_no) + ": " + what;
  }
  return std::nullopt;
}

bool parse_size(const std::string& token, std::size_t* out) {
  if (token.empty()) return false;
  std::size_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  *out = value;
  return true;
}

/// "key value" line; returns the value or nullopt on key mismatch.
std::optional<std::string> keyed_value(const std::string& line,
                                       const std::string& key) {
  if (line.size() <= key.size() + 1 || line.compare(0, key.size(), key) != 0 ||
      line[key.size()] != ' ') {
    return std::nullopt;
  }
  return line.substr(key.size() + 1);
}

}  // namespace

std::optional<Certificate> parse(const std::string& text, std::string* error) {
  const std::vector<std::string> lines = split_lines(text);
  if (lines.empty() || lines[0] != "pilot-cert v1") {
    return parse_fail(1, "expected header 'pilot-cert v1', got '" +
                             (lines.empty() ? std::string() : lines[0]) + "'",
                      error);
  }
  if (lines.size() < 4) return parse_fail(lines.size(), "truncated", error);

  Certificate cert;
  const std::optional<std::string> kind = keyed_value(lines[1], "kind");
  if (!kind.has_value()) {
    return parse_fail(2, "expected 'kind invariant|kinduction|witness', got '" +
                             lines[1] + "'",
                      error);
  }
  if (*kind == "invariant") {
    cert.kind = Certificate::Kind::kInvariant;
  } else if (*kind == "kinduction") {
    cert.kind = Certificate::Kind::kKinduction;
  } else if (*kind == "witness") {
    cert.kind = Certificate::Kind::kWitness;
  } else {
    return parse_fail(
        2, "unknown certificate kind '" + *kind +
               "'; expected invariant, kinduction, or witness",
        error);
  }

  const std::optional<std::string> prop = keyed_value(lines[2], "property");
  if (!prop.has_value() || !parse_size(*prop, &cert.property_index)) {
    return parse_fail(3, "expected 'property <index>', got '" + lines[2] + "'",
                      error);
  }
  const std::optional<std::string> latches = keyed_value(lines[3], "latches");
  if (!latches.has_value() || !parse_size(*latches, &cert.num_latches)) {
    return parse_fail(4, "expected 'latches <count>', got '" + lines[3] + "'",
                      error);
  }

  switch (cert.kind) {
    case Certificate::Kind::kInvariant: {
      if (lines.size() < 5) return parse_fail(5, "missing 'clauses'", error);
      std::size_t count = 0;
      const std::optional<std::string> n = keyed_value(lines[4], "clauses");
      if (!n.has_value() || !parse_size(*n, &count)) {
        return parse_fail(5, "expected 'clauses <count>', got '" + lines[4] +
                                 "'",
                          error);
      }
      if (lines.size() != 5 + count) {
        return parse_fail(lines.size(),
                          "expected " + std::to_string(count) +
                              " clause lines, got " +
                              std::to_string(lines.size() - 5),
                          error);
      }
      for (std::size_t i = 0; i < count; ++i) {
        std::istringstream iss(lines[5 + i]);
        std::vector<int> clause;
        std::string token;
        while (iss >> token) {
          try {
            std::size_t consumed = 0;
            const int enc = std::stoi(token, &consumed);
            if (consumed != token.size() || enc == 0) throw std::exception();
            clause.push_back(enc);
          } catch (...) {
            return parse_fail(6 + i,
                              "invalid clause literal '" + token + "'", error);
          }
        }
        cert.clauses.push_back(std::move(clause));
      }
      break;
    }
    case Certificate::Kind::kKinduction: {
      if (lines.size() != 6) {
        return parse_fail(lines.size(),
                          "expected 'k <bound>' and 'simple-path 0|1'", error);
      }
      const std::optional<std::string> kv = keyed_value(lines[4], "k");
      std::size_t k = 0;
      if (!kv.has_value() || !parse_size(*kv, &k)) {
        return parse_fail(5, "expected 'k <bound>', got '" + lines[4] + "'",
                          error);
      }
      cert.k = static_cast<int>(k);
      const std::optional<std::string> sp =
          keyed_value(lines[5], "simple-path");
      if (!sp.has_value() || (*sp != "0" && *sp != "1")) {
        return parse_fail(6, "expected 'simple-path 0|1', got '" + lines[5] +
                                 "'",
                          error);
      }
      cert.simple_path = *sp == "1";
      break;
    }
    case Certificate::Kind::kWitness: {
      if (lines.size() < 5) return parse_fail(5, "missing 'witness'", error);
      std::size_t count = 0;
      const std::optional<std::string> n = keyed_value(lines[4], "witness");
      if (!n.has_value() || !parse_size(*n, &count)) {
        return parse_fail(5, "expected 'witness <lines>', got '" + lines[4] +
                                 "'",
                          error);
      }
      if (lines.size() != 5 + count) {
        return parse_fail(lines.size(),
                          "expected " + std::to_string(count) +
                              " witness lines, got " +
                              std::to_string(lines.size() - 5),
                          error);
      }
      std::ostringstream body;
      for (std::size_t i = 0; i < count; ++i) body << lines[5 + i] << "\n";
      cert.witness = body.str();
      break;
    }
  }
  return cert;
}

bool save(const Certificate& cert, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << to_text(cert);
  return static_cast<bool>(out);
}

std::optional<Certificate> load(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open certificate file " + path;
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str(), error);
}

ic3::CheckOutcome check(const ts::TransitionSystem& ts,
                        const Certificate& cert, std::uint64_t seed) {
  PILOT_TRACE_ZONE("cert.check");
  const ic3::CheckOutcome shape = check_shape(ts, cert);
  if (!shape.ok) return shape;
  switch (cert.kind) {
    case Certificate::Kind::kInvariant:
      return check_invariant_cert(ts, cert, seed);
    case Certificate::Kind::kKinduction:
      return check_kinduction_cert(ts, cert, seed);
    case Certificate::Kind::kWitness:
      return check_witness_cert(ts, cert);
  }
  return failure("unknown certificate kind");
}

aig::Aig certificate_circuit(const ts::TransitionSystem& ts,
                             const Certificate& cert) {
  if (cert.kind != Certificate::Kind::kInvariant) {
    throw std::invalid_argument(
        "certificate_circuit: only invariant certificates have a circuit "
        "form");
  }
  const aig::Aig& src = ts.aig();

  // Combinational copy of one transition step over fresh inputs: the
  // original inputs first, then one pseudo-input per latch (the state).
  aig::Aig out;
  aig::LitMap map(src.num_nodes(), aig::kInvalidLit);
  map[0] = aig::AigLit::constant(false);
  for (const std::uint32_t n : src.inputs()) {
    map[n] = out.add_input(src.name(n));
  }
  for (const std::uint32_t n : src.latches()) {
    map[n] = out.add_input(src.name(n).empty() ? "state" : src.name(n));
  }
  const auto ml = [&map](aig::AigLit l) {
    return map[l.node()] ^ l.negated();
  };
  for (const std::uint32_t n : src.ands()) {
    map[n] = out.make_and(ml(src.fanin0(n)), ml(src.fanin1(n)));
  }

  // Inv(s): the certificate clauses over the state pseudo-inputs; the same
  // clauses over the next-state functions give Inv′(next(s, x)).
  const auto clause_or = [&](const std::vector<int>& clause, bool primed) {
    std::vector<aig::AigLit> lits;
    lits.reserve(clause.size());
    for (const int enc : clause) {
      const std::size_t idx = static_cast<std::size_t>(std::abs(enc)) - 1;
      const std::uint32_t latch = src.latches()[idx];
      const aig::AigLit base = primed ? ml(src.next(latch)) : ml(aig::AigLit::make(latch));
      lits.push_back(base ^ (enc < 0));
    }
    return out.make_or_n(lits);
  };
  std::vector<aig::AigLit> inv_terms;
  std::vector<aig::AigLit> inv_next_terms;
  for (const std::vector<int>& clause : cert.clauses) {
    inv_terms.push_back(clause_or(clause, /*primed=*/false));
    inv_next_terms.push_back(clause_or(clause, /*primed=*/true));
  }
  const aig::AigLit inv = out.make_and_n(inv_terms);
  const aig::AigLit inv_next = out.make_and_n(inv_next_terms);

  // Init(s): latches with a defined reset value pinned to it.
  std::vector<aig::AigLit> init_terms;
  for (const std::uint32_t latch : src.latches()) {
    const aig::LBool init = src.init(latch);
    if (init == aig::l_Undef) continue;
    init_terms.push_back(ml(aig::AigLit::make(latch)) ^
                         (init == aig::l_False));
  }
  const aig::AigLit init = out.make_and_n(init_terms);

  // The transition's invariant constraints gate the consecution check, and
  // the bad cone (which already conjoins them) drives the property check.
  std::vector<aig::AigLit> constr_terms;
  for (const aig::AigLit c : src.constraints()) constr_terms.push_back(ml(c));
  const aig::AigLit constr = out.make_and_n(constr_terms);
  const sat::Lit bad = ts.bad();
  const aig::AigLit bad_lit =
      ml(aig::AigLit::make(static_cast<std::uint32_t>(bad.var()), bad.sign()));

  // The three combinational validity checks, one bad output each — the
  // certificate holds iff all three are unsatisfiable:
  //   b0: Init(s) ∧ ¬Inv(s)                 (Init ⊆ Inv)
  //   b1: Inv(s) ∧ Constr ∧ ¬Inv′(s′)       (Inv ∧ T ⇒ Inv′)
  //   b2: Inv(s) ∧ Bad(s, x)                (Inv ⇒ ¬Bad)
  out.add_bad(out.make_and(init, !inv));
  const std::vector<aig::AigLit> cons{inv, constr, !inv_next};
  out.add_bad(out.make_and_n(cons));
  out.add_bad(out.make_and(inv, bad_lit));
  return out;
}

}  // namespace pilot::cert
