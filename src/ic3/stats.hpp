/// \file stats.hpp
/// IC3 run statistics, including the success-rate counters defined in §4.3
/// of the paper:
///   N_g  — total generalizations            (num_generalizations)
///   N_p  — prediction SAT queries           (num_prediction_queries)
///   N_sp — successful lemma predictions     (num_successful_predictions)
///   N_fp — generalizations that found a     (num_found_failed_parents)
///          failed-pushed parent lemma
/// and the derived rates SR_lp = N_sp/N_p, SR_fp = N_fp/N_g,
/// SR_adv = N_sp/N_g.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/phase.hpp"
#include "sat/solver.hpp"

namespace pilot::ic3 {

/// One generalization as the dynamic-strategy policy sees it.
struct GenOutcome {
  bool success = false;        // dropped ≥ 1 literal (or predicted a lemma)
  std::uint32_t queries = 0;   // SAT queries the attempt spent
  std::uint32_t dropped = 0;   // literals removed from the input cube
};

/// Per-strategy generalization counters plus a sliding window of recent
/// outcomes — the observable the SuYC25 switching policy reads.  Lifetime
/// totals feed `pilot --stats` and the ResultsDb rows; the window ring
/// holds the last kGenWindowCapacity outcomes.
struct GenStrategyStats {
  std::string name;
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  std::uint64_t queries = 0;
  std::uint64_t dropped_lits = 0;
  /// Times the dynamic policy switched *away* from this strategy.
  std::uint64_t switches = 0;

  static constexpr std::size_t kGenWindowCapacity = 64;
  std::vector<GenOutcome> window;  // ring buffer, newest at window_next-1
  std::size_t window_next = 0;

  void record(bool success_, std::uint64_t queries_, std::uint64_t dropped_);

  [[nodiscard]] std::size_t window_size() const { return window.size(); }
  /// Success rate / mean queries over the newest min(n, stored) outcomes.
  [[nodiscard]] double window_success_rate(std::size_t n) const;
  [[nodiscard]] double window_avg_queries(std::size_t n) const;

  [[nodiscard]] double success_rate() const {
    return attempts == 0 ? 0.0
                         : static_cast<double>(successes) /
                               static_cast<double>(attempts);
  }
  [[nodiscard]] double avg_queries() const {
    return attempts == 0 ? 0.0
                         : static_cast<double>(queries) /
                               static_cast<double>(attempts);
  }
  [[nodiscard]] double avg_dropped() const {
    return attempts == 0 ? 0.0
                         : static_cast<double>(dropped_lits) /
                               static_cast<double>(attempts);
  }
};

struct Ic3Stats {
  // --- paper §4.3 counters ---
  std::uint64_t num_generalizations = 0;        // N_g
  std::uint64_t num_prediction_queries = 0;     // N_p
  std::uint64_t num_successful_predictions = 0; // N_sp
  std::uint64_t num_found_failed_parents = 0;   // N_fp

  // --- engine counters ---
  std::uint64_t num_obligations = 0;
  std::uint64_t num_lemmas = 0;
  std::uint64_t num_blocked_cubes = 0;
  std::uint64_t num_ctis = 0;
  std::uint64_t num_mic_queries = 0;       // SAT queries spent dropping vars
  std::uint64_t num_mic_drops = 0;         // literals successfully dropped
  std::uint64_t num_push_queries = 0;
  std::uint64_t num_push_successes = 0;
  std::uint64_t num_ctg_blocked = 0;
  std::uint64_t num_solver_rebuilds = 0;
  std::uint64_t num_subsumed_lemmas = 0;
  /// Variables whose saved phase/activity were carried into a fresh solver
  /// by SolverManager::rebuild (Config::rebuild_carry_state).
  std::uint64_t num_rebuild_carried_phases = 0;
  /// Frame lemmas skipped by the cross-level dedup/subsume sweep in
  /// SolverManager::rebuild (defensive: Frames maintains the invariant, so
  /// nonzero values flag an upstream bug — and the rebuild stays sound).
  std::uint64_t num_rebuild_subsumed = 0;

  // --- batched generalization probes (Config::gen_batch) ---
  /// Multi-candidate relative-induction solves issued by the batched MIC
  /// drop loop (each replaces up to gen_batch single-candidate solves).
  std::uint64_t num_batched_drop_solves = 0;
  /// Candidate-drop answers obtained from batched solves: every candidate
  /// of an UNSAT batch, plus every candidate a batch CTI defeats.
  std::uint64_t num_batched_drop_answers = 0;
  /// Adaptive batch width (Config::gen_batch_adaptive): times a mic() pass
  /// sized its probe group from the failure-rate estimate, and the sum of
  /// the widths chosen (mean width = sum / updates).
  std::uint64_t num_adaptive_batch_updates = 0;
  std::uint64_t adaptive_batch_width_sum = 0;

  // --- ternary drop-filter + packed simulation (Config::gen_ternary_filter,
  // --- Config::lift_sim) ---
  /// Candidate drops screened against the cached-CTI witness filter.
  std::uint64_t num_filter_checks = 0;
  /// Candidates a cached witness rejected — relative-induction solves that
  /// were skipped because they would certainly have failed.
  std::uint64_t num_filter_solves_saved = 0;
  /// CTI witnesses cached by the filter from failed drop solves.
  std::uint64_t num_filter_witnesses = 0;
  /// CTI witnesses donated by the engine's *blocking* queries (every
  /// failed relative-induction check during obligation chasing), on top of
  /// the drop-loop witnesses counted above.
  std::uint64_t num_filter_blocking_witnesses = 0;
  /// Node-words (32 packed lanes each) evaluated by packed ternary
  /// simulation, across the lifter and the drop-filter.
  std::uint64_t num_packed_sim_words = 0;

  // --- generalization strategies (gen_strategy.hpp) ---
  /// One entry per strategy that performed ≥ 1 generalization this run,
  /// in first-use order.
  std::vector<GenStrategyStats> gen_strategies;
  /// Mid-run strategy switches by the "dynamic" meta-strategy (SuYC25).
  std::uint64_t num_strategy_switches = 0;

  /// Find-or-create the per-strategy entry.
  GenStrategyStats& gen_strategy(const std::string& name);
  [[nodiscard]] const GenStrategyStats* find_gen_strategy(
      const std::string& name) const;
  /// Folds one generalization outcome into `name`'s totals and window.
  void record_gen_outcome(const std::string& name, bool success,
                          std::uint64_t queries, std::uint64_t dropped);

  // --- portfolio lemma exchange (engine/lemma_exchange.hpp) ---
  std::uint64_t num_exchange_published = 0;  // lemmas offered to peers
  std::uint64_t num_exchange_imported = 0;   // peer lemmas validated+installed
  std::uint64_t num_exchange_rejected = 0;   // failed the validation query
  std::uint64_t num_exchange_skipped = 0;    // already subsumed locally

  // --- verdict certification (cert/certificate.hpp) ---
  /// Certificates checked against this result (portfolio winner gating,
  /// --certify, pilot-bench --certify).
  std::uint64_t num_cert_checks = 0;
  /// Certificate checks that failed — each one quarantines a backend's
  /// verdict in the portfolio instead of accepting it.
  std::uint64_t num_cert_failures = 0;

  // --- SAT layer (absorbed from sat::SolverStats at the end of a run) ---
  std::uint64_t sat_solve_calls = 0;
  std::uint64_t sat_propagations = 0;
  std::uint64_t sat_conflicts = 0;
  std::uint64_t sat_decisions = 0;
  /// solve() calls that reused ≥ 1 assumption decision level.
  std::uint64_t sat_trail_reuse_hits = 0;
  /// Trail literals whose re-propagation trail reuse skipped.
  std::uint64_t sat_saved_propagations = 0;
  /// Implications served by the implicit binary watch lists.
  std::uint64_t sat_binary_propagations = 0;
  /// Learnt clauses with LBD ≤ 2 (glue).
  std::uint64_t sat_glue_learnts = 0;
  std::uint64_t sat_db_reductions = 0;
  // --- SAT inprocessing mirrors (Config::sat_inprocess) ---
  /// Problem clauses retired by install-time forward subsumption.
  std::uint64_t sat_subsumed_clauses = 0;
  /// Problem clauses shortened by self-subsuming resolution.
  std::uint64_t sat_strengthened_clauses = 0;
  /// Literals removed from learnt clauses by vivification.
  std::uint64_t sat_vivified_literals = 0;
  /// Root units derived by failed-literal probing (BMC/k-ind unrollings).
  std::uint64_t sat_probe_failed_literals = 0;
  /// Variables rewritten to their binary-implication SCC representative.
  std::uint64_t sat_scc_merged_vars = 0;

  /// Copies the SAT-layer aggregate into the mirror counters above.
  /// Idempotent (each field is assigned, not accumulated), so the engine
  /// calls it at every progress/trace boundary as well as the check()
  /// epilogue — live heartbeats and mid-run traces see real SAT counters.
  void absorb_sat(const sat::SolverStats& s) {
    sat_solve_calls = s.solve_calls;
    sat_propagations = s.propagations;
    sat_conflicts = s.conflicts;
    sat_decisions = s.decisions;
    sat_trail_reuse_hits = s.trail_reuse_hits;
    sat_saved_propagations = s.saved_propagations;
    sat_binary_propagations = s.binary_propagations;
    sat_glue_learnts = s.glue_learnts;
    sat_db_reductions = s.db_reductions;
    sat_subsumed_clauses = s.subsumed_clauses;
    sat_strengthened_clauses = s.strengthened_clauses;
    sat_vivified_literals = s.vivified_literals;
    sat_probe_failed_literals = s.probe_failed_literals;
    sat_scc_merged_vars = s.scc_merged_vars;
  }

  // --- timing (seconds) ---
  double time_total = 0.0;
  double time_generalize = 0.0;
  double time_predict = 0.0;
  double time_propagate = 0.0;

  /// Per-phase wall-time breakdown (obs::PhaseScope accumulates into this);
  /// rendered by `pilot --stats` and persisted into ResultsDb rows.
  obs::PhaseProfile phases;

  std::size_t max_frame = 0;

  // --- derived success rates (paper Table 2) ---
  [[nodiscard]] double sr_lp() const {
    return num_prediction_queries == 0
               ? 0.0
               : static_cast<double>(num_successful_predictions) /
                     static_cast<double>(num_prediction_queries);
  }
  [[nodiscard]] double sr_fp() const {
    return num_generalizations == 0
               ? 0.0
               : static_cast<double>(num_found_failed_parents) /
                     static_cast<double>(num_generalizations);
  }
  [[nodiscard]] double sr_adv() const {
    return num_generalizations == 0
               ? 0.0
               : static_cast<double>(num_successful_predictions) /
                     static_cast<double>(num_generalizations);
  }

  [[nodiscard]] std::string summary() const;
};

}  // namespace pilot::ic3
