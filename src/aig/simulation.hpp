/// \file simulation.hpp
/// Bit-parallel and ternary simulation of AIGs.
///
/// `BitSimulator` evaluates 64 independent Boolean patterns per word and is
/// used for counterexample replay (1 pattern) and for randomized
/// cross-validation of the CNF encoding (64 patterns at a time).
///
/// `TernarySimulator` evaluates over {0,1,X} and supports the classic
/// PDR-style ternary lifting: starting from a full assignment, latches are
/// X-ed out one at a time while the observed outputs stay definite.
///
/// `PackedTernarySimulator` is the bit-packed variant: two planes per value
/// ("can be 1" / "can be 0") packed 32 lanes per `uint64_t`, so one sweep
/// evaluates 32 independent ternary assignments.  It additionally supports
/// event-driven re-evaluation of a single latch's fanout cone, which is
/// what makes sequential ternary lifting cheap.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "aig/aig.hpp"

namespace pilot::aig {

/// 64-way bit-parallel simulator.
class BitSimulator {
 public:
  explicit BitSimulator(const Aig& aig);

  /// Resets every latch to its initial value (uninitialized latches get the
  /// bits of `undef_fill`, default all-zero).
  void reset(std::uint64_t undef_fill = 0);

  /// Sets the current value of a latch (overriding reset/step results).
  void set_latch(std::uint32_t latch_node, std::uint64_t value);

  /// Evaluates all combinational logic for the given input patterns
  /// (`inputs[i]` feeds the i-th primary input).  Latch values are taken
  /// from the current state.
  void compute(std::span<const std::uint64_t> inputs);

  /// Advances the registers: current state := next-state functions
  /// (compute() must have been called).
  void latch_step();

  /// Value of an arbitrary literal after compute().
  [[nodiscard]] std::uint64_t value(AigLit lit) const {
    const std::uint64_t v = values_[lit.node()];
    return lit.negated() ? ~v : v;
  }

  /// Current state value of a latch.
  [[nodiscard]] std::uint64_t latch_value(std::uint32_t latch_node) const {
    return state_[latch_node];
  }

 private:
  const Aig& aig_;
  std::vector<std::uint64_t> values_;  // per node, after compute()
  std::vector<std::uint64_t> state_;   // per node (latches only meaningful)
};

/// Three-valued logic constants for ternary simulation.
enum class TV : std::uint8_t { kZero = 0, kOne = 1, kX = 2 };

inline TV tv_not(TV a) {
  if (a == TV::kX) return TV::kX;
  return a == TV::kZero ? TV::kOne : TV::kZero;
}
inline TV tv_and(TV a, TV b) {
  if (a == TV::kZero || b == TV::kZero) return TV::kZero;
  if (a == TV::kOne && b == TV::kOne) return TV::kOne;
  return TV::kX;
}

/// Ternary ({0,1,X}) simulator over one step of the circuit.
class TernarySimulator {
 public:
  explicit TernarySimulator(const Aig& aig);

  /// Assigns latches/inputs and evaluates the combinational logic.
  /// `latch_values[i]` corresponds to aig.latches()[i], `input_values[i]`
  /// to aig.inputs()[i].
  void compute(std::span<const TV> latch_values,
               std::span<const TV> input_values);

  /// Value of a literal after compute().
  [[nodiscard]] TV value(AigLit lit) const {
    const TV v = values_[lit.node()];
    return lit.negated() ? tv_not(v) : v;
  }

 private:
  const Aig& aig_;
  std::vector<TV> values_;
};

/// Word-parallel ternary simulator: 32 independent {0,1,X} assignments per
/// sweep, one `uint64_t` per node.
///
/// Encoding (two-plane): bit `lane` of the low half is the "can be 1"
/// plane, bit `lane + 32` of the high half is the "can be 0" plane.
///   0 = (can1=0, can0=1)   1 = (can1=1, can0=0)   X = (can1=1, can0=1)
/// NOT swaps the planes (a 32-bit rotate); AND is
///   can1(z) = can1(a) & can1(b),  can0(z) = can0(a) | can0(b)
/// which is exactly the X-propagating `tv_and` on every lane at once.
class PackedTernarySimulator {
 public:
  static constexpr std::size_t kLanes = 32;

  explicit PackedTernarySimulator(const Aig& aig);

  /// Broadcast mirror of TernarySimulator::compute: assigns every lane the
  /// same frame and evaluates the combinational logic.
  void compute(std::span<const TV> latch_values,
               std::span<const TV> input_values);

  /// Per-lane frame editing.  Values persist across compute() sweeps until
  /// overwritten; unset latches/inputs are X.
  void set_latch(std::size_t latch_index, TV v);                    // all lanes
  void set_latch(std::size_t latch_index, std::size_t lane, TV v);  // one lane
  void set_input(std::size_t input_index, TV v);
  void set_input(std::size_t input_index, std::size_t lane, TV v);

  /// Evaluates the combinational logic for the current frame (all lanes).
  void compute();

  /// Advances the registers on every lane: latch values := next-state
  /// values (compute() must have been called).  Latch-to-latch feed-through
  /// uses pre-step values, matching BitSimulator::latch_step.
  void latch_step();

  /// Value of a literal on `lane` after compute().
  [[nodiscard]] TV value(AigLit lit, std::size_t lane = 0) const;

  /// Event-driven trial: sets a latch on ALL lanes and re-evaluates only
  /// the AND gates in its fanout cone, recording an undo log.  Exactly one
  /// trial may be open at a time; close it with trial_commit() (keep the
  /// new values) or trial_rollback() (restore the pre-trial values).
  void trial_set_latch(std::size_t latch_index, TV v);
  void trial_commit();
  void trial_rollback();

  /// Running count of node-words evaluated (32 lane-values each); the
  /// caller drains it into its stats counter.
  [[nodiscard]] std::uint64_t take_words_evaluated() {
    return std::exchange(words_evaluated_, 0);
  }

 private:
  [[nodiscard]] std::uint64_t word(AigLit lit) const;
  [[nodiscard]] std::uint64_t eval_and(std::uint32_t n) const;
  /// AND nodes (in evaluation order) whose value depends on the latch;
  /// built on first use, cached per latch.
  const std::vector<std::uint32_t>& cone(std::size_t latch_index);

  const Aig& aig_;
  std::vector<std::uint64_t> values_;  // per node: two packed planes
  std::vector<std::vector<std::uint32_t>> cones_;
  std::vector<char> cone_ready_;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> undo_;
  bool trial_open_ = false;
  std::uint64_t words_evaluated_ = 0;
};

}  // namespace pilot::aig
