/// \file ablation_predict.cpp
/// Ablations for the design choices DESIGN.md calls out (not a paper table;
/// supports the analysis in §4.3 and the future-work discussion):
///   A. clearing failure_push at each propagation (paper line 44) vs never
///   B. diff-set refinement on failed candidates (line 27) vs naive retry
///   C. single-literal candidates (Eq. 6) vs up-to-two-literal extensions
///   D. core-shrinking validated predictions vs taking them verbatim
/// Each variant runs the suite on top of the IC3ref-style (ctg) baseline.
#include "bench/bench_common.hpp"
#include "engine/backend.hpp"

using namespace pilot;
using namespace pilot::bench;

namespace {

struct Variant {
  const char* name;
  ic3::Config cfg;
};

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args;
  if (!parse_bench_args(argc, argv,
                        "ablation_predict — prediction design ablations",
                        &args)) {
    return 1;
  }

  ic3::Config base = engine::ic3_config_for("ic3-ctg-pl", args.seed);
  std::vector<Variant> variants;
  variants.push_back({"pl (paper)", base});
  {
    ic3::Config c = base;
    c.clear_failure_push_on_propagate = false;
    variants.push_back({"A: keep failure_push", c});
  }
  {
    ic3::Config c = base;
    c.predict_refine_diff = false;
    variants.push_back({"B: no diff refine", c});
  }
  {
    ic3::Config c = base;
    c.predict_max_extra_lits = 2;
    variants.push_back({"C: 2-lit candidates", c});
  }
  {
    ic3::Config c = base;
    c.predict_core_shrink = true;
    variants.push_back({"D: core-shrink preds", c});
  }

  const std::vector<circuits::CircuitCase> cases =
      circuits::make_suite(args.suite);
  std::printf("Prediction ablations (%zu cases, %lld ms budget)\n\n",
              cases.size(), static_cast<long long>(args.budget_ms));
  std::printf("%-22s %8s %10s %10s %10s %12s\n", "variant", "solved",
              "SR_lp%", "SR_fp%", "SR_adv%", "total-s");

  for (const Variant& v : variants) {
    check::RunMatrixOptions options;
    options.budget_ms = args.budget_ms;
    options.jobs = static_cast<std::size_t>(args.jobs);
    options.seed = args.seed;

    // Overrides vary per variant, so drive check_aig per case instead of
    // run_matrix.
    int solved = 0;
    double sum_lp = 0.0;
    double sum_fp = 0.0;
    double sum_adv = 0.0;
    double total_s = 0.0;
    int counted = 0;
    for (const auto& cc : cases) {
      check::CheckOptions co;
      co.engine_spec = "ic3-ctg-pl";
      co.budget_ms = args.budget_ms;
      co.seed = args.seed;
      co.ic3_overrides = v.cfg;
      const check::CheckResult r = check::check_aig(cc.aig, co);
      if (r.verdict != ic3::Verdict::kUnknown) {
        ++solved;
        const bool got_safe = r.verdict == ic3::Verdict::kSafe;
        if (got_safe != cc.expected_safe) {
          std::fprintf(stderr, "SOUNDNESS VIOLATION in ablation on %s\n",
                       cc.name.c_str());
          return 2;
        }
      }
      total_s += r.seconds;
      if (r.stats.num_generalizations > 0) {
        sum_lp += r.stats.sr_lp();
        sum_fp += r.stats.sr_fp();
        sum_adv += r.stats.sr_adv();
        ++counted;
      }
    }
    if (counted == 0) counted = 1;
    std::printf("%-22s %8d %10.2f %10.2f %10.2f %12.2f\n", v.name, solved,
                100.0 * sum_lp / counted, 100.0 * sum_fp / counted,
                100.0 * sum_adv / counted, total_s);
  }
  std::printf(
      "\nReading: variant A trades stale CTPs for hit rate; B shows the\n"
      "refinement's query savings; C/D probe the paper's future-work axis\n"
      "(raising prediction rate).\n");
  return 0;
}
