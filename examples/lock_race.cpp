/// \file lock_race.cpp
/// The scenario motivating the paper: deep combination locks make IC3's
/// generalization grind through literal-dropping SAT queries, and many of
/// the resulting lemmas fail to propagate — exactly the counterexamples to
/// propagation the predictor feeds on.
///
/// This example races all six paper configurations on one lock family and
/// prints a small league table plus the prediction statistics, showing
/// where the `-pl` variants gain.
///
/// Run:  ./build/examples/lock_race [--stages N] [--width W] [--budget-ms N]
#include <cstdio>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "circuits/families.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

using namespace pilot;

int main(int argc, char** argv) {
  std::int64_t stages = 8;
  std::int64_t width = 3;
  std::int64_t budget_ms = 10000;
  OptionParser parser("lock_race — all configurations on a combination lock");
  parser.add_int("stages", &stages, "number of lock digits (cex depth)");
  parser.add_int("width", &width, "input width in bits");
  parser.add_int("budget-ms", &budget_ms, "per-engine budget");
  if (!parser.parse(argc, argv)) return 1;

  Rng rng(42);
  std::vector<std::uint64_t> digits;
  const std::uint64_t mask = (1ULL << width) - 1;
  for (std::int64_t i = 0; i < stages; ++i) {
    digits.push_back(rng.next_u64() & mask);
  }

  const circuits::CircuitCase unsafe_lock = circuits::combination_lock_unsafe(
      static_cast<std::size_t>(width), digits);
  const circuits::CircuitCase safe_lock = circuits::combination_lock_safe(
      static_cast<std::size_t>(width), digits,
      static_cast<std::size_t>(stages / 2));

  std::printf("lock_race: %lld-stage lock over %lld-bit input, budget %lldms\n\n",
              static_cast<long long>(stages), static_cast<long long>(width),
              static_cast<long long>(budget_ms));
  std::printf("%-14s | %-22s | %-22s\n", "config",
              "unsafe lock (deep cex)", "safe lock (invariant)");
  std::printf("%-14s-+-%-22s-+-%-22s\n", "--------------",
              "----------------------", "----------------------");

  for (const std::string& spec : check::paper_configurations()) {
    check::CheckOptions opts;
    opts.engine_spec = spec;
    opts.budget_ms = budget_ms;

    const check::CheckResult ru = check::check_aig(unsafe_lock.aig, opts);
    const check::CheckResult rs = check::check_aig(safe_lock.aig, opts);

    auto cell = [](const check::CheckResult& r) {
      char buf[64];
      if (r.verdict == ic3::Verdict::kUnknown) {
        std::snprintf(buf, sizeof buf, "timeout");
      } else {
        std::snprintf(buf, sizeof buf, "%-7s %7.3fs",
                      ic3::to_string(r.verdict), r.seconds);
      }
      return std::string(buf);
    };
    std::printf("%-14s | %-22s | %-22s\n", spec.c_str(), cell(ru).c_str(),
                cell(rs).c_str());
    if (ru.stats.num_prediction_queries + rs.stats.num_prediction_queries >
        0) {
      std::printf("%-14s |   SR_lp=%5.1f%%  SR_fp=%5.1f%%  SR_adv=%5.1f%% "
                  "(combined)\n",
                  "", 100.0 * (ru.stats.sr_lp() + rs.stats.sr_lp()) / 2,
                  100.0 * (ru.stats.sr_fp() + rs.stats.sr_fp()) / 2,
                  100.0 * (ru.stats.sr_adv() + rs.stats.sr_adv()) / 2);
    }
  }
  std::printf(
      "\nReading the table: the -pl rows avoid part of the literal-dropping\n"
      "work whenever a failed-push parent lemma predicts the next lemma.\n");
  return 0;
}
