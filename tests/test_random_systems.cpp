/// Randomized end-to-end soundness fuzzing: small random transition
/// systems (including uninitialized latches) are checked by IC3 in several
/// configurations; verdicts are cross-validated against BMC and every
/// certificate is independently re-verified.  This is the strongest
/// correctness gate in the suite because the circuits are adversarially
/// shapeless rather than hand-structured.
#include <gtest/gtest.h>

#include "bmc/bmc.hpp"
#include "circuits/builder.hpp"
#include "ic3/engine.hpp"
#include "ts/transition_system.hpp"
#include "util/rng.hpp"

namespace pilot {
namespace {

/// Random AIG transition system: a few latches and inputs, a random DAG of
/// AND gates, random next-state functions and a random bad cone.
aig::Aig random_system(Rng& rng, int num_latches, int num_inputs,
                       int num_gates) {
  aig::Aig a;
  std::vector<aig::AigLit> pool;
  pool.push_back(aig::AigLit::constant(false));
  for (int i = 0; i < num_inputs; ++i) pool.push_back(a.add_input());
  std::vector<aig::AigLit> latches;
  for (int i = 0; i < num_latches; ++i) {
    // 10% uninitialized latches to exercise the X-reset paths.
    const aig::LBool init = rng.chance(0.1)
                                ? aig::l_Undef
                                : aig::LBool(rng.chance(0.5));
    const aig::AigLit l = a.add_latch(init);
    latches.push_back(l);
    pool.push_back(l);
  }
  auto pick = [&]() {
    const aig::AigLit l = pool[rng.below(pool.size())];
    return l ^ rng.chance(0.5);
  };
  for (int i = 0; i < num_gates; ++i) {
    pool.push_back(a.make_and(pick(), pick()));
  }
  for (const aig::AigLit l : latches) a.set_next(l, pick());
  a.add_bad(pick());
  return a;
}

class RandomSystems : public ::testing::TestWithParam<int> {};

TEST_P(RandomSystems, Ic3AgreesWithBmcAndCertificatesHold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6007 + 101);
  for (int round = 0; round < 25; ++round) {
    const int latches = 2 + static_cast<int>(rng.below(4));
    const int inputs = static_cast<int>(rng.below(3));
    const int gates = 3 + static_cast<int>(rng.below(12));
    const aig::Aig model = random_system(rng, latches, inputs, gates);
    const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(model);

    // IC3 (alternate baseline/prediction by round for coverage).
    ic3::Config cfg;
    cfg.predict_lemmas = (round % 2) == 0;
    cfg.gen_mode = (round % 3) == 0 ? ic3::GenMode::kCtg
                                    : ic3::GenMode::kDown;
    ic3::Engine engine(ts, cfg);
    const ic3::Result r = engine.check(Deadline::in_seconds(10));
    ASSERT_NE(r.verdict, ic3::Verdict::kUnknown)
        << "random system too hard?? seed=" << GetParam()
        << " round=" << round;

    // Certificates must check out.
    if (r.verdict == ic3::Verdict::kSafe) {
      const ic3::CheckOutcome c = ic3::check_invariant(ts, *r.invariant);
      EXPECT_TRUE(c.ok) << c.reason;
    } else {
      const ic3::CheckOutcome c = ic3::check_trace(ts, *r.trace);
      EXPECT_TRUE(c.ok) << c.reason;
    }

    // BMC cross-check.  State space ≤ 2^6, so diameter < 64: a bound of
    // 80 is exhaustive for UNSAFE detection in these systems only if the
    // system is deterministic from a single initial state — with inputs
    // and X-latches it underapproximates, so:
    //  * IC3 SAFE  → BMC must find nothing (at any bound).
    //  * BMC UNSAFE → IC3 must have said UNSAFE.
    bmc::BmcOptions bo;
    bo.max_bound = 80;
    const bmc::BmcResult b = bmc::run_bmc(ts, bo, Deadline::in_seconds(10));
    if (b.verdict == bmc::BmcVerdict::kUnsafe) {
      EXPECT_EQ(r.verdict, ic3::Verdict::kUnsafe);
      EXPECT_LE(b.counterexample_length, 64);
    }
    if (r.verdict == ic3::Verdict::kSafe) {
      EXPECT_NE(b.verdict, bmc::BmcVerdict::kUnsafe);
    }
    // Completeness of the cross-check: for UNSAFE verdicts the bound 80
    // exceeds the diameter, so BMC must also find a counterexample.
    if (r.verdict == ic3::Verdict::kUnsafe) {
      EXPECT_EQ(b.verdict, bmc::BmcVerdict::kUnsafe);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSystems, ::testing::Range(0, 6));

}  // namespace
}  // namespace pilot
