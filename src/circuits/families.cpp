#include "circuits/families.hpp"

#include <cassert>
#include <stdexcept>

#include "aig/simulation.hpp"
#include "circuits/builder.hpp"

namespace pilot::circuits {
namespace {

std::string param_name(const std::string& base,
                       std::initializer_list<std::uint64_t> params) {
  std::string s = base;
  for (const std::uint64_t p : params) s += "_" + std::to_string(p);
  return s;
}

}  // namespace

CircuitCase counter_unsafe(std::size_t width, std::uint64_t target) {
  assert(width < 64 && target < (1ULL << width));
  Aig aig;
  const Word count = make_latches(aig, width, 0, "count");
  connect(aig, count, increment(aig, count));
  aig.add_bad(equals_const(aig, count, target));
  return CircuitCase{param_name("counter_unsafe", {width, target}),
                     "counter", std::move(aig), false,
                     static_cast<int>(target)};
}

CircuitCase counter_wrap_safe(std::size_t width, std::uint64_t limit,
                              std::uint64_t target) {
  assert(limit <= target && target < (1ULL << width) && limit >= 1);
  Aig aig;
  const Word count = make_latches(aig, width, 0, "count");
  const AigLit at_limit = equals_const(aig, count, limit - 1);
  connect(aig, count,
          mux_word(aig, at_limit, const_word(width, 0),
                   increment(aig, count)));
  aig.add_bad(equals_const(aig, count, target));
  return CircuitCase{param_name("counter_wrap_safe", {width, limit, target}),
                     "counter", std::move(aig), true, -1};
}

CircuitCase counter_enable_unsafe(std::size_t width, std::uint64_t target) {
  assert(width < 64 && target < (1ULL << width));
  Aig aig;
  const AigLit enable = aig.add_input("enable");
  const Word count = make_latches(aig, width, 0, "count");
  connect(aig, count,
          mux_word(aig, enable, increment(aig, count), count));
  aig.add_bad(equals_const(aig, count, target));
  return CircuitCase{param_name("counter_enable", {width, target}),
                     "counter", std::move(aig), false,
                     static_cast<int>(target)};
}

namespace {

CircuitCase combination_lock_impl(std::size_t input_width,
                                  const std::vector<std::uint64_t>& digits,
                                  int broken_stage, const std::string& name) {
  const std::size_t stages = digits.size();
  std::size_t pw = 1;
  while ((1ULL << pw) < stages + 1) ++pw;  // progress counter width
  Aig aig;
  const Word in = make_inputs(aig, input_width, "in");
  const Word progress = make_latches(aig, pw, 0, "progress");

  // advance = OR_s (progress == s ∧ input matches stage s)
  std::vector<AigLit> advance_terms;
  for (std::size_t s = 0; s < stages; ++s) {
    const AigLit at_stage = equals_const(aig, progress, s);
    AigLit match = equals_const(aig, in, digits[s]);
    if (static_cast<int>(s) == broken_stage) {
      // Unsatisfiable stage: the input would have to equal two different
      // words at once.
      match = aig.make_and(match,
                           equals_const(aig, in, digits[s] ^ 1ULL));
    }
    advance_terms.push_back(aig.make_and(at_stage, match));
  }
  const AigLit advance = aig.make_or_n(advance_terms);
  connect(aig, progress,
          mux_word(aig, advance, increment(aig, progress),
                   const_word(pw, 0)));
  aig.add_bad(equals_const(aig, progress, stages));
  CircuitCase c;
  c.name = name;
  c.family = "lock";
  c.aig = std::move(aig);
  c.expected_safe = broken_stage >= 0;
  c.expected_cex_length =
      broken_stage >= 0 ? -1 : static_cast<int>(stages);
  return c;
}

}  // namespace

CircuitCase combination_lock_unsafe(
    std::size_t input_width, const std::vector<std::uint64_t>& digits) {
  return combination_lock_impl(
      input_width, digits, -1,
      param_name("lock_unsafe", {input_width, digits.size()}));
}

CircuitCase combination_lock_safe(std::size_t input_width,
                                  const std::vector<std::uint64_t>& digits,
                                  std::size_t broken_stage) {
  assert(broken_stage < digits.size());
  return combination_lock_impl(
      input_width, digits, static_cast<int>(broken_stage),
      param_name("lock_safe", {input_width, digits.size(), broken_stage}));
}

CircuitCase shift_register(std::size_t width, bool constrain_input_zero) {
  Aig aig;
  const AigLit in = aig.add_input("in");
  const Word stages = make_latches(aig, width, 0, "stage");
  Word next;
  next.push_back(in);
  for (std::size_t i = 0; i + 1 < width; ++i) next.push_back(stages[i]);
  connect(aig, stages, next);
  aig.add_bad(stages[width - 1]);
  if (constrain_input_zero) aig.add_constraint(!in);
  CircuitCase c;
  c.name = param_name(constrain_input_zero ? "shiftreg_safe"
                                           : "shiftreg_unsafe",
                      {width});
  c.family = "shiftreg";
  c.aig = std::move(aig);
  c.expected_safe = constrain_input_zero;
  c.expected_cex_length =
      constrain_input_zero ? -1 : static_cast<int>(width);
  return c;
}

namespace {

Word rotate_next(const Word& t) {
  Word next;
  const std::size_t n = t.size();
  for (std::size_t i = 0; i < n; ++i) next.push_back(t[(i + n - 1) % n]);
  return next;
}

}  // namespace

CircuitCase token_ring_safe(std::size_t n) {
  Aig aig;
  const Word tokens = make_latches(aig, n, 1, "token");
  connect(aig, tokens, rotate_next(tokens));
  aig.add_bad(at_least_two(aig, tokens));
  return CircuitCase{param_name("token_ring_safe", {n}), "ring",
                     std::move(aig), true, -1};
}

CircuitCase token_ring_unsafe(std::size_t n) {
  Aig aig;
  const AigLit inject = aig.add_input("inject");
  const Word tokens = make_latches(aig, n, 1, "token");
  const Word rotated = rotate_next(tokens);
  Word next;
  for (std::size_t i = 0; i < n; ++i) {
    // On inject, the token both advances and stays: duplication.
    next.push_back(
        aig.make_or(rotated[i], aig.make_and(inject, tokens[i])));
  }
  connect(aig, tokens, next);
  aig.add_bad(at_least_two(aig, tokens));
  return CircuitCase{param_name("token_ring_unsafe", {n}), "ring",
                     std::move(aig), false, 1};
}

CircuitCase arbiter_safe(std::size_t n) {
  Aig aig;
  const Word requests = make_inputs(aig, n, "req");
  const Word tokens = make_latches(aig, n, 1, "token");
  connect(aig, tokens, rotate_next(tokens));
  Word grants;
  for (std::size_t i = 0; i < n; ++i) {
    grants.push_back(aig.make_and(requests[i], tokens[i]));
  }
  aig.add_bad(at_least_two(aig, grants));
  return CircuitCase{param_name("arbiter_safe", {n}), "arbiter",
                     std::move(aig), true, -1};
}

CircuitCase arbiter_unsafe(std::size_t n) {
  Aig aig;
  const Word requests = make_inputs(aig, n, "req");
  const Word tokens = make_latches(aig, n, 1, "token");
  const AigLit no_request = !aig.make_or_n(requests);
  const Word rotated = rotate_next(tokens);
  Word next;
  for (std::size_t i = 0; i < n; ++i) {
    // Bug: when idle, the token duplicates while rotating.
    next.push_back(
        aig.make_or(rotated[i], aig.make_and(no_request, tokens[i])));
  }
  connect(aig, tokens, next);
  Word grants;
  for (std::size_t i = 0; i < n; ++i) {
    grants.push_back(aig.make_and(requests[i], tokens[i]));
  }
  aig.add_bad(at_least_two(aig, grants));
  return CircuitCase{param_name("arbiter_unsafe", {n}), "arbiter",
                     std::move(aig), false, -1};
}

namespace {

CircuitCase gray_counter_impl(std::size_t width, std::size_t shift,
                              bool safe, const std::string& name) {
  Aig aig;
  const Word count = make_latches(aig, width, 0, "count");
  const Word prev_gray = make_latches(aig, width, 0, "prev_gray");
  const AigLit started = aig.add_latch(aig::l_False, "started");

  const Word gray = xor_word(aig, count, shift_right_const(count, shift));
  connect(aig, count, increment(aig, count));
  connect(aig, prev_gray, gray);
  aig.set_next(started, AigLit::constant(true));

  const Word delta = xor_word(aig, gray, prev_gray);
  aig.add_bad(aig.make_and(started, !exactly_one(aig, delta)));
  CircuitCase c;
  c.name = name;
  c.family = "gray";
  c.aig = std::move(aig);
  // Faulty encoding b^(b>>2): gray2(1)=1 and gray2(2)=2 differ in two bits,
  // so the checker fires at frame 2.
  c.expected_safe = safe;
  c.expected_cex_length = safe ? -1 : 2;
  return c;
}

}  // namespace

CircuitCase gray_counter_safe(std::size_t width) {
  return gray_counter_impl(width, 1, true,
                           param_name("gray_safe", {width}));
}

CircuitCase gray_counter_unsafe(std::size_t width) {
  assert(width >= 3);
  return gray_counter_impl(width, 2, false,
                           param_name("gray_unsafe", {width}));
}

namespace {

/// Builds the LFSR next-state word: left shift, feedback bit into bit 0.
Word lfsr_next(Aig& aig, const Word& state, std::uint64_t taps) {
  std::vector<AigLit> tapped;
  for (std::size_t i = 0; i < state.size(); ++i) {
    if ((taps >> i) & 1ULL) tapped.push_back(state[i]);
  }
  const AigLit feedback = parity(aig, tapped);
  Word next;
  next.push_back(feedback);
  for (std::size_t i = 0; i + 1 < state.size(); ++i) {
    next.push_back(state[i]);
  }
  return next;
}

}  // namespace

CircuitCase lfsr_safe(std::size_t width, std::uint64_t taps) {
  // The MSB tap guarantees a nonzero state cannot step to zero.
  if (((taps >> (width - 1)) & 1ULL) == 0) {
    throw std::invalid_argument("lfsr_safe requires the MSB tap");
  }
  Aig aig;
  const Word state = make_latches(aig, width, 1, "lfsr");
  connect(aig, state, lfsr_next(aig, state, taps));
  aig.add_bad(equals_const(aig, state, 0));
  return CircuitCase{param_name("lfsr_safe", {width, taps}), "lfsr",
                     std::move(aig), true, -1};
}

CircuitCase lfsr_unsafe(std::size_t width, std::uint64_t taps, int steps) {
  Aig aig;
  const Word state = make_latches(aig, width, 1, "lfsr");
  connect(aig, state, lfsr_next(aig, state, taps));
  // Find the state reached after `steps` iterations by simulation; that
  // state is reachable by construction.
  aig::BitSimulator sim(aig);
  sim.reset();
  for (int s = 0; s < steps; ++s) {
    sim.compute({});
    sim.latch_step();
  }
  std::uint64_t target = 0;
  for (std::size_t i = 0; i < width; ++i) {
    if (sim.latch_value(state[i].node()) & 1ULL) target |= 1ULL << i;
  }
  aig.add_bad(equals_const(aig, state, target));
  return CircuitCase{param_name("lfsr_unsafe", {width, taps,
                                                static_cast<std::uint64_t>(
                                                    steps)}),
                     "lfsr", std::move(aig), false, steps};
}

CircuitCase ring_parity_safe(std::size_t width) {
  Aig aig;
  const Word state = make_latches(aig, width, 1, "ring");  // odd parity
  Word next;
  for (std::size_t i = 0; i < width; ++i) {
    next.push_back(state[(i + 1) % width]);
  }
  connect(aig, state, next);
  aig.add_bad(!parity(aig, state));
  return CircuitCase{param_name("ring_parity_safe", {width}), "parity",
                     std::move(aig), true, -1};
}

namespace {

CircuitCase fifo_impl(std::size_t width, std::uint64_t capacity,
                      std::uint64_t full_check, bool safe,
                      const std::string& name) {
  assert(full_check < (1ULL << width));
  Aig aig;
  const AigLit push = aig.add_input("push");
  const AigLit pop = aig.add_input("pop");
  const Word occ = make_latches(aig, width, 0, "occ");

  const AigLit full = equals_const(aig, occ, full_check);
  const AigLit empty = equals_const(aig, occ, 0);
  const AigLit do_push = aig.make_and(push, !full);
  const AigLit do_pop = aig.make_and(pop, !empty);
  const AigLit up = aig.make_and(do_push, !do_pop);
  const AigLit down = aig.make_and(do_pop, !do_push);
  const Word inc = increment(aig, occ);
  const Word dec = subtract(aig, occ, const_word(width, 1));
  connect(aig, occ,
          mux_word(aig, up, inc, mux_word(aig, down, dec, occ)));
  aig.add_bad(less_than(aig, const_word(width, capacity), occ));  // occ > cap
  CircuitCase c;
  c.name = name;
  c.family = "fifo";
  c.aig = std::move(aig);
  c.expected_safe = safe;
  c.expected_cex_length = safe ? -1 : static_cast<int>(capacity) + 1;
  return c;
}

}  // namespace

CircuitCase fifo_safe(std::size_t width, std::uint64_t capacity) {
  return fifo_impl(width, capacity, capacity, true,
                   param_name("fifo_safe", {width, capacity}));
}

CircuitCase fifo_unsafe(std::size_t width, std::uint64_t capacity) {
  // Off-by-one full check lets occupancy reach capacity + 1.
  return fifo_impl(width, capacity, capacity + 1, false,
                   param_name("fifo_unsafe", {width, capacity}));
}

namespace {

CircuitCase saturating_impl(std::size_t width, std::uint64_t cap,
                            std::uint64_t clamp_at, bool safe,
                            const std::string& name) {
  Aig aig;
  const std::size_t in_width = width / 2 > 0 ? width / 2 : 1;
  const Word in = make_inputs(aig, in_width, "in");
  const Word acc = make_latches(aig, width, 0, "acc");

  // Widen to width+1 bits so the sum cannot wrap.
  Word in_ext = in;
  while (in_ext.size() < width + 1) in_ext.push_back(AigLit::constant(false));
  Word acc_ext = acc;
  acc_ext.push_back(AigLit::constant(false));
  const Word sum = ripple_add(aig, acc_ext, in_ext);

  const AigLit over = less_than(aig, const_word(width + 1, clamp_at), sum);
  Word clamped = const_word(width, clamp_at);
  Word sum_trunc(sum.begin(), sum.begin() + static_cast<long>(width));
  connect(aig, acc, mux_word(aig, over, clamped, sum_trunc));
  aig.add_bad(less_than(aig, const_word(width, cap), acc));  // acc > cap
  CircuitCase c;
  c.name = name;
  c.family = "saturate";
  c.aig = std::move(aig);
  c.expected_safe = safe;
  c.expected_cex_length = -1;
  return c;
}

}  // namespace

CircuitCase saturating_accumulator_safe(std::size_t width,
                                        std::uint64_t cap) {
  assert(cap < (1ULL << width));
  return saturating_impl(width, cap, cap, true,
                         param_name("saturate_safe", {width, cap}));
}

CircuitCase saturating_accumulator_unsafe(std::size_t width,
                                          std::uint64_t cap) {
  assert(cap + 1 < (1ULL << width));
  // Clamping at cap+1 lets the accumulator exceed cap.
  return saturating_impl(width, cap, cap + 1, false,
                         param_name("saturate_unsafe", {width, cap}));
}

CircuitCase twin_counters_safe(std::size_t width) {
  Aig aig;
  const Word c1 = make_latches(aig, width, 0, "c1");
  const Word c2 = make_latches(aig, width, 0, "c2");
  connect(aig, c1, increment(aig, c1));
  connect(aig, c2, increment(aig, c2));
  aig.add_bad(!equals(aig, c1, c2));
  return CircuitCase{param_name("twin_safe", {width}), "twin",
                     std::move(aig), true, -1};
}

CircuitCase twin_counters_unsafe(std::size_t width) {
  Aig aig;
  const AigLit stall = aig.add_input("stall");
  const Word c1 = make_latches(aig, width, 0, "c1");
  const Word c2 = make_latches(aig, width, 0, "c2");
  connect(aig, c1, increment(aig, c1));
  connect(aig, c2, mux_word(aig, stall, c2, increment(aig, c2)));
  aig.add_bad(!equals(aig, c1, c2));
  return CircuitCase{param_name("twin_unsafe", {width}), "twin",
                     std::move(aig), false, 1};
}

namespace {

/// Two-process mutex.  Each process: 2-bit state (00 idle, 01 want,
/// 10 critical); a turn latch arbitrates entry.
CircuitCase mutex_impl(bool buggy, const std::string& name) {
  Aig aig;
  const AigLit req0 = aig.add_input("req0");
  const AigLit req1 = aig.add_input("req1");
  const AigLit turn = aig.add_latch(aig::l_False, "turn");

  struct Proc {
    AigLit s0, s1;  // state bits: s1 s0
  };
  const Proc p0{aig.add_latch(aig::l_False, "p0_s0"),
                aig.add_latch(aig::l_False, "p0_s1")};
  const Proc p1{aig.add_latch(aig::l_False, "p1_s0"),
                aig.add_latch(aig::l_False, "p1_s1")};

  auto build = [&](const Proc& self, const Proc& other, AigLit req,
                   AigLit my_turn) {
    const AigLit idle = aig.make_and(!self.s1, !self.s0);
    const AigLit want = aig.make_and(!self.s1, self.s0);
    const AigLit crit = aig.make_and(self.s1, !self.s0);
    AigLit may_enter = my_turn;
    if (buggy) {
      // Bug 1: also enter when the other process looks idle.
      const AigLit other_idle = aig.make_and(!other.s1, !other.s0);
      may_enter = aig.make_or(my_turn, other_idle);
    }
    const AigLit to_want = aig.make_and(idle, req);
    const AigLit to_crit = aig.make_and(want, may_enter);
    // next s0: want stays want unless entering; idle→want sets s0.
    const AigLit n_s0 =
        aig.make_or(to_want, aig.make_and(want, !to_crit));
    // next s1: entering critical; correct processes exit after one cycle.
    AigLit n_s1 = to_crit;
    if (buggy) {
      // Bug 2: hold the critical section while the request stays up, but
      // the turn still toggles away (see leave0/leave1 below), so the
      // other process is eventually let in concurrently.
      n_s1 = aig.make_or(to_crit, aig.make_and(crit, req));
    }
    aig.set_next(self.s0, n_s0);
    aig.set_next(self.s1, n_s1);
    return crit;
  };

  const AigLit crit0 = build(p0, p1, req0, !turn);
  const AigLit crit1 = build(p1, p0, req1, turn);
  // Turn toggles when the owning process leaves the critical section.
  const AigLit leave0 = aig.make_and(crit0, !turn);
  const AigLit leave1 = aig.make_and(crit1, turn);
  aig.set_next(turn, aig.make_xor(turn, aig.make_or(leave0, leave1)));

  aig.add_bad(aig.make_and(crit0, crit1));
  CircuitCase c;
  c.name = name;
  c.family = "mutex";
  c.aig = std::move(aig);
  c.expected_safe = !buggy;
  c.expected_cex_length = -1;
  return c;
}

}  // namespace

CircuitCase mutex_safe() { return mutex_impl(false, "mutex_safe"); }
CircuitCase mutex_unsafe() { return mutex_impl(true, "mutex_unsafe"); }

}  // namespace pilot::circuits
