#include "engine/portfolio.hpp"

#include <atomic>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <utility>

#include "cert/certificate.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace pilot::engine {

const std::vector<std::string>& default_portfolio_backends() {
  static const std::vector<std::string> kDefaults{
      "ic3-ctg-pl", "ic3-down-pl", "bmc", "kind"};
  return kDefaults;
}

std::vector<std::string> parse_portfolio_spec(const std::string& spec) {
  if (spec.empty()) {
    throw std::invalid_argument(
        "portfolio spec is empty (omit the ':' to race the default mix)");
  }
  std::vector<std::string> names;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t plus = spec.find('+', start);
    const std::size_t end = plus == std::string::npos ? spec.size() : plus;
    const std::string name = spec.substr(start, end - start);
    if (name.empty()) {
      throw std::invalid_argument("portfolio spec '" + spec +
                                  "': empty backend name");
    }
    if (!backend_registered(name)) {
      throw std::invalid_argument("portfolio spec '" + spec + "': " +
                                  unknown_engine_message(name));
    }
    for (const std::string& seen : names) {
      if (seen == name) {
        throw std::invalid_argument("portfolio spec: duplicate backend '" +
                                    name + "'");
      }
    }
    names.push_back(name);
    if (plus == std::string::npos) break;
    start = plus + 1;
  }
  return names;
}

std::optional<PortfolioSpec> match_portfolio_spec(const std::string& spec) {
  for (const auto& [prefix, exchange] :
       {std::pair<const char*, bool>{"portfolio-x", true},
        std::pair<const char*, bool>{"portfolio", false}}) {
    const std::string_view p(prefix);
    if (spec.rfind(p, 0) != 0) continue;
    if (spec.size() == p.size()) return PortfolioSpec{exchange, {}};
    if (spec[p.size()] != ':') continue;  // e.g. "portfolio-xyz"
    // An empty list after the ':' is a malformed spec, rejected by
    // parse_portfolio_spec — it does not silently mean "defaults".
    return PortfolioSpec{exchange,
                         parse_portfolio_spec(spec.substr(p.size() + 1))};
  }
  return std::nullopt;
}

PortfolioResult run_portfolio(const ts::TransitionSystem& ts,
                              const PortfolioOptions& options,
                              Deadline deadline, const CancelToken* cancel) {
  Timer race_timer;
  const std::vector<std::string>& names =
      options.backends.empty() ? default_portfolio_backends()
                               : options.backends;

  // The exchange hub and per-backend endpoints must outlive the workers;
  // peers are registered here, while still single-threaded.
  std::unique_ptr<LemmaExchange> hub;
  std::vector<std::unique_ptr<PeerBus>> buses;
  if (options.share_lemmas) hub = std::make_unique<LemmaExchange>();

  // Build every backend up front so an unknown name throws before any
  // thread exists.
  std::vector<std::unique_ptr<Backend>> backends;
  backends.reserve(names.size());
  for (const std::string& name : names) {
    BackendContext ctx;
    ctx.seed = options.seed;
    ctx.ic3_overrides = options.ic3_overrides;
    ctx.gen_spec = options.gen_spec;
    ctx.lift_sim = options.lift_sim;
    ctx.gen_ternary_filter = options.gen_ternary_filter;
    ctx.sat_inprocess = options.sat_inprocess;
    ctx.gen_batch = options.gen_batch;
    ctx.gen_batch_adaptive = options.gen_batch_adaptive;
    if (hub != nullptr) {
      buses.push_back(std::make_unique<PeerBus>(*hub, hub->add_peer()));
      ctx.lemma_bus = buses.back().get();
    }
    if (options.progress != nullptr) {
      ctx.progress = options.progress->add_channel(name);
    }
    backends.push_back(make_backend(name, ts, ctx));
  }

  // The race: `stop` chains the caller's token so an outer abort also stops
  // every worker; the first definitive verdict claims `winner` and stops
  // the rest.
  CancelToken stop(cancel);
  std::atomic<int> winner{-1};
  std::vector<EngineResult> results(backends.size());
  // Per-worker quarantine slots (vector<char>, not vector<bool>: each
  // worker writes only its own element, which must be a distinct object).
  std::vector<char> quarantined(backends.size(), 0);
  std::vector<std::string> quarantine_reasons(backends.size());

  auto worker = [&](std::size_t i) {
    EngineResult r = backends[i]->check(deadline, &stop);
    if (r.verdict != ic3::Verdict::kUnknown) {
      // Trust-but-verify gate: the verdict only enters winner selection
      // once its certificate passes the independent checker.  A failure
      // quarantines this backend's answer and cancels nothing — the race
      // continues with the remaining backends.
      bool accept = true;
      if (options.certify) {
        std::string why;
        const std::optional<cert::Certificate> c = cert::from_verdict(
            ts, r.verdict, r.invariant, r.trace, r.kind_k, r.kind_simple_path,
            options.property_index, &why);
        ++r.stats.num_cert_checks;
        if (c.has_value()) {
          const ic3::CheckOutcome outcome =
              cert::check(ts, *c, options.seed + i + 1);
          if (!outcome.ok) {
            accept = false;
            why = outcome.reason;
          }
        } else {
          accept = false;
        }
        if (!accept) {
          ++r.stats.num_cert_failures;
          quarantined[i] = 1;
          quarantine_reasons[i] = why;
          PILOT_WARN("portfolio: quarantined " << names[i] << " ("
                                               << ic3::to_string(r.verdict)
                                               << "): " << why);
          PILOT_TRACE_INSTANT("cert.quarantine");
        }
      }
      if (accept) {
        int expected = -1;
        if (winner.compare_exchange_strong(expected, static_cast<int>(i))) {
          stop.request_stop();
        }
      }
    }
    results[i] = std::move(r);
  };

  if (backends.size() == 1) {
    worker(0);  // degenerate portfolio: no threads needed
  } else {
    std::vector<std::thread> threads;
    threads.reserve(backends.size());
    for (std::size_t i = 0; i < backends.size(); ++i) {
      threads.emplace_back([&, i] {
        // Tag this worker so its log lines and trace track carry the
        // backend name (interleaved stderr stays attributable). The trace
        // stream is only registered when tracing is on — the ring is a
        // few MB per thread.
        logcfg::set_thread_tag(names[i]);
        if (obs::trace_enabled()) obs::name_current_thread(names[i]);
        worker(i);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  PortfolioResult out;
  const int win = winner.load();
  for (std::size_t i = 0; i < backends.size(); ++i) {
    BackendTiming timing;
    timing.name = names[i];
    timing.verdict = results[i].verdict;
    timing.seconds = results[i].seconds;
    timing.winner = static_cast<int>(i) == win;
    // Only cut-short runs count as cancelled; a backend that completed on
    // its own without a verdict (e.g. BMC exhausting its bound) did not
    // lose to the stop request.
    timing.cancelled = results[i].interrupted && stop.stop_requested();
    timing.lemmas_published = results[i].stats.num_exchange_published;
    timing.lemmas_imported = results[i].stats.num_exchange_imported;
    timing.lemmas_rejected = results[i].stats.num_exchange_rejected;
    timing.quarantined = quarantined[i] != 0;
    timing.quarantine_reason = quarantine_reasons[i];
    out.timings.push_back(std::move(timing));
  }
  if (hub != nullptr) out.exchange = hub->stats();
  if (win >= 0) {
    out.winner = names[static_cast<std::size_t>(win)];
    out.result = std::move(results[static_cast<std::size_t>(win)]);
    PILOT_INFO("portfolio: " << out.winner << " wins with "
                             << ic3::to_string(out.result.verdict) << " in "
                             << out.result.seconds << "s");
  } else {
    // No verdict anywhere: report the race's real wall-clock, not a
    // default-constructed 0.0, so budget-exhausted rows stay meaningful.
    out.result.seconds = race_timer.seconds();
    out.result.interrupted = stop.stop_requested();
  }
  return out;
}

}  // namespace pilot::engine
