/// \file log.hpp
/// Minimal leveled logging to stderr.
///
/// Engines log structural progress (frame counts, restarts) at Info and
/// per-query detail at Debug.  The level is a process-wide setting so that
/// examples and benches can silence the library wholesale.
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace pilot {

enum class LogLevel { kSilent = 0, kError, kWarn, kInfo, kDebug };

/// Process-wide log configuration.
namespace logcfg {
LogLevel level();
void set_level(LogLevel level);

/// Parses "silent" / "error" / "warn" / "info" / "debug".
std::optional<LogLevel> level_from_string(const std::string& name);

/// Applies the PILOT_LOG environment variable (if set and valid) to the
/// process-wide level. Explicit --log-level flags override it by calling
/// set_level afterwards.
void init_from_env();

/// Per-thread tag prepended to every log line from this thread — portfolio
/// workers set their backend name so interleaved output is attributable.
/// Empty clears the tag.
void set_thread_tag(const std::string& tag);
const std::string& thread_tag();
}  // namespace logcfg

namespace detail {
void emit(LogLevel level, const std::string& message);
}

/// Logs `expr` (an ostream chain) at the given level when enabled.
#define PILOT_LOG(level_, expr_)                                   \
  do {                                                             \
    if (static_cast<int>(::pilot::logcfg::level()) >=              \
        static_cast<int>(level_)) {                                \
      std::ostringstream pilot_log_oss_;                           \
      pilot_log_oss_ << expr_;                                     \
      ::pilot::detail::emit(level_, pilot_log_oss_.str());         \
    }                                                              \
  } while (0)

#define PILOT_ERROR(expr_) PILOT_LOG(::pilot::LogLevel::kError, expr_)
#define PILOT_WARN(expr_) PILOT_LOG(::pilot::LogLevel::kWarn, expr_)
#define PILOT_INFO(expr_) PILOT_LOG(::pilot::LogLevel::kInfo, expr_)
#define PILOT_DEBUG(expr_) PILOT_LOG(::pilot::LogLevel::kDebug, expr_)

}  // namespace pilot
