/// \file quickstart.cpp
/// Five-minute tour of the pilot API:
///   1. build a circuit (an 8-bit wrap-around counter) through the AIG API,
///   2. check a safe property with IC3, with and without lemma prediction,
///   3. check an unsafe variant and replay the counterexample,
///   4. print the paper's prediction success-rate statistics.
///
/// Run:  ./build/examples/quickstart
#include <cstdio>

#include "check/checker.hpp"
#include "circuits/builder.hpp"
#include "ic3/engine.hpp"
#include "ts/transition_system.hpp"

using namespace pilot;

namespace {

/// An 8-bit counter that wraps at 100; bad = "counter reached 200".
/// Unreachable, so the property is safe.
aig::Aig make_safe_counter() {
  aig::Aig a;
  const circuits::Word count = circuits::make_latches(a, 8, 0, "count");
  const aig::AigLit wrap = circuits::equals_const(a, count, 99);
  circuits::connect(
      a, count,
      circuits::mux_word(a, wrap, circuits::const_word(8, 0),
                         circuits::increment(a, count)));
  a.add_bad(circuits::equals_const(a, count, 200));
  return a;
}

/// Same counter without the wrap: the bad value is reached at step 200.
aig::Aig make_unsafe_counter() {
  aig::Aig a;
  const circuits::Word count = circuits::make_latches(a, 8, 0, "count");
  circuits::connect(a, count, circuits::increment(a, count));
  a.add_bad(circuits::equals_const(a, count, 200));
  return a;
}

void report(const char* label, const check::CheckResult& r) {
  std::printf("%-28s %-8s %7.3fs  frames=%zu", label,
              ic3::to_string(r.verdict), r.seconds, r.frames);
  if (r.stats.num_generalizations > 0) {
    std::printf("  N_g=%llu",
                static_cast<unsigned long long>(r.stats.num_generalizations));
  }
  if (r.stats.num_prediction_queries > 0) {
    std::printf("  SR_lp=%.1f%% SR_adv=%.1f%%", 100.0 * r.stats.sr_lp(),
                100.0 * r.stats.sr_adv());
  }
  if (r.witness_checked) std::printf("  [witness verified]");
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("pilot quickstart: IC3 with predicted lemmas (DAC'24)\n\n");

  // --- 1. a safe instance, baseline vs prediction -------------------------
  const aig::Aig safe = make_safe_counter();
  {
    check::CheckOptions opts;
    opts.engine_spec = "ic3-ctg";  // IC3ref-style baseline
    report("safe counter, ic3-ctg", check::check_aig(safe, opts));

    opts.engine_spec = "ic3-ctg-pl";  // + predicting lemmas
    report("safe counter, ic3-ctg-pl", check::check_aig(safe, opts));
  }

  // --- 2. an unsafe instance: counterexample + replay ----------------------
  const aig::Aig unsafe = make_unsafe_counter();
  {
    check::CheckOptions opts;
    opts.engine_spec = "ic3-ctg-pl";
    const check::CheckResult r = check::check_aig(unsafe, opts);
    report("unsafe counter, ic3-ctg-pl", r);

    // Cross-check with BMC: it must agree and report depth 200.
    opts.engine_spec = "bmc";
    report("unsafe counter, bmc", check::check_aig(unsafe, opts));
  }

  std::printf(
      "\nBoth engines agree; witnesses were re-verified independently\n"
      "(trace replay on the AIG / SAT re-check of the invariant).\n");
  return 0;
}
