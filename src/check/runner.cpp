#include "check/runner.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "util/log.hpp"

namespace pilot::check {

std::vector<RunRecord> run_matrix(
    const std::vector<circuits::CircuitCase>& cases,
    const std::vector<EngineKind>& engines,
    const RunMatrixOptions& options) {
  struct Job {
    std::size_t case_index;
    EngineKind engine;
  };
  std::vector<Job> jobs;
  jobs.reserve(cases.size() * engines.size());
  for (std::size_t c = 0; c < cases.size(); ++c) {
    for (const EngineKind e : engines) jobs.push_back(Job{c, e});
  }

  std::vector<RunRecord> records(jobs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> soundness_violated{false};

  auto worker = [&]() {
    for (;;) {
      const std::size_t j = next.fetch_add(1);
      if (j >= jobs.size()) return;
      const Job& job = jobs[j];
      const circuits::CircuitCase& cc = cases[job.case_index];

      CheckOptions co;
      co.engine = job.engine;
      co.budget_ms = options.budget_ms;
      co.seed = options.seed;
      co.verify_witness = options.verify_witness;
      const CheckResult res = check_aig(cc.aig, co);

      RunRecord rec;
      rec.case_name = cc.name;
      rec.family = cc.family;
      rec.engine = job.engine;
      rec.expected_safe = cc.expected_safe;
      rec.verdict = res.verdict;
      rec.solved = res.verdict != ic3::Verdict::kUnknown;
      rec.seconds = res.seconds;
      rec.frames = res.frames;
      rec.stats = res.stats;

      if (rec.solved) {
        const bool got_safe = res.verdict == ic3::Verdict::kSafe;
        if (got_safe != cc.expected_safe) {
          std::fprintf(stderr,
                       "SOUNDNESS VIOLATION: %s with %s reported %s but the "
                       "construction guarantees %s\n",
                       cc.name.c_str(), to_string(job.engine),
                       ic3::to_string(res.verdict),
                       cc.expected_safe ? "SAFE" : "UNSAFE");
          soundness_violated.store(true);
        }
        if (options.verify_witness && !res.witness_error.empty()) {
          std::fprintf(stderr, "WITNESS CHECK FAILED: %s with %s: %s\n",
                       cc.name.c_str(), to_string(job.engine),
                       res.witness_error.c_str());
          soundness_violated.store(true);
        }
      }
      records[j] = std::move(rec);
    }
  };

  std::size_t n_threads = options.jobs;
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  n_threads = std::min(n_threads, jobs.size());
  if (n_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (std::size_t t = 0; t < n_threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  if (soundness_violated.load() && options.strict) {
    std::fprintf(stderr, "aborting: soundness gate tripped\n");
    std::abort();
  }
  return records;
}

}  // namespace pilot::check
