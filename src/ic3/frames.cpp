#include "ic3/frames.hpp"

#include <algorithm>

namespace pilot::ic3 {

bool Frames::add_lemma(const Cube& cube, std::size_t level,
                       std::size_t* removed_count) {
  ensure_level(level);
  // Skip if an existing lemma at level ≥ `level` subsumes the new one.
  for (std::size_t j = level; j < delta_.size(); ++j) {
    for (const Cube& d : delta_[j]) {
      if (d.subset_of(cube)) {
        if (removed_count != nullptr) *removed_count = 0;
        return false;
      }
    }
  }
  // Drop existing lemmas at level ≤ `level` that the new one subsumes.
  std::size_t removed = 0;
  for (std::size_t j = 1; j <= level; ++j) {
    auto& bucket = delta_[j];
    const auto new_end =
        std::remove_if(bucket.begin(), bucket.end(), [&](const Cube& d) {
          return cube.subset_of(d);
        });
    removed += static_cast<std::size_t>(bucket.end() - new_end);
    bucket.erase(new_end, bucket.end());
  }
  delta_[level].push_back(cube);
  if (removed_count != nullptr) *removed_count = removed;
  return true;
}

bool Frames::remove_lemma(const Cube& cube, std::size_t level) {
  auto& bucket = delta_[level];
  const auto it = std::find(bucket.begin(), bucket.end(), cube);
  if (it == bucket.end()) return false;
  bucket.erase(it);
  return true;
}

bool Frames::subsumed_at(const Cube& cube, std::size_t level) const {
  for (std::size_t j = level; j < delta_.size(); ++j) {
    for (const Cube& d : delta_[j]) {
      if (d.subset_of(cube)) return true;
    }
  }
  return false;
}

std::vector<Cube> Frames::parents_of(const Cube& cube,
                                     std::size_t level) const {
  std::vector<Cube> parents;
  if (level == 0 || level >= delta_.size()) return parents;
  for (const Cube& p : delta_[level]) {
    if (p.subset_of(cube)) parents.push_back(p);
  }
  return parents;
}

std::size_t Frames::total_lemmas() const {
  std::size_t n = 0;
  for (const auto& bucket : delta_) n += bucket.size();
  return n;
}

}  // namespace pilot::ic3
