/// \file stats.hpp
/// IC3 run statistics, including the success-rate counters defined in §4.3
/// of the paper:
///   N_g  — total generalizations            (num_generalizations)
///   N_p  — prediction SAT queries           (num_prediction_queries)
///   N_sp — successful lemma predictions     (num_successful_predictions)
///   N_fp — generalizations that found a     (num_found_failed_parents)
///          failed-pushed parent lemma
/// and the derived rates SR_lp = N_sp/N_p, SR_fp = N_fp/N_g,
/// SR_adv = N_sp/N_g.
#pragma once

#include <cstdint>
#include <string>

namespace pilot::ic3 {

struct Ic3Stats {
  // --- paper §4.3 counters ---
  std::uint64_t num_generalizations = 0;        // N_g
  std::uint64_t num_prediction_queries = 0;     // N_p
  std::uint64_t num_successful_predictions = 0; // N_sp
  std::uint64_t num_found_failed_parents = 0;   // N_fp

  // --- engine counters ---
  std::uint64_t num_obligations = 0;
  std::uint64_t num_lemmas = 0;
  std::uint64_t num_blocked_cubes = 0;
  std::uint64_t num_ctis = 0;
  std::uint64_t num_mic_queries = 0;       // SAT queries spent dropping vars
  std::uint64_t num_mic_drops = 0;         // literals successfully dropped
  std::uint64_t num_push_queries = 0;
  std::uint64_t num_push_successes = 0;
  std::uint64_t num_ctg_blocked = 0;
  std::uint64_t num_solver_rebuilds = 0;
  std::uint64_t num_subsumed_lemmas = 0;

  // --- timing (seconds) ---
  double time_total = 0.0;
  double time_generalize = 0.0;
  double time_predict = 0.0;
  double time_propagate = 0.0;

  std::size_t max_frame = 0;

  // --- derived success rates (paper Table 2) ---
  [[nodiscard]] double sr_lp() const {
    return num_prediction_queries == 0
               ? 0.0
               : static_cast<double>(num_successful_predictions) /
                     static_cast<double>(num_prediction_queries);
  }
  [[nodiscard]] double sr_fp() const {
    return num_generalizations == 0
               ? 0.0
               : static_cast<double>(num_found_failed_parents) /
                     static_cast<double>(num_generalizations);
  }
  [[nodiscard]] double sr_adv() const {
    return num_generalizations == 0
               ? 0.0
               : static_cast<double>(num_successful_predictions) /
                     static_cast<double>(num_generalizations);
  }

  [[nodiscard]] std::string summary() const;
};

}  // namespace pilot::ic3
