/// \file checker.hpp
/// Unified model-checking front door: pick an engine configuration (or a
/// portfolio of them), get a verdict with a certified witness.
///
/// Engine construction and dispatch go through the engine::Backend registry
/// (engine/backend.hpp); the `EngineKind` enum survives only as a thin
/// compatibility shim for the batch runner and the bench harnesses, mapping
/// 1:1 onto registry names via to_string().
///
/// The six configurations evaluated in the paper map onto EngineKind as
/// follows (DESIGN.md §2):
///   RIC3         → kIc3Down       RIC3-pl      → kIc3DownPl
///   IC3ref       → kIc3Ctg        IC3ref-pl    → kIc3CtgPl
///   IC3ref-CAV23 → kIc3Cav23      ABC-PDR      → kPdr
/// plus the kBmc / kKinduction baselines for cross-checking and kPortfolio,
/// which races several backends and takes the first verdict.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "engine/portfolio.hpp"
#include "ic3/engine.hpp"
#include "ts/transition_system.hpp"
#include "util/timer.hpp"

namespace pilot::check {

enum class EngineKind {
  kIc3Down,
  kIc3DownPl,
  kIc3Ctg,
  kIc3CtgPl,
  kIc3Cav23,
  kPdr,
  kBmc,
  kKinduction,
  kPortfolio,
};

[[nodiscard]] const char* to_string(EngineKind kind);
[[nodiscard]] EngineKind engine_kind_from_string(const std::string& name);

/// All paper configurations, in Table 1 order.
[[nodiscard]] const std::vector<EngineKind>& paper_configurations();

struct CheckOptions {
  EngineKind engine = EngineKind::kIc3Ctg;
  /// Engine selector by registry name; overrides `engine` when non-empty.
  /// Accepts any registered backend name plus "portfolio" or
  /// "portfolio:a+b+c" (a "+"-separated backend list).
  std::string engine_spec;
  std::int64_t budget_ms = 0;  // 0 = unlimited
  std::uint64_t seed = 0;
  std::size_t property_index = 0;
  /// Certify witnesses (trace replay / invariant re-check) after solving.
  bool verify_witness = true;
  /// Extra IC3 knobs forwarded verbatim (ablations).  Single-engine specs
  /// only: portfolio races keep each backend's own configuration (use
  /// engine::PortfolioOptions directly to override a whole race).
  std::optional<ic3::Config> ic3_overrides;
};

struct CheckResult {
  ic3::Verdict verdict = ic3::Verdict::kUnknown;
  double seconds = 0.0;
  ic3::Ic3Stats stats;           // meaningful for IC3 engines
  std::size_t frames = 0;
  bool witness_checked = false;  // a certificate was produced and verified
  std::string witness_error;     // non-empty if certification failed
  std::optional<ic3::Trace> trace;                  // UNSAFE certificate
  std::optional<ic3::InductiveInvariant> invariant; // SAFE certificate
  /// Portfolio runs only: the winning backend and one timing row per raced
  /// backend (spec order).
  std::string winner;
  std::vector<engine::BackendTiming> backend_timings;
};

/// Builds the ic3::Config corresponding to an IC3-family EngineKind.
/// (Compatibility shim over engine::ic3_config_for.)
[[nodiscard]] ic3::Config config_for(EngineKind kind, std::uint64_t seed);

/// Checks property `property_index` of `aig` with the chosen engine.
CheckResult check_aig(const aig::Aig& aig, const CheckOptions& options);

/// Same, over an already-built transition system.
CheckResult check_ts(const ts::TransitionSystem& ts,
                     const CheckOptions& options);

}  // namespace pilot::check
