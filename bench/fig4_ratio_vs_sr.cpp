/// \file fig4_ratio_vs_sr.cpp
/// Reproduces **Figure 4**: correlation between the success rate of
/// avoiding dropped variables (SR_adv, x-axis) and the runtime ratio
/// base/pl (left y-axis), plus the cumulative number of improved cases as
/// SR_adv increases (right y-axis).
///
/// Paper filtering: cases where both runs time out, or both finish under
/// 1 s at a 1000 s budget, are ignored.  The 1 s floor is scaled to the
/// budget (floor = budget / 1000).
#include <algorithm>

#include "bench/bench_common.hpp"

using namespace pilot;
using namespace pilot::bench;

namespace {

struct Point {
  std::string name;
  double sr_adv = 0.0;
  double ratio = 1.0;  // base / pl (ratio > 1: prediction faster)
};

void figure_block(const char* title,
                  const std::vector<check::RunRecord>& base,
                  const std::vector<check::RunRecord>& pl,
                  double budget_seconds) {
  const double floor_seconds = budget_seconds / 1000.0;
  std::vector<Point> points;
  for (std::size_t i = 0; i < base.size(); ++i) {
    const bool both_timeout = !base[i].solved && !pl[i].solved;
    const bool both_trivial = base[i].solved && pl[i].solved &&
                              base[i].seconds < floor_seconds &&
                              pl[i].seconds < floor_seconds;
    if (both_timeout || both_trivial) continue;  // paper's filtering
    const double bs = base[i].solved ? base[i].seconds : budget_seconds;
    const double ps = pl[i].solved ? pl[i].seconds : budget_seconds;
    Point p;
    p.name = base[i].case_name;
    p.sr_adv = pl[i].stats.sr_adv();
    p.ratio = ps > 0.0 ? bs / ps : 1.0;
    points.push_back(std::move(p));
  }
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a.sr_adv < b.sr_adv; });

  std::printf("--- %s (%zu cases after filtering) ---\n", title,
              points.size());
  std::printf("%-28s %10s %14s %12s\n", "case", "SR_adv%", "ratio(base/pl)",
              "cum-improved");
  int improved = 0;
  for (const Point& p : points) {
    if (p.ratio > 1.0) ++improved;
    std::printf("%-28s %10.2f %14.3f %12d\n", p.name.c_str(),
                100.0 * p.sr_adv, p.ratio, improved);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args;
  if (!parse_bench_args(argc, argv,
                        "fig4_ratio_vs_sr — Figure 4: runtime ratio vs "
                        "SR_adv",
                        &args)) {
    return 1;
  }
  const std::vector<std::string> engines{"ic3-down", "ic3-down-pl",
                                         "ic3-ctg", "ic3-ctg-pl"};
  const auto records = run_suite(args, engines);
  const auto groups = by_engine(records);
  const double budget_seconds =
      static_cast<double>(args.budget_ms) / 1000.0;

  std::printf("Figure 4: runtime ratio vs SR_adv (budget %.1fs)\n\n",
              budget_seconds);
  figure_block("RIC3 / RIC3-pl", groups.at("ic3-down"),
               groups.at("ic3-down-pl"), budget_seconds);
  figure_block("IC3ref / IC3ref-pl", groups.at("ic3-ctg"),
               groups.at("ic3-ctg-pl"), budget_seconds);
  std::printf(
      "Shape check vs paper: the cumulative-improved series climbs with\n"
      "SR_adv — higher prediction accuracy correlates with speedup.\n");
  return 0;
}
