/// \file heap.hpp
/// Indexed binary max-heap keyed by variable activity.
///
/// Supports decrease/increase-key by tracking each element's position, which
/// the VSIDS decision heuristic needs when it rescales or bumps activities.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sat/types.hpp"

namespace pilot::sat {

/// Max-heap over variables ordered by an external activity array.
class ActivityHeap {
 public:
  explicit ActivityHeap(const std::vector<double>& activity)
      : activity_(activity) {}

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Element at heap slot `i` (for randomized peeking; no order guarantee).
  [[nodiscard]] Var at(std::size_t i) const { return heap_[i]; }

  [[nodiscard]] bool contains(Var v) const {
    return v < static_cast<Var>(position_.size()) && position_[v] >= 0;
  }

  /// Ensures the position index covers variables up to `v`.
  void reserve_var(Var v) {
    if (v >= static_cast<Var>(position_.size())) {
      position_.resize(v + 1, -1);
    }
  }

  void insert(Var v) {
    reserve_var(v);
    if (contains(v)) return;
    position_[v] = static_cast<std::int32_t>(heap_.size());
    heap_.push_back(v);
    sift_up(position_[v]);
  }

  /// Re-establishes heap order after activity_[v] increased.
  void increased(Var v) {
    if (contains(v)) sift_up(position_[v]);
  }

  /// Re-establishes heap order after activity_[v] changed arbitrarily
  /// (e.g. bulk activity import when a solver is rebuilt).
  void update(Var v) {
    if (!contains(v)) return;
    sift_up(position_[v]);
    sift_down(position_[v]);
  }

  /// Removes and returns the variable of maximal activity.
  Var pop_max() {
    assert(!heap_.empty());
    const Var top = heap_[0];
    heap_[0] = heap_.back();
    position_[heap_[0]] = 0;
    heap_.pop_back();
    position_[top] = -1;
    if (!heap_.empty()) sift_down(0);
    return top;
  }

  void clear() {
    for (Var v : heap_) position_[v] = -1;
    heap_.clear();
  }

  /// Rebuilds the heap from an explicit variable list.
  void rebuild(const std::vector<Var>& vars) {
    clear();
    for (Var v : vars) insert(v);
  }

 private:
  [[nodiscard]] bool before(Var a, Var b) const {
    return activity_[a] > activity_[b];
  }

  void sift_up(std::int32_t i) {
    const Var v = heap_[i];
    while (i > 0) {
      const std::int32_t parent = (i - 1) >> 1;
      if (!before(v, heap_[parent])) break;
      heap_[i] = heap_[parent];
      position_[heap_[i]] = i;
      i = parent;
    }
    heap_[i] = v;
    position_[v] = i;
  }

  void sift_down(std::int32_t i) {
    const Var v = heap_[i];
    const auto n = static_cast<std::int32_t>(heap_.size());
    for (;;) {
      std::int32_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
      if (!before(heap_[child], v)) break;
      heap_[i] = heap_[child];
      position_[heap_[i]] = i;
      i = child;
    }
    heap_[i] = v;
    position_[v] = i;
  }

  const std::vector<double>& activity_;
  std::vector<Var> heap_;
  std::vector<std::int32_t> position_;
};

}  // namespace pilot::sat
