#include "check/checker.hpp"

#include <stdexcept>

#include "bmc/bmc.hpp"
#include "bmc/kinduction.hpp"

namespace pilot::check {

const char* to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kIc3Down: return "ic3-down";
    case EngineKind::kIc3DownPl: return "ic3-down-pl";
    case EngineKind::kIc3Ctg: return "ic3-ctg";
    case EngineKind::kIc3CtgPl: return "ic3-ctg-pl";
    case EngineKind::kIc3Cav23: return "ic3-cav23";
    case EngineKind::kPdr: return "pdr";
    case EngineKind::kBmc: return "bmc";
    case EngineKind::kKinduction: return "kind";
  }
  return "?";
}

EngineKind engine_kind_from_string(const std::string& name) {
  for (const EngineKind k :
       {EngineKind::kIc3Down, EngineKind::kIc3DownPl, EngineKind::kIc3Ctg,
        EngineKind::kIc3CtgPl, EngineKind::kIc3Cav23, EngineKind::kPdr,
        EngineKind::kBmc, EngineKind::kKinduction}) {
    if (name == to_string(k)) return k;
  }
  throw std::invalid_argument("unknown engine '" + name + "'");
}

const std::vector<EngineKind>& paper_configurations() {
  static const std::vector<EngineKind> kConfigs{
      EngineKind::kIc3Down,  EngineKind::kIc3DownPl, EngineKind::kIc3Ctg,
      EngineKind::kIc3CtgPl, EngineKind::kIc3Cav23,  EngineKind::kPdr,
  };
  return kConfigs;
}

ic3::Config config_for(EngineKind kind, std::uint64_t seed) {
  ic3::Config cfg;
  cfg.seed = seed;
  switch (kind) {
    case EngineKind::kIc3Down:
      cfg.gen_mode = ic3::GenMode::kDown;
      break;
    case EngineKind::kIc3DownPl:
      cfg.gen_mode = ic3::GenMode::kDown;
      cfg.predict_lemmas = true;
      break;
    case EngineKind::kIc3Ctg:
      cfg.gen_mode = ic3::GenMode::kCtg;
      break;
    case EngineKind::kIc3CtgPl:
      cfg.gen_mode = ic3::GenMode::kCtg;
      cfg.predict_lemmas = true;
      break;
    case EngineKind::kIc3Cav23:
      cfg.gen_mode = ic3::GenMode::kCav23;
      break;
    case EngineKind::kPdr:
      cfg.apply_profile(ic3::Profile::kPdr);
      break;
    default:
      throw std::invalid_argument("config_for: not an IC3-family engine");
  }
  return cfg;
}

namespace {

CheckResult run_ic3(const ts::TransitionSystem& ts,
                    const CheckOptions& options) {
  ic3::Config cfg = options.ic3_overrides.has_value()
                        ? *options.ic3_overrides
                        : config_for(options.engine, options.seed);
  ic3::Engine engine(ts, cfg);
  const Deadline deadline = options.budget_ms > 0
                                ? Deadline::in_milliseconds(options.budget_ms)
                                : Deadline{};
  ic3::Result r = engine.check(deadline);

  CheckResult out;
  out.verdict = r.verdict;
  out.seconds = r.seconds;
  out.stats = r.stats;
  out.frames = r.frames;
  if (options.verify_witness) {
    if (r.verdict == ic3::Verdict::kUnsafe && r.trace.has_value()) {
      const ic3::CheckOutcome c = ic3::check_trace(ts, *r.trace);
      out.witness_checked = c.ok;
      out.witness_error = c.reason;
    } else if (r.verdict == ic3::Verdict::kSafe && r.invariant.has_value()) {
      const ic3::CheckOutcome c = ic3::check_invariant(ts, *r.invariant);
      out.witness_checked = c.ok;
      out.witness_error = c.reason;
    }
  }
  out.trace = std::move(r.trace);
  out.invariant = std::move(r.invariant);
  return out;
}

CheckResult run_bmc_engine(const ts::TransitionSystem& ts,
                           const CheckOptions& options) {
  bmc::BmcOptions bo;
  bo.seed = options.seed;
  const Deadline deadline = options.budget_ms > 0
                                ? Deadline::in_milliseconds(options.budget_ms)
                                : Deadline{};
  bmc::BmcResult r = bmc::run_bmc(ts, bo, deadline);
  CheckResult out;
  out.seconds = r.seconds;
  if (r.verdict == bmc::BmcVerdict::kUnsafe) {
    out.verdict = ic3::Verdict::kUnsafe;
    if (options.verify_witness && r.trace.has_value()) {
      const ic3::CheckOutcome c = ic3::check_trace(ts, *r.trace);
      out.witness_checked = c.ok;
      out.witness_error = c.reason;
    }
    out.trace = std::move(r.trace);
  }
  return out;  // bound reached / unknown → kUnknown (BMC cannot prove)
}

CheckResult run_kind_engine(const ts::TransitionSystem& ts,
                            const CheckOptions& options) {
  bmc::KindOptions ko;
  ko.seed = options.seed;
  const Deadline deadline = options.budget_ms > 0
                                ? Deadline::in_milliseconds(options.budget_ms)
                                : Deadline{};
  const bmc::KindResult r = bmc::run_kinduction(ts, ko, deadline);
  CheckResult out;
  out.seconds = r.seconds;
  if (r.verdict == bmc::KindVerdict::kSafe) out.verdict = ic3::Verdict::kSafe;
  if (r.verdict == bmc::KindVerdict::kUnsafe) {
    out.verdict = ic3::Verdict::kUnsafe;
  }
  return out;
}

}  // namespace

CheckResult check_ts(const ts::TransitionSystem& ts,
                     const CheckOptions& options) {
  switch (options.engine) {
    case EngineKind::kBmc:
      return run_bmc_engine(ts, options);
    case EngineKind::kKinduction:
      return run_kind_engine(ts, options);
    default:
      return run_ic3(ts, options);
  }
}

CheckResult check_aig(const aig::Aig& aig, const CheckOptions& options) {
  const ts::TransitionSystem ts =
      ts::TransitionSystem::from_aig(aig, options.property_index);
  return check_ts(ts, options);
}

}  // namespace pilot::check
