#include "serve/advisor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "corpus/results_db.hpp"

namespace pilot::serve {

namespace {

void fill_features(double out[3], std::size_t inputs, std::size_t latches,
                   std::size_t ands) {
  // log1p compresses the heavy-tailed size distribution of HWMCC-style
  // corpora: a 10k-gate and an 11k-gate circuit are neighbours, a 10-gate
  // and a 1k-gate circuit are not — which raw L2 would invert.
  out[0] = std::log1p(static_cast<double>(inputs));
  out[1] = std::log1p(static_cast<double>(latches));
  out[2] = std::log1p(static_cast<double>(ands));
}

double distance(const double a[3], const double b[3]) {
  double d = 0.0;
  for (int i = 0; i < 3; ++i) d += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(d);
}

}  // namespace

std::int64_t Advisor::scaled_budget_ms(double neighbour_seconds) {
  const double scaled = neighbour_seconds * 1.5 * 1000.0;
  return std::max<std::int64_t>(100, static_cast<std::int64_t>(scaled) + 1);
}

Advisor Advisor::from_db(const corpus::ResultsDb& db) {
  Advisor a;
  for (const corpus::RunRow& row : db.rows()) {
    const check::RunRecord& r = row.record;
    if (!r.solved) continue;
    if (r.num_inputs == 0 && r.num_latches == 0 && r.num_ands == 0 &&
        r.content_hash.empty()) {
      continue;  // pre-feature row: nothing to match on
    }
    HistoryRow h;
    h.hash = r.content_hash;
    h.case_name = r.case_name;
    h.engine = r.engine;
    h.seconds = r.seconds;
    fill_features(h.features, r.num_inputs, r.num_latches, r.num_ands);
    const std::size_t index = a.rows_.size();
    a.rows_.push_back(std::move(h));
    if (!a.rows_.back().hash.empty()) {
      const auto it = a.by_hash_.find(a.rows_.back().hash);
      if (it == a.by_hash_.end() ||
          a.rows_[it->second].seconds > a.rows_.back().seconds) {
        a.by_hash_[a.rows_.back().hash] = index;
      }
    }
  }
  return a;
}

Advisor Advisor::from_file(const std::string& path) {
  return from_db(corpus::ResultsDb::load(path));
}

std::optional<Advice> Advisor::advise(const std::string& hash,
                                      std::size_t num_inputs,
                                      std::size_t num_latches,
                                      std::size_t num_ands) const {
  if (rows_.empty()) return std::nullopt;

  if (!hash.empty()) {
    const auto it = by_hash_.find(hash);
    if (it != by_hash_.end()) {
      const HistoryRow& h = rows_[it->second];
      Advice adv;
      adv.engine_spec = h.engine;
      adv.budget_ms = scaled_budget_ms(h.seconds);
      adv.exact = true;
      adv.source_case = h.case_name;
      adv.distance = 0.0;
      return adv;
    }
  }

  double query[3];
  fill_features(query, num_inputs, num_latches, num_ands);
  const HistoryRow* best = nullptr;
  double best_d = std::numeric_limits<double>::infinity();
  for (const HistoryRow& h : rows_) {
    const double d = distance(query, h.features);
    // Ties broken toward the faster prior solve: same shape, prefer the
    // engine that finished first.
    if (d < best_d || (d == best_d && best != nullptr &&
                       h.seconds < best->seconds)) {
      best = &h;
      best_d = d;
    }
  }
  if (best == nullptr) return std::nullopt;
  Advice adv;
  adv.engine_spec = best->engine;
  adv.budget_ms = scaled_budget_ms(best->seconds);
  adv.exact = false;
  adv.source_case = best->case_name;
  adv.distance = best_d;
  return adv;
}

}  // namespace pilot::serve
