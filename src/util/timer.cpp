// Intentionally thin: Timer and Deadline are header-only; this translation
// unit exists so the util library has a stable archive member even when a
// toolchain rejects header-only static libraries.
#include "util/timer.hpp"

namespace pilot {
namespace {
// Anchor symbol keeping the TU non-empty under all toolchains.
[[maybe_unused]] const Timer g_process_timer{};
}  // namespace
}  // namespace pilot
