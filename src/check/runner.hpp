/// \file runner.hpp
/// Batch experiment runner: (benchmark case × engine spec) matrix with
/// per-case wall-clock budgets, thread-level parallelism, cooperative
/// cancellation, and a hard soundness gate (a solved verdict that
/// contradicts the case's expected status aborts the run).
///
/// Cases come from the corpus layer (corpus/corpus.hpp), which unifies the
/// synthetic `circuits::` families and on-disk AIGER corpora; engines are
/// registry `engine_spec` strings (any backend name, or
/// "portfolio[:a+b+c]").  The scheduler orders jobs largest-case-first so
/// heterogeneous corpora keep every worker busy, but records are returned
/// in deterministic case-major order regardless.
///
/// The bench harness binaries (Table 1/2, Figures 2/3/4) and the
/// `pilot-bench` campaign runner are thin aggregations over the RunRecord
/// rows this produces; corpus::ResultsDb persists them as JSONL.
#pragma once

#include <string>
#include <vector>

#include "check/checker.hpp"
#include "circuits/suite.hpp"
#include "corpus/corpus.hpp"
#include "util/cancel.hpp"

namespace pilot::serve {
class VerdictCache;
class Advisor;
}  // namespace pilot::serve

namespace pilot::check {

struct RunRecord {
  std::string case_name;
  std::string family;
  std::vector<std::string> tags;
  /// Registry engine spec that produced this record ("ic3-ctg-pl",
  /// "portfolio:bmc+kind", ...).
  std::string engine;
  corpus::Expected expected = corpus::Expected::kUnknown;
  ic3::Verdict verdict = ic3::Verdict::kUnknown;
  bool solved = false;
  double seconds = 0.0;
  std::size_t frames = 0;
  /// Non-empty when the case failed to load (missing/malformed AIGER) —
  /// the verdict stays kUnknown and no engine ran.
  std::string error;
  /// Certification outcome when RunMatrixOptions::certify was on and the
  /// verdict was definitive: "ok", or "failed: <reason>".  Empty when
  /// certification did not run (off, or no verdict).
  std::string cert_status;
  /// Path of the saved certificate file (only with certify + cert_dir).
  std::string cert_path;
  /// Canonical AIG structure hash (aig::canonical_hash_hex) — the verdict
  /// cache / advisor key.  Empty when the case failed to load.
  std::string content_hash;
  /// Circuit shape (advisor nearest-neighbour features), recorded for
  /// every loaded case.
  std::size_t num_inputs = 0;
  std::size_t num_latches = 0;
  std::size_t num_ands = 0;
  /// Verdict-cache outcome for this record: "hit" (served from cache after
  /// revalidation), "miss" (solved fresh, stored), or "" (no cache).
  std::string cache_status;
  /// Advisor decision applied on a miss, e.g.
  /// "exact:ring4@150ms" / "near:shift8@300ms" / "fallback" (advised run
  /// returned UNKNOWN, full-budget rerun followed); "" = no advisor.
  std::string advice;
  ic3::Ic3Stats stats;
};

struct RunMatrixOptions {
  std::int64_t budget_ms = 2000;
  std::uint64_t seed = 0;
  /// Generalization-strategy spec applied to every IC3-family engine of
  /// the matrix (CheckOptions::gen_spec); empty = each engine's own.
  std::string gen_spec;
  /// Lifter ternary-simulation backend / MIC drop-filter overrides applied
  /// to every IC3-family engine (CheckOptions::lift_sim /
  /// CheckOptions::gen_ternary_filter); unset = config defaults.
  std::optional<ic3::Config::LiftSim> lift_sim;
  std::optional<bool> gen_ternary_filter;
  /// SAT inprocessing / batched-probe overrides applied to every engine of
  /// the matrix (CheckOptions::sat_inprocess / CheckOptions::gen_batch);
  /// unset = config defaults.
  std::optional<bool> sat_inprocess;
  std::optional<int> gen_batch;
  std::optional<bool> gen_batch_adaptive;
  /// Enable lemma exchange inside portfolio engine specs
  /// (CheckOptions::share_lemmas); "portfolio-x" specs enable it per-spec.
  bool share_lemmas = false;
  /// Worker threads; 0 = hardware concurrency.
  std::size_t jobs = 0;
  bool verify_witness = true;
  /// Emit + independently re-check a certificate for every definitive
  /// verdict (cert/certificate.hpp); outcomes land in
  /// RunRecord::cert_status and the cert_* stats counters.
  bool certify = false;
  /// When non-empty (and certify is on), certificates are saved as
  /// "<cert_dir>/<case>__<engine>.cert" and the path recorded in
  /// RunRecord::cert_path.  The directory must already exist.
  std::string cert_dir;
  /// Verdict cache (nullable, shared across jobs): each job looks its
  /// canonical hash up first — a revalidated hit skips the engine entirely
  /// — and stores its certified verdict back on a miss.  Implies building
  /// a certificate per solved miss even when `certify` is off.
  serve::VerdictCache* cache = nullptr;
  /// Budget advisor (nullable): on a cache miss, the advised engine runs
  /// first under the advised (~1.5× neighbour) budget; UNKNOWN falls back
  /// to the job's own engine spec and full budget.
  const serve::Advisor* advisor = nullptr;
  /// Abort on verdict/expectation mismatch (soundness gate).  Cases with
  /// expected == kUnknown are exempt.
  bool strict = true;
  /// External abort (nullable): remaining jobs return immediately with
  /// kUnknown records once the token stops; the running engines observe it
  /// at their next deadline poll.
  const CancelToken* cancel = nullptr;
};

/// Runs every (case, engine) pair and returns one record per pair, in
/// deterministic case-major order.  Engine specs are validated against the
/// backend registry up front; an unknown spec throws std::invalid_argument
/// before any work starts.
std::vector<RunRecord> run_matrix(const std::vector<corpus::Case>& cases,
                                  const std::vector<std::string>& engines,
                                  const RunMatrixOptions& options);

/// Convenience overload for the synthetic families.
std::vector<RunRecord> run_matrix(const std::vector<circuits::CircuitCase>& cases,
                                  const std::vector<std::string>& engines,
                                  const RunMatrixOptions& options);

}  // namespace pilot::check
