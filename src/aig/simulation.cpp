#include "aig/simulation.hpp"

#include <cassert>

namespace pilot::aig {

BitSimulator::BitSimulator(const Aig& aig)
    : aig_(aig), values_(aig.num_nodes(), 0), state_(aig.num_nodes(), 0) {
  reset();
}

void BitSimulator::reset(std::uint64_t undef_fill) {
  for (const std::uint32_t n : aig_.latches()) {
    const LBool init = aig_.init(n);
    if (init == l_True) {
      state_[n] = ~0ULL;
    } else if (init == l_False) {
      state_[n] = 0;
    } else {
      state_[n] = undef_fill;
    }
  }
}

void BitSimulator::set_latch(std::uint32_t latch_node, std::uint64_t value) {
  assert(aig_.is_latch(latch_node));
  state_[latch_node] = value;
}

void BitSimulator::compute(std::span<const std::uint64_t> inputs) {
  assert(inputs.size() == aig_.num_inputs());
  values_[0] = 0;  // constant false
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    values_[aig_.inputs()[i]] = inputs[i];
  }
  for (const std::uint32_t n : aig_.latches()) values_[n] = state_[n];
  for (const std::uint32_t n : aig_.ands()) {
    values_[n] = value(aig_.fanin0(n)) & value(aig_.fanin1(n));
  }
}

void BitSimulator::latch_step() {
  // Two phases so that latch-to-latch feed-through uses pre-step values.
  std::vector<std::uint64_t> next_state;
  next_state.reserve(aig_.latches().size());
  for (const std::uint32_t n : aig_.latches()) {
    next_state.push_back(value(aig_.next(n)));
  }
  for (std::size_t i = 0; i < aig_.latches().size(); ++i) {
    state_[aig_.latches()[i]] = next_state[i];
  }
}

TernarySimulator::TernarySimulator(const Aig& aig)
    : aig_(aig), values_(aig.num_nodes(), TV::kX) {}

void TernarySimulator::compute(std::span<const TV> latch_values,
                               std::span<const TV> input_values) {
  assert(latch_values.size() == aig_.num_latches());
  assert(input_values.size() == aig_.num_inputs());
  values_[0] = TV::kZero;
  for (std::size_t i = 0; i < input_values.size(); ++i) {
    values_[aig_.inputs()[i]] = input_values[i];
  }
  for (std::size_t i = 0; i < latch_values.size(); ++i) {
    values_[aig_.latches()[i]] = latch_values[i];
  }
  for (const std::uint32_t n : aig_.ands()) {
    values_[n] = tv_and(value(aig_.fanin0(n)), value(aig_.fanin1(n)));
  }
}

}  // namespace pilot::aig
