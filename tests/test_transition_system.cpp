/// TransitionSystem tests: the CNF encoding must agree with the AIG
/// simulator on randomized vectors, the priming map must be a bijection
/// between X and X' variables, and the initial-cube predicates must be
/// exact.
#include <gtest/gtest.h>

#include "aig/simulation.hpp"
#include "circuits/builder.hpp"
#include "circuits/families.hpp"
#include "sat/solver.hpp"
#include "ts/transition_system.hpp"
#include "util/rng.hpp"

namespace pilot::ts {
namespace {

/// Checks that fixing (X, Y) in the CNF forces exactly the simulator's
/// next-state values on X' and the simulator's value on bad.
void expect_encoding_matches_simulation(const TransitionSystem& ts,
                                        std::uint64_t seed) {
  const aig::Aig& circuit = ts.aig();
  sat::Solver solver;
  ts.install(solver);
  aig::BitSimulator sim(circuit);
  pilot::Rng rng(seed);

  for (int round = 0; round < 16; ++round) {
    // Random current state and inputs (1-bit lanes).
    std::vector<sat::Lit> assumptions;
    for (std::size_t i = 0; i < ts.num_latches(); ++i) {
      const bool bit = rng.chance(0.5);
      sim.set_latch(circuit.latches()[i], bit ? ~0ULL : 0ULL);
      assumptions.push_back(sat::Lit::make(ts.state_var(i), !bit));
    }
    std::vector<std::uint64_t> input_bits(ts.num_inputs(), 0);
    for (std::size_t i = 0; i < ts.num_inputs(); ++i) {
      const bool bit = rng.chance(0.5);
      input_bits[i] = bit ? ~0ULL : 0ULL;
      assumptions.push_back(sat::Lit::make(ts.input_var(i), !bit));
    }
    sim.compute(input_bits);

    // Skip vectors that violate an invariant constraint (the encoding
    // rightly excludes them).
    bool constraint_ok = true;
    for (const aig::AigLit c : circuit.constraints()) {
      if ((sim.value(c) & 1ULL) == 0) constraint_ok = false;
    }
    const sat::SolveResult res = solver.solve(assumptions);
    if (!constraint_ok) {
      EXPECT_EQ(res, sat::SolveResult::kUnsat);
      continue;
    }
    ASSERT_EQ(res, sat::SolveResult::kSat);
    // Deterministic transition: X' must equal the simulator's next state.
    for (std::size_t i = 0; i < ts.num_latches(); ++i) {
      const bool expected =
          (sim.value(circuit.next(circuit.latches()[i])) & 1ULL) != 0;
      const sat::LBool got =
          solver.model_value(sat::Lit::make(ts.next_state_var(i)));
      EXPECT_EQ(got == sat::l_True, expected) << "latch " << i;
    }
    const bool bad_expected =
        (sim.value(aig::AigLit::make(
             static_cast<std::uint32_t>(ts.bad().var()), ts.bad().sign())) &
         1ULL) != 0;
    EXPECT_EQ(solver.model_value(ts.bad()) == sat::l_True, bad_expected);
  }
}

TEST(TransitionSystem, EncodingMatchesSimulationOnFamilies) {
  expect_encoding_matches_simulation(
      TransitionSystem::from_aig(circuits::gray_counter_safe(4).aig), 1);
  expect_encoding_matches_simulation(
      TransitionSystem::from_aig(circuits::fifo_unsafe(4, 9).aig), 2);
  expect_encoding_matches_simulation(
      TransitionSystem::from_aig(circuits::mutex_safe().aig), 3);
}

TEST(TransitionSystem, PrimeIsABijectionOnStateVars) {
  const TransitionSystem ts =
      TransitionSystem::from_aig(circuits::token_ring_safe(5).aig);
  for (std::size_t i = 0; i < ts.num_latches(); ++i) {
    const sat::Lit cur = sat::Lit::make(ts.state_var(i));
    const sat::Lit primed = ts.prime(cur);
    EXPECT_EQ(primed.var(), ts.next_state_var(i));
    EXPECT_EQ(primed.sign(), cur.sign());
    const sat::Lit neg_primed = ts.prime(~cur);
    EXPECT_EQ(neg_primed, ~primed);
  }
}

TEST(TransitionSystem, StateVarClassification) {
  const TransitionSystem ts =
      TransitionSystem::from_aig(circuits::fifo_safe(4, 9).aig);
  for (std::size_t i = 0; i < ts.num_latches(); ++i) {
    EXPECT_TRUE(ts.is_state_var(ts.state_var(i)));
    EXPECT_EQ(ts.latch_index_of(ts.state_var(i)), static_cast<int>(i));
  }
  for (std::size_t i = 0; i < ts.num_inputs(); ++i) {
    EXPECT_FALSE(ts.is_state_var(ts.input_var(i)));
  }
}

TEST(TransitionSystem, InitCubePredicatesAreExact) {
  // Latches: l0 init 0, l1 init 1, l2 uninitialized.
  aig::Aig a;
  const aig::AigLit l0 = a.add_latch(aig::l_False);
  const aig::AigLit l1 = a.add_latch(aig::l_True);
  const aig::AigLit l2 = a.add_latch(aig::l_Undef);
  a.set_next(l0, l0);
  a.set_next(l1, l1);
  a.set_next(l2, l2);
  a.add_bad(a.make_and(l0, l1));
  // COI disabled: l2 is outside the property cone but the init predicates
  // must still treat it correctly.
  const TransitionSystem ts = TransitionSystem::from_aig(a, 0,
                                                         /*use_coi=*/false);
  ASSERT_EQ(ts.num_latches(), 3u);
  EXPECT_EQ(ts.init_literals().size(), 2u);  // l2 unconstrained

  const sat::Var v0 = ts.state_var(0);
  const sat::Var v1 = ts.state_var(1);
  const sat::Var v2 = ts.state_var(2);
  // Cube {l0=0, l1=1} intersects I.
  EXPECT_TRUE(ts.cube_intersects_init(std::vector<sat::Lit>{
      sat::Lit::make(v0, true), sat::Lit::make(v1)}));
  // Cube {l0=1} does not.
  EXPECT_FALSE(ts.cube_intersects_init(
      std::vector<sat::Lit>{sat::Lit::make(v0)}));
  // Uninitialized latch never blocks intersection.
  EXPECT_TRUE(ts.cube_intersects_init(
      std::vector<sat::Lit>{sat::Lit::make(v2, true)}));
  EXPECT_TRUE(ts.cube_intersects_init(
      std::vector<sat::Lit>{sat::Lit::make(v2, false)}));
}

TEST(TransitionSystem, BadPrefersBadArrayOverOutputs) {
  aig::Aig a;
  const aig::AigLit x = a.add_latch(aig::l_False);
  a.set_next(x, !x);
  a.add_output(x);   // output says one thing
  a.add_bad(!x);     // bad array says another
  const TransitionSystem ts = TransitionSystem::from_aig(a, 0);
  sat::Solver solver;
  ts.install(solver);
  // In the initial state x=0, bad (= ¬x) holds.
  std::vector<sat::Lit> assumptions = ts.init_literals();
  assumptions.push_back(ts.bad());
  EXPECT_EQ(solver.solve(assumptions), sat::SolveResult::kSat);
}

TEST(TransitionSystem, OutputFallbackWhenNoBadArray) {
  const circuits::CircuitCase cc = circuits::counter_unsafe(4, 5);
  aig::Aig with_output = cc.aig;
  // Rebuild: move bad to outputs.
  aig::Aig a;
  aig::LitMap map;
  a = aig::extract_coi(with_output,
                       std::vector<aig::AigLit>{with_output.bads()[0]}, &map);
  a.add_output(aig::map_lit(with_output.bads()[0], map));
  EXPECT_NO_THROW(TransitionSystem::from_aig(a, 0));
}

TEST(TransitionSystem, ThrowsOnMissingProperty) {
  aig::Aig a;
  const aig::AigLit l = a.add_latch();
  a.set_next(l, l);
  EXPECT_THROW(TransitionSystem::from_aig(a, 0), std::out_of_range);
}

TEST(TransitionSystem, ConstraintsBecomeUnitsInTheEncoding) {
  const circuits::CircuitCase cc = circuits::shift_register(5, true);
  const TransitionSystem ts = TransitionSystem::from_aig(cc.aig);
  sat::Solver solver;
  ts.install(solver);
  // The constrained input (forced 0) cannot be assumed 1.
  ASSERT_EQ(ts.num_inputs(), 1u);
  const std::vector<sat::Lit> assumptions{
      sat::Lit::make(ts.input_var(0))};
  EXPECT_EQ(solver.solve(assumptions), sat::SolveResult::kUnsat);
}

}  // namespace
}  // namespace pilot::ts
