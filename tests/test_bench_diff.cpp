/// Unit tests for the google-benchmark JSON comparator behind
/// `pilot-bench bench-diff`.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "corpus/bench_diff.hpp"

namespace pilot::corpus {
namespace {

json::Value bench_doc(const std::string& rows) {
  return json::parse("{\"context\":{\"date\":\"2026-07-28\"},"
                     "\"benchmarks\":[" + rows + "]}");
}

std::string plain_row(const std::string& name, double cpu_ns) {
  return "{\"name\":\"" + name + "\",\"run_name\":\"" + name +
         "\",\"run_type\":\"iteration\",\"iterations\":100,"
         "\"real_time\":" + std::to_string(cpu_ns) +
         ",\"cpu_time\":" + std::to_string(cpu_ns) +
         ",\"time_unit\":\"ns\"}";
}

std::string aggregate_row(const std::string& name,
                          const std::string& aggregate, double cpu_ns) {
  return "{\"name\":\"" + name + "_" + aggregate + "\",\"run_name\":\"" +
         name + "\",\"run_type\":\"aggregate\",\"aggregate_name\":\"" +
         aggregate + "\",\"iterations\":3,"
         "\"real_time\":" + std::to_string(cpu_ns) +
         ",\"cpu_time\":" + std::to_string(cpu_ns) +
         ",\"time_unit\":\"ns\"}";
}

TEST(BenchDiff, ParsesPlainRows) {
  const auto entries = parse_benchmark_json(
      bench_doc(plain_row("BM_A/8", 120.0) + "," + plain_row("BM_B", 45.5)));
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "BM_A/8");
  EXPECT_DOUBLE_EQ(entries[0].cpu_time_ns, 120.0);
  EXPECT_EQ(entries[1].name, "BM_B");
}

TEST(BenchDiff, PrefersMedianAggregates) {
  // Repetition artifacts carry mean/median/stddev rows; only the median
  // must survive, keyed by the underlying run name.
  const auto entries = parse_benchmark_json(bench_doc(
      aggregate_row("BM_A/8", "mean", 130.0) + "," +
      aggregate_row("BM_A/8", "median", 100.0) + "," +
      aggregate_row("BM_A/8", "stddev", 5.0)));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "BM_A/8");
  EXPECT_DOUBLE_EQ(entries[0].cpu_time_ns, 100.0);
}

TEST(BenchDiff, NormalizesTimeUnits) {
  const std::string row =
      "{\"name\":\"BM_Ms\",\"run_name\":\"BM_Ms\",\"run_type\":"
      "\"iteration\",\"real_time\":2.5,\"cpu_time\":2.5,"
      "\"time_unit\":\"ms\"}";
  const auto entries = parse_benchmark_json(bench_doc(row));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_DOUBLE_EQ(entries[0].cpu_time_ns, 2.5e6);
}

TEST(BenchDiff, RejectsDocumentsWithoutBenchmarks) {
  EXPECT_THROW((void)parse_benchmark_json(json::parse("{\"context\":{}}")),
               std::runtime_error);
}

TEST(BenchDiff, ClassifiesSlowdownsImprovementsAndUnchanged) {
  const auto base = parse_benchmark_json(
      bench_doc(plain_row("BM_Slow", 1000.0) + "," +
                plain_row("BM_Fast", 1000.0) + "," +
                plain_row("BM_Same", 1000.0) + "," +
                plain_row("BM_Gone", 500.0)));
  const auto cur = parse_benchmark_json(
      bench_doc(plain_row("BM_Slow", 1400.0) + "," +
                plain_row("BM_Fast", 600.0) + "," +
                plain_row("BM_Same", 1050.0) + "," +
                plain_row("BM_New", 500.0)));
  BenchDiffOptions options;  // 1.25 both ways
  const BenchDiffReport report = diff_benchmarks(base, cur, options);
  ASSERT_EQ(report.slowdowns.size(), 1u);
  EXPECT_EQ(report.slowdowns[0].name, "BM_Slow");
  EXPECT_NEAR(report.slowdowns[0].ratio(), 1.4, 1e-9);
  ASSERT_EQ(report.improvements.size(), 1u);
  EXPECT_EQ(report.improvements[0].name, "BM_Fast");
  EXPECT_EQ(report.unchanged.size(), 1u);
  ASSERT_EQ(report.only_in_baseline.size(), 1u);
  EXPECT_EQ(report.only_in_baseline[0], "BM_Gone");
  ASSERT_EQ(report.only_in_current.size(), 1u);
  EXPECT_EQ(report.only_in_current[0], "BM_New");

  // Advisory by default; gating only with fail_on_regress.
  EXPECT_FALSE(report.failed(options));
  options.fail_on_regress = true;
  EXPECT_TRUE(report.failed(options));
}

TEST(BenchDiff, NoiseFloorFiltersFastBenchmarks) {
  const auto base =
      parse_benchmark_json(bench_doc(plain_row("BM_Tiny", 10.0)));
  const auto cur =
      parse_benchmark_json(bench_doc(plain_row("BM_Tiny", 50.0)));
  BenchDiffOptions options;
  options.min_time_ns = 100.0;  // both sides below the floor
  const BenchDiffReport report = diff_benchmarks(base, cur, options);
  EXPECT_TRUE(report.slowdowns.empty());
  EXPECT_EQ(report.unchanged.size(), 1u);
}

TEST(BenchDiff, SummaryAndMarkdownRender) {
  const auto base =
      parse_benchmark_json(bench_doc(plain_row("BM_Slow", 1000.0)));
  const auto cur =
      parse_benchmark_json(bench_doc(plain_row("BM_Slow", 2000.0)));
  const BenchDiffOptions options;
  const BenchDiffReport report = diff_benchmarks(base, cur, options);
  const std::string text = report.summary(options);
  EXPECT_NE(text.find("BM_Slow"), std::string::npos);
  EXPECT_NE(text.find("+100.0%"), std::string::npos);
  EXPECT_NE(text.find("SLOWDOWNS"), std::string::npos);
  const std::string md = report.markdown(options);
  EXPECT_NE(md.find("| benchmark |"), std::string::npos);
  EXPECT_NE(md.find(":red_circle: BM_Slow"), std::string::npos);
}

TEST(BenchDiff, LoadsFromFile) {
  const std::string path = ::testing::TempDir() + "bench_diff_test.json";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bench_doc(plain_row("BM_File", 321.0)).dump();
  }
  const auto entries = load_benchmark_json(path);
  std::remove(path.c_str());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "BM_File");
  EXPECT_DOUBLE_EQ(entries[0].cpu_time_ns, 321.0);
  EXPECT_THROW((void)load_benchmark_json("/no/such/bench.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace pilot::corpus
