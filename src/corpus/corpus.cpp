#include "corpus/corpus.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "corpus/manifest.hpp"

namespace pilot::corpus {

const char* to_string(Expected e) {
  switch (e) {
    case Expected::kSafe: return "safe";
    case Expected::kUnsafe: return "unsafe";
    case Expected::kUnknown: return "unknown";
  }
  return "unknown";
}

Expected expected_from_string(const std::string& text) {
  if (text == "safe" || text == "unsat") return Expected::kSafe;
  if (text == "unsafe" || text == "sat") return Expected::kUnsafe;
  if (text == "unknown" || text.empty()) return Expected::kUnknown;
  throw std::invalid_argument("corpus: unknown expected status '" + text +
                              "'");
}

Case from_circuit(circuits::CircuitCase cc) {
  Case out;
  out.name = std::move(cc.name);
  out.family = std::move(cc.family);
  out.expected = expected_from_safe(cc.expected_safe);
  out.expected_cex_length = cc.expected_cex_length;
  out.num_inputs = cc.aig.num_inputs();
  out.num_latches = cc.aig.num_latches();
  out.num_ands = cc.aig.num_ands();
  out.size_estimate = out.num_ands + out.num_latches;
  auto shared = std::make_shared<aig::Aig>(std::move(cc.aig));
  out.load = [shared]() { return *shared; };
  return out;
}

std::vector<Case> suite_cases(circuits::SuiteSize size) {
  std::vector<circuits::CircuitCase> circuits = circuits::make_suite(size);
  std::vector<Case> out;
  out.reserve(circuits.size());
  for (auto& cc : circuits) out.push_back(from_circuit(std::move(cc)));
  return out;
}

std::vector<Case> resolve_corpus(const std::string& spec) {
  constexpr const char* kSuitePrefix = "suite:";
  if (spec.rfind(kSuitePrefix, 0) == 0) {
    return suite_cases(
        circuits::suite_size_from_string(spec.substr(6)));
  }
  ScanReport report = load_corpus(spec);
  if (!report.errors.empty() && report.cases.empty()) {
    throw std::runtime_error("corpus '" + spec + "': " + report.errors[0]);
  }
  return std::move(report.cases);
}

}  // namespace pilot::corpus
