#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace pilot {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    default: return "?";
  }
}

}  // namespace

namespace logcfg {
LogLevel level() { return g_level.load(std::memory_order_relaxed); }
void set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
}  // namespace logcfg

namespace detail {
void emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[pilot:%s] %s\n", level_tag(level), message.c_str());
}
}  // namespace detail

}  // namespace pilot
