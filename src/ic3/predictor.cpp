#include "ic3/predictor.hpp"

#include <algorithm>

namespace pilot::ic3 {

Predictor::Predictor(SolverManager& solvers, Frames& frames,
                     const Config& cfg, Ic3Stats& stats)
    : solvers_(solvers), frames_(frames), cfg_(cfg), stats_(stats) {}

void Predictor::record_push_failure(const Cube& lemma, std::size_t level,
                                    Cube t) {
  failure_push_[CubeLevelKey{lemma, level}] = std::move(t);
}

void Predictor::clear() { failure_push_.clear(); }

std::optional<Cube> Predictor::predict(const Cube& b, std::size_t level,
                                       const Deadline& deadline) {
  if (level < 1) return std::nullopt;
  // Algorithm 2 line 10: parents of clause ¬b live in F_{level-1}\F_level.
  const std::vector<Cube> parents = frames_.parents_of(b, level - 1);
  bool found_failed_parent = false;
  std::optional<Cube> predicted;
  for (const Cube& p : parents) {
    if (failure_push_.find(CubeLevelKey{p, level - 1}) ==
        failure_push_.end()) {
      continue;  // lines 12-13: no recorded CTP for this parent
    }
    found_failed_parent = true;
    predicted = try_parent(b, p, level, deadline);
    if (predicted.has_value()) break;
  }
  if (found_failed_parent) ++stats_.num_found_failed_parents;  // N_fp
  return predicted;
}

std::optional<Cube> Predictor::try_parent(const Cube& b, const Cube& p,
                                          std::size_t level,
                                          const Deadline& deadline) {
  const CubeLevelKey key{p, level - 1};
  const Cube& t = failure_push_.at(key);
  Cube ds = b.diff(t);  // line 15: diff set of Definition 3.1

  if (ds.empty()) {
    // Lines 16-20: b and t intersect (Theorem 3.2) — blocking b may have
    // already blocked the CTP; retry pushing the parent lemma itself.
    ++stats_.num_prediction_queries;  // N_p
    Cube core;
    if (solvers_.relative_inductive(p, level - 1,
                                    /*cube_clause_in_frame=*/true, &core,
                                    deadline)) {
      ++stats_.num_successful_predictions;  // N_sp
      return cfg_.predict_core_shrink ? core : p;
    }
    failure_push_[key] = solvers_.model_state(/*primed=*/true);  // line 20
    return std::nullopt;
  }

  // Lines 22-27: candidates c₃ = p ∪ {d} for d in the diff set (Eq. 6).
  std::vector<Lit> worklist(ds.begin(), ds.end());
  while (!worklist.empty()) {
    const Lit d = worklist.front();
    worklist.erase(worklist.begin());
    const Cube cand = p.with_lit(d);
    ++stats_.num_prediction_queries;  // N_p
    Cube core;
    if (solvers_.relative_inductive(cand, level - 1,
                                    /*cube_clause_in_frame=*/false, &core,
                                    deadline)) {
      // One literal longer than the parent: treated as high quality, no
      // further variable dropping (paper §3.3 item 3).
      ++stats_.num_successful_predictions;  // N_sp
      return cfg_.predict_core_shrink ? core : cand;
    }
    if (cfg_.predict_refine_diff) {
      // Line 27: the counterexample is likely another CTP of p; prune
      // candidates it also defeats: ds := ds ∩ diff(b, model).
      const Cube fresh = b.diff(solvers_.model_state(/*primed=*/true));
      std::erase_if(worklist,
                    [&](Lit l) { return !fresh.contains(l); });
    }
  }

  // Ablation (predict_max_extra_lits > 1): try a bounded number of
  // two-literal extensions before giving up.
  if (cfg_.predict_max_extra_lits >= 2 && ds.size() >= 2) {
    int budget = 8;
    for (std::size_t i = 0; i < ds.size() && budget > 0; ++i) {
      for (std::size_t j = i + 1; j < ds.size() && budget > 0; ++j) {
        const Cube cand = p.with_lit(ds[i]).with_lit(ds[j]);
        --budget;
        ++stats_.num_prediction_queries;
        Cube core;
        if (solvers_.relative_inductive(cand, level - 1,
                                        /*cube_clause_in_frame=*/false,
                                        &core, deadline)) {
          ++stats_.num_successful_predictions;
          return cfg_.predict_core_shrink ? core : cand;
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace pilot::ic3
