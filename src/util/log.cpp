#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace pilot {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

std::string& thread_tag_storage() {
  thread_local std::string tag;
  return tag;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    default: return "?";
  }
}

}  // namespace

namespace logcfg {
LogLevel level() { return g_level.load(std::memory_order_relaxed); }
void set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

std::optional<LogLevel> level_from_string(const std::string& name) {
  if (name == "silent") return LogLevel::kSilent;
  if (name == "error") return LogLevel::kError;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "info") return LogLevel::kInfo;
  if (name == "debug") return LogLevel::kDebug;
  return std::nullopt;
}

void init_from_env() {
  const char* env = std::getenv("PILOT_LOG");
  if (env == nullptr) return;
  if (const auto parsed = level_from_string(env)) set_level(*parsed);
}

void set_thread_tag(const std::string& tag) { thread_tag_storage() = tag; }
const std::string& thread_tag() { return thread_tag_storage(); }
}  // namespace logcfg

namespace detail {
void emit(LogLevel level, const std::string& message) {
  const std::string& tag = thread_tag_storage();
  if (tag.empty()) {
    std::fprintf(stderr, "[pilot:%s] %s\n", level_tag(level), message.c_str());
  } else {
    std::fprintf(stderr, "[pilot:%s:%s] %s\n", level_tag(level), tag.c_str(),
                 message.c_str());
  }
}
}  // namespace detail

}  // namespace pilot
