/// \file cancel.hpp
/// Cooperative cancellation for concurrently racing engines.
///
/// A `CancelToken` is a shared atomic stop flag: the portfolio scheduler
/// owns one per race, hands a pointer to every backend, and flips it the
/// moment the first definitive verdict lands.  Engines fold the token into
/// their `Deadline` (see Deadline::with_cancel), so the SAT solver's
/// existing deadline polls — every few hundred conflicts/decisions — double
/// as cancellation points and losers stop promptly instead of burning their
/// full budget.
///
/// Tokens can be chained: a token constructed with a parent also reports
/// stop when the parent does, which lets a nested race (portfolio inside a
/// cancellable check) honour both its own winner and an outer abort.
#pragma once

#include <atomic>

namespace pilot {

class CancelToken {
 public:
  CancelToken() = default;
  /// A token that additionally stops when `parent` stops.
  explicit CancelToken(const CancelToken* parent) : parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests a stop.  Thread-safe, idempotent, never blocks.
  void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

  /// True once request_stop() was called on this token or an ancestor.
  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_relaxed) ||
           (parent_ != nullptr && parent_->stop_requested());
  }

 private:
  std::atomic<bool> stop_{false};
  const CancelToken* parent_ = nullptr;
};

}  // namespace pilot
