#include "check/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "cert/certificate.hpp"
#include "corpus/results_db.hpp"
#include "engine/backend.hpp"
#include "engine/portfolio.hpp"
#include "ic3/gen_strategy.hpp"
#include "serve/advisor.hpp"
#include "serve/verdict_cache.hpp"
#include "ts/transition_system.hpp"
#include "util/timer.hpp"

namespace pilot::check {

namespace {

/// Validates an engine spec against the registry before any thread spawns,
/// so a typo fails fast instead of mid-campaign.
void validate_engine_spec(const std::string& spec) {
  // Portfolio forms: match_portfolio_spec throws the shared
  // offending-token + registered-names message on a malformed list.
  if (engine::match_portfolio_spec(spec).has_value()) return;
  if (!engine::backend_registered(spec)) {
    throw std::invalid_argument("run_matrix: " +
                                engine::unknown_engine_message(spec));
  }
}

/// Per-case lazily materialized circuit, shared by all engine jobs of the
/// case so an on-disk AIGER file is parsed once, not once per engine.
struct LoadedCase {
  std::once_flag once;
  std::optional<aig::Aig> aig;
  std::string error;
};

/// Non-throwing spec validity probe for advisor recommendations: history
/// can name engines a different build no longer registers, and a stale
/// recommendation must degrade to "no advice", not kill the campaign.
bool spec_is_valid(const std::string& spec) {
  try {
    if (engine::match_portfolio_spec(spec).has_value()) return true;
    return engine::backend_registered(spec);
  } catch (const std::exception&) {
    return false;
  }
}

/// File-name-safe rendering of an engine spec ("portfolio:a+b" →
/// "portfolio-a-b") for certificate paths.
std::string sanitize_engine_spec(const std::string& spec) {
  std::string out = spec;
  for (char& c : out) {
    if (c == ':' || c == '+' || c == '/' || c == '\\') c = '-';
  }
  return out;
}

}  // namespace

std::vector<RunRecord> run_matrix(const std::vector<corpus::Case>& cases,
                                  const std::vector<std::string>& engines,
                                  const RunMatrixOptions& options) {
  for (const std::string& spec : engines) validate_engine_spec(spec);
  if (!options.gen_spec.empty()) ic3::validate_gen_spec(options.gen_spec);

  struct Job {
    std::size_t case_index;
    std::size_t engine_index;
  };
  std::vector<Job> jobs;
  jobs.reserve(cases.size() * engines.size());
  for (std::size_t c = 0; c < cases.size(); ++c) {
    for (std::size_t e = 0; e < engines.size(); ++e) jobs.push_back({c, e});
  }

  // Largest-case-first (LPT) dispatch order: heterogeneous corpora mix
  // second-long and budget-long cases, and starting the big ones early
  // keeps every worker busy instead of leaving one thread grinding a giant
  // case after the rest of the queue drained.  `order` only permutes
  // dispatch; records keep the case-major job index, so output order is
  // deterministic and scheduler-independent.
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return cases[jobs[a].case_index].size_estimate >
                            cases[jobs[b].case_index].size_estimate;
                   });

  std::vector<LoadedCase> loaded(cases.size());
  std::vector<RunRecord> records(jobs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> soundness_violated{false};

  auto worker = [&]() {
    for (;;) {
      const std::size_t slot = next.fetch_add(1);
      if (slot >= jobs.size()) return;
      const std::size_t j = order[slot];
      const Job& job = jobs[j];
      const corpus::Case& cc = cases[job.case_index];
      const std::string& spec = engines[job.engine_index];

      RunRecord rec;
      rec.case_name = cc.name;
      rec.family = cc.family;
      rec.tags = cc.tags;
      rec.engine = spec;
      rec.expected = cc.expected;

      if (options.cancel != nullptr && options.cancel->stop_requested()) {
        records[j] = std::move(rec);  // aborted: kUnknown, zero time
        continue;
      }

      LoadedCase& lc = loaded[job.case_index];
      std::call_once(lc.once, [&]() {
        try {
          lc.aig = cc.load();
        } catch (const std::exception& e) {
          lc.error = e.what();
        }
      });
      if (!lc.aig.has_value()) {
        rec.error = lc.error;
        records[j] = std::move(rec);
        continue;
      }

      // Canonical structure hash + shape features: the cache/advisor key,
      // recorded on every row so future campaigns become advisor history.
      rec.content_hash = aig::canonical_hash_hex(*lc.aig);
      rec.num_inputs = lc.aig->num_inputs();
      rec.num_latches = lc.aig->num_latches();
      rec.num_ands = lc.aig->num_ands();

      // The transition system is needed by the cache (revalidation) and the
      // certify/store paths; built at most once per job.
      std::optional<ts::TransitionSystem> ts_storage;
      const auto get_ts = [&]() -> const ts::TransitionSystem& {
        if (!ts_storage.has_value()) {
          ts_storage = ts::TransitionSystem::from_aig(*lc.aig, 0);
        }
        return *ts_storage;
      };

      // Tier 1 — verdict cache: a revalidated hit skips the engine
      // entirely; the record's time is the lookup + re-check cost.
      if (options.cache != nullptr) {
        Timer lookup_timer;
        const std::optional<serve::CacheEntry> hit =
            options.cache->lookup(rec.content_hash, get_ts(), options.seed);
        if (hit.has_value()) {
          rec.verdict = hit->verdict;
          rec.solved = true;
          rec.seconds = lookup_timer.seconds();
          rec.frames = hit->frames;
          rec.cache_status = "hit";
          rec.cert_status = "ok";  // lookup() re-checked the certificate
          ++rec.stats.num_cert_checks;
          if (rec.solved && cc.expected != corpus::Expected::kUnknown) {
            const corpus::Expected got = corpus::expected_from_safe(
                rec.verdict == ic3::Verdict::kSafe);
            if (got != cc.expected) {
              std::fprintf(stderr,
                           "SOUNDNESS VIOLATION: %s served from cache as %s "
                           "but the case is expected %s\n",
                           cc.name.c_str(), ic3::to_string(rec.verdict),
                           corpus::to_string(cc.expected));
              soundness_violated.store(true);
            }
          }
          records[j] = std::move(rec);
          continue;
        }
        rec.cache_status = "miss";
      }

      CheckOptions co;
      co.engine_spec = spec;
      co.gen_spec = options.gen_spec;
      co.lift_sim = options.lift_sim;
      co.gen_ternary_filter = options.gen_ternary_filter;
      co.sat_inprocess = options.sat_inprocess;
      co.gen_batch = options.gen_batch;
      co.gen_batch_adaptive = options.gen_batch_adaptive;
      co.share_lemmas = options.share_lemmas;
      co.budget_ms = options.budget_ms;
      co.seed = options.seed;
      co.verify_witness = options.verify_witness;
      co.cancel = options.cancel;

      // Tier 2 — advisor: open with the engine + ~1.5× budget that solved
      // the nearest recorded neighbour; an UNKNOWN there falls back to the
      // job's own spec under the full budget.  Either way the verdict goes
      // through the same certification as an unadvised run.
      CheckResult res;
      bool advised_solved = false;
      double advised_seconds = 0.0;
      if (options.advisor != nullptr) {
        const std::optional<serve::Advice> adv = options.advisor->advise(
            rec.content_hash, rec.num_inputs, rec.num_latches, rec.num_ands);
        const bool usable =
            adv.has_value() && spec_is_valid(adv->engine_spec) &&
            (adv->engine_spec != spec ||
             (options.budget_ms <= 0 || adv->budget_ms < options.budget_ms));
        if (usable) {
          CheckOptions advised = co;
          advised.engine_spec = adv->engine_spec;
          advised.budget_ms = options.budget_ms > 0
                                  ? std::min(adv->budget_ms, options.budget_ms)
                                  : adv->budget_ms;
          CheckResult ares = check_aig(*lc.aig, advised);
          advised_seconds = ares.seconds;
          if (ares.verdict != ic3::Verdict::kUnknown) {
            res = std::move(ares);
            advised_solved = true;
            rec.advice = (adv->exact ? "exact:" : "near:") + adv->source_case +
                         "@" + std::to_string(advised.budget_ms) + "ms";
          } else {
            rec.advice = "fallback";
          }
        }
      }
      if (!advised_solved) res = check_aig(*lc.aig, co);

      rec.verdict = res.verdict;
      rec.solved = res.verdict != ic3::Verdict::kUnknown;
      rec.seconds = res.seconds + (advised_solved ? 0.0 : advised_seconds);
      rec.frames = res.frames;
      rec.stats = res.stats;

      if (rec.solved && cc.expected != corpus::Expected::kUnknown) {
        const corpus::Expected got =
            corpus::expected_from_safe(res.verdict == ic3::Verdict::kSafe);
        if (got != cc.expected) {
          std::fprintf(stderr,
                       "SOUNDNESS VIOLATION: %s with %s reported %s but the "
                       "case is expected %s\n",
                       cc.name.c_str(), spec.c_str(),
                       ic3::to_string(res.verdict),
                       corpus::to_string(cc.expected));
          soundness_violated.store(true);
        }
      }
      if (rec.solved && options.verify_witness && !res.witness_error.empty()) {
        std::fprintf(stderr, "WITNESS CHECK FAILED: %s with %s: %s\n",
                     cc.name.c_str(), spec.c_str(),
                     res.witness_error.c_str());
        soundness_violated.store(true);
      }
      // Certification pass (--certify) and cache store share one
      // certificate build: --certify gates soundness on it; a cache miss
      // stores the verdict only when the certificate independently checks,
      // so nothing uncheckable ever enters the cache.
      const bool want_store = options.cache != nullptr && rec.solved;
      if (rec.solved && (options.certify || want_store)) {
        const ts::TransitionSystem& ts = get_ts();
        std::string why;
        const std::optional<cert::Certificate> c = cert::from_verdict(
            ts, res.verdict, res.invariant, res.trace, res.kind_k,
            res.kind_simple_path, /*property_index=*/0, &why);
        ++rec.stats.num_cert_checks;
        std::string status;
        if (c.has_value()) {
          const ic3::CheckOutcome outcome = cert::check(ts, *c, options.seed);
          if (outcome.ok) {
            status = "ok";
            if (options.certify && !options.cert_dir.empty()) {
              const std::string path = options.cert_dir + "/" + cc.name +
                                       "__" + sanitize_engine_spec(spec) +
                                       ".cert";
              if (cert::save(*c, path)) {
                rec.cert_path = path;
              } else {
                status = "failed: cannot write " + path;
              }
            }
          } else {
            status = "failed: " + outcome.reason;
          }
        } else {
          status = "failed: " + why;
        }
        if (want_store && status == "ok") {
          serve::CacheEntry entry;
          entry.hash = rec.content_hash;
          entry.verdict = rec.verdict;
          entry.engine = spec;
          entry.seconds = rec.seconds;
          entry.frames = rec.frames;
          entry.cert_text = cert::to_text(*c);
          entry.case_name = cc.name;
          entry.timestamp = corpus::now_utc_iso8601();
          options.cache->store(entry);
        }
        if (options.certify) {
          // Only --certify publishes the status and trips the soundness
          // gate; a store-only certification failure just skips the store
          // (the verdict itself may still be fine, e.g. an engine that
          // returned SAFE without an invariant payload).
          rec.cert_status = status;
          if (status != "ok") {
            ++rec.stats.num_cert_failures;
            std::fprintf(stderr, "CERTIFICATE CHECK FAILED: %s with %s: %s\n",
                         cc.name.c_str(), spec.c_str(), status.c_str());
            soundness_violated.store(true);
          }
        }
      }
      records[j] = std::move(rec);
    }
  };

  std::size_t n_threads = options.jobs;
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  n_threads = std::min(n_threads, jobs.size());
  if (n_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (std::size_t t = 0; t < n_threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  if (soundness_violated.load() && options.strict) {
    std::fprintf(stderr, "aborting: soundness gate tripped\n");
    std::abort();
  }
  return records;
}

std::vector<RunRecord> run_matrix(
    const std::vector<circuits::CircuitCase>& cases,
    const std::vector<std::string>& engines,
    const RunMatrixOptions& options) {
  std::vector<corpus::Case> converted;
  converted.reserve(cases.size());
  for (const circuits::CircuitCase& cc : cases) {
    converted.push_back(corpus::from_circuit(cc));
  }
  return run_matrix(converted, engines, options);
}

}  // namespace pilot::check
