/// \file corpus.hpp
/// The unified benchmark-case abstraction: one interface over on-disk AIGER
/// corpora (HWMCC-style directories, see manifest.hpp) and the synthetic
/// `circuits::` families, so every consumer — the run-matrix scheduler, the
/// bench harnesses, the `pilot-bench` campaign runner — speaks `Case`.
///
/// A Case is cheap to construct and to copy around job queues: the circuit
/// itself is materialized lazily through `load()` (an in-memory AIG for
/// synthetic cases, an AIGER parse for on-disk ones), and `size_estimate`
/// carries the scheduling hint (AND + latch count) the runner uses to order
/// heterogeneous jobs largest-first.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "circuits/suite.hpp"

namespace pilot::corpus {

/// The manifest's expected verdict.  kUnknown disables the soundness gate
/// for the case (typical for freshly ingested HWMCC directories).
enum class Expected { kUnknown, kSafe, kUnsafe };

[[nodiscard]] const char* to_string(Expected e);
/// Parses "safe" / "unsafe" / "unknown" (also accepts "sat"/"unsat" HWMCC
/// shorthand: "unsat" = safe, "sat" = unsafe).  Throws on anything else.
[[nodiscard]] Expected expected_from_string(const std::string& text);
[[nodiscard]] inline Expected expected_from_safe(bool safe) {
  return safe ? Expected::kSafe : Expected::kUnsafe;
}

struct Case {
  std::string name;
  /// Synthetic family name, or "aiger" for on-disk cases.
  std::string family;
  std::vector<std::string> tags;
  Expected expected = Expected::kUnknown;
  /// Exact/minimum counterexample depth when known, -1 otherwise.
  int expected_cex_length = -1;
  /// Source file path; empty for synthetic cases.
  std::string source;
  /// AND + latch count — the job scheduler's size hint (0 = unknown).
  std::size_t size_estimate = 0;
  /// Parse metadata (filled by the manifest scanner; synthetic cases fill
  /// them from the in-memory AIG).
  std::size_t num_inputs = 0;
  std::size_t num_latches = 0;
  std::size_t num_ands = 0;
  /// FNV-1a content hash of the AIGER file ("" for synthetic cases).
  std::string content_hash;

  /// Materializes the circuit.  Throws std::runtime_error when an on-disk
  /// source is missing or malformed.
  std::function<aig::Aig()> load;
};

/// Wraps a synthetic circuit case; the AIG is shared, not copied per call.
[[nodiscard]] Case from_circuit(circuits::CircuitCase cc);

/// The built-in suite as corpus cases (the bridge every consumer uses
/// instead of touching circuits::make_suite directly).
[[nodiscard]] std::vector<Case> suite_cases(circuits::SuiteSize size);

/// "suite:tiny" / "suite:quick" / "suite:full" → the built-in suite; any
/// other string is a manifest file or corpus directory resolved through
/// manifest.hpp's load_corpus.  The uniform entry point behind
/// `--corpus` flags.
[[nodiscard]] std::vector<Case> resolve_corpus(const std::string& spec);

/// Campaign shard selector, parsed from "i/n" (0 ≤ i < n).
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;
};

/// Parses "i/n"; throws std::invalid_argument on malformed text, i ≥ n, or
/// n == 0.
[[nodiscard]] ShardSpec parse_shard_spec(const std::string& text);

/// Deterministic shard partition: keeps the cases whose shard key — the
/// content hash when recorded, the case name otherwise — FNV-1a-hashes to
/// `shard.index` mod `shard.count`.  Membership depends only on the case
/// itself, never on manifest order, so the n shards of a corpus are
/// disjoint and complete by construction and stable across reorderings.
[[nodiscard]] std::vector<Case> shard_cases(const std::vector<Case>& cases,
                                            const ShardSpec& shard);

}  // namespace pilot::corpus
