/// Engine tests: verdicts across all families and generalization modes
/// (parameterized), witness production, statistics plausibility, deadline
/// handling, and configuration knobs.
#include <gtest/gtest.h>

#include <thread>

#include "circuits/families.hpp"
#include "ic3/engine.hpp"
#include "ts/transition_system.hpp"

namespace pilot::ic3 {
namespace {

Result run(const circuits::CircuitCase& cc, Config cfg = {},
           Deadline deadline = {}) {
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  Engine engine(ts, cfg);
  return engine.check(deadline);
}

struct ModeParam {
  GenMode mode;
  bool predict;
};

class EngineAllModes : public ::testing::TestWithParam<ModeParam> {
 protected:
  Config config() const {
    Config cfg;
    cfg.gen_mode = GetParam().mode;
    cfg.predict_lemmas = GetParam().predict;
    return cfg;
  }
};

TEST_P(EngineAllModes, SafeCounterProvedWithCertificate) {
  const auto cc = circuits::counter_wrap_safe(5, 16, 30);
  const Result r = run(cc, config());
  ASSERT_EQ(r.verdict, Verdict::kSafe);
  ASSERT_TRUE(r.invariant.has_value());
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  EXPECT_TRUE(check_invariant(ts, *r.invariant).ok);
}

TEST_P(EngineAllModes, UnsafeCounterFoundWithTrace) {
  const auto cc = circuits::counter_unsafe(5, 13);
  const Result r = run(cc, config());
  ASSERT_EQ(r.verdict, Verdict::kUnsafe);
  ASSERT_TRUE(r.trace.has_value());
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  EXPECT_TRUE(check_trace(ts, *r.trace).ok);
}

TEST_P(EngineAllModes, TokenRingInvariant) {
  const Result r = run(circuits::token_ring_safe(7), config());
  EXPECT_EQ(r.verdict, Verdict::kSafe);
}

TEST_P(EngineAllModes, MutexVerdicts) {
  EXPECT_EQ(run(circuits::mutex_safe(), config()).verdict, Verdict::kSafe);
  EXPECT_EQ(run(circuits::mutex_unsafe(), config()).verdict,
            Verdict::kUnsafe);
}

TEST_P(EngineAllModes, ConstraintHandling) {
  // Constrained shift register is safe; unconstrained is unsafe.
  EXPECT_EQ(run(circuits::shift_register(6, true), config()).verdict,
            Verdict::kSafe);
  EXPECT_EQ(run(circuits::shift_register(6, false), config()).verdict,
            Verdict::kUnsafe);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, EngineAllModes,
    ::testing::Values(ModeParam{GenMode::kDown, false},
                      ModeParam{GenMode::kDown, true},
                      ModeParam{GenMode::kCtg, false},
                      ModeParam{GenMode::kCtg, true},
                      ModeParam{GenMode::kCav23, false}),
    [](const auto& info) {
      std::string name;
      switch (info.param.mode) {
        case GenMode::kDown: name = "down"; break;
        case GenMode::kCtg: name = "ctg"; break;
        default: name = "cav23"; break;
      }
      if (info.param.predict) name += "_pl";
      return name;
    });

TEST(Engine, ZeroStepCounterexample) {
  // bad = (count == 0) with count init 0: violated in the initial state.
  const auto cc = circuits::counter_unsafe(4, 0);
  const Result r = run(cc);
  ASSERT_EQ(r.verdict, Verdict::kUnsafe);
  ASSERT_TRUE(r.trace.has_value());
  EXPECT_EQ(r.trace->length(), 1u);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  EXPECT_TRUE(check_trace(ts, *r.trace).ok);
}

TEST(Engine, CombinationalCircuitSafeAndUnsafe) {
  // No latches at all: bad is a pure function of the inputs.
  aig::Aig safe_aig;
  {
    const aig::AigLit x = safe_aig.add_input();
    safe_aig.add_bad(safe_aig.make_and(x, !x));  // constant false
  }
  EXPECT_EQ(run({"comb_safe", "comb", std::move(safe_aig), true, -1}).verdict,
            Verdict::kSafe);

  aig::Aig unsafe_aig;
  {
    const aig::AigLit x = unsafe_aig.add_input();
    const aig::AigLit y = unsafe_aig.add_input();
    unsafe_aig.add_bad(unsafe_aig.make_and(x, y));
  }
  const Result r =
      run({"comb_unsafe", "comb", std::move(unsafe_aig), false, 0});
  EXPECT_EQ(r.verdict, Verdict::kUnsafe);
}

TEST(Engine, DeadlineProducesUnknown) {
  // A parity ring is intentionally hard; a tiny deadline must time out
  // cleanly (not crash, not mis-answer).
  const auto cc = circuits::ring_parity_safe(14);
  const Result r = run(cc, Config{}, Deadline::in_milliseconds(1));
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
}

TEST(Engine, NoObligationStateSurvivesAnyVerdict) {
  // pending_obligations() must be 0 after every check(), including UNSAFE
  // runs whose counterexample chase leaves re-enqueued obligations behind.
  {
    const auto cc = circuits::counter_unsafe(6, 10);
    const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
    Engine engine(ts, {});
    EXPECT_EQ(engine.check().verdict, Verdict::kUnsafe);
    EXPECT_EQ(engine.pending_obligations(), 0u);
  }
  {
    const auto cc = circuits::token_ring_safe(5);
    const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
    Engine engine(ts, {});
    EXPECT_EQ(engine.check().verdict, Verdict::kSafe);
    EXPECT_EQ(engine.pending_obligations(), 0u);
  }
}

TEST(Engine, PreCancelledRunReportsUnknownCleanly) {
  // A stop requested before check() starts must yield UNKNOWN without any
  // certificate and without dangling proof state.
  const auto cc = circuits::counter_wrap_safe(12, 1024, 2048);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  Engine engine(ts, {});
  CancelToken cancel;
  cancel.request_stop();
  const Result r = engine.check({}, &cancel);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_FALSE(r.trace.has_value());
  EXPECT_FALSE(r.invariant.has_value());
  EXPECT_EQ(engine.pending_obligations(), 0u);
}

TEST(Engine, CancellationMidRunLeavesNoDanglingObligations) {
  // This instance needs several seconds unconstrained; a stop request a few
  // milliseconds in must abort it with UNKNOWN, the partial statistics, and
  // an empty obligation queue — the contract the portfolio relies on.
  const auto cc = circuits::counter_wrap_safe(12, 1024, 2048);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  Engine engine(ts, {});
  CancelToken cancel;
  std::thread stopper([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cancel.request_stop();
  });
  const Result r = engine.check({}, &cancel);
  stopper.join();
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_FALSE(r.trace.has_value());
  EXPECT_FALSE(r.invariant.has_value());
  EXPECT_EQ(engine.pending_obligations(), 0u);
  // Partial statistics from the aborted run are still reported.  (No
  // assertion on obligation counts: how far the engine got in 30 ms is
  // scheduler- and sanitizer-dependent.)
  EXPECT_GT(r.stats.time_total, 0.0);
}

TEST(Engine, PredictionStatisticsAreConsistent) {
  Config cfg;
  cfg.gen_mode = GenMode::kDown;
  cfg.predict_lemmas = true;
  const Result r = run(circuits::counter_wrap_safe(6, 32, 60), cfg);
  ASSERT_EQ(r.verdict, Verdict::kSafe);
  const Ic3Stats& s = r.stats;
  EXPECT_LE(s.num_successful_predictions, s.num_prediction_queries);
  EXPECT_LE(s.num_found_failed_parents, s.num_generalizations);
  EXPECT_LE(s.num_successful_predictions, s.num_generalizations);
  EXPECT_GE(s.sr_lp(), 0.0);
  EXPECT_LE(s.sr_lp(), 1.0);
  EXPECT_LE(s.sr_adv(), s.sr_fp() + 1e-9)
      << "a successful prediction requires a found parent";
}

TEST(Engine, NoPredictionStatsWhenDisabled) {
  Config cfg;
  cfg.predict_lemmas = false;
  const Result r = run(circuits::counter_wrap_safe(5, 16, 30), cfg);
  EXPECT_EQ(r.stats.num_prediction_queries, 0u);
  EXPECT_EQ(r.stats.num_successful_predictions, 0u);
  EXPECT_EQ(r.stats.num_found_failed_parents, 0u);
}

TEST(Engine, ReenqueueOffStillSound) {
  Config cfg;
  cfg.reenqueue_obligations = false;
  EXPECT_EQ(run(circuits::token_ring_safe(5), cfg).verdict, Verdict::kSafe);
  EXPECT_EQ(run(circuits::counter_unsafe(4, 9), cfg).verdict,
            Verdict::kUnsafe);
}

TEST(Engine, AllLiftModesStaySound) {
  for (const auto mode :
       {Config::LiftMode::kSat, Config::LiftMode::kTernary,
        Config::LiftMode::kNone}) {
    Config cfg;
    cfg.lift_mode = mode;
    const auto cc = circuits::fifo_unsafe(4, 9);
    const Result r = run(cc, cfg);
    ASSERT_EQ(r.verdict, Verdict::kUnsafe);
    const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
    EXPECT_TRUE(check_trace(ts, *r.trace).ok);

    const Result rs = run(circuits::token_ring_safe(5), cfg);
    EXPECT_EQ(rs.verdict, Verdict::kSafe);
  }
}

TEST(Engine, FrequentRebuildsStaySound) {
  Config cfg;
  cfg.rebuild_tmp_threshold = 8;  // rebuild constantly
  const Result r = run(circuits::counter_wrap_safe(5, 16, 30), cfg);
  EXPECT_EQ(r.verdict, Verdict::kSafe);
  EXPECT_GE(r.stats.num_solver_rebuilds, 1u);
}

TEST(Engine, UnsafeTraceEndsInBadAndStartsInInit) {
  const auto cc = circuits::combination_lock_unsafe(3, {1, 5, 2, 7});
  const Result r = run(cc);
  ASSERT_EQ(r.verdict, Verdict::kUnsafe);
  ASSERT_TRUE(r.trace.has_value());
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  EXPECT_TRUE(ts.cube_intersects_init(r.trace->states.front().lits()));
  EXPECT_TRUE(check_trace(ts, *r.trace).ok);
  // The lock needs exactly 4 correct digits: trace has ≥ 5 states... the
  // bad is observed on the state where progress==4, reached after 4 steps.
  EXPECT_GE(r.trace->length(), 4u);
}

TEST(Engine, DeterministicAcrossRuns) {
  // With an unlimited deadline the engine has no timing-dependent
  // branches: two runs with the same seed must take identical search paths
  // (a canary for accidental nondeterminism, e.g. hash-order iteration).
  auto fingerprint = [](const circuits::CircuitCase& cc) {
    Config cfg;
    cfg.predict_lemmas = true;
    cfg.seed = 42;
    const Result r = run(cc, cfg);
    return std::tuple{r.verdict, r.stats.num_lemmas,
                      r.stats.num_obligations, r.stats.num_ctis,
                      r.stats.num_generalizations,
                      r.stats.num_prediction_queries};
  };
  const auto cc1 = circuits::counter_wrap_safe(6, 32, 60);
  EXPECT_EQ(fingerprint(cc1), fingerprint(cc1));
  const auto cc2 = circuits::fifo_unsafe(4, 9);
  EXPECT_EQ(fingerprint(cc2), fingerprint(cc2));
}

TEST(Engine, InvariantUsesOnlyStateVariables) {
  const Result r = run(circuits::twin_counters_safe(5));
  ASSERT_EQ(r.verdict, Verdict::kSafe);
  const ts::TransitionSystem ts =
      ts::TransitionSystem::from_aig(circuits::twin_counters_safe(5).aig);
  for (const Cube& c : r.invariant->lemma_cubes) {
    for (const Lit l : c) {
      EXPECT_TRUE(ts.is_state_var(l.var()));
    }
  }
}

}  // namespace
}  // namespace pilot::ic3
