#include "ic3/solver_manager.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace pilot::ic3 {

SolverManager::SolverManager(const TransitionSystem& ts, const Config& cfg,
                             Ic3Stats& stats)
    : ts_(ts), cfg_(cfg), stats_(stats) {
  solver_ = std::make_unique<sat::Solver>();
  solver_->set_seed(cfg_.seed);
  solver_->set_trail_reuse(cfg_.sat_trail_reuse);
  install_base();
}

void SolverManager::install_base() {
  ts_.install(*solver_);
  act_vars_.clear();
  retired_tmp_ = 0;
  // Level 0: the initial cube, guarded by act_0.
  ensure_level(0);
  for (const Lit l : ts_.init_literals()) {
    solver_->add_binary(~act(0), l);
  }
}

void SolverManager::ensure_level(std::size_t k) {
  while (act_vars_.size() <= k) {
    act_vars_.push_back(solver_->new_var());
  }
}

void SolverManager::add_lemma_clause(const Cube& cube, std::size_t level) {
  ensure_level(level);
  std::vector<Lit> clause = cube.negated_lits();
  clause.push_back(~act(level));
  solver_->add_clause(clause);
}

std::vector<Lit> SolverManager::frame_assumptions(std::size_t level) const {
  // Descending activation order: every query assumes the same act_top,
  // act_top-1, … head, so consecutive queries — even at different levels —
  // share the longest possible prefix for the solver's trail reuse.
  std::vector<Lit> assumptions;
  assumptions.reserve(act_vars_.size() - level);
  for (std::size_t j = act_vars_.size(); j-- > level;) {
    assumptions.push_back(act(j));
  }
  return assumptions;
}

bool SolverManager::solve_bad(std::size_t level, const Deadline& deadline) {
  ensure_level(level);
  std::vector<Lit> assumptions = frame_assumptions(level);
  assumptions.push_back(ts_.bad());
  const sat::SolveResult res = solver_->solve(assumptions, deadline);
  if (res == sat::SolveResult::kUnknown) throw TimeoutError{};
  return res == sat::SolveResult::kSat;
}

bool SolverManager::relative_inductive(const Cube& c, std::size_t level,
                                       bool cube_clause_in_frame,
                                       Cube* core_out,
                                       const Deadline& deadline) {
  ensure_level(level);
  std::vector<Lit> assumptions = frame_assumptions(level);

  Lit tmp = sat::kLitUndef;
  if (!cube_clause_in_frame) {
    tmp = Lit::make(solver_->new_var());
    // The throw-away activation variable is never decided on and never
    // assumed again after this query, which leaves the temporary clause
    // permanently inert — no retiring unit clause is needed, so the kept
    // trail (and with it the assumption-prefix reuse) survives the query.
    solver_->set_decision_var(tmp.var(), false);
    std::vector<Lit> clause = c.negated_lits();
    clause.push_back(~tmp);
    solver_->add_clause(clause);
    assumptions.push_back(tmp);
  }
  for (const Lit l : c) assumptions.push_back(ts_.prime(l));

  const sat::SolveResult res = solver_->solve(assumptions, deadline);
  if (!cube_clause_in_frame) ++retired_tmp_;
  if (res == sat::SolveResult::kUnknown) throw TimeoutError{};
  if (res == sat::SolveResult::kSat) return false;
  if (core_out != nullptr) *core_out = shrink_with_core(c);
  return true;
}

Cube SolverManager::shrink_with_core(const Cube& c) const {
  // Keep only the literals of c whose primed counterpart appears in the
  // final-conflict core, then repair initiation: the shrunk cube must stay
  // disjoint from I, which c itself is.  The core literals are marked in a
  // flag vector so the membership test is O(1) per literal instead of a
  // scan over the core.
  const std::vector<Lit>& core = solver_->core();
  for (const Lit l : core) {
    const auto idx = static_cast<std::size_t>(l.index());
    if (idx >= core_mark_.size()) core_mark_.resize(idx + 1, 0);
    core_mark_[idx] = 1;
  }
  std::vector<Lit> kept;
  for (const Lit l : c) {
    const auto idx = static_cast<std::size_t>(ts_.prime(l).index());
    if (idx < core_mark_.size() && core_mark_[idx] != 0) {
      kept.push_back(l);
    }
  }
  for (const Lit l : core) {
    core_mark_[static_cast<std::size_t>(l.index())] = 0;
  }
  Cube shrunk = Cube::from_sorted(std::move(kept));
  if (shrunk.empty()) return c;  // degenerate core; keep the original
  if (ts_.cube_intersects_init(shrunk.lits())) {
    // Add back one literal of c that contradicts the initial cube.
    for (const Lit l : c) {
      if (shrunk.contains(l)) continue;
      const sat::LBool init = ts_.init_value(l.var());
      if (init.is_undef()) continue;
      const bool satisfied_in_init = init.is_true() != l.sign();
      if (!satisfied_in_init) {
        shrunk = shrunk.with_lit(l);
        break;
      }
    }
  }
  return shrunk;
}

Cube SolverManager::model_state(bool primed) const {
  std::vector<Lit> lits;
  lits.reserve(ts_.num_latches());
  for (std::size_t i = 0; i < ts_.num_latches(); ++i) {
    const Var model_var =
        primed ? ts_.next_state_var(i) : ts_.state_var(i);
    const sat::LBool v = solver_->model_value(Lit::make(model_var));
    if (v.is_undef()) continue;
    lits.push_back(Lit::make(ts_.state_var(i), v.is_false()));
  }
  return Cube::from_lits(std::move(lits));
}

std::vector<Lit> SolverManager::model_inputs() const {
  std::vector<Lit> lits;
  lits.reserve(ts_.num_inputs());
  for (std::size_t i = 0; i < ts_.num_inputs(); ++i) {
    const Var v = ts_.input_var(i);
    const sat::LBool val = solver_->model_value(Lit::make(v));
    if (val.is_undef()) continue;
    lits.push_back(Lit::make(v, val.is_false()));
  }
  return lits;
}

void SolverManager::carry_solver_state(const sat::Solver& old,
                                       const std::vector<Var>& old_acts) {
  // Phase saving and VSIDS activities represent everything the retired
  // solver learned about where the search lives; starting the fresh solver
  // from them avoids re-warming the heuristics after every rebuild.
  // Encoding variables keep their indices across rebuilds; activation
  // literals are mapped level-by-level.  Activities are normalized so the
  // imported values sit in [0, 1] against the fresh solver's unit bump.
  const double max_act = old.max_activity();
  const double scale = max_act > 0.0 ? 1.0 / max_act : 0.0;
  std::uint64_t carried = 0;
  const Var encoding_vars = std::min<Var>(
      static_cast<Var>(ts_.num_encoding_vars()), solver_->num_vars());
  for (Var v = 0; v < encoding_vars; ++v) {
    solver_->set_phase(v, old.saved_phase(v));
    if (scale > 0.0) solver_->set_activity(v, old.activity(v) * scale);
    ++carried;
  }
  for (std::size_t j = 0; j < act_vars_.size() && j < old_acts.size(); ++j) {
    solver_->set_phase(act_vars_[j], old.saved_phase(old_acts[j]));
    if (scale > 0.0) {
      solver_->set_activity(act_vars_[j], old.activity(old_acts[j]) * scale);
    }
    ++carried;
  }
  stats_.num_rebuild_carried_phases += carried;
}

void SolverManager::rebuild(const Frames& frames) {
  const std::size_t levels = act_vars_.size();
  const std::unique_ptr<sat::Solver> old = std::move(solver_);
  const std::vector<Var> old_acts = std::move(act_vars_);
  retired_sat_stats_ += old->stats();
  solver_ = std::make_unique<sat::Solver>();
  solver_->set_seed(cfg_.seed);
  solver_->set_trail_reuse(cfg_.sat_trail_reuse);
  install_base();
  ensure_level(levels == 0 ? 0 : levels - 1);
  for (std::size_t j = 1; j <= frames.top_level(); ++j) {
    for (const Cube& c : frames.delta(j)) {
      add_lemma_clause(c, j);
    }
  }
  if (cfg_.rebuild_carry_state) carry_solver_state(*old, old_acts);
  ++stats_.num_solver_rebuilds;
  PILOT_DEBUG("solver rebuilt; lemmas=" << frames.total_lemmas());
}

void SolverManager::maybe_rebuild(const Frames& frames) {
  if (retired_tmp_ >= cfg_.rebuild_tmp_threshold) rebuild(frames);
}

}  // namespace pilot::ic3
