#include "corpus/results_db.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace pilot::corpus {

json::Value stats_to_json(const ic3::Ic3Stats& s) {
  json::Object o;
  o["generalizations"] = s.num_generalizations;
  o["prediction_queries"] = s.num_prediction_queries;
  o["successful_predictions"] = s.num_successful_predictions;
  o["found_failed_parents"] = s.num_found_failed_parents;
  o["lemmas"] = s.num_lemmas;
  o["obligations"] = s.num_obligations;
  o["mic_queries"] = s.num_mic_queries;
  o["push_queries"] = s.num_push_queries;
  o["max_frame"] = s.max_frame;
  // SAT hot-path counters (PR 4): campaigns quantify the solver-layer
  // optimizations — total propagation work, trail-reuse savings, binary
  // watch hits, glue clauses — per (case × engine) row.
  o["sat_solve_calls"] = s.sat_solve_calls;
  o["sat_propagations"] = s.sat_propagations;
  o["sat_conflicts"] = s.sat_conflicts;
  o["sat_decisions"] = s.sat_decisions;
  o["sat_db_reductions"] = s.sat_db_reductions;
  o["sat_trail_reuse_hits"] = s.sat_trail_reuse_hits;
  o["sat_saved_propagations"] = s.sat_saved_propagations;
  o["sat_binary_propagations"] = s.sat_binary_propagations;
  o["sat_glue_learnts"] = s.sat_glue_learnts;
  o["solver_rebuilds"] = s.num_solver_rebuilds;
  // Ternary drop-filter / packed-simulation counters (PR 6): how many
  // candidate-drop solves the cached-CTI filter screened and skipped, and
  // the packed ternary-simulation volume behind it.
  o["filter_checks"] = s.num_filter_checks;
  o["filter_solves_saved"] = s.num_filter_solves_saved;
  o["filter_witnesses"] = s.num_filter_witnesses;
  o["filter_blocking_witnesses"] = s.num_filter_blocking_witnesses;
  o["packed_sim_words"] = s.num_packed_sim_words;
  // Generalization-strategy rows (PR 5): one object per strategy that ran,
  // sorted by name for stable serialization, plus the dynamic-switch and
  // portfolio lemma-exchange totals.
  if (!s.gen_strategies.empty()) {
    std::vector<const ic3::GenStrategyStats*> sorted;
    sorted.reserve(s.gen_strategies.size());
    for (const ic3::GenStrategyStats& g : s.gen_strategies) {
      sorted.push_back(&g);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const auto* a, const auto* b) { return a->name < b->name; });
    json::Array strategies;
    for (const ic3::GenStrategyStats* g : sorted) {
      json::Object row;
      row["name"] = g->name;
      row["attempts"] = g->attempts;
      row["successes"] = g->successes;
      row["queries"] = g->queries;
      row["dropped_lits"] = g->dropped_lits;
      row["switches"] = g->switches;
      strategies.push_back(json::Value(std::move(row)));
    }
    o["gen_strategies"] = std::move(strategies);
  }
  o["strategy_switches"] = s.num_strategy_switches;
  o["exchange_published"] = s.num_exchange_published;
  o["exchange_imported"] = s.num_exchange_imported;
  o["exchange_rejected"] = s.num_exchange_rejected;
  o["exchange_skipped"] = s.num_exchange_skipped;
  // Certification counters (PR 9): how many certificate checks gated this
  // row's verdict and how many failed (quarantines).
  o["cert_checks"] = s.num_cert_checks;
  o["cert_failures"] = s.num_cert_failures;
  // Inprocessing / batched-probe counters (PR 7): subsumption and
  // vivification work done in place, probing yield on unrolled CNFs, and
  // how many MIC candidate drops each batched solve answered.
  o["sat_subsumed"] = s.sat_subsumed_clauses;
  o["sat_strengthened"] = s.sat_strengthened_clauses;
  o["sat_vivified_lits"] = s.sat_vivified_literals;
  o["sat_probe_failed_lits"] = s.sat_probe_failed_literals;
  o["sat_scc_merged"] = s.sat_scc_merged_vars;
  o["batched_drop_solves"] = s.num_batched_drop_solves;
  o["batched_drop_answers"] = s.num_batched_drop_answers;
  // Adaptive batch width (PR 10): emitted only when the adaptive sizing
  // actually ran, so fixed-width rows keep their pre-existing shape.
  if (s.num_adaptive_batch_updates != 0) {
    o["adaptive_batch_updates"] = s.num_adaptive_batch_updates;
    o["adaptive_batch_width_sum"] = s.adaptive_batch_width_sum;
  }
  o["rebuild_subsumed"] = s.num_rebuild_subsumed;
  // Timing + per-phase profile (PR 8): coarse time_* fields plus one
  // {"seconds", "calls"} object per phase that actually ran, keyed by the
  // obs::phase_name string so rows stay readable and diffable.
  o["time_total"] = s.time_total;
  o["time_generalize"] = s.time_generalize;
  o["time_predict"] = s.time_predict;
  o["time_propagate"] = s.time_propagate;
  if (!s.phases.empty()) {
    json::Object phases;
    for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
      const auto p = static_cast<obs::Phase>(i);
      if (s.phases.calls_of(p) == 0) continue;
      json::Object entry;
      entry["seconds"] = s.phases.seconds_of(p);
      entry["calls"] = s.phases.calls_of(p);
      phases[obs::phase_name(p)] = json::Value(std::move(entry));
    }
    o["phases"] = json::Value(std::move(phases));
  }
  return json::Value(std::move(o));
}

ic3::Ic3Stats stats_from_json(const json::Value& v) {
  ic3::Ic3Stats s;
  s.num_generalizations = v.at("generalizations").as_uint();
  s.num_prediction_queries = v.at("prediction_queries").as_uint();
  s.num_successful_predictions = v.at("successful_predictions").as_uint();
  s.num_found_failed_parents = v.at("found_failed_parents").as_uint();
  s.num_lemmas = v.at("lemmas").as_uint();
  s.num_obligations = v.at("obligations").as_uint();
  s.num_mic_queries = v.at("mic_queries").as_uint();
  s.num_push_queries = v.at("push_queries").as_uint();
  s.max_frame = v.at("max_frame").as_uint();
  // Absent in rows written before the SAT-layer counters existed; at()
  // returns a null Value whose as_uint() falls back to 0.
  s.sat_solve_calls = v.at("sat_solve_calls").as_uint();
  s.sat_propagations = v.at("sat_propagations").as_uint();
  s.sat_conflicts = v.at("sat_conflicts").as_uint();
  s.sat_decisions = v.at("sat_decisions").as_uint();
  s.sat_db_reductions = v.at("sat_db_reductions").as_uint();
  s.sat_trail_reuse_hits = v.at("sat_trail_reuse_hits").as_uint();
  s.sat_saved_propagations = v.at("sat_saved_propagations").as_uint();
  s.sat_binary_propagations = v.at("sat_binary_propagations").as_uint();
  s.sat_glue_learnts = v.at("sat_glue_learnts").as_uint();
  s.num_solver_rebuilds = v.at("solver_rebuilds").as_uint();
  // Ternary-filter fields (PR 6): absent in older rows — same null/0
  // fallback as above keeps old baselines loadable.
  s.num_filter_checks = v.at("filter_checks").as_uint();
  s.num_filter_solves_saved = v.at("filter_solves_saved").as_uint();
  s.num_filter_witnesses = v.at("filter_witnesses").as_uint();
  s.num_filter_blocking_witnesses =
      v.at("filter_blocking_witnesses").as_uint();
  s.num_packed_sim_words = v.at("packed_sim_words").as_uint();
  // Strategy / exchange fields (PR 5): absent in older rows — at() returns
  // null and the as_* fallbacks keep everything 0 / empty.
  if (v.at("gen_strategies").is_array()) {
    for (const json::Value& row : v.at("gen_strategies").as_array()) {
      const std::string name = row.at("name").as_string();
      if (name.empty()) continue;
      ic3::GenStrategyStats& g = s.gen_strategy(name);
      g.attempts = row.at("attempts").as_uint();
      g.successes = row.at("successes").as_uint();
      g.queries = row.at("queries").as_uint();
      g.dropped_lits = row.at("dropped_lits").as_uint();
      g.switches = row.at("switches").as_uint();
    }
  }
  s.num_strategy_switches = v.at("strategy_switches").as_uint();
  s.num_exchange_published = v.at("exchange_published").as_uint();
  s.num_exchange_imported = v.at("exchange_imported").as_uint();
  s.num_exchange_rejected = v.at("exchange_rejected").as_uint();
  s.num_exchange_skipped = v.at("exchange_skipped").as_uint();
  // Certification fields (PR 9): absent in older rows — null/0 fallback.
  s.num_cert_checks = v.at("cert_checks").as_uint();
  s.num_cert_failures = v.at("cert_failures").as_uint();
  // Inprocessing / batched-probe fields (PR 7): absent in older rows —
  // the same null/0 fallback keeps pre-existing baselines loadable.
  s.sat_subsumed_clauses = v.at("sat_subsumed").as_uint();
  s.sat_strengthened_clauses = v.at("sat_strengthened").as_uint();
  s.sat_vivified_literals = v.at("sat_vivified_lits").as_uint();
  s.sat_probe_failed_literals = v.at("sat_probe_failed_lits").as_uint();
  s.sat_scc_merged_vars = v.at("sat_scc_merged").as_uint();
  s.num_batched_drop_solves = v.at("batched_drop_solves").as_uint();
  s.num_batched_drop_answers = v.at("batched_drop_answers").as_uint();
  s.num_adaptive_batch_updates = v.at("adaptive_batch_updates").as_uint();
  s.adaptive_batch_width_sum = v.at("adaptive_batch_width_sum").as_uint();
  s.num_rebuild_subsumed = v.at("rebuild_subsumed").as_uint();
  // Timing + phases (PR 8): absent in older rows — the same null/0
  // fallback applies, and phase names a future build no longer knows are
  // skipped rather than rejected.
  s.time_total = v.at("time_total").as_double();
  s.time_generalize = v.at("time_generalize").as_double();
  s.time_predict = v.at("time_predict").as_double();
  s.time_propagate = v.at("time_propagate").as_double();
  if (v.at("phases").is_object()) {
    for (const auto& [name, entry] : v.at("phases").as_object()) {
      const std::optional<obs::Phase> p = obs::phase_from_name(name);
      if (!p.has_value()) continue;
      s.phases.add(*p, entry.at("seconds").as_double(),
                   entry.at("calls").as_uint());
    }
  }
  return s;
}

json::Value to_json(const RunRow& row) {
  const check::RunRecord& r = row.record;
  json::Object o;
  o["case"] = r.case_name;
  o["family"] = r.family;
  json::Array tags;
  for (const std::string& t : r.tags) tags.push_back(t);
  o["tags"] = std::move(tags);
  o["engine"] = r.engine;
  o["expected"] = to_string(r.expected);
  o["verdict"] = ic3::to_string(r.verdict);
  o["solved"] = r.solved;
  o["seconds"] = r.seconds;
  o["frames"] = r.frames;
  if (!r.error.empty()) o["error"] = r.error;
  // Certificate fields (PR 9): emitted only when certification ran, so
  // rows written without --certify stay byte-identical to older builds.
  if (!r.cert_status.empty()) o["cert_status"] = r.cert_status;
  if (!r.cert_path.empty()) o["cert_path"] = r.cert_path;
  // Serving-layer fields (PR 10): the canonical structure hash + shape
  // features every loaded case records (advisor history), and the
  // cache/advisor outcomes when a cache or advisor was attached.  All
  // absent in older rows; the loader's null/0 fallbacks keep existing
  // baselines loadable without regeneration.
  if (!r.content_hash.empty()) {
    o["content_hash"] = r.content_hash;
    o["inputs"] = r.num_inputs;
    o["latches"] = r.num_latches;
    o["ands"] = r.num_ands;
  }
  if (!r.cache_status.empty()) o["cache"] = r.cache_status;
  if (!r.advice.empty()) o["advice"] = r.advice;
  o["stats"] = stats_to_json(r.stats);
  o["corpus"] = row.context.corpus;
  o["commit"] = row.context.commit;
  o["timestamp"] = row.context.timestamp;
  o["budget_ms"] = row.context.budget_ms;
  o["seed"] = row.context.seed;
  if (!row.context.gen_spec.empty()) o["gen"] = row.context.gen_spec;
  return json::Value(std::move(o));
}

RunRow row_from_json(const json::Value& v) {
  RunRow row;
  check::RunRecord& r = row.record;
  r.case_name = v.at("case").as_string();
  r.engine = v.at("engine").as_string();
  if (r.case_name.empty() || r.engine.empty()) {
    throw std::runtime_error("results row missing \"case\" or \"engine\"");
  }
  r.family = v.at("family").as_string();
  for (const json::Value& t : v.at("tags").as_array()) {
    r.tags.push_back(t.as_string());
  }
  r.expected = expected_from_string(v.at("expected").as_string());
  r.verdict = verdict_from_string(v.at("verdict").as_string());
  r.solved = v.at("solved").as_bool();
  r.seconds = v.at("seconds").as_double();
  r.frames = v.at("frames").as_uint();
  r.error = v.at("error").as_string();
  r.cert_status = v.at("cert_status").as_string();  // absent in old rows
  r.cert_path = v.at("cert_path").as_string();      // absent in old rows
  // Serving-layer fields (PR 10) — absent in old rows, same tolerance.
  r.content_hash = v.at("content_hash").as_string();
  r.num_inputs = v.at("inputs").as_uint();
  r.num_latches = v.at("latches").as_uint();
  r.num_ands = v.at("ands").as_uint();
  r.cache_status = v.at("cache").as_string();
  r.advice = v.at("advice").as_string();
  r.stats = stats_from_json(v.at("stats"));
  row.context.corpus = v.at("corpus").as_string();
  row.context.commit = v.at("commit").as_string();
  row.context.timestamp = v.at("timestamp").as_string();
  row.context.budget_ms = v.at("budget_ms").as_int();
  row.context.seed = v.at("seed").as_uint();
  row.context.gen_spec = v.at("gen").as_string();  // absent in old rows
  return row;
}

std::string now_utc_iso8601() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string campaign_commit() {
  for (const char* var : {"PILOT_COMMIT", "GITHUB_SHA"}) {
    const char* value = std::getenv(var);
    if (value != nullptr && value[0] != '\0') return value;
  }
  return "";
}

ic3::Verdict verdict_from_string(const std::string& text) {
  if (text == "SAFE") return ic3::Verdict::kSafe;
  if (text == "UNSAFE") return ic3::Verdict::kUnsafe;
  return ic3::Verdict::kUnknown;
}

RunContext make_run_context(std::string corpus, std::int64_t budget_ms,
                            std::uint64_t seed, std::string gen_spec) {
  RunContext ctx;
  ctx.corpus = std::move(corpus);
  ctx.commit = campaign_commit();
  ctx.timestamp = now_utc_iso8601();
  ctx.budget_ms = budget_ms;
  ctx.seed = seed;
  ctx.gen_spec = std::move(gen_spec);
  return ctx;
}

bool record_mismatch(const check::RunRecord& record) {
  return record.solved && record.expected != Expected::kUnknown &&
         expected_from_safe(record.verdict == ic3::Verdict::kSafe) !=
             record.expected;
}

CampaignSummary summarize_campaign(
    const std::vector<check::RunRecord>& records) {
  CampaignSummary s;
  s.total = records.size();
  for (const check::RunRecord& r : records) {
    if (!r.error.empty()) {
      ++s.errors;
    } else if (r.solved) {
      ++s.solved;
      if (record_mismatch(r)) ++s.mismatches;
    } else {
      ++s.unknown;
    }
  }
  return s;
}

ResultsDb ResultsDb::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("results db: cannot open " + path);
  ResultsDb db;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Tolerate blank lines (e.g. from `cat`-merged files).
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      db.add(row_from_json(json::parse(line)));
    } catch (const std::exception& e) {
      throw std::runtime_error("results db " + path + ":" +
                               std::to_string(line_no) + ": " + e.what());
    }
  }
  return db;
}

void ResultsDb::merge(const ResultsDb& other) {
  for (const RunRow& row : other.rows_) rows_.push_back(row);
  dedup();
}

void ResultsDb::dedup() {
  std::unordered_map<std::string, std::size_t> last;
  for (std::size_t i = 0; i < rows_.size(); ++i) last[rows_[i].key()] = i;
  std::vector<RunRow> kept;
  kept.reserve(last.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (last.at(rows_[i].key()) == i) kept.push_back(std::move(rows_[i]));
  }
  rows_ = std::move(kept);
}

std::vector<RunRow> ResultsDb::query(const std::string& engine,
                                     const std::string& case_substr) const {
  std::vector<RunRow> out;
  for (const RunRow& row : rows_) {
    if (!engine.empty() && row.record.engine != engine) continue;
    if (!case_substr.empty() &&
        row.record.case_name.find(case_substr) == std::string::npos) {
      continue;
    }
    out.push_back(row);
  }
  return out;
}

std::vector<std::string> ResultsDb::engines() const {
  std::vector<std::string> out;
  for (const RunRow& row : rows_) {
    bool seen = false;
    for (const std::string& e : out) {
      if (e == row.record.engine) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(row.record.engine);
  }
  return out;
}

void ResultsDb::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("results db: cannot write " + path);
  for (const RunRow& row : rows_) out << to_json(row).dump() << "\n";
}

ResultsDb::Writer::Writer(const std::string& path, bool truncate) {
  if (path.empty()) {
    stream_ = stdout;
    owns_stream_ = false;
    return;
  }
  stream_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (stream_ == nullptr) {
    throw std::runtime_error("results db: cannot open " + path +
                             " for writing");
  }
  owns_stream_ = true;
}

ResultsDb::Writer::~Writer() {
  if (owns_stream_ && stream_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(stream_));
  }
}

void ResultsDb::Writer::append(const RunRow& row) {
  auto* f = static_cast<std::FILE*>(stream_);
  const std::string line = to_json(row).dump();
  std::fwrite(line.data(), 1, line.size(), f);
  std::fputc('\n', f);
  std::fflush(f);
  ++rows_written_;
}

namespace {

DiffEntry make_entry(const RunRow& base, const RunRow& cur) {
  DiffEntry e;
  e.case_name = base.record.case_name;
  e.engine = base.record.engine;
  e.base_verdict = base.record.verdict;
  e.cur_verdict = cur.record.verdict;
  e.base_seconds = base.record.seconds;
  e.cur_seconds = cur.record.seconds;
  return e;
}

void describe(std::ostringstream& out, const char* label,
              const std::vector<DiffEntry>& entries, bool with_time) {
  if (entries.empty()) return;
  out << label << " (" << entries.size() << "):\n";
  for (const DiffEntry& e : entries) {
    out << "  " << e.case_name << " × " << e.engine << ": "
        << ic3::to_string(e.base_verdict) << " -> "
        << ic3::to_string(e.cur_verdict);
    if (with_time) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "  (%.3fs -> %.3fs)", e.base_seconds,
                    e.cur_seconds);
      out << buf;
    }
    out << "\n";
  }
}

}  // namespace

std::string DiffReport::summary(const DiffOptions& options) const {
  std::ostringstream out;
  describe(out, "VERDICT FLIPS — soundness alarm", verdict_flips, false);
  describe(out, "newly unsolved", newly_unsolved, true);
  describe(out, "time regressions", time_regressions, true);
  describe(out, "newly solved", newly_solved, true);
  if (!only_in_baseline.empty()) {
    out << "only in baseline (" << only_in_baseline.size() << "):\n";
    for (const std::string& k : only_in_baseline) out << "  " << k << "\n";
  }
  if (!only_in_current.empty()) {
    out << "only in current (" << only_in_current.size() << "):\n";
    for (const std::string& k : only_in_current) out << "  " << k << "\n";
  }
  if (out.str().empty()) out << "no differences\n";
  out << (failed(options) ? "RESULT: REGRESSION" : "RESULT: OK") << "\n";
  return out.str();
}

DiffReport diff_runs(const ResultsDb& baseline, const ResultsDb& current,
                     const DiffOptions& options) {
  ResultsDb base = baseline;
  ResultsDb cur = current;
  base.dedup();
  cur.dedup();

  std::unordered_map<std::string, const RunRow*> cur_by_key;
  for (const RunRow& row : cur.rows()) cur_by_key[row.key()] = &row;

  DiffReport report;
  std::unordered_map<std::string, bool> base_keys;
  for (const RunRow& b : base.rows()) {
    base_keys[b.key()] = true;
    const auto it = cur_by_key.find(b.key());
    const std::string pretty = b.record.case_name + " × " + b.record.engine;
    if (it == cur_by_key.end()) {
      report.only_in_baseline.push_back(pretty);
      continue;
    }
    const RunRow& c = *it->second;
    const bool base_solved = b.record.solved;
    const bool cur_solved = c.record.solved;
    if (base_solved && cur_solved &&
        b.record.verdict != c.record.verdict) {
      report.verdict_flips.push_back(make_entry(b, c));
      continue;
    }
    if (base_solved && !cur_solved) {
      report.newly_unsolved.push_back(make_entry(b, c));
      continue;
    }
    if (!base_solved && cur_solved) {
      report.newly_solved.push_back(make_entry(b, c));
      continue;
    }
    if (base_solved && cur_solved) {
      const double slower = std::max(b.record.seconds, c.record.seconds);
      if (slower >= options.min_seconds && b.record.seconds > 0.0 &&
          c.record.seconds / b.record.seconds > options.time_ratio) {
        report.time_regressions.push_back(make_entry(b, c));
      }
    }
  }
  for (const RunRow& c : cur.rows()) {
    if (base_keys.find(c.key()) == base_keys.end()) {
      report.only_in_current.push_back(c.record.case_name + " × " +
                                       c.record.engine);
    }
  }
  return report;
}

}  // namespace pilot::corpus
