/// Lifter tests: both SAT-core and ternary-simulation lifting must produce
/// cubes whose every completion still reaches the target — verified by an
/// independent SAT query — and should genuinely shrink cubes with
/// irrelevant latches.
#include <gtest/gtest.h>

#include "circuits/builder.hpp"
#include "circuits/families.hpp"
#include "ic3/lifter.hpp"
#include "ic3/solver_manager.hpp"
#include "ts/transition_system.hpp"

namespace pilot::ic3 {
namespace {

/// A circuit where most latches are irrelevant to the property: an 8-bit
/// free counter plus a 1-bit flag latch; bad = flag & (count == 3).
struct LiftFixture {
  explicit LiftFixture(Config::LiftMode mode) {
    aig::Aig a;
    const aig::AigLit set_flag = a.add_input("set");
    const circuits::Word count = circuits::make_latches(a, 8, 0, "count");
    const aig::AigLit flag = a.add_latch(aig::l_False, "flag");
    circuits::connect(a, count, circuits::increment(a, count));
    a.set_next(flag, a.make_or(flag, set_flag));
    a.add_bad(a.make_and(flag, circuits::equals_const(a, count, 3)));
    ts = std::make_unique<ts::TransitionSystem>(
        ts::TransitionSystem::from_aig(a));
    cfg.lift_mode = mode;
    lifter = std::make_unique<Lifter>(*ts, cfg, stats);
    solvers = std::make_unique<SolverManager>(*ts, cfg, stats);
    solvers->ensure_level(1);
  }

  /// Full state cube: count value + flag bit.
  Cube full_state(std::uint64_t count_value, bool flag_value) {
    std::vector<Lit> lits;
    for (std::size_t i = 0; i < 8; ++i) {
      lits.push_back(Lit::make(ts->state_var(i),
                               ((count_value >> i) & 1ULL) == 0));
    }
    lits.push_back(Lit::make(ts->state_var(8), !flag_value));
    return Cube::from_lits(std::move(lits));
  }

  /// Independent validation: every state in `cube` with `inputs` must step
  /// into `successor`:  UNSAT(cube ∧ inputs ∧ T ∧ ¬successor′).
  bool lift_is_valid(const Cube& cube, const std::vector<Lit>& inputs,
                     const Cube& successor) {
    sat::Solver s;
    ts->install(s);
    const Lit act = Lit::make(s.new_var());
    std::vector<Lit> clause{~act};
    for (const Lit l : successor) clause.push_back(~ts->prime(l));
    s.add_clause(clause);
    std::vector<Lit> assumptions{act};
    for (const Lit l : inputs) assumptions.push_back(l);
    for (const Lit l : cube) assumptions.push_back(l);
    return s.solve(assumptions) == sat::SolveResult::kUnsat;
  }

  std::unique_ptr<ts::TransitionSystem> ts;
  Config cfg;
  Ic3Stats stats;
  std::unique_ptr<Lifter> lifter;
  std::unique_ptr<SolverManager> solvers;
};

class LifterModes : public ::testing::TestWithParam<Config::LiftMode> {};

TEST_P(LifterModes, PredecessorLiftIsSoundAndShrinks) {
  LiftFixture f(GetParam());
  // Predecessor (count=2, flag=1) with no set input steps to
  // (count=3, flag=1); the successor cube is just {flag, count==3}'s
  // pre-image target: pick successor = full state (3, true).
  const Cube pred = f.full_state(2, true);
  const Cube succ = f.full_state(3, true);
  const std::vector<Lit> inputs{Lit::make(f.ts->input_var(0), true)};
  const Cube lifted = f.lifter->lift_predecessor(pred, inputs, succ, {});
  EXPECT_TRUE(lifted.subset_of(pred));
  EXPECT_TRUE(f.lift_is_valid(lifted, inputs, succ)) << lifted.to_string();
  if (GetParam() == Config::LiftMode::kNone) {
    EXPECT_EQ(lifted, pred);
  }
}

TEST_P(LifterModes, BadLiftDropsIrrelevantLatches) {
  LiftFixture f(GetParam());
  // State (count=3, flag=1) raises bad regardless of the input.
  const Cube state = f.full_state(3, true);
  const std::vector<Lit> inputs{Lit::make(f.ts->input_var(0), true)};
  const Cube lifted = f.lifter->lift_bad(state, inputs, {});
  EXPECT_TRUE(lifted.subset_of(state));
  if (GetParam() != Config::LiftMode::kNone) {
    // All 9 latches matter here (count==3 needs all count bits + flag)...
    // so instead check on a state where bad is *not* raised via count:
    // nothing shrinks below what keeps bad provable.
    EXPECT_EQ(lifted.size(), 9u);
  }
}

TEST_P(LifterModes, SuccessorTargetWithFewLiterals) {
  LiftFixture f(GetParam());
  // Successor target: {flag=1} only.  From (count=7, flag=1), any input
  // keeps flag=1 — the count bits are irrelevant and should be dropped by
  // both lifting strategies.
  const Cube pred = f.full_state(7, true);
  const Cube succ = Cube::from_lits({Lit::make(f.ts->state_var(8))});
  const std::vector<Lit> inputs{Lit::make(f.ts->input_var(0), true)};
  const Cube lifted = f.lifter->lift_predecessor(pred, inputs, succ, {});
  EXPECT_TRUE(f.lift_is_valid(lifted, inputs, succ));
  if (GetParam() != Config::LiftMode::kNone) {
    EXPECT_LE(lifted.size(), 1u) << lifted.to_string();
    EXPECT_TRUE(lifted.contains(Lit::make(f.ts->state_var(8))));
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, LifterModes,
                         ::testing::Values(Config::LiftMode::kSat,
                                           Config::LiftMode::kTernary,
                                           Config::LiftMode::kNone),
                         [](const auto& info) {
                           switch (info.param) {
                             case Config::LiftMode::kSat: return "sat";
                             case Config::LiftMode::kTernary:
                               return "ternary";
                             default: return "none";
                           }
                         });

TEST(Lifter, TernaryRespectsConstraints) {
  // Constrained shift register: the input is forced low; lifting a
  // predecessor must keep enough literals that the constraint evaluation
  // stays definite-true.
  const auto cc = circuits::shift_register(4, true);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  Config cfg;
  cfg.lift_mode = Config::LiftMode::kTernary;
  Ic3Stats stats;
  Lifter lifter(ts, cfg, stats);
  // Predecessor: all stages 0; successor: all stages 0; input 0.
  std::vector<Lit> state_lits;
  for (std::size_t i = 0; i < ts.num_latches(); ++i) {
    state_lits.push_back(Lit::make(ts.state_var(i), true));
  }
  const Cube pred = Cube::from_lits(state_lits);
  const Cube succ = pred;
  const std::vector<Lit> inputs{Lit::make(ts.input_var(0), true)};
  const Cube lifted = lifter.lift_predecessor(pred, inputs, succ, {});
  EXPECT_TRUE(lifted.subset_of(pred));
  EXPECT_FALSE(lifted.empty());
}

}  // namespace
}  // namespace pilot::ic3
