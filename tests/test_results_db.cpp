/// Results-database tests: JSONL round trips (write → load), append-only
/// writer semantics, merge/dedup keying, query filters, and the full diff
/// matrix — identical, verdict flip, newly unsolved/solved, time
/// regression, missing rows.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "corpus/results_db.hpp"
#include "util/json.hpp"

namespace fs = std::filesystem;

namespace pilot::corpus {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name) {
    path_ = (fs::temp_directory_path() /
             ("pilot_results_test_" + name + "_" +
              std::to_string(
                  ::testing::UnitTest::GetInstance()->random_seed()) +
              ".jsonl"))
                .string();
    fs::remove(path_);
  }
  ~TempFile() { fs::remove(path_); }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  std::string path_;
};

RunRow make_row(const std::string& case_name, const std::string& engine,
                ic3::Verdict verdict, double seconds) {
  RunRow row;
  row.record.case_name = case_name;
  row.record.family = "aiger";
  row.record.tags = {"t1", "t2"};
  row.record.engine = engine;
  row.record.expected = Expected::kSafe;
  row.record.verdict = verdict;
  row.record.solved = verdict != ic3::Verdict::kUnknown;
  row.record.seconds = seconds;
  row.record.frames = 7;
  row.record.stats.num_generalizations = 42;
  row.record.stats.num_prediction_queries = 17;
  row.record.stats.num_successful_predictions = 9;
  row.record.stats.max_frame = 7;
  row.context.corpus = "suite:tiny";
  row.context.commit = "deadbeef";
  row.context.timestamp = "2026-07-28T00:00:00Z";
  row.context.budget_ms = 2000;
  row.context.seed = 3;
  return row;
}

TEST(ResultsDb, JsonRoundTripPreservesEveryField) {
  const RunRow row = make_row("ring_7", "ic3-ctg-pl", ic3::Verdict::kSafe,
                              1.25);
  const RunRow back = row_from_json(json::parse(to_json(row).dump()));
  EXPECT_EQ(back.record.case_name, "ring_7");
  EXPECT_EQ(back.record.family, "aiger");
  EXPECT_EQ(back.record.tags, row.record.tags);
  EXPECT_EQ(back.record.engine, "ic3-ctg-pl");
  EXPECT_EQ(back.record.expected, Expected::kSafe);
  EXPECT_EQ(back.record.verdict, ic3::Verdict::kSafe);
  EXPECT_TRUE(back.record.solved);
  EXPECT_DOUBLE_EQ(back.record.seconds, 1.25);
  EXPECT_EQ(back.record.frames, 7u);
  EXPECT_EQ(back.record.stats.num_generalizations, 42u);
  EXPECT_EQ(back.record.stats.num_prediction_queries, 17u);
  EXPECT_EQ(back.record.stats.num_successful_predictions, 9u);
  EXPECT_EQ(back.record.stats.max_frame, 7u);
  EXPECT_EQ(back.context.corpus, "suite:tiny");
  EXPECT_EQ(back.context.commit, "deadbeef");
  EXPECT_EQ(back.context.timestamp, "2026-07-28T00:00:00Z");
  EXPECT_EQ(back.context.budget_ms, 2000);
  EXPECT_EQ(back.context.seed, 3u);
}

TEST(ResultsDb, WriterAppendsAndLoadReadsBack) {
  TempFile file("roundtrip");
  {
    ResultsDb::Writer writer(file.str());
    writer.append(make_row("a", "ic3-ctg", ic3::Verdict::kSafe, 0.5));
    writer.append(make_row("b", "ic3-ctg", ic3::Verdict::kUnsafe, 0.7));
    EXPECT_EQ(writer.rows_written(), 2u);
  }
  {
    // Append mode: a second writer extends, not truncates.
    ResultsDb::Writer writer(file.str());
    writer.append(make_row("c", "bmc", ic3::Verdict::kUnknown, 2.0));
  }
  const ResultsDb db = ResultsDb::load(file.str());
  ASSERT_EQ(db.rows().size(), 3u);
  EXPECT_EQ(db.rows()[0].record.case_name, "a");
  EXPECT_EQ(db.rows()[2].record.engine, "bmc");

  const auto engines = db.engines();
  ASSERT_EQ(engines.size(), 2u);
  EXPECT_EQ(engines[0], "ic3-ctg");
  EXPECT_EQ(engines[1], "bmc");
}

TEST(ResultsDb, LoadRejectsCorruptRows) {
  TempFile file("corrupt");
  std::ofstream out(file.str(), std::ios::binary);
  out << to_json(make_row("a", "bmc", ic3::Verdict::kSafe, 0.1)).dump()
      << "\n"
      << "{this is not json}\n";
  out.close();
  EXPECT_THROW((void)ResultsDb::load(file.str()), std::runtime_error);
  EXPECT_THROW((void)ResultsDb::load("/no/such/file.jsonl"),
               std::runtime_error);
}

TEST(ResultsDb, MergeKeepsLastRowPerCaseEngineKey) {
  ResultsDb db;
  db.add(make_row("a", "ic3-ctg", ic3::Verdict::kSafe, 0.5));
  db.add(make_row("b", "ic3-ctg", ic3::Verdict::kSafe, 0.6));

  ResultsDb newer;
  newer.add(make_row("a", "ic3-ctg", ic3::Verdict::kSafe, 0.1));  // re-run
  newer.add(make_row("a", "bmc", ic3::Verdict::kUnknown, 2.0));   // new key

  db.merge(newer);
  ASSERT_EQ(db.rows().size(), 3u);
  // The re-run superseded the original "a × ic3-ctg" row.
  const auto rows = db.query("ic3-ctg", "a");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].record.seconds, 0.1);
}

TEST(ResultsDb, QueryFiltersByEngineAndSubstring) {
  ResultsDb db;
  db.add(make_row("ring_4", "ic3-ctg", ic3::Verdict::kSafe, 0.1));
  db.add(make_row("ring_8", "ic3-ctg", ic3::Verdict::kSafe, 0.2));
  db.add(make_row("ring_4", "bmc", ic3::Verdict::kUnknown, 1.0));
  EXPECT_EQ(db.query("ic3-ctg", "").size(), 2u);
  EXPECT_EQ(db.query("", "ring_4").size(), 2u);
  EXPECT_EQ(db.query("bmc", "ring_4").size(), 1u);
  EXPECT_EQ(db.query("pdr", "").size(), 0u);
}

TEST(Diff, IdenticalRunsAreClean) {
  ResultsDb db;
  db.add(make_row("a", "ic3-ctg", ic3::Verdict::kSafe, 0.5));
  db.add(make_row("b", "bmc", ic3::Verdict::kUnknown, 2.0));
  const DiffOptions options;
  const DiffReport report = diff_runs(db, db, options);
  EXPECT_FALSE(report.failed(options));
  EXPECT_FALSE(report.hard_failure());
  EXPECT_TRUE(report.verdict_flips.empty());
  EXPECT_TRUE(report.newly_unsolved.empty());
  EXPECT_TRUE(report.time_regressions.empty());
  EXPECT_NE(report.summary(options).find("RESULT: OK"), std::string::npos);
}

TEST(Diff, VerdictFlipIsAHardFailure) {
  ResultsDb base;
  base.add(make_row("a", "ic3-ctg", ic3::Verdict::kSafe, 0.5));
  ResultsDb cur;
  cur.add(make_row("a", "ic3-ctg", ic3::Verdict::kUnsafe, 0.5));
  const DiffOptions options;
  const DiffReport report = diff_runs(base, cur, options);
  ASSERT_EQ(report.verdict_flips.size(), 1u);
  EXPECT_EQ(report.verdict_flips[0].case_name, "a");
  EXPECT_TRUE(report.hard_failure());
  EXPECT_TRUE(report.failed(options));
  EXPECT_NE(report.summary(options).find("REGRESSION"), std::string::npos);
}

TEST(Diff, NewlyUnsolvedFailsNewlySolvedDoesNot) {
  ResultsDb base;
  base.add(make_row("a", "ic3-ctg", ic3::Verdict::kSafe, 0.5));
  base.add(make_row("b", "ic3-ctg", ic3::Verdict::kUnknown, 2.0));
  ResultsDb cur;
  cur.add(make_row("a", "ic3-ctg", ic3::Verdict::kUnknown, 2.0));
  cur.add(make_row("b", "ic3-ctg", ic3::Verdict::kSafe, 0.5));
  const DiffOptions options;
  const DiffReport report = diff_runs(base, cur, options);
  ASSERT_EQ(report.newly_unsolved.size(), 1u);
  EXPECT_EQ(report.newly_unsolved[0].case_name, "a");
  ASSERT_EQ(report.newly_solved.size(), 1u);
  EXPECT_EQ(report.newly_solved[0].case_name, "b");
  EXPECT_TRUE(report.failed(options));

  // The improvement alone is not a failure.
  ResultsDb cur2;
  cur2.add(make_row("a", "ic3-ctg", ic3::Verdict::kSafe, 0.5));
  cur2.add(make_row("b", "ic3-ctg", ic3::Verdict::kSafe, 0.5));
  EXPECT_FALSE(diff_runs(base, cur2, options).failed(options));
}

TEST(Diff, TimeRegressionRespectsThresholdAndFloor) {
  ResultsDb base;
  base.add(make_row("slow", "ic3-ctg", ic3::Verdict::kSafe, 1.0));
  base.add(make_row("tiny", "ic3-ctg", ic3::Verdict::kSafe, 0.01));
  ResultsDb cur;
  cur.add(make_row("slow", "ic3-ctg", ic3::Verdict::kSafe, 2.0));
  cur.add(make_row("tiny", "ic3-ctg", ic3::Verdict::kSafe, 0.05));  // 5× but tiny

  DiffOptions options;
  options.time_ratio = 1.5;
  options.min_seconds = 0.25;
  const DiffReport report = diff_runs(base, cur, options);
  ASSERT_EQ(report.time_regressions.size(), 1u);  // floor filtered "tiny"
  EXPECT_EQ(report.time_regressions[0].case_name, "slow");
  EXPECT_FALSE(report.failed(options));  // reported, not failed

  options.fail_on_time = true;
  EXPECT_TRUE(report.failed(options));

  options.fail_on_time = false;
  options.time_ratio = 3.0;
  EXPECT_TRUE(diff_runs(base, cur, options).time_regressions.empty());
}

TEST(Diff, MissingRowsAreReportedInformationally) {
  ResultsDb base;
  base.add(make_row("a", "ic3-ctg", ic3::Verdict::kSafe, 0.5));
  base.add(make_row("gone", "ic3-ctg", ic3::Verdict::kSafe, 0.5));
  ResultsDb cur;
  cur.add(make_row("a", "ic3-ctg", ic3::Verdict::kSafe, 0.5));
  cur.add(make_row("new", "ic3-ctg", ic3::Verdict::kSafe, 0.5));
  const DiffOptions options;
  const DiffReport report = diff_runs(base, cur, options);
  ASSERT_EQ(report.only_in_baseline.size(), 1u);
  ASSERT_EQ(report.only_in_current.size(), 1u);
  EXPECT_FALSE(report.failed(options));
}

TEST(Diff, FullPipelineWriteLoadMergeDiff) {
  // The satellite round trip in one flow: write two campaign files, load,
  // merge (second supersedes), diff against the first.
  TempFile base_file("base");
  TempFile fix_file("fix");
  {
    ResultsDb::Writer writer(base_file.str());
    writer.append(make_row("a", "ic3-ctg", ic3::Verdict::kSafe, 0.5));
    writer.append(make_row("b", "ic3-ctg", ic3::Verdict::kUnknown, 2.0));
  }
  {
    ResultsDb::Writer writer(fix_file.str());
    writer.append(make_row("b", "ic3-ctg", ic3::Verdict::kSafe, 0.4));
  }
  ResultsDb merged = ResultsDb::load(base_file.str());
  merged.merge(ResultsDb::load(fix_file.str()));
  ASSERT_EQ(merged.rows().size(), 2u);

  const DiffOptions options;
  const DiffReport report =
      diff_runs(ResultsDb::load(base_file.str()), merged, options);
  EXPECT_EQ(report.newly_solved.size(), 1u);
  EXPECT_FALSE(report.failed(options));
}

}  // namespace
}  // namespace pilot::corpus
