/// Witness checker tests: valid artifacts pass; corrupted traces and
/// non-inductive "invariants" are rejected with a reason.
#include <gtest/gtest.h>

#include "circuits/families.hpp"
#include "ic3/engine.hpp"
#include "ic3/witness.hpp"
#include "ts/transition_system.hpp"

namespace pilot::ic3 {
namespace {

TEST(Witness, ValidTracePasses) {
  const auto cc = circuits::counter_unsafe(4, 5);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  Engine engine(ts, {});
  const Result r = engine.check();
  ASSERT_EQ(r.verdict, Verdict::kUnsafe);
  EXPECT_TRUE(check_trace(ts, *r.trace).ok);
}

TEST(Witness, EmptyTraceRejected) {
  const auto cc = circuits::counter_unsafe(4, 5);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  const CheckOutcome out = check_trace(ts, Trace{});
  EXPECT_FALSE(out.ok);
  EXPECT_FALSE(out.reason.empty());
}

TEST(Witness, TraceNotStartingInInitRejected) {
  const auto cc = circuits::counter_unsafe(3, 2);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  // State count=1 does not intersect I = {count=0}.
  std::vector<Lit> lits{Lit::make(ts.state_var(0))};
  Trace trace;
  trace.states.push_back(Cube::from_lits(std::move(lits)));
  trace.inputs.push_back({});
  EXPECT_FALSE(check_trace(ts, trace).ok);
}

TEST(Witness, TraceWithoutBadAtEndRejected) {
  const auto cc = circuits::counter_unsafe(3, 5);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  // A single-state "trace" in I where bad does not hold.
  Trace trace;
  trace.states.push_back(Cube::from_lits({Lit::make(ts.state_var(0), true)}));
  trace.inputs.push_back({});
  const CheckOutcome out = check_trace(ts, trace);
  EXPECT_FALSE(out.ok);
}

TEST(Witness, TruncatedInputsRejected) {
  const auto cc = circuits::shift_register(3, false);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  Trace trace;
  trace.states.push_back(Cube{});
  trace.states.push_back(Cube{});
  trace.inputs.push_back({});  // one input vector short
  EXPECT_FALSE(check_trace(ts, trace).ok);
}

TEST(Witness, ValidInvariantPasses) {
  const auto cc = circuits::token_ring_safe(5);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  Engine engine(ts, {});
  const Result r = engine.check();
  ASSERT_EQ(r.verdict, Verdict::kSafe);
  EXPECT_TRUE(check_invariant(ts, *r.invariant).ok);
}

TEST(Witness, NonInductiveInvariantRejected) {
  const auto cc = circuits::counter_unsafe(4, 9);  // actually unsafe!
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  // Claim "count != 9" as a one-clause invariant: it is not inductive
  // (count=8 steps into 9) — consecution must fail.
  InductiveInvariant inv;
  std::vector<Lit> lits;
  for (std::size_t i = 0; i < ts.num_latches(); ++i) {
    lits.push_back(Lit::make(ts.state_var(i), ((9u >> i) & 1u) == 0));
  }
  inv.lemma_cubes.push_back(Cube::from_lits(std::move(lits)));
  const CheckOutcome out = check_invariant(ts, inv);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.reason.find("consecution"), std::string::npos);
}

TEST(Witness, InvariantViolatingInitiationRejected) {
  const auto cc = circuits::counter_wrap_safe(4, 8, 14);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  // A lemma blocking the initial state itself: initiation must fail.
  InductiveInvariant inv;
  std::vector<Lit> lits;
  for (std::size_t i = 0; i < ts.num_latches(); ++i) {
    lits.push_back(Lit::make(ts.state_var(i), true));  // count == 0
  }
  inv.lemma_cubes.push_back(Cube::from_lits(std::move(lits)));
  const CheckOutcome out = check_invariant(ts, inv);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.reason.find("initiation"), std::string::npos);
}

TEST(Witness, InvariantNotExcludingBadRejected) {
  // An otherwise-inductive invariant that fails to rule out the bad cone.
  const auto cc = circuits::counter_wrap_safe(3, 4, 6);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  InductiveInvariant inv;  // empty invariant = ⊤: trivially inductive
  const CheckOutcome out = check_invariant(ts, inv);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.reason.find("bad"), std::string::npos);
}

TEST(Witness, AigerWitnessFormat) {
  // shift_register(3): cex needs input 1 then anything; check the emitted
  // HWMCC stimulus structure and that its inputs replay to bad.
  const auto cc = circuits::shift_register(3, false);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  Engine engine(ts, {});
  const Result r = engine.check();
  ASSERT_EQ(r.verdict, Verdict::kUnsafe);
  const std::string w = to_aiger_witness(ts, *r.trace, 0);
  // Structure: "1", "b0", latch line, ≥1 input lines, ".".
  std::istringstream iss(w);
  std::string line;
  ASSERT_TRUE(std::getline(iss, line));
  EXPECT_EQ(line, "1");
  ASSERT_TRUE(std::getline(iss, line));
  EXPECT_EQ(line, "b0");
  ASSERT_TRUE(std::getline(iss, line));
  EXPECT_EQ(line.size(), ts.num_latches());
  EXPECT_EQ(line, std::string(ts.num_latches(), '0'));  // all-zero reset
  std::size_t input_lines = 0;
  while (std::getline(iss, line) && line != ".") {
    EXPECT_EQ(line.size(), ts.num_inputs());
    for (const char c : line) EXPECT_TRUE(c == '0' || c == '1');
    ++input_lines;
  }
  EXPECT_EQ(line, ".");
  EXPECT_EQ(input_lines, r.trace->length());
}

TEST(Witness, AigerWitnessReportsPropertyIndex) {
  const auto cc = circuits::counter_unsafe(3, 2);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  Engine engine(ts, {});
  const Result r = engine.check();
  ASSERT_EQ(r.verdict, Verdict::kUnsafe);
  const std::string w = to_aiger_witness(ts, *r.trace, 3);
  EXPECT_NE(w.find("b3\n"), std::string::npos);
}

TEST(Witness, EngineTracesAcrossFamiliesReplay) {
  for (const auto& cc :
       {circuits::token_ring_unsafe(5), circuits::twin_counters_unsafe(4),
        circuits::gray_counter_unsafe(4), circuits::fifo_unsafe(3, 5)}) {
    const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
    Engine engine(ts, {});
    const Result r = engine.check();
    ASSERT_EQ(r.verdict, Verdict::kUnsafe) << cc.name;
    const CheckOutcome out = check_trace(ts, *r.trace);
    EXPECT_TRUE(out.ok) << cc.name << ": " << out.reason;
  }
}

}  // namespace
}  // namespace pilot::ic3
