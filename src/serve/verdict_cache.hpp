/// \file verdict_cache.hpp
/// Content-addressed verdict cache: the first tier of the serving layer
/// ("pilot-serve").
///
/// Keyed by the *canonical* AIG hash (aig::canonical_hash_hex — the parsed,
/// comment-stripped structure, not the raw file bytes), so whitespace,
/// comment, and symbol-table variants of a circuit hit the same entry while
/// any structural edit misses.  Each entry embeds the full certificate text
/// alongside the verdict, which makes a cache file self-contained: no
/// dangling cert-path references, and — crucially — a hit is served only
/// after the stored certificate re-checks against the *submitted* circuit
/// via the independent cert:: checker.  A cache can therefore never launder
/// a stale, corrupt, or hash-colliding verdict: revalidation failure is
/// counted and treated as a miss, and the poisoned entry is dropped.
///
/// Persistence is append-only JSONL (one entry per line), the same
/// discipline as corpus::ResultsDb: concurrent writers interleave at line
/// granularity, last entry per hash wins on load, and `ingest()` warms the
/// cache straight from a ResultsDb whose rows recorded cert paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "ic3/engine.hpp"
#include "ts/transition_system.hpp"

namespace pilot::corpus {
class ResultsDb;
}

namespace pilot::serve {

/// One cached verdict: everything needed to serve (and re-check) it.
struct CacheEntry {
  /// Canonical AIG hash (16 hex digits) — the key.
  std::string hash;
  ic3::Verdict verdict = ic3::Verdict::kUnknown;
  /// Engine spec that produced the verdict, original solve time and frame
  /// count — provenance, surfaced to clients and to the advisor.
  std::string engine;
  double seconds = 0.0;
  std::size_t frames = 0;
  /// Certificate in "pilot-cert v1" text form (cert::to_text).  For SAFE
  /// this is the invariant / k-induction certificate; for UNSAFE the
  /// replayable HWMCC witness.  Never empty for a stored entry.
  std::string cert_text;
  std::string case_name;
  std::string timestamp;
};

/// Monotonic cache counters.  Atomics: the server's worker pool and the
/// batch runner both hit one shared cache.
struct CacheStats {
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  /// Certificate re-checks performed on candidate hits (== hits +
  /// revalidation_failures).
  std::atomic<std::uint64_t> revalidations{0};
  /// Candidate hits whose certificate failed to re-check — served as
  /// misses, entry dropped.  Nonzero means a corrupt/stale cache file (or a
  /// canonical-hash collision); never a wrong verdict served.
  std::atomic<std::uint64_t> revalidation_failures{0};
  std::atomic<std::uint64_t> stores{0};
};

class VerdictCache {
 public:
  /// Memory-only cache.
  VerdictCache() = default;
  /// Backed by a JSONL file: existing entries are loaded (a missing file is
  /// an empty cache, unparseable lines throw), stores append to it.
  explicit VerdictCache(const std::string& path);

  /// The serving path.  Returns the entry for `hash` only if its stored
  /// certificate re-checks against `ts` (the transition system of the
  /// circuit being *submitted*, not the one that populated the entry — so
  /// even a hash collision cannot serve a wrong verdict).  On revalidation
  /// failure the entry is dropped and nullopt returned.
  std::optional<CacheEntry> lookup(const std::string& hash,
                                   const ts::TransitionSystem& ts,
                                   std::uint64_t seed = 0);

  /// Raw map probe — no revalidation, no counters.  Benchmarks and tests
  /// only; never a substitute for lookup() on a serving path.
  [[nodiscard]] std::optional<CacheEntry> peek(const std::string& hash) const;

  /// Inserts/overwrites the entry and appends it to the backing file (when
  /// file-backed).  Entries without a hash or certificate text, or with an
  /// UNKNOWN verdict, are rejected (returns false): the cache stores only
  /// independently checkable definitive verdicts.
  bool store(const CacheEntry& entry);

  /// Warms the cache from campaign rows that recorded a canonical hash and
  /// a saved certificate path (pilot-bench run --certify --cert-dir).
  /// Returns the number of entries added; unreadable certs are skipped.
  std::size_t ingest(const corpus::ResultsDb& db);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  /// One-line human-readable counter summary ("N entries, H hits, ...").
  [[nodiscard]] std::string summary() const;

 private:
  void append_to_file(const CacheEntry& entry);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, CacheEntry> entries_;
  std::string path_;  // empty = memory-only
  CacheStats stats_;
};

/// Serialization of one entry (JSONL line), shared with the cache file
/// loader and tests.
[[nodiscard]] std::string cache_entry_to_json(const CacheEntry& entry);
[[nodiscard]] CacheEntry cache_entry_from_json_line(const std::string& line);

}  // namespace pilot::serve
