#include "circuits/builder.hpp"

#include <cassert>
#include <stdexcept>

namespace pilot::circuits {

Word make_inputs(Aig& aig, std::size_t n, const std::string& prefix) {
  Word w;
  w.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    w.push_back(aig.add_input(prefix.empty()
                                  ? std::string{}
                                  : prefix + "[" + std::to_string(i) + "]"));
  }
  return w;
}

Word make_latches(Aig& aig, std::size_t n, std::uint64_t init,
                  const std::string& prefix) {
  Word w;
  w.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool bit = ((init >> i) & 1ULL) != 0;
    w.push_back(aig.add_latch(bit ? aig::l_True : aig::l_False,
                              prefix.empty()
                                  ? std::string{}
                                  : prefix + "[" + std::to_string(i) + "]"));
  }
  return w;
}

void connect(Aig& aig, const Word& latches, const Word& next) {
  assert(latches.size() == next.size());
  for (std::size_t i = 0; i < latches.size(); ++i) {
    aig.set_next(latches[i], next[i]);
  }
}

Word const_word(std::size_t n, std::uint64_t value) {
  Word w;
  w.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    w.push_back(AigLit::constant(((value >> i) & 1ULL) != 0));
  }
  return w;
}

Word ripple_add(Aig& aig, const Word& a, const Word& b, AigLit carry_in) {
  assert(a.size() == b.size());
  Word sum;
  sum.reserve(a.size());
  AigLit carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const AigLit axb = aig.make_xor(a[i], b[i]);
    sum.push_back(aig.make_xor(axb, carry));
    carry = aig.make_or(aig.make_and(a[i], b[i]), aig.make_and(axb, carry));
  }
  return sum;
}

Word increment(Aig& aig, const Word& a) {
  return ripple_add(aig, a, const_word(a.size(), 0), AigLit::constant(true));
}

Word subtract(Aig& aig, const Word& a, const Word& b) {
  Word not_b;
  not_b.reserve(b.size());
  for (const AigLit l : b) not_b.push_back(!l);
  return ripple_add(aig, a, not_b, AigLit::constant(true));
}

AigLit equals_const(Aig& aig, const Word& a, std::uint64_t value) {
  std::vector<AigLit> terms;
  terms.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool bit = ((value >> i) & 1ULL) != 0;
    terms.push_back(a[i] ^ !bit);
  }
  return aig.make_and_n(terms);
}

AigLit equals(Aig& aig, const Word& a, const Word& b) {
  assert(a.size() == b.size());
  std::vector<AigLit> terms;
  terms.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    terms.push_back(aig.make_eq(a[i], b[i]));
  }
  return aig.make_and_n(terms);
}

AigLit less_than(Aig& aig, const Word& a, const Word& b) {
  assert(a.size() == b.size());
  // MSB-first chain: lt = (¬a_i ∧ b_i) ∨ (a_i == b_i) ∧ lt_below.
  AigLit lt = AigLit::constant(false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const AigLit ai = a[i];
    const AigLit bi = b[i];
    lt = aig.make_or(aig.make_and(!ai, bi),
                     aig.make_and(aig.make_eq(ai, bi), lt));
  }
  return lt;
}

AigLit less_than_const(Aig& aig, const Word& a, std::uint64_t value) {
  return less_than(aig, a, const_word(a.size(), value));
}

Word mux_word(Aig& aig, AigLit sel, const Word& t, const Word& e) {
  assert(t.size() == e.size());
  Word w;
  w.reserve(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    w.push_back(aig.make_mux(sel, t[i], e[i]));
  }
  return w;
}

Word xor_word(Aig& aig, const Word& a, const Word& b) {
  assert(a.size() == b.size());
  Word w;
  w.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    w.push_back(aig.make_xor(a[i], b[i]));
  }
  return w;
}

Word shift_right_const(const Word& a, std::size_t amount) {
  Word w;
  w.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    w.push_back(i + amount < a.size() ? a[i + amount]
                                      : AigLit::constant(false));
  }
  return w;
}

AigLit at_least_two(Aig& aig, const Word& bits) {
  AigLit any = AigLit::constant(false);
  AigLit two = AigLit::constant(false);
  for (const AigLit b : bits) {
    two = aig.make_or(two, aig.make_and(any, b));
    any = aig.make_or(any, b);
  }
  return two;
}

AigLit exactly_one(Aig& aig, const Word& bits) {
  AigLit any = aig.make_or_n(bits);
  return aig.make_and(any, !at_least_two(aig, bits));
}

AigLit parity(Aig& aig, const Word& bits) {
  AigLit p = AigLit::constant(false);
  for (const AigLit b : bits) p = aig.make_xor(p, b);
  return p;
}

}  // namespace pilot::circuits
