/// \file fig3_scatter.cpp
/// Reproduces **Figure 3: Scatters of RIC3 and IC3ref with and without the
/// proposed optimization** — per-case runtime pairs (baseline, baseline-pl).
/// Points below the diagonal mean prediction made the case faster.
///
/// Output: two blocks of (case, base-seconds, pl-seconds) rows plus the
/// below/above-diagonal tallies the paper's visual makes.
#include "bench/bench_common.hpp"

using namespace pilot;
using namespace pilot::bench;

namespace {

void scatter_block(const char* title,
                   const std::vector<check::RunRecord>& base,
                   const std::vector<check::RunRecord>& pl,
                   double budget_seconds) {
  std::printf("--- %s ---\n", title);
  std::printf("%-28s %12s %12s\n", "case", "base-s", "pl-s");
  int below = 0;
  int above = 0;
  int ties = 0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    // Timeouts are plotted at the budget edge, as in the paper.
    const double bs = base[i].solved ? base[i].seconds : budget_seconds;
    const double ps = pl[i].solved ? pl[i].seconds : budget_seconds;
    std::printf("%-28s %12.4f %12.4f\n", base[i].case_name.c_str(), bs, ps);
    const double margin = 0.05 * std::max(bs, ps);
    if (ps + margin < bs) {
      ++below;
    } else if (bs + margin < ps) {
      ++above;
    } else {
      ++ties;
    }
  }
  std::printf("summary: %d below diagonal (pl faster), %d above, %d ties\n\n",
              below, above, ties);
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args;
  if (!parse_bench_args(argc, argv,
                        "fig3_scatter — Figure 3: runtime scatter, base vs "
                        "-pl",
                        &args)) {
    return 1;
  }
  const std::vector<std::string> engines{"ic3-down", "ic3-down-pl",
                                         "ic3-ctg", "ic3-ctg-pl"};
  const auto records = run_suite(args, engines);
  const auto groups = by_engine(records);
  const double budget_seconds =
      static_cast<double>(args.budget_ms) / 1000.0;

  std::printf("Figure 3: scatter data (timeouts plotted at %.1fs)\n\n",
              budget_seconds);
  scatter_block("RIC3 vs RIC3-pl", groups.at("ic3-down"),
                groups.at("ic3-down-pl"), budget_seconds);
  scatter_block("IC3ref vs IC3ref-pl", groups.at("ic3-ctg"),
                groups.at("ic3-ctg-pl"), budget_seconds);
  std::printf(
      "Shape check vs paper: more points below the diagonal than above on\n"
      "the non-trivial cases — prediction pays for its extra queries.\n");
  return 0;
}
