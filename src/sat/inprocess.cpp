/// \file inprocess.cpp
/// Inprocessing for sat::Solver, CaDiCaL/Glucose lineage, scheduled around
/// IC3's query pattern instead of conflict counts:
///
///   * add_clause_subsuming() — occurrence-list forward subsumption and
///     self-subsuming resolution, run when a lemma clause is installed so a
///     stronger lemma retires/strengthens weaker ones immediately instead
///     of waiting for the next solver rebuild.
///   * vivify_learnts() — distillation of long learnt clauses (assume the
///     negated prefix, shorten on conflict or implication), run at frame
///     and rebuild boundaries where the kept trail is cold anyway.
///   * probe_and_collapse() — failed-literal probing plus binary-implication
///     SCC collapsing, run over unrolled BMC/k-induction CNFs where one
///     preprocessing pass pays across every later bound.
///
/// Soundness constraints inherited from the solver core: only root-level
/// values may simplify clauses, locked clauses (reasons on the trail) are
/// never removed or shortened, and clauses change size only by realloc +
/// reattach because the watch lists dispatch on size() == 2 (clause.hpp).
#include <algorithm>
#include <cassert>

#include "sat/solver.hpp"

namespace pilot::sat {
namespace {

/// Clauses longer than this skip the install-time subsumption pass; IC3
/// lemma clauses are short, and the pass costs |occs| · |clause|.
constexpr std::size_t kMaxSubsumeSize = 32;

}  // namespace

// ----- occurrence lists ------------------------------------------------------

void Solver::set_inprocess(bool on) {
  if (on == inprocess_) return;
  inprocess_ = on;
  occs_.clear();
  if (on) occ_build();
}

void Solver::occ_build() {
  occs_.assign(static_cast<std::size_t>(num_vars()) * 2, {});
  for (const ClauseRef ref : clauses_) occ_attach(ref);
}

void Solver::occ_attach(ClauseRef ref) {
  for (const Lit l : arena_.deref(ref)) {
    const auto idx = static_cast<std::size_t>(l.index());
    if (idx >= occs_.size()) occs_.resize(idx + 1);
    occs_[idx].push_back(ref);
  }
}

void Solver::occ_detach(ClauseRef ref) {
  for (const Lit l : arena_.deref(ref)) {
    const auto idx = static_cast<std::size_t>(l.index());
    if (idx >= occs_.size()) continue;
    auto& occ = occs_[idx];
    for (std::size_t i = 0; i < occ.size(); ++i) {
      if (occ[i] == ref) {
        occ[i] = occ.back();
        occ.pop_back();
        break;
      }
    }
  }
}

void Solver::erase_problem_clause(ClauseRef ref) {
  remove_clause(ref);  // detaches watches + occurrences, frees arena space
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    if (clauses_[i] == ref) {
      clauses_[i] = clauses_.back();
      clauses_.pop_back();
      return;
    }
  }
  assert(false && "problem clause not found");
}

// ----- install-time (self-)subsumption ---------------------------------------

std::size_t Solver::subsume_and_strengthen(std::span<const Lit> lits) {
  if (lits.size() > kMaxSubsumeSize) return 0;
  const auto need = static_cast<std::size_t>(num_vars()) * 2;
  if (occs_.size() < need) occs_.resize(need);
  if (inproc_mark_.size() < need) inproc_mark_.resize(need, 0);
  for (const Lit l : lits) inproc_mark_[l.index()] = 1;

  // Forward subsumption: any clause subsumed by the new one contains every
  // literal of it — in particular the one with the fewest occurrences, so
  // that literal's occurrence list covers all candidates.
  Lit pivot = lits[0];
  for (const Lit l : lits) {
    if (occs_[l.index()].size() < occs_[pivot.index()].size()) pivot = l;
  }
  std::size_t removed = 0;
  // Iterate over copies throughout: erasing/strengthening mutates the
  // occurrence lists in place.
  std::vector<ClauseRef> scratch = occs_[pivot.index()];
  for (const ClauseRef ref : scratch) {
    const Clause& c = arena_.deref(ref);
    if (c.size() < lits.size()) continue;
    if (clause_locked(ref)) continue;
    std::size_t hits = 0;
    for (const Lit cl : c) hits += inproc_mark_[cl.index()];
    if (hits == lits.size()) {
      erase_problem_clause(ref);
      ++removed;
      ++stats_.subsumed_clauses;
    }
  }

  // Self-subsuming resolution: the new clause L resolves on l with any
  // C ⊇ (L \ {l}) ∪ {¬l}, and the resolvent C \ {¬l} subsumes C — so C
  // simply loses ¬l.  L itself cannot contain ¬l (it would be a tautology),
  // so |C ∩ L| == |L| - 1 is exactly the containment condition.
  for (const Lit l : lits) {
    if (!ok_) break;
    scratch = occs_[(~l).index()];
    for (const ClauseRef ref : scratch) {
      const Clause& c = arena_.deref(ref);
      if (c.size() < lits.size()) continue;
      if (clause_locked(ref)) continue;
      std::size_t hits = 0;
      for (const Lit cl : c) hits += inproc_mark_[cl.index()];
      if (hits + 1 != lits.size()) continue;
      std::vector<Lit> shorter;
      shorter.reserve(c.size() - 1);
      for (const Lit cl : c) {
        if (cl != ~l) shorter.push_back(cl);
      }
      erase_problem_clause(ref);
      ++stats_.strengthened_clauses;
      // Re-adding handles unit promotion, mid-trail watch selection, and
      // occurrence registration (strengthen = realloc + reattach).
      if (!add_clause(shorter)) break;
    }
  }
  for (const Lit l : lits) inproc_mark_[l.index()] = 0;
  return removed;
}

bool Solver::add_clause_subsuming(std::span<const Lit> literals) {
  if (!ok_) return false;
  if (!inprocess_) return add_clause(literals);
  std::vector<Lit> lits(literals.begin(), literals.end());
  switch (normalize_clause(lits)) {
    case ClauseNorm::kTrivial:
      return true;
    case ClauseNorm::kEmpty:
      ok_ = false;
      return false;
    case ClauseNorm::kReady:
      break;
  }
  if (lits.size() >= 2) subsume_and_strengthen(lits);
  // add_clause re-normalizes, which matters: strengthening may have
  // promoted units that now satisfy or shorten this clause at the root.
  return add_clause(lits);
}

// ----- vivification ----------------------------------------------------------

std::size_t Solver::vivify_learnts(std::size_t max_clauses) {
  if (!ok_ || max_clauses == 0) return 0;
  // Vivification works at the root and dirties the kept trail: callers
  // schedule it at frame/rebuild boundaries, not between hot queries.
  cancel_until(0);
  prev_assumptions_.clear();
  if (propagate() != kClauseRefUndef) {
    ok_ = false;
    return 0;
  }

  std::size_t shortened = 0;
  std::size_t attempts = 0;
  // Newest learnts first: they drive the current search and are the most
  // likely to survive the next reduce_db round.
  for (std::size_t pos = learnts_.size();
       pos-- > 0 && attempts < max_clauses && ok_;) {
    const ClauseRef ref = learnts_[pos];
    std::uint32_t old_size = 0;
    std::vector<Lit> lits;
    {
      const Clause& c = arena_.deref(ref);
      if (c.size() < 3) continue;
      if (clause_satisfied(c)) continue;  // root-satisfied; simplify() reaps
      if (clause_locked(ref)) continue;
      old_size = c.size();
      for (const Lit l : c) {
        // Root-false literals are permanently redundant: drop them now.
        if (value(l) == l_False) continue;
        lits.push_back(l);
      }
    }
    ++attempts;
    // Detach so the clause cannot propagate against itself while its own
    // negated literals are assumed.
    detach_clause(ref);
    std::vector<Lit> kept;
    kept.reserve(lits.size());
    bool stopped_early = false;
    new_decision_level();
    for (std::size_t i = 0; i < lits.size(); ++i) {
      const Lit l = lits[i];
      const LBool v = value(l);
      if (v == l_True) {
        // ¬(kept prefix) implies l: the clause shortens to kept ∪ {l}.
        kept.push_back(l);
        stopped_early = i + 1 < lits.size();
        break;
      }
      if (v == l_False) continue;  // ¬(kept prefix) implies ¬l: l is redundant
      kept.push_back(l);
      unchecked_enqueue(~l);
      if (propagate() != kClauseRefUndef) {
        // ¬kept is contradictory: the clause shortens to kept.
        stopped_early = i + 1 < lits.size();
        break;
      }
    }
    cancel_until(0);
    if (!stopped_early && kept.size() == old_size) {
      attach_clause(ref);
      continue;
    }
    stats_.vivified_literals += old_size - kept.size();
    ++stats_.vivified_clauses;
    ++shortened;
    const float activity = arena_.deref(ref).activity();
    const std::uint32_t lbd = arena_.deref(ref).lbd();
    arena_.free_clause(ref);  // watches already detached above
    learnts_[pos] = learnts_.back();
    learnts_.pop_back();
    if (kept.empty()) {
      ok_ = false;  // every literal was root-false
      break;
    }
    if (kept.size() == 1) {
      if (value(kept[0]) == l_False) {
        ok_ = false;
      } else if (value(kept[0]).is_undef()) {
        unchecked_enqueue(kept[0]);
        if (propagate() != kClauseRefUndef) ok_ = false;
      }
      continue;
    }
    // Swap in the shortened clause: realloc + reattach (clause.hpp NOTE).
    const ClauseRef fresh = arena_.alloc(kept, /*learnt=*/true);
    Clause& nc = arena_.deref(fresh);
    nc.set_activity(activity);
    nc.set_lbd(std::min<std::uint32_t>(
        lbd, static_cast<std::uint32_t>(kept.size()) - 1));
    nc.set_used(true);  // shortened clauses survive the next reduction
    learnts_.push_back(fresh);
    std::swap(learnts_[pos], learnts_.back());
    attach_clause(fresh);
  }
  collect_garbage_if_needed();
  return shortened;
}

// ----- failed-literal probing + binary-implication SCCs ----------------------

void Solver::collapse_binary_sccs() {
  // Iterative Tarjan over the binary implication graph: node = literal,
  // edge p → q for every binary clause (¬p ∨ q), i.e. every BinWatcher q in
  // bin_watches_[p].  The graph is skew-symmetric, so components come in
  // mirrored pairs and picking the smallest literal index as representative
  // is negation-consistent; a literal sharing a component with its negation
  // makes the formula unsatisfiable.
  const auto n = static_cast<std::size_t>(num_vars()) * 2;
  constexpr std::uint32_t kUnvisited = 0xFFFFFFFFu;
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<std::uint32_t> comp(n, kUnvisited);
  std::vector<char> on_stack(n, 0);
  std::vector<std::uint32_t> stack;
  std::uint32_t next_index = 0;
  std::uint32_t num_comps = 0;

  struct Frame {
    std::uint32_t node;
    std::uint32_t child;
  };
  std::vector<Frame> dfs;
  const auto skip_node = [&](std::uint32_t li) {
    return !value(Lit::from_index(static_cast<std::int32_t>(li))).is_undef();
  };
  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited || skip_node(root)) continue;
    dfs.push_back({root, 0});
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const std::uint32_t v = f.node;
      if (f.child == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = 1;
      }
      const auto& succs = bin_watches_[v];
      bool descended = false;
      while (f.child < succs.size()) {
        const std::uint32_t w =
            static_cast<std::uint32_t>(succs[f.child].other.index());
        ++f.child;
        if (skip_node(w)) continue;
        if (index[w] == kUnvisited) {
          dfs.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
      }
      if (descended) continue;
      if (lowlink[v] == index[v]) {
        for (;;) {
          const std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          comp[w] = num_comps;
          if (w == v) break;
        }
        ++num_comps;
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        lowlink[dfs.back().node] =
            std::min(lowlink[dfs.back().node], lowlink[v]);
      }
    }
  }

  // Representative per component: smallest literal index.  A variable in
  // the same component as its negation forces l ↔ ¬l — UNSAT.
  std::vector<std::uint32_t> comp_min(num_comps, kUnvisited);
  for (std::uint32_t li = 0; li < n; ++li) {
    if (comp[li] == kUnvisited) continue;
    comp_min[comp[li]] = std::min(comp_min[comp[li]], li);
  }
  bool any_merge = false;
  for (std::uint32_t li = 0; li < n; li += 2) {
    if (comp[li] == kUnvisited) continue;
    if (comp[li] == comp[li ^ 1]) {
      ok_ = false;
      return;
    }
    if (comp_min[comp[li]] != li) {
      any_merge = true;
      ++stats_.scc_merged_vars;
    }
  }
  if (!any_merge) return;

  const auto rep = [&](Lit l) {
    const auto li = static_cast<std::uint32_t>(l.index());
    if (comp[li] == kUnvisited) return l;
    return Lit::from_index(static_cast<std::int32_t>(comp_min[comp[li]]));
  };

  // Rewrite literals of long problem clauses to their representatives.  The
  // defining binary clauses are deliberately kept: they propagate the
  // merged variables, so SAT models (BMC traces) stay complete.
  const std::vector<ClauseRef> snapshot = clauses_;
  for (const ClauseRef ref : snapshot) {
    if (!ok_) return;
    const Clause& c = arena_.deref(ref);
    if (c.size() == 2) continue;
    if (clause_locked(ref) || clause_satisfied(c)) continue;
    bool changed = false;
    std::vector<Lit> mapped;
    mapped.reserve(c.size());
    for (const Lit l : c) {
      const Lit r = rep(l);
      changed = changed || r != l;
      mapped.push_back(r);
    }
    if (!changed) continue;
    erase_problem_clause(ref);
    // add_clause sorts, dedups the merged duplicates, and drops the clause
    // entirely when the rewrite produced a tautology.
    add_clause(mapped);
  }
}

bool Solver::probe_and_collapse(bool collapse_scc, std::size_t max_probes) {
  if (!ok_) return false;
  cancel_until(0);
  prev_assumptions_.clear();
  if (propagate() != kClauseRefUndef) {
    ok_ = false;
    return false;
  }
  if (collapse_scc) {
    collapse_binary_sccs();
    if (!ok_) return false;
  }

  // Failed-literal probing, watermarked: each call probes only variables
  // created since the last call, so incremental consumers (the BMC/k-ind
  // unrollers) pay per frame, not per bound².  Only literals with binary
  // successors are probed — they are the ones whose propagation reaches
  // deep into the implication graph.
  const Var end = num_vars();
  std::size_t probes = 0;
  for (Var v = probe_watermark_; v < end && probes < max_probes && ok_; ++v) {
    for (int sign = 0; sign < 2 && probes < max_probes; ++sign) {
      if (!value(v).is_undef()) break;
      const Lit l = Lit::make(v, sign == 1);
      if (bin_watches_[l.index()].empty()) continue;
      ++probes;
      new_decision_level();
      unchecked_enqueue(l);
      const ClauseRef confl = propagate();
      cancel_until(0);
      if (confl == kClauseRefUndef) continue;
      // l leads to a conflict by unit propagation alone: ¬l holds.
      ++stats_.probe_failed_literals;
      unchecked_enqueue(~l);
      if (propagate() != kClauseRefUndef) {
        ok_ = false;
        break;
      }
    }
  }
  probe_watermark_ = end;
  collect_garbage_if_needed();
  return ok_;
}

}  // namespace pilot::sat
