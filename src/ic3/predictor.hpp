/// \file predictor.hpp
/// Lemma prediction from counterexamples to propagation — the contribution
/// of "Predicting Lemmas in Generalization of IC3" (DAC'24), Algorithm 2.
///
/// When pushing the lemma ¬p from F_{i} to F_{i+1} fails, the SAT model
/// exhibits a counterexample to propagation (CTP): a successor state t with
/// t ⊨ p.  The failed push is recorded in the `failure_push` table keyed by
/// (lemma, level).
///
/// Later, when a cube b must be generalized at level i, each parent lemma
/// p ⊆ b of frame i-1 with a recorded CTP t yields a *predicted* lemma:
///   * ds = diff(b, t)  (Definition 3.1: literals of b falsified by t)
///   * ds = ∅  → b and t intersect (Theorem 3.2); try pushing p itself.
///   * ds ≠ ∅ → candidates c₃ = p ∪ {d}, d ∈ ds (Equation 6): by
///     Theorems 3.2–3.4, c₃ excludes t, contains b, and implies p.
/// A single relative-induction query validates a candidate; on success the
/// whole literal-dropping loop of generalization is skipped.
#pragma once

#include <optional>
#include <unordered_map>

#include "ic3/config.hpp"
#include "ic3/cube.hpp"
#include "ic3/frames.hpp"
#include "ic3/solver_manager.hpp"
#include "ic3/stats.hpp"
#include "util/timer.hpp"

namespace pilot::ic3 {

class Predictor {
 public:
  Predictor(SolverManager& solvers, Frames& frames, const Config& cfg,
            Ic3Stats& stats);

  /// Records the CTP successor state `t` of a failed push of `lemma` at
  /// `level` (overwrites any previous entry — the latest CTP is freshest).
  void record_push_failure(const Cube& lemma, std::size_t level, Cube t);

  /// Drops every recorded failure (paper: the table is cleared and
  /// reconstructed at each propagation).
  void clear();

  [[nodiscard]] std::size_t table_size() const {
    return failure_push_.size();
  }

  /// Attempts to predict a lemma blocking cube `b` at `level` without
  /// dropping variables.  Returns the validated cube on success.
  /// Updates the paper's N_p / N_sp / N_fp counters.
  std::optional<Cube> predict(const Cube& b, std::size_t level,
                              const Deadline& deadline);

 private:
  std::optional<Cube> try_parent(const Cube& b, const Cube& p,
                                 std::size_t level, const Deadline& deadline);

  SolverManager& solvers_;
  Frames& frames_;
  const Config& cfg_;
  Ic3Stats& stats_;
  std::unordered_map<CubeLevelKey, Cube, CubeLevelKeyHash> failure_push_;
};

}  // namespace pilot::ic3
