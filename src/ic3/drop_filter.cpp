#include "ic3/drop_filter.hpp"

namespace pilot::ic3 {

DropFilter::DropFilter(const ts::TransitionSystem& ts, Ic3Stats& stats)
    : ts_(ts), stats_(stats), sim_(ts.aig()) {}

void DropFilter::reset() {
  for (Slot& s : slots_) s = Slot{};
  next_slot_ = 0;
  num_valid_ = 0;
  dirty_ = false;
}

void DropFilter::add_witness(const Cube& state, const std::vector<Lit>& inputs,
                             std::size_t level) {
  const std::size_t lane = next_slot_;
  next_slot_ = (next_slot_ + 1) % kSlots;
  if (!slots_[lane].valid) ++num_valid_;
  slots_[lane] = Slot{/*valid=*/true, /*constraints_ok=*/false, level};

  // Clear the lane to all-X, then pin the assigned model literals; model
  // variables the solver left unassigned stay X, which is sound — a check
  // that fires on definite lane values holds for every completion.
  for (std::size_t i = 0; i < ts_.num_latches(); ++i) {
    sim_.set_latch(i, lane, aig::TV::kX);
  }
  for (std::size_t i = 0; i < ts_.num_inputs(); ++i) {
    sim_.set_input(i, lane, aig::TV::kX);
  }
  for (const Lit l : state) {
    const int idx = ts_.latch_index_of(l.var());
    if (idx < 0) continue;
    sim_.set_latch(static_cast<std::size_t>(idx), lane,
                   l.sign() ? aig::TV::kZero : aig::TV::kOne);
  }
  for (const Lit l : inputs) {
    for (std::size_t i = 0; i < ts_.num_inputs(); ++i) {
      if (ts_.input_var(i) == l.var()) {
        sim_.set_input(i, lane, l.sign() ? aig::TV::kZero : aig::TV::kOne);
        break;
      }
    }
  }
  dirty_ = true;
  ++stats_.num_filter_witnesses;
}

void DropFilter::on_lemma(const Cube& lemma, std::size_t level) {
  if (num_valid_ == 0) return;
  for (std::size_t k = 0; k < kSlots; ++k) {
    Slot& slot = slots_[k];
    if (!slot.valid) continue;
    // A clause at `level` strengthens R_i for i <= level; the witness only
    // claims frames R_j with j >= slot.level - 1, so installs strictly
    // below that cannot touch it.
    if (level + 1 < slot.level) continue;
    // The witness survives iff its s definitely falsifies some literal of
    // `lemma` (then s satisfies the new clause ¬lemma, so s ⊨ R still
    // holds).  Latch lane values were pinned at add_witness time and are
    // readable without a sweep.
    bool outside = false;
    for (const Lit l : lemma) {
      const int idx = ts_.latch_index_of(l.var());
      if (idx < 0) continue;
      const std::uint32_t latch_node =
          ts_.aig().latches()[static_cast<std::size_t>(idx)];
      const aig::TV against = l.sign() ? aig::TV::kOne : aig::TV::kZero;
      if (sim_.value(aig::AigLit::make(latch_node, false), k) == against) {
        outside = true;
        break;
      }
    }
    if (!outside) {
      slot.valid = false;
      --num_valid_;
    }
  }
}

void DropFilter::refresh() {
  sim_.compute();
  for (std::size_t k = 0; k < kSlots; ++k) {
    if (!slots_[k].valid) continue;
    bool ok = true;
    for (const aig::AigLit c : ts_.aig().constraints()) {
      if (sim_.value(c, k) != aig::TV::kOne) {
        ok = false;
        break;
      }
    }
    slots_[k].constraints_ok = ok;
  }
  dirty_ = false;
  stats_.num_packed_sim_words += sim_.take_words_evaluated();
}

bool DropFilter::rejects(const Cube& cand, std::size_t level) {
  if (num_valid_ == 0) return false;
  ++stats_.num_filter_checks;
  if (dirty_) refresh();
  for (std::size_t k = 0; k < kSlots; ++k) {
    const Slot& slot = slots_[k];
    // A witness recorded at `slot.level` satisfies R_{slot.level-1}, hence
    // every weaker frame R_{l-1} with l >= slot.level.
    if (!slot.valid || !slot.constraints_ok || slot.level > level) continue;
    bool outside = false;    // s falsifies some literal of cand
    bool succ_in = true;     // s' satisfies every literal of cand
    for (const Lit l : cand) {
      const int idx = ts_.latch_index_of(l.var());
      if (idx < 0) {
        succ_in = false;
        break;
      }
      const std::uint32_t latch_node =
          ts_.aig().latches()[static_cast<std::size_t>(idx)];
      const aig::TV want = l.sign() ? aig::TV::kZero : aig::TV::kOne;
      const aig::TV against = l.sign() ? aig::TV::kOne : aig::TV::kZero;
      if (!outside &&
          sim_.value(aig::AigLit::make(latch_node, false), k) == against) {
        outside = true;
      }
      if (sim_.value(ts_.aig().next(latch_node), k) != want) {
        succ_in = false;
        break;
      }
    }
    if (outside && succ_in) {
      ++stats_.num_filter_solves_saved;
      return true;
    }
  }
  return false;
}

}  // namespace pilot::ic3
