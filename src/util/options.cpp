#include "util/options.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace pilot {
namespace {

bool parse_int(const std::string& text, std::int64_t* out) {
  try {
    std::size_t pos = 0;
    const std::int64_t value = std::stoll(text, &pos);
    if (pos != text.size()) return false;
    *out = value;
    return true;
  } catch (...) {
    return false;
  }
}

bool parse_double(const std::string& text, double* out) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(text, &pos);
    if (pos != text.size()) return false;
    *out = value;
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

void OptionParser::add_flag(const std::string& name, bool* target,
                            std::string help) {
  Spec spec;
  spec.help = std::move(help);
  spec.kind = "flag";
  spec.apply_flag = [target](bool value) { *target = value; };
  specs_[name] = std::move(spec);
}

void OptionParser::add_int(const std::string& name, std::int64_t* target,
                           std::string help) {
  Spec spec;
  spec.help = std::move(help);
  spec.kind = "int";
  spec.apply = [target](const std::string& text) {
    return parse_int(text, target);
  };
  specs_[name] = std::move(spec);
}

void OptionParser::add_double(const std::string& name, double* target,
                              std::string help) {
  Spec spec;
  spec.help = std::move(help);
  spec.kind = "double";
  spec.apply = [target](const std::string& text) {
    return parse_double(text, target);
  };
  specs_[name] = std::move(spec);
}

void OptionParser::add_opt_double(const std::string& name, double* target,
                                  double bare_value, std::string help) {
  Spec spec;
  spec.help = std::move(help);
  spec.kind = "opt-double";
  spec.apply = [target](const std::string& text) {
    return parse_double(text, target);
  };
  spec.apply_flag = [target, bare_value](bool) { *target = bare_value; };
  specs_[name] = std::move(spec);
}

void OptionParser::add_string(const std::string& name, std::string* target,
                              std::string help) {
  Spec spec;
  spec.help = std::move(help);
  spec.kind = "string";
  spec.apply = [target](const std::string& text) {
    *target = text;
    return true;
  };
  specs_[name] = std::move(spec);
}

void OptionParser::add_choice(const std::string& name, std::string* target,
                              std::vector<std::string> choices,
                              std::string help) {
  Spec spec;
  spec.help = std::move(help);
  spec.kind = "choice";
  spec.choices = choices;
  spec.apply = [target, choices](const std::string& text) {
    if (std::find(choices.begin(), choices.end(), text) == choices.end()) {
      return false;
    }
    *target = text;
    return true;
  };
  specs_[name] = std::move(spec);
}

bool OptionParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    // `--name=value` form.
    std::optional<std::string> inline_value;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    bool flag_value = true;
    auto it = specs_.find(name);
    if (it == specs_.end() && name.rfind("no-", 0) == 0) {
      it = specs_.find(name.substr(3));
      if (it != specs_.end() && it->second.kind == "flag") flag_value = false;
    }
    if (it == specs_.end()) {
      std::fprintf(stderr, "unknown option --%s\n%s", name.c_str(),
                   help_text().c_str());
      return false;
    }
    const Spec& spec = it->second;
    if (spec.kind == "flag") {
      if (inline_value) {
        flag_value = (*inline_value == "true" || *inline_value == "1");
      }
      spec.apply_flag(flag_value);
      continue;
    }
    // Optional-value options: take the value only from the `=` form, so
    // bare `--name` never swallows a following positional.
    if (spec.kind == "opt-double" && !inline_value) {
      spec.apply_flag(true);
      continue;
    }
    std::string value;
    if (inline_value) {
      value = *inline_value;
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "option --%s expects a value\n", name.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!spec.apply(value)) {
      std::fprintf(stderr, "invalid value '%s' for option --%s\n",
                   value.c_str(), name.c_str());
      return false;
    }
  }
  return true;
}

std::string OptionParser::help_text() const {
  std::ostringstream oss;
  oss << description_ << "\n\noptions:\n";
  for (const auto& [name, spec] : specs_) {
    oss << "  --" << name;
    if (spec.kind == "choice") {
      oss << " {";
      for (std::size_t i = 0; i < spec.choices.size(); ++i) {
        if (i > 0) oss << ",";
        oss << spec.choices[i];
      }
      oss << "}";
    } else if (spec.kind == "opt-double") {
      oss << "[=<double>]";
    } else if (spec.kind != "flag") {
      oss << " <" << spec.kind << ">";
    }
    oss << "\n      " << spec.help << "\n";
  }
  return oss.str();
}

}  // namespace pilot
