/// \file backend.hpp
/// The unified solving-engine abstraction every checker frontend dispatches
/// through.
///
/// A `Backend` is one engine configuration (an IC3 variant, BMC,
/// k-induction, …) bound to a shared, immutable `TransitionSystem`.  All
/// backends answer the same question — is bad reachable? — through one
/// polymorphic entry point:
///
///   std::unique_ptr<Backend> b = engine::make_backend("ic3-ctg-pl", ts, ctx);
///   engine::EngineResult r = b->check(deadline, &cancel);
///
/// Construction goes through a string-keyed registry (name → factory), so
/// new engines plug in without touching the dispatch layer, and the
/// portfolio scheduler (portfolio.hpp) can race an arbitrary mix of them.
/// The `CancelToken` is the cancellation protocol of that race: backends
/// must poll it (directly or via Deadline::with_cancel) and return
/// Verdict::kUnknown promptly once it stops.
///
/// Thread-ownership rules: a Backend instance is owned and driven by
/// exactly one thread; the registry and the TransitionSystem are shared and
/// read-only after construction.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ic3/config.hpp"
#include "ic3/engine.hpp"
#include "ic3/stats.hpp"
#include "ic3/witness.hpp"
#include "ts/transition_system.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace pilot::engine {

/// Uniform outcome of a backend run: verdict, timing, engine statistics
/// (meaningful for IC3-family backends, zeroed otherwise) and the
/// certificate, when the engine produces one.
struct EngineResult {
  ic3::Verdict verdict = ic3::Verdict::kUnknown;
  double seconds = 0.0;
  std::size_t frames = 0;  // IC3: max frame; BMC/k-ind: bound reached
  ic3::Ic3Stats stats;
  /// kUnknown because the run was cut short (deadline or cancellation), as
  /// opposed to the engine completing on its own without a verdict (e.g.
  /// BMC exhausting its bound).  Lets the portfolio tell cancelled losers
  /// from backends that finished inconclusively.
  bool interrupted = false;
  std::optional<ic3::Trace> trace;                   // UNSAFE certificate
  std::optional<ic3::InductiveInvariant> invariant;  // SAFE certificate
  /// k-induction SAFE payload (cert/certificate.hpp): the bound the step
  /// query closed at (< 0 when not a k-induction proof) and whether the
  /// simple-path strengthening was in force.
  int kind_k = -1;
  bool kind_simple_path = true;
};

/// Per-run knobs shared by every backend of one check.
struct BackendContext {
  std::uint64_t seed = 0;
  /// Extra IC3 knobs forwarded verbatim to IC3-family backends (ablations).
  std::optional<ic3::Config> ic3_overrides;
  /// Generalization-strategy spec override ("dynamic:16,0.4", …; see
  /// ic3/gen_strategy.hpp) applied on top of the name-derived config of
  /// IC3-family backends; empty = keep the backend's own strategy.
  std::string gen_spec;
  /// Ternary-simulation backend override for the lifter (--lift-sim);
  /// unset = the config default (packed).
  std::optional<ic3::Config::LiftSim> lift_sim;
  /// Ternary drop-filter override for the MIC core (--gen-ternary-filter);
  /// unset = the config default (on).
  std::optional<bool> gen_ternary_filter;
  /// SAT inprocessing override (--sat-inprocess): lemma-install subsumption
  /// and boundary vivification in IC3-family backends, failed-literal
  /// probing + SCC collapsing in BMC/k-induction; unset = defaults (on).
  std::optional<bool> sat_inprocess;
  /// Batched generalization probe width override (--gen-batch); 1 disables
  /// batching, unset = the config default.
  std::optional<int> gen_batch;
  /// Adaptive batch-width override (--gen-batch-adaptive): scale the probe
  /// group size from the observed candidate failure rate; unset = the
  /// config default (off).
  std::optional<bool> gen_batch_adaptive;
  /// Portfolio lemma exchange endpoint for this backend (non-owning, may
  /// be null; engine/lemma_exchange.hpp).  IC3-family backends publish
  /// installed lemmas and import validated peer lemmas through it.
  ic3::LemmaBus* lemma_bus = nullptr;
  /// Live-progress channel for this backend (non-owning, may be null;
  /// obs/progress.hpp).  Engines publish frame/lemma/SAT counters into it
  /// for the `--progress` heartbeat.
  obs::ProgressSink* progress = nullptr;
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Registry name of this engine configuration (e.g. "ic3-ctg-pl").
  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Solves until a verdict, the deadline, or a stop request on `cancel`
  /// (nullable).  Must be prompt about cancellation: a stopped loser
  /// returns Verdict::kUnknown within a few SAT restarts.
  virtual EngineResult check(const Deadline& deadline,
                             const CancelToken* cancel) = 0;
};

using BackendFactory = std::function<std::unique_ptr<Backend>(
    const ts::TransitionSystem& ts, const BackendContext& ctx)>;

/// Registers a backend under `name`.  Throws std::invalid_argument on a
/// duplicate name.  Thread-safe; typically called at startup or from tests.
void register_backend(const std::string& name, BackendFactory factory);

/// True when `name` is a registered backend.
[[nodiscard]] bool backend_registered(const std::string& name);

/// All registered backend names, sorted.
[[nodiscard]] std::vector<std::string> backend_names();

/// Instantiates the named backend over `ts`.  Throws std::invalid_argument
/// for unknown names.
[[nodiscard]] std::unique_ptr<Backend> make_backend(const std::string& name,
                                                    const ts::TransitionSystem& ts,
                                                    const BackendContext& ctx);

/// The ic3::Config behind an IC3-family backend name ("ic3-down",
/// "ic3-down-pl", "ic3-ctg", "ic3-ctg-pl", "ic3-cav23", "ic3-dyn",
/// "pdr").  Throws std::invalid_argument for non-IC3 names.
[[nodiscard]] ic3::Config ic3_config_for(const std::string& name,
                                         std::uint64_t seed);

/// The error text for an unrecognized engine token: names the token and
/// lists every registered backend plus the portfolio spec forms — shared
/// by the registry, the portfolio spec parser, and the batch runner so
/// every CLI surfaces the same actionable message.
[[nodiscard]] std::string unknown_engine_message(const std::string& token);

}  // namespace pilot::engine
