#include "ic3/cube.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace pilot::ic3 {

Cube Cube::from_lits(std::vector<Lit> lits) {
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  Cube c;
  c.lits_ = std::move(lits);
  return c;
}

Cube Cube::from_sorted(std::vector<Lit> lits) {
  assert(std::is_sorted(lits.begin(), lits.end()));
  Cube c;
  c.lits_ = std::move(lits);
  return c;
}

bool Cube::contains(Lit l) const {
  return std::binary_search(lits_.begin(), lits_.end(), l);
}

bool Cube::subset_of(const Cube& other) const {
  if (size() > other.size()) return false;
  return std::includes(other.lits_.begin(), other.lits_.end(),
                       lits_.begin(), lits_.end());
}

Cube Cube::diff(const Cube& b) const {
  // diff(a, b) = { l ∈ a | ¬l ∈ b }.  Both sides sorted; ¬l of a sorted
  // sequence is not sorted by code (sign bit flips), so use membership
  // tests on b, which keeps this O(|a| log |b|).
  std::vector<Lit> out;
  for (const Lit l : lits_) {
    if (b.contains(~l)) out.push_back(l);
  }
  return from_sorted(std::move(out));
}

Cube Cube::intersect(const Cube& other) const {
  std::vector<Lit> out;
  std::set_intersection(lits_.begin(), lits_.end(), other.lits_.begin(),
                        other.lits_.end(), std::back_inserter(out));
  return from_sorted(std::move(out));
}

Cube Cube::without(Lit l) const {
  std::vector<Lit> out;
  out.reserve(lits_.size());
  for (const Lit x : lits_) {
    if (x != l) out.push_back(x);
  }
  return from_sorted(std::move(out));
}

Cube Cube::with_lit(Lit l) const {
  assert(!contains(~l) && "cube would become inconsistent");
  std::vector<Lit> out;
  out.reserve(lits_.size() + 1);
  bool inserted = false;
  for (const Lit x : lits_) {
    if (!inserted && l < x) {
      out.push_back(l);
      inserted = true;
    }
    if (x == l) inserted = true;  // already present
    out.push_back(x);
  }
  if (!inserted) out.push_back(l);
  return from_sorted(std::move(out));
}

std::vector<Lit> Cube::negated_lits() const {
  std::vector<Lit> out;
  out.reserve(lits_.size());
  for (const Lit l : lits_) out.push_back(~l);
  return out;
}

std::size_t Cube::hash() const {
  std::size_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const Lit l : lits_) {
    h ^= static_cast<std::size_t>(l.index());
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

std::string Cube::to_string() const {
  std::ostringstream oss;
  oss << "{";
  for (std::size_t i = 0; i < lits_.size(); ++i) {
    if (i > 0) oss << " ";
    oss << lits_[i].to_string();
  }
  oss << "}";
  return oss.str();
}

}  // namespace pilot::ic3
