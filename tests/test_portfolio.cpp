/// Portfolio-scheduler tests: spec parsing, first-verdict-wins semantics,
/// loser cancellation, verdict determinism across repeated races (the
/// winner may differ — the verdict must not), witness certification of
/// whichever backend wins, and the check::check_ts dispatch path.
#include <gtest/gtest.h>

#include "check/checker.hpp"
#include "circuits/families.hpp"
#include "engine/portfolio.hpp"
#include "ic3/witness.hpp"
#include "ts/transition_system.hpp"

namespace pilot::engine {
namespace {

TEST(PortfolioSpec, ParsesAndValidates) {
  // An empty spec is malformed, not "defaults" — the default mix is
  // requested by leaving PortfolioOptions::backends empty.
  EXPECT_THROW((void)parse_portfolio_spec(""), std::invalid_argument);
  const std::vector<std::string> one = parse_portfolio_spec("bmc");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], "bmc");
  const std::vector<std::string> three =
      parse_portfolio_spec("ic3-ctg-pl+bmc+kind");
  ASSERT_EQ(three.size(), 3u);
  EXPECT_EQ(three[0], "ic3-ctg-pl");
  EXPECT_EQ(three[1], "bmc");
  EXPECT_EQ(three[2], "kind");
  EXPECT_THROW((void)parse_portfolio_spec("bmc+nope"), std::invalid_argument);
  EXPECT_THROW((void)parse_portfolio_spec("bmc+bmc"), std::invalid_argument);
  EXPECT_THROW((void)parse_portfolio_spec("+bmc"), std::invalid_argument);
  EXPECT_THROW((void)parse_portfolio_spec("bmc+"), std::invalid_argument);
}

TEST(Portfolio, UnknownBackendThrowsBeforeSpawning) {
  const auto cc = circuits::mutex_safe();
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  PortfolioOptions po;
  po.backends = {"ic3-ctg", "no-such-engine"};
  EXPECT_THROW((void)run_portfolio(ts, po), std::invalid_argument);
}

TEST(Portfolio, FirstVerdictWinsAndLosersAreCancelled) {
  // BMC finds this counterexample immediately; the hard SAFE-side prover
  // configurations lose the race and must be stopped, not run to
  // completion — the whole race finishing fast is the cancellation proof.
  const auto cc = circuits::counter_unsafe(6, 10);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  PortfolioOptions po;
  Timer wall;
  const PortfolioResult pr = run_portfolio(ts, po);
  EXPECT_EQ(pr.result.verdict, ic3::Verdict::kUnsafe);
  EXPECT_FALSE(pr.winner.empty());
  ASSERT_EQ(pr.timings.size(), default_portfolio_backends().size());
  std::size_t winners = 0;
  for (const BackendTiming& t : pr.timings) {
    if (t.winner) {
      ++winners;
      EXPECT_EQ(t.name, pr.winner);
      EXPECT_NE(t.verdict, ic3::Verdict::kUnknown);
    }
    if (t.verdict == ic3::Verdict::kUnknown) {
      EXPECT_TRUE(t.cancelled);
    }
  }
  EXPECT_EQ(winners, 1u);
  // Generous bound: the circuit solves in milliseconds; only a loser
  // burning an unbounded budget could push the race past this.
  EXPECT_LT(wall.seconds(), 30.0);
}

TEST(Portfolio, BudgetExhaustionReportsRealWallClock) {
  // Nobody solves this within 100 ms; the no-winner result must still
  // carry the race's actual elapsed time, not a default-constructed 0.
  const auto cc = circuits::counter_wrap_safe(12, 1024, 2048);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  const PortfolioResult pr =
      run_portfolio(ts, {}, Deadline::in_milliseconds(100));
  EXPECT_EQ(pr.result.verdict, ic3::Verdict::kUnknown);
  EXPECT_TRUE(pr.winner.empty());
  EXPECT_GE(pr.result.seconds, 0.05);
  // Deadline expiry without a winner is not a cancellation.
  for (const BackendTiming& t : pr.timings) {
    EXPECT_FALSE(t.winner);
    EXPECT_FALSE(t.cancelled) << t.name;
  }
}

TEST(Portfolio, ExternalCancelStopsTheWholeRace) {
  const auto cc = circuits::counter_wrap_safe(12, 1024, 2048);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  CancelToken cancel;
  cancel.request_stop();
  const PortfolioResult pr = run_portfolio(ts, {}, {}, &cancel);
  EXPECT_EQ(pr.result.verdict, ic3::Verdict::kUnknown);
  EXPECT_TRUE(pr.winner.empty());
  for (const BackendTiming& t : pr.timings) {
    EXPECT_EQ(t.verdict, ic3::Verdict::kUnknown);
    EXPECT_TRUE(t.cancelled);
  }
}

/// The ISSUE's determinism & soundness gate: 10 races per verdict class;
/// whichever backend wins, the verdict must be identical every time and the
/// winner's certificate must check.
TEST(Portfolio, VerdictDeterministicOverTenRacesSafe) {
  const auto cc = circuits::token_ring_safe(6);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  for (int round = 0; round < 10; ++round) {
    const PortfolioResult pr = run_portfolio(ts, {});
    ASSERT_EQ(pr.result.verdict, ic3::Verdict::kSafe) << "round " << round;
    ASSERT_FALSE(pr.winner.empty());
    if (pr.result.invariant.has_value()) {
      EXPECT_TRUE(ic3::check_invariant(ts, *pr.result.invariant).ok)
          << "round " << round << " winner " << pr.winner;
    }
  }
}

TEST(Portfolio, VerdictDeterministicOverTenRacesUnsafe) {
  const auto cc = circuits::counter_unsafe(6, 10);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  for (int round = 0; round < 10; ++round) {
    const PortfolioResult pr = run_portfolio(ts, {});
    ASSERT_EQ(pr.result.verdict, ic3::Verdict::kUnsafe) << "round " << round;
    ASSERT_FALSE(pr.winner.empty());
    // Every backend in the default portfolio produces a trace on UNSAFE.
    ASSERT_TRUE(pr.result.trace.has_value())
        << "round " << round << " winner " << pr.winner;
    EXPECT_TRUE(ic3::check_trace(ts, *pr.result.trace).ok)
        << "round " << round << " winner " << pr.winner;
  }
}

}  // namespace
}  // namespace pilot::engine

namespace pilot::check {
namespace {

TEST(CheckerPortfolio, DispatchesThroughEngineSpec) {
  const auto cc = circuits::counter_unsafe(4, 6);
  CheckOptions opts;
  opts.engine_spec = "portfolio:bmc+kind";
  const CheckResult r = check_aig(cc.aig, opts);
  EXPECT_EQ(r.verdict, ic3::Verdict::kUnsafe);
  EXPECT_FALSE(r.winner.empty());
  ASSERT_EQ(r.backend_timings.size(), 2u);
  EXPECT_EQ(r.backend_timings[0].name, "bmc");
  EXPECT_EQ(r.backend_timings[1].name, "kind");
  ASSERT_TRUE(r.trace.has_value());
  EXPECT_TRUE(r.witness_checked);
  EXPECT_TRUE(r.witness_error.empty());
}

TEST(CheckerPortfolio, DefaultMixMatchesSingleEngineVerdicts) {
  // The bare "portfolio" spec (default backend mix) must agree with the
  // single engines on both verdict classes.
  CheckOptions portfolio_opts;
  portfolio_opts.engine_spec = "portfolio";
  EXPECT_EQ(check_aig(circuits::token_ring_safe(5).aig, portfolio_opts).verdict,
            ic3::Verdict::kSafe);
  EXPECT_EQ(check_aig(circuits::counter_unsafe(4, 6).aig, portfolio_opts)
                .verdict,
            ic3::Verdict::kUnsafe);
}

TEST(CheckerPortfolio, BadSpecThrows) {
  const auto cc = circuits::mutex_safe();
  CheckOptions opts;
  opts.engine_spec = "portfolio:bmc+nope";
  EXPECT_THROW((void)check_aig(cc.aig, opts), std::invalid_argument);
  opts.engine_spec = "portfolio:";  // trailing colon with no backend list
  EXPECT_THROW((void)check_aig(cc.aig, opts), std::invalid_argument);
  opts.engine_spec = "no-such-engine";
  EXPECT_THROW((void)check_aig(cc.aig, opts), std::invalid_argument);
}

}  // namespace
}  // namespace pilot::check
