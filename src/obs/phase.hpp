#pragma once

/// Per-phase wall-time profiling.
///
/// A PhaseProfile is a pair of fixed arrays (seconds, call counts) indexed by
/// the Phase enum — no maps, no allocation, cheap enough to keep always on.
/// PhaseScope is the RAII accumulator; it also opens a trace zone named after
/// the phase, so the `--stats` breakdown table and the `--trace` timeline
/// share one taxonomy.
///
/// Phases nest by design: kBlock covers the whole blocking loop, which
/// contains kGeneralize and kLift, which in turn contain kSatSolve — the rows
/// of the breakdown table overlap and do not sum to the total.

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace pilot::obs {

enum class Phase : std::uint8_t {
  kBlock = 0,      // IC3 blocking loop (obligation queue)
  kGeneralize,     // lemma generalization (MIC / ctgDown / prediction)
  kPredict,        // the paper's lemma-prediction pass (inside generalize)
  kPropagate,      // frame propagation / lemma pushing
  kLift,           // predecessor lifting (ternary sim + SAT)
  kRebuild,        // SAT solver rebuild at frame boundaries
  kSatSolve,       // SAT queries (solve_bad / relative induction / probes)
  kSatInprocess,   // clause subsumption on lemma install
  kSatVivify,      // learnt-clause vivification at frame boundaries
  kUnroll,         // BMC / k-induction transition unrolling
  kExchange,       // portfolio lemma-exchange import/validate
};

inline constexpr std::size_t kPhaseCount = 11;

[[nodiscard]] const char* phase_name(Phase phase);
[[nodiscard]] std::optional<Phase> phase_from_name(const std::string& name);

struct PhaseProfile {
  std::array<double, kPhaseCount> seconds{};
  std::array<std::uint64_t, kPhaseCount> calls{};

  void add(Phase phase, double secs, std::uint64_t n = 1) {
    seconds[static_cast<std::size_t>(phase)] += secs;
    calls[static_cast<std::size_t>(phase)] += n;
  }
  [[nodiscard]] double seconds_of(Phase phase) const {
    return seconds[static_cast<std::size_t>(phase)];
  }
  [[nodiscard]] std::uint64_t calls_of(Phase phase) const {
    return calls[static_cast<std::size_t>(phase)];
  }
  PhaseProfile& operator+=(const PhaseProfile& other);
  [[nodiscard]] bool empty() const;

  /// Aligned per-phase breakdown (name, calls, seconds, % of total_seconds).
  /// Skips phases that never ran; notes that rows overlap.
  [[nodiscard]] std::string table(double total_seconds) const;
};

/// Times the enclosing scope into `profile` (which may be null — e.g. a
/// stats-less caller) and opens a trace zone named after the phase.
class PhaseScope {
 public:
  PhaseScope(PhaseProfile* profile, Phase phase)
      : profile_(profile),
        phase_(phase)
#if !defined(PILOT_TRACE_DISABLED)
        ,
        zone_(phase_zone_id(phase))
#endif
  {
  }
  ~PhaseScope() {
    if (profile_ != nullptr) profile_->add(phase_, timer_.seconds());
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  static std::uint32_t phase_zone_id(Phase phase);

  PhaseProfile* profile_;
  Phase phase_;
  Timer timer_;
#if !defined(PILOT_TRACE_DISABLED)
  ScopedZone zone_;
#endif
};

}  // namespace pilot::obs
