/// \file bench_common.hpp
/// Shared scaffolding for the experiment-reproduction binaries: flag
/// parsing (suite size, per-case budget, parallelism, results-db sourcing)
/// and run-matrix helpers.  Each bench binary reproduces one table or
/// figure of the paper (see EXPERIMENTS.md for the index and the expected
/// shapes).
///
/// Record sourcing: by default a harness runs its (suite × engines) matrix
/// inline, but `--db runs.jsonl` makes it aggregate rows from a results
/// database written by `pilot-bench run` instead — so one campaign feeds
/// every table and figure without re-solving anything.  `--save-db` writes
/// the records of an inline run back out, closing the loop.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/runner.hpp"
#include "circuits/suite.hpp"
#include "corpus/results_db.hpp"
#include "util/options.hpp"

namespace pilot::bench {

struct BenchArgs {
  circuits::SuiteSize suite = circuits::SuiteSize::kQuick;
  std::string suite_name = "quick";
  std::int64_t budget_ms = 2000;
  std::int64_t jobs = 0;
  std::uint64_t seed = 0;
  /// Aggregate records from this JSONL results db instead of running.
  std::string db;
  /// After an inline run, append the records to this JSONL file.
  std::string save_db;
};

/// Parses the common bench flags; returns false if --help was shown or the
/// arguments were invalid.
inline bool parse_bench_args(int argc, const char* const* argv,
                             const std::string& description, BenchArgs* out) {
  std::string suite = "quick";
  std::int64_t budget_ms = out->budget_ms;
  std::int64_t jobs = 0;
  std::int64_t seed = 0;
  std::string db;
  std::string save_db;
  OptionParser parser(description);
  parser.add_choice("suite", &suite, {"tiny", "quick", "full"},
                    "benchmark suite size (HWMCC substitute, see DESIGN.md)");
  parser.add_int("budget-ms", &budget_ms,
                 "per-case wall-clock budget in milliseconds");
  parser.add_int("jobs", &jobs, "worker threads (0 = hardware concurrency)");
  parser.add_int("seed", &seed, "engine seed");
  parser.add_string("db", &db,
                    "aggregate records from this results db (JSONL, written "
                    "by pilot-bench run) instead of running the suite");
  parser.add_string("save-db", &save_db,
                    "append this run's records to a results db (JSONL)");
  if (!parser.parse(argc, argv)) return false;
  out->suite = circuits::suite_size_from_string(suite);
  out->suite_name = suite;
  out->budget_ms = budget_ms;
  out->jobs = jobs;
  out->seed = static_cast<std::uint64_t>(seed);
  out->db = db;
  out->save_db = save_db;
  return true;
}

/// Loads records for `engines` from a results db in case-major order.  The
/// figure harnesses pair per-engine vectors by index, so every engine must
/// cover exactly the same case set — asymmetric coverage (a partial or
/// subset-appended campaign) is an error, not a silent mispairing.  When
/// `budget_ms_out` is non-null it receives the largest per-case budget the
/// rows record, so timeout-edge plotting matches the campaign, not the
/// CLI default.
inline std::vector<check::RunRecord> records_from_db(
    const std::string& path, const std::vector<std::string>& engines,
    std::int64_t* budget_ms_out = nullptr) {
  corpus::ResultsDb db = corpus::ResultsDb::load(path);
  db.dedup();

  std::vector<std::string> case_order;  // first engine's order is canonical
  std::map<std::string, std::map<std::string, check::RunRecord>> by_key;
  std::int64_t budget_ms = 0;
  for (const std::string& spec : engines) {
    const std::vector<corpus::RunRow> rows = db.query(spec, "");
    if (rows.empty()) {
      throw std::runtime_error("results db " + path +
                               " has no rows for engine '" + spec +
                               "' — re-run pilot-bench with it");
    }
    auto& cases = by_key[spec];
    for (const corpus::RunRow& row : rows) {
      if (spec == engines.front()) case_order.push_back(row.record.case_name);
      cases[row.record.case_name] = row.record;
      budget_ms = std::max(budget_ms, row.context.budget_ms);
    }
  }

  std::vector<check::RunRecord> records;
  records.reserve(case_order.size() * engines.size());
  for (const std::string& case_name : case_order) {
    for (const std::string& spec : engines) {
      const auto& cases = by_key.at(spec);
      const auto it = cases.find(case_name);
      if (it == cases.end()) {
        throw std::runtime_error("results db " + path + ": engine '" + spec +
                                 "' has no row for case '" + case_name +
                                 "' — campaigns must cover the same cases");
      }
      records.push_back(it->second);
    }
  }
  for (const auto& [spec, cases] : by_key) {
    if (cases.size() != case_order.size()) {
      throw std::runtime_error("results db " + path + ": engine '" + spec +
                               "' covers " + std::to_string(cases.size()) +
                               " cases but '" + engines.front() +
                               "' covers " +
                               std::to_string(case_order.size()));
    }
  }
  if (budget_ms_out != nullptr && budget_ms > 0) *budget_ms_out = budget_ms;
  return records;
}

/// Runs the (suite × engines) matrix — or loads it from `--db` — with the
/// standard options.  In db mode `args.budget_ms` is updated to the
/// campaign's recorded budget so downstream timeout plotting is correct.
inline std::vector<check::RunRecord> run_suite(
    BenchArgs& args, const std::vector<std::string>& engines) {
  if (!args.db.empty()) {
    try {
      return records_from_db(args.db, engines, &args.budget_ms);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench: %s\n", e.what());
      std::exit(1);
    }
  }

  const std::vector<circuits::CircuitCase> cases =
      circuits::make_suite(args.suite);
  check::RunMatrixOptions options;
  options.budget_ms = args.budget_ms;
  options.jobs = static_cast<std::size_t>(args.jobs);
  options.seed = args.seed;
  std::vector<check::RunRecord> records =
      check::run_matrix(cases, engines, options);

  if (!args.save_db.empty()) {
    const corpus::RunContext context = corpus::make_run_context(
        "suite:" + args.suite_name, args.budget_ms, args.seed);
    corpus::ResultsDb::Writer writer(args.save_db);
    for (const check::RunRecord& r : records) writer.append({r, context});
    std::fprintf(stderr, "[bench] appended %zu records to %s\n",
                 records.size(), args.save_db.c_str());
  }
  return records;
}

/// Groups records per engine spec, preserving case order.
inline std::map<std::string, std::vector<check::RunRecord>> by_engine(
    const std::vector<check::RunRecord>& records) {
  std::map<std::string, std::vector<check::RunRecord>> out;
  for (const auto& r : records) out[r.engine].push_back(r);
  return out;
}

/// Paper-style configuration label (Table 1 row names).
inline std::string paper_label(const std::string& spec) {
  if (spec == "ic3-down") return "RIC3";
  if (spec == "ic3-down-pl") return "RIC3-pl";
  if (spec == "ic3-ctg") return "IC3ref";
  if (spec == "ic3-ctg-pl") return "IC3ref-pl";
  if (spec == "ic3-cav23") return "IC3ref-CAV23";
  if (spec == "pdr") return "ABC-PDR";
  return spec;
}

}  // namespace pilot::bench
