#include "ic3/stats.hpp"

#include <sstream>

namespace pilot::ic3 {

std::string Ic3Stats::summary() const {
  std::ostringstream oss;
  oss << "frames=" << max_frame << " lemmas=" << num_lemmas
      << " obligations=" << num_obligations << " ctis=" << num_ctis
      << " generalizations=" << num_generalizations
      << " mic_queries=" << num_mic_queries << " drops=" << num_mic_drops;
  if (num_prediction_queries > 0 || num_found_failed_parents > 0) {
    oss << " | predict: N_p=" << num_prediction_queries
        << " N_sp=" << num_successful_predictions
        << " N_fp=" << num_found_failed_parents
        << " SR_lp=" << sr_lp() << " SR_fp=" << sr_fp()
        << " SR_adv=" << sr_adv();
  }
  if (sat_solve_calls > 0) {
    oss << " | sat: calls=" << sat_solve_calls
        << " props=" << sat_propagations
        << " conflicts=" << sat_conflicts
        << " reuse_hits=" << sat_trail_reuse_hits
        << " saved_props=" << sat_saved_propagations
        << " bin_props=" << sat_binary_propagations
        << " glue=" << sat_glue_learnts
        << " reductions=" << sat_db_reductions
        << " rebuilds=" << num_solver_rebuilds;
    if (num_rebuild_carried_phases > 0) {
      oss << " carried_vars=" << num_rebuild_carried_phases;
    }
  }
  return oss.str();
}

}  // namespace pilot::ic3
