#include "ic3/witness.hpp"

#include <sstream>

#include "aig/simulation.hpp"
#include "sat/solver.hpp"

namespace pilot::ic3 {
namespace {

CheckOutcome failure(std::string reason) {
  return CheckOutcome{false, std::move(reason)};
}

}  // namespace

CheckOutcome check_trace(const ts::TransitionSystem& ts, const Trace& trace) {
  if (trace.states.empty()) return failure("empty trace");
  if (trace.inputs.size() != trace.states.size()) {
    return failure("trace needs one input vector per state");
  }
  const aig::Aig& circuit = ts.aig();

  // Concrete initial state: defined reset values, overridden by the first
  // cube (consistent because the engine checked intersection with I);
  // unconstrained latches default to 0.
  if (!ts.cube_intersects_init(trace.states[0].lits())) {
    return failure("first trace cube does not intersect the initial states");
  }
  aig::BitSimulator sim(circuit);
  sim.reset();
  for (const Lit l : trace.states[0]) {
    const int idx = ts.latch_index_of(l.var());
    if (idx < 0) return failure("trace cube contains a non-state literal");
    sim.set_latch(circuit.latches()[static_cast<std::size_t>(idx)],
                  l.sign() ? 0 : ~0ULL);
  }

  for (std::size_t step = 0; step < trace.states.size(); ++step) {
    // The current concrete state must lie inside the step's cube.
    for (const Lit l : trace.states[step]) {
      const int idx = ts.latch_index_of(l.var());
      if (idx < 0) return failure("trace cube contains a non-state literal");
      const std::uint64_t v =
          sim.latch_value(circuit.latches()[static_cast<std::size_t>(idx)]);
      const bool bit = (v & 1ULL) != 0;
      if (bit == l.sign()) {
        std::ostringstream oss;
        oss << "state " << step << " leaves its trace cube";
        return failure(oss.str());
      }
    }
    // Apply the recorded inputs (unconstrained inputs default to 0).
    std::vector<std::uint64_t> input_bits(circuit.num_inputs(), 0);
    for (const Lit l : trace.inputs[step]) {
      // Find which input this variable is; input vars are the AIG node ids.
      bool matched = false;
      for (std::size_t i = 0; i < circuit.num_inputs(); ++i) {
        if (ts.input_var(i) == l.var()) {
          input_bits[i] = l.sign() ? 0 : ~0ULL;
          matched = true;
          break;
        }
      }
      if (!matched) return failure("trace input literal is not an input var");
    }
    sim.compute(input_bits);
    if (step + 1 == trace.states.size()) {
      // Final step must raise the bad cone.
      const Lit bad = ts.bad();
      const std::uint64_t v =
          sim.value(aig::AigLit::make(static_cast<std::uint32_t>(bad.var()),
                                      bad.sign()));
      if ((v & 1ULL) == 0) return failure("bad signal not raised at the end");
    } else {
      sim.latch_step();
    }
  }
  return CheckOutcome{};
}

std::string to_aiger_witness(const ts::TransitionSystem& ts,
                             const Trace& trace,
                             std::size_t property_index) {
  const aig::Aig& circuit = ts.aig();
  std::ostringstream oss;
  oss << "1\n" << "b" << property_index << "\n";

  // Initial latch line: reset values overridden by the first cube.
  std::string latch_line(circuit.num_latches(), '0');
  for (std::size_t i = 0; i < circuit.num_latches(); ++i) {
    const aig::LBool init = circuit.init(circuit.latches()[i]);
    if (init == aig::l_True) latch_line[i] = '1';
  }
  if (!trace.states.empty()) {
    for (const Lit l : trace.states[0]) {
      const int idx = ts.latch_index_of(l.var());
      if (idx >= 0) latch_line[static_cast<std::size_t>(idx)] =
          l.sign() ? '0' : '1';
    }
  }
  oss << latch_line << "\n";

  for (const auto& step_inputs : trace.inputs) {
    std::string input_line(circuit.num_inputs(), '0');
    for (const Lit l : step_inputs) {
      for (std::size_t i = 0; i < circuit.num_inputs(); ++i) {
        if (ts.input_var(i) == l.var()) {
          input_line[i] = l.sign() ? '0' : '1';
          break;
        }
      }
    }
    oss << input_line << "\n";
  }
  oss << ".\n";
  return oss.str();
}

CheckOutcome check_invariant(const ts::TransitionSystem& ts,
                             const InductiveInvariant& inv) {
  // (a) Initiation: each clause must hold in I.  Clause ¬cube fails in I
  //     iff cube intersects I (I is a cube, so this syntactic test is exact).
  for (const Cube& c : inv.lemma_cubes) {
    if (ts.cube_intersects_init(c.lits())) {
      return failure("initiation fails for lemma " + c.to_string());
    }
  }

  // Independent solver with T and all invariant clauses.
  sat::Solver solver;
  ts.install(solver);
  for (const Cube& c : inv.lemma_cubes) {
    solver.add_clause(c.negated_lits());
  }

  // (c) Property: INV ∧ bad must be unsatisfiable.
  {
    const std::vector<Lit> assumptions{ts.bad()};
    if (solver.solve(assumptions) != sat::SolveResult::kUnsat) {
      return failure("invariant does not exclude the bad cone");
    }
  }

  // (b) Consecution: for each clause c, INV ∧ T ∧ ¬c′ must be UNSAT.
  for (const Cube& c : inv.lemma_cubes) {
    std::vector<Lit> assumptions;
    assumptions.reserve(c.size());
    for (const Lit l : c) assumptions.push_back(ts.prime(l));
    if (solver.solve(assumptions) != sat::SolveResult::kUnsat) {
      return failure("consecution fails for lemma " + c.to_string());
    }
  }
  return CheckOutcome{};
}

}  // namespace pilot::ic3
