#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "util/json.hpp"

namespace pilot::obs {
namespace {

constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 16;  // ~2.5 MB

/// One thread's ring. Single writer (the owning thread); readers only look
/// after the writer has quiesced (export runs post-join, snapshot after the
/// emitting code returned). `head` counts every event ever written — the
/// live window is the last `min(head, capacity)` slots, so the exact number
/// of overwritten ("dropped") events is `head - min(head, capacity)`.
struct ThreadStream {
  explicit ThreadStream(std::size_t capacity) : slots(capacity) {}

  std::string thread_name;
  std::uint64_t track_id = 0;
  std::vector<TraceEvent> slots;
  std::atomic<std::uint64_t> head{0};

  void write(const TraceEvent& ev) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    slots[h % slots.size()] = ev;
    head.store(h + 1, std::memory_order_release);
  }
};

class Collector {
 public:
  static Collector& instance() {
    static Collector c;
    return c;
  }

  std::atomic<bool> enabled{false};

  std::uint32_t intern(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = name_ids_.find(name);
    if (it != name_ids_.end()) return it->second;
    names_.push_back(name);
    const auto id = static_cast<std::uint32_t>(names_.size());  // ids from 1
    name_ids_.emplace(name, id);
    return id;
  }

  /// Returns the calling thread's stream for the current epoch, registering
  /// a fresh ring on first use (or after a reset).
  ThreadStream* current_stream() {
    thread_local ThreadStream* stream = nullptr;
    thread_local std::uint64_t stream_epoch = 0;
    const std::uint64_t now_epoch = epoch_.load(std::memory_order_acquire);
    if (stream == nullptr || stream_epoch != now_epoch) {
      std::lock_guard<std::mutex> lock(mutex_);
      auto owned = std::make_unique<ThreadStream>(ring_capacity_);
      owned->track_id = next_track_id_++;
      owned->thread_name = "thread-" + std::to_string(owned->track_id);
      stream = owned.get();
      stream_epoch = epoch_.load(std::memory_order_relaxed);
      streams_.push_back(std::move(owned));
    }
    return stream;
  }

  void name_thread(const std::string& name) {
    ThreadStream* stream = current_stream();
    std::lock_guard<std::mutex> lock(mutex_);
    stream->thread_name = name;
  }

  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    streams_.clear();
    next_track_id_ = 1;
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    t0_ = std::chrono::steady_clock::now();
  }

  void set_capacity(std::size_t events) {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_capacity_ = events == 0 ? 1 : events;
  }

  std::vector<StreamSnapshot> snapshot() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<StreamSnapshot> out;
    out.reserve(streams_.size());
    for (const auto& stream : streams_) {
      StreamSnapshot snap;
      snap.thread_name = stream->thread_name;
      const std::uint64_t head = stream->head.load(std::memory_order_acquire);
      const std::uint64_t cap = stream->slots.size();
      const std::uint64_t live = head < cap ? head : cap;
      snap.recorded = head;
      snap.dropped = head - live;
      snap.events.reserve(live);
      for (std::uint64_t i = head - live; i < head; ++i) {
        snap.events.push_back(stream->slots[i % cap]);
      }
      out.push_back(std::move(snap));
    }
    return out;
  }

  std::string name_of(std::uint32_t id) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (id == 0 || id > names_.size()) return "?";
    return names_[id - 1];
  }

  std::vector<std::string> name_table() {
    std::lock_guard<std::mutex> lock(mutex_);
    return names_;
  }

  std::vector<std::uint64_t> track_ids() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::uint64_t> out;
    out.reserve(streams_.size());
    for (const auto& stream : streams_) out.push_back(stream->track_id);
    return out;
  }

 private:
  Collector() : t0_(std::chrono::steady_clock::now()) {}

  std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadStream>> streams_;
  std::unordered_map<std::string, std::uint32_t> name_ids_;
  std::vector<std::string> names_;
  std::atomic<std::uint64_t> epoch_{1};
  std::size_t ring_capacity_ = kDefaultRingCapacity;
  std::uint64_t next_track_id_ = 1;
  std::chrono::steady_clock::time_point t0_;
};

void append_event_json(std::string* out, const std::string& name,
                       std::uint64_t tid, const TraceEvent& ev) {
  char buf[96];
  const double ts_us = static_cast<double>(ev.ts_ns) / 1000.0;
  const char* ph = "i";
  switch (ev.type) {
    case EventType::kBegin: ph = "B"; break;
    case EventType::kEnd: ph = "E"; break;
    case EventType::kInstant: ph = "i"; break;
    case EventType::kCounter: ph = "C"; break;
  }
  *out += "{\"name\":";
  *out += json::escape(name);
  std::snprintf(buf, sizeof(buf), ",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%llu",
                ph, ts_us, static_cast<unsigned long long>(tid));
  *out += buf;
  if (ev.type == EventType::kCounter) {
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%llu}",
                  static_cast<unsigned long long>(ev.a0));
    *out += buf;
  } else if (ev.type == EventType::kBegin && (ev.a0 != 0 || ev.a1 != 0)) {
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"a0\":%llu,\"a1\":%llu}",
                  static_cast<unsigned long long>(ev.a0),
                  static_cast<unsigned long long>(ev.a1));
    *out += buf;
  } else if (ev.type == EventType::kInstant) {
    *out += ",\"s\":\"t\"";
  }
  *out += "}";
}

}  // namespace

bool trace_enabled() {
  return Collector::instance().enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  Collector::instance().enabled.store(on, std::memory_order_relaxed);
}

std::uint32_t intern_name(const std::string& name) {
  return Collector::instance().intern(name);
}

void record_event(EventType type, std::uint32_t name_id, std::uint64_t a0,
                  std::uint64_t a1) {
  Collector& c = Collector::instance();
  if (!c.enabled.load(std::memory_order_relaxed)) return;
  TraceEvent ev;
  ev.ts_ns = c.now_ns();
  ev.name_id = name_id;
  ev.type = type;
  ev.a0 = a0;
  ev.a1 = a1;
  c.current_stream()->write(ev);
}

void name_current_thread(const std::string& name) {
  Collector::instance().name_thread(name);
}

void reset_trace() { Collector::instance().reset(); }

void set_ring_capacity(std::size_t events) {
  Collector::instance().set_capacity(events);
}

std::vector<StreamSnapshot> snapshot_streams() {
  return Collector::instance().snapshot();
}

std::string export_chrome_trace() {
  Collector& c = Collector::instance();
  const std::vector<StreamSnapshot> streams = c.snapshot();
  const std::vector<std::uint64_t> tracks = c.track_ids();
  const std::vector<std::string> names = c.name_table();
  const auto name_of = [&names](std::uint32_t id) -> std::string {
    if (id == 0 || id > names.size()) return "?";
    return names[id - 1];
  };

  std::string out;
  out.reserve(streams.size() * 4096 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"pilot\"}}";

  for (std::size_t si = 0; si < streams.size(); ++si) {
    const StreamSnapshot& stream = streams[si];
    const std::uint64_t tid = si < tracks.size() ? tracks[si] : si + 1;
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{\"name\":";
    out += json::escape(stream.thread_name);
    out += "}}";

    // Ring overwrite can leave kEnd events whose matching kBegin was
    // dropped; unbalanced events break Perfetto's slice nesting, so skip
    // any kEnd while the surviving depth is zero and close still-open
    // zones at the stream's last timestamp.
    std::uint64_t depth = 0;
    std::uint64_t last_ts = 0;
    std::vector<std::uint32_t> open;
    for (const TraceEvent& ev : stream.events) {
      last_ts = ev.ts_ns > last_ts ? ev.ts_ns : last_ts;
      if (ev.type == EventType::kEnd) {
        if (depth == 0) continue;
        --depth;
        open.pop_back();
      } else if (ev.type == EventType::kBegin) {
        ++depth;
        open.push_back(ev.name_id);
      }
      out += ",\n";
      append_event_json(&out, name_of(ev.name_id), tid, ev);
    }
    for (std::size_t i = open.size(); i > 0; --i) {
      TraceEvent end;
      end.ts_ns = last_ts;
      end.name_id = open[i - 1];
      end.type = EventType::kEnd;
      out += ",\n";
      append_event_json(&out, name_of(end.name_id), tid, end);
    }
    if (stream.dropped > 0) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    ",\n{\"name\":\"trace_dropped_events\",\"ph\":\"i\",\"ts\":0.0,"
                    "\"pid\":1,\"tid\":%llu,\"s\":\"t\",\"args\":{\"count\":%llu}}",
                    static_cast<unsigned long long>(tid),
                    static_cast<unsigned long long>(stream.dropped));
      out += buf;
    }
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string text = export_chrome_trace();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

}  // namespace pilot::obs
