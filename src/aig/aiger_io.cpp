#include "aig/aiger_io.hpp"

#include <array>
#include <cstdint>
#include <fstream>
#include <functional>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace pilot::aig {
namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("aiger: " + message);
}

struct Header {
  bool binary = false;
  std::uint64_t m = 0, i = 0, l = 0, o = 0, a = 0, b = 0, c = 0;
};

Header read_header(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) fail("missing header");
  std::istringstream iss(line);
  std::string magic;
  iss >> magic;
  Header h;
  if (magic == "aig") {
    h.binary = true;
  } else if (magic != "aag") {
    fail("bad magic '" + magic + "'");
  }
  if (!(iss >> h.m >> h.i >> h.l >> h.o >> h.a)) fail("truncated header");
  // Optional AIGER 1.9 extensions: B C J F.
  std::uint64_t j = 0, f = 0;
  if (iss >> h.b) {
    if (iss >> h.c) {
      if (iss >> j && j != 0) fail("justice properties not supported");
      if (iss >> f && f != 0) fail("fairness constraints not supported");
    }
  }
  return h;
}

std::uint64_t read_uint_line(std::istream& in, const char* what) {
  std::string line;
  if (!std::getline(in, line)) fail(std::string("truncated ") + what);
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(line, &pos);
    // Allow trailing fields to be handled by the caller via full parsing.
    (void)pos;
    return v;
  } catch (...) {
    fail(std::string("bad number in ") + what + ": '" + line + "'");
  }
}

/// Reads one LEB-style AIGER varint (7 bits per byte, MSB = continuation).
std::uint64_t read_varint(std::istream& in) {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    const int ch = in.get();
    if (ch == EOF) fail("truncated binary and-gate section");
    value |= static_cast<std::uint64_t>(ch & 0x7F) << shift;
    if ((ch & 0x80) == 0) return value;
    shift += 7;
    if (shift > 63) fail("varint overflow");
  }
}

void write_varint(std::ostream& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.put(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.put(static_cast<char>(value));
}

/// Shared state for translating AIGER literal codes into builder literals.
struct Translator {
  // aiger var → builder literal for the positive aiger literal.
  std::vector<AigLit> map;
  // aiger var → (rhs0, rhs1) codes for AND definitions not yet built.
  std::vector<std::array<std::uint64_t, 2>> and_defs;
  std::vector<char> is_and;
  std::vector<char> expanding;  // cycle detection during resolution

  explicit Translator(std::uint64_t max_var)
      : map(max_var + 1, kInvalidLit),
        and_defs(max_var + 1),
        is_and(max_var + 1, 0),
        expanding(max_var + 1, 0) {
    map[0] = AigLit::constant(false);
  }

  /// Resolves an AIGER literal, building AND gates on demand (iteratively,
  /// to survive very deep graphs).  Rejects combinational cycles.
  AigLit resolve(std::uint64_t code, Aig& out) {
    const std::uint64_t root_var = code >> 1;
    if (root_var >= map.size()) fail("literal exceeds max var");
    if (map[root_var] == kInvalidLit) {
      if (!is_and[root_var]) fail("undefined literal " + std::to_string(code));
      std::vector<std::uint64_t> stack{root_var};
      expanding[root_var] = 1;
      while (!stack.empty()) {
        const std::uint64_t v = stack.back();
        const auto [r0, r1] = and_defs[v];
        const std::uint64_t v0 = r0 >> 1;
        const std::uint64_t v1 = r1 >> 1;
        if (v0 >= map.size() || v1 >= map.size()) fail("fanin out of range");
        bool ready = true;
        for (const std::uint64_t fv : {v0, v1}) {
          if (map[fv] == kInvalidLit) {
            if (!is_and[fv]) fail("undefined fanin variable");
            if (expanding[fv]) fail("combinational cycle through variable " +
                                    std::to_string(fv));
            expanding[fv] = 1;
            stack.push_back(fv);
            ready = false;
          }
        }
        if (!ready) continue;
        stack.pop_back();
        expanding[v] = 0;
        if (map[v] != kInvalidLit) continue;  // resolved via another path
        const AigLit f0 = map[v0] ^ ((r0 & 1) != 0);
        const AigLit f1 = map[v1] ^ ((r1 & 1) != 0);
        map[v] = out.make_and(f0, f1);
      }
    }
    return map[root_var] ^ ((code & 1) != 0);
  }
};

LBool init_from_code(std::uint64_t code, std::uint64_t latch_code) {
  if (code == 0) return l_False;
  if (code == 1) return l_True;
  if (code == latch_code) return l_Undef;  // AIGER: init==lhs means "x"
  fail("unsupported latch reset value " + std::to_string(code));
}

Aig read_ascii(std::istream& in, const Header& h) {
  Aig out;
  Translator tr(h.m);

  std::vector<std::uint64_t> latch_codes;
  std::vector<std::uint64_t> latch_next_codes;
  // Inputs.
  for (std::uint64_t n = 0; n < h.i; ++n) {
    const std::uint64_t code = read_uint_line(in, "input");
    if ((code & 1) != 0 || code == 0) fail("invalid input literal");
    tr.map[code >> 1] = out.add_input();
  }
  // Latches (next-state resolved after AND defs are known).
  for (std::uint64_t n = 0; n < h.l; ++n) {
    std::string line;
    if (!std::getline(in, line)) fail("truncated latch section");
    std::istringstream iss(line);
    std::uint64_t code = 0, next = 0, init = 0;
    if (!(iss >> code >> next)) fail("bad latch line '" + line + "'");
    if ((code & 1) != 0 || code == 0) fail("invalid latch literal");
    LBool reset = l_False;
    if (iss >> init) reset = init_from_code(init, code);
    tr.map[code >> 1] = out.add_latch(reset);
    latch_codes.push_back(code);
    latch_next_codes.push_back(next);
  }
  std::vector<std::uint64_t> output_codes(h.o);
  for (auto& code : output_codes) code = read_uint_line(in, "output");
  std::vector<std::uint64_t> bad_codes(h.b);
  for (auto& code : bad_codes) code = read_uint_line(in, "bad");
  std::vector<std::uint64_t> constraint_codes(h.c);
  for (auto& code : constraint_codes) code = read_uint_line(in, "constraint");
  // AND definitions.
  for (std::uint64_t n = 0; n < h.a; ++n) {
    std::string line;
    if (!std::getline(in, line)) fail("truncated and section");
    std::istringstream iss(line);
    std::uint64_t lhs = 0, rhs0 = 0, rhs1 = 0;
    if (!(iss >> lhs >> rhs0 >> rhs1)) fail("bad and line '" + line + "'");
    if ((lhs & 1) != 0 || lhs == 0) fail("invalid and lhs");
    const std::uint64_t v = lhs >> 1;
    if (v >= tr.is_and.size()) fail("and lhs exceeds max var");
    if (tr.map[v] != kInvalidLit || tr.is_and[v]) fail("redefined variable");
    tr.is_and[v] = 1;
    tr.and_defs[v] = {rhs0, rhs1};
  }
  // Build every listed AND gate (even ones unreachable from the outputs) so
  // the parse is faithful to the file.
  for (std::uint64_t v = 1; v <= h.m; ++v) {
    if (tr.is_and[v]) tr.resolve(v << 1, out);
  }
  for (std::uint64_t n = 0; n < h.l; ++n) {
    out.set_next(tr.map[latch_codes[n] >> 1],
                 tr.resolve(latch_next_codes[n], out));
  }
  for (const std::uint64_t code : output_codes) {
    out.add_output(tr.resolve(code, out));
  }
  for (const std::uint64_t code : bad_codes) {
    out.add_bad(tr.resolve(code, out));
  }
  for (const std::uint64_t code : constraint_codes) {
    out.add_constraint(tr.resolve(code, out));
  }
  return out;
}

Aig read_binary(std::istream& in, const Header& h) {
  if (h.m != h.i + h.l + h.a) fail("binary header: M != I+L+A");
  Aig out;
  Translator tr(h.m);
  // Inputs are implicit: variables 1..I.
  for (std::uint64_t n = 0; n < h.i; ++n) {
    tr.map[n + 1] = out.add_input();
  }
  // Latches are variables I+1..I+L; each line holds the next-state literal
  // and an optional reset value.
  std::vector<std::uint64_t> latch_next_codes(h.l);
  for (std::uint64_t n = 0; n < h.l; ++n) {
    std::string line;
    if (!std::getline(in, line)) fail("truncated latch section");
    std::istringstream iss(line);
    std::uint64_t next = 0, init = 0;
    if (!(iss >> next)) fail("bad latch line '" + line + "'");
    const std::uint64_t latch_code = 2 * (h.i + n + 1);
    LBool reset = l_False;
    if (iss >> init) reset = init_from_code(init, latch_code);
    tr.map[latch_code >> 1] = out.add_latch(reset);
    latch_next_codes[n] = next;
  }
  std::vector<std::uint64_t> output_codes(h.o);
  for (auto& code : output_codes) code = read_uint_line(in, "output");
  std::vector<std::uint64_t> bad_codes(h.b);
  for (auto& code : bad_codes) code = read_uint_line(in, "bad");
  std::vector<std::uint64_t> constraint_codes(h.c);
  for (auto& code : constraint_codes) code = read_uint_line(in, "constraint");
  // Binary AND section: lhs implicit and ascending, fanins delta-encoded.
  for (std::uint64_t n = 0; n < h.a; ++n) {
    const std::uint64_t lhs = 2 * (h.i + h.l + n + 1);
    const std::uint64_t delta0 = read_varint(in);
    if (delta0 > lhs) fail("binary and: rhs0 delta out of range");
    const std::uint64_t rhs0 = lhs - delta0;
    const std::uint64_t delta1 = read_varint(in);
    if (delta1 > rhs0) fail("binary and: rhs1 delta out of range");
    const std::uint64_t rhs1 = rhs0 - delta1;
    const AigLit f0 = tr.resolve(rhs0, out);
    const AigLit f1 = tr.resolve(rhs1, out);
    tr.map[lhs >> 1] = out.make_and(f0, f1);
  }
  for (std::uint64_t n = 0; n < h.l; ++n) {
    const std::uint64_t latch_code = 2 * (h.i + n + 1);
    out.set_next(tr.map[latch_code >> 1],
                 tr.resolve(latch_next_codes[n], out));
  }
  for (const std::uint64_t code : output_codes) {
    out.add_output(tr.resolve(code, out));
  }
  for (const std::uint64_t code : bad_codes) {
    out.add_bad(tr.resolve(code, out));
  }
  for (const std::uint64_t code : constraint_codes) {
    out.add_constraint(tr.resolve(code, out));
  }
  return out;
}

/// Canonical AIGER numbering for writing: inputs, then latches, then AND
/// gates in topological (creation) order.
struct Numbering {
  std::vector<std::uint64_t> code_of_node;  // positive literal code per node

  explicit Numbering(const Aig& aig) : code_of_node(aig.num_nodes(), 0) {
    std::uint64_t var = 0;
    for (const std::uint32_t n : aig.inputs()) code_of_node[n] = 2 * ++var;
    for (const std::uint32_t n : aig.latches()) code_of_node[n] = 2 * ++var;
    for (const std::uint32_t n : aig.ands()) code_of_node[n] = 2 * ++var;
  }

  [[nodiscard]] std::uint64_t code(AigLit l) const {
    return code_of_node[l.node()] | (l.negated() ? 1u : 0u);
  }
};

void write_header_and_sections(
    const Aig& aig, std::ostream& out, bool binary,
    const Numbering& num) {
  out << (binary ? "aig " : "aag ")
      << (aig.num_inputs() + aig.num_latches() + aig.num_ands()) << " "
      << aig.num_inputs() << " " << aig.num_latches() << " "
      << aig.outputs().size() << " " << aig.num_ands();
  if (!aig.bads().empty() || !aig.constraints().empty()) {
    out << " " << aig.bads().size();
    if (!aig.constraints().empty()) out << " " << aig.constraints().size();
  }
  out << "\n";
  if (!binary) {
    for (const std::uint32_t n : aig.inputs()) {
      out << num.code_of_node[n] << "\n";
    }
  }
  for (const std::uint32_t n : aig.latches()) {
    if (!binary) out << num.code_of_node[n] << " ";
    out << num.code(aig.next(n));
    const LBool init = aig.init(n);
    if (init == l_True) {
      out << " 1";
    } else if (init.is_undef()) {
      out << " " << num.code_of_node[n];
    }
    out << "\n";
  }
  for (const AigLit l : aig.outputs()) out << num.code(l) << "\n";
  for (const AigLit l : aig.bads()) out << num.code(l) << "\n";
  for (const AigLit l : aig.constraints()) out << num.code(l) << "\n";
}

}  // namespace

Aig read_aiger(std::istream& in) {
  const Header h = read_header(in);
  if (h.m < h.i + h.l) fail("header: M < I+L");
  return h.binary ? read_binary(in, h) : read_ascii(in, h);
}

Aig read_aiger_string(const std::string& text) {
  std::istringstream iss(text);
  return read_aiger(iss);
}

Aig read_aiger_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open '" + path + "'");
  return read_aiger(in);
}

void write_aiger_ascii(const Aig& aig, std::ostream& out) {
  const Numbering num(aig);
  write_header_and_sections(aig, out, /*binary=*/false, num);
  for (const std::uint32_t n : aig.ands()) {
    std::uint64_t rhs0 = num.code(aig.fanin0(n));
    std::uint64_t rhs1 = num.code(aig.fanin1(n));
    if (rhs0 < rhs1) std::swap(rhs0, rhs1);
    out << num.code_of_node[n] << " " << rhs0 << " " << rhs1 << "\n";
  }
}

void write_aiger_binary(const Aig& aig, std::ostream& out) {
  const Numbering num(aig);
  write_header_and_sections(aig, out, /*binary=*/true, num);
  for (const std::uint32_t n : aig.ands()) {
    const std::uint64_t lhs = num.code_of_node[n];
    std::uint64_t rhs0 = num.code(aig.fanin0(n));
    std::uint64_t rhs1 = num.code(aig.fanin1(n));
    if (rhs0 < rhs1) std::swap(rhs0, rhs1);
    write_varint(out, lhs - rhs0);
    write_varint(out, rhs0 - rhs1);
  }
}

std::string to_aiger_ascii(const Aig& aig) {
  std::ostringstream oss;
  write_aiger_ascii(aig, oss);
  return oss.str();
}

std::string to_aiger_binary(const Aig& aig) {
  std::ostringstream oss;
  write_aiger_binary(aig, oss);
  return oss.str();
}

void write_aiger_file(const Aig& aig, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot open '" + path + "' for writing");
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".aag") {
    write_aiger_ascii(aig, out);
  } else {
    write_aiger_binary(aig, out);
  }
}

}  // namespace pilot::aig
