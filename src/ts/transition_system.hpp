/// \file transition_system.hpp
/// Boolean transition system S = (X, Y, I, T) extracted from an AIG, with a
/// fixed CNF encoding shared by every SAT solver instance in the checker.
///
/// SAT variable layout (stable across solvers so cubes can be exchanged):
///   var n           — current-step value of AIG node n (inputs Y, latches X,
///                     AND gates, and the constant node 0)
///   var N + i       — next-step value X' of the i-th latch
/// where N = number of AIG nodes.  install() creates exactly these variables
/// in a fresh solver and adds the transition relation
///   T(X, Y, X') = Tseitin(AND gates) ∧ (X'_i ↔ next_i(X,Y)) ∧ constraints
/// plus the unit literal fixing node 0 to false.
///
/// The property is normalized to a *bad cone*: bad = B ∧ ⋀ constraints,
/// built inside the AIG, so `bad()` is a plain literal over current-step
/// variables.  Safety means bad is unreachable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.hpp"
#include "sat/solver.hpp"
#include "sat/types.hpp"

namespace pilot::ts {

using aig::Aig;
using aig::AigLit;
using sat::LBool;
using sat::Lit;
using sat::Var;

class TransitionSystem {
 public:
  /// Builds a transition system for property `property_index` of `aig`.
  /// AIGER 1.9 bad states are preferred; if the AIG declares none, the
  /// output with that index is interpreted as a bad signal (HWMCC'10-style).
  /// When `use_coi` holds, the circuit is first reduced to the cone of
  /// influence of the property and the constraints.
  static TransitionSystem from_aig(const Aig& aig, std::size_t property_index = 0,
                                   bool use_coi = true);

  /// The (possibly COI-reduced) circuit this system encodes.
  [[nodiscard]] const Aig& aig() const { return aig_; }

  // ----- SAT encoding ------------------------------------------------------

  /// Number of SAT variables install() creates.
  [[nodiscard]] int num_encoding_vars() const {
    return static_cast<int>(aig_.num_nodes() + aig_.num_latches());
  }

  /// Creates the encoding variables in `solver` (which must be fresh) and
  /// adds the transition relation.  Callers may create additional variables
  /// afterwards (e.g. activation literals).
  void install(sat::Solver& solver) const;

  /// Installs only the current-step combinational logic (no X' definitions).
  /// Used for purely combinational queries such as bad-cube lifting.
  void install_combinational(sat::Solver& solver) const;

  /// Installs the full transition relation with every variable shifted by
  /// `offset`, which must equal the solver's current variable count (copies
  /// are installed back to back).  Used to pack several variable-disjoint
  /// copies of T into one solver for batched generalization probes.
  void install_shifted(sat::Solver& solver, Var offset) const;

  /// Current-step literal of an AIG literal.
  [[nodiscard]] Lit cur(AigLit l) const {
    return Lit::make(static_cast<Var>(l.node()), l.negated());
  }

  /// Bad-cone literal (current step).
  [[nodiscard]] Lit bad() const { return bad_; }

  // ----- state variables ---------------------------------------------------

  [[nodiscard]] std::size_t num_latches() const { return aig_.num_latches(); }
  [[nodiscard]] std::size_t num_inputs() const { return aig_.num_inputs(); }

  /// SAT variable of the i-th latch (current step).
  [[nodiscard]] Var state_var(std::size_t latch_index) const {
    return static_cast<Var>(aig_.latches()[latch_index]);
  }
  /// SAT variable of the i-th latch at the next step (X').
  [[nodiscard]] Var next_state_var(std::size_t latch_index) const {
    return static_cast<Var>(aig_.num_nodes() + latch_index);
  }
  /// SAT variable of the i-th primary input.
  [[nodiscard]] Var input_var(std::size_t input_index) const {
    return static_cast<Var>(aig_.inputs()[input_index]);
  }

  /// Latch index of a current-step state variable, or -1 if `v` is not one.
  [[nodiscard]] int latch_index_of(Var v) const {
    return v < static_cast<Var>(latch_index_.size()) ? latch_index_[v] : -1;
  }
  [[nodiscard]] bool is_state_var(Var v) const {
    return latch_index_of(v) >= 0;
  }

  /// Translates a current-step state literal to the corresponding X' literal.
  [[nodiscard]] Lit prime(Lit state_lit) const {
    const int idx = latch_index_of(state_lit.var());
    return Lit::make(next_state_var(static_cast<std::size_t>(idx)),
                     state_lit.sign());
  }

  // ----- initial states ----------------------------------------------------

  /// Unit literals describing I (one per latch with a defined reset value).
  [[nodiscard]] const std::vector<Lit>& init_literals() const {
    return init_literals_;
  }

  /// Reset value of a state variable (l_Undef if uninitialized or not a
  /// state variable).
  [[nodiscard]] LBool init_value(Var v) const;

  /// True iff the cube (over state variables) shares at least one state
  /// with I.  Exact because I is a cube.
  [[nodiscard]] bool cube_intersects_init(std::span<const Lit> cube) const;

 private:
  TransitionSystem() = default;

  Aig aig_;
  Lit bad_;
  std::vector<Lit> init_literals_;
  std::vector<int> latch_index_;  // current-step var → latch index or -1
};

}  // namespace pilot::ts
