#include "ic3/generalizer.hpp"

#include "obs/phase.hpp"

namespace pilot::ic3 {

Generalizer::Generalizer(const ts::TransitionSystem& ts,
                         SolverManager& solvers, Frames& frames,
                         const Config& cfg, Ic3Stats& stats)
    : stats_(stats),
      strategy_(make_gen_strategy(cfg.resolved_gen_spec(),
                                  GenContext{ts, solvers, frames, cfg,
                                             stats})) {}

Cube Generalizer::generalize(const Cube& cube, const Cube& core,
                             std::size_t level, const Deadline& deadline,
                             const AddLemmaFn& add_lemma) {
  ++stats_.num_generalizations;  // N_g
  const std::string active = strategy_->active_name();
  // Batched drop solves count as spent queries too: the dynamic policy
  // compares strategies by what they cost, and a batch solve is one solve.
  const std::uint64_t queries_before = stats_.num_mic_queries +
                                       stats_.num_prediction_queries +
                                       stats_.num_batched_drop_solves;
  const std::uint64_t sp_before = stats_.num_successful_predictions;
  const double predict_before = stats_.time_predict;
  Timer t;
  const Cube lemma = [&] {
    obs::PhaseScope phase(&stats_.phases, obs::Phase::kGeneralize);
    return strategy_->generalize(cube, core, level, deadline, add_lemma);
  }();
  // Keep time_generalize and time_predict disjoint, as they were when the
  // engine timed them separately: the predictor's share (accumulated by
  // the predict strategy inside this call) is carved out.  The phases
  // table instead reports gross generalize time (predict nests inside).
  stats_.time_generalize +=
      t.seconds() - (stats_.time_predict - predict_before);
  const std::uint64_t spent = stats_.num_mic_queries +
                              stats_.num_prediction_queries +
                              stats_.num_batched_drop_solves - queries_before;
  // Success is measured against `core` — the strategy's actual starting
  // point — so unsat-core shrinkage done by the engine's blocking query is
  // not credited to the strategy.  A validated prediction counts as a
  // success in its own right (its point is saving queries, not literals).
  const std::uint64_t dropped =
      lemma.size() < core.size()
          ? static_cast<std::uint64_t>(core.size() - lemma.size())
          : 0;
  const bool predicted = stats_.num_successful_predictions > sp_before;
  stats_.record_gen_outcome(active, dropped > 0 || predicted, spent, dropped);
  return lemma;
}

}  // namespace pilot::ic3
