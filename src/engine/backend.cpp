#include "engine/backend.hpp"

#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "bmc/bmc.hpp"
#include "bmc/kinduction.hpp"
#include "ic3/gen_strategy.hpp"

namespace pilot::engine {
namespace {

// ----- built-in backends -----------------------------------------------------

/// Every IC3 engine configuration: the registry name picks the ic3::Config
/// (unless the context overrides it), check() is a thin adapter around
/// ic3::Engine.
class Ic3Backend final : public Backend {
 public:
  Ic3Backend(std::string name, const ts::TransitionSystem& ts,
             const BackendContext& ctx)
      : name_(std::move(name)),
        ts_(ts),
        cfg_(ctx.ic3_overrides.has_value() ? *ctx.ic3_overrides
                                           : ic3_config_for(name_, ctx.seed)) {
    if (!ctx.gen_spec.empty()) {
      ic3::validate_gen_spec(ctx.gen_spec);  // fail before check() runs
      cfg_.gen_spec = ctx.gen_spec;
    }
    if (ctx.lift_sim.has_value()) cfg_.lift_sim = *ctx.lift_sim;
    if (ctx.gen_ternary_filter.has_value()) {
      cfg_.gen_ternary_filter = *ctx.gen_ternary_filter;
    }
    if (ctx.sat_inprocess.has_value()) cfg_.sat_inprocess = *ctx.sat_inprocess;
    if (ctx.gen_batch.has_value()) cfg_.gen_batch = *ctx.gen_batch;
    if (ctx.gen_batch_adaptive.has_value()) {
      cfg_.gen_batch_adaptive = *ctx.gen_batch_adaptive;
    }
    cfg_.lemma_bus = ctx.lemma_bus;
    cfg_.progress = ctx.progress;
  }

  [[nodiscard]] const std::string& name() const override { return name_; }

  EngineResult check(const Deadline& deadline,
                     const CancelToken* cancel) override {
    ic3::Engine engine(ts_, cfg_);
    ic3::Result r = engine.check(deadline, cancel);
    EngineResult out;
    // IC3 is complete: kUnknown only ever means the run was cut short.
    out.interrupted = r.verdict == ic3::Verdict::kUnknown;
    out.verdict = r.verdict;
    out.seconds = r.seconds;
    out.frames = r.frames;
    out.stats = r.stats;
    out.trace = std::move(r.trace);
    out.invariant = std::move(r.invariant);
    return out;
  }

 private:
  std::string name_;
  const ts::TransitionSystem& ts_;
  ic3::Config cfg_;
};

class BmcBackend final : public Backend {
 public:
  BmcBackend(const ts::TransitionSystem& ts, const BackendContext& ctx)
      : ts_(ts) {
    options_.seed = ctx.seed;
    if (ctx.sat_inprocess.has_value()) options_.inprocess = *ctx.sat_inprocess;
    options_.progress = ctx.progress;
  }

  [[nodiscard]] const std::string& name() const override {
    static const std::string kName = "bmc";
    return kName;
  }

  EngineResult check(const Deadline& deadline,
                     const CancelToken* cancel) override {
    bmc::BmcResult r = bmc::run_bmc(ts_, options_, deadline, cancel);
    EngineResult out;
    out.seconds = r.seconds;
    out.stats.absorb_sat(r.sat_stats);
    out.stats.phases = r.phases;
    out.stats.time_total = r.seconds;
    // kBoundReached is BMC completing on its own; kUnknown is an abort.
    out.interrupted = r.verdict == bmc::BmcVerdict::kUnknown;
    if (r.verdict == bmc::BmcVerdict::kUnsafe) {
      out.verdict = ic3::Verdict::kUnsafe;
      out.frames = static_cast<std::size_t>(r.counterexample_length);
      out.trace = std::move(r.trace);
    }
    return out;  // bound reached / unknown → kUnknown (BMC cannot prove)
  }

 private:
  const ts::TransitionSystem& ts_;
  bmc::BmcOptions options_;
};

class KinductionBackend final : public Backend {
 public:
  KinductionBackend(const ts::TransitionSystem& ts, const BackendContext& ctx)
      : ts_(ts) {
    options_.seed = ctx.seed;
    if (ctx.sat_inprocess.has_value()) options_.inprocess = *ctx.sat_inprocess;
    options_.progress = ctx.progress;
  }

  [[nodiscard]] const std::string& name() const override {
    static const std::string kName = "kind";
    return kName;
  }

  EngineResult check(const Deadline& deadline,
                     const CancelToken* cancel) override {
    bmc::KindResult r = bmc::run_kinduction(ts_, options_, deadline, cancel);
    EngineResult out;
    out.seconds = r.seconds;
    out.stats.absorb_sat(r.sat_stats);
    out.stats.phases = r.phases;
    out.stats.time_total = r.seconds;
    out.interrupted = r.verdict == bmc::KindVerdict::kUnknown;
    if (r.k >= 0) out.frames = static_cast<std::size_t>(r.k);
    if (r.verdict == bmc::KindVerdict::kSafe) {
      out.verdict = ic3::Verdict::kSafe;
      out.kind_k = r.k;
      out.kind_simple_path = options_.simple_path;
    }
    if (r.verdict == bmc::KindVerdict::kUnsafe) {
      out.verdict = ic3::Verdict::kUnsafe;
      out.trace = std::move(r.trace);
    }
    return out;
  }

 private:
  const ts::TransitionSystem& ts_;
  bmc::KindOptions options_;
};

// ----- registry --------------------------------------------------------------

class Registry {
 public:
  static Registry& instance() {
    static Registry registry;
    return registry;
  }

  void add(const std::string& name, BackendFactory factory) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!factories_.emplace(name, std::move(factory)).second) {
      throw std::invalid_argument("backend '" + name + "' already registered");
    }
  }

  [[nodiscard]] bool contains(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return factories_.count(name) != 0;
  }

  [[nodiscard]] std::vector<std::string> names() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) out.push_back(name);
    return out;  // std::map keeps them sorted
  }

  [[nodiscard]] std::unique_ptr<Backend> make(const std::string& name,
                                              const ts::TransitionSystem& ts,
                                              const BackendContext& ctx) const {
    BackendFactory factory;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      const auto it = factories_.find(name);
      if (it != factories_.end()) factory = it->second;
    }
    if (!factory) {
      // Message built outside the lock: unknown_engine_message re-enters
      // the registry for the name list.
      throw std::invalid_argument(unknown_engine_message(name));
    }
    return factory(ts, ctx);
  }

 private:
  Registry() {
    // Built-in engines, available in every binary linking pilot_core.
    for (const char* name :
         {"ic3-down", "ic3-down-pl", "ic3-ctg", "ic3-ctg-pl", "ic3-cav23",
          "ic3-dyn", "pdr"}) {
      factories_.emplace(name,
                         [name = std::string(name)](
                             const ts::TransitionSystem& ts,
                             const BackendContext& ctx) {
                           return std::make_unique<Ic3Backend>(name, ts, ctx);
                         });
    }
    factories_.emplace("bmc", [](const ts::TransitionSystem& ts,
                                 const BackendContext& ctx) {
      return std::make_unique<BmcBackend>(ts, ctx);
    });
    factories_.emplace("kind", [](const ts::TransitionSystem& ts,
                                  const BackendContext& ctx) {
      return std::make_unique<KinductionBackend>(ts, ctx);
    });
  }

  mutable std::mutex mutex_;
  std::map<std::string, BackendFactory> factories_;
};

}  // namespace

void register_backend(const std::string& name, BackendFactory factory) {
  Registry::instance().add(name, std::move(factory));
}

bool backend_registered(const std::string& name) {
  return Registry::instance().contains(name);
}

std::vector<std::string> backend_names() {
  return Registry::instance().names();
}

std::unique_ptr<Backend> make_backend(const std::string& name,
                                      const ts::TransitionSystem& ts,
                                      const BackendContext& ctx) {
  return Registry::instance().make(name, ts, ctx);
}

std::string unknown_engine_message(const std::string& token) {
  std::string msg = "unknown engine '" + token + "'; registered engines:";
  for (const std::string& name : backend_names()) msg += " " + name;
  msg +=
      "; or portfolio[:a+b+c] / portfolio-x[:a+b+c] to race several "
      "backends (x = with lemma exchange)";
  return msg;
}

ic3::Config ic3_config_for(const std::string& name, std::uint64_t seed) {
  ic3::Config cfg;
  cfg.seed = seed;
  if (name == "ic3-down") {
    cfg.gen_mode = ic3::GenMode::kDown;
  } else if (name == "ic3-down-pl") {
    cfg.gen_mode = ic3::GenMode::kDown;
    cfg.predict_lemmas = true;
  } else if (name == "ic3-ctg") {
    cfg.gen_mode = ic3::GenMode::kCtg;
  } else if (name == "ic3-ctg-pl") {
    cfg.gen_mode = ic3::GenMode::kCtg;
    cfg.predict_lemmas = true;
  } else if (name == "ic3-cav23") {
    cfg.gen_mode = ic3::GenMode::kCav23;
  } else if (name == "ic3-dyn") {
    // SuYC25: start from prediction and switch strategies mid-run on
    // observed success rates (ic3/gen_dynamic.hpp).
    cfg.gen_spec = "dynamic";
  } else if (name == "pdr") {
    cfg.apply_profile(ic3::Profile::kPdr);
  } else {
    throw std::invalid_argument("ic3_config_for: '" + name +
                                "' is not an IC3-family engine");
  }
  return cfg;
}

}  // namespace pilot::engine
