/// \file simulation.hpp
/// Bit-parallel and ternary simulation of AIGs.
///
/// `BitSimulator` evaluates 64 independent Boolean patterns per word and is
/// used for counterexample replay (1 pattern) and for randomized
/// cross-validation of the CNF encoding (64 patterns at a time).
///
/// `TernarySimulator` evaluates over {0,1,X} and supports the classic
/// PDR-style ternary lifting: starting from a full assignment, latches are
/// X-ed out one at a time while the observed outputs stay definite.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "aig/aig.hpp"

namespace pilot::aig {

/// 64-way bit-parallel simulator.
class BitSimulator {
 public:
  explicit BitSimulator(const Aig& aig);

  /// Resets every latch to its initial value (uninitialized latches get the
  /// bits of `undef_fill`, default all-zero).
  void reset(std::uint64_t undef_fill = 0);

  /// Sets the current value of a latch (overriding reset/step results).
  void set_latch(std::uint32_t latch_node, std::uint64_t value);

  /// Evaluates all combinational logic for the given input patterns
  /// (`inputs[i]` feeds the i-th primary input).  Latch values are taken
  /// from the current state.
  void compute(std::span<const std::uint64_t> inputs);

  /// Advances the registers: current state := next-state functions
  /// (compute() must have been called).
  void latch_step();

  /// Value of an arbitrary literal after compute().
  [[nodiscard]] std::uint64_t value(AigLit lit) const {
    const std::uint64_t v = values_[lit.node()];
    return lit.negated() ? ~v : v;
  }

  /// Current state value of a latch.
  [[nodiscard]] std::uint64_t latch_value(std::uint32_t latch_node) const {
    return state_[latch_node];
  }

 private:
  const Aig& aig_;
  std::vector<std::uint64_t> values_;  // per node, after compute()
  std::vector<std::uint64_t> state_;   // per node (latches only meaningful)
};

/// Three-valued logic constants for ternary simulation.
enum class TV : std::uint8_t { kZero = 0, kOne = 1, kX = 2 };

inline TV tv_not(TV a) {
  if (a == TV::kX) return TV::kX;
  return a == TV::kZero ? TV::kOne : TV::kZero;
}
inline TV tv_and(TV a, TV b) {
  if (a == TV::kZero || b == TV::kZero) return TV::kZero;
  if (a == TV::kOne && b == TV::kOne) return TV::kOne;
  return TV::kX;
}

/// Ternary ({0,1,X}) simulator over one step of the circuit.
class TernarySimulator {
 public:
  explicit TernarySimulator(const Aig& aig);

  /// Assigns latches/inputs and evaluates the combinational logic.
  /// `latch_values[i]` corresponds to aig.latches()[i], `input_values[i]`
  /// to aig.inputs()[i].
  void compute(std::span<const TV> latch_values,
               std::span<const TV> input_values);

  /// Value of a literal after compute().
  [[nodiscard]] TV value(AigLit lit) const {
    const TV v = values_[lit.node()];
    return lit.negated() ? tv_not(v) : v;
  }

 private:
  const Aig& aig_;
  std::vector<TV> values_;
};

}  // namespace pilot::aig
