/// \file bmc.hpp
/// Bounded model checking over the incremental unroller.
///
/// BMC is complete for finding counterexamples up to the bound and serves
/// two roles here: an independent oracle cross-checking IC3's UNSAFE
/// verdicts in the tests, and a comparator engine in the harness.
#pragma once

#include <optional>
#include <vector>

#include "ic3/witness.hpp"
#include "obs/phase.hpp"
#include "obs/progress.hpp"
#include "sat/solver.hpp"
#include "ts/transition_system.hpp"
#include "ts/unroller.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace pilot::bmc {

using ic3::Trace;

enum class BmcVerdict { kUnsafe, kBoundReached, kUnknown };

struct BmcResult {
  BmcVerdict verdict = BmcVerdict::kUnknown;
  int counterexample_length = -1;  // steps to bad (0 = bad in init)
  double seconds = 0.0;
  std::optional<Trace> trace;
  /// SAT-layer counters of the unrolling solver (campaigns record them).
  sat::SolverStats sat_stats;
  /// Per-phase wall time (unroll / inprocess / solve).
  obs::PhaseProfile phases;
};

struct BmcOptions {
  int max_bound = 1000;
  std::uint64_t seed = 0;
  /// Failed-literal probing over each newly unrolled frame, plus a one-shot
  /// binary-implication SCC sweep once the transition relation is present.
  /// Verdict preserving; off for A/B comparison.
  bool inprocess = true;
  /// Live-progress channel (non-owning; may be null). The bound search
  /// publishes the current k and SAT counters once per bound.
  obs::ProgressSink* progress = nullptr;
};

/// Checks bad reachability for bounds 0..max_bound incrementally.  A
/// non-null `cancel` aborts the search cooperatively (verdict stays
/// kUnknown); the flag is polled both per bound and inside the SAT calls.
BmcResult run_bmc(const ts::TransitionSystem& ts, const BmcOptions& options,
                  pilot::Deadline deadline = {},
                  const pilot::CancelToken* cancel = nullptr);

/// Assembles the concrete 0..k counterexample trace from the satisfying
/// model of an unrolled solver.  Shared by BMC and the k-induction base
/// case so every UNSAFE verdict carries a replayable witness.
Trace extract_unrolled_trace(const sat::Solver& solver,
                             const ts::Unroller& unroller,
                             const ts::TransitionSystem& ts, int k);

}  // namespace pilot::bmc
