/// \file micro_ops.cpp
/// google-benchmark micro-benchmarks for the primitives whose costs the
/// paper reasons about: the relative-induction SAT query (the unit of cost
/// in generalization), diff-set computation (the unit of cost in
/// prediction), subsumption, and solver propagation throughput.
///
/// The headline comparison: one prediction validation query costs the same
/// as ONE variable-dropping query, while a full MIC pass costs up to |cube|
/// of them — that asymmetry is the paper's entire bet.
#include <benchmark/benchmark.h>

#include "aig/aig.hpp"
#include "aig/simulation.hpp"
#include "cert/certificate.hpp"
#include "check/checker.hpp"
#include "circuits/families.hpp"
#include "ic3/cube.hpp"
#include "ic3/engine.hpp"
#include "obs/trace.hpp"
#include "sat/solver.hpp"
#include "serve/verdict_cache.hpp"
#include "ts/transition_system.hpp"
#include "ts/unroller.hpp"
#include "util/rng.hpp"

using namespace pilot;

namespace {

ic3::Cube random_cube(Rng& rng, int num_vars, int size) {
  std::vector<sat::Lit> lits;
  for (int i = 0; i < size; ++i) {
    const auto v = static_cast<sat::Var>(rng.below(num_vars));
    lits.push_back(sat::Lit::make(v, rng.chance(0.5)));
  }
  return ic3::Cube::from_lits(std::move(lits));
}

void BM_CubeDiff(benchmark::State& state) {
  Rng rng(7);
  const int size = static_cast<int>(state.range(0));
  const ic3::Cube a = random_cube(rng, 1000, size);
  const ic3::Cube b = random_cube(rng, 1000, size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.diff(b));
  }
}
BENCHMARK(BM_CubeDiff)->Arg(8)->Arg(32)->Arg(128);

void BM_CubeSubsumption(benchmark::State& state) {
  Rng rng(11);
  const int size = static_cast<int>(state.range(0));
  const ic3::Cube big = random_cube(rng, 1000, size);
  std::vector<sat::Lit> sub(big.lits().begin(),
                            big.lits().begin() + big.size() / 2);
  const ic3::Cube small = ic3::Cube::from_sorted(std::move(sub));
  for (auto _ : state) {
    benchmark::DoNotOptimize(small.subset_of(big));
  }
}
BENCHMARK(BM_CubeSubsumption)->Arg(8)->Arg(32)->Arg(128);

void BM_SolverPropagationThroughput(benchmark::State& state) {
  // Long implication chains: measures two-watched-literal propagation
  // (entirely binary clauses, so this is the implicit-binary-watch path).
  const int n = static_cast<int>(state.range(0));
  sat::Solver solver;
  solver.set_trail_reuse(false);  // isolate raw propagation, no reuse
  std::vector<sat::Var> vars;
  for (int i = 0; i < n; ++i) vars.push_back(solver.new_var());
  for (int i = 0; i + 1 < n; ++i) {
    solver.add_binary(sat::Lit::make(vars[i], true),
                      sat::Lit::make(vars[i + 1]));
  }
  for (auto _ : state) {
    const std::vector<sat::Lit> assumption{sat::Lit::make(vars[0])};
    benchmark::DoNotOptimize(solver.solve(assumption));
  }
}
BENCHMARK(BM_SolverPropagationThroughput)->Arg(1000)->Arg(10000);

void BM_AssumptionPrefixSolves(benchmark::State& state) {
  // The IC3 query shape: a long shared activation prefix guarding lemma
  // clauses, plus a short per-query tail.  Arg: trail reuse off (0) / on
  // (1) — the gap between the two is the win of not re-propagating the
  // prefix on every call.
  constexpr int kActs = 48;
  constexpr int kStateVars = 256;
  constexpr int kLemmasPerAct = 12;
  Rng rng(23);
  sat::Solver solver;
  solver.set_trail_reuse(state.range(0) != 0);
  std::vector<sat::Var> acts;
  std::vector<sat::Var> vars;
  for (int i = 0; i < kStateVars; ++i) vars.push_back(solver.new_var());
  for (int i = 0; i < kActs; ++i) acts.push_back(solver.new_var());
  for (int a = 0; a < kActs; ++a) {
    for (int c = 0; c < kLemmasPerAct; ++c) {
      // act_a → (¬x ∨ ¬y ∨ z): a guarded pseudo-lemma.
      solver.add_clause(
          {sat::Lit::make(acts[a], true),
           sat::Lit::make(static_cast<sat::Var>(rng.below(kStateVars)), true),
           sat::Lit::make(static_cast<sat::Var>(rng.below(kStateVars)), true),
           sat::Lit::make(static_cast<sat::Var>(rng.below(kStateVars)))});
    }
  }
  std::vector<sat::Lit> assumptions;
  for (int a = kActs; a-- > 0;) assumptions.push_back(sat::Lit::make(acts[a]));
  const std::size_t prefix = assumptions.size();
  for (auto _ : state) {
    assumptions.resize(prefix);
    // Varying two-literal tail after the stable activation prefix.
    assumptions.push_back(sat::Lit::make(
        static_cast<sat::Var>(rng.below(kStateVars)), rng.chance(0.5)));
    assumptions.push_back(sat::Lit::make(
        static_cast<sat::Var>(rng.below(kStateVars)), rng.chance(0.5)));
    benchmark::DoNotOptimize(solver.solve(assumptions));
  }
}
BENCHMARK(BM_AssumptionPrefixSolves)->Arg(0)->Arg(1);

void BM_BinaryLemmaPropagation(benchmark::State& state) {
  // IC3 generates thousands of 2-literal clauses (unit lemmas under an
  // activation literal, init-cube guards).  Assuming the activation
  // literals cascades through every one of them — the implicit binary
  // watch path end to end.
  const int n = static_cast<int>(state.range(0));
  constexpr int kActs = 16;
  sat::Solver solver;
  std::vector<sat::Var> acts;
  std::vector<sat::Var> vars;
  for (int i = 0; i < n; ++i) vars.push_back(solver.new_var());
  for (int i = 0; i < kActs; ++i) acts.push_back(solver.new_var());
  for (int i = 0; i < n; ++i) {
    solver.add_binary(sat::Lit::make(acts[i % kActs], true),
                      sat::Lit::make(vars[i], (i & 1) != 0));
  }
  std::vector<sat::Lit> assumptions;
  for (int a = kActs; a-- > 0;) assumptions.push_back(sat::Lit::make(acts[a]));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(assumptions));
    // Alternate dropping the lowest activation literal so consecutive
    // calls exercise both full reuse and a diverging suffix.
    if (assumptions.size() == static_cast<std::size_t>(kActs)) {
      assumptions.pop_back();
    } else {
      assumptions.push_back(sat::Lit::make(acts[0]));
    }
  }
}
BENCHMARK(BM_BinaryLemmaPropagation)->Arg(2000)->Arg(8000);

void BM_ReduceDbIc3Learnts(benchmark::State& state) {
  // Learnt-database churn under an IC3-like mix: a hard combinational
  // core that generates many small learnts, solved under a rotating
  // assumption pair with a conflict budget, so reduce_db runs with a
  // realistic glue distribution instead of a uniform one.
  constexpr int kVars = 160;
  constexpr int kClauses = 680;
  Rng build_rng(41);
  sat::Solver solver;
  std::vector<sat::Var> vars;
  std::vector<bool> hidden;  // planted solution keeps the instance SAT
  for (int i = 0; i < kVars; ++i) {
    vars.push_back(solver.new_var());
    hidden.push_back(build_rng.chance(0.5));
  }
  for (int i = 0; i < kClauses; ++i) {
    std::vector<sat::Lit> clause;
    bool satisfied = false;
    for (int j = 0; j < 3; ++j) {
      const auto v = static_cast<sat::Var>(build_rng.below(kVars));
      const bool sign = build_rng.chance(0.5);
      satisfied = satisfied || (sign == !hidden[v]);
      clause.push_back(sat::Lit::make(v, sign));
    }
    if (!satisfied) clause.back() = ~clause.back();
    solver.add_clause(clause);
  }
  solver.set_conflict_budget(400);
  Rng rng(57);
  for (auto _ : state) {
    const std::vector<sat::Lit> assumptions{
        sat::Lit::make(static_cast<sat::Var>(rng.below(kVars)),
                       rng.chance(0.5)),
        sat::Lit::make(static_cast<sat::Var>(rng.below(kVars)),
                       rng.chance(0.5))};
    benchmark::DoNotOptimize(solver.solve(assumptions));
  }
}
BENCHMARK(BM_ReduceDbIc3Learnts);

void BM_RelativeInductionQuery(benchmark::State& state) {
  // The cost unit of generalization: one relative-induction query on a
  // mid-size ring circuit.
  const auto cc = circuits::token_ring_safe(16);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  ic3::Config cfg;
  ic3::Ic3Stats stats;
  ic3::SolverManager solvers(ts, cfg, stats);
  solvers.ensure_level(1);
  // Cube: two tokens present (a blockable state set).
  const ic3::Cube cube = ic3::Cube::from_lits(
      {sat::Lit::make(ts.state_var(1)), sat::Lit::make(ts.state_var(3))});
  for (auto _ : state) {
    ic3::Cube core;
    benchmark::DoNotOptimize(
        solvers.relative_inductive(cube, 0, false, &core, Deadline{}));
  }
}
BENCHMARK(BM_RelativeInductionQuery);

void BM_FullCheckCounterSafe(benchmark::State& state) {
  // End-to-end engine cost on a small safe instance (per-iteration fresh
  // engine; dominated by frame convergence).
  const auto cc = circuits::counter_wrap_safe(6, 32, 63);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  for (auto _ : state) {
    ic3::Config cfg;
    cfg.predict_lemmas = state.range(0) != 0;
    ic3::Engine engine(ts, cfg);
    benchmark::DoNotOptimize(engine.check());
  }
}
BENCHMARK(BM_FullCheckCounterSafe)->Arg(0)->Arg(1);

void BM_TernaryPacked_vs_Byte(benchmark::State& state) {
  // One full combinational sweep per simulated ternary pattern: the byte
  // backend (Arg 0) evaluates one pattern per sweep, the packed backend
  // (Arg 1) 32 per word-parallel sweep.  Items-processed normalizes per
  // pattern, so the reported rate is directly comparable — this is the
  // measurement behind Config::lift_sim defaulting to packed.
  const auto cc = circuits::token_ring_safe(64);
  const bool packed = state.range(0) != 0;
  aig::TernarySimulator byte_sim(cc.aig);
  aig::PackedTernarySimulator packed_sim(cc.aig);
  Rng rng(5150);
  std::vector<aig::TV> latch_values(cc.aig.num_latches());
  std::vector<aig::TV> input_values(cc.aig.num_inputs());
  for (auto& v : latch_values) {
    v = rng.chance(0.3) ? aig::TV::kX
                        : (rng.chance(0.5) ? aig::TV::kOne : aig::TV::kZero);
  }
  std::int64_t patterns = 0;
  for (auto _ : state) {
    if (packed) {
      packed_sim.compute(latch_values, input_values);
      benchmark::DoNotOptimize(
          packed_sim.value(aig::AigLit::make(1, false), 31));
      patterns += static_cast<std::int64_t>(
          aig::PackedTernarySimulator::kLanes);
    } else {
      byte_sim.compute(latch_values, input_values);
      benchmark::DoNotOptimize(byte_sim.value(aig::AigLit::make(1, false)));
      ++patterns;
    }
  }
  state.SetItemsProcessed(patterns);
}
BENCHMARK(BM_TernaryPacked_vs_Byte)->Arg(0)->Arg(1);

void BM_GenDropFilter(benchmark::State& state) {
  // End-to-end engine cost with the generalization drop-filter off (Arg 0)
  // and on (Arg 1); the filter trades a few lane reads per candidate for
  // whole relative-induction solves.
  const auto cc = circuits::token_ring_safe(12);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  for (auto _ : state) {
    ic3::Config cfg;
    cfg.gen_spec = "down";
    cfg.gen_ternary_filter = state.range(0) != 0;
    ic3::Engine engine(ts, cfg);
    benchmark::DoNotOptimize(engine.check());
  }
}
BENCHMARK(BM_GenDropFilter)->Arg(0)->Arg(1);

void BM_SubsumeLemmaInstall(benchmark::State& state) {
  // Lemma-clause install cost, plain add_clause (Arg 0) vs the
  // occurrence-driven (self-)subsumption pass (Arg 1).  The stream mimics
  // IC3 generalization output: many medium clauses, a third of them
  // strict strengthenings of an earlier clause — exactly the shape where
  // the subsuming install retires weaker lemmas in place.
  constexpr int kVars = 160;
  constexpr int kClauses = 400;
  const bool subsuming = state.range(0) != 0;
  Rng build_rng(67);
  std::vector<std::vector<sat::Lit>> stream;
  for (int i = 0; i < kClauses; ++i) {
    if (i % 3 == 2 && stream[i - 1].size() > 3) {
      // A strengthening: the previous clause minus one literal.
      std::vector<sat::Lit> shrunk(stream[i - 1].begin(),
                                   stream[i - 1].end() - 1);
      stream.push_back(std::move(shrunk));
      continue;
    }
    const int len = 4 + static_cast<int>(build_rng.below(5));
    std::vector<sat::Lit> clause;
    for (int j = 0; j < len; ++j) {
      clause.push_back(sat::Lit::make(
          static_cast<sat::Var>(build_rng.below(kVars)),
          build_rng.chance(0.5)));
    }
    stream.push_back(std::move(clause));
  }
  std::int64_t installed = 0;
  for (auto _ : state) {
    sat::Solver solver;
    for (int i = 0; i < kVars; ++i) solver.new_var();
    solver.set_inprocess(subsuming);
    for (const std::vector<sat::Lit>& clause : stream) {
      if (subsuming) {
        solver.add_clause_subsuming(clause);
      } else {
        solver.add_clause(clause);
      }
    }
    benchmark::DoNotOptimize(solver.num_clauses());
    installed += kClauses;
  }
  state.SetItemsProcessed(installed);
}
BENCHMARK(BM_SubsumeLemmaInstall)->Arg(0)->Arg(1);

void BM_VivifyLearnts(benchmark::State& state) {
  // Vivification of the newest long learnts, as maybe_rebuild() runs it at
  // frame boundaries.  Each iteration regrows a fresh learnt database
  // (untimed) from a planted 3-SAT core, then times one vivify pass.
  constexpr int kVars = 160;
  constexpr int kClauses = 680;
  for (auto _ : state) {
    state.PauseTiming();
    Rng build_rng(41);
    sat::Solver solver;
    std::vector<bool> hidden;
    for (int i = 0; i < kVars; ++i) {
      solver.new_var();
      hidden.push_back(build_rng.chance(0.5));
    }
    for (int i = 0; i < kClauses; ++i) {
      std::vector<sat::Lit> clause;
      bool satisfied = false;
      for (int j = 0; j < 3; ++j) {
        const auto v = static_cast<sat::Var>(build_rng.below(kVars));
        const bool sign = build_rng.chance(0.5);
        satisfied = satisfied || (sign == !hidden[v]);
        clause.push_back(sat::Lit::make(v, sign));
      }
      if (!satisfied) clause.back() = ~clause.back();
      solver.add_clause(clause);
    }
    solver.set_conflict_budget(400);
    Rng rng(57);
    for (int round = 0; round < 8; ++round) {
      const std::vector<sat::Lit> assumptions{
          sat::Lit::make(static_cast<sat::Var>(rng.below(kVars)),
                         rng.chance(0.5)),
          sat::Lit::make(static_cast<sat::Var>(rng.below(kVars)),
                         rng.chance(0.5))};
      solver.solve(assumptions);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.vivify_learnts(256));
  }
}
BENCHMARK(BM_VivifyLearnts);

void BM_ProbeUnrolledCnf(benchmark::State& state) {
  // Failed-literal probing over a BMC-style unrolled CNF, without (Arg 0)
  // and with (Arg 1) binary-implication SCC collapsing — the pass the BMC
  // and k-induction drivers run after each extend_to().
  const auto cc = circuits::token_ring_safe(16);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  const bool collapse_scc = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    sat::Solver solver;
    ts::Unroller unroller(ts, solver, /*assert_init=*/true);
    unroller.extend_to(8);
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.probe_and_collapse(collapse_scc, 100000));
  }
}
BENCHMARK(BM_ProbeUnrolledCnf)->Arg(0)->Arg(1);

void BM_BatchedDropProbes(benchmark::State& state) {
  // End-to-end engine cost as the generalization batch width grows: Arg is
  // Config::gen_batch (1 = sequential drop loop, 4/8 = one batched solve
  // answering that many candidate drops via variable-disjoint copies).
  const auto cc = circuits::counter_wrap_safe(6, 32, 63);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  for (auto _ : state) {
    ic3::Config cfg;
    cfg.gen_spec = "down";
    cfg.gen_batch = static_cast<int>(state.range(0));
    ic3::Engine engine(ts, cfg);
    benchmark::DoNotOptimize(engine.check());
  }
}
BENCHMARK(BM_BatchedDropProbes)->Arg(1)->Arg(4)->Arg(8);

void BM_CanonicalHash(benchmark::State& state) {
  // The serving layer's key derivation: one structural FNV-1a pass over the
  // parsed AIG (inputs, latches + resets, gates, outputs — no comments or
  // symbol names).  This runs once per submitted circuit, so it has to be
  // negligible next to even a trivial solve.  Arg: ring size.
  const auto cc = circuits::token_ring_safe(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(aig::canonical_hash(cc.aig));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cc.aig.num_ands()));
}
BENCHMARK(BM_CanonicalHash)->Arg(16)->Arg(64)->Arg(256);

void BM_VerdictCacheLookup(benchmark::State& state) {
  // The three costs a cache client can pay: Arg 0 — a miss (hash probe
  // only); Arg 1 — a raw hit via peek(), the map cost with no soundness
  // check; Arg 2 — a serving hit via lookup(), which re-checks the stored
  // certificate against the submitted circuit before returning it.  The
  // Arg 1 / Arg 2 gap is the price of revalidate-before-serve; the win
  // claimed by the warm-rerun gate is cold-solve minus Arg 2, not Arg 1.
  const int mode = static_cast<int>(state.range(0));
  const auto cc = circuits::token_ring_safe(8);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig, 0);

  check::CheckOptions co;
  co.engine_spec = "ic3-ctg";
  co.budget_ms = 60000;
  const check::CheckResult r = check::check_aig(cc.aig, co);
  std::string why;
  const std::optional<cert::Certificate> c =
      cert::from_verdict(ts, r.verdict, r.invariant, r.trace, r.kind_k,
                         r.kind_simple_path, /*property_index=*/0, &why);
  serve::CacheEntry entry;
  entry.hash = aig::canonical_hash_hex(cc.aig);
  entry.verdict = r.verdict;
  entry.engine = co.engine_spec;
  entry.seconds = r.seconds;
  entry.frames = r.frames;
  entry.cert_text = c ? cert::to_text(*c) : std::string();
  entry.case_name = cc.name;
  entry.timestamp = "2026-01-01T00:00:00Z";

  serve::VerdictCache cache;
  if (!cache.store(entry)) {
    state.SkipWithError("failed to store benchmark cache entry");
    return;
  }
  const std::string absent(16, '0');
  for (auto _ : state) {
    switch (mode) {
      case 0:
        benchmark::DoNotOptimize(cache.lookup(absent, ts));
        break;
      case 1:
        benchmark::DoNotOptimize(cache.peek(entry.hash));
        break;
      default:
        benchmark::DoNotOptimize(cache.lookup(entry.hash, ts));
        break;
    }
  }
}
BENCHMARK(BM_VerdictCacheLookup)->Arg(0)->Arg(1)->Arg(2);

// A stand-in for a zone-instrumented engine step: a few microseconds of
// register-only work, so the zone cost shows up as a percentage a CI gate
// can reason about rather than vanishing into noise or dominating.
std::uint64_t trace_overhead_workload(std::uint64_t x) {
  for (int i = 0; i < 2048; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

void BM_TraceZoneOverhead(benchmark::State& state) {
  // Arg 0: baseline, no zone.  Arg 1: zone with tracing runtime-off (one
  // relaxed load + branch — the cost every user pays, budget < 1%).  Arg 2:
  // zone recording into the ring (budget < 5%).
  const int mode = static_cast<int>(state.range(0));
  obs::reset_trace();
  obs::set_trace_enabled(mode == 2);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    if (mode == 0) {
      benchmark::DoNotOptimize(x = trace_overhead_workload(x));
    } else {
      PILOT_TRACE_ZONE("bench_zone");
      benchmark::DoNotOptimize(x = trace_overhead_workload(x));
    }
  }
  obs::set_trace_enabled(false);
  obs::reset_trace();
}
BENCHMARK(BM_TraceZoneOverhead)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
