/// \file aiger_check.cpp
/// A command-line hardware model checker over AIGER files — the tool a
/// downstream user would actually run on HWMCC-style inputs.
///
///   aiger_check [options] model.aag|model.aig
///     --engine {ic3-down,ic3-down-pl,ic3-ctg,ic3-ctg-pl,ic3-cav23,pdr,bmc,kind}
///     --budget-ms N       per-run wall clock budget (0 = unlimited)
///     --property N        index of the bad/output property to check
///     --no-verify-witness skip certificate re-checking
///     --stats             print engine statistics
///
/// Exit code: 0 = SAFE, 1 = UNSAFE, 2 = UNKNOWN, 3 = usage/parse error
/// (following the HWMCC convention of 0/1 verdict codes).
#include <cstdio>
#include <exception>
#include <string>

#include "aig/aiger_io.hpp"
#include "check/checker.hpp"
#include "util/options.hpp"

using namespace pilot;

int main(int argc, char** argv) {
  std::string engine = "ic3-ctg-pl";
  std::int64_t budget_ms = 0;
  std::int64_t property = 0;
  bool verify_witness = true;
  bool show_stats = false;
  bool print_witness = false;

  OptionParser parser(
      "aiger_check — SAT-based safety model checker (IC3 + predicted "
      "lemmas)");
  parser.add_choice("engine", &engine,
                    {"ic3-down", "ic3-down-pl", "ic3-ctg", "ic3-ctg-pl",
                     "ic3-cav23", "pdr", "bmc", "kind"},
                    "engine configuration (see DESIGN.md)");
  parser.add_int("budget-ms", &budget_ms, "wall-clock budget, 0 = unlimited");
  parser.add_int("property", &property, "property index (bad array / output)");
  parser.add_flag("verify-witness", &verify_witness,
                  "re-check the produced witness (default on)");
  parser.add_flag("stats", &show_stats, "print engine statistics");
  parser.add_flag("witness", &print_witness,
                  "print the counterexample in AIGER/HWMCC witness format");
  if (!parser.parse(argc, argv)) return 3;
  if (parser.positional().size() != 1) {
    std::fprintf(stderr, "usage: aiger_check [options] <model.aag|aig>\n%s",
                 parser.help_text().c_str());
    return 3;
  }

  try {
    const aig::Aig model = aig::read_aiger_file(parser.positional()[0]);
    std::fprintf(stderr,
                 "[aiger_check] %zu inputs, %zu latches, %zu ands, %zu bad, "
                 "%zu constraints\n",
                 model.num_inputs(), model.num_latches(), model.num_ands(),
                 model.bads().size(), model.constraints().size());

    check::CheckOptions opts;
    opts.engine_spec = engine;  // resolved against the backend registry
    opts.budget_ms = budget_ms;
    opts.property_index = static_cast<std::size_t>(property);
    opts.verify_witness = verify_witness;
    const check::CheckResult r = check::check_aig(model, opts);

    std::printf("%s\n", ic3::to_string(r.verdict));
    if (print_witness && r.verdict == ic3::Verdict::kUnsafe &&
        r.trace.has_value()) {
      const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(
          model, opts.property_index);
      std::fputs(ic3::to_aiger_witness(ts, *r.trace,
                                       opts.property_index)
                     .c_str(),
                 stdout);
    }
    std::fprintf(stderr, "[aiger_check] %.3fs, frames=%zu%s\n", r.seconds,
                 r.frames,
                 r.witness_checked ? ", witness verified" : "");
    if (!r.witness_error.empty()) {
      std::fprintf(stderr, "[aiger_check] WITNESS ERROR: %s\n",
                   r.witness_error.c_str());
      return 3;
    }
    if (show_stats) {
      std::fprintf(stderr, "[aiger_check] %s\n", r.stats.summary().c_str());
    }
    switch (r.verdict) {
      case ic3::Verdict::kSafe: return 0;
      case ic3::Verdict::kUnsafe: return 1;
      default: return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "aiger_check: %s\n", e.what());
    return 3;
  }
}
