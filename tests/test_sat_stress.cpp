/// Stress and differential tests targeting the solver's storage machinery:
/// clause-database reduction, arena garbage collection, and long
/// incremental sessions must never change answers.  Failures here point at
/// relocation bugs that functional tests rarely reach.
#include <gtest/gtest.h>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace pilot::sat {
namespace {

Cnf random_cnf(Rng& rng, int num_vars, int num_clauses) {
  Cnf cnf;
  cnf.num_vars = num_vars;
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> clause;
    const int len = 2 + static_cast<int>(rng.below(3));
    for (int i = 0; i < len; ++i) {
      clause.push_back(Lit::make(static_cast<Var>(rng.below(num_vars)),
                                 rng.chance(0.5)));
    }
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

class SatStress : public ::testing::TestWithParam<int> {};

TEST_P(SatStress, LongIncrementalSessionMatchesFreshSolvers) {
  // One long-lived solver answers a sequence of assumption queries while
  // clauses trickle in; every answer is cross-checked against a throwaway
  // solver built from scratch.  The long session accumulates learnt
  // clauses, triggers reduce_db and arena GC.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 40507 + 3);
  const int num_vars = 60;
  Solver session;
  for (int v = 0; v < num_vars; ++v) session.new_var();

  Cnf accumulated;
  accumulated.num_vars = num_vars;
  bool session_ok = true;
  for (int batch = 0; batch < 12; ++batch) {
    const Cnf fresh_clauses = random_cnf(rng, num_vars, 40);
    for (const auto& clause : fresh_clauses.clauses) {
      if (session_ok) session_ok = session.add_clause(clause);
      accumulated.clauses.push_back(clause);
    }
    // Three random assumption probes per batch.
    for (int probe = 0; probe < 3; ++probe) {
      std::vector<Lit> assumptions;
      for (int v = 0; v < num_vars; ++v) {
        if (rng.chance(0.1)) {
          assumptions.push_back(Lit::make(v, rng.chance(0.5)));
        }
      }
      Solver reference;
      const bool ref_load = load_into_solver(accumulated, reference);
      const SolveResult expected =
          (!ref_load) ? SolveResult::kUnsat : reference.solve(assumptions);
      const SolveResult got = session_ok
                                  ? session.solve(assumptions)
                                  : SolveResult::kUnsat;
      ASSERT_EQ(got, expected)
          << "batch " << batch << " probe " << probe << " diverged";
    }
  }
  // When the formula stayed satisfiable to the end, the session must have
  // done real search work to count as a stress test of the learnt-clause
  // paths (seeds whose formula collapses to top-level UNSAT early are
  // exempt — they exercise the ok_ machinery instead).
  if (session_ok) {
    EXPECT_GT(session.stats().conflicts, 10u);
  }
}

TEST_P(SatStress, RepeatedTemporaryActivationPattern) {
  // The IC3 usage pattern: temporary activation variables created, used
  // in one query, and retired with a unit clause — hundreds of times.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7177 + 11);
  const int num_vars = 30;
  Solver solver;
  for (int v = 0; v < num_vars; ++v) solver.new_var();
  const Cnf base = random_cnf(rng, num_vars, 90);
  if (!load_into_solver(base, solver)) GTEST_SKIP() << "base unsat";

  for (int round = 0; round < 200; ++round) {
    const Var act = solver.new_var();
    // Temporary clause: act → (random clause).
    std::vector<Lit> clause{Lit::make(act, true)};
    for (int i = 0; i < 3; ++i) {
      clause.push_back(Lit::make(static_cast<Var>(rng.below(num_vars)),
                                 rng.chance(0.5)));
    }
    solver.add_clause(clause);
    std::vector<Lit> assumptions{Lit::make(act)};
    if (rng.chance(0.5)) {
      assumptions.push_back(
          Lit::make(static_cast<Var>(rng.below(num_vars)), rng.chance(0.5)));
    }
    const SolveResult r = solver.solve(assumptions);
    ASSERT_NE(r, SolveResult::kUnknown);
    solver.add_unit(Lit::make(act, true));  // retire
    if (!solver.okay()) break;              // retired units may conflict
  }
  // The base formula must still answer exactly as a fresh solver does.
  Solver reference;
  ASSERT_TRUE(load_into_solver(base, reference));
  if (solver.okay()) {
    EXPECT_EQ(solver.solve(), reference.solve());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatStress, ::testing::Range(0, 4));

TEST(SatStress, SimplifyDuringIncrementalUseKeepsAnswers) {
  Rng rng(77);
  const Cnf cnf = random_cnf(rng, 40, 150);
  Solver with_simplify;
  Solver without_simplify;
  const bool ok1 = load_into_solver(cnf, with_simplify);
  const bool ok2 = load_into_solver(cnf, without_simplify);
  ASSERT_EQ(ok1, ok2);
  if (!ok1) return;
  for (int round = 0; round < 10; ++round) {
    std::vector<Lit> assumptions;
    for (int v = 0; v < 40; ++v) {
      if (rng.chance(0.15)) assumptions.push_back(Lit::make(v, rng.chance(0.5)));
    }
    with_simplify.simplify();
    EXPECT_EQ(with_simplify.solve(assumptions),
              without_simplify.solve(assumptions))
        << "round " << round;
  }
}

}  // namespace
}  // namespace pilot::sat
