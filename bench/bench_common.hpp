/// \file bench_common.hpp
/// Shared scaffolding for the experiment-reproduction binaries: flag
/// parsing (suite size, per-case budget, parallelism) and run-matrix
/// helpers.  Each bench binary reproduces one table or figure of the paper
/// (see EXPERIMENTS.md for the index and the expected shapes).
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "check/runner.hpp"
#include "circuits/suite.hpp"
#include "util/options.hpp"

namespace pilot::bench {

struct BenchArgs {
  circuits::SuiteSize suite = circuits::SuiteSize::kQuick;
  std::int64_t budget_ms = 2000;
  std::int64_t jobs = 0;
  std::uint64_t seed = 0;
};

/// Parses the common bench flags; returns false if --help was shown or the
/// arguments were invalid.
inline bool parse_bench_args(int argc, const char* const* argv,
                             const std::string& description, BenchArgs* out) {
  std::string suite = "quick";
  std::int64_t budget_ms = out->budget_ms;
  std::int64_t jobs = 0;
  std::int64_t seed = 0;
  OptionParser parser(description);
  parser.add_choice("suite", &suite, {"tiny", "quick", "full"},
                    "benchmark suite size (HWMCC substitute, see DESIGN.md)");
  parser.add_int("budget-ms", &budget_ms,
                 "per-case wall-clock budget in milliseconds");
  parser.add_int("jobs", &jobs, "worker threads (0 = hardware concurrency)");
  parser.add_int("seed", &seed, "engine seed");
  if (!parser.parse(argc, argv)) return false;
  out->suite = circuits::suite_size_from_string(suite);
  out->budget_ms = budget_ms;
  out->jobs = jobs;
  out->seed = static_cast<std::uint64_t>(seed);
  return true;
}

/// Runs the (suite × engines) matrix with the standard options.
inline std::vector<check::RunRecord> run_suite(
    const BenchArgs& args, const std::vector<check::EngineKind>& engines) {
  const std::vector<circuits::CircuitCase> cases =
      circuits::make_suite(args.suite);
  check::RunMatrixOptions options;
  options.budget_ms = args.budget_ms;
  options.jobs = static_cast<std::size_t>(args.jobs);
  options.seed = args.seed;
  return check::run_matrix(cases, engines, options);
}

/// Groups records per engine, preserving case order.
inline std::map<check::EngineKind, std::vector<check::RunRecord>> by_engine(
    const std::vector<check::RunRecord>& records) {
  std::map<check::EngineKind, std::vector<check::RunRecord>> out;
  for (const auto& r : records) out[r.engine].push_back(r);
  return out;
}

/// Paper-style configuration label (Table 1 row names).
inline const char* paper_label(check::EngineKind kind) {
  switch (kind) {
    case check::EngineKind::kIc3Down: return "RIC3";
    case check::EngineKind::kIc3DownPl: return "RIC3-pl";
    case check::EngineKind::kIc3Ctg: return "IC3ref";
    case check::EngineKind::kIc3CtgPl: return "IC3ref-pl";
    case check::EngineKind::kIc3Cav23: return "IC3ref-CAV23";
    case check::EngineKind::kPdr: return "ABC-PDR";
    default: return check::to_string(kind);
  }
}

}  // namespace pilot::bench
