/// \file clause.hpp
/// Region-allocated clause storage.
///
/// Clauses live in one contiguous arena and are referenced by 32-bit offsets
/// (ClauseRef).  This halves pointer size, improves locality during
/// propagation, and makes relocation-based garbage collection possible:
/// reduce_db() frees learnt clauses and, once enough of the arena is dead,
/// the solver copies live clauses into a fresh arena and patches every
/// reference through relocation forwarding.
///
/// Learnt clauses carry one extra header word holding their LBD ("glue":
/// the number of distinct decision levels in the clause when it was
/// learnt, Audemard & Simon, IJCAI'09) and a used-since-last-reduction
/// flag; both drive the Glucose-style clause database reduction in
/// sat::Solver::reduce_db.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "sat/types.hpp"

namespace pilot::sat {

/// Offset of a clause within the arena.
using ClauseRef = std::uint32_t;
inline constexpr ClauseRef kClauseRefUndef = 0xFFFFFFFFu;

/// Clause header + inline literal array.
///
/// Layout (32-bit words):
///   word 0: size << 3 | learnt << 2 | relocated << 1 | has_extra
///   word 1: float activity (learnt) or forwarding ref (relocated)
///   word 2 (learnt only): used << 31 | lbd
///   then:   literals
class Clause {
 public:
  [[nodiscard]] std::uint32_t size() const { return header_ >> 3; }
  [[nodiscard]] bool learnt() const { return (header_ & 4) != 0; }
  [[nodiscard]] bool relocated() const { return (header_ & 2) != 0; }

  [[nodiscard]] Lit& operator[](std::uint32_t i) {
    return lits()[i];
  }
  [[nodiscard]] Lit operator[](std::uint32_t i) const {
    return lits()[i];
  }

  [[nodiscard]] Lit* begin() { return lits(); }
  [[nodiscard]] Lit* end() { return lits() + size(); }
  [[nodiscard]] const Lit* begin() const { return lits(); }
  [[nodiscard]] const Lit* end() const { return lits() + size(); }

  [[nodiscard]] float activity() const {
    float out;
    std::memcpy(&out, &extra_, sizeof(out));
    return out;
  }
  void set_activity(float a) { std::memcpy(&extra_, &a, sizeof(a)); }

  /// LBD (glue) of a learnt clause; kLbdMax caps the stored value.
  static constexpr std::uint32_t kLbdMax = 0x7FFFFFFFu;
  [[nodiscard]] std::uint32_t lbd() const {
    assert(learnt());
    return words()[2] & kLbdMax;
  }
  void set_lbd(std::uint32_t lbd) {
    assert(learnt());
    words()[2] = (words()[2] & ~kLbdMax) | (lbd < kLbdMax ? lbd : kLbdMax);
  }
  /// Used-since-last-reduction flag: set when the clause participates in
  /// conflict analysis, cleared (and the clause kept) by reduce_db.
  [[nodiscard]] bool used() const {
    assert(learnt());
    return (words()[2] >> 31) != 0;
  }
  void set_used(bool u) {
    assert(learnt());
    words()[2] = (words()[2] & kLbdMax) | (u ? 0x80000000u : 0u);
  }

  void set_relocation(ClauseRef forward) {
    header_ |= 2;
    extra_ = forward;
  }
  [[nodiscard]] ClauseRef relocation() const { return extra_; }

  // NOTE: in-place literal removal (MiniSat's strengthening shrink) is
  // deliberately absent: the solver's watch lists dispatch on size() == 2,
  // so a clause shrinking from 3 to 2 literals while attached would be
  // left in the wrong watch structure.  Strengthen by realloc + reattach.

  /// Arena words occupied by a clause of `size` literals.
  static constexpr std::uint32_t words_needed(std::uint32_t size,
                                              bool learnt) {
    return 2 + (learnt ? 1u : 0u) + size;
  }
  [[nodiscard]] std::uint32_t words_used() const {
    return words_needed(size(), learnt());
  }

 private:
  friend class ClauseArena;

  Clause(std::span<const Lit> literals, bool learnt) {
    header_ = (static_cast<std::uint32_t>(literals.size()) << 3) |
              (learnt ? 4u : 0u) | 1u;
    extra_ = 0;
    if (learnt) words()[2] = 0;  // lbd = 0, used = false
    std::memcpy(lits(), literals.data(), literals.size() * sizeof(Lit));
  }

  // Literals start after the header words; learnt clauses have one more.
  [[nodiscard]] std::uint32_t header_words() const {
    return 2 + ((header_ >> 2) & 1);
  }
  std::uint32_t* words() { return reinterpret_cast<std::uint32_t*>(this); }
  const std::uint32_t* words() const {
    return reinterpret_cast<const std::uint32_t*>(this);
  }
  Lit* lits() { return reinterpret_cast<Lit*>(words() + header_words()); }
  const Lit* lits() const {
    return reinterpret_cast<const Lit*>(words() + header_words());
  }

  std::uint32_t header_;
  std::uint32_t extra_;
  // optional lbd word (learnt) and literals follow inline
};

/// Bump allocator for clauses with relocation GC support.
class ClauseArena {
 public:
  ClauseArena() { memory_.reserve(1024 * 64); }

  /// Allocates a clause; returns its reference.
  ClauseRef alloc(std::span<const Lit> literals, bool learnt) {
    const std::uint32_t need = Clause::words_needed(
        static_cast<std::uint32_t>(literals.size()), learnt);
    const ClauseRef ref = static_cast<ClauseRef>(memory_.size());
    memory_.resize(memory_.size() + need);
    new (&memory_[ref]) Clause(literals, learnt);
    return ref;
  }

  [[nodiscard]] Clause& deref(ClauseRef ref) {
    assert(ref < memory_.size());
    return *reinterpret_cast<Clause*>(&memory_[ref]);
  }
  [[nodiscard]] const Clause& deref(ClauseRef ref) const {
    assert(ref < memory_.size());
    return *reinterpret_cast<const Clause*>(&memory_[ref]);
  }

  /// Marks a clause's storage as garbage (space reclaimed at next gc).
  void free_clause(ClauseRef ref) {
    wasted_ += deref(ref).words_used();
  }

  /// Copies the clause at `ref` into `target`, recording the forwarding
  /// address.  Returns the new reference; idempotent for already-moved
  /// clauses.
  ClauseRef relocate(ClauseRef ref, ClauseArena& target) {
    Clause& c = deref(ref);
    if (c.relocated()) return c.relocation();
    const ClauseRef fresh =
        target.alloc(std::span<const Lit>(c.begin(), c.size()), c.learnt());
    if (c.learnt()) {
      Clause& moved = target.deref(fresh);
      moved.set_activity(c.activity());
      moved.set_lbd(c.lbd());
      moved.set_used(c.used());
    }
    c.set_relocation(fresh);
    return fresh;
  }

  [[nodiscard]] std::size_t size_words() const { return memory_.size(); }
  [[nodiscard]] std::size_t wasted_words() const { return wasted_; }

 private:
  std::vector<std::uint32_t> memory_;
  std::size_t wasted_ = 0;
};

}  // namespace pilot::sat
