#include "obs/progress.hpp"

#include <chrono>
#include <cstdio>

namespace pilot::obs {

std::string format_progress_line(const std::string& channel,
                                 double elapsed_seconds,
                                 const ProgressSnapshot& now,
                                 const ProgressSnapshot& prev,
                                 double interval_seconds) {
  const std::uint64_t solve_delta =
      now.sat_solves >= prev.sat_solves ? now.sat_solves - prev.sat_solves : 0;
  const double qps =
      interval_seconds > 0.0 ? static_cast<double>(solve_delta) / interval_seconds
                             : 0.0;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "[pilot:progress %.1fs] %s: frame=%llu obligations=%llu "
                "lemmas=%llu ctis=%llu sat=%llu conflicts=%llu (%.0f q/s)",
                elapsed_seconds, channel.c_str(),
                static_cast<unsigned long long>(now.frames),
                static_cast<unsigned long long>(now.obligations),
                static_cast<unsigned long long>(now.lemmas),
                static_cast<unsigned long long>(now.ctis),
                static_cast<unsigned long long>(now.sat_solves),
                static_cast<unsigned long long>(now.sat_conflicts), qps);
  return buf;
}

ProgressMonitor::ProgressMonitor(double interval_seconds)
    : interval_(interval_seconds > 0.0 ? interval_seconds : 2.0) {}

ProgressMonitor::~ProgressMonitor() { stop(); }

ProgressSink* ProgressMonitor::add_channel(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  sinks_.push_back(std::make_unique<ProgressSink>(name));
  last_.emplace_back();
  return sinks_.back().get();
}

void ProgressMonitor::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { run(); });
}

void ProgressMonitor::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

void ProgressMonitor::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto interval =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::duration<double>(interval_));
  for (;;) {
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      return;
    }
    const double elapsed = timer_.seconds();
    for (std::size_t i = 0; i < sinks_.size(); ++i) {
      const ProgressSnapshot now = sinks_[i]->read();
      std::fprintf(stderr, "%s\n",
                   format_progress_line(sinks_[i]->name(), elapsed, now,
                                        last_[i], interval_)
                       .c_str());
      last_[i] = now;
    }
    std::fflush(stderr);
  }
}

}  // namespace pilot::obs
