/// Simulator tests: bit-parallel semantics against hand-computed circuit
/// behaviour, reset handling, and ternary X-propagation.
#include <gtest/gtest.h>

#include "aig/simulation.hpp"
#include "circuits/builder.hpp"
#include "circuits/families.hpp"

namespace pilot::aig {
namespace {

TEST(BitSimulator, CombinationalGate) {
  Aig a;
  const AigLit x = a.add_input();
  const AigLit y = a.add_input();
  const AigLit g = a.make_and(x, !y);
  BitSimulator sim(a);
  sim.compute(std::vector<std::uint64_t>{0b1100, 0b1010});
  EXPECT_EQ(sim.value(g) & 0xFULL, 0b0100ULL);
  EXPECT_EQ(sim.value(!g) & 0xFULL, 0b1011ULL);
}

TEST(BitSimulator, CounterCountsToTarget) {
  const circuits::CircuitCase cc = circuits::counter_unsafe(6, 37);
  BitSimulator sim(cc.aig);
  sim.reset();
  ASSERT_EQ(cc.aig.bads().size(), 1u);
  const AigLit bad = cc.aig.bads()[0];
  for (int step = 0; step < 37; ++step) {
    sim.compute({});
    EXPECT_EQ(sim.value(bad) & 1ULL, 0ULL) << "bad too early at " << step;
    sim.latch_step();
  }
  sim.compute({});
  EXPECT_EQ(sim.value(bad) & 1ULL, 1ULL) << "bad not raised at step 37";
}

TEST(BitSimulator, ResetValuesRespectInit) {
  Aig a;
  const AigLit l0 = a.add_latch(l_False);
  const AigLit l1 = a.add_latch(l_True);
  const AigLit lx = a.add_latch(l_Undef);
  a.set_next(l0, l0);
  a.set_next(l1, l1);
  a.set_next(lx, lx);
  BitSimulator sim(a);
  sim.reset(/*undef_fill=*/0xDEADBEEFULL);
  EXPECT_EQ(sim.latch_value(l0.node()), 0ULL);
  EXPECT_EQ(sim.latch_value(l1.node()), ~0ULL);
  EXPECT_EQ(sim.latch_value(lx.node()), 0xDEADBEEFULL);
}

TEST(BitSimulator, UndefFillSurvivesComputeLatchStepRoundTrip) {
  // Regression: the undef-fill pattern of an uninitialized latch must flow
  // through compute()/latch_step() like any other state bit — an identity
  // next-state function carries the exact pattern across steps, and a
  // negating one returns it after two — and a later reset() must restore
  // the pristine fill rather than a stepped remnant.
  Aig a;
  const AigLit keep = a.add_latch(l_Undef);
  const AigLit flip = a.add_latch(l_Undef);
  a.set_next(keep, keep);
  a.set_next(flip, !flip);
  BitSimulator sim(a);
  const std::uint64_t fill = 0xDEADBEEFCAFEF00DULL;
  sim.reset(fill);
  for (int step = 1; step <= 4; ++step) {
    sim.compute({});
    sim.latch_step();
    EXPECT_EQ(sim.latch_value(keep.node()), fill) << "step " << step;
    EXPECT_EQ(sim.latch_value(flip.node()),
              (step % 2) != 0 ? ~fill : fill)
        << "step " << step;
  }
  sim.reset(fill);
  EXPECT_EQ(sim.latch_value(keep.node()), fill);
  EXPECT_EQ(sim.latch_value(flip.node()), fill);
}

TEST(BitSimulator, LatchToLatchFeedthroughUsesPreStepValues) {
  // Swap circuit: a <- b, b <- a; must exchange, not chain.
  Aig a;
  const AigLit la = a.add_latch(l_True);
  const AigLit lb = a.add_latch(l_False);
  a.set_next(la, lb);
  a.set_next(lb, la);
  BitSimulator sim(a);
  sim.reset();
  sim.compute({});
  sim.latch_step();
  EXPECT_EQ(sim.latch_value(la.node()), 0ULL);
  EXPECT_EQ(sim.latch_value(lb.node()), ~0ULL);
  sim.compute({});
  sim.latch_step();
  EXPECT_EQ(sim.latch_value(la.node()), ~0ULL);
  EXPECT_EQ(sim.latch_value(lb.node()), 0ULL);
}

TEST(BitSimulator, SixtyFourParallelPatterns) {
  // One input bit drives one latch; all 64 lanes evolve independently.
  Aig a;
  const AigLit in = a.add_input();
  const AigLit l = a.add_latch(l_False);
  a.set_next(l, a.make_xor(l, in));
  BitSimulator sim(a);
  sim.reset();
  const std::uint64_t pattern = 0xAAAAAAAAAAAAAAAAULL;
  sim.compute(std::vector<std::uint64_t>{pattern});
  sim.latch_step();
  EXPECT_EQ(sim.latch_value(l.node()), pattern);
  sim.compute(std::vector<std::uint64_t>{~0ULL});
  sim.latch_step();
  EXPECT_EQ(sim.latch_value(l.node()), ~pattern);
}

TEST(TernarySimulator, TruthTables) {
  EXPECT_EQ(tv_and(TV::kOne, TV::kOne), TV::kOne);
  EXPECT_EQ(tv_and(TV::kZero, TV::kX), TV::kZero);   // 0 dominates X
  EXPECT_EQ(tv_and(TV::kOne, TV::kX), TV::kX);
  EXPECT_EQ(tv_and(TV::kX, TV::kX), TV::kX);
  EXPECT_EQ(tv_not(TV::kX), TV::kX);
  EXPECT_EQ(tv_not(TV::kZero), TV::kOne);
}

TEST(TernarySimulator, XPropagationStopsAtControllingZero) {
  Aig a;
  const AigLit x = a.add_input();
  const AigLit y = a.add_input();
  const AigLit g = a.make_and(x, y);
  TernarySimulator sim(a);
  // y = 0 forces g = 0 regardless of x.
  sim.compute({}, std::vector<TV>{TV::kX, TV::kZero});
  EXPECT_EQ(sim.value(g), TV::kZero);
  // y = 1 leaves g = X.
  sim.compute({}, std::vector<TV>{TV::kX, TV::kOne});
  EXPECT_EQ(sim.value(g), TV::kX);
}

TEST(TernarySimulator, DefiniteInputsGiveDefiniteOutputs) {
  const circuits::CircuitCase cc = circuits::gray_counter_safe(4);
  TernarySimulator sim(cc.aig);
  std::vector<TV> latches(cc.aig.num_latches(), TV::kZero);
  std::vector<TV> inputs(cc.aig.num_inputs(), TV::kZero);
  sim.compute(latches, inputs);
  EXPECT_NE(sim.value(cc.aig.bads()[0]), TV::kX);
}

}  // namespace
}  // namespace pilot::aig
