/// \file gen_strategy.hpp
/// Pluggable inductive-generalization strategies behind a string-keyed
/// registry, mirroring engine::Backend one layer down.
///
/// A GenStrategy owns the *policy* of generalization — candidate literal
/// ordering, the drop loop, and what to do with counterexamples — while the
/// SAT mechanics stay in SolverManager and the bookkeeping in Frames.  The
/// built-in strategies are:
///  * "down"    — plain literal dropping (paper Algorithm 1, "RIC3")
///  * "ctg"     — ctgDown [Hassan, Bradley, Somenzi — FMCAD'13, "IC3ref"]
///  * "cav23"   — down with the parent-lemma literal ordering of
///                [Xia et al., CAV'23]
///  * "predict" — the DAC'24 prediction mechanism (Algorithm 2) in front of
///                the drop loop selected by Config::gen_mode
///  * "dynamic" — the SuYC25 meta-strategy (gen_dynamic.hpp): observes the
///                others' success rates in sliding windows and switches at
///                propagation boundaries
///
/// Strategies are selected by Config::gen_spec ("name" or "name:args",
/// e.g. "dynamic:16,0.4"); an empty spec derives the strategy from the
/// legacy Config::gen_mode / predict_lemmas knobs.  `register_gen_strategy`
/// plugs in new strategies without touching the engine; the engine itself
/// (engine.cpp) contains no strategy-specific branching — it drives the
/// active strategy through the Generalizer facade and its hooks.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ic3/config.hpp"
#include "ic3/cube.hpp"
#include "ic3/frames.hpp"
#include "ic3/solver_manager.hpp"
#include "ic3/stats.hpp"
#include "ts/transition_system.hpp"
#include "util/timer.hpp"

namespace pilot::ic3 {

/// Callback installing a lemma into frames AND solver (owned by the
/// engine; ctgDown uses it to block CTGs mid-generalization).
using AddLemmaFn = std::function<void(const Cube&, std::size_t)>;

/// Everything a strategy may touch, bundled so factories stay one-argument.
/// All references outlive the strategy (they live in ic3::Engine).
struct GenContext {
  const ts::TransitionSystem& ts;
  SolverManager& solvers;
  Frames& frames;
  const Config& cfg;
  Ic3Stats& stats;
};

class GenStrategy {
 public:
  virtual ~GenStrategy() = default;

  /// Registry name of this strategy ("down", "ctg", "dynamic", …).
  [[nodiscard]] virtual const std::string& name() const = 0;

  /// The strategy currently doing the work: equal to name() for the fixed
  /// strategies; "dynamic" reports its active sub-strategy so per-strategy
  /// statistics attribute each generalization to whoever performed it.
  [[nodiscard]] virtual const std::string& active_name() const {
    return name();
  }

  /// Generalizes `cube` (already relative-inductive at `level`-1 and
  /// disjoint from I) into a smaller cube still blocked at `level`.
  /// `core` is the unsat-core-shrunk version of `cube` from the blocking
  /// query — the natural starting point for drop loops; prediction-based
  /// strategies work from the full `cube` (its parents are what matter).
  virtual Cube generalize(const Cube& cube, const Cube& core,
                          std::size_t level, const Deadline& deadline,
                          const AddLemmaFn& add_lemma) = 0;

  /// True when the strategy consumes counterexamples to propagation; the
  /// engine skips the (cheap but nonzero) successor-model extraction for
  /// strategies that would discard it.
  [[nodiscard]] virtual bool wants_push_failures() const { return false; }

  /// A push of `lemma` from `level` failed; `ctp` is the witnessing
  /// successor state (over current-step variables).
  virtual void on_push_failure(const Cube& lemma, std::size_t level,
                               Cube ctp) {
    (void)lemma;
    (void)level;
    (void)ctp;
  }

  /// Called once at every propagation boundary, before the pushes.  The
  /// predictor clears its failure table here (paper line 44); "dynamic"
  /// additionally evaluates its switching policy.
  virtual void on_propagate() {}

  /// A lemma (the clause ¬`lemma`) was installed into the frames at
  /// `level` — by the engine's blocking loop, mid-generalization (CTG
  /// blocking), a propagation push, or a lemma-exchange import.  Installs
  /// strengthen frames, so strategies holding frame-dependent caches (the
  /// ternary drop-filter's CTI witnesses) invalidate them here.
  virtual void on_lemma(const Cube& lemma, std::size_t level) {
    (void)lemma;
    (void)level;
  }

  /// The engine's blocking query at `level` found a concrete predecessor
  /// `state` (full model, reachable from R_{level-1}) under `inputs`.
  /// Strategies caching CTI witnesses (the ternary drop-filter) absorb it
  /// here — every SAT answer the engine already paid for is a witness the
  /// drop loop can reuse.
  virtual void on_blocking_cti(const Cube& state,
                               const std::vector<Lit>& inputs,
                               std::size_t level) {
    (void)state;
    (void)inputs;
    (void)level;
  }
};

using GenStrategyFactory = std::function<std::unique_ptr<GenStrategy>(
    const GenContext& ctx, const std::string& args)>;

/// Validates the ":args" suffix of a spec without building a strategy;
/// throws std::invalid_argument on malformed args.
using GenArgsValidator = std::function<void(const std::string& args)>;

/// Registers a strategy under `name` (no ':' allowed).  Throws
/// std::invalid_argument on a duplicate name.  Thread-safe.
void register_gen_strategy(const std::string& name, GenStrategyFactory factory,
                           GenArgsValidator validate_args = nullptr);

/// True when `name` (a bare name, not a spec) is registered.
[[nodiscard]] bool gen_strategy_registered(const std::string& name);

/// All registered strategy names, sorted.
[[nodiscard]] std::vector<std::string> gen_strategy_names();

/// Splits "name[:args]" into its parts (args empty when there is no ':').
struct GenSpec {
  std::string name;
  std::string args;
};
[[nodiscard]] GenSpec split_gen_spec(const std::string& spec);

/// Checks that `spec` names a registered strategy with well-formed args.
/// Throws std::invalid_argument naming the offending token and listing the
/// registered strategies — the one error message shared by every CLI.
void validate_gen_spec(const std::string& spec);

/// Instantiates the strategy for `spec` ("name" or "name:args").  Throws
/// std::invalid_argument for unknown names or malformed args.
[[nodiscard]] std::unique_ptr<GenStrategy> make_gen_strategy(
    const std::string& spec, const GenContext& ctx);

}  // namespace pilot::ic3
