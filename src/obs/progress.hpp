#pragma once

/// Live progress heartbeat (`pilot --progress[=secs]`).
///
/// Each engine publishes a ProgressSnapshot (relaxed atomic stores) into its
/// own named ProgressSink; a single ProgressMonitor thread wakes every
/// interval, reads every sink, and prints one line per channel with the
/// per-tick query-rate delta. Every registered channel is printed every tick
/// — a wedged portfolio backend shows up as a flat line with 0 q/s, which is
/// exactly when you want to see it.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/timer.hpp"

namespace pilot::obs {

struct ProgressSnapshot {
  std::uint64_t frames = 0;
  std::uint64_t obligations = 0;
  std::uint64_t lemmas = 0;
  std::uint64_t ctis = 0;
  std::uint64_t sat_solves = 0;
  std::uint64_t sat_conflicts = 0;
};

/// One engine's progress channel. publish() is wait-free (relaxed stores of
/// independent counters — a torn multi-field read only mixes two adjacent
/// heartbeats, which is fine for a progress line).
class ProgressSink {
 public:
  explicit ProgressSink(std::string name) : name_(std::move(name)) {}

  void publish(const ProgressSnapshot& s) {
    frames_.store(s.frames, std::memory_order_relaxed);
    obligations_.store(s.obligations, std::memory_order_relaxed);
    lemmas_.store(s.lemmas, std::memory_order_relaxed);
    ctis_.store(s.ctis, std::memory_order_relaxed);
    sat_solves_.store(s.sat_solves, std::memory_order_relaxed);
    sat_conflicts_.store(s.sat_conflicts, std::memory_order_relaxed);
  }

  [[nodiscard]] ProgressSnapshot read() const {
    ProgressSnapshot s;
    s.frames = frames_.load(std::memory_order_relaxed);
    s.obligations = obligations_.load(std::memory_order_relaxed);
    s.lemmas = lemmas_.load(std::memory_order_relaxed);
    s.ctis = ctis_.load(std::memory_order_relaxed);
    s.sat_solves = sat_solves_.load(std::memory_order_relaxed);
    s.sat_conflicts = sat_conflicts_.load(std::memory_order_relaxed);
    return s;
  }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> obligations_{0};
  std::atomic<std::uint64_t> lemmas_{0};
  std::atomic<std::uint64_t> ctis_{0};
  std::atomic<std::uint64_t> sat_solves_{0};
  std::atomic<std::uint64_t> sat_conflicts_{0};
};

/// Renders one heartbeat line; exposed for tests.
[[nodiscard]] std::string format_progress_line(const std::string& channel,
                                               double elapsed_seconds,
                                               const ProgressSnapshot& now,
                                               const ProgressSnapshot& prev,
                                               double interval_seconds);

class ProgressMonitor {
 public:
  explicit ProgressMonitor(double interval_seconds);
  ~ProgressMonitor();
  ProgressMonitor(const ProgressMonitor&) = delete;
  ProgressMonitor& operator=(const ProgressMonitor&) = delete;

  /// Registers a channel; safe to call while the monitor runs (engines
  /// register lazily). The sink stays valid for the monitor's lifetime.
  ProgressSink* add_channel(const std::string& name);

  void start();
  void stop();  // idempotent; joins the heartbeat thread

 private:
  void run();

  double interval_;
  Timer timer_;
  std::mutex mutex_;  // guards sinks_/last_ and the stop flag
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::vector<std::unique_ptr<ProgressSink>> sinks_;
  std::vector<ProgressSnapshot> last_;
  std::thread thread_;
};

}  // namespace pilot::obs
