#include "corpus/manifest.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "aig/aiger_io.hpp"
#include "util/json.hpp"

namespace fs = std::filesystem;

namespace pilot::corpus {
namespace {

/// Cached per-file parse metadata, keyed by manifest-relative path.
struct CacheEntry {
  std::uint64_t size = 0;
  /// Milliseconds, not nanoseconds: the value must survive a JSON double
  /// round trip exactly (< 2^53), and ms granularity is plenty when paired
  /// with the size check.
  std::int64_t mtime_ms = 0;
  std::string hash;
  std::size_t inputs = 0;
  std::size_t latches = 0;
  std::size_t ands = 0;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

std::int64_t mtime_ms(const fs::path& path, std::error_code& ec) {
  const auto t = fs::last_write_time(path, ec).time_since_epoch();
  return std::chrono::duration_cast<std::chrono::milliseconds>(t).count();
}

bool is_aiger_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".aig" || ext == ".aag";
}

std::map<std::string, CacheEntry> load_cache(const std::string& root) {
  std::map<std::string, CacheEntry> cache;
  const fs::path path = fs::path(root) / kCacheFilename;
  std::error_code ec;
  if (!fs::exists(path, ec)) return cache;
  json::Value doc;
  try {
    doc = json::parse(read_file(path.string()));
  } catch (const std::exception&) {
    return cache;  // corrupt cache = cold cache
  }
  for (const auto& [rel, v] : doc.at("files").as_object()) {
    CacheEntry e;
    e.size = v.at("size").as_uint();
    e.mtime_ms = v.at("mtime_ms").as_int();
    e.hash = v.at("hash").as_string();
    e.inputs = v.at("inputs").as_uint();
    e.latches = v.at("latches").as_uint();
    e.ands = v.at("ands").as_uint();
    cache[rel] = std::move(e);
  }
  return cache;
}

void save_cache(const std::string& root,
                const std::map<std::string, CacheEntry>& cache) {
  json::Object files;
  for (const auto& [rel, e] : cache) {
    json::Object row;
    row["size"] = e.size;
    row["mtime_ms"] = e.mtime_ms;
    row["hash"] = e.hash;
    row["inputs"] = e.inputs;
    row["latches"] = e.latches;
    row["ands"] = e.ands;
    files[rel] = std::move(row);
  }
  json::Object doc;
  doc["version"] = 1;
  doc["files"] = std::move(files);
  const fs::path path = fs::path(root) / kCacheFilename;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << json::Value(std::move(doc)).dump() << "\n";
  // A failed cache write is not an error: the cache is an optimization.
}

ManifestEntry entry_from_json(const json::Value& v) {
  ManifestEntry e;
  e.name = v.at("name").as_string();
  e.path = v.at("path").as_string();
  if (e.path.empty()) {
    throw std::runtime_error("manifest case missing \"path\"");
  }
  if (e.name.empty()) e.name = fs::path(e.path).stem().string();
  e.expected = expected_from_string(v.at("expect").as_string());
  e.cex_depth = static_cast<int>(v.at("cex_depth").as_int(-1));
  for (const json::Value& t : v.at("tags").as_array()) {
    e.tags.push_back(t.as_string());
  }
  return e;
}

}  // namespace

std::string fnv1a_hex(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

Manifest load_manifest(const std::string& path) {
  json::Value doc;
  try {
    doc = json::parse(read_file(path));
  } catch (const std::exception& e) {
    throw std::runtime_error("manifest " + path + ": " + e.what());
  }
  Manifest m;
  m.root = fs::path(path).parent_path().string();
  if (m.root.empty()) m.root = ".";
  const json::Array& cases = doc.at("cases").as_array();
  if (cases.empty()) {
    throw std::runtime_error("manifest " + path +
                             ": no \"cases\" array (or it is empty)");
  }
  for (const json::Value& v : cases) {
    try {
      m.entries.push_back(entry_from_json(v));
    } catch (const std::exception& e) {
      throw std::runtime_error("manifest " + path + ": " + e.what());
    }
  }
  return m;
}

Manifest scan_directory(const std::string& dir) {
  if (!fs::is_directory(dir)) {
    throw std::runtime_error("corpus: '" + dir + "' is not a directory");
  }
  Manifest m;
  m.root = dir;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && is_aiger_file(entry.path())) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& f : files) {
    ManifestEntry e;
    e.name = f.stem().string();
    e.path = f.filename().string();
    m.entries.push_back(std::move(e));
  }
  return m;
}

void write_manifest(const Manifest& manifest, const std::string& path) {
  json::Array cases;
  for (const ManifestEntry& e : manifest.entries) {
    json::Object row;
    row["name"] = e.name;
    row["path"] = e.path;
    row["expect"] = to_string(e.expected);
    row["cex_depth"] = static_cast<std::int64_t>(e.cex_depth);
    json::Array tags;
    for (const std::string& t : e.tags) tags.push_back(t);
    row["tags"] = std::move(tags);
    cases.push_back(std::move(row));
  }
  json::Object doc;
  doc["version"] = 1;
  doc["cases"] = std::move(cases);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write manifest " + path);
  out << json::Value(std::move(doc)).dump() << "\n";
}

ScanReport load_cases(const Manifest& manifest, bool use_cache) {
  ScanReport report;
  std::map<std::string, CacheEntry> cache =
      use_cache ? load_cache(manifest.root)
                : std::map<std::string, CacheEntry>{};
  std::map<std::string, CacheEntry> fresh;

  for (const ManifestEntry& e : manifest.entries) {
    const fs::path full = fs::path(manifest.root) / e.path;
    std::error_code ec;
    const auto status = fs::status(full, ec);
    if (ec || !fs::is_regular_file(status)) {
      report.errors.push_back(e.path + ": file not found");
      continue;
    }
    // error_code overloads throughout: a file vanishing mid-scan must
    // produce a per-entry error like every other failure, not abort the
    // whole scan with a filesystem_error.
    std::error_code size_ec;
    std::error_code time_ec;
    const std::uint64_t size = fs::file_size(full, size_ec);
    const std::int64_t mtime = mtime_ms(full, time_ec);
    if (size_ec || time_ec) {
      report.errors.push_back(e.path + ": cannot stat file");
      continue;
    }

    CacheEntry meta;
    const auto hit = cache.find(e.path);
    if (hit != cache.end() && hit->second.size == size &&
        hit->second.mtime_ms == mtime) {
      meta = hit->second;
      ++report.cached;
    } else {
      // Cold or stale entry: read + parse + hash, then refresh the cache.
      std::string bytes;
      try {
        bytes = read_file(full.string());
        const aig::Aig aig = aig::read_aiger_string(bytes);
        meta.inputs = aig.num_inputs();
        meta.latches = aig.num_latches();
        meta.ands = aig.num_ands();
      } catch (const std::exception& err) {
        report.errors.push_back(e.path + ": " + err.what());
        continue;
      }
      meta.size = size;
      meta.mtime_ms = mtime;
      meta.hash = fnv1a_hex(bytes);
      ++report.parsed;
    }
    fresh[e.path] = meta;

    Case c;
    c.name = e.name;
    c.family = "aiger";
    c.tags = e.tags;
    c.expected = e.expected;
    c.expected_cex_length = e.cex_depth;
    c.source = full.string();
    c.num_inputs = meta.inputs;
    c.num_latches = meta.latches;
    c.num_ands = meta.ands;
    c.size_estimate = meta.ands + meta.latches;
    c.content_hash = meta.hash;
    const std::string path_copy = c.source;
    c.load = [path_copy]() { return aig::read_aiger_file(path_copy); };
    report.cases.push_back(std::move(c));
  }

  // Rewrite the cache only when something changed; entries for files no
  // longer in the manifest are dropped with it.
  if (use_cache && (report.parsed > 0 || fresh.size() != cache.size())) {
    save_cache(manifest.root, fresh);
  }
  return report;
}

ScanReport load_corpus(const std::string& path) {
  if (fs::is_directory(path)) {
    const fs::path manifest_path = fs::path(path) / kManifestFilename;
    if (fs::exists(manifest_path)) {
      return load_cases(load_manifest(manifest_path.string()));
    }
    return load_cases(scan_directory(path));
  }
  if (fs::is_regular_file(path)) {
    return load_cases(load_manifest(path));
  }
  throw std::runtime_error("corpus: no such file or directory: " + path);
}

Manifest export_suite(circuits::SuiteSize size, const std::string& dir,
                      bool binary) {
  fs::create_directories(dir);
  const std::vector<circuits::CircuitCase> cases = circuits::make_suite(size);
  Manifest m;
  m.root = dir;
  for (const circuits::CircuitCase& cc : cases) {
    ManifestEntry e;
    e.name = cc.name;
    e.path = cc.name + (binary ? ".aig" : ".aag");
    e.expected = expected_from_safe(cc.expected_safe);
    e.cex_depth = cc.expected_cex_length;
    e.tags = {cc.family};
    aig::write_aiger_file(cc.aig, (fs::path(dir) / e.path).string());
    m.entries.push_back(std::move(e));
  }
  write_manifest(m, (fs::path(dir) / kManifestFilename).string());
  return m;
}

}  // namespace pilot::corpus
