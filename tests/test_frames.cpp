/// Frames tests: delta encoding, subsumption on insert, parent-lemma lookup
/// (Algorithm 2 line 1-7 semantics), and removal.
#include <gtest/gtest.h>

#include "ic3/frames.hpp"

namespace pilot::ic3 {
namespace {

Lit pos(int v) { return Lit::make(v); }
Lit neg(int v) { return Lit::make(v, true); }

TEST(Frames, AddAndQuery) {
  Frames f;
  f.ensure_level(3);
  EXPECT_EQ(f.top_level(), 3u);
  const Cube c = Cube::from_lits({pos(1), pos(2)});
  EXPECT_TRUE(f.add_lemma(c, 2));
  EXPECT_EQ(f.delta(2).size(), 1u);
  EXPECT_EQ(f.total_lemmas(), 1u);
}

TEST(Frames, RejectsLemmaSubsumedByHigherLevel) {
  Frames f;
  f.ensure_level(3);
  const Cube strong = Cube::from_lits({pos(1)});
  ASSERT_TRUE(f.add_lemma(strong, 3));
  // {1,2} at level 2 is weaker than {1} at level 3: rejected.
  EXPECT_FALSE(f.add_lemma(Cube::from_lits({pos(1), pos(2)}), 2));
  EXPECT_EQ(f.total_lemmas(), 1u);
  // Same cube at a level above the existing one is NOT subsumed... but
  // level 3 is the top here, so re-adding at 3 is rejected too.
  EXPECT_FALSE(f.add_lemma(strong, 3));
}

TEST(Frames, NewLemmaDisplacesWeakerOnes) {
  Frames f;
  f.ensure_level(3);
  ASSERT_TRUE(f.add_lemma(Cube::from_lits({pos(1), pos(2)}), 1));
  ASSERT_TRUE(f.add_lemma(Cube::from_lits({pos(1), neg(3)}), 2));
  std::size_t removed = 0;
  // {1} at level 2 subsumes both (levels 1 and 2 are ≤ 2).
  EXPECT_TRUE(f.add_lemma(Cube::from_lits({pos(1)}), 2, &removed));
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(f.total_lemmas(), 1u);
  EXPECT_TRUE(f.delta(1).empty());
  EXPECT_EQ(f.delta(2).size(), 1u);
}

TEST(Frames, WeakerLemmaAtHigherLevelIsKept) {
  Frames f;
  f.ensure_level(3);
  ASSERT_TRUE(f.add_lemma(Cube::from_lits({pos(1)}), 1));
  // Weaker cube but holds at a higher frame: must be kept.
  EXPECT_TRUE(f.add_lemma(Cube::from_lits({pos(1), pos(2)}), 3));
  EXPECT_EQ(f.total_lemmas(), 2u);
}

TEST(Frames, SubsumedAtRespectsLevels) {
  Frames f;
  f.ensure_level(3);
  ASSERT_TRUE(f.add_lemma(Cube::from_lits({pos(1)}), 2));
  const Cube query = Cube::from_lits({pos(1), pos(5)});
  EXPECT_TRUE(f.subsumed_at(query, 1));
  EXPECT_TRUE(f.subsumed_at(query, 2));
  EXPECT_FALSE(f.subsumed_at(query, 3));  // lemma's top level is 2
  EXPECT_FALSE(f.subsumed_at(Cube::from_lits({pos(5)}), 1));
}

TEST(Frames, ParentsOfMatchesAlgorithm2) {
  // parents_of(b, i) = lemmas exactly at delta(i) whose cube ⊆ b.
  Frames f;
  f.ensure_level(3);
  const Cube p1 = Cube::from_lits({pos(1), pos(4)});  // matches b, level 3
  const Cube p2 = Cube::from_lits({pos(1), neg(2)});  // matches b, level 2
  const Cube p3 = Cube::from_lits({pos(9)});          // does not match b
  ASSERT_TRUE(f.add_lemma(p2, 2));
  ASSERT_TRUE(f.add_lemma(p3, 2));
  ASSERT_TRUE(f.add_lemma(p1, 3));

  const Cube b = Cube::from_lits({pos(1), neg(2), pos(4)});
  // Only delta(2) lemmas count as parents at level 2 — the subsuming p1
  // lives at level 3 and is excluded (it is still in F_3, paper line 4).
  const std::vector<Cube> parents = f.parents_of(b, 2);
  ASSERT_EQ(parents.size(), 1u);
  EXPECT_EQ(parents[0], p2);
  const std::vector<Cube> parents3 = f.parents_of(b, 3);
  ASSERT_EQ(parents3.size(), 1u);
  EXPECT_EQ(parents3[0], p1);
  // Level 0 and out-of-range levels yield nothing.
  EXPECT_TRUE(f.parents_of(b, 0).empty());
  EXPECT_TRUE(f.parents_of(b, 7).empty());
}

TEST(Frames, RemoveLemma) {
  Frames f;
  f.ensure_level(2);
  const Cube c = Cube::from_lits({pos(1), pos(2)});
  ASSERT_TRUE(f.add_lemma(c, 1));
  EXPECT_TRUE(f.remove_lemma(c, 1));
  EXPECT_FALSE(f.remove_lemma(c, 1));  // already gone
  EXPECT_EQ(f.total_lemmas(), 0u);
}

TEST(Frames, PushPatternMovesLemmaUp) {
  // Simulates propagation: remove at i, add at i+1.
  Frames f;
  f.ensure_level(3);
  const Cube c = Cube::from_lits({pos(4), neg(5)});
  ASSERT_TRUE(f.add_lemma(c, 1));
  ASSERT_TRUE(f.remove_lemma(c, 1));
  ASSERT_TRUE(f.add_lemma(c, 2));
  EXPECT_TRUE(f.delta(1).empty());
  ASSERT_EQ(f.delta(2).size(), 1u);
  // After the move, delta(1) empty signals R_1 = R_2 (fixpoint test hook).
}

}  // namespace
}  // namespace pilot::ic3
