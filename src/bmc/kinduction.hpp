/// \file kinduction.hpp
/// K-induction: proves safety when  (no cex up to k)  and
/// (any k+1 consecutive non-bad states cannot step into bad).
///
/// Uses two incremental unrollers: a BMC-style base case and an unconstrained
/// step case with simple-path constraints (pairwise state disequality) to
/// guarantee completeness on finite systems.
#pragma once

#include <cstdint>
#include <optional>

#include "ic3/witness.hpp"
#include "obs/phase.hpp"
#include "obs/progress.hpp"
#include "sat/solver.hpp"
#include "ts/transition_system.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace pilot::bmc {

enum class KindVerdict { kSafe, kUnsafe, kBoundReached, kUnknown };

struct KindResult {
  KindVerdict verdict = KindVerdict::kUnknown;
  int k = -1;  // proof depth or counterexample length
  double seconds = 0.0;
  std::optional<ic3::Trace> trace;  // when UNSAFE (base-case model)
  /// Combined base + step solver counters (campaigns record them).
  sat::SolverStats sat_stats;
  /// Per-phase wall time (unroll / inprocess / solve).
  obs::PhaseProfile phases;
};

struct KindOptions {
  int max_k = 200;
  bool simple_path = true;
  std::uint64_t seed = 0;
  /// Failed-literal probing of newly unrolled frames in the base and step
  /// solvers (see BmcOptions::inprocess).  Verdict preserving.
  bool inprocess = true;
  /// Live-progress channel (non-owning; may be null). Publishes the current
  /// k and combined SAT counters once per bound.
  obs::ProgressSink* progress = nullptr;
};

/// A non-null `cancel` aborts the search cooperatively (verdict stays
/// kUnknown); the flag is polled per bound and inside the SAT calls.
KindResult run_kinduction(const ts::TransitionSystem& ts,
                          const KindOptions& options,
                          pilot::Deadline deadline = {},
                          const pilot::CancelToken* cancel = nullptr);

}  // namespace pilot::bmc
