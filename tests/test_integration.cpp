/// Cross-engine integration tests: all engines must agree with the
/// construction-guaranteed verdicts and with each other; the run-matrix
/// harness must produce coherent records; AIGER round trips must preserve
/// verdicts end to end.
#include <gtest/gtest.h>

#include "aig/aiger_io.hpp"
#include "check/runner.hpp"
#include "circuits/suite.hpp"

namespace pilot::check {
namespace {

TEST(Integration, TinySuiteAllEnginesAgreeWithConstruction) {
  // The strict soundness gate inside run_matrix aborts on any mismatch,
  // so reaching the end of this test is itself the assertion; we still
  // verify solve counts.
  const auto cases = circuits::make_suite(circuits::SuiteSize::kTiny);
  RunMatrixOptions options;
  options.budget_ms = 5000;
  options.strict = true;
  const auto records = run_matrix(cases, paper_configurations(), options);
  EXPECT_EQ(records.size(), cases.size() * paper_configurations().size());
  std::size_t solved = 0;
  for (const auto& r : records) {
    if (r.solved) ++solved;
  }
  // The tiny suite is sized to be fully solvable in the budget.
  EXPECT_GT(solved, records.size() * 9 / 10);
}

TEST(Integration, BmcAgreesWithIc3OnUnsafeCases) {
  const auto cases = circuits::make_suite(circuits::SuiteSize::kTiny);
  RunMatrixOptions options;
  options.budget_ms = 5000;
  const std::vector<std::string> engines{"ic3-ctg-pl", "bmc"};
  const auto records = run_matrix(cases, engines, options);
  // Pair up per case: when both solved an unsafe case, they agree by the
  // strict gate; here we additionally require BMC to have solved most
  // unsafe cases (they are shallow enough for the tiny suite).
  int bmc_unsafe = 0;
  for (const auto& r : records) {
    if (r.engine == "bmc" && r.solved) {
      EXPECT_EQ(r.verdict, ic3::Verdict::kUnsafe);
      ++bmc_unsafe;
    }
  }
  EXPECT_GT(bmc_unsafe, 0);
}

TEST(Integration, PortfolioRowSolvesTheTinySuite) {
  // The kPortfolio compatibility row drives the first-verdict-wins
  // scheduler through the same strict soundness gate as the single
  // engines; every tiny-suite case is solvable by at least one backend of
  // the default mix.
  const auto cases = circuits::make_suite(circuits::SuiteSize::kTiny);
  RunMatrixOptions options;
  options.budget_ms = 10000;
  options.strict = true;
  options.jobs = 2;  // each job spawns its own backend race; stay bounded
  const std::vector<std::string> engines{"portfolio"};
  const auto records = run_matrix(cases, engines, options);
  EXPECT_EQ(records.size(), cases.size());
  std::size_t solved = 0;
  for (const auto& r : records) {
    EXPECT_EQ(r.engine, "portfolio");
    if (r.solved) ++solved;
  }
  EXPECT_EQ(solved, records.size());
}

TEST(Integration, KinductionProofsAreConsistent) {
  const auto cases = circuits::make_suite(circuits::SuiteSize::kTiny);
  RunMatrixOptions options;
  options.budget_ms = 3000;
  const std::vector<std::string> engines{"kind"};
  const auto records = run_matrix(cases, engines, options);
  int proved = 0;
  for (const auto& r : records) {
    if (r.solved && r.verdict == ic3::Verdict::kSafe) ++proved;
  }
  // k-induction proves at least the plainly inductive families.
  EXPECT_GT(proved, 3);
}

TEST(Integration, VerdictSurvivesAigerRoundTrip) {
  // Write every tiny-suite circuit to AIGER (binary), read it back, and
  // re-check: the verdict must be identical.
  const auto cases = circuits::make_suite(circuits::SuiteSize::kTiny);
  int checked = 0;
  for (const auto& cc : cases) {
    if (checked >= 8) break;  // keep the test fast; families rotate below
    const aig::Aig back = aig::read_aiger_string(aig::to_aiger_binary(cc.aig));
    CheckOptions co;
    co.engine_spec = "ic3-ctg-pl";
    co.budget_ms = 5000;
    const CheckResult direct = check_aig(cc.aig, co);
    const CheckResult roundtrip = check_aig(back, co);
    ASSERT_NE(direct.verdict, ic3::Verdict::kUnknown) << cc.name;
    EXPECT_EQ(direct.verdict, roundtrip.verdict) << cc.name;
    ++checked;
  }
  EXPECT_EQ(checked, 8);
}

TEST(Integration, RunMatrixRecordsCarryStats) {
  const std::vector<circuits::CircuitCase> cases{
      circuits::counter_wrap_safe(5, 16, 30)};
  RunMatrixOptions options;
  options.budget_ms = 5000;
  const std::vector<std::string> engines{"ic3-down-pl"};
  const auto records = run_matrix(cases, engines, options);
  ASSERT_EQ(records.size(), 1u);
  const RunRecord& r = records[0];
  EXPECT_EQ(r.case_name, "counter_wrap_safe_5_16_30");
  EXPECT_EQ(r.family, "counter");
  EXPECT_TRUE(r.solved);
  EXPECT_EQ(r.expected, corpus::Expected::kSafe);
  EXPECT_EQ(r.engine, "ic3-down-pl");
  EXPECT_GT(r.stats.num_generalizations, 0u);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(Integration, ParallelAndSerialRunsAgreeOnVerdicts) {
  const auto cases = circuits::make_suite(circuits::SuiteSize::kTiny);
  std::vector<circuits::CircuitCase> subset(cases.begin(),
                                            cases.begin() + 6);
  RunMatrixOptions serial;
  serial.budget_ms = 5000;
  serial.jobs = 1;
  RunMatrixOptions parallel = serial;
  parallel.jobs = 4;
  const std::vector<std::string> engines{"ic3-ctg"};
  const auto a = run_matrix(subset, engines, serial);
  const auto b = run_matrix(subset, engines, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].case_name, b[i].case_name);
    EXPECT_EQ(a[i].verdict, b[i].verdict) << a[i].case_name;
  }
}

}  // namespace
}  // namespace pilot::check
