/// \file timer.hpp
/// Wall-clock timers and cooperative deadlines.
///
/// Every long-running engine in pilot (SAT solver, IC3, BMC) takes a
/// `Deadline` and polls it at coarse-grained points (e.g. every few thousand
/// conflicts).  This gives the benchmark harness reproducible per-case
/// budgets without signals or threads.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>

namespace pilot {

/// Monotonic stopwatch measuring elapsed wall-clock time.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock budget that cooperating engines poll.
///
/// A default-constructed Deadline never expires.  Deadlines are value types
/// and cheap to copy; engines receive them by value.
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  /// Expires `budget_ms` milliseconds after the call.
  static Deadline in_milliseconds(std::int64_t budget_ms) {
    Deadline d;
    d.unlimited_ = false;
    d.end_ = Clock::now() + std::chrono::milliseconds(budget_ms);
    return d;
  }

  /// Expires `budget_s` seconds after the call.
  static Deadline in_seconds(double budget_s) {
    return in_milliseconds(static_cast<std::int64_t>(budget_s * 1e3));
  }

  [[nodiscard]] bool unlimited() const { return unlimited_; }

  /// True once the budget is exhausted.
  [[nodiscard]] bool expired() const {
    return !unlimited_ && Clock::now() >= end_;
  }

  /// Remaining budget in seconds (infinity if unlimited, clamps at 0).
  [[nodiscard]] double remaining_seconds() const {
    if (unlimited_) return std::numeric_limits<double>::infinity();
    const double r = std::chrono::duration<double>(end_ - Clock::now()).count();
    return r > 0.0 ? r : 0.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool unlimited_ = true;
  Clock::time_point end_{};
};

}  // namespace pilot
