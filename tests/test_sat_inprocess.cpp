/// Inprocessing unit + differential tests (sat/inprocess.cpp): forward
/// subsumption and self-subsuming resolution on clause install, learnt
/// vivification, failed-literal probing with binary-implication SCC
/// collapsing — each checked structurally via SolverStats/num_clauses and
/// semantically against an untouched reference solver.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "corpus/corpus.hpp"
#include "ic3/engine.hpp"
#include "sat/solver.hpp"
#include "ts/transition_system.hpp"
#include "util/rng.hpp"

namespace pilot::sat {
namespace {

Lit pos(Var v) { return Lit::make(v); }
Lit neg(Var v) { return Lit::make(v, true); }

/// All 2^n assignments of the first n variables as assumption cubes —
/// brute-force equivalence oracle for the small unit tests.
std::vector<std::vector<Lit>> all_assignments(int n) {
  std::vector<std::vector<Lit>> out;
  for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
    std::vector<Lit> cube;
    for (int v = 0; v < n; ++v) {
      cube.push_back(Lit::make(static_cast<Var>(v), ((bits >> v) & 1u) == 0));
    }
    out.push_back(std::move(cube));
  }
  return out;
}

/// Both solvers must agree on every full assignment of the first n vars.
void expect_equivalent(Solver& a, Solver& b, int n, const char* label) {
  for (const std::vector<Lit>& cube : all_assignments(n)) {
    EXPECT_EQ(a.solve(cube), b.solve(cube)) << label;
  }
}

TEST(Subsumption, ForwardSubsumptionRetiresWeakerClause) {
  Solver s;
  for (int i = 0; i < 3; ++i) s.new_var();
  s.add_clause({pos(0), pos(1), pos(2)});
  s.set_inprocess(true);
  ASSERT_TRUE(s.add_clause_subsuming(std::vector<Lit>{pos(0), pos(1)}));
  // (0 ∨ 1) subsumes (0 ∨ 1 ∨ 2): the weaker clause is retired in place.
  EXPECT_EQ(s.num_clauses(), 1u);
  EXPECT_EQ(s.stats().subsumed_clauses, 1u);
  Solver ref;
  for (int i = 0; i < 3; ++i) ref.new_var();
  ref.add_clause({pos(0), pos(1)});
  expect_equivalent(s, ref, 3, "forward subsumption");
}

TEST(Subsumption, SelfSubsumingResolutionStrengthens) {
  Solver s;
  for (int i = 0; i < 3; ++i) s.new_var();
  s.add_clause({pos(0), pos(1), pos(2)});
  s.set_inprocess(true);
  // (1 ∨ ¬2) resolves with (0 ∨ 1 ∨ 2) on var 2 to (0 ∨ 1), which
  // replaces the ternary clause.
  ASSERT_TRUE(s.add_clause_subsuming(std::vector<Lit>{pos(1), neg(2)}));
  EXPECT_EQ(s.stats().strengthened_clauses, 1u);
  EXPECT_EQ(s.num_clauses(), 2u);
  Solver ref;
  for (int i = 0; i < 3; ++i) ref.new_var();
  ref.add_clause({pos(0), pos(1), pos(2)});
  ref.add_clause({pos(1), neg(2)});
  expect_equivalent(s, ref, 3, "self-subsuming resolution");
}

TEST(Subsumption, DisabledFallsBackToPlainAdd) {
  Solver s;
  for (int i = 0; i < 3; ++i) s.new_var();
  s.add_clause({pos(0), pos(1), pos(2)});
  ASSERT_TRUE(s.add_clause_subsuming(std::vector<Lit>{pos(0), pos(1)}));
  EXPECT_EQ(s.num_clauses(), 2u);
  EXPECT_EQ(s.stats().subsumed_clauses, 0u);
  EXPECT_EQ(s.stats().strengthened_clauses, 0u);
}

TEST(Probing, FailedLiteralBecomesRootUnit) {
  Solver s;
  for (int i = 0; i < 2; ++i) s.new_var();
  // 0 → 1 and 0 → ¬1: probing literal 0 conflicts, so ¬0 is a root unit.
  s.add_clause({neg(0), pos(1)});
  s.add_clause({neg(0), neg(1)});
  ASSERT_TRUE(s.probe_and_collapse(/*collapse_scc=*/false, 100));
  EXPECT_GE(s.stats().probe_failed_literals, 1u);
  EXPECT_EQ(s.solve(std::vector<Lit>{pos(0)}), SolveResult::kUnsat);
  EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(Probing, SccCollapseMergesEquivalentVariables) {
  Solver s;
  for (int i = 0; i < 4; ++i) s.new_var();
  // 0 ↔ 1 via the binary cycle 0 → 1 → 0, plus a long clause mentioning
  // var 1 for the rewrite to act on.
  s.add_clause({neg(0), pos(1)});
  s.add_clause({neg(1), pos(0)});
  s.add_clause({pos(1), pos(2), pos(3)});
  ASSERT_TRUE(s.probe_and_collapse(/*collapse_scc=*/true, 100));
  EXPECT_GE(s.stats().scc_merged_vars, 1u);
  // The defining binaries stay, so models remain complete and the
  // equivalence 0 ↔ 1 is still enforced.
  EXPECT_EQ(s.solve(std::vector<Lit>{pos(0), neg(1)}), SolveResult::kUnsat);
  EXPECT_EQ(s.solve(std::vector<Lit>{neg(0), pos(1)}), SolveResult::kUnsat);
  Solver ref;
  for (int i = 0; i < 4; ++i) ref.new_var();
  ref.add_clause({neg(0), pos(1)});
  ref.add_clause({neg(1), pos(0)});
  ref.add_clause({pos(1), pos(2), pos(3)});
  expect_equivalent(s, ref, 4, "SCC collapse");
}

// ----- randomized differential: inprocessing on vs off ----------------------

Lit random_lit(Rng& rng, int num_vars) {
  return Lit::make(static_cast<Var>(rng.below(num_vars)), rng.chance(0.5));
}

/// The model must satisfy every ORIGINAL clause (inprocessing rewrites the
/// database, but SCC collapse keeps the defining binaries, so models stay
/// complete over the original formula) and every assumption.
void expect_model_valid(const Solver& solver,
                        const std::vector<std::vector<Lit>>& clauses,
                        const std::vector<Lit>& assumptions,
                        const char* label) {
  for (const std::vector<Lit>& clause : clauses) {
    bool satisfied = false;
    for (const Lit l : clause) {
      satisfied = satisfied || solver.model_value(l) == l_True;
    }
    ASSERT_TRUE(satisfied) << label << ": model falsifies an original clause";
  }
  for (const Lit a : assumptions) {
    EXPECT_EQ(solver.model_value(a), l_True)
        << label << ": model violates assumption " << a.to_string();
  }
}

/// The final-conflict core must be assumption literals that refute the
/// ORIGINAL formula (checked with a fresh, untouched solver).
void expect_core_valid(const Solver& solver, int num_vars,
                       const std::vector<std::vector<Lit>>& clauses,
                       const std::vector<Lit>& assumptions,
                       const char* label) {
  for (const Lit l : solver.core()) {
    EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l),
              assumptions.end())
        << label << ": core literal " << l.to_string()
        << " is not an assumption";
  }
  Solver fresh;
  for (int i = 0; i < num_vars; ++i) fresh.new_var();
  for (const std::vector<Lit>& clause : clauses) fresh.add_clause(clause);
  EXPECT_EQ(fresh.solve(solver.core()), SolveResult::kUnsat)
      << label << ": core does not refute the original formula";
}

/// Drives an inprocessing solver (subsuming installs + periodic vivification
/// and probing/SCC rounds) and a plain solver through an identical clause /
/// solve script.  Every transformation only adds implied clauses or removes
/// redundant ones, so the verdicts must agree call for call.
TEST(InprocessDifferential, RandomizedVerdictEquivalence) {
  constexpr int kVars = 40;
  constexpr int kSteps = 160;
  std::uint64_t total_subsumed = 0;
  std::uint64_t total_vivified = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(0x1A2B0000 + seed);
    Solver inproc;
    Solver plain;
    inproc.set_inprocess(true);
    std::vector<std::vector<Lit>> original;
    for (int i = 0; i < kVars; ++i) {
      inproc.new_var();
      plain.new_var();
    }
    std::uint64_t vivified_returns = 0;
    for (int step = 0; step < kSteps; ++step) {
      if (rng.chance(0.6)) {
        const int len = 2 + static_cast<int>(rng.below(4));
        std::vector<Lit> clause;
        for (int i = 0; i < len; ++i) clause.push_back(random_lit(rng, kVars));
        original.push_back(clause);
        const bool ok_in = inproc.add_clause_subsuming(clause);
        const bool ok_pl = plain.add_clause(clause);
        if (ok_in != ok_pl) {
          // One solver noticed the root conflict eagerly (probing-derived
          // units can falsify a new clause at install time); the other must
          // agree the formula is now unsatisfiable.
          EXPECT_EQ(inproc.solve(), SolveResult::kUnsat)
              << "seed " << seed << " step " << step;
          EXPECT_EQ(plain.solve(), SolveResult::kUnsat)
              << "seed " << seed << " step " << step;
          break;
        }
        if (!ok_in) break;
      } else {
        std::vector<Lit> assumptions;
        const int n = static_cast<int>(rng.below(6));
        for (int i = 0; i < n; ++i) {
          assumptions.push_back(random_lit(rng, kVars));
        }
        const SolveResult r_in = inproc.solve(assumptions);
        ASSERT_EQ(r_in, plain.solve(assumptions))
            << "seed " << seed << " step " << step;
        if (r_in == SolveResult::kSat) {
          expect_model_valid(inproc, original, assumptions, "inprocess");
          expect_model_valid(plain, original, assumptions, "plain");
        } else if (r_in == SolveResult::kUnsat && !assumptions.empty()) {
          expect_core_valid(inproc, kVars, original, assumptions,
                            "inprocess");
          expect_core_valid(plain, kVars, original, assumptions, "plain");
        }
      }
      if (step % 40 == 39 && inproc.okay()) {
        vivified_returns += inproc.vivify_learnts(64);
        if (!inproc.probe_and_collapse(rng.chance(0.5), 256)) break;
      }
    }
    total_subsumed += inproc.stats().subsumed_clauses +
                      inproc.stats().strengthened_clauses;
    total_vivified += vivified_returns;
    // Counter consistency: vivify_learnts returns the clauses it
    // shortened, and the stats track exactly that.
    EXPECT_EQ(inproc.stats().vivified_clauses, vivified_returns);
  }
  // The random script must actually exercise the install-time pass —
  // otherwise the differential proves nothing.
  EXPECT_GT(total_subsumed, 0u) << "inprocessing never fired";
  (void)total_vivified;
}

// Fixture-corpus engine A/B: the full IC3 trajectory (verdict, frame
// count, lemma count, invariant) must be identical with inprocessing on
// and off — subsumption/vivification/probing only change the solve plan,
// never the answers.
TEST(InprocessDifferential, EngineTrajectoryIdenticalOnFixtureCorpus) {
  const std::vector<corpus::Case> cases =
      corpus::resolve_corpus(PILOT_TEST_CORPUS_DIR);
  ASSERT_FALSE(cases.empty());
  for (const corpus::Case& c : cases) {
    const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(c.load());
    auto run = [&](bool inprocess) {
      ic3::Config cfg;
      cfg.sat_inprocess = inprocess;
      ic3::Engine engine(ts, cfg);
      return engine.check(Deadline::in_seconds(60));
    };
    const ic3::Result on = run(true);
    const ic3::Result off = run(false);
    EXPECT_EQ(on.verdict, off.verdict) << c.name;
    EXPECT_EQ(on.frames, off.frames) << c.name;
    EXPECT_EQ(on.stats.num_lemmas, off.stats.num_lemmas) << c.name;
    ASSERT_EQ(on.invariant.has_value(), off.invariant.has_value()) << c.name;
    if (on.invariant.has_value()) {
      EXPECT_EQ(on.invariant->lemma_cubes, off.invariant->lemma_cubes)
          << c.name;
    }
  }
}

}  // namespace
}  // namespace pilot::sat
