#include "sat/dimacs.hpp"

#include <cmath>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "sat/solver.hpp"

namespace pilot::sat {

bool Cnf::evaluate(const std::vector<bool>& assignment) const {
  for (const auto& clause : clauses) {
    bool satisfied = false;
    for (const Lit l : clause) {
      const bool v = assignment[l.var()];
      if (v != l.sign()) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

Cnf parse_dimacs(std::istream& in) {
  Cnf cnf;
  std::string token;
  bool header_seen = false;
  std::vector<Lit> current;
  while (in >> token) {
    if (token == "c") {
      std::string line;
      std::getline(in, line);
      continue;
    }
    if (token == "p") {
      std::string fmt;
      long long vars = 0;
      long long clauses = 0;
      if (!(in >> fmt >> vars >> clauses) || fmt != "cnf") {
        throw std::runtime_error("dimacs: malformed problem line");
      }
      cnf.num_vars = static_cast<int>(vars);
      header_seen = true;
      continue;
    }
    long long value = 0;
    try {
      value = std::stoll(token);
    } catch (...) {
      throw std::runtime_error("dimacs: unexpected token '" + token + "'");
    }
    if (!header_seen) {
      throw std::runtime_error("dimacs: literal before problem line");
    }
    if (value == 0) {
      cnf.clauses.push_back(current);
      current.clear();
      continue;
    }
    const auto var = static_cast<Var>(std::llabs(value) - 1);
    if (var >= cnf.num_vars) cnf.num_vars = var + 1;
    current.push_back(Lit::make(var, value < 0));
  }
  if (!current.empty()) {
    throw std::runtime_error("dimacs: clause not terminated by 0");
  }
  return cnf;
}

Cnf parse_dimacs_string(const std::string& text) {
  std::istringstream iss(text);
  return parse_dimacs(iss);
}

std::string to_dimacs(const Cnf& cnf) {
  std::ostringstream oss;
  oss << "p cnf " << cnf.num_vars << " " << cnf.clauses.size() << "\n";
  for (const auto& clause : cnf.clauses) {
    for (const Lit l : clause) {
      oss << (l.sign() ? "-" : "") << (l.var() + 1) << " ";
    }
    oss << "0\n";
  }
  return oss.str();
}

bool load_into_solver(const Cnf& cnf, Solver& solver) {
  while (solver.num_vars() < cnf.num_vars) solver.new_var();
  bool ok = true;
  for (const auto& clause : cnf.clauses) {
    ok = solver.add_clause(clause) && ok;
  }
  return ok && solver.okay();
}

}  // namespace pilot::sat
