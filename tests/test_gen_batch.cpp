/// Batched generalization probes (SolverManager::batch_drop_probe and the
/// gen-strategy loop around it): one SAT solve over variable-disjoint
/// copies of R ∧ T answers the single-drop query of every group member.
///
/// Two layers of checks:
///  - unit: a batched probe agrees with the sequential single-drop queries
///    it replaces, member by member, on both the SAT and the UNSAT side;
///  - engine A/B: gen_batch=4 vs gen_batch=1 on a family set produces
///    identical verdicts/invariants while spending at least 25% fewer
///    candidate-drop solves (the ISSUE's acceptance bar; measured ~30% on
///    this set, ~44% on suite:quick).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "circuits/families.hpp"
#include "ic3/engine.hpp"
#include "ic3/solver_manager.hpp"
#include "ts/transition_system.hpp"

namespace pilot::ic3 {
namespace {

/// Full-state cube of a 4-latch circuit with the i-th latch's sign taken
/// from bit i of `bits` (true bit = positive literal).
Cube state_cube(const ts::TransitionSystem& ts, std::uint32_t bits) {
  std::vector<Lit> lits;
  for (std::size_t i = 0; i < ts.num_latches(); ++i) {
    lits.push_back(Lit::make(ts.state_var(i), ((bits >> i) & 1u) == 0));
  }
  return Cube::from_lits(std::move(lits));
}

/// Installs the token ring's one-hot invariant as level-2 lemmas (every
/// two-token cube plus the zero-token cube), so R_1/R_2 are exactly the
/// one-hot states and single-drop queries have both outcomes.
void install_one_hot_invariant(const ts::TransitionSystem& ts,
                               SolverManager& solvers, Frames& frames) {
  std::vector<Cube> lemmas;
  std::vector<Lit> all_zero;
  for (std::size_t i = 0; i < ts.num_latches(); ++i) {
    all_zero.push_back(Lit::make(ts.state_var(i), true));
    for (std::size_t j = i + 1; j < ts.num_latches(); ++j) {
      lemmas.push_back(Cube::from_lits(
          {Lit::make(ts.state_var(i)), Lit::make(ts.state_var(j))}));
    }
  }
  lemmas.push_back(Cube::from_lits(std::move(all_zero)));
  for (const Cube& lemma : lemmas) {
    frames.add_lemma(lemma, 2);
    solvers.add_lemma_clause(lemma, 2);
  }
}

// A batched probe must agree with the sequential single-drop queries it
// replaces: SAT ⟺ every member's own query is SAT (with one CTI each),
// UNSAT ⟹ the refuted member's query is UNSAT and the shrunk drop is a
// subcube the sequential path also proves inductive.
TEST(BatchDropProbe, AgreesWithSequentialSingleDropQueries) {
  const auto cc = circuits::token_ring_safe(4);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  const Deadline deadline = Deadline::in_seconds(120);
  std::size_t sat_probes = 0;
  std::size_t unsat_probes = 0;
  for (std::uint32_t bits = 0; bits < 16; ++bits) {
    Config cfg;
    cfg.gen_batch = 4;
    Ic3Stats stats;
    SolverManager solvers(ts, cfg, stats);
    Frames frames;
    solvers.ensure_level(2);
    frames.ensure_level(2);
    install_one_hot_invariant(ts, solvers, frames);
    const Cube cube = state_cube(ts, bits);
    // Group members whose candidate cube\m stays clear of I, as the mic
    // loop guarantees before probing.
    std::vector<Lit> group;
    for (const Lit l : cube) {
      if (group.size() == 3) break;
      if (ts.cube_intersects_init(cube.without(l).lits())) continue;
      group.push_back(l);
    }
    if (group.size() < 2) continue;
    SolverManager::BatchProbeResult res;
    const bool unsat =
        solvers.batch_drop_probe(cube, group, 1, frames, &res, deadline);
    // Re-answer every member's single-drop query on the main solver.
    std::vector<bool> member_inductive;
    for (const Lit m : group) {
      member_inductive.push_back(solvers.relative_inductive(
          cube.without(m), 1, false, nullptr, deadline));
    }
    if (unsat) {
      ++unsat_probes;
      ASSERT_LT(res.member_index, group.size()) << "bits=" << bits;
      const Lit m = group[res.member_index];
      EXPECT_TRUE(member_inductive[res.member_index])
          << "bits=" << bits << ": batch refuted " << m.to_string()
          << " but its sequential drop query is SAT";
      // The shrunk drop is a subcube of cube \ m that the sequential path
      // confirms inductive (adoption-soundness of the batched answer).
      EXPECT_FALSE(res.dropped.contains(m)) << "bits=" << bits;
      EXPECT_TRUE(res.dropped.subset_of(cube)) << "bits=" << bits;
      EXPECT_FALSE(ts.cube_intersects_init(res.dropped.lits()))
          << "bits=" << bits;
      EXPECT_TRUE(solvers.relative_inductive(res.dropped, 1, false, nullptr,
                                             deadline))
          << "bits=" << bits << ": shrunk batch drop is not inductive";
    } else {
      ++sat_probes;
      // SAT defeats the whole group: every member's query must be SAT and
      // each copy hands back one CTI.
      ASSERT_EQ(res.cti_states.size(), group.size()) << "bits=" << bits;
      ASSERT_EQ(res.cti_inputs.size(), group.size()) << "bits=" << bits;
      for (std::size_t k = 0; k < group.size(); ++k) {
        EXPECT_FALSE(member_inductive[k])
            << "bits=" << bits << ": batch SAT but member "
            << group[k].to_string() << " is sequentially inductive";
        EXPECT_EQ(res.cti_states[k].size(), ts.num_latches())
            << "bits=" << bits;
      }
    }
  }
  // The 16 states of the 4-ring exercise both probe outcomes.
  EXPECT_GT(sat_probes, 0u);
  EXPECT_GT(unsat_probes, 0u);
}

// The CTI handed back for each group member is the model of that member's
// copy of R ∧ ¬(cube\m) ∧ T ∧ (cube\m)′: a full state cube that satisfies
// the temporary clause ¬(cube\m), i.e. falsifies at least one candidate
// literal.  That is exactly the property the gen loop's lazy defeat
// validation re-checks after the cube shrinks.
TEST(BatchDropProbe, CtiStatesFalsifyTheirCandidate) {
  const auto cc = circuits::counter_unsafe(4, 9);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  const Deadline deadline = Deadline::in_seconds(120);
  Config cfg;
  cfg.gen_batch = 3;
  Ic3Stats stats;
  SolverManager solvers(ts, cfg, stats);
  Frames frames;
  solvers.ensure_level(1);
  frames.ensure_level(1);
  bool exercised = false;
  for (std::uint32_t bits = 0; bits < 16 && !exercised; ++bits) {
    const Cube cube = state_cube(ts, bits);
    std::vector<Lit> group(cube.lits().begin(), cube.lits().begin() + 3);
    SolverManager::BatchProbeResult res;
    if (solvers.batch_drop_probe(cube, group, 1, frames, &res, deadline)) {
      continue;  // UNSAT — no CTIs to validate
    }
    exercised = true;
    for (std::size_t k = 0; k < group.size(); ++k) {
      ASSERT_EQ(res.cti_states[k].size(), ts.num_latches())
          << "bits=" << bits << " member " << k;
      bool falsifies_candidate = false;
      for (const Lit l : cube) {
        if (l == group[k]) continue;
        falsifies_candidate =
            falsifies_candidate || res.cti_states[k].contains(~l);
      }
      EXPECT_TRUE(falsifies_candidate)
          << "bits=" << bits << " member " << k
          << ": CTI does not satisfy the temporary clause of its candidate";
    }
  }
  EXPECT_TRUE(exercised) << "no SAT probe found on counter_unsafe(4,9)";
}

// ----- engine A/B: verdict identity + the ≥25% solve-reduction bar ----------

std::vector<circuits::CircuitCase> family_set() {
  std::vector<circuits::CircuitCase> cases;
  cases.push_back(circuits::counter_unsafe(4, 9));
  cases.push_back(circuits::counter_unsafe(4, 15));
  cases.push_back(circuits::counter_unsafe(5, 17));
  cases.push_back(circuits::counter_unsafe(5, 31));
  cases.push_back(circuits::counter_enable_unsafe(4, 9));
  cases.push_back(circuits::counter_enable_unsafe(5, 17));
  cases.push_back(circuits::counter_wrap_safe(5, 9, 31));
  cases.push_back(circuits::saturating_accumulator_unsafe(4, 11));
  return cases;
}

Result run_engine(const ts::TransitionSystem& ts, int batch) {
  Config cfg;
  cfg.gen_spec = "down";
  cfg.gen_batch = batch;
  Engine engine(ts, cfg);
  return engine.check(Deadline::in_seconds(300));
}

TEST(BatchedGeneralization, VerdictsIdenticalAndSolvesReducedOnFamilySet) {
  std::uint64_t sequential_solves = 0;
  std::uint64_t batched_solves = 0;
  std::uint64_t batched_answers = 0;
  for (const circuits::CircuitCase& cc : family_set()) {
    const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
    const Result seq = run_engine(ts, 1);
    const Result bat = run_engine(ts, 4);
    EXPECT_EQ(seq.verdict,
              cc.expected_safe ? Verdict::kSafe : Verdict::kUnsafe)
        << cc.name;
    EXPECT_EQ(bat.verdict, seq.verdict) << cc.name;
    EXPECT_EQ(bat.frames, seq.frames) << cc.name;
    ASSERT_EQ(bat.invariant.has_value(), seq.invariant.has_value())
        << cc.name;
    if (bat.invariant.has_value()) {
      EXPECT_EQ(bat.invariant->lemma_cubes, seq.invariant->lemma_cubes)
          << cc.name;
    }
    // batch=1 never touches the batch solver.
    EXPECT_EQ(seq.stats.num_batched_drop_solves, 0u) << cc.name;
    EXPECT_EQ(seq.stats.num_batched_drop_answers, 0u) << cc.name;
    // Candidate-drop work: every mic query plus every batched probe solve
    // on the batched side, against the plain mic-query count sequentially.
    sequential_solves += seq.stats.num_mic_queries;
    batched_solves +=
        bat.stats.num_mic_queries + bat.stats.num_batched_drop_solves;
    batched_answers += bat.stats.num_batched_drop_answers;
  }
  // The probes actually fired, and each solve answered more than one
  // candidate on average (the whole point of batching).
  EXPECT_GT(batched_answers, 0u);
  // The ISSUE's acceptance bar: ≥25% fewer candidate-drop solves.  The
  // family set above measures ~30%; fail only below the bar so circuit
  // tweaks have headroom without masking a real regression.
  EXPECT_LE(batched_solves * 4, sequential_solves * 3)
      << "batched=" << batched_solves << " sequential=" << sequential_solves
      << " — batched generalization lost its ≥25% solve reduction";
}

// ----- adaptive width A/B: verdict identity, no solve-count regression ------

Result run_engine_adaptive(const ts::TransitionSystem& ts) {
  Config cfg;
  cfg.gen_spec = "down";
  cfg.gen_batch = 4;
  cfg.gen_batch_adaptive = true;
  Engine engine(ts, cfg);
  return engine.check(Deadline::in_seconds(300));
}

// Adaptive sizing picks the probe width from the observed failure rate
// instead of the fixed gen_batch.  Every batch is exact whatever its width,
// so verdicts must be identical to the fixed-width run; the bar on cost is
// no regression: the adaptive run must not spend more than 10% extra
// candidate-drop solves over the whole family set.
TEST(AdaptiveBatchWidth, VerdictsIdenticalAndNoSolveRegression) {
  std::uint64_t fixed_solves = 0;
  std::uint64_t adaptive_solves = 0;
  std::uint64_t adaptive_updates = 0;
  std::uint64_t adaptive_width_sum = 0;
  for (const circuits::CircuitCase& cc : family_set()) {
    const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
    const Result fixed = run_engine(ts, 4);
    const Result adaptive = run_engine_adaptive(ts);
    EXPECT_EQ(fixed.verdict,
              cc.expected_safe ? Verdict::kSafe : Verdict::kUnsafe)
        << cc.name;
    EXPECT_EQ(adaptive.verdict, fixed.verdict) << cc.name;
    EXPECT_EQ(adaptive.frames, fixed.frames) << cc.name;
    // Fixed-width runs never touch the adaptive sizing path.
    EXPECT_EQ(fixed.stats.num_adaptive_batch_updates, 0u) << cc.name;
    fixed_solves +=
        fixed.stats.num_mic_queries + fixed.stats.num_batched_drop_solves;
    adaptive_solves += adaptive.stats.num_mic_queries +
                       adaptive.stats.num_batched_drop_solves;
    adaptive_updates += adaptive.stats.num_adaptive_batch_updates;
    adaptive_width_sum += adaptive.stats.adaptive_batch_width_sum;
  }
  // The sizing actually ran, and every chosen width was in [1, max].
  EXPECT_GT(adaptive_updates, 0u);
  EXPECT_GE(adaptive_width_sum, adaptive_updates);
  EXPECT_LE(adaptive_width_sum, adaptive_updates * 8);
  // No solve-count regression beyond 10% headroom against the fixed width.
  EXPECT_LE(adaptive_solves * 10, fixed_solves * 11)
      << "adaptive=" << adaptive_solves << " fixed=" << fixed_solves
      << " — adaptive batch width regressed candidate-drop solves";
}

}  // namespace
}  // namespace pilot::ic3
