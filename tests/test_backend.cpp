/// Backend-registry tests: built-in registration, name→config mapping,
/// factory errors, verdict adapters for every engine family, custom backend
/// registration, and the cancellation contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "circuits/families.hpp"
#include "engine/backend.hpp"
#include "ic3/witness.hpp"
#include "ts/transition_system.hpp"

namespace pilot::engine {
namespace {

ts::TransitionSystem make_ts(const circuits::CircuitCase& cc) {
  return ts::TransitionSystem::from_aig(cc.aig);
}

TEST(BackendRegistry, BuiltinsAreRegistered) {
  for (const char* name : {"ic3-down", "ic3-down-pl", "ic3-ctg", "ic3-ctg-pl",
                           "ic3-cav23", "ic3-dyn", "pdr", "bmc", "kind"}) {
    EXPECT_TRUE(backend_registered(name)) << name;
  }
  EXPECT_FALSE(backend_registered("nope"));
  // names() is sorted and contains at least the built-ins.
  const std::vector<std::string> names = backend_names();
  EXPECT_GE(names.size(), 9u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(BackendRegistry, UnknownNameThrowsListingRegisteredEngines) {
  const auto cc = circuits::mutex_safe();
  const ts::TransitionSystem ts = make_ts(cc);
  try {
    (void)make_backend("no-such-engine", ts, {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    // The offending token and every registered name must appear.
    EXPECT_NE(msg.find("no-such-engine"), std::string::npos) << msg;
    for (const std::string& name : backend_names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << name << " in " << msg;
    }
    EXPECT_NE(msg.find("portfolio"), std::string::npos) << msg;
  }
}

TEST(BackendRegistry, Ic3ConfigForMatchesNames) {
  EXPECT_EQ(ic3_config_for("ic3-down", 1).gen_mode, ic3::GenMode::kDown);
  EXPECT_FALSE(ic3_config_for("ic3-down", 1).predict_lemmas);
  EXPECT_TRUE(ic3_config_for("ic3-down-pl", 1).predict_lemmas);
  EXPECT_EQ(ic3_config_for("ic3-ctg", 1).gen_mode, ic3::GenMode::kCtg);
  EXPECT_TRUE(ic3_config_for("ic3-ctg-pl", 1).predict_lemmas);
  EXPECT_EQ(ic3_config_for("ic3-cav23", 1).gen_mode, ic3::GenMode::kCav23);
  EXPECT_EQ(ic3_config_for("ic3-dyn", 1).gen_spec, "dynamic");
  EXPECT_EQ(ic3_config_for("pdr", 1).ctg_max_ctgs, 0);
  EXPECT_EQ(ic3_config_for("ic3-ctg", 42).seed, 42u);
  EXPECT_THROW((void)ic3_config_for("bmc", 1), std::invalid_argument);
  EXPECT_THROW((void)ic3_config_for("portfolio", 1), std::invalid_argument);
}

TEST(Backend, EveryBuiltinAnswersBothVerdicts) {
  const auto safe_cc = circuits::token_ring_safe(5);
  const auto unsafe_cc = circuits::counter_unsafe(4, 6);
  const ts::TransitionSystem safe_ts = make_ts(safe_cc);
  const ts::TransitionSystem unsafe_ts = make_ts(unsafe_cc);
  // The fixed builtin list, not backend_names(): other tests may have
  // registered stub backends with made-up verdicts.
  for (const std::string name : {"ic3-down", "ic3-down-pl", "ic3-ctg",
                                 "ic3-ctg-pl", "ic3-cav23", "ic3-dyn", "pdr",
                                 "bmc", "kind"}) {
    {
      const std::unique_ptr<Backend> b = make_backend(name, safe_ts, {});
      EXPECT_EQ(b->name(), name);
      const EngineResult r = b->check(Deadline::in_seconds(30), nullptr);
      // BMC cannot prove safety; every other engine must.
      if (name == "bmc") {
        EXPECT_EQ(r.verdict, ic3::Verdict::kUnknown) << name;
      } else {
        EXPECT_EQ(r.verdict, ic3::Verdict::kSafe) << name;
      }
    }
    {
      const std::unique_ptr<Backend> b = make_backend(name, unsafe_ts, {});
      const EngineResult r = b->check(Deadline::in_seconds(30), nullptr);
      ASSERT_EQ(r.verdict, ic3::Verdict::kUnsafe) << name;
      // Every engine family produces a certifiable counterexample trace.
      ASSERT_TRUE(r.trace.has_value()) << name;
      EXPECT_TRUE(ic3::check_trace(unsafe_ts, *r.trace).ok) << name;
    }
  }
}

TEST(Backend, ContextOverridesReachIc3Backends) {
  // Engine name says -pl, but the override forces prediction off — the
  // stats must show zero prediction queries.
  const auto cc = circuits::counter_wrap_safe(5, 16, 30);
  const ts::TransitionSystem ts = make_ts(cc);
  BackendContext ctx;
  ic3::Config cfg = ic3_config_for("ic3-ctg-pl", 0);
  cfg.predict_lemmas = false;
  ctx.ic3_overrides = cfg;
  const std::unique_ptr<Backend> b = make_backend("ic3-ctg-pl", ts, ctx);
  const EngineResult r = b->check({}, nullptr);
  EXPECT_EQ(r.verdict, ic3::Verdict::kSafe);
  EXPECT_EQ(r.stats.num_prediction_queries, 0u);
}

TEST(Backend, StoppedTokenYieldsUnknown) {
  const auto cc = circuits::counter_wrap_safe(12, 1024, 2048);
  const ts::TransitionSystem ts = make_ts(cc);
  CancelToken cancel;
  cancel.request_stop();
  for (const char* name : {"ic3-ctg-pl", "bmc", "kind"}) {
    const std::unique_ptr<Backend> b = make_backend(name, ts, {});
    const EngineResult r = b->check({}, &cancel);
    EXPECT_EQ(r.verdict, ic3::Verdict::kUnknown) << name;
  }
}

TEST(BackendRegistry, CustomBackendsPlugIn) {
  // A stub engine registered at runtime must be constructible by name and
  // re-registration under the same name must be rejected.
  class StubBackend final : public Backend {
   public:
    [[nodiscard]] const std::string& name() const override {
      static const std::string kName = "test-stub";
      return kName;
    }
    EngineResult check(const Deadline&, const CancelToken*) override {
      EngineResult r;
      r.verdict = ic3::Verdict::kSafe;
      return r;
    }
  };
  if (!backend_registered("test-stub")) {
    register_backend("test-stub",
                     [](const ts::TransitionSystem&, const BackendContext&) {
                       return std::make_unique<StubBackend>();
                     });
  }
  EXPECT_THROW(register_backend(
                   "test-stub",
                   [](const ts::TransitionSystem&, const BackendContext&) {
                     return std::make_unique<StubBackend>();
                   }),
               std::invalid_argument);
  const auto cc = circuits::mutex_unsafe();
  const ts::TransitionSystem ts = make_ts(cc);
  const std::unique_ptr<Backend> b = make_backend("test-stub", ts, {});
  EXPECT_EQ(b->check({}, nullptr).verdict, ic3::Verdict::kSafe);
}

}  // namespace
}  // namespace pilot::engine
