#include "ic3/gen_dynamic.hpp"

#include <algorithm>
#include <stdexcept>

namespace pilot::ic3 {

namespace {

/// Rotation order: prediction first (the paper's contribution, cheapest
/// when it hits), then the drop loops from most to least sophisticated.
const std::vector<std::string>& candidate_order() {
  static const std::vector<std::string> kOrder{"predict", "ctg", "cav23",
                                               "down"};
  return kOrder;
}

}  // namespace

DynamicArgs parse_dynamic_args(const std::string& args) {
  DynamicArgs out;
  if (args.empty()) return out;
  const std::size_t comma = args.find(',');
  const std::string window_text =
      comma == std::string::npos ? args : args.substr(0, comma);
  const std::string threshold_text =
      comma == std::string::npos ? "" : args.substr(comma + 1);
  try {
    if (!window_text.empty()) {
      std::size_t consumed = 0;
      const long long w = std::stoll(window_text, &consumed);
      if (consumed != window_text.size()) throw std::invalid_argument("");
      if (w < 1 ||
          w > static_cast<long long>(GenStrategyStats::kGenWindowCapacity)) {
        throw std::out_of_range("");
      }
      out.window = static_cast<std::size_t>(w);
    }
    if (!threshold_text.empty()) {
      std::size_t consumed = 0;
      const double t = std::stod(threshold_text, &consumed);
      if (consumed != threshold_text.size()) throw std::invalid_argument("");
      if (t < 0.0 || t > 1.0) throw std::out_of_range("");
      out.threshold = t;
    }
  } catch (const std::exception&) {
    throw std::invalid_argument(
        "dynamic strategy args ':" + args +
        "' are malformed; expected 'dynamic[:window[,threshold]]' with "
        "window in [1," +
        std::to_string(GenStrategyStats::kGenWindowCapacity) +
        "] and threshold in [0,1], e.g. 'dynamic:16,0.4'");
  }
  return out;
}

DynamicStrategy::DynamicStrategy(const GenContext& ctx,
                                 const std::string& args)
    : ctx_(ctx) {
  window_ = static_cast<std::size_t>(
      ctx.cfg.dynamic_window > 0 ? ctx.cfg.dynamic_window : 16);
  window_ = std::min(window_, GenStrategyStats::kGenWindowCapacity);
  threshold_ = ctx.cfg.dynamic_threshold;
  const DynamicArgs parsed = parse_dynamic_args(args);
  if (parsed.window.has_value()) window_ = *parsed.window;
  if (parsed.threshold.has_value()) threshold_ = *parsed.threshold;
  for (const std::string& name : candidate_order()) {
    candidates_.push_back(make_gen_strategy(name, ctx));
  }
}

const std::string& DynamicStrategy::name() const {
  static const std::string kName = "dynamic";
  return kName;
}

const std::string& DynamicStrategy::active_name() const {
  return candidates_[active_]->name();
}

std::vector<std::string> DynamicStrategy::candidate_names() const {
  std::vector<std::string> out;
  out.reserve(candidates_.size());
  for (const auto& c : candidates_) out.push_back(c->name());
  return out;
}

Cube DynamicStrategy::generalize(const Cube& cube, const Cube& core,
                                 std::size_t level, const Deadline& deadline,
                                 const AddLemmaFn& add_lemma) {
  return candidates_[active_]->generalize(cube, core, level, deadline,
                                          add_lemma);
}

void DynamicStrategy::on_push_failure(const Cube& lemma, std::size_t level,
                                      Cube ctp) {
  // Every candidate gets the CTP: the predictor needs its table current
  // even while another strategy is active, so a switch-to-predict starts
  // with fresh parents instead of an empty table.
  for (auto& c : candidates_) {
    if (c->wants_push_failures()) c->on_push_failure(lemma, level, ctp);
  }
}

void DynamicStrategy::on_propagate() {
  for (auto& c : candidates_) c->on_propagate();
  (void)evaluate_switch();
}

void DynamicStrategy::on_lemma(const Cube& lemma, std::size_t level) {
  // Every candidate keeps its own frame-dependent caches current, not just
  // the active one — a switch must not resurrect stale witnesses.
  for (auto& c : candidates_) c->on_lemma(lemma, level);
}

void DynamicStrategy::on_blocking_cti(const Cube& state,
                                      const std::vector<Lit>& inputs,
                                      std::size_t level) {
  // Same fan-out as on_lemma: a cached witness is valid for whichever
  // candidate is active when the drop loop next runs.
  for (auto& c : candidates_) c->on_blocking_cti(state, inputs, level);
}

std::size_t DynamicStrategy::pick_successor() const {
  // Exploration first: the nearest never-tried candidate after the active
  // one in rotation order.
  for (std::size_t step = 1; step < candidates_.size(); ++step) {
    const std::size_t i = (active_ + step) % candidates_.size();
    const GenStrategyStats* s =
        ctx_.stats.find_gen_strategy(candidates_[i]->name());
    if (s == nullptr || s->attempts == 0) return i;
  }
  // Exploitation: best windowed success rate among the others; ties go to
  // the earliest in rotation order after the active candidate.
  std::size_t best = (active_ + 1) % candidates_.size();
  double best_rate = -1.0;
  for (std::size_t step = 1; step < candidates_.size(); ++step) {
    const std::size_t i = (active_ + step) % candidates_.size();
    const GenStrategyStats* s =
        ctx_.stats.find_gen_strategy(candidates_[i]->name());
    const double rate =
        s == nullptr ? 0.0 : s->window_success_rate(window_);
    if (rate > best_rate) {
      best_rate = rate;
      best = i;
    }
  }
  return best;
}

bool DynamicStrategy::evaluate_switch() {
  GenStrategyStats& active_stats =
      ctx_.stats.gen_strategy(candidates_[active_]->name());
  // Judge only on a full window of samples gathered *since activation*.
  if (active_stats.attempts < attempts_at_activation_ + window_) return false;
  if (active_stats.window_success_rate(window_) >= threshold_) return false;
  const std::size_t next = pick_successor();
  if (next == active_) return false;
  ++active_stats.switches;
  ++ctx_.stats.num_strategy_switches;
  active_ = next;
  attempts_at_activation_ =
      ctx_.stats.gen_strategy(candidates_[active_]->name()).attempts;
  return true;
}

}  // namespace pilot::ic3
