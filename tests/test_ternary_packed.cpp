/// Differential fuzzing of the packed ternary simulator against the
/// reference byte-wise TernarySimulator (random {0,1,X} frames, broadcast
/// and per-lane) and against BitSimulator on X-free frames across
/// multi-step latch sequences.  The packed backend is the production path
/// of ternary lifting and of the generalization drop-filter, so any
/// encoding bug here silently corrupts cubes — these tests pin the two
/// backends to exact agreement on every node, every lane.
#include <gtest/gtest.h>

#include <vector>

#include "aig/simulation.hpp"
#include "util/rng.hpp"

namespace pilot::aig {
namespace {

/// Random AIG transition system (mirrors the test_random_systems
/// generator): a few latches and inputs, a random DAG of AND gates,
/// random next-state functions and a random bad cone.
Aig random_system(Rng& rng, int num_latches, int num_inputs, int num_gates) {
  Aig a;
  std::vector<AigLit> pool;
  pool.push_back(AigLit::constant(false));
  for (int i = 0; i < num_inputs; ++i) pool.push_back(a.add_input());
  std::vector<AigLit> latches;
  for (int i = 0; i < num_latches; ++i) {
    const LBool init = rng.chance(0.1) ? l_Undef : LBool(rng.chance(0.5));
    const AigLit l = a.add_latch(init);
    latches.push_back(l);
    pool.push_back(l);
  }
  auto pick = [&]() {
    const AigLit l = pool[rng.below(pool.size())];
    return l ^ rng.chance(0.5);
  };
  for (int i = 0; i < num_gates; ++i) {
    pool.push_back(a.make_and(pick(), pick()));
  }
  for (const AigLit l : latches) a.set_next(l, pick());
  a.add_bad(pick());
  return a;
}

TV random_tv(Rng& rng) {
  switch (rng.below(3)) {
    case 0: return TV::kZero;
    case 1: return TV::kOne;
    default: return TV::kX;
  }
}

/// Every literal of every node, both polarities — the exhaustive probe set.
std::vector<AigLit> all_probes(const Aig& a) {
  std::vector<AigLit> probes;
  probes.reserve(a.num_nodes() * 2);
  for (std::uint32_t n = 0; n < a.num_nodes(); ++n) {
    probes.push_back(AigLit::make(n, false));
    probes.push_back(AigLit::make(n, true));
  }
  return probes;
}

TEST(TernaryPacked, BroadcastMatchesByteSimulatorOnRandomFrames) {
  Rng rng(20240601);
  for (int round = 0; round < 50; ++round) {
    const Aig a = random_system(rng, 2 + static_cast<int>(rng.below(5)),
                                static_cast<int>(rng.below(4)),
                                3 + static_cast<int>(rng.below(20)));
    TernarySimulator byte_sim(a);
    PackedTernarySimulator packed(a);
    const std::vector<AigLit> probes = all_probes(a);
    for (int frame = 0; frame < 8; ++frame) {
      std::vector<TV> latch_values(a.num_latches());
      std::vector<TV> input_values(a.num_inputs());
      for (TV& v : latch_values) v = random_tv(rng);
      for (TV& v : input_values) v = random_tv(rng);
      byte_sim.compute(latch_values, input_values);
      packed.compute(latch_values, input_values);
      for (const AigLit p : probes) {
        const TV expect = byte_sim.value(p);
        for (std::size_t lane = 0; lane < PackedTernarySimulator::kLanes;
             ++lane) {
          ASSERT_EQ(packed.value(p, lane), expect)
              << "round=" << round << " frame=" << frame
              << " node=" << p.node() << " neg=" << p.negated()
              << " lane=" << lane;
        }
      }
    }
  }
}

TEST(TernaryPacked, EachLaneMatchesAnIndependentByteRun) {
  Rng rng(777001);
  for (int round = 0; round < 25; ++round) {
    const Aig a = random_system(rng, 2 + static_cast<int>(rng.below(5)),
                                static_cast<int>(rng.below(4)),
                                3 + static_cast<int>(rng.below(20)));
    TernarySimulator byte_sim(a);
    PackedTernarySimulator packed(a);
    const std::vector<AigLit> probes = all_probes(a);
    // 32 independent frames, one per lane.
    std::vector<std::vector<TV>> lane_latches(PackedTernarySimulator::kLanes);
    std::vector<std::vector<TV>> lane_inputs(PackedTernarySimulator::kLanes);
    for (std::size_t lane = 0; lane < PackedTernarySimulator::kLanes;
         ++lane) {
      lane_latches[lane].resize(a.num_latches());
      lane_inputs[lane].resize(a.num_inputs());
      for (std::size_t i = 0; i < a.num_latches(); ++i) {
        const TV v = random_tv(rng);
        lane_latches[lane][i] = v;
        packed.set_latch(i, lane, v);
      }
      for (std::size_t i = 0; i < a.num_inputs(); ++i) {
        const TV v = random_tv(rng);
        lane_inputs[lane][i] = v;
        packed.set_input(i, lane, v);
      }
    }
    packed.compute();
    for (std::size_t lane = 0; lane < PackedTernarySimulator::kLanes;
         ++lane) {
      byte_sim.compute(lane_latches[lane], lane_inputs[lane]);
      for (const AigLit p : probes) {
        ASSERT_EQ(packed.value(p, lane), byte_sim.value(p))
            << "round=" << round << " lane=" << lane << " node=" << p.node()
            << " neg=" << p.negated();
      }
    }
  }
}

TEST(TernaryPacked, XFreeLanesAgreeWithBitSimulatorAcrossSteps) {
  Rng rng(424242);
  for (int round = 0; round < 25; ++round) {
    const Aig a = random_system(rng, 2 + static_cast<int>(rng.below(5)),
                                static_cast<int>(rng.below(4)),
                                3 + static_cast<int>(rng.below(20)));
    BitSimulator bit(a);
    PackedTernarySimulator packed(a);
    const std::vector<AigLit> probes = all_probes(a);
    // Definite initial state on every lane: BitSimulator::reset fills
    // uninitialized latches from the pattern word; mirror bit k of each
    // latch word into packed lane k.
    bit.reset(/*undef_fill=*/rng.next_u64());
    for (std::size_t i = 0; i < a.num_latches(); ++i) {
      const std::uint64_t w = bit.latch_value(a.latches()[i]);
      for (std::size_t lane = 0; lane < PackedTernarySimulator::kLanes;
           ++lane) {
        packed.set_latch(i, lane,
                         ((w >> lane) & 1ULL) != 0 ? TV::kOne : TV::kZero);
      }
    }
    for (int step = 0; step < 6; ++step) {
      std::vector<std::uint64_t> inputs(a.num_inputs());
      for (std::size_t i = 0; i < a.num_inputs(); ++i) {
        inputs[i] = rng.next_u64();
        for (std::size_t lane = 0; lane < PackedTernarySimulator::kLanes;
             ++lane) {
          packed.set_input(
              i, lane,
              ((inputs[i] >> lane) & 1ULL) != 0 ? TV::kOne : TV::kZero);
        }
      }
      bit.compute(inputs);
      packed.compute();
      for (const AigLit p : probes) {
        const std::uint64_t w = bit.value(p);
        for (std::size_t lane = 0; lane < PackedTernarySimulator::kLanes;
             ++lane) {
          const TV expect =
              ((w >> lane) & 1ULL) != 0 ? TV::kOne : TV::kZero;
          ASSERT_EQ(packed.value(p, lane), expect)
              << "round=" << round << " step=" << step
              << " node=" << p.node() << " neg=" << p.negated()
              << " lane=" << lane;
        }
      }
      bit.latch_step();
      packed.latch_step();
    }
  }
}

TEST(TernaryPacked, TrialConeMatchesFullRecomputeAndRollbackRestores) {
  Rng rng(90210);
  for (int round = 0; round < 25; ++round) {
    const Aig a = random_system(rng, 3 + static_cast<int>(rng.below(4)),
                                static_cast<int>(rng.below(3)),
                                5 + static_cast<int>(rng.below(20)));
    if (a.num_latches() == 0) continue;
    PackedTernarySimulator packed(a);
    PackedTernarySimulator reference(a);
    const std::vector<AigLit> probes = all_probes(a);
    std::vector<TV> latch_values(a.num_latches());
    std::vector<TV> input_values(a.num_inputs());
    for (TV& v : latch_values) v = random_tv(rng);
    for (TV& v : input_values) v = random_tv(rng);
    packed.compute(latch_values, input_values);

    for (int trial = 0; trial < 8; ++trial) {
      const std::size_t idx = rng.below(a.num_latches());
      const TV v = random_tv(rng);
      // Snapshot before the trial (lane 0 suffices: all lanes identical).
      std::vector<TV> before;
      before.reserve(probes.size());
      for (const AigLit p : probes) before.push_back(packed.value(p, 0));

      packed.trial_set_latch(idx, v);
      // Reference: same frame with the latch set outright, full sweep.
      latch_values[idx] = v;
      reference.compute(latch_values, input_values);
      for (std::size_t pi = 0; pi < probes.size(); ++pi) {
        ASSERT_EQ(packed.value(probes[pi], 0),
                  reference.value(probes[pi], 0))
            << "round=" << round << " trial=" << trial
            << " node=" << probes[pi].node();
      }
      if (rng.chance(0.5)) {
        packed.trial_commit();  // keep: the live frame adopts the trial
      } else {
        packed.trial_rollback();
        latch_values[idx] = before[2 * a.latches()[idx]];  // pre-trial value
        for (std::size_t pi = 0; pi < probes.size(); ++pi) {
          ASSERT_EQ(packed.value(probes[pi], 0), before[pi])
              << "rollback mismatch: round=" << round << " trial=" << trial
              << " node=" << probes[pi].node();
        }
      }
    }
  }
}

}  // namespace
}  // namespace pilot::aig
