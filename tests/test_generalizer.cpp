/// Generalizer tests: every returned cube must remain relative-inductive
/// and initiation-safe, must subsume the input cube, and the three
/// strategies (down / ctgDown / CAV'23 ordering) must all preserve these
/// invariants while shrinking cubes.
#include <gtest/gtest.h>

#include "circuits/families.hpp"
#include "ic3/generalizer.hpp"
#include "ic3/solver_manager.hpp"
#include "ts/transition_system.hpp"

namespace pilot::ic3 {
namespace {

struct GenFixture {
  explicit GenFixture(GenMode mode,
                      circuits::CircuitCase circuit_case)
      : cc(std::move(circuit_case)),
        ts(ts::TransitionSystem::from_aig(cc.aig)) {
    cfg.gen_mode = mode;
    solvers = std::make_unique<SolverManager>(ts, cfg, stats);
    generalizer =
        std::make_unique<Generalizer>(ts, *solvers, frames, cfg, stats);
    solvers->ensure_level(2);
    frames.ensure_level(2);
  }

  void add_lemma(const Cube& c, std::size_t level) {
    if (frames.add_lemma(c, level)) solvers->add_lemma_clause(c, level);
  }

  circuits::CircuitCase cc;
  ts::TransitionSystem ts;
  Config cfg;
  Ic3Stats stats;
  Frames frames;
  std::unique_ptr<SolverManager> solvers;
  std::unique_ptr<Generalizer> generalizer;
};

class GeneralizerModes : public ::testing::TestWithParam<GenMode> {};

TEST_P(GeneralizerModes, ResultSubsumesInputAndStaysInductive) {
  GenFixture f(GetParam(), circuits::token_ring_safe(6));
  // Blockable cube: tokens at positions 1 and 3 plus noise bits at 0/2
  // (all zero).  Any generalization must stay inductive at level 1.
  std::vector<Lit> lits{Lit::make(f.ts.state_var(1)),
                        Lit::make(f.ts.state_var(3)),
                        Lit::make(f.ts.state_var(0), true),
                        Lit::make(f.ts.state_var(2), true)};
  const Cube cube = Cube::from_lits(std::move(lits));
  Cube core;
  ASSERT_TRUE(f.solvers->relative_inductive(cube, 0, false, &core,
                                            Deadline{}));

  const Cube g = f.generalizer->generalize(
      core, 1, Deadline{},
      [&](const Cube& c, std::size_t lv) { f.add_lemma(c, lv); });

  EXPECT_TRUE(g.subset_of(cube)) << g.to_string();
  EXPECT_FALSE(g.empty());
  EXPECT_FALSE(f.ts.cube_intersects_init(g.lits()));
  // The generalized cube must still be relative inductive.
  EXPECT_TRUE(
      f.solvers->relative_inductive(g, 0, false, nullptr, Deadline{}));
}

TEST_P(GeneralizerModes, DropsNoiseLiteralsFromRingCube) {
  GenFixture f(GetParam(), circuits::token_ring_safe(8));
  // Two tokens + six noise literals: a good generalizer keeps ~2 literals
  // (the pairwise exclusion lemma); we only require real progress.
  std::vector<Lit> lits;
  lits.push_back(Lit::make(f.ts.state_var(2)));
  lits.push_back(Lit::make(f.ts.state_var(5)));
  for (const std::size_t i : {0u, 1u, 3u, 4u, 6u, 7u}) {
    lits.push_back(Lit::make(f.ts.state_var(i), true));
  }
  const Cube cube = Cube::from_lits(std::move(lits));
  Cube core;
  ASSERT_TRUE(
      f.solvers->relative_inductive(cube, 0, false, &core, Deadline{}));
  const Cube g = f.generalizer->generalize(
      core, 1, Deadline{},
      [&](const Cube& c, std::size_t lv) { f.add_lemma(c, lv); });
  EXPECT_LT(g.size(), cube.size());
}

INSTANTIATE_TEST_SUITE_P(Modes, GeneralizerModes,
                         ::testing::Values(GenMode::kDown, GenMode::kCtg,
                                           GenMode::kCav23),
                         [](const auto& info) {
                           switch (info.param) {
                             case GenMode::kDown: return "down";
                             case GenMode::kCtg: return "ctg";
                             default: return "cav23";
                           }
                         });

TEST(Generalizer, SingletonCubeIsNotDroppedToEmpty) {
  GenFixture f(GenMode::kDown, circuits::counter_wrap_safe(3, 4, 6));
  // {bit2=1} is already minimal for "count ≥ 4 unreachable".
  const Cube cube = Cube::from_lits({Lit::make(f.ts.state_var(2))});
  Cube core;
  ASSERT_TRUE(
      f.solvers->relative_inductive(cube, 0, false, &core, Deadline{}));
  const Cube g = f.generalizer->generalize(
      core, 1, Deadline{}, [&](const Cube&, std::size_t) {});
  EXPECT_EQ(g.size(), 1u);
}

TEST(Generalizer, Cav23OrderingPrefersParentLiterals) {
  GenFixture f(GenMode::kCav23, circuits::token_ring_safe(6));
  // Install a parent lemma {s1, s3} at level 1 = delta(1), plus the
  // rotation predecessor {s0, s2} so the superset cube below is actually
  // inductive relative to R_1.
  const Cube parent = Cube::from_lits(
      {Lit::make(f.ts.state_var(1)), Lit::make(f.ts.state_var(3))});
  f.add_lemma(parent, 1);
  f.add_lemma(Cube::from_lits({Lit::make(f.ts.state_var(0)),
                               Lit::make(f.ts.state_var(2))}),
              1);
  // Generalize a superset cube at level 2: with the CAV'23 ordering the
  // non-parent literal (s5=0) is attempted first, and the surviving cube
  // keeps the parent's shape.
  std::vector<Lit> lits{Lit::make(f.ts.state_var(1)),
                        Lit::make(f.ts.state_var(3)),
                        Lit::make(f.ts.state_var(5), true)};
  const Cube cube = Cube::from_lits(std::move(lits));
  Cube core;
  ASSERT_TRUE(
      f.solvers->relative_inductive(cube, 1, false, &core, Deadline{}));
  const Cube g = f.generalizer->generalize(
      core, 2, Deadline{},
      [&](const Cube& c, std::size_t lv) { f.add_lemma(c, lv); });
  EXPECT_TRUE(g.subset_of(cube));
  EXPECT_FALSE(f.ts.cube_intersects_init(g.lits()));
}

TEST(Generalizer, CtgModeBlocksCtgsAsSideEffect) {
  // On the wrap counter the CTG path exercises recursive blocking; we
  // check it terminates, produces a valid lemma, and may add side lemmas.
  GenFixture f(GenMode::kCtg, circuits::counter_wrap_safe(4, 8, 14));
  f.solvers->ensure_level(3);
  f.frames.ensure_level(3);
  const Cube cube = Cube::from_lits({Lit::make(f.ts.state_var(3)),
                                     Lit::make(f.ts.state_var(2)),
                                     Lit::make(f.ts.state_var(1))});
  Cube core;
  ASSERT_TRUE(
      f.solvers->relative_inductive(cube, 0, false, &core, Deadline{}));
  const Cube g = f.generalizer->generalize(
      core, 1, Deadline{},
      [&](const Cube& c, std::size_t lv) { f.add_lemma(c, lv); });
  EXPECT_FALSE(g.empty());
  EXPECT_TRUE(
      f.solvers->relative_inductive(g, 0, false, nullptr, Deadline{}));
}

TEST(Generalizer, MicQueryCountIsBoundedByCubeSizeTimesPasses) {
  GenFixture f(GenMode::kDown, circuits::token_ring_safe(6));
  std::vector<Lit> lits;
  for (std::size_t i = 0; i < 6; ++i) {
    lits.push_back(Lit::make(f.ts.state_var(i), i != 1 && i != 4));
  }
  const Cube cube = Cube::from_lits(std::move(lits));
  Cube core;
  ASSERT_TRUE(
      f.solvers->relative_inductive(cube, 0, false, &core, Deadline{}));
  const std::uint64_t before = f.stats.num_mic_queries;
  f.generalizer->generalize(core, 1, Deadline{},
                            [&](const Cube&, std::size_t) {});
  // Plain down: at most one query per literal of the (core-shrunk) cube.
  EXPECT_LE(f.stats.num_mic_queries - before, core.size());
}

}  // namespace
}  // namespace pilot::ic3
