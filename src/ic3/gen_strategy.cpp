#include "ic3/gen_strategy.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "ic3/drop_filter.hpp"
#include "ic3/gen_dynamic.hpp"
#include "obs/phase.hpp"
#include "ic3/predictor.hpp"

namespace pilot::ic3 {

namespace {

// ----- fixed strategies ------------------------------------------------------

/// The three drop-loop strategies share one MIC implementation and differ
/// in literal ordering (cav23) and CTG handling (ctg); the mode is the
/// strategy's own, NOT Config::gen_mode, so `--gen cav23` works on any
/// engine configuration.
class FixedStrategy final : public GenStrategy {
 public:
  FixedStrategy(const GenContext& ctx, std::string name, GenMode mode)
      : ctx_(ctx), name_(std::move(name)), mode_(mode) {
    // The ternary drop-filter only applies to the plain drop loops: the
    // ctg loop consumes the CTI model of every failed solve, so skipping
    // a solve there would change its behaviour (see drop_filter.hpp).
    if (ctx_.cfg.gen_ternary_filter && mode_ != GenMode::kCtg) {
      filter_ = std::make_unique<DropFilter>(ctx_.ts, ctx_.stats);
    }
  }

  [[nodiscard]] const std::string& name() const override { return name_; }

  Cube generalize(const Cube& cube, const Cube& core, std::size_t level,
                  const Deadline& deadline,
                  const AddLemmaFn& add_lemma) override {
    (void)cube;  // drop loops start from the core-shrunk cube
    // Witnesses persist across generalizations: every frame-strengthening
    // install reaches the filter through on_lemma(), which keeps the cache
    // exact without wholesale resets.
    return mic(core, level, /*depth=*/0, deadline, add_lemma);
  }

  void on_lemma(const Cube& lemma, std::size_t level) override {
    if (filter_) filter_->on_lemma(lemma, level);
  }

  void on_blocking_cti(const Cube& state, const std::vector<Lit>& inputs,
                       std::size_t level) override {
    if (!filter_) return;
    filter_->add_witness(state, inputs, level);
    ++ctx_.stats.num_filter_blocking_witnesses;
  }

 private:
  [[nodiscard]] std::vector<Lit> order_literals(const Cube& cube,
                                                std::size_t level) const {
    std::vector<Lit> order(cube.begin(), cube.end());
    if (mode_ != GenMode::kCav23 || level == 0) return order;
    // CAV'23 ordering: literals that do NOT occur in any parent lemma of
    // the previous frame are dropped first, so the surviving clause looks
    // like a parent lemma and is more likely to propagate.
    const std::vector<Cube> parents =
        ctx_.frames.parents_of(cube, level - 1);
    if (parents.empty()) return order;
    std::unordered_set<std::int32_t> parent_lits;
    for (const Cube& p : parents) {
      for (const Lit l : p) parent_lits.insert(l.index());
    }
    std::stable_partition(order.begin(), order.end(), [&](Lit l) {
      return parent_lits.find(l.index()) == parent_lits.end();
    });
    return order;
  }

  /// Folds `weight` candidate-probe outcomes (failed = the candidate drop
  /// was refuted by a CTI) into the failure-rate estimate behind the
  /// adaptive batch width.  Counts halve periodically so the estimate
  /// tracks the current frame's behaviour, not the whole run's.
  void record_probe(bool failed, std::uint64_t weight = 1) {
    probe_outcomes_ += weight;
    if (failed) probe_failures_ += weight;
    if (probe_outcomes_ >= 4096) {
      probe_outcomes_ /= 2;
      probe_failures_ /= 2;
    }
  }

  /// Probe-group width for this mic() pass.  Fixed mode returns
  /// Config::gen_batch; adaptive mode sizes the group from the observed
  /// candidate failure rate f: a batch solve is SAT ⟺ all k members fail
  /// (≈ f^k), so k = ln(0.5)/ln(f) makes both outcomes equally likely and
  /// one solve maximally informative.  Low f collapses to the sequential
  /// loop (most batches would be UNSAT and answer only one candidate —
  /// same cost, larger formulas); high f saturates at gen_batch_max.
  std::size_t batch_width() {
    if (mode_ == GenMode::kCtg) return 1;
    const auto fixed =
        static_cast<std::size_t>(std::max(1, ctx_.cfg.gen_batch));
    if (!ctx_.cfg.gen_batch_adaptive) return fixed;
    const auto max_k =
        static_cast<std::size_t>(std::max(2, ctx_.cfg.gen_batch_max));
    constexpr std::uint64_t kMinObservations = 32;
    std::size_t k;
    if (probe_outcomes_ < kMinObservations) {
      // Cold start: no usable estimate yet, run the configured width.
      k = std::max<std::size_t>(fixed, 2);
    } else {
      const double f = static_cast<double>(probe_failures_) /
                       static_cast<double>(probe_outcomes_);
      if (f >= 0.97) {
        k = max_k;
      } else if (f <= 0.5) {
        k = 1;
      } else {
        k = static_cast<std::size_t>(
            std::lround(std::log(0.5) / std::log(f)));
      }
      k = std::min(std::max<std::size_t>(k, 1), max_k);
    }
    ++ctx_.stats.num_adaptive_batch_updates;
    ctx_.stats.adaptive_batch_width_sum += k;
    return k;
  }

  Cube mic(Cube cube, std::size_t level, int depth, const Deadline& deadline,
           const AddLemmaFn& add_lemma) {
    const std::vector<Lit> order = order_literals(cube, level);
    const std::size_t batch = batch_width();
    // Candidates a batched CTI has defeated, keyed by literal index with
    // the CTI's state cube as evidence.  A defeat is exact for the cube it
    // was found against; after the cube shrinks it still holds iff the CTI
    // state falsifies some OTHER remaining literal (the successor side
    // only loses obligations), which defeat_holds re-checks lazily — so
    // drops do not wipe the answers the probes already paid for.
    std::unordered_map<std::int32_t, Cube> defeated;
    const auto is_defeated = [&](Lit m) {
      const auto it = defeated.find(m.index());
      if (it == defeated.end()) return false;
      if (defeat_holds(cube, m, it->second)) return true;
      defeated.erase(it);
      return false;
    };
    for (std::size_t i = 0; i < order.size(); ++i) {
      const Lit l = order[i];
      if (cube.size() <= 1) break;
      if (!cube.contains(l)) continue;  // removed by an earlier core shrink
      if (is_defeated(l)) continue;     // answered by a batch CTI
      Cube cand = cube.without(l);
      if (ctx_.ts.cube_intersects_init(cand.lits())) continue;
      if (mode_ == GenMode::kCtg) {
        if (ctg_down(cand, level, depth, deadline, add_lemma)) {
          cube = cand;
          ++ctx_.stats.num_mic_drops;
        }
        continue;
      }
      if (filter_ && filter_->rejects(cand, level)) continue;
      if (batch >= 2) {
        batch_probe(cube, i, order, batch, level, defeated, is_defeated,
                    deadline);
        // The probe loop resolves candidates exactly: re-check what is
        // left of l before falling back to a sequential solve.
        if (cube.size() <= 1) break;
        if (!cube.contains(l) || is_defeated(l)) continue;
        cand = cube.without(l);
        if (ctx_.ts.cube_intersects_init(cand.lits())) continue;
      }
      ++ctx_.stats.num_mic_queries;
      Cube core;
      if (ctx_.solvers.relative_inductive(cand, level - 1,
                                          /*cube_clause_in_frame=*/false,
                                          &core, deadline)) {
        cube = core;
        ++ctx_.stats.num_mic_drops;
        record_probe(/*failed=*/false);
      } else {
        record_probe(/*failed=*/true);
        if (filter_) {
          filter_->add_witness(ctx_.solvers.model_state(/*primed=*/false),
                               ctx_.solvers.model_inputs(), level);
        }
      }
    }
    return cube;
  }

  /// Does the recorded CTI still defeat dropping `m` from the (possibly
  /// since-shrunk) cube?  The CTI was a model of R ∧ ¬(old\m) ∧ T ∧
  /// (old\m)′ for some old ⊇ cube; its successor satisfies (cube\m)′ ⊆
  /// (old\m)′ outright, so the model witnesses the current query exactly
  /// when its state still falsifies a literal of cube\m.
  static bool defeat_holds(const Cube& cube, Lit m, const Cube& cti) {
    for (const Lit x : cube) {
      if (x == m) continue;
      if (cti.contains(~x)) return true;
    }
    return false;
  }

  /// Batched probe loop at order position `i`: repeatedly gather up to
  /// `batch` still-live candidates (the current one first) and answer them
  /// with ONE solve against the disjoint-copy batch solver.  The solve is
  /// exact in both directions — SAT proves every member undroppable and
  /// returns one genuine CTI per member (all marked defeated, all fed to
  /// the drop-filter), UNSAT adopts one member's core-shrunk drop — so the
  /// loop keeps draining droppable members one solve per drop and stops at
  /// the first SAT (or when fewer than two candidates remain, leaving the
  /// stragglers to the sequential loop).  A filter hit while gathering
  /// marks the candidate defeated outright: the same check would skip it
  /// at its own turn anyway, so this neither adds a solve nor
  /// double-counts a filter save.
  template <typename IsDefeated>
  void batch_probe(Cube& cube, std::size_t i, const std::vector<Lit>& order,
                   std::size_t batch, std::size_t level,
                   std::unordered_map<std::int32_t, Cube>& defeated,
                   const IsDefeated& is_defeated, const Deadline& deadline) {
    for (;;) {
      std::vector<Lit> group;
      for (std::size_t j = i; j < order.size() && group.size() < batch; ++j) {
        const Lit m = order[j];
        if (!cube.contains(m) || is_defeated(m)) continue;
        const Cube cand = cube.without(m);
        if (cand.size() < 1 || ctx_.ts.cube_intersects_init(cand.lits())) {
          continue;
        }
        if (filter_ && filter_->rejects(cand, level)) continue;
        group.push_back(m);
      }
      if (group.size() < 2) return;
      ++ctx_.stats.num_batched_drop_solves;
      SolverManager::BatchProbeResult res;
      if (ctx_.solvers.batch_drop_probe(cube, group, level - 1, ctx_.frames,
                                        &res, deadline)) {
        // UNSAT: one member's drop is certified; adopt it and re-probe the
        // survivors against the smaller cube.  Recorded defeats stay — they
        // re-validate lazily against the shrunk cube.
        cube = res.dropped;
        ++ctx_.stats.num_batched_drop_answers;
        ++ctx_.stats.num_mic_drops;
        record_probe(/*failed=*/false);
        continue;
      }
      // SAT: every member's own query is witnessed by its copy's model —
      // one solve answers the whole group as failures.
      for (std::size_t k = 0; k < group.size(); ++k) {
        defeated[group[k].index()] = res.cti_states[k];
        if (filter_) {
          filter_->add_witness(res.cti_states[k], res.cti_inputs[k], level);
        }
      }
      ctx_.stats.num_batched_drop_answers += group.size();
      record_probe(/*failed=*/true, group.size());
      return;
    }
  }

  bool ctg_down(Cube& cand, std::size_t level, int depth,
                const Deadline& deadline, const AddLemmaFn& add_lemma) {
    std::size_t ctgs = 0;
    for (;;) {
      if (ctx_.ts.cube_intersects_init(cand.lits())) return false;
      ++ctx_.stats.num_mic_queries;
      Cube core;
      if (ctx_.solvers.relative_inductive(cand, level - 1,
                                          /*cube_clause_in_frame=*/false,
                                          &core, deadline)) {
        cand = core;
        return true;
      }
      // The relative-induction query failed: extract the CTG predecessor.
      const Cube ctg_full = ctx_.solvers.model_state(/*primed=*/false);
      const bool may_block_ctg =
          depth < ctx_.cfg.ctg_max_depth &&
          ctgs < static_cast<std::size_t>(ctx_.cfg.ctg_max_ctgs) &&
          level > 1 && !ctx_.ts.cube_intersects_init(ctg_full.lits());
      if (may_block_ctg) {
        Cube ctg_core;
        if (ctx_.solvers.relative_inductive(ctg_full, level - 2,
                                            /*cube_clause_in_frame=*/false,
                                            &ctg_core, deadline)) {
          // The CTG is itself inductive one frame down: block it as high
          // as possible, generalize it recursively, and retry the
          // candidate.
          ++ctgs;
          ++ctx_.stats.num_ctg_blocked;
          std::size_t blocked_at = level - 1;
          while (blocked_at < ctx_.frames.top_level()) {
            Cube next_core;
            if (!ctx_.solvers.relative_inductive(
                    ctg_core, blocked_at, /*cube_clause_in_frame=*/false,
                    &next_core, deadline)) {
              break;
            }
            ctg_core = next_core;
            ++blocked_at;
          }
          const Cube g =
              mic(ctg_core, blocked_at, depth + 1, deadline, add_lemma);
          add_lemma(g, blocked_at);
          continue;
        }
      }
      // Join: keep only the literals the CTG shares with the candidate.
      ctgs = 0;
      const Cube joined = cand.intersect(ctg_full);
      if (joined.empty() || joined.size() == cand.size()) return false;
      cand = joined;
    }
  }

  const GenContext ctx_;
  const std::string name_;
  const GenMode mode_;
  std::unique_ptr<DropFilter> filter_;  // null: ctg mode or filter off
  /// Decaying candidate-probe outcome counts (see record_probe) — the
  /// failure-rate estimate the adaptive batch width is derived from.
  std::uint64_t probe_outcomes_ = 0;
  std::uint64_t probe_failures_ = 0;
};

// ----- the DAC'24 prediction strategy ----------------------------------------

/// Prediction in front of a fallback drop loop: try to predict the lemma
/// from a failed-push parent (Algorithm 2); only when no candidate
/// validates does the drop loop selected by Config::gen_mode run.
class PredictStrategy final : public GenStrategy {
 public:
  explicit PredictStrategy(const GenContext& ctx)
      : ctx_(ctx),
        predictor_(ctx.solvers, ctx.frames, ctx.cfg, ctx.stats),
        fallback_(ctx, "predict-fallback", ctx.cfg.gen_mode) {}

  [[nodiscard]] const std::string& name() const override {
    static const std::string kName = "predict";
    return kName;
  }

  Cube generalize(const Cube& cube, const Cube& core, std::size_t level,
                  const Deadline& deadline,
                  const AddLemmaFn& add_lemma) override {
    Timer t;
    const std::optional<Cube> predicted = [&] {
      obs::PhaseScope phase(&ctx_.stats.phases, obs::Phase::kPredict);
      return predictor_.predict(cube, level, deadline);
    }();
    ctx_.stats.time_predict += t.seconds();
    if (predicted.has_value()) return *predicted;
    return fallback_.generalize(cube, core, level, deadline, add_lemma);
  }

  [[nodiscard]] bool wants_push_failures() const override { return true; }

  void on_push_failure(const Cube& lemma, std::size_t level,
                       Cube ctp) override {
    predictor_.record_push_failure(lemma, level, std::move(ctp));
  }

  void on_propagate() override {
    if (ctx_.cfg.clear_failure_push_on_propagate) {
      predictor_.clear();  // paper line 44: reconstruct the hash table
    }
  }

  void on_lemma(const Cube& lemma, std::size_t level) override {
    fallback_.on_lemma(lemma, level);
  }

  void on_blocking_cti(const Cube& state, const std::vector<Lit>& inputs,
                       std::size_t level) override {
    fallback_.on_blocking_cti(state, inputs, level);
  }

 private:
  const GenContext ctx_;
  Predictor predictor_;
  FixedStrategy fallback_;
};

// ----- registry --------------------------------------------------------------

struct RegistryEntry {
  GenStrategyFactory factory;
  GenArgsValidator validate_args;  // may be null: args must be empty
};

class GenRegistry {
 public:
  static GenRegistry& instance() {
    static GenRegistry registry;
    return registry;
  }

  void add(const std::string& name, GenStrategyFactory factory,
           GenArgsValidator validate_args) {
    if (name.empty() || name.find(':') != std::string::npos) {
      throw std::invalid_argument("gen strategy name '" + name +
                                  "' is malformed (empty or contains ':')");
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!entries_
             .emplace(name,
                      RegistryEntry{std::move(factory),
                                    std::move(validate_args)})
             .second) {
      throw std::invalid_argument("gen strategy '" + name +
                                  "' already registered");
    }
  }

  [[nodiscard]] bool contains(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.count(name) != 0;
  }

  [[nodiscard]] std::vector<std::string> names() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) out.push_back(name);
    return out;  // std::map keeps them sorted
  }

  [[nodiscard]] RegistryEntry lookup(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw std::invalid_argument(unknown_message(name));
    }
    return it->second;
  }

 private:
  GenRegistry() {
    auto fixed = [](std::string name, GenMode mode) {
      return std::make_pair(
          name, RegistryEntry{[name, mode](const GenContext& ctx,
                                           const std::string& args) {
                                require_no_args(name, args);
                                return std::make_unique<FixedStrategy>(
                                    ctx, name, mode);
                              },
                              nullptr});
    };
    entries_.insert(fixed("down", GenMode::kDown));
    entries_.insert(fixed("ctg", GenMode::kCtg));
    entries_.insert(fixed("cav23", GenMode::kCav23));
    entries_.emplace(
        "predict",
        RegistryEntry{[](const GenContext& ctx, const std::string& args) {
                        require_no_args("predict", args);
                        return std::make_unique<PredictStrategy>(ctx);
                      },
                      nullptr});
    entries_.emplace(
        "dynamic",
        RegistryEntry{
            [](const GenContext& ctx, const std::string& args)
                -> std::unique_ptr<GenStrategy> {
              return std::make_unique<DynamicStrategy>(ctx, args);
            },
            [](const std::string& args) { (void)parse_dynamic_args(args); }});
  }

  /// "unknown generalization strategy 'x'; registered: a, b, c" — the
  /// message every CLI surfaces, built under the registry lock's caller.
  [[nodiscard]] std::string unknown_message(const std::string& name) const {
    std::string msg = "unknown generalization strategy '" + name +
                      "'; registered strategies:";
    for (const auto& [known, entry] : entries_) msg += " " + known;
    return msg;
  }

  static void require_no_args(const std::string& name,
                              const std::string& args) {
    if (!args.empty()) {
      throw std::invalid_argument("gen strategy '" + name +
                                  "' takes no ':args' (got ':" + args + "')");
    }
  }

  mutable std::mutex mutex_;
  std::map<std::string, RegistryEntry> entries_;
};

}  // namespace

void register_gen_strategy(const std::string& name, GenStrategyFactory factory,
                           GenArgsValidator validate_args) {
  GenRegistry::instance().add(name, std::move(factory),
                              std::move(validate_args));
}

bool gen_strategy_registered(const std::string& name) {
  return GenRegistry::instance().contains(name);
}

std::vector<std::string> gen_strategy_names() {
  return GenRegistry::instance().names();
}

GenSpec split_gen_spec(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) return {spec, ""};
  return {spec.substr(0, colon), spec.substr(colon + 1)};
}

void validate_gen_spec(const std::string& spec) {
  const GenSpec parts = split_gen_spec(spec);
  const RegistryEntry entry = GenRegistry::instance().lookup(parts.name);
  if (entry.validate_args != nullptr) {
    entry.validate_args(parts.args);
  } else if (!parts.args.empty()) {
    throw std::invalid_argument("gen strategy '" + parts.name +
                                "' takes no ':args' (got ':" + parts.args +
                                "')");
  }
}

std::unique_ptr<GenStrategy> make_gen_strategy(const std::string& spec,
                                               const GenContext& ctx) {
  const GenSpec parts = split_gen_spec(spec);
  return GenRegistry::instance().lookup(parts.name).factory(ctx, parts.args);
}

}  // namespace pilot::ic3
