/// \file generalizer.hpp
/// The generalization driver: a thin facade the engine talks to, with the
/// actual policy delegated to a pluggable GenStrategy (gen_strategy.hpp)
/// resolved from Config::gen_spec.
///
/// The driver owns the cross-strategy bookkeeping so strategies stay pure
/// policy: it times every call into Ic3Stats::time_generalize, counts N_g,
/// and records each outcome (success / queries spent / literals dropped)
/// into the per-strategy sliding windows that the "dynamic" meta-strategy
/// and `pilot --stats` read.
///
/// This is exactly the component whose cost the paper's prediction
/// mechanism avoids: each literal dropped costs one relative-induction SAT
/// query, so |cube| queries per generalization in the worst case.
#pragma once

#include <memory>
#include <string>

#include "ic3/gen_strategy.hpp"

namespace pilot::ic3 {

class Generalizer {
 public:
  /// Resolves Config::gen_spec against the strategy registry; throws
  /// std::invalid_argument for unknown names or malformed args.
  Generalizer(const ts::TransitionSystem& ts, SolverManager& solvers,
              Frames& frames, const Config& cfg, Ic3Stats& stats);

  /// Generalizes `cube` (already relative-inductive at `level`-1 and
  /// disjoint from I) into a smaller cube still blocked at `level`.
  /// `core` is the unsat-core-shrunk cube from the blocking query.
  Cube generalize(const Cube& cube, const Cube& core, std::size_t level,
                  const Deadline& deadline, const AddLemmaFn& add_lemma);

  /// Back-compat overload for callers without a separate core (tests):
  /// the cube doubles as its own core.
  Cube generalize(const Cube& cube, std::size_t level,
                  const Deadline& deadline, const AddLemmaFn& add_lemma) {
    return generalize(cube, cube, level, deadline, add_lemma);
  }

  /// True when the active strategy consumes counterexamples to
  /// propagation — the engine extracts the successor model only then.
  [[nodiscard]] bool wants_push_failures() const {
    return strategy_->wants_push_failures();
  }

  /// Forwards a failed push (lemma, level, CTP successor state).
  void on_push_failure(const Cube& lemma, std::size_t level, Cube ctp) {
    strategy_->on_push_failure(lemma, level, std::move(ctp));
  }

  /// Propagation-boundary hook: table clears, dynamic strategy switching.
  void on_propagate() { strategy_->on_propagate(); }

  /// Lemma-install hook: the engine reports every clause that lands in the
  /// frames (blocking, pushes, exchange imports) so strategies can keep
  /// frame-dependent caches exact.
  void on_lemma(const Cube& lemma, std::size_t level) {
    strategy_->on_lemma(lemma, level);
  }

  /// Blocking-query CTI hook: the engine donates the predecessor model of
  /// every failed blocking query to the drop-filter witness cache.
  void on_blocking_cti(const Cube& state, const std::vector<Lit>& inputs,
                       std::size_t level) {
    strategy_->on_blocking_cti(state, inputs, level);
  }

  /// Registry name of the configured strategy ("down", "dynamic", …).
  [[nodiscard]] const std::string& strategy_name() const {
    return strategy_->name();
  }

  /// The strategy currently doing the work (differs from strategy_name()
  /// only for "dynamic").
  [[nodiscard]] const std::string& active_strategy() const {
    return strategy_->active_name();
  }

 private:
  Ic3Stats& stats_;
  std::unique_ptr<GenStrategy> strategy_;
};

}  // namespace pilot::ic3
