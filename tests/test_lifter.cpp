/// Lifter tests: both SAT-core and ternary-simulation lifting must produce
/// cubes whose every completion still reaches the target — verified by an
/// independent SAT query — and should genuinely shrink cubes with
/// irrelevant latches.
#include <gtest/gtest.h>

#include "circuits/builder.hpp"
#include "circuits/families.hpp"
#include "ic3/lifter.hpp"
#include "ic3/solver_manager.hpp"
#include "ts/transition_system.hpp"

namespace pilot::ic3 {
namespace {

/// A circuit where most latches are irrelevant to the property: an 8-bit
/// free counter plus a 1-bit flag latch; bad = flag & (count == 3).
struct LiftFixture {
  explicit LiftFixture(Config::LiftMode mode,
                       Config::LiftSim sim = Config::LiftSim::kPacked) {
    aig::Aig a;
    const aig::AigLit set_flag = a.add_input("set");
    const circuits::Word count = circuits::make_latches(a, 8, 0, "count");
    const aig::AigLit flag = a.add_latch(aig::l_False, "flag");
    circuits::connect(a, count, circuits::increment(a, count));
    a.set_next(flag, a.make_or(flag, set_flag));
    a.add_bad(a.make_and(flag, circuits::equals_const(a, count, 3)));
    ts = std::make_unique<ts::TransitionSystem>(
        ts::TransitionSystem::from_aig(a));
    cfg.lift_mode = mode;
    cfg.lift_sim = sim;
    lifter = std::make_unique<Lifter>(*ts, cfg, stats);
    solvers = std::make_unique<SolverManager>(*ts, cfg, stats);
    solvers->ensure_level(1);
  }

  /// Full state cube: count value + flag bit.
  Cube full_state(std::uint64_t count_value, bool flag_value) {
    std::vector<Lit> lits;
    for (std::size_t i = 0; i < 8; ++i) {
      lits.push_back(Lit::make(ts->state_var(i),
                               ((count_value >> i) & 1ULL) == 0));
    }
    lits.push_back(Lit::make(ts->state_var(8), !flag_value));
    return Cube::from_lits(std::move(lits));
  }

  /// Independent validation: every state in `cube` with `inputs` must step
  /// into `successor`:  UNSAT(cube ∧ inputs ∧ T ∧ ¬successor′).
  bool lift_is_valid(const Cube& cube, const std::vector<Lit>& inputs,
                     const Cube& successor) {
    sat::Solver s;
    ts->install(s);
    const Lit act = Lit::make(s.new_var());
    std::vector<Lit> clause{~act};
    for (const Lit l : successor) clause.push_back(~ts->prime(l));
    s.add_clause(clause);
    std::vector<Lit> assumptions{act};
    for (const Lit l : inputs) assumptions.push_back(l);
    for (const Lit l : cube) assumptions.push_back(l);
    return s.solve(assumptions) == sat::SolveResult::kUnsat;
  }

  /// Independent validation of a bad lift: every state in `cube` with
  /// `inputs` must raise bad:  UNSAT(cube ∧ inputs ∧ ¬bad).
  bool bad_lift_is_valid(const Cube& cube, const std::vector<Lit>& inputs) {
    sat::Solver s;
    ts->install(s);
    std::vector<Lit> assumptions{~ts->bad()};
    for (const Lit l : inputs) assumptions.push_back(l);
    for (const Lit l : cube) assumptions.push_back(l);
    return s.solve(assumptions) == sat::SolveResult::kUnsat;
  }

  std::unique_ptr<ts::TransitionSystem> ts;
  Config cfg;
  Ic3Stats stats;
  std::unique_ptr<Lifter> lifter;
  std::unique_ptr<SolverManager> solvers;
};

class LifterModes : public ::testing::TestWithParam<Config::LiftMode> {};

TEST_P(LifterModes, PredecessorLiftIsSoundAndShrinks) {
  LiftFixture f(GetParam());
  // Predecessor (count=2, flag=1) with no set input steps to
  // (count=3, flag=1); the successor cube is just {flag, count==3}'s
  // pre-image target: pick successor = full state (3, true).
  const Cube pred = f.full_state(2, true);
  const Cube succ = f.full_state(3, true);
  const std::vector<Lit> inputs{Lit::make(f.ts->input_var(0), true)};
  const Cube lifted = f.lifter->lift_predecessor(pred, inputs, succ, {});
  EXPECT_TRUE(lifted.subset_of(pred));
  EXPECT_TRUE(f.lift_is_valid(lifted, inputs, succ)) << lifted.to_string();
  if (GetParam() == Config::LiftMode::kNone) {
    EXPECT_EQ(lifted, pred);
  }
}

TEST_P(LifterModes, BadLiftDropsIrrelevantLatches) {
  LiftFixture f(GetParam());
  // State (count=3, flag=1) raises bad regardless of the input.
  const Cube state = f.full_state(3, true);
  const std::vector<Lit> inputs{Lit::make(f.ts->input_var(0), true)};
  const Cube lifted = f.lifter->lift_bad(state, inputs, {});
  EXPECT_TRUE(lifted.subset_of(state));
  if (GetParam() != Config::LiftMode::kNone) {
    // All 9 latches matter here (count==3 needs all count bits + flag)...
    // so instead check on a state where bad is *not* raised via count:
    // nothing shrinks below what keeps bad provable.
    EXPECT_EQ(lifted.size(), 9u);
  }
}

TEST_P(LifterModes, SuccessorTargetWithFewLiterals) {
  LiftFixture f(GetParam());
  // Successor target: {flag=1} only.  From (count=7, flag=1), any input
  // keeps flag=1 — the count bits are irrelevant and should be dropped by
  // both lifting strategies.
  const Cube pred = f.full_state(7, true);
  const Cube succ = Cube::from_lits({Lit::make(f.ts->state_var(8))});
  const std::vector<Lit> inputs{Lit::make(f.ts->input_var(0), true)};
  const Cube lifted = f.lifter->lift_predecessor(pred, inputs, succ, {});
  EXPECT_TRUE(f.lift_is_valid(lifted, inputs, succ));
  if (GetParam() != Config::LiftMode::kNone) {
    EXPECT_LE(lifted.size(), 1u) << lifted.to_string();
    EXPECT_TRUE(lifted.contains(Lit::make(f.ts->state_var(8))));
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, LifterModes,
                         ::testing::Values(Config::LiftMode::kSat,
                                           Config::LiftMode::kTernary,
                                           Config::LiftMode::kNone),
                         [](const auto& info) {
                           switch (info.param) {
                             case Config::LiftMode::kSat: return "sat";
                             case Config::LiftMode::kTernary:
                               return "ternary";
                             default: return "none";
                           }
                         });

// ----- ternary backend parity ------------------------------------------------

class LifterSimBackends : public ::testing::TestWithParam<Config::LiftSim> {};

TEST_P(LifterSimBackends, PredecessorLiftsAreSoundAndNeverGrow) {
  LiftFixture f(Config::LiftMode::kTernary, GetParam());
  for (std::uint64_t count = 0; count < 8; ++count) {
    for (const bool flag : {false, true}) {
      const Cube pred = f.full_state(count, flag);
      const Cube succ = f.full_state(count + 1, flag);
      const std::vector<Lit> inputs{Lit::make(f.ts->input_var(0), !flag)};
      const Cube lifted = f.lifter->lift_predecessor(pred, inputs, succ, {});
      EXPECT_TRUE(lifted.subset_of(pred)) << count << "/" << flag;
      EXPECT_LE(lifted.size(), pred.size());
      EXPECT_TRUE(f.lift_is_valid(lifted, inputs, succ))
          << "count=" << count << " flag=" << flag << " "
          << lifted.to_string();
    }
  }
}

TEST_P(LifterSimBackends, BadLiftsAreIndependentlyValidated) {
  LiftFixture f(Config::LiftMode::kTernary, GetParam());
  // (count=3, flag=1) raises bad; the lift may only shrink the cube and
  // every completion of the result must still raise bad.
  const Cube state = f.full_state(3, true);
  const std::vector<Lit> inputs{Lit::make(f.ts->input_var(0), true)};
  const Cube lifted = f.lifter->lift_bad(state, inputs, {});
  EXPECT_TRUE(lifted.subset_of(state));
  EXPECT_LE(lifted.size(), state.size());
  EXPECT_TRUE(f.bad_lift_is_valid(lifted, inputs)) << lifted.to_string();
}

INSTANTIATE_TEST_SUITE_P(Sims, LifterSimBackends,
                         ::testing::Values(Config::LiftSim::kPacked,
                                           Config::LiftSim::kByte),
                         [](const auto& info) {
                           return info.param == Config::LiftSim::kPacked
                                      ? "packed"
                                      : "byte";
                         });

TEST(Lifter, PackedAndByteProduceIdenticalCubes) {
  // The packed backend is a performance rewrite, not a semantic variant:
  // its triage + sequential-confirmation schedule is proven to track the
  // byte-wise loop exactly, so the lifted cubes must be *equal*, not
  // merely both sound.
  LiftFixture packed(Config::LiftMode::kTernary, Config::LiftSim::kPacked);
  LiftFixture byte(Config::LiftMode::kTernary, Config::LiftSim::kByte);
  for (std::uint64_t count = 0; count < 16; ++count) {
    for (const bool flag : {false, true}) {
      const Cube pred = packed.full_state(count, flag);
      const Cube succ_full = packed.full_state((count + 1) & 0xFF, flag);
      const Cube succ_flag =
          Cube::from_lits({Lit::make(packed.ts->state_var(8), !flag)});
      const std::vector<Lit> inputs{
          Lit::make(packed.ts->input_var(0), !flag)};
      for (const Cube& succ : {succ_full, succ_flag}) {
        const Cube a = packed.lifter->lift_predecessor(pred, inputs, succ, {});
        const Cube b = byte.lifter->lift_predecessor(pred, inputs, succ, {});
        EXPECT_EQ(a, b) << "count=" << count << " flag=" << flag << " pred "
                        << a.to_string() << " vs " << b.to_string();
      }
      const Cube a = packed.lifter->lift_bad(pred, inputs, {});
      const Cube b = byte.lifter->lift_bad(pred, inputs, {});
      EXPECT_EQ(a, b) << "count=" << count << " flag=" << flag << " bad "
                      << a.to_string() << " vs " << b.to_string();
    }
  }
}

TEST(Lifter, TernaryRespectsConstraints) {
  // Constrained shift register: the input is forced low; lifting a
  // predecessor must keep enough literals that the constraint evaluation
  // stays definite-true — on both ternary backends.
  const auto cc = circuits::shift_register(4, true);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  for (const auto sim : {Config::LiftSim::kPacked, Config::LiftSim::kByte}) {
    Config cfg;
    cfg.lift_mode = Config::LiftMode::kTernary;
    cfg.lift_sim = sim;
    Ic3Stats stats;
    Lifter lifter(ts, cfg, stats);
    // Predecessor: all stages 0; successor: all stages 0; input 0.
    std::vector<Lit> state_lits;
    for (std::size_t i = 0; i < ts.num_latches(); ++i) {
      state_lits.push_back(Lit::make(ts.state_var(i), true));
    }
    const Cube pred = Cube::from_lits(state_lits);
    const Cube succ = pred;
    const std::vector<Lit> inputs{Lit::make(ts.input_var(0), true)};
    const Cube lifted = lifter.lift_predecessor(pred, inputs, succ, {});
    EXPECT_TRUE(lifted.subset_of(pred));
    EXPECT_FALSE(lifted.empty());
  }
}

}  // namespace
}  // namespace pilot::ic3
