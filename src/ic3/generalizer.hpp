/// \file generalizer.hpp
/// Inductive generalization (MIC): expanding a blocked cube by dropping
/// literals while preserving relative inductiveness.
///
/// Three strategies (Config::gen_mode):
///  * kDown  — the paper's Algorithm 1: drop a literal, one SAT query, keep
///             the (core-shrunk) candidate on success.
///  * kCtg   — ctgDown [Hassan, Bradley, Somenzi — FMCAD'13]: on failure,
///             try to block the counterexample-to-generalization at a high
///             frame, and otherwise join the candidate with it.
///  * kCav23 — kDown with the literal ordering of [Xia et al., CAV'23]:
///             literals absent from all parent lemmas are dropped first.
///
/// This is exactly the component whose cost the paper's prediction
/// mechanism avoids: each literal dropped costs one relative-induction SAT
/// query, so |cube| queries per generalization in the worst case.
#pragma once

#include <functional>

#include "ic3/config.hpp"
#include "ic3/cube.hpp"
#include "ic3/frames.hpp"
#include "ic3/solver_manager.hpp"
#include "ic3/stats.hpp"
#include "ts/transition_system.hpp"
#include "util/timer.hpp"

namespace pilot::ic3 {

class Generalizer {
 public:
  /// Callback installing a lemma into frames AND solver (owned by the
  /// engine; ctgDown uses it to block CTGs).
  using AddLemmaFn = std::function<void(const Cube&, std::size_t)>;

  Generalizer(const ts::TransitionSystem& ts, SolverManager& solvers,
              Frames& frames, const Config& cfg, Ic3Stats& stats);

  /// Generalizes `cube` (already relative-inductive at `level`-1 and
  /// disjoint from I) into a smaller cube still blocked at `level`.
  Cube generalize(const Cube& cube, std::size_t level,
                  const Deadline& deadline, const AddLemmaFn& add_lemma);

 private:
  Cube mic(Cube cube, std::size_t level, int depth, const Deadline& deadline,
           const AddLemmaFn& add_lemma);
  bool ctg_down(Cube& cand, std::size_t level, int depth,
                const Deadline& deadline, const AddLemmaFn& add_lemma);
  [[nodiscard]] std::vector<Lit> order_literals(const Cube& cube,
                                                std::size_t level) const;

  const ts::TransitionSystem& ts_;
  SolverManager& solvers_;
  Frames& frames_;
  const Config& cfg_;
  Ic3Stats& stats_;
};

}  // namespace pilot::ic3
