#include "circuits/suite.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace pilot::circuits {
namespace {

/// Deterministic digit sequence for the combination locks.
std::vector<std::uint64_t> lock_digits(std::size_t count, std::size_t width,
                                       std::uint64_t seed) {
  pilot::Rng rng(seed);
  std::vector<std::uint64_t> digits;
  digits.reserve(count);
  const std::uint64_t mask =
      width >= 64 ? ~0ULL : ((1ULL << width) - 1ULL);
  for (std::size_t i = 0; i < count; ++i) {
    digits.push_back(rng.next_u64() & mask);
  }
  return digits;
}

void add_counter_family(std::vector<CircuitCase>& out, SuiteSize size) {
  const std::vector<std::size_t> widths =
      size == SuiteSize::kTiny    ? std::vector<std::size_t>{4, 5}
      : size == SuiteSize::kQuick ? std::vector<std::size_t>{4, 6, 8}
                                  : std::vector<std::size_t>{4, 6, 8, 10};
  for (const std::size_t w : widths) {
    const std::uint64_t max = 1ULL << w;
    out.push_back(counter_unsafe(w, max / 2 + 1));
    out.push_back(counter_unsafe(w, max - 1));
    out.push_back(counter_wrap_safe(w, max / 2, max / 2 + 1));
    out.push_back(counter_wrap_safe(w, max / 4 + 1, max - 1));
    out.push_back(counter_enable_unsafe(w, max / 2 + 1));
  }
  // Deep-diameter instances: IC3's frame count tracks the wrap limit, so
  // these sit near (or beyond) the per-case budget — the differentiating
  // tail of the suite, like the unsolved half of HWMCC.
  if (size == SuiteSize::kQuick) {
    out.push_back(counter_wrap_safe(9, 150, 400));
    out.push_back(counter_wrap_safe(10, 320, 900));
    out.push_back(counter_wrap_safe(11, 700, 2000));
    out.push_back(counter_unsafe(10, 520));
    out.push_back(counter_unsafe(11, 1200));
  } else if (size == SuiteSize::kFull) {
    out.push_back(counter_wrap_safe(9, 150, 400));
    out.push_back(counter_wrap_safe(10, 320, 900));
    out.push_back(counter_wrap_safe(11, 700, 2000));
    out.push_back(counter_wrap_safe(12, 1500, 4000));
    out.push_back(counter_unsafe(10, 520));
    out.push_back(counter_unsafe(11, 1200));
    out.push_back(counter_unsafe(12, 3000));
  }
}

void add_lock_family(std::vector<CircuitCase>& out, SuiteSize size) {
  struct P {
    std::size_t width, stages;
  };
  const std::vector<P> params =
      size == SuiteSize::kTiny    ? std::vector<P>{{2, 3}, {3, 4}}
      : size == SuiteSize::kQuick ? std::vector<P>{{2, 4}, {3, 6}, {4, 8}}
                                  : std::vector<P>{{2, 4},  {3, 6},  {4, 8},
                                                   {4, 12}, {5, 10}, {6, 8}};
  std::uint64_t seed = 11;
  for (const auto& [w, s] : params) {
    const auto digits = lock_digits(s, w, seed++);
    out.push_back(combination_lock_unsafe(w, digits));
    out.push_back(combination_lock_safe(w, digits, s / 2));
  }
}

void add_shiftreg_family(std::vector<CircuitCase>& out, SuiteSize size) {
  const std::vector<std::size_t> widths =
      size == SuiteSize::kTiny    ? std::vector<std::size_t>{4, 8}
      : size == SuiteSize::kQuick ? std::vector<std::size_t>{8, 16, 32}
                                  : std::vector<std::size_t>{8, 16, 32, 64,
                                                             96};
  for (const std::size_t w : widths) {
    out.push_back(shift_register(w, /*constrain_input_zero=*/false));
    out.push_back(shift_register(w, /*constrain_input_zero=*/true));
  }
}

void add_ring_family(std::vector<CircuitCase>& out, SuiteSize size) {
  const std::vector<std::size_t> sizes =
      size == SuiteSize::kTiny    ? std::vector<std::size_t>{3, 5}
      : size == SuiteSize::kQuick ? std::vector<std::size_t>{4, 8, 12}
                                  : std::vector<std::size_t>{4, 8, 12, 16,
                                                             24};
  for (const std::size_t n : sizes) {
    out.push_back(token_ring_safe(n));
    out.push_back(token_ring_unsafe(n));
    out.push_back(arbiter_safe(n));
    out.push_back(arbiter_unsafe(n));
  }
}

void add_gray_family(std::vector<CircuitCase>& out, SuiteSize size) {
  const std::vector<std::size_t> widths =
      size == SuiteSize::kTiny    ? std::vector<std::size_t>{3, 4}
      : size == SuiteSize::kQuick ? std::vector<std::size_t>{4, 5, 6, 7, 8}
                                  : std::vector<std::size_t>{4, 5, 6, 7, 8,
                                                             9, 10};
  for (const std::size_t w : widths) {
    out.push_back(gray_counter_safe(w));
    out.push_back(gray_counter_unsafe(w));
  }
}

void add_lfsr_family(std::vector<CircuitCase>& out, SuiteSize size) {
  struct P {
    std::size_t width;
    std::uint64_t taps;
    int steps;
  };
  const std::vector<P> params =
      size == SuiteSize::kTiny
          ? std::vector<P>{{4, 0b1001, 5}, {5, 0b10010, 8}}
      : size == SuiteSize::kQuick
          ? std::vector<P>{{4, 0b1001, 6},
                           {6, 0b100001, 12},
                           {8, 0b10001110, 20},
                           {10, 0b1000000100, 40},
                           {12, 0b100000101001, 60}}
          : std::vector<P>{{4, 0b1001, 6},
                           {6, 0b100001, 12},
                           {8, 0b10001110, 20},
                           {10, 0b1000000100, 40},
                           {12, 0b100000101001, 60},
                           {12, 0b100000101001, 120},
                           {14, 0b10000000101011, 200}};
  // Several step-depths may share one (width, taps) pair; the safe variant
  // is independent of the depth, so emit it only once per pair.
  std::vector<std::pair<std::size_t, std::uint64_t>> safe_emitted;
  for (const auto& [w, taps, steps] : params) {
    const std::pair<std::size_t, std::uint64_t> key{w, taps};
    if (std::find(safe_emitted.begin(), safe_emitted.end(), key) ==
        safe_emitted.end()) {
      safe_emitted.push_back(key);
      out.push_back(lfsr_safe(w, taps));
    }
    out.push_back(lfsr_unsafe(w, taps, steps));
  }
}

void add_parity_family(std::vector<CircuitCase>& out, SuiteSize size) {
  const std::vector<std::size_t> widths =
      size == SuiteSize::kTiny    ? std::vector<std::size_t>{4}
      : size == SuiteSize::kQuick ? std::vector<std::size_t>{6, 8}
                                  : std::vector<std::size_t>{6, 8, 10, 12};
  for (const std::size_t w : widths) out.push_back(ring_parity_safe(w));
}

void add_fifo_family(std::vector<CircuitCase>& out, SuiteSize size) {
  struct P {
    std::size_t width;
    std::uint64_t cap;
  };
  const std::vector<P> params =
      size == SuiteSize::kTiny    ? std::vector<P>{{3, 5}, {4, 9}}
      : size == SuiteSize::kQuick ? std::vector<P>{{4, 11}, {5, 21}, {6, 45}}
                                  : std::vector<P>{{4, 11},
                                                   {5, 21},
                                                   {6, 45},
                                                   {7, 99},
                                                   {8, 200}};
  for (const auto& [w, cap] : params) {
    out.push_back(fifo_safe(w, cap));
    out.push_back(fifo_unsafe(w, cap));
  }
}

void add_saturate_family(std::vector<CircuitCase>& out, SuiteSize size) {
  struct P {
    std::size_t width;
    std::uint64_t cap;
  };
  const std::vector<P> params =
      size == SuiteSize::kTiny    ? std::vector<P>{{4, 11}}
      : size == SuiteSize::kQuick ? std::vector<P>{{4, 11}, {6, 50}}
                                  : std::vector<P>{{4, 11},
                                                   {6, 50},
                                                   {8, 200},
                                                   {10, 900}};
  for (const auto& [w, cap] : params) {
    out.push_back(saturating_accumulator_safe(w, cap));
    out.push_back(saturating_accumulator_unsafe(w, cap));
  }
}

void add_twin_family(std::vector<CircuitCase>& out, SuiteSize size) {
  const std::vector<std::size_t> widths =
      size == SuiteSize::kTiny    ? std::vector<std::size_t>{4, 6}
      : size == SuiteSize::kQuick ? std::vector<std::size_t>{6, 14, 24}
                                  : std::vector<std::size_t>{6, 10, 14, 20,
                                                             28, 40, 56};
  for (const std::size_t w : widths) {
    out.push_back(twin_counters_safe(w));
    out.push_back(twin_counters_unsafe(w));
  }
}

void add_mutex_family(std::vector<CircuitCase>& out, SuiteSize) {
  out.push_back(mutex_safe());
  out.push_back(mutex_unsafe());
}

}  // namespace

std::vector<CircuitCase> make_suite(SuiteSize size) {
  std::vector<CircuitCase> out;
  add_counter_family(out, size);
  add_lock_family(out, size);
  add_shiftreg_family(out, size);
  add_ring_family(out, size);
  add_gray_family(out, size);
  add_lfsr_family(out, size);
  add_parity_family(out, size);
  add_fifo_family(out, size);
  add_saturate_family(out, size);
  add_twin_family(out, size);
  add_mutex_family(out, size);
  return out;
}

SuiteSize suite_size_from_string(const std::string& text) {
  if (text == "tiny") return SuiteSize::kTiny;
  if (text == "quick") return SuiteSize::kQuick;
  if (text == "full") return SuiteSize::kFull;
  throw std::invalid_argument("unknown suite size '" + text + "'");
}

}  // namespace pilot::circuits
