#include "ts/transition_system.hpp"

#include <stdexcept>

namespace pilot::ts {

TransitionSystem TransitionSystem::from_aig(const Aig& source,
                                            std::size_t property_index,
                                            bool use_coi) {
  // Select the property signal: AIGER 1.9 bad state if present, otherwise
  // fall back to an output (pre-1.9 model checking convention).
  AigLit bad_sig;
  if (property_index < source.bads().size()) {
    bad_sig = source.bads()[property_index];
  } else if (source.bads().empty() &&
             property_index < source.outputs().size()) {
    bad_sig = source.outputs()[property_index];
  } else {
    throw std::out_of_range("transition system: no such property");
  }

  // Work on a copy so we can synthesize the bad cone inside the AIG.
  Aig working = source;
  std::vector<AigLit> bad_terms{bad_sig};
  for (const AigLit c : working.constraints()) bad_terms.push_back(c);
  const AigLit bad_cone = working.make_and_n(bad_terms);

  TransitionSystem ts;
  if (use_coi) {
    std::vector<AigLit> roots{bad_cone};
    for (const AigLit c : working.constraints()) roots.push_back(c);
    aig::LitMap map;
    ts.aig_ = aig::extract_coi(working, roots, &map);
    ts.bad_ = ts.cur(aig::map_lit(bad_cone, map));
    for (const AigLit c : working.constraints()) {
      ts.aig_.add_constraint(aig::map_lit(c, map));
    }
  } else {
    ts.aig_ = working;
    ts.bad_ = ts.cur(bad_cone);
  }

  ts.latch_index_.assign(ts.aig_.num_nodes(), -1);
  for (std::size_t i = 0; i < ts.aig_.latches().size(); ++i) {
    const std::uint32_t node = ts.aig_.latches()[i];
    ts.latch_index_[node] = static_cast<int>(i);
    const LBool init = ts.aig_.init(node);
    if (!init.is_undef()) {
      ts.init_literals_.push_back(
          Lit::make(static_cast<Var>(node), init.is_false()));
    }
  }
  return ts;
}

void TransitionSystem::install_combinational(sat::Solver& solver) const {
  if (solver.num_vars() != 0) {
    throw std::logic_error("install: solver must be fresh");
  }
  for (int i = 0; i < num_encoding_vars(); ++i) solver.new_var();
  // Node 0 is constant false.
  solver.add_unit(Lit::make(0, /*sign=*/true));
  // Tseitin clauses for every AND gate: g ↔ a ∧ b.
  for (const std::uint32_t n : aig_.ands()) {
    const Lit g = Lit::make(static_cast<Var>(n));
    const Lit a = cur(aig_.fanin0(n));
    const Lit b = cur(aig_.fanin1(n));
    solver.add_binary(~g, a);
    solver.add_binary(~g, b);
    solver.add_ternary(g, ~a, ~b);
  }
  // Invariant constraints hold at the current step.
  for (const AigLit c : aig_.constraints()) {
    solver.add_unit(cur(c));
  }
}

void TransitionSystem::install(sat::Solver& solver) const {
  install_combinational(solver);
  // X' definitions: next_i ↔ next-state function of latch i.
  for (std::size_t i = 0; i < aig_.latches().size(); ++i) {
    const Lit xp = Lit::make(next_state_var(i));
    const Lit fn = cur(aig_.next(aig_.latches()[i]));
    solver.add_binary(~xp, fn);
    solver.add_binary(xp, ~fn);
  }
}

void TransitionSystem::install_shifted(sat::Solver& solver, Var offset) const {
  if (solver.num_vars() != offset) {
    throw std::logic_error(
        "install_shifted: offset must equal the solver's variable count");
  }
  const auto shift = [offset](Lit l) {
    return Lit::make(l.var() + offset, l.sign());
  };
  for (int i = 0; i < num_encoding_vars(); ++i) solver.new_var();
  solver.add_unit(shift(Lit::make(0, /*sign=*/true)));
  for (const std::uint32_t n : aig_.ands()) {
    const Lit g = shift(Lit::make(static_cast<Var>(n)));
    const Lit a = shift(cur(aig_.fanin0(n)));
    const Lit b = shift(cur(aig_.fanin1(n)));
    solver.add_binary(~g, a);
    solver.add_binary(~g, b);
    solver.add_ternary(g, ~a, ~b);
  }
  for (const AigLit c : aig_.constraints()) {
    solver.add_unit(shift(cur(c)));
  }
  for (std::size_t i = 0; i < aig_.latches().size(); ++i) {
    const Lit xp = shift(Lit::make(next_state_var(i)));
    const Lit fn = shift(cur(aig_.next(aig_.latches()[i])));
    solver.add_binary(~xp, fn);
    solver.add_binary(xp, ~fn);
  }
}

LBool TransitionSystem::init_value(Var v) const {
  const int idx = latch_index_of(v);
  if (idx < 0) return sat::l_Undef;
  return aig_.init(aig_.latches()[static_cast<std::size_t>(idx)]);
}

bool TransitionSystem::cube_intersects_init(std::span<const Lit> cube) const {
  for (const Lit l : cube) {
    const LBool init = init_value(l.var());
    if (init.is_undef()) continue;
    // Literal l is satisfied in I iff the reset value matches its sign.
    const bool satisfied = init.is_true() != l.sign();
    if (!satisfied) return false;
  }
  return true;
}

}  // namespace pilot::ts
