/// Unroller tests: frame-by-frame agreement with the simulator, init
/// assertion behaviour, and incremental extension.
#include <gtest/gtest.h>

#include "aig/simulation.hpp"
#include "circuits/families.hpp"
#include "sat/solver.hpp"
#include "ts/unroller.hpp"
#include "util/rng.hpp"

namespace pilot::ts {
namespace {

TEST(Unroller, BadObservableExactlyAtCexDepth) {
  // counter_unsafe(w=5, target=9): bad at frame 9 and not before.
  const circuits::CircuitCase cc = circuits::counter_unsafe(5, 9);
  const TransitionSystem ts = TransitionSystem::from_aig(cc.aig);
  sat::Solver solver;
  Unroller unroller(ts, solver, /*assert_init=*/true);
  for (int k = 0; k <= 9; ++k) {
    unroller.extend_to(k);
    const std::vector<sat::Lit> assumptions{unroller.bad(k)};
    const sat::SolveResult res = solver.solve(assumptions);
    if (k < 9) {
      EXPECT_EQ(res, sat::SolveResult::kUnsat) << "bad too early at " << k;
    } else {
      EXPECT_EQ(res, sat::SolveResult::kSat);
    }
  }
}

TEST(Unroller, TraceFromModelReplaysOnSimulator) {
  const circuits::CircuitCase cc = circuits::shift_register(4, false);
  const TransitionSystem ts = TransitionSystem::from_aig(cc.aig);
  sat::Solver solver;
  Unroller unroller(ts, solver, /*assert_init=*/true);
  const int k = 4;  // depth of the shift-register counterexample
  unroller.extend_to(k);
  const std::vector<sat::Lit> assumptions{unroller.bad(k)};
  ASSERT_EQ(solver.solve(assumptions), sat::SolveResult::kSat);

  // Replay the model's inputs through the simulator; bad must fire at k.
  aig::BitSimulator sim(ts.aig());
  sim.reset();
  for (int f = 0; f <= k; ++f) {
    std::vector<std::uint64_t> inputs(ts.num_inputs(), 0);
    for (std::size_t i = 0; i < ts.num_inputs(); ++i) {
      if (solver.model_value(sat::Lit::make(unroller.input_var(i, f))) ==
          sat::l_True) {
        inputs[i] = ~0ULL;
      }
    }
    sim.compute(inputs);
    if (f == k) {
      const sat::Lit bad = ts.bad();
      EXPECT_EQ(sim.value(aig::AigLit::make(
                    static_cast<std::uint32_t>(bad.var()), bad.sign())) &
                    1ULL,
                1ULL);
    }
    sim.latch_step();
  }
}

TEST(Unroller, WithoutInitAnyStateIsReachableAtFrameZero) {
  const circuits::CircuitCase cc = circuits::token_ring_safe(4);
  const TransitionSystem ts = TransitionSystem::from_aig(cc.aig);
  sat::Solver solver;
  Unroller unroller(ts, solver, /*assert_init=*/false);
  // Two tokens at frame 0: excluded by init, allowed without it.
  const std::vector<sat::Lit> two_tokens{
      sat::Lit::make(unroller.state_var(0, 0)),
      sat::Lit::make(unroller.state_var(1, 0)), unroller.bad(0)};
  EXPECT_EQ(solver.solve(two_tokens), sat::SolveResult::kSat);
}

TEST(Unroller, WithInitFrameZeroIsTheInitialCube) {
  const circuits::CircuitCase cc = circuits::token_ring_safe(4);
  const TransitionSystem ts = TransitionSystem::from_aig(cc.aig);
  sat::Solver solver;
  Unroller unroller(ts, solver, /*assert_init=*/true);
  // Latch 1 is 0 initially; asserting it at frame 0 must conflict.
  const std::vector<sat::Lit> assumptions{
      sat::Lit::make(unroller.state_var(1, 0))};
  EXPECT_EQ(solver.solve(assumptions), sat::SolveResult::kUnsat);
}

TEST(Unroller, ExtendIsIdempotentAndMonotone) {
  const circuits::CircuitCase cc = circuits::counter_unsafe(4, 3);
  const TransitionSystem ts = TransitionSystem::from_aig(cc.aig);
  sat::Solver solver;
  Unroller unroller(ts, solver, true);
  EXPECT_EQ(unroller.max_frame(), 0);
  unroller.extend_to(3);
  EXPECT_EQ(unroller.max_frame(), 3);
  const int vars_before = solver.num_vars();
  unroller.extend_to(2);  // no-op
  unroller.extend_to(3);  // no-op
  EXPECT_EQ(solver.num_vars(), vars_before);
  unroller.extend_to(4);
  EXPECT_GT(solver.num_vars(), vars_before);
}

TEST(Unroller, ConstraintsHoldAtEveryFrame) {
  const circuits::CircuitCase cc = circuits::shift_register(5, true);
  const TransitionSystem ts = TransitionSystem::from_aig(cc.aig);
  sat::Solver solver;
  Unroller unroller(ts, solver, true);
  unroller.extend_to(3);
  // The constrained input is forced low at every unrolled frame.
  for (int f = 0; f <= 3; ++f) {
    const std::vector<sat::Lit> assumptions{
        sat::Lit::make(unroller.input_var(0, f))};
    EXPECT_EQ(solver.solve(assumptions), sat::SolveResult::kUnsat)
        << "frame " << f;
  }
}

}  // namespace
}  // namespace pilot::ts
