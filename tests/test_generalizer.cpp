/// Generalizer tests: every returned cube must remain relative-inductive
/// and initiation-safe, must subsume the input cube, and EVERY registered
/// strategy — the fixed drop loops, the DAC'24 predictor, the SuYC25
/// dynamic meta-strategy, and any plug-in — must preserve these invariants
/// while shrinking cubes.  The suite parametrizes over the live registry,
/// so a newly registered strategy is covered without editing this file.
#include <gtest/gtest.h>

#include "circuits/families.hpp"
#include "ic3/gen_strategy.hpp"
#include "ic3/generalizer.hpp"
#include "ic3/solver_manager.hpp"
#include "ts/transition_system.hpp"

namespace pilot::ic3 {
namespace {

struct GenFixture {
  explicit GenFixture(const std::string& gen_spec,
                      circuits::CircuitCase circuit_case)
      : cc(std::move(circuit_case)),
        ts(ts::TransitionSystem::from_aig(cc.aig)) {
    cfg.gen_spec = gen_spec;
    solvers = std::make_unique<SolverManager>(ts, cfg, stats);
    generalizer =
        std::make_unique<Generalizer>(ts, *solvers, frames, cfg, stats);
    solvers->ensure_level(2);
    frames.ensure_level(2);
  }

  void add_lemma(const Cube& c, std::size_t level) {
    if (frames.add_lemma(c, level)) solvers->add_lemma_clause(c, level);
  }

  circuits::CircuitCase cc;
  ts::TransitionSystem ts;
  Config cfg;
  Ic3Stats stats;
  Frames frames;
  std::unique_ptr<SolverManager> solvers;
  std::unique_ptr<Generalizer> generalizer;
};

/// Every registered strategy (down, ctg, cav23, predict, dynamic, and any
/// test-registered plug-ins that reach this binary).
class GeneralizerStrategies
    : public ::testing::TestWithParam<std::string> {};

TEST_P(GeneralizerStrategies, ResultSubsumesInputAndStaysInductive) {
  GenFixture f(GetParam(), circuits::token_ring_safe(6));
  // Blockable cube: tokens at positions 1 and 3 plus noise bits at 0/2
  // (all zero).  Any generalization must stay inductive at level 1.
  std::vector<Lit> lits{Lit::make(f.ts.state_var(1)),
                        Lit::make(f.ts.state_var(3)),
                        Lit::make(f.ts.state_var(0), true),
                        Lit::make(f.ts.state_var(2), true)};
  const Cube cube = Cube::from_lits(std::move(lits));
  Cube core;
  ASSERT_TRUE(f.solvers->relative_inductive(cube, 0, false, &core,
                                            Deadline{}));

  const Cube g = f.generalizer->generalize(
      cube, core, 1, Deadline{},
      [&](const Cube& c, std::size_t lv) { f.add_lemma(c, lv); });

  EXPECT_TRUE(g.subset_of(cube)) << g.to_string();
  EXPECT_FALSE(g.empty());
  EXPECT_FALSE(f.ts.cube_intersects_init(g.lits()));
  // The generalized cube must still be relative inductive.
  EXPECT_TRUE(
      f.solvers->relative_inductive(g, 0, false, nullptr, Deadline{}));
  // The driver attributed the attempt to whichever strategy ran it.
  std::uint64_t attempts = 0;
  for (const GenStrategyStats& s : f.stats.gen_strategies) {
    attempts += s.attempts;
  }
  EXPECT_EQ(attempts, f.stats.num_generalizations);
  EXPECT_EQ(f.stats.num_generalizations, 1u);
}

TEST_P(GeneralizerStrategies, DropsNoiseLiteralsFromRingCube) {
  GenFixture f(GetParam(), circuits::token_ring_safe(8));
  // Two tokens + six noise literals: a good generalizer keeps ~2 literals
  // (the pairwise exclusion lemma); we only require real progress.
  std::vector<Lit> lits;
  lits.push_back(Lit::make(f.ts.state_var(2)));
  lits.push_back(Lit::make(f.ts.state_var(5)));
  for (const std::size_t i : {0u, 1u, 3u, 4u, 6u, 7u}) {
    lits.push_back(Lit::make(f.ts.state_var(i), true));
  }
  const Cube cube = Cube::from_lits(std::move(lits));
  Cube core;
  ASSERT_TRUE(
      f.solvers->relative_inductive(cube, 0, false, &core, Deadline{}));
  const Cube g = f.generalizer->generalize(
      cube, core, 1, Deadline{},
      [&](const Cube& c, std::size_t lv) { f.add_lemma(c, lv); });
  EXPECT_LT(g.size(), cube.size());
}

INSTANTIATE_TEST_SUITE_P(
    Registry, GeneralizerStrategies,
    ::testing::Values("down", "ctg", "cav23", "predict", "dynamic",
                      "dynamic:4,0.5"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == ':' || c == ',' || c == '.') c = '_';
      }
      return name;
    });

/// The registry is the source of truth: the fixed list above must cover
/// every built-in (a new built-in strategy must be added to the values so
/// it gets the invariant coverage).
TEST(GeneralizerStrategies_Registry, FixedListCoversBuiltins) {
  for (const char* builtin : {"down", "ctg", "cav23", "predict", "dynamic"}) {
    EXPECT_TRUE(gen_strategy_registered(builtin)) << builtin;
  }
}

TEST(Generalizer, SingletonCubeIsNotDroppedToEmpty) {
  GenFixture f("down", circuits::counter_wrap_safe(3, 4, 6));
  // {bit2=1} is already minimal for "count ≥ 4 unreachable".
  const Cube cube = Cube::from_lits({Lit::make(f.ts.state_var(2))});
  Cube core;
  ASSERT_TRUE(
      f.solvers->relative_inductive(cube, 0, false, &core, Deadline{}));
  const Cube g = f.generalizer->generalize(
      cube, core, 1, Deadline{}, [&](const Cube&, std::size_t) {});
  EXPECT_EQ(g.size(), 1u);
}

TEST(Generalizer, Cav23OrderingPrefersParentLiterals) {
  GenFixture f("cav23", circuits::token_ring_safe(6));
  // Install a parent lemma {s1, s3} at level 1 = delta(1), plus the
  // rotation predecessor {s0, s2} so the superset cube below is actually
  // inductive relative to R_1.
  const Cube parent = Cube::from_lits(
      {Lit::make(f.ts.state_var(1)), Lit::make(f.ts.state_var(3))});
  f.add_lemma(parent, 1);
  f.add_lemma(Cube::from_lits({Lit::make(f.ts.state_var(0)),
                               Lit::make(f.ts.state_var(2))}),
              1);
  // Generalize a superset cube at level 2: with the CAV'23 ordering the
  // non-parent literal (s5=0) is attempted first, and the surviving cube
  // keeps the parent's shape.
  std::vector<Lit> lits{Lit::make(f.ts.state_var(1)),
                        Lit::make(f.ts.state_var(3)),
                        Lit::make(f.ts.state_var(5), true)};
  const Cube cube = Cube::from_lits(std::move(lits));
  Cube core;
  ASSERT_TRUE(
      f.solvers->relative_inductive(cube, 1, false, &core, Deadline{}));
  const Cube g = f.generalizer->generalize(
      cube, core, 2, Deadline{},
      [&](const Cube& c, std::size_t lv) { f.add_lemma(c, lv); });
  EXPECT_TRUE(g.subset_of(cube));
  EXPECT_FALSE(f.ts.cube_intersects_init(g.lits()));
}

TEST(Generalizer, CtgModeBlocksCtgsAsSideEffect) {
  // On the wrap counter the CTG path exercises recursive blocking; we
  // check it terminates, produces a valid lemma, and may add side lemmas.
  GenFixture f("ctg", circuits::counter_wrap_safe(4, 8, 14));
  f.solvers->ensure_level(3);
  f.frames.ensure_level(3);
  const Cube cube = Cube::from_lits({Lit::make(f.ts.state_var(3)),
                                     Lit::make(f.ts.state_var(2)),
                                     Lit::make(f.ts.state_var(1))});
  Cube core;
  ASSERT_TRUE(
      f.solvers->relative_inductive(cube, 0, false, &core, Deadline{}));
  const Cube g = f.generalizer->generalize(
      cube, core, 1, Deadline{},
      [&](const Cube& c, std::size_t lv) { f.add_lemma(c, lv); });
  EXPECT_FALSE(g.empty());
  EXPECT_TRUE(
      f.solvers->relative_inductive(g, 0, false, nullptr, Deadline{}));
}

TEST(Generalizer, MicQueryCountIsBoundedByCubeSizeTimesPasses) {
  GenFixture f("down", circuits::token_ring_safe(6));
  std::vector<Lit> lits;
  for (std::size_t i = 0; i < 6; ++i) {
    lits.push_back(Lit::make(f.ts.state_var(i), i != 1 && i != 4));
  }
  const Cube cube = Cube::from_lits(std::move(lits));
  Cube core;
  ASSERT_TRUE(
      f.solvers->relative_inductive(cube, 0, false, &core, Deadline{}));
  const std::uint64_t before = f.stats.num_mic_queries;
  f.generalizer->generalize(cube, core, 1, Deadline{},
                            [&](const Cube&, std::size_t) {});
  // Plain down: at most one query per literal of the (core-shrunk) cube.
  EXPECT_LE(f.stats.num_mic_queries - before, core.size());
}

TEST(Generalizer, LegacyConfigKnobsStillSelectStrategies) {
  // Empty gen_spec derives the strategy from gen_mode / predict_lemmas so
  // pre-registry configurations keep their meaning.
  Config cfg;
  cfg.gen_mode = GenMode::kDown;
  EXPECT_EQ(cfg.resolved_gen_spec(), "down");
  cfg.gen_mode = GenMode::kCtg;
  EXPECT_EQ(cfg.resolved_gen_spec(), "ctg");
  cfg.gen_mode = GenMode::kCav23;
  EXPECT_EQ(cfg.resolved_gen_spec(), "cav23");
  cfg.predict_lemmas = true;
  EXPECT_EQ(cfg.resolved_gen_spec(), "predict");
  cfg.gen_spec = "dynamic";
  EXPECT_EQ(cfg.resolved_gen_spec(), "dynamic");
}

}  // namespace
}  // namespace pilot::ic3
