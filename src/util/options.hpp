/// \file options.hpp
/// A small declarative command-line flag parser.
///
/// Examples and bench harnesses register typed flags (`--budget-ms 2000`,
/// `--predict`, `--gen ctg`) and get parsing, `--help` text, and validation
/// without a third-party dependency.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pilot {

/// Declarative flag set.  Register flags bound to variables, then parse().
class OptionParser {
 public:
  explicit OptionParser(std::string program_description)
      : description_(std::move(program_description)) {}

  /// Boolean flag: `--name` sets true, `--no-name` sets false.
  void add_flag(const std::string& name, bool* target, std::string help);

  /// Integer-valued option: `--name 42`.
  void add_int(const std::string& name, std::int64_t* target, std::string help);

  /// Double-valued option: `--name 0.5`.
  void add_double(const std::string& name, double* target, std::string help);

  /// Double-valued option with an optional value: bare `--name` stores
  /// `bare_value`, `--name=0.5` stores 0.5.  The value must be attached with
  /// `=` — a following token is never consumed, so positionals stay
  /// unambiguous (`pilot --progress model.aag`).
  void add_opt_double(const std::string& name, double* target,
                      double bare_value, std::string help);

  /// String-valued option: `--name value`.
  void add_string(const std::string& name, std::string* target,
                  std::string help);

  /// Enumerated string option restricted to `choices`.
  void add_choice(const std::string& name, std::string* target,
                  std::vector<std::string> choices, std::string help);

  /// Parses argv.  Returns false (after printing a message) on error or when
  /// `--help` was requested.  Non-flag arguments are collected in
  /// positional().
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Renders the `--help` text.
  [[nodiscard]] std::string help_text() const;

 private:
  struct Spec {
    std::string help;
    std::string kind;  // "flag", "int", "double", "opt-double", "string",
                       // "choice"
    std::vector<std::string> choices;
    std::function<bool(const std::string&)> apply;  // empty for flags
    std::function<void(bool)> apply_flag;           // flags only
  };

  std::string description_;
  std::map<std::string, Spec> specs_;
  std::vector<std::string> positional_;
};

}  // namespace pilot
