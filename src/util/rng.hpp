/// \file rng.hpp
/// Deterministic pseudo-random number generation (xoshiro256**).
///
/// All randomized components (solver tie-breaking, test-case generation,
/// workload sweeps) draw from this generator so that every run of the test
/// suite and benchmark harness is reproducible from a seed.
#pragma once

#include <cstdint>

namespace pilot {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding to fill the state from a single word.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) for bound >= 1 (unbiased rejection).
  std::uint64_t below(std::uint64_t bound) {
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double unit() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return unit() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace pilot
