#include "corpus/corpus.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "corpus/manifest.hpp"

namespace pilot::corpus {

const char* to_string(Expected e) {
  switch (e) {
    case Expected::kSafe: return "safe";
    case Expected::kUnsafe: return "unsafe";
    case Expected::kUnknown: return "unknown";
  }
  return "unknown";
}

Expected expected_from_string(const std::string& text) {
  if (text == "safe" || text == "unsat") return Expected::kSafe;
  if (text == "unsafe" || text == "sat") return Expected::kUnsafe;
  if (text == "unknown" || text.empty()) return Expected::kUnknown;
  throw std::invalid_argument("corpus: unknown expected status '" + text +
                              "'");
}

Case from_circuit(circuits::CircuitCase cc) {
  Case out;
  out.name = std::move(cc.name);
  out.family = std::move(cc.family);
  out.expected = expected_from_safe(cc.expected_safe);
  out.expected_cex_length = cc.expected_cex_length;
  out.num_inputs = cc.aig.num_inputs();
  out.num_latches = cc.aig.num_latches();
  out.num_ands = cc.aig.num_ands();
  out.size_estimate = out.num_ands + out.num_latches;
  auto shared = std::make_shared<aig::Aig>(std::move(cc.aig));
  out.load = [shared]() { return *shared; };
  return out;
}

std::vector<Case> suite_cases(circuits::SuiteSize size) {
  std::vector<circuits::CircuitCase> circuits = circuits::make_suite(size);
  std::vector<Case> out;
  out.reserve(circuits.size());
  for (auto& cc : circuits) out.push_back(from_circuit(std::move(cc)));
  return out;
}

std::vector<Case> resolve_corpus(const std::string& spec) {
  constexpr const char* kSuitePrefix = "suite:";
  if (spec.rfind(kSuitePrefix, 0) == 0) {
    return suite_cases(
        circuits::suite_size_from_string(spec.substr(6)));
  }
  ScanReport report = load_corpus(spec);
  if (!report.errors.empty() && report.cases.empty()) {
    throw std::runtime_error("corpus '" + spec + "': " + report.errors[0]);
  }
  return std::move(report.cases);
}

ShardSpec parse_shard_spec(const std::string& text) {
  const std::size_t slash = text.find('/');
  ShardSpec spec;
  try {
    if (slash == std::string::npos) throw std::invalid_argument("no slash");
    spec.index = std::stoull(text.substr(0, slash));
    spec.count = std::stoull(text.substr(slash + 1));
  } catch (const std::exception&) {
    throw std::invalid_argument("shard spec '" + text +
                                "': expected \"i/n\" with 0 <= i < n");
  }
  if (spec.count == 0 || spec.index >= spec.count) {
    throw std::invalid_argument("shard spec '" + text +
                                "': expected \"i/n\" with 0 <= i < n");
  }
  return spec;
}

std::vector<Case> shard_cases(const std::vector<Case>& cases,
                              const ShardSpec& shard) {
  // Numeric FNV-1a over the shard key.  The content hash is preferred (two
  // manifests listing the same file shard it identically whatever the case
  // is named); synthetic cases fall back to their stable family names.
  const auto key_hash = [](const Case& c) {
    const std::string& key = c.content_hash.empty() ? c.name : c.content_hash;
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char ch : key) {
      h = (h ^ static_cast<unsigned char>(ch)) * 0x100000001b3ULL;
    }
    return h;
  };
  std::vector<Case> out;
  for (const Case& c : cases) {
    if (key_hash(c) % shard.count == shard.index) out.push_back(c);
  }
  return out;
}

}  // namespace pilot::corpus
