#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace pilot::json {

namespace {

const Value kNullValue{};
const std::string kEmptyString{};
const Array kEmptyArray{};
const Object kEmptyObject{};

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::runtime_error("json: " + what + " at offset " +
                           std::to_string(pos));
}

void skip_ws(const std::string& s, std::size_t* pos) {
  while (*pos < s.size()) {
    const char c = s[*pos];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++*pos;
    } else {
      return;
    }
  }
}

void append_utf8(std::string* out, unsigned cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

std::string parse_string(const std::string& s, std::size_t* pos) {
  if (s[*pos] != '"') fail(*pos, "expected string");
  ++*pos;
  std::string out;
  while (true) {
    if (*pos >= s.size()) fail(*pos, "unterminated string");
    const char c = s[*pos];
    if (c == '"') {
      ++*pos;
      return out;
    }
    if (c == '\\') {
      ++*pos;
      if (*pos >= s.size()) fail(*pos, "unterminated escape");
      const char e = s[*pos];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (*pos + 4 >= s.size()) fail(*pos, "truncated \\u escape");
          unsigned cp = 0;
          for (int i = 1; i <= 4; ++i) {
            const char h = s[*pos + static_cast<std::size_t>(i)];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail(*pos, "bad \\u escape digit");
            }
          }
          *pos += 4;
          // Surrogate pairs are passed through as two 3-byte sequences;
          // the corpus schema never emits non-BMP characters.
          append_utf8(&out, cp);
          break;
        }
        default: fail(*pos, "unknown escape");
      }
      ++*pos;
      continue;
    }
    out.push_back(c);
    ++*pos;
  }
}

Value parse_value(const std::string& s, std::size_t* pos);

Value parse_number(const std::string& s, std::size_t* pos) {
  const char* start = s.c_str() + *pos;
  char* end = nullptr;
  const double d = std::strtod(start, &end);
  if (end == start) fail(*pos, "bad number");
  *pos += static_cast<std::size_t>(end - start);
  return Value(d);
}

Value parse_value(const std::string& s, std::size_t* pos) {
  skip_ws(s, pos);
  if (*pos >= s.size()) fail(*pos, "unexpected end of input");
  const char c = s[*pos];
  if (c == '"') return Value(parse_string(s, pos));
  if (c == '{') {
    ++*pos;
    Object obj;
    skip_ws(s, pos);
    if (*pos < s.size() && s[*pos] == '}') {
      ++*pos;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws(s, pos);
      std::string key = parse_string(s, pos);
      skip_ws(s, pos);
      if (*pos >= s.size() || s[*pos] != ':') fail(*pos, "expected ':'");
      ++*pos;
      obj[std::move(key)] = parse_value(s, pos);
      skip_ws(s, pos);
      if (*pos >= s.size()) fail(*pos, "unterminated object");
      if (s[*pos] == ',') {
        ++*pos;
        continue;
      }
      if (s[*pos] == '}') {
        ++*pos;
        return Value(std::move(obj));
      }
      fail(*pos, "expected ',' or '}'");
    }
  }
  if (c == '[') {
    ++*pos;
    Array arr;
    skip_ws(s, pos);
    if (*pos < s.size() && s[*pos] == ']') {
      ++*pos;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value(s, pos));
      skip_ws(s, pos);
      if (*pos >= s.size()) fail(*pos, "unterminated array");
      if (s[*pos] == ',') {
        ++*pos;
        continue;
      }
      if (s[*pos] == ']') {
        ++*pos;
        return Value(std::move(arr));
      }
      fail(*pos, "expected ',' or ']'");
    }
  }
  if (s.compare(*pos, 4, "true") == 0) {
    *pos += 4;
    return Value(true);
  }
  if (s.compare(*pos, 5, "false") == 0) {
    *pos += 5;
    return Value(false);
  }
  if (s.compare(*pos, 4, "null") == 0) {
    *pos += 4;
    return Value();
  }
  return parse_number(s, pos);
}

void dump_value(const Value& v, std::string* out) {
  switch (v.type()) {
    case Value::Type::kNull: *out += "null"; return;
    case Value::Type::kBool: *out += v.as_bool() ? "true" : "false"; return;
    case Value::Type::kNumber: {
      const double d = v.as_double();
      if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        *out += buf;
      } else if (std::isfinite(d)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        *out += buf;
      } else {
        *out += "null";  // JSON has no inf/nan
      }
      return;
    }
    case Value::Type::kString: *out += escape(v.as_string()); return;
    case Value::Type::kArray: {
      *out += '[';
      bool first = true;
      for (const Value& e : v.as_array()) {
        if (!first) *out += ',';
        first = false;
        dump_value(e, out);
      }
      *out += ']';
      return;
    }
    case Value::Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, val] : v.as_object()) {
        if (!first) *out += ',';
        first = false;
        *out += escape(key);
        *out += ':';
        dump_value(val, out);
      }
      *out += '}';
      return;
    }
  }
}

}  // namespace

const std::string& Value::as_string() const {
  return is_string() ? std::get<std::string>(data_) : kEmptyString;
}

const Array& Value::as_array() const {
  return is_array() ? std::get<Array>(data_) : kEmptyArray;
}

const Object& Value::as_object() const {
  return is_object() ? std::get<Object>(data_) : kEmptyObject;
}

const Value& Value::at(const std::string& key) const {
  if (!is_object()) return kNullValue;
  const Object& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? kNullValue : it->second;
}

std::string Value::dump() const {
  std::string out;
  dump_value(*this, &out);
  return out;
}

Value parse(const std::string& text) {
  std::size_t pos = 0;
  Value v = parse_at(text, &pos);
  if (pos != text.size()) fail(pos, "trailing characters");
  return v;
}

Value parse_at(const std::string& text, std::size_t* pos) {
  Value v = parse_value(text, pos);
  skip_ws(text, pos);
  return v;
}

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace pilot::json
