#include "bmc/bmc.hpp"

#include "ic3/cube.hpp"
#include "sat/solver.hpp"
#include "ts/unroller.hpp"

namespace pilot::bmc {
namespace {

/// Cap on failed-literal probes per newly unrolled frame.  The solver's
/// probe watermark already restricts each call to variables introduced
/// since the last one, so the cap only guards degenerate frames.
constexpr std::size_t kProbesPerFrame = 4096;

void publish_bound(obs::ProgressSink* sink, int k,
                   const sat::SolverStats& stats) {
  if (sink == nullptr) return;
  obs::ProgressSnapshot s;
  s.frames = static_cast<std::uint64_t>(k);
  s.sat_solves = stats.solve_calls;
  s.sat_conflicts = stats.conflicts;
  sink->publish(s);
}

}  // namespace

Trace extract_unrolled_trace(const sat::Solver& solver,
                             const ts::Unroller& unroller,
                             const ts::TransitionSystem& ts, int k) {
  Trace trace;
  for (int f = 0; f <= k; ++f) {
    std::vector<sat::Lit> state;
    for (std::size_t i = 0; i < ts.num_latches(); ++i) {
      const sat::LBool v =
          solver.model_value(sat::Lit::make(unroller.state_var(i, f)));
      if (v.is_undef()) continue;
      state.push_back(sat::Lit::make(ts.state_var(i), v.is_false()));
    }
    std::vector<sat::Lit> inputs;
    for (std::size_t i = 0; i < ts.num_inputs(); ++i) {
      const sat::LBool v =
          solver.model_value(sat::Lit::make(unroller.input_var(i, f)));
      if (v.is_undef()) continue;
      inputs.push_back(sat::Lit::make(ts.input_var(i), v.is_false()));
    }
    trace.states.push_back(ic3::Cube::from_lits(std::move(state)));
    trace.inputs.push_back(std::move(inputs));
  }
  return trace;
}

BmcResult run_bmc(const ts::TransitionSystem& ts, const BmcOptions& options,
                  pilot::Deadline deadline, const pilot::CancelToken* cancel) {
  Timer timer;
  BmcResult result;
  if (cancel != nullptr) deadline = deadline.with_cancel(*cancel);
  sat::Solver solver;
  solver.set_seed(options.seed);
  ts::Unroller unroller(ts, solver, /*assert_init=*/true);

  for (int k = 0; k <= options.max_bound; ++k) {
    if (deadline.expired()) {
      result.seconds = timer.seconds();
      result.sat_stats = solver.stats();
      return result;
    }
    {
      obs::PhaseScope phase(&result.phases, obs::Phase::kUnroll);
      unroller.extend_to(k);
    }
    if (options.inprocess) {
      // Probe only the variables this frame introduced (watermarked).  The
      // binary-implication SCC sweep runs once, the first time a transition
      // step is present; later frames reuse the same encoding shape, so the
      // equivalences it would find are already root-implied by probing.
      // If probing refutes the CNF outright, solve() below reports UNSAT.
      obs::PhaseScope phase(&result.phases, obs::Phase::kSatInprocess);
      solver.probe_and_collapse(/*collapse_scc=*/k == 1, kProbesPerFrame);
    }
    const std::vector<sat::Lit> assumptions{unroller.bad(k)};
    const sat::SolveResult res = [&] {
      obs::PhaseScope phase(&result.phases, obs::Phase::kSatSolve);
      return solver.solve(assumptions, deadline);
    }();
    publish_bound(options.progress, k, solver.stats());
    if (res == sat::SolveResult::kUnknown) {
      result.seconds = timer.seconds();
      result.sat_stats = solver.stats();
      return result;  // kUnknown
    }
    if (res == sat::SolveResult::kSat) {
      result.verdict = BmcVerdict::kUnsafe;
      result.counterexample_length = k;
      result.trace = extract_unrolled_trace(solver, unroller, ts, k);
      result.seconds = timer.seconds();
      result.sat_stats = solver.stats();
      return result;
    }
  }
  result.verdict = BmcVerdict::kBoundReached;
  result.seconds = timer.seconds();
  result.sat_stats = solver.stats();
  return result;
}

}  // namespace pilot::bmc
