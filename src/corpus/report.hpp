/// \file report.hpp
/// Campaign-level phase aggregation behind `pilot-bench report`: folds a
/// ResultsDb into one row per engine — cases run, cases solved, total
/// wall-clock, and the summed per-phase profile — and renders the
/// per-engine phase tables.  Rows written by builds that predate phase
/// profiling simply contribute zeros, so any existing campaign db reports
/// cleanly (its phase tables are just empty).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/results_db.hpp"
#include "obs/phase.hpp"

namespace pilot::corpus {

/// One engine's aggregate across a campaign.
struct EnginePhaseReport {
  std::string engine;
  std::size_t cases = 0;
  std::size_t solved = 0;
  /// Sum of per-case wall-clock seconds (RunRecord::seconds).
  double total_seconds = 0.0;
  obs::PhaseProfile phases;
};

/// Aggregates `db` (dedup the db first if it may hold superseded rows)
/// into one report per engine, in the db's first-seen engine order.
[[nodiscard]] std::vector<EnginePhaseReport> aggregate_phase_report(
    const ResultsDb& db);

/// Renders the per-engine summary lines and phase tables as one
/// multi-line string.
[[nodiscard]] std::string render_phase_report(
    const std::vector<EnginePhaseReport>& rows);

}  // namespace pilot::corpus
