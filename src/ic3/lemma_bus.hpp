/// \file lemma_bus.hpp
/// The engine-side endpoint of portfolio lemma exchange.
///
/// ic3::Engine talks to peers through this interface only, so the ic3 layer
/// never depends on the engine layer: `engine::LemmaExchange`
/// (engine/lemma_exchange.hpp) implements it with a lock-guarded shared
/// store, and tests can substitute scripted buses.
///
/// Contract: publish() and poll() may be called from the owning engine's
/// thread at any point during check(); implementations synchronize
/// internally.  Lemmas travel as (cube, top level) pairs; the *importer*
/// is responsible for validating a polled lemma against its own frame
/// sequence (one relative-induction query) before installing it — peers
/// run different strategies over different frames, so a shared lemma is a
/// candidate, not a fact.
#pragma once

#include <cstddef>
#include <vector>

#include "ic3/cube.hpp"

namespace pilot::ic3 {

/// One lemma on the wire: clause ¬cube holds at frames 0..level (in the
/// publisher's frame sequence).
struct SharedLemma {
  Cube cube;
  std::size_t level = 0;
};

class LemmaBus {
 public:
  virtual ~LemmaBus() = default;

  /// Offers an installed lemma to the peers.
  virtual void publish(const Cube& cube, std::size_t level) = 0;

  /// Returns the lemmas peers published since this endpoint's last poll
  /// (never the caller's own).
  [[nodiscard]] virtual std::vector<SharedLemma> poll() = 0;
};

}  // namespace pilot::ic3
