/// \file aiger_io.hpp
/// AIGER 1.x reader and writer (ASCII `aag` and binary `aig` formats),
/// including the AIGER 1.9 `B` (bad state) and `C` (invariant constraint)
/// sections used by HWMCC benchmarks.
///
/// Reading normalizes the circuit through the structural-hashing builder, so
/// a parsed AIG is always fold-canonical; semantic equivalence (not node
/// identity) is the round-trip guarantee, and it is checked in the tests by
/// co-simulation.
#pragma once

#include <iosfwd>
#include <string>

#include "aig/aig.hpp"

namespace pilot::aig {

/// Parses an AIGER file (auto-detects `aag` vs `aig` from the header).
/// Throws std::runtime_error with a location-annotated message on malformed
/// input.
Aig read_aiger(std::istream& in);
Aig read_aiger_string(const std::string& text);
Aig read_aiger_file(const std::string& path);

/// Serializes to the ASCII format (`aag`).
void write_aiger_ascii(const Aig& aig, std::ostream& out);
std::string to_aiger_ascii(const Aig& aig);

/// Serializes to the binary format (`aig`).
void write_aiger_binary(const Aig& aig, std::ostream& out);
std::string to_aiger_binary(const Aig& aig);

/// Writes to a file, choosing the format from the extension
/// (".aag" → ASCII, anything else → binary).
void write_aiger_file(const Aig& aig, const std::string& path);

}  // namespace pilot::aig
