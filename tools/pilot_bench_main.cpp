/// \file pilot_bench_main.cpp
/// `pilot-bench` — the benchmark-campaign runner over the corpus subsystem:
/// ingest an AIGER corpus (or a built-in suite), run a (case × engine)
/// matrix into the append-only JSONL results database, and diff campaigns
/// against a baseline for CI regression gating.
///
///   pilot-bench run --corpus <manifest|dir|suite:SIZE> --engines a+b
///       [--budget-ms N] [--jobs N] [--out runs.jsonl]
///       [--certify] [--cert-dir DIR] [--shard i/n]
///       [--cache cache.jsonl] [--advise-from history.jsonl]
///   pilot-bench merge --out merged.jsonl <shard.jsonl>...
///   pilot-bench fuzz [--cases N] [--seed U64|from-commit] [--engines a+b]
///       [--budget-ms N] [--out DIR]
///   pilot-bench diff <baseline.jsonl> [<current.jsonl>]
///       [--time-threshold R] [--min-seconds S] [--fail-on-time]
///   pilot-bench bench-diff <old.json> <new.json>
///       [--threshold PCT] [--min-ns N] [--markdown] [--fail-on-regress]
///   pilot-bench report <runs.jsonl>
///   pilot-bench make-manifest --suite SIZE --out DIR [--format aag|aig]
///   pilot-bench list --corpus <manifest|dir|suite:SIZE>
///   pilot-bench validate-json <file>...
///
/// `fuzz` generates random instances of the built-in circuit families (and
/// seeded single-fault mutants of them), cross-checks the verdicts of
/// several engines against each other and against the family's expected
/// status, certifies every definitive verdict with the independent checker
/// (cert/certificate.hpp), and shrinks any disagreement to the smallest
/// family parameter that still reproduces it.
///
/// `diff` with one file re-runs the campaign recorded in the baseline rows
/// (same corpus, engines, budget, seed) and compares — the single command
/// CI calls.  Newly-unsolved cases and verdict flips (a soundness alarm)
/// fail the diff; time regressions beyond the threshold are reported, and
/// fail only with --fail-on-time.
///
/// `bench-diff` compares two google-benchmark JSON artifacts (the
/// `micro_ops.json` the bench-micro CI job uploads) and flags per-benchmark
/// slowdowns beyond --threshold percent.  Advisory by default (exit 0);
/// --fail-on-regress gates; --markdown emits a $GITHUB_STEP_SUMMARY table.
///
/// Exit codes: 0 = ok, 1 = regression / expectation mismatch, 3 = usage or
/// I/O error.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <string>
#include <vector>

#include <fstream>
#include <sstream>

#include "aig/aiger_io.hpp"
#include "cert/certificate.hpp"
#include "check/runner.hpp"
#include "circuits/families.hpp"
#include "corpus/bench_diff.hpp"
#include "engine/portfolio.hpp"
#include "corpus/corpus.hpp"
#include "corpus/manifest.hpp"
#include "corpus/report.hpp"
#include "corpus/results_db.hpp"
#include "serve/advisor.hpp"
#include "serve/verdict_cache.hpp"
#include "ts/transition_system.hpp"
#include "util/json.hpp"
#include "util/options.hpp"

using namespace pilot;

namespace {

/// Splits an `--engines` list.  ',' is the primary separator (needed when a
/// portfolio spec itself contains '+'); a list without ',' splits on '+'.
/// A lone "portfolio:…" / "portfolio-x:…" spec (engine::match_portfolio_spec
/// is the one grammar) is passed through whole, and mixing a portfolio spec
/// into a '+'-separated list is rejected as ambiguous —
/// "portfolio:bmc+kind" must not silently become ["portfolio:bmc", "kind"].
std::vector<std::string> split_engines(const std::string& text) {
  const bool has_portfolio_spec =
      text.find("portfolio:") != std::string::npos ||
      text.find("portfolio-x:") != std::string::npos;
  if (text.find(',') == std::string::npos && has_portfolio_spec) {
    if (engine::match_portfolio_spec(text).has_value()) return {text};
    throw std::invalid_argument(
        "--engines: a portfolio spec inside a '+'-separated list is "
        "ambiguous; separate engines with ',' instead");
  }
  const char sep = text.find(',') != std::string::npos ? ',' : '+';
  std::vector<std::string> out;
  std::string current;
  for (const char c : text) {
    if (c == sep) {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(current);
  if (out.empty()) {
    throw std::invalid_argument("--engines: empty engine list");
  }
  return out;
}

int report_campaign(const std::vector<check::RunRecord>& records,
                    const std::string& out_path) {
  for (const check::RunRecord& r : records) {
    if (!r.error.empty()) {
      std::fprintf(stderr, "[pilot-bench] %s: ERROR %s\n",
                   r.case_name.c_str(), r.error.c_str());
    } else if (corpus::record_mismatch(r)) {
      std::fprintf(stderr,
                   "[pilot-bench] MISMATCH %s × %s: got %s, expected %s\n",
                   r.case_name.c_str(), r.engine.c_str(),
                   ic3::to_string(r.verdict), corpus::to_string(r.expected));
    }
  }
  const corpus::CampaignSummary s = corpus::summarize_campaign(records);
  std::fprintf(stderr,
               "[pilot-bench] %zu records: %zu solved, %zu unknown, "
               "%zu mismatches, %zu errors%s%s\n",
               s.total, s.solved, s.unknown, s.mismatches, s.errors,
               out_path.empty() ? "" : " — rows appended to ",
               out_path.c_str());
  return s.exit_code();
}

/// Runs one campaign and appends its rows to `writer`.
std::vector<check::RunRecord> run_campaign(
    const std::string& corpus_spec, const std::vector<std::string>& engines,
    const check::RunMatrixOptions& options,
    corpus::ResultsDb::Writer* writer, corpus::ResultsDb* db_out,
    const corpus::ShardSpec* shard = nullptr) {
  std::vector<corpus::Case> cases = corpus::resolve_corpus(corpus_spec);
  if (cases.empty()) {
    throw std::runtime_error("corpus '" + corpus_spec + "' has no cases");
  }
  if (shard != nullptr) {
    const std::size_t total = cases.size();
    cases = corpus::shard_cases(cases, *shard);
    std::fprintf(stderr, "[pilot-bench] shard %zu/%zu: %zu of %zu cases\n",
                 shard->index, shard->count, cases.size(), total);
    // An empty shard is a legitimate outcome for tiny corpora: the campaign
    // records zero rows and merge still reassembles the full result.
  }
  std::fprintf(stderr, "[pilot-bench] %zu cases × %zu engines, %lld ms "
               "budget\n",
               cases.size(), engines.size(),
               static_cast<long long>(options.budget_ms));
  const std::vector<check::RunRecord> records =
      check::run_matrix(cases, engines, options);

  const corpus::RunContext context = corpus::make_run_context(
      corpus_spec, options.budget_ms, options.seed, options.gen_spec);
  for (const check::RunRecord& r : records) {
    corpus::RunRow row{r, context};
    if (writer != nullptr) writer->append(row);
    if (db_out != nullptr) db_out->add(std::move(row));
  }
  return records;
}

int cmd_run(int argc, const char* const* argv) {
  std::string corpus_spec;
  std::string engines_text = "ic3-ctg-pl";
  std::string gen_spec;
  std::int64_t budget_ms = 2000;
  std::int64_t jobs = 0;
  std::int64_t seed = 0;
  std::string out_path;
  std::string lift_sim;
  std::string ternary_filter;
  std::string sat_inprocess;
  std::int64_t gen_batch = -1;
  std::string gen_batch_adaptive;
  bool truncate = false;
  bool verify_witness = true;
  bool certify = false;
  std::string cert_dir;
  std::string shard_text;
  std::string cache_path;
  std::string advise_from;
  OptionParser parser(
      "pilot-bench run — run a (corpus × engines) campaign into a results "
      "db");
  parser.add_string("corpus", &corpus_spec,
                    "manifest.json, a directory of .aig/.aag files, or "
                    "suite:tiny|quick|full");
  parser.add_string("engines", &engines_text,
                    "engine specs, '+'-separated (use ',' when a portfolio "
                    "spec contains '+')");
  parser.add_string("gen", &gen_spec,
                    "generalization-strategy override for the IC3-family "
                    "engines (down|ctg|cav23|predict|dynamic[:w,t])");
  parser.add_choice("lift-sim", &lift_sim, {"packed", "byte"},
                    "ternary-simulation backend for the lifter (default "
                    "packed; byte for A/B)");
  parser.add_choice("gen-ternary-filter", &ternary_filter, {"on", "off"},
                    "ternary drop-filter in the MIC core (default on; off "
                    "for A/B)");
  parser.add_choice("sat-inprocess", &sat_inprocess, {"on", "off"},
                    "SAT inprocessing: subsumption/vivification (IC3), "
                    "probing/SCC collapsing (BMC/k-ind); default on, off "
                    "for A/B");
  parser.add_int("gen-batch", &gen_batch,
                 "MIC candidate drops answered per SAT solve (1 = "
                 "sequential; default 4)");
  parser.add_choice("gen-batch-adaptive", &gen_batch_adaptive, {"on", "off"},
                    "size MIC probe batches from the observed probe failure "
                    "rate instead of the fixed --gen-batch width (default "
                    "off)");
  parser.add_string("shard", &shard_text,
                    "run only shard i of n (\"i/n\"): a deterministic "
                    "content-hash partition, reassembled with `pilot-bench "
                    "merge`");
  parser.add_string("cache", &cache_path,
                    "JSONL verdict cache: serve revalidated hits, store new "
                    "certified verdicts (created when missing)");
  parser.add_string("advise-from", &advise_from,
                    "results db mined for engine/budget advice on cache "
                    "misses (nearest prior instance opens, full spec is the "
                    "fallback)");
  parser.add_int("budget-ms", &budget_ms, "per-case wall-clock budget");
  parser.add_int("jobs", &jobs, "worker threads (0 = hardware concurrency)");
  parser.add_int("seed", &seed, "engine seed");
  parser.add_string("out", &out_path,
                    "append JSONL rows here (default: stdout)");
  parser.add_flag("truncate", &truncate,
                  "start --out fresh instead of appending");
  parser.add_flag("verify-witness", &verify_witness,
                  "re-check produced certificates (default on)");
  parser.add_flag("certify", &certify,
                  "emit + independently re-check a certificate for every "
                  "definitive verdict (outcome in the cert_status column)");
  parser.add_string("cert-dir", &cert_dir,
                    "with --certify: save certificate files here (the "
                    "directory must already exist)");
  if (!parser.parse(argc, argv)) return 3;
  if (corpus_spec.empty()) {
    std::fprintf(stderr, "pilot-bench run: --corpus is required\n");
    return 3;
  }

  check::RunMatrixOptions options;
  options.budget_ms = budget_ms;
  options.gen_spec = gen_spec;
  if (!lift_sim.empty()) {
    options.lift_sim = lift_sim == "byte" ? ic3::Config::LiftSim::kByte
                                          : ic3::Config::LiftSim::kPacked;
  }
  if (!ternary_filter.empty()) {
    options.gen_ternary_filter = ternary_filter == "on";
  }
  if (!sat_inprocess.empty()) options.sat_inprocess = sat_inprocess == "on";
  if (gen_batch == 0 || gen_batch < -1) {
    std::fprintf(stderr,
                 "pilot-bench run: --gen-batch must be >= 1 (1 = "
                 "sequential)\n");
    return 3;
  }
  if (gen_batch >= 1) options.gen_batch = static_cast<int>(gen_batch);
  if (!gen_batch_adaptive.empty()) {
    options.gen_batch_adaptive = gen_batch_adaptive == "on";
  }
  options.jobs = static_cast<std::size_t>(jobs);
  options.seed = static_cast<std::uint64_t>(seed);
  options.verify_witness = verify_witness;
  options.certify = certify || !cert_dir.empty();
  options.cert_dir = cert_dir;
  options.strict = false;  // mismatches surface via the exit code

  std::optional<corpus::ShardSpec> shard;
  if (!shard_text.empty()) shard = corpus::parse_shard_spec(shard_text);
  std::optional<serve::VerdictCache> cache;
  if (!cache_path.empty()) {
    cache.emplace(cache_path);
    options.cache = &*cache;
    std::fprintf(stderr, "[pilot-bench] cache %s: %zu entries loaded\n",
                 cache_path.c_str(), cache->size());
  }
  serve::Advisor advisor;
  if (!advise_from.empty()) {
    advisor = serve::Advisor::from_file(advise_from);
    options.advisor = &advisor;
    std::fprintf(stderr, "[pilot-bench] advisor: %zu history rows from %s\n",
                 advisor.size(), advise_from.c_str());
  }

  corpus::ResultsDb::Writer writer(out_path, truncate);
  const std::vector<check::RunRecord> records =
      run_campaign(corpus_spec, split_engines(engines_text), options, &writer,
                   nullptr, shard.has_value() ? &*shard : nullptr);
  if (cache.has_value()) {
    std::fprintf(stderr, "[pilot-bench] cache: %s\n",
                 cache->summary().c_str());
  }
  const int rc = report_campaign(records, out_path);
  std::size_t cert_failures = 0;
  for (const check::RunRecord& r : records) {
    if (!r.cert_status.empty() && r.cert_status != "ok") ++cert_failures;
  }
  if (cert_failures != 0) {
    std::fprintf(stderr, "[pilot-bench] %zu certificate failures\n",
                 cert_failures);
    return 1;
  }
  return rc;
}

// --- fuzz -------------------------------------------------------------------

/// splitmix64: tiny deterministic PRNG so fuzz runs reproduce from a seed
/// alone (no std::random_device, no global state).
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// `--seed from-commit`: FNV-1a of the git revision, so every CI run of the
/// same commit replays the same cases while different commits explore
/// different ones.
std::uint64_t fuzz_seed_from_commit() {
  const std::string commit = corpus::campaign_commit();
  if (commit.empty()) return 1;
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : commit) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h == 0 ? 1 : h;
}

/// One fuzzable family: a deterministic (param, aux) → circuit generator
/// with a shrinkable size parameter.  `aux` picks targets/limits within the
/// parameter's reachable range; the generator must stay valid (and keep its
/// expected status) for every param in [min_param, max_param].
struct FuzzFamily {
  const char* name;
  std::size_t min_param;
  std::size_t max_param;
  circuits::CircuitCase (*make)(std::size_t p, std::uint64_t aux);
};

const std::vector<FuzzFamily>& fuzz_families() {
  using circuits::CircuitCase;
  static const std::vector<FuzzFamily> kFamilies{
      {"counter-unsafe", 2, 9,
       [](std::size_t p, std::uint64_t aux) {
         const std::uint64_t max = (1ULL << p) - 1;
         return circuits::counter_unsafe(p, 1 + aux % max);
       }},
      {"counter-wrap-safe", 3, 9,
       [](std::size_t p, std::uint64_t aux) {
         const std::uint64_t max = (1ULL << p) - 1;
         const std::uint64_t limit = 1 + aux % (max / 2);
         // Any target beyond the wrap limit is unreachable, hence safe.
         return circuits::counter_wrap_safe(
             p, limit, limit + 1 + (aux >> 32) % (max - limit));
       }},
      {"counter-enable-unsafe", 2, 8,
       [](std::size_t p, std::uint64_t aux) {
         return circuits::counter_enable_unsafe(p,
                                                1 + aux % ((1ULL << p) - 1));
       }},
      {"combination-lock-unsafe", 2, 5,
       [](std::size_t p, std::uint64_t aux) {
         std::vector<std::uint64_t> digits(p);
         for (std::size_t i = 0; i < p; ++i) digits[i] = (aux >> (2 * i)) & 3u;
         return circuits::combination_lock_unsafe(2, digits);
       }},
      {"combination-lock-safe", 2, 5,
       [](std::size_t p, std::uint64_t aux) {
         std::vector<std::uint64_t> digits(p);
         for (std::size_t i = 0; i < p; ++i) digits[i] = (aux >> (2 * i)) & 3u;
         return circuits::combination_lock_safe(2, digits, aux % p);
       }},
      {"shift-register", 2, 12,
       [](std::size_t p, std::uint64_t aux) {
         return circuits::shift_register(p, (aux & 1) != 0);
       }},
      {"token-ring-safe", 2, 8,
       [](std::size_t p, std::uint64_t) {
         return circuits::token_ring_safe(p);
       }},
      {"token-ring-unsafe", 2, 8,
       [](std::size_t p, std::uint64_t) {
         return circuits::token_ring_unsafe(p);
       }},
      {"arbiter-safe", 2, 6,
       [](std::size_t p, std::uint64_t) { return circuits::arbiter_safe(p); }},
      {"arbiter-unsafe", 2, 6,
       [](std::size_t p, std::uint64_t) {
         return circuits::arbiter_unsafe(p);
       }},
      {"gray-counter-safe", 2, 8,
       [](std::size_t p, std::uint64_t) {
         return circuits::gray_counter_safe(p);
       }},
      {"gray-counter-unsafe", 2, 8,
       [](std::size_t p, std::uint64_t) {
         return circuits::gray_counter_unsafe(p);
       }},
      {"ring-parity-safe", 2, 10,
       [](std::size_t p, std::uint64_t) {
         return circuits::ring_parity_safe(p);
       }},
      // The occupancy counter is p bits, so capacity 2^p - 2 leaves room
      // for the unsafe variant's off-by-one full check (cap + 1 < 2^p).
      {"fifo-safe", 2, 6,
       [](std::size_t p, std::uint64_t) {
         return circuits::fifo_safe(p, (1ULL << p) - 2);
       }},
      {"fifo-unsafe", 2, 6,
       [](std::size_t p, std::uint64_t) {
         return circuits::fifo_unsafe(p, (1ULL << p) - 2);
       }},
      {"saturating-accumulator-safe", 2, 6,
       [](std::size_t p, std::uint64_t) {
         return circuits::saturating_accumulator_safe(p, (1ULL << p) - 2);
       }},
      {"saturating-accumulator-unsafe", 2, 6,
       [](std::size_t p, std::uint64_t) {
         return circuits::saturating_accumulator_unsafe(p, (1ULL << p) - 2);
       }},
      {"twin-counters-safe", 2, 8,
       [](std::size_t p, std::uint64_t) {
         return circuits::twin_counters_safe(p);
       }},
      {"twin-counters-unsafe", 2, 8,
       [](std::size_t p, std::uint64_t) {
         return circuits::twin_counters_unsafe(p);
       }},
  };
  return kFamilies;
}

/// Injects one seeded fault: flip a latch's reset value, or negate its
/// next-state function.  The mutant's expected status is unknown — it only
/// participates in engine-vs-engine and certificate cross-checks.
void apply_mutation(circuits::CircuitCase& cc, std::uint64_t key) {
  const std::vector<std::uint32_t>& latches = cc.aig.latches();
  if (latches.empty()) return;
  const std::size_t idx = key % latches.size();
  const std::uint32_t node = latches[idx];
  const aig::AigLit latch = aig::AigLit::make(node);
  if (((key >> 8) & 1) != 0) {
    cc.aig.set_init(latch, cc.aig.init(node) == aig::l_True ? aig::l_False
                                                            : aig::l_True);
    cc.name += "__mut-init" + std::to_string(idx);
  } else {
    cc.aig.set_next(latch, !cc.aig.next(node));
    cc.name += "__mut-next" + std::to_string(idx);
  }
  cc.expected_cex_length = -1;
}

/// A generated fuzz case plus the key that regenerates it (for shrinking).
struct FuzzCase {
  circuits::CircuitCase cc;
  std::size_t family_index = 0;
  std::size_t param = 0;
  std::uint64_t aux = 0;
  std::uint64_t mut_key = 0;  // 0 = unmutated
  bool expected_known = true;
};

FuzzCase make_fuzz_case(std::size_t family_index, std::size_t param,
                        std::uint64_t aux, std::uint64_t mut_key) {
  FuzzCase fc;
  fc.cc = fuzz_families()[family_index].make(param, aux);
  fc.family_index = family_index;
  fc.param = param;
  fc.aux = aux;
  fc.mut_key = mut_key;
  if (mut_key != 0) {
    apply_mutation(fc.cc, mut_key);
    fc.expected_known = false;
  }
  return fc;
}

/// Runs every engine on the case, certifies each definitive verdict, and
/// returns the first cross-check violation: a rejected witness or
/// certificate, a verdict contradicting the family's expected status, or a
/// SAFE-vs-UNSAFE disagreement between engines.
struct FuzzOutcome {
  bool failed = false;
  std::string why;
};

FuzzOutcome evaluate_fuzz_case(const FuzzCase& fc,
                               const std::vector<std::string>& engines,
                               std::int64_t budget_ms, std::uint64_t seed) {
  FuzzOutcome out;
  const ts::TransitionSystem ts =
      ts::TransitionSystem::from_aig(fc.cc.aig, 0);
  std::string safe_engine;
  std::string unsafe_engine;
  for (const std::string& spec : engines) {
    check::CheckOptions co;
    co.engine_spec = spec;
    co.budget_ms = budget_ms;
    co.seed = seed;
    co.verify_witness = true;
    const check::CheckResult r = check::check_ts(ts, co);
    if (r.verdict == ic3::Verdict::kUnknown) continue;
    const bool safe = r.verdict == ic3::Verdict::kSafe;
    if (!r.witness_error.empty()) {
      out.failed = true;
      out.why = "witness check failed for " + spec + ": " + r.witness_error;
      return out;
    }
    std::string why;
    const std::optional<cert::Certificate> c =
        cert::from_verdict(ts, r.verdict, r.invariant, r.trace, r.kind_k,
                           r.kind_simple_path, /*property_index=*/0, &why);
    if (!c.has_value()) {
      out.failed = true;
      out.why = "no certificate from " + spec + " (" +
                ic3::to_string(r.verdict) + "): " + why;
      return out;
    }
    const ic3::CheckOutcome checked = cert::check(ts, *c, seed + 17);
    if (!checked.ok) {
      out.failed = true;
      out.why = "certificate from " + spec + " rejected: " + checked.reason;
      return out;
    }
    if (fc.expected_known && safe != fc.cc.expected_safe) {
      out.failed = true;
      out.why = spec + " reported " + ic3::to_string(r.verdict) +
                " but the family expects " +
                (fc.cc.expected_safe ? "SAFE" : "UNSAFE");
      return out;
    }
    (safe ? safe_engine : unsafe_engine) = spec;
  }
  if (!safe_engine.empty() && !unsafe_engine.empty()) {
    out.failed = true;
    out.why = "engines disagree: " + safe_engine + " says SAFE, " +
              unsafe_engine + " says UNSAFE";
  }
  return out;
}

/// Re-generates the failing case at every smaller family parameter (same
/// aux/mutation key) and returns the smallest one that still fails —
/// deterministic generation makes the scan exact, not heuristic.
FuzzCase shrink_fuzz_case(const FuzzCase& failing,
                          const std::vector<std::string>& engines,
                          std::int64_t budget_ms, std::uint64_t seed,
                          std::string* why) {
  const FuzzFamily& fam = fuzz_families()[failing.family_index];
  for (std::size_t p = fam.min_param; p < failing.param; ++p) {
    FuzzCase candidate =
        make_fuzz_case(failing.family_index, p, failing.aux, failing.mut_key);
    const FuzzOutcome v =
        evaluate_fuzz_case(candidate, engines, budget_ms, seed);
    if (v.failed) {
      *why = v.why;
      return candidate;
    }
  }
  return failing;
}

int cmd_fuzz(int argc, const char* const* argv) {
  std::int64_t cases = 25;
  std::string seed_text = "1";
  std::string engines_text = "ic3-ctg+kind+bmc";
  std::int64_t budget_ms = 2000;
  std::string out_dir;
  OptionParser parser(
      "pilot-bench fuzz — cross-check engines on random circuit-family "
      "instances and seeded single-fault mutants.\nEach case runs every "
      "engine; definitive verdicts must agree with each other, with the "
      "family's expected status (unmutated cases), and must certify under "
      "the independent checker.  Failures shrink to the smallest family "
      "parameter that still reproduces.\nExit codes: 0 = all cases clean, "
      "1 = cross-check failure, 3 = usage error.");
  parser.add_int("cases", &cases, "number of fuzz cases to generate");
  parser.add_string("seed", &seed_text,
                    "u64 PRNG seed, or 'from-commit' to derive one from the "
                    "git revision");
  parser.add_string("engines", &engines_text,
                    "engine specs to cross-check, '+'-separated");
  parser.add_int("budget-ms", &budget_ms,
                 "per-engine wall-clock budget per case");
  parser.add_string("out", &out_dir,
                    "write shrunk .aag reproducers here (the directory must "
                    "already exist)");
  if (!parser.parse(argc, argv)) return 3;
  if (cases <= 0) {
    std::fprintf(stderr, "pilot-bench fuzz: --cases must be >= 1, got %lld\n",
                 static_cast<long long>(cases));
    return 3;
  }

  std::uint64_t seed = 0;
  if (seed_text == "from-commit") {
    seed = fuzz_seed_from_commit();
    std::fprintf(stderr, "[pilot-bench] fuzz seed %llu (from commit '%s')\n",
                 static_cast<unsigned long long>(seed),
                 corpus::campaign_commit().c_str());
  } else {
    char* end = nullptr;
    seed = std::strtoull(seed_text.c_str(), &end, 10);
    if (end == seed_text.c_str() || *end != '\0') {
      std::fprintf(stderr,
                   "pilot-bench fuzz: --seed expects a u64 or "
                   "'from-commit', got '%s'\n",
                   seed_text.c_str());
      return 3;
    }
  }

  const std::vector<std::string> engines = split_engines(engines_text);
  const std::vector<FuzzFamily>& families = fuzz_families();
  std::uint64_t rng = seed;
  std::size_t failures = 0;
  for (std::int64_t i = 0; i < cases; ++i) {
    const std::size_t family_index = splitmix64(rng) % families.size();
    const FuzzFamily& fam = families[family_index];
    const std::size_t param =
        fam.min_param +
        splitmix64(rng) % (fam.max_param - fam.min_param + 1);
    const std::uint64_t aux = splitmix64(rng);
    // Every ~third case carries one injected fault, so the cross-check also
    // sees circuits whose status no family invariant predicts.
    std::uint64_t mut_key = 0;
    if (splitmix64(rng) % 3 == 0) {
      mut_key = splitmix64(rng);
      if (mut_key == 0) mut_key = 1;
    }
    const FuzzCase fc = make_fuzz_case(family_index, param, aux, mut_key);
    const FuzzOutcome v =
        evaluate_fuzz_case(fc, engines, budget_ms, seed + 1 + i);
    if (!v.failed) {
      std::fprintf(stderr, "[pilot-bench] fuzz %lld/%lld %s: ok\n",
                   static_cast<long long>(i + 1),
                   static_cast<long long>(cases), fc.cc.name.c_str());
      continue;
    }
    ++failures;
    std::fprintf(stderr, "[pilot-bench] fuzz FAILURE on %s: %s\n",
                 fc.cc.name.c_str(), v.why.c_str());
    std::string shrunk_why = v.why;
    const FuzzCase minimal =
        shrink_fuzz_case(fc, engines, budget_ms, seed + 1 + i, &shrunk_why);
    if (minimal.param != fc.param) {
      std::fprintf(stderr, "[pilot-bench]   shrunk to %s: %s\n",
                   minimal.cc.name.c_str(), shrunk_why.c_str());
    }
    if (!out_dir.empty()) {
      const std::string path = out_dir + "/" + minimal.cc.name + ".aag";
      try {
        aig::write_aiger_file(minimal.cc.aig, path);
        std::fprintf(stderr, "[pilot-bench]   reproducer: %s\n",
                     path.c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[pilot-bench]   cannot write %s: %s\n",
                     path.c_str(), e.what());
      }
    }
  }
  std::fprintf(stderr,
               "[pilot-bench] fuzz: %lld cases, %zu failures (seed %llu)\n",
               static_cast<long long>(cases), failures,
               static_cast<unsigned long long>(seed));
  return failures == 0 ? 0 : 1;
}

int cmd_diff(int argc, const char* const* argv) {
  double time_threshold = 1.5;
  double min_seconds = 0.25;
  bool fail_on_time = false;
  std::int64_t jobs = 0;
  OptionParser parser(
      "pilot-bench diff — compare a campaign against a baseline results "
      "db.\nusage: pilot-bench diff <baseline.jsonl> [<current.jsonl>]\n"
      "With one file, the baseline's recorded campaign (corpus, engines, "
      "budget, seed, --gen override) is re-run and compared.");
  parser.add_double("time-threshold", &time_threshold,
                    "cur/base runtime ratio counted as a regression");
  parser.add_double("min-seconds", &min_seconds,
                    "ignore time regressions on cases faster than this");
  parser.add_flag("fail-on-time", &fail_on_time,
                  "exit non-zero on time regressions too");
  parser.add_int("jobs", &jobs, "re-run mode: worker threads");
  if (!parser.parse(argc, argv)) return 3;
  if (parser.positional().empty() || parser.positional().size() > 2) {
    std::fprintf(stderr,
                 "usage: pilot-bench diff <baseline.jsonl> "
                 "[<current.jsonl>]\n");
    return 3;
  }

  corpus::ResultsDb baseline =
      corpus::ResultsDb::load(parser.positional()[0]);
  if (baseline.rows().empty()) {
    std::fprintf(stderr, "pilot-bench diff: baseline %s is empty\n",
                 parser.positional()[0].c_str());
    return 3;
  }

  corpus::ResultsDb current;
  if (parser.positional().size() == 2) {
    current = corpus::ResultsDb::load(parser.positional()[1]);
  } else {
    // Re-run the campaign the baseline recorded.
    baseline.dedup();
    const corpus::RunContext& ctx = baseline.rows().front().context;
    if (ctx.corpus.empty()) {
      std::fprintf(stderr,
                   "pilot-bench diff: baseline rows carry no corpus source; "
                   "pass a current.jsonl explicitly\n");
      return 3;
    }
    for (const corpus::RunRow& row : baseline.rows()) {
      if (row.context.corpus != ctx.corpus) {
        std::fprintf(stderr,
                     "pilot-bench diff: baseline mixes corpora ('%s' vs "
                     "'%s'); pass a current.jsonl explicitly\n",
                     ctx.corpus.c_str(), row.context.corpus.c_str());
        return 3;
      }
      if (row.context.gen_spec != ctx.gen_spec) {
        std::fprintf(stderr,
                     "pilot-bench diff: baseline mixes --gen overrides "
                     "('%s' vs '%s'); pass a current.jsonl explicitly\n",
                     ctx.gen_spec.c_str(), row.context.gen_spec.c_str());
        return 3;
      }
    }
    check::RunMatrixOptions options;
    options.budget_ms = ctx.budget_ms;
    options.gen_spec = ctx.gen_spec;  // reproduce the recorded campaign
    options.seed = ctx.seed;
    options.jobs = static_cast<std::size_t>(jobs);
    options.strict = false;
    (void)run_campaign(ctx.corpus, baseline.engines(), options, nullptr,
                       &current);
  }

  corpus::DiffOptions options;
  options.time_ratio = time_threshold;
  options.min_seconds = min_seconds;
  options.fail_on_time = fail_on_time;
  const corpus::DiffReport report =
      corpus::diff_runs(baseline, current, options);
  std::fputs(report.summary(options).c_str(), stdout);
  return report.failed(options) ? 1 : 0;
}

int cmd_bench_diff(int argc, const char* const* argv) {
  double threshold_pct = 25.0;
  double min_ns = 100.0;
  bool markdown = false;
  bool fail_on_regress = false;
  OptionParser parser(
      "pilot-bench bench-diff — compare two google-benchmark JSON "
      "artifacts.\nusage: pilot-bench bench-diff <old.json> <new.json>\n"
      "Median aggregates are used when the file carries repetitions; times "
      "are compared on cpu_time.");
  parser.add_double("threshold", &threshold_pct,
                    "percent slowdown flagged as a regression");
  parser.add_double("min-ns", &min_ns,
                    "ignore benchmarks whose slower side is below this");
  parser.add_flag("markdown", &markdown,
                  "emit a GitHub-flavored markdown table instead of text");
  parser.add_flag("fail-on-regress", &fail_on_regress,
                  "exit non-zero when slowdowns exist (default: advisory)");
  if (!parser.parse(argc, argv)) return 3;
  if (parser.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: pilot-bench bench-diff <old.json> <new.json>\n");
    return 3;
  }

  const std::vector<corpus::BenchEntry> baseline =
      corpus::load_benchmark_json(parser.positional()[0]);
  const std::vector<corpus::BenchEntry> current =
      corpus::load_benchmark_json(parser.positional()[1]);
  if (baseline.empty() || current.empty()) {
    // An empty side means the run produced no measurements at all — that
    // must not read as "no regressions", especially under --fail-on-regress.
    std::fprintf(stderr, "pilot-bench bench-diff: %s has no benchmarks\n",
                 baseline.empty() ? parser.positional()[0].c_str()
                                  : parser.positional()[1].c_str());
    return 3;
  }

  corpus::BenchDiffOptions options;
  options.slow_ratio = 1.0 + threshold_pct / 100.0;
  options.fast_ratio = options.slow_ratio;
  options.min_time_ns = min_ns;
  options.fail_on_regress = fail_on_regress;
  const corpus::BenchDiffReport report =
      corpus::diff_benchmarks(baseline, current, options);
  std::fputs(markdown ? report.markdown(options).c_str()
                      : report.summary(options).c_str(),
             stdout);
  return report.failed(options) ? 1 : 0;
}

int cmd_merge(int argc, const char* const* argv) {
  std::string out_path;
  OptionParser parser(
      "pilot-bench merge — combine sharded campaign dbs into one.\n"
      "usage: pilot-bench merge --out merged.jsonl <shard.jsonl>...\n"
      "Rows are concatenated in argument order and deduped per (case, "
      "engine), later files superseding earlier ones — so merging the n "
      "shards of a campaign reproduces the unsharded db (modulo row "
      "order).");
  parser.add_string("out", &out_path, "write the merged db here");
  if (!parser.parse(argc, argv)) return 3;
  if (out_path.empty()) {
    std::fprintf(stderr, "pilot-bench merge: --out is required\n");
    return 3;
  }
  if (parser.positional().empty()) {
    std::fprintf(stderr,
                 "usage: pilot-bench merge --out merged.jsonl "
                 "<shard.jsonl>...\n");
    return 3;
  }
  corpus::ResultsDb merged;
  for (const std::string& path : parser.positional()) {
    const corpus::ResultsDb shard_db = corpus::ResultsDb::load(path);
    std::fprintf(stderr, "[pilot-bench] %s: %zu rows\n", path.c_str(),
                 shard_db.rows().size());
    merged.merge(shard_db);
  }
  merged.dedup();
  merged.save(out_path);
  std::fprintf(stderr, "[pilot-bench] merged %zu files into %s (%zu rows)\n",
               parser.positional().size(), out_path.c_str(),
               merged.rows().size());
  return 0;
}

int cmd_report(int argc, const char* const* argv) {
  OptionParser parser(
      "pilot-bench report — aggregate a campaign db per engine and per "
      "phase.\nusage: pilot-bench report <runs.jsonl>\n"
      "Prints, for each engine: cases run, cases solved, total wall-clock, "
      "and the summed per-phase time table.  Rows written by builds without "
      "phase profiling contribute zeros (their tables are empty).");
  if (!parser.parse(argc, argv)) return 3;
  if (parser.positional().size() != 1) {
    std::fprintf(stderr, "usage: pilot-bench report <runs.jsonl>\n");
    return 3;
  }
  corpus::ResultsDb db = corpus::ResultsDb::load(parser.positional()[0]);
  db.dedup();  // superseded re-run rows must not double-count
  if (db.rows().empty()) {
    std::fprintf(stderr, "pilot-bench report: %s is empty\n",
                 parser.positional()[0].c_str());
    return 3;
  }
  const std::vector<corpus::EnginePhaseReport> rows =
      corpus::aggregate_phase_report(db);
  std::fputs(corpus::render_phase_report(rows).c_str(), stdout);
  return 0;
}

int cmd_validate_json(int argc, const char* const* argv) {
  OptionParser parser(
      "pilot-bench validate-json — parse JSON artifacts and fail on the "
      "first malformed one.\nusage: pilot-bench validate-json <file>...\n"
      "Files ending in .jsonl are validated line by line; everything else "
      "must be one JSON document.  The CI smoke gate for --trace and "
      "--stats-json output.");
  if (!parser.parse(argc, argv)) return 3;
  if (parser.positional().empty()) {
    std::fprintf(stderr, "usage: pilot-bench validate-json <file>...\n");
    return 3;
  }
  for (const std::string& path : parser.positional()) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "pilot-bench validate-json: cannot open %s\n",
                   path.c_str());
      return 3;
    }
    const bool jsonl =
        path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
    try {
      if (jsonl) {
        std::string line;
        std::size_t line_no = 0;
        std::size_t rows = 0;
        while (std::getline(in, line)) {
          ++line_no;
          if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
          try {
            (void)json::parse(line);
          } catch (const std::exception& e) {
            throw std::runtime_error("line " + std::to_string(line_no) +
                                     ": " + e.what());
          }
          ++rows;
        }
        std::printf("%s: ok (%zu rows)\n", path.c_str(), rows);
      } else {
        std::ostringstream text;
        text << in.rdbuf();
        (void)json::parse(text.str());
        std::printf("%s: ok\n", path.c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "pilot-bench validate-json: %s: %s\n",
                   path.c_str(), e.what());
      return 3;
    }
  }
  return 0;
}

int cmd_make_manifest(int argc, const char* const* argv) {
  std::string suite = "tiny";
  std::string out_dir;
  std::string format = "aag";
  OptionParser parser(
      "pilot-bench make-manifest — export a built-in suite as an on-disk "
      "corpus (AIGER files + manifest.json)");
  parser.add_choice("suite", &suite, {"tiny", "quick", "full"},
                    "suite size to export");
  parser.add_string("out", &out_dir, "output directory");
  parser.add_choice("format", &format, {"aag", "aig"},
                    "AIGER flavour (ascii or binary)");
  if (!parser.parse(argc, argv)) return 3;
  if (out_dir.empty()) {
    std::fprintf(stderr, "pilot-bench make-manifest: --out is required\n");
    return 3;
  }
  const corpus::Manifest manifest = corpus::export_suite(
      circuits::suite_size_from_string(suite), out_dir, format == "aig");
  std::printf("wrote %zu cases and %s to %s\n", manifest.entries.size(),
              corpus::kManifestFilename, out_dir.c_str());
  return 0;
}

int cmd_list(int argc, const char* const* argv) {
  std::string corpus_spec;
  OptionParser parser("pilot-bench list — show a corpus' cases");
  parser.add_string("corpus", &corpus_spec,
                    "manifest.json, a directory, or suite:tiny|quick|full");
  if (!parser.parse(argc, argv)) return 3;
  if (corpus_spec.empty() && !parser.positional().empty()) {
    corpus_spec = parser.positional()[0];
  }
  if (corpus_spec.empty()) {
    std::fprintf(stderr, "pilot-bench list: --corpus is required\n");
    return 3;
  }
  const std::vector<corpus::Case> cases =
      corpus::resolve_corpus(corpus_spec);
  std::printf("%-32s %-8s %8s %8s %8s  %s\n", "case", "expect", "inputs",
              "latches", "ands", "tags");
  for (const corpus::Case& c : cases) {
    std::string tags;
    for (const std::string& t : c.tags) {
      if (!tags.empty()) tags += ",";
      tags += t;
    }
    std::printf("%-32s %-8s %8zu %8zu %8zu  %s\n", c.name.c_str(),
                corpus::to_string(c.expected), c.num_inputs, c.num_latches,
                c.num_ands, tags.c_str());
  }
  std::printf("%zu cases\n", cases.size());
  return 0;
}

void print_usage() {
  std::fputs(
      "pilot-bench — benchmark campaigns over AIGER corpora and the\n"
      "built-in suites, persisted to an append-only JSONL results db.\n\n"
      "subcommands:\n"
      "  run            run a (corpus × engines) matrix into the db\n"
      "  fuzz           cross-check engines on random/mutated circuits\n"
      "  diff           compare a campaign against a baseline db\n"
      "  merge          combine sharded campaign dbs into one\n"
      "  report         aggregate a campaign db per engine and per phase\n"
      "  bench-diff     compare two google-benchmark JSON artifacts\n"
      "  make-manifest  export a built-in suite as an on-disk corpus\n"
      "  list           show a corpus' cases and parse metadata\n"
      "  validate-json  parse JSON/JSONL artifacts (CI smoke gate)\n\n"
      "try `pilot-bench <subcommand> --help` for flags\n",
      stdout);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 3;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    print_usage();
    return 0;
  }
  // Shift so each subcommand parses its own flags from argv[2:].
  std::vector<const char*> args;
  args.push_back(argv[0]);
  for (int i = 2; i < argc; ++i) args.push_back(argv[i]);
  const int sub_argc = static_cast<int>(args.size());

  try {
    if (cmd == "run") return cmd_run(sub_argc, args.data());
    if (cmd == "fuzz") return cmd_fuzz(sub_argc, args.data());
    if (cmd == "diff") return cmd_diff(sub_argc, args.data());
    if (cmd == "merge") return cmd_merge(sub_argc, args.data());
    if (cmd == "report") return cmd_report(sub_argc, args.data());
    if (cmd == "validate-json") {
      return cmd_validate_json(sub_argc, args.data());
    }
    if (cmd == "bench-diff") return cmd_bench_diff(sub_argc, args.data());
    if (cmd == "make-manifest") {
      return cmd_make_manifest(sub_argc, args.data());
    }
    if (cmd == "list") return cmd_list(sub_argc, args.data());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pilot-bench %s: %s\n", cmd.c_str(), e.what());
    return 3;
  }
  std::fprintf(stderr, "pilot-bench: unknown subcommand '%s'\n",
               cmd.c_str());
  print_usage();
  return 3;
}
