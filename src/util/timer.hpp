/// \file timer.hpp
/// Wall-clock timers and cooperative deadlines.
///
/// Every long-running engine in pilot (SAT solver, IC3, BMC) takes a
/// `Deadline` and polls it at coarse-grained points (e.g. every few thousand
/// conflicts).  This gives the benchmark harness reproducible per-case
/// budgets without signals or threads.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>

#include "util/cancel.hpp"

namespace pilot {

/// Monotonic stopwatch measuring elapsed wall-clock time.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock budget that cooperating engines poll.
///
/// A default-constructed Deadline never expires.  Deadlines are value types
/// and cheap to copy; engines receive them by value.
///
/// A Deadline may additionally carry a CancelToken (with_cancel); expired()
/// then also reports true once the token is stopped, so every existing
/// deadline poll — down to the SAT solver's conflict loop — doubles as a
/// cancellation point.  The token must outlive every copy of the deadline.
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  /// Expires `budget_ms` milliseconds after the call.
  static Deadline in_milliseconds(std::int64_t budget_ms) {
    Deadline d;
    d.unlimited_ = false;
    d.end_ = Clock::now() + std::chrono::milliseconds(budget_ms);
    return d;
  }

  /// Expires `budget_s` seconds after the call.
  static Deadline in_seconds(double budget_s) {
    return in_milliseconds(static_cast<std::int64_t>(budget_s * 1e3));
  }

  /// Returns a copy that also expires once `cancel` is stopped.  Replaces
  /// any token carried so far; chain tokens (CancelToken parents) to
  /// combine several stop sources.
  [[nodiscard]] Deadline with_cancel(const CancelToken& cancel) const {
    Deadline d = *this;
    d.cancel_ = &cancel;
    return d;
  }

  /// True when the attached CancelToken (if any) was stopped.
  [[nodiscard]] bool cancelled() const {
    return cancel_ != nullptr && cancel_->stop_requested();
  }

  [[nodiscard]] bool unlimited() const { return unlimited_; }

  /// True once the budget is exhausted or the attached token stopped.
  [[nodiscard]] bool expired() const {
    return cancelled() || (!unlimited_ && Clock::now() >= end_);
  }

  /// Remaining budget in seconds (infinity if unlimited, clamps at 0,
  /// 0 when cancelled).
  [[nodiscard]] double remaining_seconds() const {
    if (cancelled()) return 0.0;
    if (unlimited_) return std::numeric_limits<double>::infinity();
    const double r = std::chrono::duration<double>(end_ - Clock::now()).count();
    return r > 0.0 ? r : 0.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool unlimited_ = true;
  Clock::time_point end_{};
  const CancelToken* cancel_ = nullptr;
};

}  // namespace pilot
