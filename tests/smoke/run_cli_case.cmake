# End-to-end smoke check for the `pilot` CLI, driven by CTest.
#
# Invocation (see tests/CMakeLists.txt):
#   cmake -DPILOT_BIN=<path> -DFAMILY=<family name> -DEXPECT_CODE=<0|1>
#         -DWORK_DIR=<scratch dir> [-DENGINE=<engine spec>]
#         [-DGEN=<strategy spec>] [-DEXTRA_FLAGS=<flag>]
#         -P run_cli_case.cmake
#
# Steps:
#   1. `pilot --family FAMILY --family-out WORK_DIR/FAMILY.aag` — exercises
#      the circuit generator and the AIGER writer; must exit 0.
#   2. `pilot --witness [--engine ENGINE] [--gen GEN] FILE` — exercises the
#      AIGER reader and the engine (ENGINE defaults to the CLI's default;
#      pass e.g. "portfolio" or "portfolio-x:bmc+kind" to cover the
#      scheduler, GEN e.g. "dynamic" to cover a strategy override); must
#      exit EXPECT_CODE, print the matching verdict line, and emit the
#      matching HWMCC witness block ("1\nb…" counterexample for UNSAFE,
#      "0\nb…" certificate header for SAFE).

foreach(required PILOT_BIN FAMILY EXPECT_CODE WORK_DIR)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "run_cli_case.cmake: missing -D${required}")
  endif()
endforeach()

set(engine_args "")
if(DEFINED ENGINE)
  list(APPEND engine_args --engine "${ENGINE}")
endif()
if(DEFINED GEN)
  list(APPEND engine_args --gen "${GEN}")
endif()
if(DEFINED EXTRA_FLAGS)
  list(APPEND engine_args ${EXTRA_FLAGS})
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(model "${WORK_DIR}/${FAMILY}.aag")

execute_process(
  COMMAND "${PILOT_BIN}" --family "${FAMILY}" --family-out "${model}"
  RESULT_VARIABLE gen_rc
  ERROR_VARIABLE gen_err)
if(NOT gen_rc EQUAL 0)
  message(FATAL_ERROR
    "generation failed (exit ${gen_rc}) for --family ${FAMILY}:\n${gen_err}")
endif()

execute_process(
  COMMAND "${PILOT_BIN}" --witness --budget-ms 60000 ${engine_args} "${model}"
  RESULT_VARIABLE check_rc
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err)

if(NOT check_rc EQUAL ${EXPECT_CODE})
  message(FATAL_ERROR
    "expected exit code ${EXPECT_CODE}, got ${check_rc} on ${model}\n"
    "stdout:\n${check_out}\nstderr:\n${check_err}")
endif()

if(EXPECT_CODE EQUAL 0)
  set(verdict "SAFE")
  set(witness_head "0\nb")
else()
  set(verdict "UNSAFE")
  set(witness_head "1\nb")
endif()

if(NOT check_out MATCHES "(^|\n)${verdict}\n")
  message(FATAL_ERROR
    "verdict line '${verdict}' missing from stdout:\n${check_out}")
endif()
string(FIND "${check_out}" "${witness_head}" witness_pos)
if(witness_pos EQUAL -1)
  message(FATAL_ERROR
    "witness block starting '${witness_head}' missing from stdout:\n"
    "${check_out}")
endif()

if(DEFINED ENGINE)
  set(engine_note " (engine ${ENGINE})")
else()
  set(engine_note "")
endif()
message(STATUS
  "cli smoke ${FAMILY}${engine_note}: "
  "verdict ${verdict}, exit ${check_rc}, witness ok")
