/// Property-based tests for the SAT solver: randomized CNFs are checked
/// against a brute-force evaluator, models are verified by evaluation, and
/// unsat cores are re-checked to be genuinely unsatisfiable.
#include <gtest/gtest.h>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace pilot::sat {
namespace {

/// Random k-CNF generator with adjustable density.
Cnf random_cnf(Rng& rng, int num_vars, int num_clauses, int max_len) {
  Cnf cnf;
  cnf.num_vars = num_vars;
  for (int c = 0; c < num_clauses; ++c) {
    const int len = 1 + static_cast<int>(rng.below(max_len));
    std::vector<Lit> clause;
    for (int i = 0; i < len; ++i) {
      const auto v = static_cast<Var>(rng.below(num_vars));
      clause.push_back(Lit::make(v, rng.chance(0.5)));
    }
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

/// Exhaustive satisfiability for small variable counts.
bool brute_force_sat(const Cnf& cnf) {
  const int n = cnf.num_vars;
  for (std::uint64_t bits = 0; bits < (1ULL << n); ++bits) {
    std::vector<bool> assignment(n);
    for (int v = 0; v < n; ++v) assignment[v] = ((bits >> v) & 1ULL) != 0;
    if (cnf.evaluate(assignment)) return true;
  }
  return false;
}

class SatRandomCnf : public ::testing::TestWithParam<int> {};

TEST_P(SatRandomCnf, AgreesWithBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  for (int round = 0; round < 40; ++round) {
    const int vars = 3 + static_cast<int>(rng.below(8));     // 3..10
    const int clauses = 2 + static_cast<int>(rng.below(40)); // 2..41
    const Cnf cnf = random_cnf(rng, vars, clauses, 3);

    Solver solver;
    const bool load_ok = load_into_solver(cnf, solver);
    const SolveResult result = solver.solve();
    const bool expected = brute_force_sat(cnf);

    if (!load_ok) {
      // Top-level conflict during loading: must be genuinely unsat.
      EXPECT_FALSE(expected) << to_dimacs(cnf);
      continue;
    }
    ASSERT_NE(result, SolveResult::kUnknown);
    EXPECT_EQ(result == SolveResult::kSat, expected) << to_dimacs(cnf);

    if (result == SolveResult::kSat) {
      // The model must actually satisfy the formula.
      std::vector<bool> assignment(cnf.num_vars);
      for (int v = 0; v < cnf.num_vars; ++v) {
        assignment[v] = solver.model_value(Lit::make(v)) == l_True;
      }
      EXPECT_TRUE(cnf.evaluate(assignment)) << to_dimacs(cnf);
    }
  }
}

TEST_P(SatRandomCnf, AssumptionCoreIsGenuine) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 5);
  for (int round = 0; round < 25; ++round) {
    const int vars = 4 + static_cast<int>(rng.below(6));
    const Cnf cnf = random_cnf(rng, vars, 3 * vars, 3);
    Solver solver;
    if (!load_into_solver(cnf, solver)) continue;

    // Assume a random subset of literals.
    std::vector<Lit> assumptions;
    for (int v = 0; v < vars; ++v) {
      if (rng.chance(0.6)) assumptions.push_back(Lit::make(v, rng.chance(0.5)));
    }
    const SolveResult result = solver.solve(assumptions);
    ASSERT_NE(result, SolveResult::kUnknown);
    if (result != SolveResult::kUnsat) continue;

    const std::vector<Lit> core = solver.core();
    // 1. Core ⊆ assumptions.
    for (const Lit l : core) {
      EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l),
                assumptions.end());
    }
    // 2. Core is itself sufficient for unsatisfiability.
    Solver fresh;
    ASSERT_TRUE(load_into_solver(cnf, fresh));
    EXPECT_EQ(fresh.solve(core), SolveResult::kUnsat) << to_dimacs(cnf);
  }
}

TEST_P(SatRandomCnf, IncrementalMatchesFromScratch) {
  // Solving after adding clauses in two batches must agree with a fresh
  // solver given everything at once.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 2);
  for (int round = 0; round < 20; ++round) {
    const int vars = 4 + static_cast<int>(rng.below(5));
    const Cnf first = random_cnf(rng, vars, vars, 3);
    const Cnf second = random_cnf(rng, vars, vars, 3);

    Solver incremental;
    const bool ok1 = load_into_solver(first, incremental);
    if (ok1) incremental.solve();  // interleaved solve
    bool ok2 = true;
    for (const auto& clause : second.clauses) {
      ok2 = incremental.add_clause(clause) && ok2;
    }

    Cnf combined = first;
    combined.clauses.insert(combined.clauses.end(), second.clauses.begin(),
                            second.clauses.end());
    const bool expected = brute_force_sat(combined);
    if (!ok1 || !ok2 || !incremental.okay()) {
      EXPECT_FALSE(expected);
      continue;
    }
    EXPECT_EQ(incremental.solve() == SolveResult::kSat, expected)
        << to_dimacs(combined);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandomCnf, ::testing::Range(0, 8));

TEST(SatDeterminism, SameSeedSameStats) {
  auto run = [] {
    Rng rng(99);
    const Cnf cnf = random_cnf(rng, 12, 50, 3);
    Solver s;
    load_into_solver(cnf, s);
    s.solve();
    return s.stats().conflicts;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace pilot::sat
