/// \file solver_manager.hpp
/// SAT query layer of the IC3 engine.
///
/// One incremental solver holds the transition relation T, the initial cube
/// (guarded by act_0), and every lemma clause guarded by the activation
/// literal of its top level.  A query against the logical frame
/// R_i = ⋂_{j≥i} delta(j) simply assumes act_j for all j ≥ i; pushing a
/// lemma re-adds its clause under the higher activation literal.
///
/// The assumption vector is built in a canonical order tuned for the
/// solver's assumption-prefix trail reuse: activation literals first, in
/// *descending* level order (act_top … act_level), then the per-query
/// literals (temporary activation, primed cube).  Queries at nearby levels
/// — the generalization hot loop — then share the longest possible prefix
/// and skip its re-propagation entirely.
///
/// Temporary clauses (the ¬c part of a relative-induction query) get a
/// fresh throw-away activation variable that is excluded from decisions
/// and never assumed again, which leaves the clause inert; the solver is
/// rebuilt from the frames once enough junk has accumulated, carrying
/// saved phases and activities over so the search heuristics survive.
#pragma once

#include <memory>
#include <vector>

#include "ic3/config.hpp"
#include "ic3/cube.hpp"
#include "ic3/frames.hpp"
#include "ic3/stats.hpp"
#include "sat/solver.hpp"
#include "ts/transition_system.hpp"
#include "util/timer.hpp"

namespace pilot::ic3 {

using ts::TransitionSystem;

/// Thrown when a SAT call exhausts the model-checking deadline; caught by
/// the engine, which reports Verdict::kUnknown.
struct TimeoutError {};

class SolverManager {
 public:
  SolverManager(const TransitionSystem& ts, const Config& cfg,
                Ic3Stats& stats);

  /// Makes activation literals for levels 0..k available.
  void ensure_level(std::size_t k);

  /// Adds the lemma clause ¬cube guarded by act(level).  With
  /// Config::sat_inprocess the install runs through the solver's
  /// (self-)subsumption pass, so a stronger lemma retires weaker same-level
  /// clauses in place instead of waiting for the next rebuild.
  void add_lemma_clause(const Cube& cube, std::size_t level);

  /// SAT(R_level ∧ bad)?  On true, the model is available for extraction.
  bool solve_bad(std::size_t level, const Deadline& deadline);

  /// Relative induction: is the clause ¬c inductive relative to R_level,
  /// i.e. UNSAT(R_level ∧ ¬c ∧ T ∧ c′)?
  ///
  /// `cube_clause_in_frame` skips the temporary ¬c clause for push queries,
  /// where the lemma is already part of R_level.
  ///
  /// Returns true iff inductive; then `core_out` (if non-null) receives the
  /// unsat-core-shrunk and initiation-repaired cube (⊆ c).  On false, the
  /// CTI model is available via model_state()/model_inputs().
  bool relative_inductive(const Cube& c, std::size_t level,
                          bool cube_clause_in_frame, Cube* core_out,
                          const Deadline& deadline);

  /// Full latch cube from the last SAT model (primed = successor state X').
  /// Either way the cube is expressed over *current-step* state variables.
  [[nodiscard]] Cube model_state(bool primed) const;

  /// Input literals from the last SAT model.
  [[nodiscard]] std::vector<Lit> model_inputs() const;

  /// Outcome of batch_drop_probe.  On UNSAT, `member_index` names the group
  /// member whose single-drop query the refutation settled and `dropped` is
  /// the core-shrunk, initiation-repaired cube with that member removed.
  /// On SAT, `cti_states`/`cti_inputs` hold one genuine CTI per group
  /// member (the model of that member's variable-disjoint copy).
  struct BatchProbeResult {
    std::size_t member_index = 0;
    Cube dropped;
    std::vector<Cube> cti_states;
    std::vector<std::vector<Lit>> cti_inputs;
  };

  /// Batched generalization probe: ONE solve answering the single-drop
  /// query of EVERY group member at once.  The batch solver holds
  /// Config::gen_batch variable-disjoint copies of R ∧ T (see
  /// TransitionSystem::install_shifted); copy i adds the temporary clause
  /// ¬(cube\mᵢ) and assumes (cube\mᵢ)′, so the conjunction is satisfiable
  /// iff every member's query is.  SAT (returns false) therefore proves NO
  /// member can be dropped and hands back one exact CTI per member —
  /// `group.size()` answers for one solve.  UNSAT means at least one copy
  /// is refuted on its own (the copies share no variables except the
  /// activation guards, which occur in one polarity only, so resolution
  /// cannot mix copies); the final-conflict core identifies that copy and
  /// shrinks its drop.  `frames` rebuilds the batch solver lazily — it is
  /// dropped on rebuild() and when its temporary clauses pile up.
  bool batch_drop_probe(const Cube& cube, const std::vector<Lit>& group,
                        std::size_t level, const Frames& frames,
                        BatchProbeResult* out, const Deadline& deadline);

  /// Rebuilds the solver from scratch with the lemmas in `frames`,
  /// carrying phases/activities over when Config::rebuild_carry_state.
  /// The lemma set is dedup/subsume-swept across levels first (see
  /// reduce_lemma_buckets), so a rebuild shrinks the CNF instead of
  /// replaying install history.
  void rebuild(const Frames& frames);

  /// Rebuilds if enough temporary clauses have been retired; otherwise —
  /// with Config::sat_inprocess — uses the frame boundary to vivify the
  /// newest long learnt clauses (the kept trail is cold here anyway).
  void maybe_rebuild(const Frames& frames);

  /// Aggregate SAT counters across the current solver, the batch-probe
  /// solver, and every solver retired by rebuild() — rebuilds do not reset
  /// the statistics.
  [[nodiscard]] sat::SolverStats sat_stats() const {
    sat::SolverStats out = retired_sat_stats_;
    out += solver_->stats();
    if (batch_solver_) out += batch_solver_->stats();
    return out;
  }

 private:
  [[nodiscard]] Lit act(std::size_t level) const {
    return Lit::make(act_vars_[level]);
  }
  /// Assumptions activating R_level: act_j for all j ≥ level, in
  /// descending level order (see the file comment on prefix reuse).
  [[nodiscard]] std::vector<Lit> frame_assumptions(std::size_t level) const;
  void install_base();
  void carry_solver_state(const sat::Solver& old,
                          const std::vector<Var>& old_acts);
  Cube shrink_with_core(const Cube& c) const;
  void build_batch_solver(const Frames& frames);
  void batch_ensure_level(std::size_t k);
  /// Initiation repair shared by the core shrinkers: if `shrunk` touches I,
  /// restore one literal of `full` that contradicts the initial cube.
  Cube repair_initiation(Cube shrunk, const Cube& full) const;

  const TransitionSystem& ts_;
  const Config& cfg_;
  Ic3Stats& stats_;
  std::unique_ptr<sat::Solver> solver_;
  std::vector<Var> act_vars_;
  std::size_t retired_tmp_ = 0;
  sat::SolverStats retired_sat_stats_;
  // Batch-probe solver: Config::gen_batch variable-disjoint copies of R ∧ T
  // sharing one set of activation guards.  Built lazily from the frames on
  // the first probe, dropped on rebuild() and when its throwaway temporary
  // clauses exceed the rebuild threshold.
  std::unique_ptr<sat::Solver> batch_solver_;
  std::vector<Var> batch_act_vars_;
  std::size_t batch_copies_ = 0;
  std::size_t batch_retired_tmp_ = 0;
  // Scratch for shrink_with_core: flags indexed by Lit::index(), marked for
  // the core's literals and cleared again on exit (avoids an O(|c|·|core|)
  // scan per call).
  mutable std::vector<char> core_mark_;
};

/// Cross-level reduction of a frame-lemma set for SolverManager::rebuild:
/// `buckets[j]` holds the delta-frame cubes at level j.  A cube at level j
/// is dropped when a kept cube at level j' ≥ j subsumes it (its clause is
/// assumed wherever the dropped one would be), and exact duplicates keep
/// only the highest-level copy.  `skipped`, when non-null, receives the
/// number of dropped cubes.  Frames::add_lemma maintains this invariant
/// already, so the sweep is defensive enforcement — exposed as a free
/// function so tests can feed it buckets that violate the invariant.
[[nodiscard]] std::vector<std::vector<Cube>> reduce_lemma_buckets(
    std::vector<std::vector<Cube>> buckets, std::uint64_t* skipped);

}  // namespace pilot::ic3
