/// \file portfolio.hpp
/// First-verdict-wins portfolio scheduler over the backend registry.
///
/// Runs N backends concurrently — one worker thread each, all over the same
/// immutable `TransitionSystem` — and returns as soon as one produces a
/// definitive verdict (SAFE / UNSAFE).  The winner flips a shared
/// `CancelToken`; the losers observe it at their next deadline poll (deep in
/// the SAT search loop) and return kUnknown promptly, so the portfolio's
/// wall-clock is the *fastest* backend's, not the slowest's.
///
/// Soundness: every backend answers the same reachability question, so any
/// disagreement between definitive verdicts would be an engine bug; the
/// scheduler records every finisher's verdict and run_portfolio's caller can
/// cross-check.  Determinism of the *verdict* is therefore independent of
/// which backend happens to win the race.
///
/// Thread-ownership rules:
///   * the TransitionSystem is shared read-only; backends build their own
///     SAT solvers, so no solver state crosses threads;
///   * each Backend instance is constructed and driven by its own worker;
///   * the shared CancelToken and the winner index are the only cross-thread
///     state, both atomic.
#pragma once

#include <string>
#include <vector>

#include "engine/backend.hpp"
#include "engine/lemma_exchange.hpp"
#include "obs/progress.hpp"
#include "ts/transition_system.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace pilot::engine {

struct PortfolioOptions {
  /// Backend names to race; empty → default_portfolio_backends().
  std::vector<std::string> backends;
  std::uint64_t seed = 0;
  /// Extra IC3 knobs forwarded to the IC3-family backends.
  std::optional<ic3::Config> ic3_overrides;
  /// Generalization-strategy spec applied to every IC3-family backend
  /// (empty = each keeps its own; see BackendContext::gen_spec).
  std::string gen_spec;
  /// Lifter ternary-simulation backend / MIC drop-filter overrides applied
  /// to every IC3-family backend (unset = config defaults); see
  /// BackendContext.
  std::optional<ic3::Config::LiftSim> lift_sim;
  std::optional<bool> gen_ternary_filter;
  /// SAT inprocessing / batched-generalization-probe overrides applied to
  /// every backend (unset = config defaults); see BackendContext.
  std::optional<bool> sat_inprocess;
  std::optional<int> gen_batch;
  std::optional<bool> gen_batch_adaptive;
  /// Share generalized lemmas between the racing backends through a
  /// LemmaExchange hub; every import is re-validated by the importer, so
  /// verdicts stay sound and deterministic.
  bool share_lemmas = false;
  /// Live-progress monitor (non-owning, may be null): each backend gets its
  /// own named channel so the heartbeat shows a line per racer — a wedged
  /// backend is visible as a flat 0 q/s line while it is wedged.
  obs::ProgressMonitor* progress = nullptr;
  /// Gate every definitive verdict on its certificate
  /// (cert/certificate.hpp): a backend only claims the win once its
  /// invariant / k-induction bound / witness re-checks under the
  /// independent checker.  A failed check quarantines that backend's
  /// result — logged, counted, and excluded from winner selection — while
  /// the race continues with everyone else.
  bool certify = true;
  /// Property index certificates are emitted against (witness "b<n>" line).
  std::size_t property_index = 0;
};

/// Per-backend outcome of one race, in spec order.
struct BackendTiming {
  std::string name;
  ic3::Verdict verdict = ic3::Verdict::kUnknown;
  double seconds = 0.0;
  bool winner = false;
  /// kUnknown because the winner's stop request (or an outer cancel)
  /// aborted this backend — as opposed to its own timeout/bound.
  bool cancelled = false;
  /// Lemma-exchange traffic of this backend (zero when exchange is off or
  /// the backend is not IC3-family).
  std::uint64_t lemmas_published = 0;
  std::uint64_t lemmas_imported = 0;
  std::uint64_t lemmas_rejected = 0;
  /// This backend produced a definitive verdict whose certificate failed
  /// the independent check — the verdict was discarded, not raced.
  bool quarantined = false;
  /// Why the certificate check failed (empty unless quarantined).
  std::string quarantine_reason;
};

struct PortfolioResult {
  /// The winning backend's result; verdict kUnknown when nobody solved the
  /// instance within the deadline.
  EngineResult result;
  /// Name of the winning backend; empty when there is no winner.
  std::string winner;
  std::vector<BackendTiming> timings;
  /// Hub-level exchange counters; all zero when share_lemmas was off.
  LemmaExchangeStats exchange;
};

/// The default race: the two strongest IC3 configurations plus the
/// bug-finding and shallow-proof specialists.
[[nodiscard]] const std::vector<std::string>& default_portfolio_backends();

/// Parses a "+"-separated backend list ("ic3-ctg-pl+bmc+kind").  Throws
/// std::invalid_argument on an empty spec and on unknown or duplicate
/// names; race the default mix by leaving PortfolioOptions::backends empty
/// instead.
[[nodiscard]] std::vector<std::string> parse_portfolio_spec(
    const std::string& spec);

/// A recognized portfolio engine-spec form.
struct PortfolioSpec {
  /// The "-x" form: lemma exchange enabled.
  bool exchange = false;
  /// Parsed backend list; empty = race the default mix.
  std::vector<std::string> backends;
};

/// The ONE matcher for the portfolio engine-spec grammar, shared by every
/// dispatcher (check::check_ts, run_matrix validation, CLI list
/// splitting): "portfolio[:a+b+c]" and "portfolio-x[:a+b+c]".  Returns
/// nullopt when `spec` is not a portfolio form at all (e.g. "ic3-ctg",
/// "portfolio-xyz"); throws std::invalid_argument (via
/// parse_portfolio_spec) when it is one but the backend list is
/// malformed.
[[nodiscard]] std::optional<PortfolioSpec> match_portfolio_spec(
    const std::string& spec);

/// Races the configured backends; first definitive verdict wins and cancels
/// the rest.  `cancel` (nullable) aborts the whole race from outside.
/// Throws std::invalid_argument for unknown backend names — before any
/// thread is spawned.
PortfolioResult run_portfolio(const ts::TransitionSystem& ts,
                              const PortfolioOptions& options,
                              Deadline deadline = {},
                              const CancelToken* cancel = nullptr);

}  // namespace pilot::engine
