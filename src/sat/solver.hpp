/// \file solver.hpp
/// Incremental CDCL SAT solver (MiniSat lineage), tuned for the query
/// pattern IC3 generates.
///
/// Features relevant to the IC3 engine built on top of it:
///   * incremental clause addition and solving under assumptions,
///   * assumption-prefix trail reuse: the trail survives between solve()
///     calls and only the decision levels whose assumptions diverge from
///     the previous call are re-propagated — IC3's long shared activation
///     prefixes (act_j for all j ≥ level) become near-free,
///   * final-conflict analysis producing an unsat core over assumptions
///     (used for cube shrinking and lifting in IC3),
///   * phase hints (IC3 seeds predecessor searches with cube polarities),
///   * cooperative deadlines so model-checking budgets abort SAT calls.
///
/// Algorithmically: two-watched-literal propagation with implicit binary
/// clause watches (2-literal clauses propagate from the watch list alone,
/// never touching the arena), first-UIP conflict analysis with clause
/// minimization, EVSIDS variable activities with an indexed heap, phase
/// saving, Luby restarts, and Glucose-style learnt clause database
/// reduction: LBD ("glue") tracking with glue ≤ 2 protected, ties broken
/// by activity, and clauses used since the last reduction survive one
/// extra round.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sat/clause.hpp"
#include "sat/heap.hpp"
#include "sat/types.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace pilot::sat {

/// Aggregate solver counters, readable at any time.
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnt_literals = 0;
  std::uint64_t minimized_literals = 0;
  std::uint64_t db_reductions = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t solve_calls = 0;
  // --- IC3-shaped hot-path counters ---
  /// solve() calls that reused ≥ 1 assumption level from the kept trail.
  std::uint64_t trail_reuse_hits = 0;
  /// Total assumption decision levels reused across all solve() calls.
  std::uint64_t reused_levels = 0;
  /// Trail literals kept at reuse points: propagations a from-scratch
  /// solver would have redone.
  std::uint64_t saved_propagations = 0;
  /// Implications produced by the implicit binary watch lists.
  std::uint64_t binary_propagations = 0;
  /// Learnt clauses with LBD ≤ 2 ("glue" clauses, never reduced away).
  std::uint64_t glue_learnts = 0;
  /// LBD improvements on reuse in conflict analysis.
  std::uint64_t lbd_updates = 0;
  /// Learnts kept by reduce_db because they were used since the last
  /// reduction (tier protection).
  std::uint64_t protected_learnts = 0;
  // --- inprocessing counters (sat/inprocess.cpp) ---
  /// Problem clauses retired by forward subsumption on clause install.
  std::uint64_t subsumed_clauses = 0;
  /// Problem clauses shortened by self-subsuming resolution on install.
  std::uint64_t strengthened_clauses = 0;
  /// Learnt clauses shortened by vivification.
  std::uint64_t vivified_clauses = 0;
  /// Literals removed from learnt clauses by vivification.
  std::uint64_t vivified_literals = 0;
  /// Root-level units derived by failed-literal probing.
  std::uint64_t probe_failed_literals = 0;
  /// Variables rewritten to their binary-implication SCC representative.
  std::uint64_t scc_merged_vars = 0;

  /// Accumulates `other` into this (used when a solver is rebuilt and its
  /// counters must survive in the aggregate).
  SolverStats& operator+=(const SolverStats& other) {
    decisions += other.decisions;
    propagations += other.propagations;
    conflicts += other.conflicts;
    restarts += other.restarts;
    learnt_literals += other.learnt_literals;
    minimized_literals += other.minimized_literals;
    db_reductions += other.db_reductions;
    gc_runs += other.gc_runs;
    solve_calls += other.solve_calls;
    trail_reuse_hits += other.trail_reuse_hits;
    reused_levels += other.reused_levels;
    saved_propagations += other.saved_propagations;
    binary_propagations += other.binary_propagations;
    glue_learnts += other.glue_learnts;
    lbd_updates += other.lbd_updates;
    protected_learnts += other.protected_learnts;
    subsumed_clauses += other.subsumed_clauses;
    strengthened_clauses += other.strengthened_clauses;
    vivified_clauses += other.vivified_clauses;
    vivified_literals += other.vivified_literals;
    probe_failed_literals += other.probe_failed_literals;
    scc_merged_vars += other.scc_merged_vars;
    return *this;
  }
};

class Solver {
 public:
  Solver();

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  // ----- problem construction ------------------------------------------

  /// Creates a fresh variable and returns it.
  Var new_var();

  /// Number of variables created so far.
  [[nodiscard]] int num_vars() const {
    return static_cast<int>(assigns_.size());
  }

  /// Adds a clause.  Returns false if the formula became trivially
  /// unsatisfiable at the top level.  Duplicate literals are removed and
  /// tautologies are silently accepted.  May be called between solve()
  /// calls without discarding the kept trail: the clause is attached in
  /// place when it has two non-false literals under the current partial
  /// assignment, and the solver backtracks to the root only when forced.
  bool add_clause(std::span<const Lit> literals);
  bool add_clause(std::initializer_list<Lit> literals) {
    return add_clause(std::span<const Lit>(literals.begin(), literals.size()));
  }

  /// Convenience unit/binary/ternary forms.
  bool add_unit(Lit a) { return add_clause({a}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  /// True while no top-level contradiction has been derived.
  [[nodiscard]] bool okay() const { return ok_; }

  // ----- solving ---------------------------------------------------------

  /// Solves under the given assumptions.  Returns kUnknown if the deadline
  /// or conflict budget expires.
  SolveResult solve(std::span<const Lit> assumptions, Deadline deadline = {});
  SolveResult solve() { return solve({}, Deadline{}); }

  /// Restricts the next solve() calls to at most `budget` conflicts
  /// (0 removes the budget).
  void set_conflict_budget(std::uint64_t budget) { conflict_budget_ = budget; }

  /// Value of a literal in the most recent satisfying model.
  [[nodiscard]] LBool model_value(Lit l) const {
    const LBool v = l.var() < static_cast<Var>(model_.size())
                        ? model_[l.var()]
                        : l_Undef;
    return v ^ l.sign();
  }

  /// After an UNSAT answer under assumptions: the subset of assumption
  /// literals whose conjunction was refuted (an unsat core).
  [[nodiscard]] const std::vector<Lit>& core() const { return core_; }

  // ----- hints and configuration ----------------------------------------

  /// Sets the preferred phase picked when the variable is first decided.
  void set_phase(Var v, bool sign) { polarity_[v] = sign; }

  /// Saved phase of a variable (true = negative), for carrying phases
  /// across solver rebuilds.
  [[nodiscard]] bool saved_phase(Var v) const { return polarity_[v] != 0; }

  /// Excludes/includes a variable from decision making.
  void set_decision_var(Var v, bool decide);

  /// Current VSIDS activity of a variable (in the solver's internal,
  /// un-normalized scale — meaningful only relative to max_activity()).
  [[nodiscard]] double activity(Var v) const { return activity_[v]; }
  [[nodiscard]] double max_activity() const;

  /// Seeds a variable's activity (e.g. imported from a retired solver).
  /// Callers should normalize against the source solver's max_activity()
  /// so the imported values sit in [0, 1] relative to fresh bumps.
  void set_activity(Var v, double a);

  /// Enables/disables assumption-prefix trail reuse (default on).
  /// Disabling backtracks to the root immediately, so verdict-equivalence
  /// tests can flip the knob between calls.
  void set_trail_reuse(bool on);
  [[nodiscard]] bool trail_reuse() const { return trail_reuse_; }

  /// Random seed for occasional randomized decisions.
  void set_seed(std::uint64_t seed) { rng_ = Rng(seed); }

  /// Fraction of decisions made randomly (default 0).
  void set_random_decision_freq(double freq) { random_decision_freq_ = freq; }

  [[nodiscard]] const SolverStats& stats() const { return stats_; }

  /// Top-level simplification: removes satisfied clauses.  Cheap; safe to
  /// call between solve()s (drops the kept trail).
  void simplify();

  // ----- inprocessing (sat/inprocess.cpp) -------------------------------

  /// Enables inprocessing: exact occurrence lists over the problem clauses
  /// are maintained from this point on so add_clause_subsuming() can run
  /// occurrence-driven (self-)subsumption.  Building the lists over clauses
  /// already present costs one pass over their literals.
  void set_inprocess(bool on);
  [[nodiscard]] bool inprocess_enabled() const { return inprocess_; }

  /// add_clause() preceded by an inprocessing pass against the problem
  /// clauses: forward subsumption retires clauses the new one subsumes, and
  /// self-subsuming resolution strengthens clauses the new one resolves
  /// into a shorter form.  Falls back to plain add_clause() while
  /// inprocessing is disabled.  Locked clauses (reasons on the trail) are
  /// never touched — removing a reason mid-trail is unsound.
  bool add_clause_subsuming(std::span<const Lit> literals);

  /// Vivifies up to `max_clauses` of the newest long learnt clauses at the
  /// root: each clause is detached, its negated literals assumed one by
  /// one, and the clause shortened when propagation yields a conflict or an
  /// implied literal.  Drops the kept trail (call at rebuild/frame
  /// boundaries, not between hot queries).  Returns clauses shortened.
  std::size_t vivify_learnts(std::size_t max_clauses);

  /// Failed-literal probing and (optionally) binary-implication SCC
  /// collapsing at the root.  Probing assumes each unassigned literal with
  /// binary successors and asserts its negation when propagation conflicts;
  /// a per-solver watermark limits each call to variables created since the
  /// last one.  SCC collapsing rewrites literals in long problem clauses to
  /// their cycle representative; the defining binary clauses are kept so
  /// propagation still assigns the merged variables and models stay
  /// complete.  Drops the kept trail.  Returns okay().
  bool probe_and_collapse(bool collapse_scc, std::size_t max_probes);

  /// Problem/learnt clause counts (observability for tests and benches).
  [[nodiscard]] std::size_t num_clauses() const { return clauses_.size(); }
  [[nodiscard]] std::size_t num_learnts() const { return learnts_.size(); }

 private:
  struct Watcher {
    ClauseRef cref = kClauseRefUndef;
    Lit blocker = kLitUndef;
  };

  /// Binary clauses are watched implicitly: the other literal lives in the
  /// watcher itself, so propagation never dereferences the arena.  The
  /// clause reference is kept only for reasons and conflict analysis.
  struct BinWatcher {
    Lit other = kLitUndef;
    ClauseRef cref = kClauseRefUndef;
  };

  struct VarData {
    ClauseRef reason = kClauseRefUndef;
    std::int32_t level = 0;
  };

  // --- assignment handling ---
  [[nodiscard]] LBool value(Lit l) const {
    return assigns_[l.var()] ^ l.sign();
  }
  [[nodiscard]] LBool value(Var v) const { return assigns_[v]; }
  [[nodiscard]] std::int32_t decision_level() const {
    return static_cast<std::int32_t>(trail_lim_.size());
  }
  [[nodiscard]] std::int32_t level(Var v) const { return vardata_[v].level; }
  [[nodiscard]] ClauseRef reason(Var v) const { return vardata_[v].reason; }
  /// True when the literal is fixed at the root level (decision level 0) —
  /// the only assignments clause construction may simplify against while a
  /// reused trail is in place.
  [[nodiscard]] bool root_value_is(Lit l, LBool v) const {
    return value(l) == v && level(l.var()) == 0;
  }

  void new_decision_level() {
    trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
  }
  void unchecked_enqueue(Lit p, ClauseRef from = kClauseRefUndef);
  bool enqueue(Lit p, ClauseRef from);
  void cancel_until(std::int32_t target_level);

  // --- search ---
  ClauseRef propagate();
  void analyze(ClauseRef confl, std::vector<Lit>& out_learnt,
               std::int32_t& out_btlevel);
  bool literal_redundant(Lit p, std::uint32_t abstract_levels);
  void analyze_final(Lit p);
  Lit pick_branch_lit();
  SolveResult search(std::int64_t conflicts_allowed, const Deadline& deadline,
                     std::uint64_t conflicts_start);
  [[nodiscard]] std::uint32_t abstract_level(Var v) const {
    return 1u << (level(v) & 31);
  }
  /// Distinct decision levels among `lits` (all currently assigned).
  std::uint32_t compute_lbd(std::span<const Lit> lits);

  // --- activities ---
  void var_bump_activity(Var v);
  void var_decay_activity() { var_inc_ /= var_decay_; }
  void cla_bump_activity(Clause& c);
  void cla_decay_activity() { cla_inc_ /= clause_decay_; }

  // --- clause db ---
  /// Shared clause normalization: sort, dedup, drop root-false literals.
  enum class ClauseNorm { kTrivial, kEmpty, kReady };
  ClauseNorm normalize_clause(std::vector<Lit>& lits) const;
  void attach_clause(ClauseRef ref);
  void detach_clause(ClauseRef ref);
  void remove_clause(ClauseRef ref);
  [[nodiscard]] bool clause_locked(ClauseRef ref) const;
  [[nodiscard]] bool clause_satisfied(const Clause& c) const;
  void reduce_db();
  void remove_satisfied(std::vector<ClauseRef>& refs);
  void collect_garbage_if_needed();
  void relocate_all(ClauseArena& target);

  // --- inprocessing helpers (sat/inprocess.cpp) ---
  void occ_build();
  void occ_attach(ClauseRef ref);
  void occ_detach(ClauseRef ref);
  /// Removes a problem clause entirely: watches, occurrences, clauses_.
  void erase_problem_clause(ClauseRef ref);
  /// (Self-)subsumption of the problem clauses against the normalized new
  /// clause `lits`; returns the number of clauses retired.
  std::size_t subsume_and_strengthen(std::span<const Lit> lits);
  void collapse_binary_sccs();

  // --- state ---
  bool ok_ = true;
  ClauseArena arena_;
  std::vector<ClauseRef> clauses_;  // original problem clauses
  std::vector<ClauseRef> learnts_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index()
  std::vector<std::vector<BinWatcher>> bin_watches_;  // 2-literal clauses

  std::vector<LBool> assigns_;
  std::vector<VarData> vardata_;
  std::vector<char> polarity_;      // saved phase (true = negative)
  std::vector<char> decision_var_;  // eligible for branching
  std::vector<LBool> model_;
  std::vector<Lit> core_;

  std::vector<Lit> trail_;
  std::vector<std::int32_t> trail_lim_;
  std::int32_t qhead_ = 0;

  std::vector<double> activity_;
  ActivityHeap order_heap_{activity_};
  double var_inc_ = 1.0;
  double var_decay_ = 0.95;
  double cla_inc_ = 1.0;
  double clause_decay_ = 0.999;

  std::vector<Lit> assumptions_;
  // Assumptions of the previous solve(): decision levels 1..k of the kept
  // trail correspond 1:1 to prev_assumptions_[0..k-1], so the next call
  // backtracks only to the first diverging assumption.
  std::vector<Lit> prev_assumptions_;
  bool trail_reuse_ = true;

  // analyze() scratch space
  std::vector<char> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_clear_;

  // compute_lbd() scratch: per-level stamps versioned by a counter.
  std::vector<std::uint64_t> lbd_stamp_;
  std::uint64_t lbd_counter_ = 0;

  double max_learnts_ = 0.0;
  double learnt_size_adjust_confl_ = 100.0;
  int learnt_size_adjust_cnt_ = 100;

  std::uint64_t conflict_budget_ = 0;  // 0 = unlimited
  double random_decision_freq_ = 0.0;
  Rng rng_{0x12345678};

  // --- inprocessing state (sat/inprocess.cpp) ---
  bool inprocess_ = false;
  /// Exact occurrence lists over *problem* clauses, by Lit::index().
  std::vector<std::vector<ClauseRef>> occs_;
  /// Scratch literal marks for subset tests, by Lit::index().
  std::vector<char> inproc_mark_;
  /// Variables below this were already probed by probe_and_collapse().
  Var probe_watermark_ = 0;

  SolverStats stats_;
};

}  // namespace pilot::sat
