#include "obs/phase.hpp"

#include <cstdio>
#include <mutex>

namespace pilot::obs {
namespace {

constexpr std::array<const char*, kPhaseCount> kPhaseNames = {
    "block",        "generalize", "predict",    "propagate",
    "lift",         "rebuild",    "sat_solve",  "sat_inprocess",
    "sat_vivify",   "unroll",     "exchange",
};

}  // namespace

const char* phase_name(Phase phase) {
  const auto index = static_cast<std::size_t>(phase);
  return index < kPhaseCount ? kPhaseNames[index] : "?";
}

std::optional<Phase> phase_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (name == kPhaseNames[i]) return static_cast<Phase>(i);
  }
  return std::nullopt;
}

PhaseProfile& PhaseProfile::operator+=(const PhaseProfile& other) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    seconds[i] += other.seconds[i];
    calls[i] += other.calls[i];
  }
  return *this;
}

bool PhaseProfile::empty() const {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (calls[i] != 0) return false;
  }
  return true;
}

std::string PhaseProfile::table(double total_seconds) const {
  std::string out;
  out += "phase           calls        seconds   % of total\n";
  char line[128];
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (calls[i] == 0) continue;
    const double pct =
        total_seconds > 0.0 ? 100.0 * seconds[i] / total_seconds : 0.0;
    std::snprintf(line, sizeof(line), "%-14s %6llu %14.3f %11.1f%%\n",
                  kPhaseNames[i], static_cast<unsigned long long>(calls[i]),
                  seconds[i], pct);
    out += line;
  }
  out += "(phases nest — block contains generalize/lift, which contain "
         "sat_solve — so rows overlap and do not sum to the total)\n";
  return out;
}

std::uint32_t PhaseScope::phase_zone_id(Phase phase) {
  // Interned once for all phases; the per-call cost is an index load.
  static const std::array<std::uint32_t, kPhaseCount> ids = [] {
    std::array<std::uint32_t, kPhaseCount> table{};
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      table[i] = intern_name(kPhaseNames[i]);
    }
    return table;
  }();
  const auto index = static_cast<std::size_t>(phase);
  return index < kPhaseCount ? ids[index] : 0;
}

}  // namespace pilot::obs
