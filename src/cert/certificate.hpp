/// \file certificate.hpp
/// Independently checkable verdict certificates.
///
/// Every definitive verdict the engines produce reduces to a small artifact
/// that a checker with *no shared code path* can validate:
///  * SAFE via IC3/PDR   → a clausal inductive invariant over the latches
///    (the property ∧ proven frame clauses of the fixpoint frame), plus an
///    optional self-contained AIGER certificate circuit whose validity is
///    three combinational checks: Init ⊆ Inv, Inv ∧ T ⇒ Inv′, Inv ⇒ ¬Bad.
///  * SAFE via k-induction → the bound k and whether the simple-path
///    strengthening was used; re-checkable by re-running the base cases
///    0..k and the step query at k.
///  * UNSAFE → the HWMCC witness text, re-checkable *solver-free* by
///    replaying it through aig::BitSimulator and confirming the bad output
///    fires.
///
/// `check()` deliberately runs a different solver configuration than the
/// engines (trail reuse off, inprocessing off, perturbed seed with random
/// decisions, and a two-frame Unroller encoding instead of the engines'
/// SolverManager install) so a bug in the optimized hot path cannot vouch
/// for itself.  Certificates serialize to a line-oriented text format over
/// latch *indices*, which `TransitionSystem::from_aig` reproduces
/// deterministically — a certificate stays valid across processes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "ic3/engine.hpp"
#include "ic3/witness.hpp"
#include "ts/transition_system.hpp"

namespace pilot::cert {

struct Certificate {
  enum class Kind { kInvariant, kKinduction, kWitness };

  Kind kind = Kind::kInvariant;
  std::size_t property_index = 0;
  /// Latch count of the model the certificate was emitted for; a mismatch
  /// at check time rejects the certificate before any solving.
  std::size_t num_latches = 0;

  /// kInvariant: the invariant clauses, each literal encoded as
  /// ±(latch_index + 1) — positive means "latch is 1" satisfies the clause.
  /// The property is implicit: check() verifies clauses ∧ bad is UNSAT.
  std::vector<std::vector<int>> clauses;

  /// kKinduction: the bound the step query closed at, and whether the
  /// simple-path (all states distinct) strengthening was in force.
  int k = -1;
  bool simple_path = true;

  /// kWitness: the HWMCC/AIGER witness text ("1\nb<idx>\n<latches>\n...").
  std::string witness;
};

[[nodiscard]] const char* to_string(Certificate::Kind kind);

// ----- emission --------------------------------------------------------------

/// Clausal certificate from an IC3-style inductive invariant.  Throws
/// std::invalid_argument if a lemma literal is not a state variable.
[[nodiscard]] Certificate from_invariant(const ts::TransitionSystem& ts,
                                         const ic3::InductiveInvariant& inv,
                                         std::size_t property_index = 0);

/// k-induction certificate (k ≥ 0).
[[nodiscard]] Certificate from_kinduction(const ts::TransitionSystem& ts,
                                          int k, bool simple_path,
                                          std::size_t property_index = 0);

/// Witness certificate wrapping the HWMCC rendering of an UNSAFE trace.
[[nodiscard]] Certificate from_trace(const ts::TransitionSystem& ts,
                                     const ic3::Trace& trace,
                                     std::size_t property_index = 0);

/// Builds the certificate matching a definitive verdict, or nullopt (with
/// `why_none` set) when the result carries no certifiable payload — e.g. a
/// backend claiming SAFE without an invariant or a k-induction bound.
[[nodiscard]] std::optional<Certificate> from_verdict(
    const ts::TransitionSystem& ts, ic3::Verdict verdict,
    const std::optional<ic3::InductiveInvariant>& invariant,
    const std::optional<ic3::Trace>& trace, int kind_k, bool kind_simple_path,
    std::size_t property_index, std::string* why_none);

// ----- serialization ---------------------------------------------------------

/// Line-oriented text form ("pilot-cert v1" header; see certificate.cpp).
[[nodiscard]] std::string to_text(const Certificate& cert);

/// Parses the text form.  On failure returns nullopt and sets `error` to a
/// message naming the offending line and token.
[[nodiscard]] std::optional<Certificate> parse(const std::string& text,
                                               std::string* error);

/// File variants; `load` reports open/parse failures through `error`.
bool save(const Certificate& cert, const std::string& path);
[[nodiscard]] std::optional<Certificate> load(const std::string& path,
                                              std::string* error);

// ----- independent checking --------------------------------------------------

/// Validates `cert` against `ts` with the independent configuration
/// described in the file comment.  `seed` perturbs the checker's variable
/// order (any value works; pass the run seed so failures reproduce).
[[nodiscard]] ic3::CheckOutcome check(const ts::TransitionSystem& ts,
                                      const Certificate& cert,
                                      std::uint64_t seed = 0);

/// Self-contained AIGER certificate circuit for an invariant certificate:
/// a combinational AIG over (latch values, primary inputs) with three bad
/// outputs — Init ∧ ¬Inv, Inv ∧ ¬Inv′, Inv ∧ Bad — each of which must be
/// unsatisfiable for the certificate to hold.  Any external AIGER SAT tool
/// can discharge them.  Throws std::invalid_argument for other kinds.
[[nodiscard]] aig::Aig certificate_circuit(const ts::TransitionSystem& ts,
                                           const Certificate& cert);

}  // namespace pilot::cert
