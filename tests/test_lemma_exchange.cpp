/// Lemma-exchange tests: hub semantics (per-peer cursors, dedup, capacity
/// cap), engine-side import validation (a garbage lemma must be rejected
/// by the relative-induction check, a sound one installed — and the
/// verdict plus certificate must stay correct either way), and the
/// portfolio determinism gate: 10 races per verdict class with exchange
/// enabled must produce identical verdicts with certifiable witnesses.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "check/checker.hpp"
#include "circuits/families.hpp"
#include "engine/lemma_exchange.hpp"
#include "engine/portfolio.hpp"
#include "ic3/engine.hpp"
#include "ic3/witness.hpp"
#include "ts/transition_system.hpp"

namespace pilot::engine {
namespace {

ic3::Cube cube_of(std::initializer_list<ic3::Lit> lits) {
  return ic3::Cube::from_lits(std::vector<ic3::Lit>(lits));
}

TEST(LemmaExchangeHub, PeersSeeOthersLemmasExactlyOnce) {
  LemmaExchange hub;
  const std::size_t a = hub.add_peer();
  const std::size_t b = hub.add_peer();
  const std::size_t c = hub.add_peer();

  hub.publish(a, cube_of({ic3::Lit::make(ic3::Var{1})}), 2);
  hub.publish(b, cube_of({ic3::Lit::make(ic3::Var{2})}), 3);

  // a sees only b's lemma; b only a's; c both.
  const auto for_a = hub.poll(a);
  ASSERT_EQ(for_a.size(), 1u);
  EXPECT_EQ(for_a[0].level, 3u);
  const auto for_b = hub.poll(b);
  ASSERT_EQ(for_b.size(), 1u);
  EXPECT_EQ(for_b[0].level, 2u);
  EXPECT_EQ(hub.poll(c).size(), 2u);

  // Cursors advanced: nothing new → empty polls.
  EXPECT_TRUE(hub.poll(a).empty());
  EXPECT_TRUE(hub.poll(b).empty());
  EXPECT_TRUE(hub.poll(c).empty());

  // A later publish is delivered from the cursor on.
  hub.publish(c, cube_of({ic3::Lit::make(ic3::Var{3})}), 1);
  EXPECT_EQ(hub.poll(a).size(), 1u);
  EXPECT_EQ(hub.poll(b).size(), 1u);
  EXPECT_TRUE(hub.poll(c).empty());

  const LemmaExchangeStats stats = hub.stats();
  EXPECT_EQ(stats.published, 3u);
  EXPECT_EQ(stats.deduped, 0u);
  EXPECT_EQ(stats.delivered, 6u);
}

TEST(LemmaExchangeHub, DuplicateCubesCrossTheBusOnce) {
  LemmaExchange hub;
  const std::size_t a = hub.add_peer();
  const std::size_t b = hub.add_peer();
  const ic3::Cube c = cube_of({ic3::Lit::make(ic3::Var{1}, true)});
  hub.publish(a, c, 2);
  hub.publish(a, c, 5);  // same cube pushed to a higher level: deduped
  hub.publish(b, c, 3);  // independently rediscovered by the peer: deduped
  EXPECT_EQ(hub.size(), 1u);
  EXPECT_EQ(hub.stats().deduped, 2u);
  EXPECT_EQ(hub.poll(b).size(), 1u);
}

TEST(LemmaExchangeHub, CapacityCapDropsInsteadOfGrowing) {
  LemmaExchange hub(/*max_store=*/2);
  const std::size_t a = hub.add_peer();
  (void)hub.add_peer();
  for (std::int32_t i = 1; i <= 5; ++i) {
    hub.publish(a, cube_of({ic3::Lit::make(ic3::Var{i})}), 1);
  }
  EXPECT_EQ(hub.size(), 2u);
  EXPECT_EQ(hub.stats().dropped_capacity, 3u);
}

// ----- engine-side import validation -----------------------------------------

/// A scripted bus: serves a fixed set of lemmas on the first poll and
/// records what the engine publishes.
class ScriptedBus final : public ic3::LemmaBus {
 public:
  explicit ScriptedBus(std::vector<ic3::SharedLemma> serve)
      : serve_(std::move(serve)) {}

  void publish(const ic3::Cube& cube, std::size_t level) override {
    published_.push_back(ic3::SharedLemma{cube, level});
  }

  [[nodiscard]] std::vector<ic3::SharedLemma> poll() override {
    ++polls_;
    return std::exchange(serve_, {});
  }

  std::vector<ic3::SharedLemma> serve_;
  std::vector<ic3::SharedLemma> published_;
  std::size_t polls_ = 0;
};

TEST(LemmaExchangeImport, ValidatesBeforeInstallAndRejectsGarbage) {
  // Token ring with one token: "two tokens at once" cubes are sound
  // lemmas; a "token at position 0" cube blocks the *initial state* and a
  // "no token anywhere would stay bad" style cube is simply not inductive.
  const auto cc = circuits::token_ring_safe(6);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);

  std::vector<ic3::SharedLemma> serve;
  // Sound: two tokens (positions 2 and 4) — mutually exclusive by
  // construction, inductive relative to any frame.
  serve.push_back(ic3::SharedLemma{
      cube_of({ic3::Lit::make(ts.state_var(2)),
               ic3::Lit::make(ts.state_var(4))}),
      1});
  // Garbage 1: intersects the initial states (token at 0 IS the init
  // state shape) — must be rejected by the initiation check.
  serve.push_back(ic3::SharedLemma{
      cube_of({ic3::Lit::make(ts.state_var(0))}), 1});
  // Garbage 2: "token at position 1" alone — the ring rotates a token
  // into position 1 from position 0, so ¬cube is not relative-inductive.
  serve.push_back(ic3::SharedLemma{
      cube_of({ic3::Lit::make(ts.state_var(1))}), 1});

  ScriptedBus bus(std::move(serve));
  ic3::Config cfg;
  cfg.lemma_bus = &bus;
  ic3::Engine engine(ts, cfg);
  const ic3::Result r = engine.check(Deadline::in_seconds(60));

  ASSERT_EQ(r.verdict, ic3::Verdict::kSafe);
  ASSERT_TRUE(r.invariant.has_value());
  EXPECT_TRUE(ic3::check_invariant(ts, *r.invariant).ok);
  EXPECT_GE(bus.polls_, 1u);
  // The sound lemma was imported (or was already subsumed — either way it
  // never counts as rejected); both garbage lemmas were rejected.
  EXPECT_EQ(r.stats.num_exchange_imported +
                r.stats.num_exchange_skipped,
            1u);
  EXPECT_EQ(r.stats.num_exchange_rejected, 2u);
  // The engine published its own lemmas to the bus as it installed them.
  EXPECT_GT(bus.published_.size(), 0u);
  EXPECT_EQ(r.stats.num_exchange_published, bus.published_.size());
}

TEST(LemmaExchangeImport, ImportedLemmasAreNotRepublished) {
  const auto cc = circuits::token_ring_safe(5);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  const ic3::Cube sound = cube_of({ic3::Lit::make(ts.state_var(1)),
                                   ic3::Lit::make(ts.state_var(3))});
  ScriptedBus bus({ic3::SharedLemma{sound, 1}});
  ic3::Config cfg;
  cfg.lemma_bus = &bus;
  ic3::Engine engine(ts, cfg);
  const ic3::Result r = engine.check(Deadline::in_seconds(60));
  ASSERT_EQ(r.verdict, ic3::Verdict::kSafe);
  // Imports are installed with publishing suppressed, so every installed
  // lemma is counted exactly once: self-derived ones on the bus, imported
  // ones in the import counter.  (A ping-ponged import would make
  // published + imported exceed the installed-lemma count.)
  EXPECT_EQ(r.stats.num_lemmas,
            r.stats.num_exchange_published + r.stats.num_exchange_imported);
  EXPECT_EQ(bus.published_.size(), r.stats.num_exchange_published);
}

// ----- portfolio integration -------------------------------------------------

TEST(PortfolioExchange, RunsAndReportsTraffic) {
  const auto cc = circuits::token_ring_safe(6);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  PortfolioOptions po;
  po.backends = {"ic3-ctg-pl", "ic3-down-pl", "ic3-dyn"};
  po.share_lemmas = true;
  const PortfolioResult pr = run_portfolio(ts, po, Deadline::in_seconds(60));
  EXPECT_EQ(pr.result.verdict, ic3::Verdict::kSafe);
  // Someone published; per-backend rows carry the traffic counters.
  std::uint64_t published = 0;
  for (const BackendTiming& t : pr.timings) published += t.lemmas_published;
  EXPECT_GT(published, 0u);
  EXPECT_GT(pr.exchange.published, 0u);
}

TEST(PortfolioExchange, VerdictDeterministicOverTenRacesSafe) {
  const auto cc = circuits::token_ring_safe(6);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  for (int round = 0; round < 10; ++round) {
    PortfolioOptions po;
    po.backends = {"ic3-ctg-pl", "ic3-down-pl", "ic3-dyn"};
    po.share_lemmas = true;
    const PortfolioResult pr =
        run_portfolio(ts, po, Deadline::in_seconds(60));
    ASSERT_EQ(pr.result.verdict, ic3::Verdict::kSafe) << "round " << round;
    ASSERT_FALSE(pr.winner.empty());
    if (pr.result.invariant.has_value()) {
      EXPECT_TRUE(ic3::check_invariant(ts, *pr.result.invariant).ok)
          << "round " << round << " winner " << pr.winner;
    }
  }
}

TEST(PortfolioExchange, VerdictDeterministicOverTenRacesUnsafe) {
  const auto cc = circuits::counter_unsafe(6, 10);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  for (int round = 0; round < 10; ++round) {
    PortfolioOptions po;
    po.backends = {"ic3-ctg-pl", "ic3-dyn", "bmc"};
    po.share_lemmas = true;
    const PortfolioResult pr =
        run_portfolio(ts, po, Deadline::in_seconds(60));
    ASSERT_EQ(pr.result.verdict, ic3::Verdict::kUnsafe) << "round " << round;
    ASSERT_TRUE(pr.result.trace.has_value());
    EXPECT_TRUE(ic3::check_trace(ts, *pr.result.trace).ok)
        << "round " << round << " winner " << pr.winner;
  }
}

}  // namespace
}  // namespace pilot::engine

namespace pilot::check {
namespace {

TEST(CheckerExchange, PortfolioXSpecEnablesExchange) {
  const auto cc = circuits::token_ring_safe(5);
  CheckOptions opts;
  opts.engine_spec = "portfolio-x:ic3-ctg-pl+ic3-dyn";
  const CheckResult r = check_aig(cc.aig, opts);
  EXPECT_EQ(r.verdict, ic3::Verdict::kSafe);
  ASSERT_EQ(r.backend_timings.size(), 2u);
  std::uint64_t published = 0;
  for (const engine::BackendTiming& t : r.backend_timings) {
    published += t.lemmas_published;
  }
  EXPECT_GT(published, 0u);
  EXPECT_GT(r.exchange.published, 0u);
}

TEST(CheckerExchange, PlainPortfolioKeepsExchangeOff) {
  const auto cc = circuits::token_ring_safe(5);
  CheckOptions opts;
  opts.engine_spec = "portfolio:ic3-ctg-pl+ic3-dyn";
  const CheckResult r = check_aig(cc.aig, opts);
  EXPECT_EQ(r.verdict, ic3::Verdict::kSafe);
  EXPECT_EQ(r.exchange.published, 0u);
  for (const engine::BackendTiming& t : r.backend_timings) {
    EXPECT_EQ(t.lemmas_published, 0u);
  }
}

TEST(CheckerExchange, BadPortfolioXSpecThrowsWithNames) {
  const auto cc = circuits::mutex_safe();
  CheckOptions opts;
  opts.engine_spec = "portfolio-x:bmc+nope";
  try {
    (void)check_aig(cc.aig, opts);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nope"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ic3-ctg-pl"), std::string::npos)
        << "registered names missing from: " << msg;
  }
}

}  // namespace
}  // namespace pilot::check
