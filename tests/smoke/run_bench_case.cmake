# End-to-end smoke check for the `pilot-bench` campaign runner, driven by
# CTest.
#
# Invocation (see tests/CMakeLists.txt):
#   cmake -DPILOT_BENCH_BIN=<path> -DCORPUS_DIR=<tests/corpus>
#         -DBASELINE=<committed baseline.jsonl> -DWORK_DIR=<scratch dir>
#         -P run_bench_case.cmake
#
# Steps:
#   1. `pilot-bench run --corpus CORPUS_DIR --engines ic3-ctg+bmc` into a
#      fresh runs.jsonl — exercises manifest ingestion, the matrix runner,
#      and the JSONL writer; must exit 0 (no expectation mismatches).
#   2. `pilot-bench diff BASELINE runs.jsonl` — the fresh campaign against
#      the committed baseline; verdicts are deterministic, so this must be
#      clean (exit 0).
#   3. `pilot-bench diff runs.jsonl` — single-file mode re-runs the campaign
#      recorded in the rows and compares; identical re-run must exit 0.
#   4. Inject a verdict flip (SAFE → UNSAFE) into a copy and diff again —
#      must exit non-zero and name the flip.

foreach(required PILOT_BENCH_BIN CORPUS_DIR BASELINE WORK_DIR)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "run_bench_case.cmake: missing -D${required}")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(runs "${WORK_DIR}/runs.jsonl")
file(REMOVE "${runs}")

# --- 1. run the campaign ------------------------------------------------------
execute_process(
  COMMAND "${PILOT_BENCH_BIN}" run --corpus "${CORPUS_DIR}"
          --engines ic3-ctg+bmc --budget-ms 60000 --out "${runs}"
  RESULT_VARIABLE run_rc
  ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR
    "pilot-bench run failed (exit ${run_rc}):\n${run_err}")
endif()

# --- 2. diff against the committed baseline -----------------------------------
execute_process(
  COMMAND "${PILOT_BENCH_BIN}" diff "${BASELINE}" "${runs}"
  RESULT_VARIABLE diff_rc
  OUTPUT_VARIABLE diff_out
  ERROR_VARIABLE diff_err)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
    "diff against committed baseline regressed (exit ${diff_rc}):\n"
    "${diff_out}\n${diff_err}")
endif()

# --- 3. single-file diff: re-run the recorded campaign ------------------------
execute_process(
  COMMAND "${PILOT_BENCH_BIN}" diff "${runs}"
  RESULT_VARIABLE rerun_rc
  OUTPUT_VARIABLE rerun_out
  ERROR_VARIABLE rerun_err)
if(NOT rerun_rc EQUAL 0)
  message(FATAL_ERROR
    "identical re-run diff should be clean (exit ${rerun_rc}):\n"
    "${rerun_out}\n${rerun_err}")
endif()

# --- 4. an injected verdict flip must fail the diff ---------------------------
file(READ "${runs}" runs_text)
string(REPLACE "\"verdict\":\"SAFE\"" "\"verdict\":\"UNSAFE\""
       tampered_text "${runs_text}")
if(tampered_text STREQUAL runs_text)
  message(FATAL_ERROR "no SAFE verdict found to tamper with in ${runs}")
endif()
set(tampered "${WORK_DIR}/tampered.jsonl")
file(WRITE "${tampered}" "${tampered_text}")

execute_process(
  COMMAND "${PILOT_BENCH_BIN}" diff "${runs}" "${tampered}"
  RESULT_VARIABLE flip_rc
  OUTPUT_VARIABLE flip_out)
if(flip_rc EQUAL 0)
  message(FATAL_ERROR
    "injected verdict flip was not detected:\n${flip_out}")
endif()
if(NOT flip_out MATCHES "VERDICT FLIP")
  message(FATAL_ERROR
    "flip diff failed but did not report the flip:\n${flip_out}")
endif()

message(STATUS
  "bench smoke: run ok, baseline diff clean, re-run diff clean, "
  "injected flip detected (exit ${flip_rc})")
