#include "ic3/stats.hpp"

#include <algorithm>
#include <sstream>

namespace pilot::ic3 {

void GenStrategyStats::record(bool success_, std::uint64_t queries_,
                              std::uint64_t dropped_) {
  ++attempts;
  successes += success_ ? 1 : 0;
  queries += queries_;
  dropped_lits += dropped_;
  const GenOutcome outcome{success_, static_cast<std::uint32_t>(queries_),
                           static_cast<std::uint32_t>(dropped_)};
  if (window.size() < kGenWindowCapacity) {
    window.push_back(outcome);
    window_next = window.size() % kGenWindowCapacity;
  } else {
    window[window_next] = outcome;
    window_next = (window_next + 1) % kGenWindowCapacity;
  }
}

namespace {

/// Applies `fn` to the newest min(n, stored) outcomes of the ring.
template <typename Fn>
std::size_t for_newest(const std::vector<GenOutcome>& window,
                       std::size_t next, std::size_t n, Fn&& fn) {
  const std::size_t count = std::min(n, window.size());
  for (std::size_t i = 0; i < count; ++i) {
    // Walk backwards from the newest entry (next-1), wrapping.
    const std::size_t idx = (next + window.size() - 1 - i) % window.size();
    fn(window[idx]);
  }
  return count;
}

}  // namespace

double GenStrategyStats::window_success_rate(std::size_t n) const {
  std::size_t ok = 0;
  const std::size_t count = for_newest(
      window, window_next, n, [&](const GenOutcome& o) { ok += o.success; });
  return count == 0 ? 0.0
                    : static_cast<double>(ok) / static_cast<double>(count);
}

double GenStrategyStats::window_avg_queries(std::size_t n) const {
  std::uint64_t total = 0;
  const std::size_t count = for_newest(
      window, window_next, n, [&](const GenOutcome& o) { total += o.queries; });
  return count == 0 ? 0.0
                    : static_cast<double>(total) / static_cast<double>(count);
}

GenStrategyStats& Ic3Stats::gen_strategy(const std::string& name) {
  for (GenStrategyStats& s : gen_strategies) {
    if (s.name == name) return s;
  }
  gen_strategies.emplace_back();
  gen_strategies.back().name = name;
  return gen_strategies.back();
}

const GenStrategyStats* Ic3Stats::find_gen_strategy(
    const std::string& name) const {
  for (const GenStrategyStats& s : gen_strategies) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

void Ic3Stats::record_gen_outcome(const std::string& name, bool success,
                                  std::uint64_t queries, std::uint64_t dropped) {
  gen_strategy(name).record(success, queries, dropped);
}

std::string Ic3Stats::summary() const {
  std::ostringstream oss;
  oss << "frames=" << max_frame << " lemmas=" << num_lemmas
      << " obligations=" << num_obligations << " ctis=" << num_ctis
      << " generalizations=" << num_generalizations
      << " mic_queries=" << num_mic_queries << " drops=" << num_mic_drops;
  if (num_prediction_queries > 0 || num_found_failed_parents > 0) {
    oss << " | predict: N_p=" << num_prediction_queries
        << " N_sp=" << num_successful_predictions
        << " N_fp=" << num_found_failed_parents
        << " SR_lp=" << sr_lp() << " SR_fp=" << sr_fp()
        << " SR_adv=" << sr_adv();
  }
  if (num_filter_checks > 0 || num_packed_sim_words > 0) {
    oss << " | ternary: filter_checks=" << num_filter_checks
        << " solves_saved=" << num_filter_solves_saved
        << " witnesses=" << num_filter_witnesses
        << " blocking_witnesses=" << num_filter_blocking_witnesses
        << " packed_words=" << num_packed_sim_words;
  }
  if (num_batched_drop_solves > 0) {
    oss << " | batch: drop_solves=" << num_batched_drop_solves
        << " drop_answers=" << num_batched_drop_answers;
  }
  if (num_adaptive_batch_updates > 0) {
    oss << " | batch-adaptive: updates=" << num_adaptive_batch_updates
        << " avg_width="
        << static_cast<double>(adaptive_batch_width_sum) /
               static_cast<double>(num_adaptive_batch_updates);
  }
  for (const GenStrategyStats& s : gen_strategies) {
    oss << " | gen[" << s.name << "]: attempts=" << s.attempts
        << " successes=" << s.successes << " queries=" << s.queries
        << " avg_dropped=" << s.avg_dropped();
    if (s.switches > 0) oss << " switches=" << s.switches;
  }
  if (num_strategy_switches > 0) {
    oss << " | dynamic: switches=" << num_strategy_switches;
  }
  if (num_exchange_published > 0 || num_exchange_imported > 0 ||
      num_exchange_rejected > 0 || num_exchange_skipped > 0) {
    oss << " | exchange: published=" << num_exchange_published
        << " imported=" << num_exchange_imported
        << " rejected=" << num_exchange_rejected
        << " skipped=" << num_exchange_skipped;
  }
  if (num_cert_checks > 0) {
    oss << " | cert: checks=" << num_cert_checks
        << " failures=" << num_cert_failures;
  }
  if (sat_solve_calls > 0) {
    oss << " | sat: calls=" << sat_solve_calls
        << " props=" << sat_propagations
        << " conflicts=" << sat_conflicts
        << " reuse_hits=" << sat_trail_reuse_hits
        << " saved_props=" << sat_saved_propagations
        << " bin_props=" << sat_binary_propagations
        << " glue=" << sat_glue_learnts
        << " reductions=" << sat_db_reductions
        << " rebuilds=" << num_solver_rebuilds;
    if (num_rebuild_carried_phases > 0) {
      oss << " carried_vars=" << num_rebuild_carried_phases;
    }
  }
  if (sat_subsumed_clauses > 0 || sat_strengthened_clauses > 0 ||
      sat_vivified_literals > 0 || sat_probe_failed_literals > 0 ||
      sat_scc_merged_vars > 0 || num_rebuild_subsumed > 0) {
    oss << " | inprocess: subsumed=" << sat_subsumed_clauses
        << " strengthened=" << sat_strengthened_clauses
        << " vivified_lits=" << sat_vivified_literals
        << " probe_failed_lits=" << sat_probe_failed_literals
        << " scc_merged=" << sat_scc_merged_vars;
    if (num_rebuild_subsumed > 0) {
      oss << " rebuild_skips=" << num_rebuild_subsumed;
    }
  }
  return oss.str();
}

}  // namespace pilot::ic3
