/// \file manifest.hpp
/// On-disk AIGER corpus ingestion: the manifest format, the directory
/// scanner, and the parse-metadata cache.
///
/// A corpus is a directory of `.aig`/`.aag` files plus an optional
/// `manifest.json` describing each case:
///
///   {"version": 1,
///    "cases": [{"name": "ring7", "path": "ring7.aag", "expect": "safe",
///               "tags": ["hwmcc17"], "cex_depth": -1}, ...]}
///
/// Without a manifest, every `.aig`/`.aag` file under the directory (sorted,
/// non-recursive) becomes a case with expected status "unknown".  Each scan
/// validates entries through the aig:: reader and records latch/AND/input
/// counts plus an FNV-1a content hash into `.pilot-corpus-cache.json`
/// beside the manifest, so re-scans of unchanged files (same size + mtime)
/// skip the parse entirely — the property that makes repeated `pilot-bench`
/// campaigns over a multi-hundred-case HWMCC checkout cheap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"

namespace pilot::corpus {

inline constexpr const char* kManifestFilename = "manifest.json";
inline constexpr const char* kCacheFilename = ".pilot-corpus-cache.json";

struct ManifestEntry {
  std::string name;
  std::string path;  // relative to the manifest's directory
  Expected expected = Expected::kUnknown;
  int cex_depth = -1;
  std::vector<std::string> tags;
};

struct Manifest {
  std::string root;  // directory all entry paths are relative to
  std::vector<ManifestEntry> entries;
};

/// Outcome of materializing a manifest into runnable cases.
struct ScanReport {
  std::vector<Case> cases;
  /// One "path: reason" line per entry that failed validation (missing
  /// file, malformed AIGER); failed entries produce no Case.
  std::vector<std::string> errors;
  std::size_t parsed = 0;  // files (re)parsed during this scan
  std::size_t cached = 0;  // files whose metadata came from the cache
};

/// Reads a manifest.json.  Throws std::runtime_error on unreadable or
/// malformed files.
[[nodiscard]] Manifest load_manifest(const std::string& path);

/// Enumerates `.aig`/`.aag` files directly under `dir` (sorted by name)
/// into a manifest with expected status kUnknown.  Throws when `dir` is not
/// a directory.  The cache file and manifest.json itself are skipped.
[[nodiscard]] Manifest scan_directory(const std::string& dir);

/// Writes `manifest.entries` as manifest.json to `path`.
void write_manifest(const Manifest& manifest, const std::string& path);

/// Validates every entry through the AIGER reader, maintaining the
/// parse-metadata cache under manifest.root (set `use_cache` false to force
/// a full re-parse and skip the cache rewrite).
[[nodiscard]] ScanReport load_cases(const Manifest& manifest,
                                    bool use_cache = true);

/// The `--corpus` entry point: `path` may be a manifest file or a corpus
/// directory (manifest.json used when present, directory scan otherwise).
[[nodiscard]] ScanReport load_corpus(const std::string& path);

/// Exports the built-in suite as an on-disk corpus: one AIGER file per case
/// (ASCII `.aag`, or binary `.aig` when `binary`) plus a manifest.json with
/// the construction-guaranteed verdicts.  Returns the written manifest.
Manifest export_suite(circuits::SuiteSize size, const std::string& dir,
                      bool binary = false);

/// 64-bit FNV-1a of `bytes`, rendered as 16 hex digits — the corpus
/// content-hash function.
[[nodiscard]] std::string fnv1a_hex(const std::string& bytes);

}  // namespace pilot::corpus
