#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pilot::sat {
namespace {

/// Luby restart sequence: finite subsequences of the form
/// 1,1,2,1,1,2,4,... scaled by a base factor in search().
double luby(double y, int x) {
  int size = 1;
  int seq = 0;
  while (size < x + 1) {
    seq++;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    seq--;
    x = x % size;
  }
  return std::pow(y, seq);
}

}  // namespace

Solver::Solver() = default;

Var Solver::new_var() {
  const Var v = num_vars();
  watches_.emplace_back();
  watches_.emplace_back();
  bin_watches_.emplace_back();
  bin_watches_.emplace_back();
  assigns_.push_back(l_Undef);
  vardata_.push_back({});
  polarity_.push_back(1);  // MiniSat default: branch on the negative phase
  decision_var_.push_back(1);
  activity_.push_back(0.0);
  seen_.push_back(0);
  order_heap_.reserve_var(v);
  order_heap_.insert(v);
  return v;
}

void Solver::set_decision_var(Var v, bool decide) {
  decision_var_[v] = decide ? 1 : 0;
  if (decide && value(v).is_undef()) order_heap_.insert(v);
}

void Solver::set_activity(Var v, double a) {
  activity_[v] = a;
  order_heap_.update(v);
}

double Solver::max_activity() const {
  double m = 0.0;
  for (const double a : activity_) m = std::max(m, a);
  return m;
}

void Solver::set_trail_reuse(bool on) {
  trail_reuse_ = on;
  if (!on) {
    cancel_until(0);
    prev_assumptions_.clear();
  }
}

Solver::ClauseNorm Solver::normalize_clause(std::vector<Lit>& lits) const {
  std::sort(lits.begin(), lits.end());
  std::size_t j = 0;
  Lit prev = kLitUndef;
  for (const Lit l : lits) {
    assert(l.var() >= 0 && l.var() < num_vars());
    // Only root-level (decision level 0) values may simplify the clause:
    // with trail reuse a partial assumption trail can be in place, and its
    // assignments are not permanent.
    if (root_value_is(l, l_True) || l == ~prev) return ClauseNorm::kTrivial;
    if (!root_value_is(l, l_False) && l != prev) {
      lits[j++] = l;
      prev = l;
    }
  }
  lits.resize(j);
  return lits.empty() ? ClauseNorm::kEmpty : ClauseNorm::kReady;
}

bool Solver::add_clause(std::span<const Lit> literals) {
  if (!ok_) return false;
  std::vector<Lit> lits(literals.begin(), literals.end());
  switch (normalize_clause(lits)) {
    case ClauseNorm::kTrivial:
      return true;
    case ClauseNorm::kEmpty:
      ok_ = false;
      return false;
    case ClauseNorm::kReady:
      break;
  }
  if (lits.size() == 1) {
    // Units live at the root; drop any kept trail first.
    cancel_until(0);
    if (value(lits[0]) == l_True) return true;
    if (value(lits[0]) == l_False) {
      ok_ = false;
      return false;
    }
    unchecked_enqueue(lits[0]);
    ok_ = (propagate() == kClauseRefUndef);
    return ok_;
  }
  if (decision_level() > 0) {
    // Attach in place when two non-false watches exist under the current
    // partial assignment; otherwise the clause would be unit/conflicting
    // mid-trail, so fall back to the root (reuse is lost, soundness kept).
    std::size_t nonfalse = 0;
    for (std::size_t i = 0; i < lits.size() && nonfalse < 2; ++i) {
      if (value(lits[i]) != l_False) std::swap(lits[i], lits[nonfalse++]);
    }
    if (nonfalse < 2) cancel_until(0);
  }
  const ClauseRef ref = arena_.alloc(lits, /*learnt=*/false);
  clauses_.push_back(ref);
  attach_clause(ref);
  if (inprocess_) occ_attach(ref);
  return true;
}

void Solver::attach_clause(ClauseRef ref) {
  const Clause& c = arena_.deref(ref);
  assert(c.size() >= 2);
  if (c.size() == 2) {
    // Implicit binary watch: the partner literal rides in the watcher, so
    // propagation over 2-literal clauses never touches the arena.
    bin_watches_[(~c[0]).index()].push_back({c[1], ref});
    bin_watches_[(~c[1]).index()].push_back({c[0], ref});
    return;
  }
  watches_[(~c[0]).index()].push_back({ref, c[1]});
  watches_[(~c[1]).index()].push_back({ref, c[0]});
}

void Solver::detach_clause(ClauseRef ref) {
  const Clause& c = arena_.deref(ref);
  if (c.size() == 2) {
    auto erase_bin = [&](std::vector<BinWatcher>& ws) {
      for (std::size_t i = 0; i < ws.size(); ++i) {
        if (ws[i].cref == ref) {
          ws[i] = ws.back();
          ws.pop_back();
          return;
        }
      }
      assert(false && "binary watcher not found");
    };
    erase_bin(bin_watches_[(~c[0]).index()]);
    erase_bin(bin_watches_[(~c[1]).index()]);
    return;
  }
  auto erase_from = [&](std::vector<Watcher>& ws) {
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].cref == ref) {
        ws[i] = ws.back();
        ws.pop_back();
        return;
      }
    }
    assert(false && "watcher not found");
  };
  erase_from(watches_[(~c[0]).index()]);
  erase_from(watches_[(~c[1]).index()]);
}

bool Solver::clause_locked(ClauseRef ref) const {
  const Clause& c = arena_.deref(ref);
  return value(c[0]) == l_True && reason(c[0].var()) == ref;
}

bool Solver::clause_satisfied(const Clause& c) const {
  for (const Lit l : c) {
    if (value(l) == l_True) return true;
  }
  return false;
}

void Solver::remove_clause(ClauseRef ref) {
  Clause& c = arena_.deref(ref);
  detach_clause(ref);
  if (inprocess_ && !c.learnt()) occ_detach(ref);
  if (clause_locked(ref)) vardata_[c[0].var()].reason = kClauseRefUndef;
  arena_.free_clause(ref);
}

void Solver::unchecked_enqueue(Lit p, ClauseRef from) {
  assert(value(p).is_undef());
  assigns_[p.var()] = LBool(!p.sign());
  vardata_[p.var()] = {from, decision_level()};
  trail_.push_back(p);
}

void Solver::cancel_until(std::int32_t target_level) {
  if (decision_level() <= target_level) return;
  for (auto c = static_cast<std::int32_t>(trail_.size()) - 1;
       c >= trail_lim_[target_level]; --c) {
    const Var x = trail_[c].var();
    assigns_[x] = l_Undef;
    polarity_[x] = trail_[c].sign() ? 1 : 0;  // phase saving
    if (decision_var_[x]) order_heap_.insert(x);
  }
  qhead_ = trail_lim_[target_level];
  trail_.resize(trail_lim_[target_level]);
  trail_lim_.resize(target_level);
}

ClauseRef Solver::propagate() {
  ClauseRef confl = kClauseRefUndef;
  while (qhead_ < static_cast<std::int32_t>(trail_.size())) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;

    // --- binary clauses: watcher-resident partner literal, no arena ---
    const auto& bws = bin_watches_[p.index()];
    for (const BinWatcher& bw : bws) {
      const LBool v = value(bw.other);
      if (v == l_True) continue;
      if (v == l_False) {
        qhead_ = static_cast<std::int32_t>(trail_.size());
        return bw.cref;
      }
      ++stats_.binary_propagations;
      // Maintain the reason invariant (c[0] = implied literal) so conflict
      // analysis can skip index 0 when walking reasons.
      Clause& c = arena_.deref(bw.cref);
      if (c[0] != bw.other) std::swap(c[0], c[1]);
      unchecked_enqueue(bw.other, bw.cref);
    }

    // --- clauses of three or more literals ---
    auto& ws = watches_[p.index()];
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      // Blocker check avoids touching the clause in the common case.
      if (value(w.blocker) == l_True) {
        ws[j++] = ws[i++];
        continue;
      }
      Clause& c = arena_.deref(w.cref);
      const Lit false_lit = ~p;
      if (c[0] == false_lit) {
        c[0] = c[1];
        c[1] = false_lit;
      }
      assert(c[1] == false_lit);
      ++i;
      const Lit first = c[0];
      const Watcher moved{w.cref, first};
      if (first != w.blocker && value(first) == l_True) {
        ws[j++] = moved;
        continue;
      }
      bool found_watch = false;
      for (std::uint32_t k = 2; k < c.size(); ++k) {
        if (value(c[k]) != l_False) {
          c[1] = c[k];
          c[k] = false_lit;
          watches_[(~c[1]).index()].push_back(moved);
          found_watch = true;
          break;
        }
      }
      if (found_watch) continue;
      // Clause is unit under the current assignment, or conflicting.
      ws[j++] = moved;
      if (value(first) == l_False) {
        confl = w.cref;
        qhead_ = static_cast<std::int32_t>(trail_.size());
        while (i < ws.size()) ws[j++] = ws[i++];
      } else {
        unchecked_enqueue(first, w.cref);
      }
    }
    ws.resize(j);
    if (confl != kClauseRefUndef) break;
  }
  return confl;
}

void Solver::var_bump_activity(Var v) {
  if ((activity_[v] += var_inc_) > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_heap_.increased(v);
}

void Solver::cla_bump_activity(Clause& c) {
  c.set_activity(c.activity() + static_cast<float>(cla_inc_));
  if (c.activity() > 1e20f) {
    for (const ClauseRef ref : learnts_) {
      Clause& lc = arena_.deref(ref);
      lc.set_activity(lc.activity() * 1e-20f);
    }
    cla_inc_ *= 1e-20;
  }
}

std::uint32_t Solver::compute_lbd(std::span<const Lit> lits) {
  ++lbd_counter_;
  std::uint32_t distinct = 0;
  for (const Lit l : lits) {
    const auto lev = static_cast<std::size_t>(level(l.var()));
    if (lev == 0) continue;  // root-fixed literals don't count toward glue
    if (lev >= lbd_stamp_.size()) lbd_stamp_.resize(lev + 1, 0);
    if (lbd_stamp_[lev] != lbd_counter_) {
      lbd_stamp_[lev] = lbd_counter_;
      ++distinct;
    }
  }
  return distinct;
}

void Solver::analyze(ClauseRef confl, std::vector<Lit>& out_learnt,
                     std::int32_t& out_btlevel) {
  int path_count = 0;
  Lit p = kLitUndef;
  out_learnt.push_back(kLitUndef);  // placeholder for the asserting literal
  auto index = static_cast<std::int32_t>(trail_.size()) - 1;

  do {
    assert(confl != kClauseRefUndef);
    Clause& c = arena_.deref(confl);
    if (c.learnt()) {
      cla_bump_activity(c);
      // Tier protection: a clause involved in conflict analysis survives
      // the next reduce_db round.  Its LBD is also re-evaluated — clauses
      // whose glue improves move toward the protected end of the order.
      c.set_used(true);
      if (c.lbd() > 2) {
        const std::uint32_t fresh =
            compute_lbd(std::span<const Lit>(c.begin(), c.size()));
        if (fresh < c.lbd()) {
          c.set_lbd(fresh);
          ++stats_.lbd_updates;
        }
      }
    }
    for (std::uint32_t j = p.is_undef() ? 0 : 1; j < c.size(); ++j) {
      const Lit q = c[j];
      if (!seen_[q.var()] && level(q.var()) > 0) {
        var_bump_activity(q.var());
        seen_[q.var()] = 1;
        if (level(q.var()) >= decision_level()) {
          ++path_count;
        } else {
          out_learnt.push_back(q);
        }
      }
    }
    while (!seen_[trail_[index--].var()]) {
    }
    p = trail_[index + 1];
    confl = reason(p.var());
    seen_[p.var()] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Conflict clause minimization (deep/recursive mode).
  analyze_clear_.assign(out_learnt.begin(), out_learnt.end());
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    abstract_levels |= abstract_level(out_learnt[i].var());
  }
  std::size_t kept = 1;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    if (reason(out_learnt[i].var()) == kClauseRefUndef ||
        !literal_redundant(out_learnt[i], abstract_levels)) {
      out_learnt[kept++] = out_learnt[i];
    }
  }
  stats_.learnt_literals += kept;
  stats_.minimized_literals += out_learnt.size() - kept;
  out_learnt.resize(kept);

  // Place a literal of the highest remaining level at index 1 so the learnt
  // clause is correctly watched, and compute the backtrack level.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t k = 2; k < out_learnt.size(); ++k) {
      if (level(out_learnt[k].var()) > level(out_learnt[max_i].var())) {
        max_i = k;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level(out_learnt[1].var());
  }

  for (const Lit l : analyze_clear_) seen_[l.var()] = 0;
}

bool Solver::literal_redundant(Lit p, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(p);
  const std::size_t top = analyze_clear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    assert(reason(q.var()) != kClauseRefUndef);
    const Clause& c = arena_.deref(reason(q.var()));
    for (std::uint32_t i = 1; i < c.size(); ++i) {
      const Lit r = c[i];
      if (!seen_[r.var()] && level(r.var()) > 0) {
        if (reason(r.var()) != kClauseRefUndef &&
            (abstract_level(r.var()) & abstract_levels) != 0) {
          seen_[r.var()] = 1;
          analyze_stack_.push_back(r);
          analyze_clear_.push_back(r);
        } else {
          // r escapes the learnt clause's levels: p is not redundant.
          for (std::size_t j = top; j < analyze_clear_.size(); ++j) {
            seen_[analyze_clear_[j].var()] = 0;
          }
          analyze_clear_.resize(top);
          return false;
        }
      }
    }
  }
  return true;
}

void Solver::analyze_final(Lit p) {
  // `p` is a literal currently true on the trail whose derivation we trace
  // back to assumption decisions; core_ receives the responsible assumption
  // literals (including ~p itself, the failed assumption).
  core_.clear();
  core_.push_back(~p);
  if (decision_level() == 0) return;
  seen_[p.var()] = 1;
  for (auto i = static_cast<std::int32_t>(trail_.size()) - 1;
       i >= trail_lim_[0]; --i) {
    const Var x = trail_[i].var();
    if (!seen_[x]) continue;
    if (reason(x) == kClauseRefUndef) {
      assert(level(x) > 0);
      core_.push_back(trail_[i]);
    } else {
      const Clause& c = arena_.deref(reason(x));
      for (std::uint32_t j = 1; j < c.size(); ++j) {
        if (level(c[j].var()) > 0) seen_[c[j].var()] = 1;
      }
    }
    seen_[x] = 0;
  }
  seen_[p.var()] = 0;
}

Lit Solver::pick_branch_lit() {
  // Occasional random decisions diversify the search (off by default).
  if (random_decision_freq_ > 0.0 && !order_heap_.empty() &&
      rng_.chance(random_decision_freq_)) {
    const Var v = order_heap_.at(rng_.below(order_heap_.size()));
    if (value(v).is_undef() && decision_var_[v]) {
      return Lit::make(v, polarity_[v] != 0);
    }
  }
  for (;;) {
    if (order_heap_.empty()) return kLitUndef;
    const Var v = order_heap_.pop_max();
    if (value(v).is_undef() && decision_var_[v]) {
      return Lit::make(v, polarity_[v] != 0);
    }
  }
}

void Solver::reduce_db() {
  ++stats_.db_reductions;
  if (learnts_.empty()) return;
  // Glucose-style reduction: order by LBD (highest first), ties broken by
  // activity (lowest first), and drop the worst half.  Protected outright:
  // glue clauses (LBD ≤ 2), binary clauses, and locked clauses (reasons on
  // the trail).  Clauses used in conflict analysis since the last
  // reduction get one more round: the used flag is cleared and the clause
  // kept, so a hot learnt must go cold before it can be collected.
  std::sort(learnts_.begin(), learnts_.end(),
            [&](ClauseRef a, ClauseRef b) {
              const Clause& x = arena_.deref(a);
              const Clause& y = arena_.deref(b);
              if (x.lbd() != y.lbd()) return x.lbd() > y.lbd();
              return x.activity() < y.activity();
            });
  const std::size_t target_remove = learnts_.size() / 2;
  std::size_t removed = 0;
  std::size_t j = 0;
  for (std::size_t i = 0; i < learnts_.size(); ++i) {
    Clause& c = arena_.deref(learnts_[i]);
    const bool removable =
        c.size() > 2 && c.lbd() > 2 && !clause_locked(learnts_[i]);
    if (!removable || removed >= target_remove) {
      learnts_[j++] = learnts_[i];
    } else if (c.used()) {
      c.set_used(false);
      ++stats_.protected_learnts;
      learnts_[j++] = learnts_[i];
    } else {
      remove_clause(learnts_[i]);
      ++removed;
    }
  }
  learnts_.resize(j);
  collect_garbage_if_needed();
}

void Solver::remove_satisfied(std::vector<ClauseRef>& refs) {
  std::size_t j = 0;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    if (clause_satisfied(arena_.deref(refs[i]))) {
      remove_clause(refs[i]);
    } else {
      refs[j++] = refs[i];
    }
  }
  refs.resize(j);
}

void Solver::simplify() {
  cancel_until(0);  // satisfied-clause removal is only sound at the root
  if (!ok_) return;
  if (propagate() != kClauseRefUndef) {
    ok_ = false;
    return;
  }
  remove_satisfied(learnts_);
  remove_satisfied(clauses_);
  collect_garbage_if_needed();
}

void Solver::collect_garbage_if_needed() {
  if (arena_.wasted_words() * 5 < arena_.size_words()) return;
  ClauseArena fresh;
  relocate_all(fresh);
  arena_ = std::move(fresh);
  ++stats_.gc_runs;
}

void Solver::relocate_all(ClauseArena& target) {
  for (auto& ws : watches_) {
    for (auto& w : ws) w.cref = arena_.relocate(w.cref, target);
  }
  for (auto& ws : bin_watches_) {
    for (auto& w : ws) w.cref = arena_.relocate(w.cref, target);
  }
  for (const Lit p : trail_) {
    const Var v = p.var();
    if (vardata_[v].reason != kClauseRefUndef) {
      vardata_[v].reason = arena_.relocate(vardata_[v].reason, target);
    }
  }
  for (auto& ref : clauses_) ref = arena_.relocate(ref, target);
  for (auto& ref : learnts_) ref = arena_.relocate(ref, target);
  for (auto& occ : occs_) {
    for (auto& ref : occ) ref = arena_.relocate(ref, target);
  }
}

SolveResult Solver::search(std::int64_t conflicts_allowed,
                           const Deadline& deadline,
                           std::uint64_t conflicts_start) {
  std::int64_t conflict_count = 0;
  std::vector<Lit> learnt_clause;
  const auto assumption_levels =
      static_cast<std::int32_t>(assumptions_.size());

  for (;;) {
    const ClauseRef confl = propagate();
    if (confl != kClauseRefUndef) {
      ++stats_.conflicts;
      ++conflict_count;
      if (decision_level() == 0) {
        ok_ = false;
        return SolveResult::kUnsat;
      }
      learnt_clause.clear();
      std::int32_t backtrack_level = 0;
      analyze(confl, learnt_clause, backtrack_level);
      // LBD is computed before backtracking, while every literal of the
      // learnt clause still has a valid level.
      const std::uint32_t lbd = compute_lbd(learnt_clause);
      cancel_until(backtrack_level);
      if (learnt_clause.size() == 1) {
        unchecked_enqueue(learnt_clause[0]);
      } else {
        const ClauseRef cr = arena_.alloc(learnt_clause, /*learnt=*/true);
        Clause& c = arena_.deref(cr);
        c.set_lbd(lbd);
        c.set_used(true);  // fresh learnts survive the next reduction
        if (lbd <= 2) ++stats_.glue_learnts;
        learnts_.push_back(cr);
        attach_clause(cr);
        cla_bump_activity(arena_.deref(cr));
        unchecked_enqueue(learnt_clause[0], cr);
      }
      var_decay_activity();
      cla_decay_activity();
      if (--learnt_size_adjust_cnt_ == 0) {
        learnt_size_adjust_confl_ *= 1.5;
        learnt_size_adjust_cnt_ =
            static_cast<int>(learnt_size_adjust_confl_);
        max_learnts_ *= 1.1;
      }
      if ((stats_.conflicts & 511) == 0 && deadline.expired()) {
        return SolveResult::kUnknown;  // solve() keeps the assumption prefix
      }
    } else {
      if (conflict_budget_ != 0 &&
          stats_.conflicts - conflicts_start >= conflict_budget_) {
        return SolveResult::kUnknown;  // caller's budget: give up in place
      }
      if (conflict_count >= conflicts_allowed) {
        // Luby restart: drop only the search decisions; the propagated
        // assumption prefix is still valid and is kept.
        cancel_until(std::min(decision_level(), assumption_levels));
        return SolveResult::kUnknown;
      }
      if ((stats_.decisions & 1023) == 0 && deadline.expired()) {
        return SolveResult::kUnknown;
      }
      if (static_cast<double>(learnts_.size()) -
              static_cast<double>(trail_.size()) >=
          max_learnts_) {
        reduce_db();
      }

      Lit next = kLitUndef;
      while (decision_level() <
             static_cast<std::int32_t>(assumptions_.size())) {
        const Lit p = assumptions_[decision_level()];
        if (value(p) == l_True) {
          new_decision_level();  // dummy level: assumption already holds
        } else if (value(p) == l_False) {
          analyze_final(~p);
          return SolveResult::kUnsat;
        } else {
          next = p;
          break;
        }
      }
      if (next.is_undef()) {
        ++stats_.decisions;
        next = pick_branch_lit();
        if (next.is_undef()) return SolveResult::kSat;
      } else {
        ++stats_.decisions;
      }
      new_decision_level();
      unchecked_enqueue(next);
    }
  }
}

SolveResult Solver::solve(std::span<const Lit> assumptions,
                          Deadline deadline) {
  ++stats_.solve_calls;
  model_.clear();
  core_.clear();
  if (!ok_) return SolveResult::kUnsat;

  // Assumption-prefix trail reuse: the previous call left its assumption
  // decision levels (and their propagations) on the trail.  Backtrack only
  // to the first level whose assumption differs from this call's, so a
  // shared prefix — IC3's act_j activation literals — is not re-propagated.
  std::int32_t keep = 0;
  if (trail_reuse_) {
    const auto common = static_cast<std::int32_t>(
        std::min(prev_assumptions_.size(), assumptions.size()));
    const std::int32_t limit = std::min(decision_level(), common);
    while (keep < limit &&
           prev_assumptions_[static_cast<std::size_t>(keep)] ==
               assumptions[static_cast<std::size_t>(keep)]) {
      ++keep;
    }
  }
  cancel_until(keep);
  if (keep > 0) {
    ++stats_.trail_reuse_hits;
    stats_.reused_levels += static_cast<std::uint64_t>(keep);
    stats_.saved_propagations += trail_.size() - trail_lim_[0];
  }
  assumptions_.assign(assumptions.begin(), assumptions.end());
  prev_assumptions_.assign(assumptions.begin(), assumptions.end());
  max_learnts_ = std::max(
      {max_learnts_, static_cast<double>(clauses_.size()) / 3.0, 2000.0});
  const std::uint64_t conflicts_start = stats_.conflicts;

  SolveResult status = SolveResult::kUnknown;
  for (int curr_restarts = 0; status == SolveResult::kUnknown;
       ++curr_restarts) {
    if (deadline.expired()) break;
    if (conflict_budget_ != 0 &&
        stats_.conflicts - conflicts_start >= conflict_budget_) {
      break;
    }
    const double rest_base = luby(2.0, curr_restarts);
    status = search(static_cast<std::int64_t>(rest_base * 100.0), deadline,
                    conflicts_start);
    if (status == SolveResult::kUnknown) ++stats_.restarts;
  }

  if (status == SolveResult::kSat) {
    model_.assign(assigns_.begin(), assigns_.end());
  }
  // Keep the assumption prefix (levels 1..|assumptions|) for the next call;
  // search decisions above it are dropped.  Without reuse, everything goes.
  if (trail_reuse_ && ok_) {
    cancel_until(std::min(
        decision_level(), static_cast<std::int32_t>(assumptions_.size())));
  } else {
    cancel_until(0);
  }
  assumptions_.clear();
  return status;
}

}  // namespace pilot::sat
