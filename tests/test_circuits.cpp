/// Circuit-family tests: construction sanity via simulation (do unsafe
/// circuits actually exhibit bad at the advertised depth? do safe ones
/// hold over long random runs?), suite composition, and word-level builder
/// helpers.
#include <gtest/gtest.h>

#include "aig/simulation.hpp"
#include "circuits/builder.hpp"
#include "circuits/suite.hpp"
#include "util/rng.hpp"

namespace pilot::circuits {
namespace {

/// Random simulation: returns true if bad fires within `steps` steps on any
/// of the 64 lanes whose entire input history satisfied the constraints
/// (constrained semantics require every step of the path to be valid, so
/// the validity mask accumulates across steps).
bool random_sim_hits_bad(const CircuitCase& cc, int steps,
                         std::uint64_t seed) {
  aig::BitSimulator sim(cc.aig);
  sim.reset();
  pilot::Rng rng(seed);
  std::uint64_t valid = ~0ULL;
  for (int s = 0; s < steps; ++s) {
    std::vector<std::uint64_t> inputs(cc.aig.num_inputs());
    for (auto& w : inputs) w = rng.next_u64();
    sim.compute(inputs);
    for (const aig::AigLit c : cc.aig.constraints()) valid &= sim.value(c);
    if ((sim.value(cc.aig.bads()[0]) & valid) != 0) return true;
    sim.latch_step();
  }
  return false;
}

TEST(Circuits, SafeFamiliesSurviveRandomSimulation) {
  const std::vector<CircuitCase> safes = {
      counter_wrap_safe(5, 16, 30), token_ring_safe(6),   arbiter_safe(5),
      gray_counter_safe(5),         lfsr_safe(6, 0b100001), fifo_safe(4, 11),
      saturating_accumulator_safe(5, 20), twin_counters_safe(6),
      mutex_safe(),                 ring_parity_safe(7),
      combination_lock_safe(3, {1, 2, 3, 4}, 2), shift_register(6, true),
  };
  for (const auto& cc : safes) {
    EXPECT_FALSE(random_sim_hits_bad(cc, 300, 17)) << cc.name;
    EXPECT_TRUE(cc.expected_safe) << cc.name;
  }
}

TEST(Circuits, UnsafeCircuitsWithKnownDepthHitBadDeterministically) {
  // Input-free unsafe circuits must show bad at exactly the advertised
  // frame under plain simulation.
  for (const auto& [cc, depth] :
       std::vector<std::pair<CircuitCase, int>>{
           {counter_unsafe(6, 19), 19},
           {gray_counter_unsafe(5), 2},
           {lfsr_unsafe(6, 0b100001, 11), 11}}) {
    ASSERT_EQ(cc.aig.num_inputs(), 0u) << cc.name;
    aig::BitSimulator sim(cc.aig);
    sim.reset();
    for (int s = 0; s < depth; ++s) {
      sim.compute({});
      EXPECT_EQ(sim.value(cc.aig.bads()[0]) & 1ULL, 0ULL)
          << cc.name << " fired early at " << s;
      sim.latch_step();
    }
    sim.compute({});
    EXPECT_EQ(sim.value(cc.aig.bads()[0]) & 1ULL, 1ULL)
        << cc.name << " did not fire at " << depth;
  }
}

TEST(Circuits, UnsafeInputDrivenCircuitsReachableByGuidedSim) {
  // Driving all-ones inputs reaches bad for these families.
  for (const auto& cc :
       {shift_register(5, false), counter_enable_unsafe(4, 9),
        fifo_unsafe(4, 6)}) {
    aig::BitSimulator sim(cc.aig);
    sim.reset();
    bool hit = false;
    for (int s = 0; s < 64 && !hit; ++s) {
      std::vector<std::uint64_t> inputs(cc.aig.num_inputs(), ~0ULL);
      if (cc.family == "fifo") inputs[1] = 0;  // push only, no pop
      sim.compute(inputs);
      hit = (sim.value(cc.aig.bads()[0]) & 1ULL) != 0;
      sim.latch_step();
    }
    EXPECT_TRUE(hit) << cc.name;
  }
}

TEST(Circuits, SuiteSizesAreOrderedAndWellFormed) {
  const auto tiny = make_suite(SuiteSize::kTiny);
  const auto quick = make_suite(SuiteSize::kQuick);
  const auto full = make_suite(SuiteSize::kFull);
  EXPECT_LT(tiny.size(), quick.size());
  EXPECT_LT(quick.size(), full.size());
  EXPECT_GE(full.size(), 60u);

  for (const auto& cc : full) {
    EXPECT_FALSE(cc.name.empty());
    EXPECT_FALSE(cc.family.empty());
    ASSERT_EQ(cc.aig.bads().size(), 1u) << cc.name;
    EXPECT_GT(cc.aig.num_latches(), 0u) << cc.name;
  }
  // Names must be unique (they key the experiment records).
  std::set<std::string> names;
  for (const auto& cc : full) {
    EXPECT_TRUE(names.insert(cc.name).second) << "duplicate " << cc.name;
  }
  // The suite must contain both verdict classes in quantity.
  const auto safe_count = static_cast<std::size_t>(std::count_if(
      full.begin(), full.end(), [](const auto& c) { return c.expected_safe; }));
  EXPECT_GT(safe_count, full.size() / 4);
  EXPECT_GT(full.size() - safe_count, full.size() / 4);
}

TEST(Circuits, BuilderArithmetic) {
  Aig a;
  const Word x = make_inputs(a, 4);
  const Word y = make_inputs(a, 4);
  const Word sum = ripple_add(a, x, y);
  const Word diff = subtract(a, x, y);
  aig::BitSimulator sim(a);
  pilot::Rng rng(3);
  for (int round = 0; round < 32; ++round) {
    const std::uint64_t xv = rng.below(16);
    const std::uint64_t yv = rng.below(16);
    std::vector<std::uint64_t> inputs;
    for (int i = 0; i < 4; ++i) inputs.push_back(((xv >> i) & 1) ? ~0ULL : 0);
    for (int i = 0; i < 4; ++i) inputs.push_back(((yv >> i) & 1) ? ~0ULL : 0);
    sim.compute(inputs);
    std::uint64_t sum_v = 0;
    std::uint64_t diff_v = 0;
    for (int i = 0; i < 4; ++i) {
      if (sim.value(sum[i]) & 1ULL) sum_v |= 1ULL << i;
      if (sim.value(diff[i]) & 1ULL) diff_v |= 1ULL << i;
    }
    EXPECT_EQ(sum_v, (xv + yv) & 0xF);
    EXPECT_EQ(diff_v, (xv - yv) & 0xF);
  }
}

TEST(Circuits, BuilderComparisonsAndPredicates) {
  Aig a;
  const Word x = make_inputs(a, 4);
  const aig::AigLit eq7 = equals_const(a, x, 7);
  const aig::AigLit lt5 = less_than_const(a, x, 5);
  const aig::AigLit two = at_least_two(a, x);
  const aig::AigLit one = exactly_one(a, x);
  const aig::AigLit par = parity(a, x);
  aig::BitSimulator sim(a);
  for (std::uint64_t v = 0; v < 16; ++v) {
    std::vector<std::uint64_t> inputs;
    for (int i = 0; i < 4; ++i) inputs.push_back(((v >> i) & 1) ? ~0ULL : 0);
    sim.compute(inputs);
    EXPECT_EQ(sim.value(eq7) & 1ULL, v == 7 ? 1ULL : 0ULL) << v;
    EXPECT_EQ(sim.value(lt5) & 1ULL, v < 5 ? 1ULL : 0ULL) << v;
    const int pop = __builtin_popcountll(v);
    EXPECT_EQ(sim.value(two) & 1ULL, pop >= 2 ? 1ULL : 0ULL) << v;
    EXPECT_EQ(sim.value(one) & 1ULL, pop == 1 ? 1ULL : 0ULL) << v;
    EXPECT_EQ(sim.value(par) & 1ULL, static_cast<std::uint64_t>(pop & 1))
        << v;
  }
}

}  // namespace
}  // namespace pilot::circuits
