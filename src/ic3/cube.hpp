/// \file cube.hpp
/// Cubes over state variables: the currency of IC3.
///
/// A Cube is a conjunction of literals kept sorted by literal code, which
/// makes subset tests (clause subsumption, Theorem 3.4), complement-aware
/// diff sets (Definition 3.1 of the paper), and hashing linear-time.
/// The negation of a cube is the corresponding lemma (a clause).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace pilot::ic3 {

using sat::Lit;
using sat::Var;

/// Sorted, duplicate-free conjunction of literals.
class Cube {
 public:
  Cube() = default;

  /// Builds a cube from arbitrary literals (sorts, deduplicates).
  static Cube from_lits(std::vector<Lit> lits);

  /// Builds from literals already sorted and unique (cheap, asserts order).
  static Cube from_sorted(std::vector<Lit> lits);

  [[nodiscard]] bool empty() const { return lits_.empty(); }
  [[nodiscard]] std::size_t size() const { return lits_.size(); }
  [[nodiscard]] const std::vector<Lit>& lits() const { return lits_; }
  [[nodiscard]] Lit operator[](std::size_t i) const { return lits_[i]; }
  [[nodiscard]] auto begin() const { return lits_.begin(); }
  [[nodiscard]] auto end() const { return lits_.end(); }

  /// Membership test (binary search).
  [[nodiscard]] bool contains(Lit l) const;

  /// Subset test: every literal of *this occurs in `other`.
  /// By Theorem 3.4 this is equivalent to other ⇒ *this (as cubes), and to
  /// clause(¬*this) subsuming clause(¬other).
  [[nodiscard]] bool subset_of(const Cube& other) const;

  /// Definition 3.1: diff(*this, b) = { l ∈ *this | ¬l ∈ b }.
  [[nodiscard]] Cube diff(const Cube& b) const;

  /// Literal-set intersection.
  [[nodiscard]] Cube intersect(const Cube& other) const;

  /// Copy without literal `l` (no-op if absent).
  [[nodiscard]] Cube without(Lit l) const;

  /// Copy with literal `l` inserted (no-op if present).  The result must not
  /// contain complementary literals; callers guarantee this.
  [[nodiscard]] Cube with_lit(Lit l) const;

  /// The lemma: clause ¬cube as a literal vector.
  [[nodiscard]] std::vector<Lit> negated_lits() const;

  /// FNV-1a over literal codes; stable across runs.
  [[nodiscard]] std::size_t hash() const;

  [[nodiscard]] std::string to_string() const;

  bool operator==(const Cube& other) const { return lits_ == other.lits_; }

 private:
  std::vector<Lit> lits_;
};

struct CubeHash {
  std::size_t operator()(const Cube& c) const { return c.hash(); }
};

/// Key of the paper's failure_push table: (lemma cube, level).
struct CubeLevelKey {
  Cube cube;
  std::size_t level = 0;
  bool operator==(const CubeLevelKey& o) const {
    return level == o.level && cube == o.cube;
  }
};

struct CubeLevelKeyHash {
  std::size_t operator()(const CubeLevelKey& k) const {
    return k.cube.hash() * 1000003u ^ k.level;
  }
};

}  // namespace pilot::ic3
