/// Strategy-registry tests: built-in registration, spec validation with
/// actionable error messages, custom strategy plug-in, and the "dynamic"
/// meta-strategy's switching policy driven by a scripted success-rate
/// trace (the SuYC25 behaviour the ISSUE pins down: switch points must be
/// a deterministic function of the observed outcomes).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "circuits/families.hpp"
#include "corpus/corpus.hpp"
#include "ic3/drop_filter.hpp"
#include "ic3/engine.hpp"
#include "ic3/gen_dynamic.hpp"
#include "ic3/gen_strategy.hpp"
#include "ic3/solver_manager.hpp"
#include "ts/transition_system.hpp"

namespace pilot::ic3 {
namespace {

/// A minimal live context over a real (small) transition system; the
/// policy tests never issue SAT queries, but the context references must
/// point at real objects.
struct CtxFixture {
  CtxFixture() : cc(circuits::token_ring_safe(4)),
                 ts(ts::TransitionSystem::from_aig(cc.aig)),
                 solvers(ts, cfg, stats) {
    solvers.ensure_level(1);
    frames.ensure_level(1);
  }

  [[nodiscard]] GenContext ctx() {
    return GenContext{ts, solvers, frames, cfg, stats};
  }

  circuits::CircuitCase cc;
  ts::TransitionSystem ts;
  Config cfg;
  Ic3Stats stats;
  Frames frames;
  SolverManager solvers;
};

TEST(GenRegistry, BuiltinsAreRegistered) {
  for (const char* name : {"down", "ctg", "cav23", "predict", "dynamic"}) {
    EXPECT_TRUE(gen_strategy_registered(name)) << name;
  }
  EXPECT_FALSE(gen_strategy_registered("nope"));
  const std::vector<std::string> names = gen_strategy_names();
  EXPECT_GE(names.size(), 5u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(GenRegistry, UnknownNameErrorListsRegisteredStrategies) {
  try {
    validate_gen_spec("no-such-strategy");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    // The offending token and the full registered list must both appear.
    EXPECT_NE(msg.find("no-such-strategy"), std::string::npos) << msg;
    for (const std::string& name : gen_strategy_names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << name << " in " << msg;
    }
  }
}

TEST(GenRegistry, SpecArgsAreValidated) {
  EXPECT_NO_THROW(validate_gen_spec("dynamic"));
  EXPECT_NO_THROW(validate_gen_spec("dynamic:8"));
  EXPECT_NO_THROW(validate_gen_spec("dynamic:8,0.5"));
  EXPECT_NO_THROW(validate_gen_spec("dynamic:,0.5"));
  EXPECT_THROW(validate_gen_spec("dynamic:abc"), std::invalid_argument);
  EXPECT_THROW(validate_gen_spec("dynamic:0"), std::invalid_argument);
  EXPECT_THROW(validate_gen_spec("dynamic:8,1.5"), std::invalid_argument);
  EXPECT_THROW(validate_gen_spec("dynamic:9999"), std::invalid_argument);
  // Fixed strategies take no args.
  EXPECT_THROW(validate_gen_spec("ctg:3"), std::invalid_argument);
  EXPECT_NO_THROW(validate_gen_spec("ctg"));
}

TEST(GenRegistry, ParseDynamicArgs) {
  EXPECT_FALSE(parse_dynamic_args("").window.has_value());
  EXPECT_EQ(parse_dynamic_args("8").window.value(), 8u);
  EXPECT_FALSE(parse_dynamic_args("8").threshold.has_value());
  const DynamicArgs full = parse_dynamic_args("12,0.75");
  EXPECT_EQ(full.window.value(), 12u);
  EXPECT_DOUBLE_EQ(full.threshold.value(), 0.75);
}

TEST(GenRegistry, CustomStrategyPlugsIn) {
  class EchoStrategy final : public GenStrategy {
   public:
    [[nodiscard]] const std::string& name() const override {
      static const std::string kName = "echo-test";
      return kName;
    }
    Cube generalize(const Cube& cube, const Cube& core, std::size_t,
                    const Deadline&, const AddLemmaFn&) override {
      (void)cube;
      return core;  // no generalization at all — still sound
    }
  };
  static bool registered = false;
  if (!registered) {
    register_gen_strategy("echo-test",
                          [](const GenContext&, const std::string&) {
                            return std::make_unique<EchoStrategy>();
                          });
    registered = true;
  }
  EXPECT_TRUE(gen_strategy_registered("echo-test"));
  EXPECT_THROW(register_gen_strategy("echo-test",
                                     [](const GenContext&,
                                        const std::string&) {
                                       return std::unique_ptr<GenStrategy>();
                                     }),
               std::invalid_argument);
  CtxFixture f;
  const std::unique_ptr<GenStrategy> s =
      make_gen_strategy("echo-test", f.ctx());
  EXPECT_EQ(s->name(), "echo-test");
}

// ----- sliding-window statistics ---------------------------------------------

TEST(GenStrategyStatsTest, WindowTracksNewestOutcomes) {
  GenStrategyStats s;
  s.name = "t";
  for (int i = 0; i < 10; ++i) s.record(false, 2, 0);
  EXPECT_DOUBLE_EQ(s.window_success_rate(10), 0.0);
  for (int i = 0; i < 10; ++i) s.record(true, 1, 3);
  // Newest 10 are all successes; newest 20 are half.
  EXPECT_DOUBLE_EQ(s.window_success_rate(10), 1.0);
  EXPECT_DOUBLE_EQ(s.window_success_rate(20), 0.5);
  EXPECT_DOUBLE_EQ(s.window_avg_queries(10), 1.0);
  EXPECT_EQ(s.attempts, 20u);
  EXPECT_EQ(s.successes, 10u);
  EXPECT_DOUBLE_EQ(s.avg_dropped(), 1.5);
}

TEST(GenStrategyStatsTest, RingWrapsAtCapacity) {
  GenStrategyStats s;
  s.name = "t";
  for (std::size_t i = 0; i < GenStrategyStats::kGenWindowCapacity; ++i) {
    s.record(false, 1, 0);
  }
  EXPECT_EQ(s.window_size(), GenStrategyStats::kGenWindowCapacity);
  // Overwrite the whole ring with successes.
  for (std::size_t i = 0; i < GenStrategyStats::kGenWindowCapacity; ++i) {
    s.record(true, 1, 1);
  }
  EXPECT_EQ(s.window_size(), GenStrategyStats::kGenWindowCapacity);
  EXPECT_DOUBLE_EQ(
      s.window_success_rate(GenStrategyStats::kGenWindowCapacity), 1.0);
  EXPECT_EQ(s.attempts, 2 * GenStrategyStats::kGenWindowCapacity);
}

// ----- the dynamic switching policy ------------------------------------------

/// Scripted success-rate trace: drive the windows directly (no SAT) and
/// assert the exact switch points.
TEST(DynamicStrategyPolicy, SwitchesAwayFromFailingStrategyAtBoundary) {
  CtxFixture f;
  f.cfg.dynamic_window = 4;
  f.cfg.dynamic_threshold = 0.5;
  DynamicStrategy dyn(f.ctx(), "");
  EXPECT_EQ(dyn.window(), 4u);
  EXPECT_DOUBLE_EQ(dyn.threshold(), 0.5);
  ASSERT_EQ(dyn.candidate_names(),
            (std::vector<std::string>{"predict", "ctg", "cav23", "down"}));
  EXPECT_EQ(dyn.active_name(), "predict");

  // Fewer than `window` fresh samples: never judged, never switched.
  f.stats.record_gen_outcome("predict", false, 3, 0);
  f.stats.record_gen_outcome("predict", false, 3, 0);
  f.stats.record_gen_outcome("predict", false, 3, 0);
  EXPECT_FALSE(dyn.evaluate_switch());
  EXPECT_EQ(dyn.active_name(), "predict");

  // Fourth failure completes the window below threshold → switch to the
  // next unexplored candidate in rotation order ("ctg").
  f.stats.record_gen_outcome("predict", false, 3, 0);
  EXPECT_TRUE(dyn.evaluate_switch());
  EXPECT_EQ(dyn.active_name(), "ctg");
  EXPECT_EQ(f.stats.num_strategy_switches, 1u);
  EXPECT_EQ(f.stats.find_gen_strategy("predict")->switches, 1u);

  // A healthy window keeps the strategy: 3/4 successes ≥ 0.5.
  f.stats.record_gen_outcome("ctg", true, 2, 2);
  f.stats.record_gen_outcome("ctg", true, 2, 2);
  f.stats.record_gen_outcome("ctg", false, 5, 0);
  f.stats.record_gen_outcome("ctg", true, 2, 1);
  EXPECT_FALSE(dyn.evaluate_switch());
  EXPECT_EQ(dyn.active_name(), "ctg");

  // Four fresh failures push the windowed rate (newest 4) below 0.5 →
  // next unexplored candidate is "cav23".
  for (int i = 0; i < 4; ++i) f.stats.record_gen_outcome("ctg", false, 6, 0);
  EXPECT_TRUE(dyn.evaluate_switch());
  EXPECT_EQ(dyn.active_name(), "cav23");
  EXPECT_EQ(f.stats.num_strategy_switches, 2u);
}

TEST(DynamicStrategyPolicy, ExhaustedExplorationPicksBestWindowedRate) {
  CtxFixture f;
  f.cfg.dynamic_window = 2;
  f.cfg.dynamic_threshold = 0.5;
  DynamicStrategy dyn(f.ctx(), "");
  // Mark every candidate as explored with distinct windowed rates.
  f.stats.record_gen_outcome("ctg", false, 1, 0);
  f.stats.record_gen_outcome("ctg", true, 1, 1);   // rate 0.5
  f.stats.record_gen_outcome("cav23", true, 1, 1);
  f.stats.record_gen_outcome("cav23", true, 1, 1); // rate 1.0 — the best
  f.stats.record_gen_outcome("down", false, 1, 0);
  f.stats.record_gen_outcome("down", false, 1, 0); // rate 0.0
  // Active ("predict") fails its window → must switch to "cav23".
  f.stats.record_gen_outcome("predict", false, 1, 0);
  f.stats.record_gen_outcome("predict", false, 1, 0);
  EXPECT_TRUE(dyn.evaluate_switch());
  EXPECT_EQ(dyn.active_name(), "cav23");
}

TEST(DynamicStrategyPolicy, FreshSampleGateBlocksImmediateReswitch) {
  CtxFixture f;
  f.cfg.dynamic_window = 2;
  f.cfg.dynamic_threshold = 0.5;
  DynamicStrategy dyn(f.ctx(), "");
  // Poison every candidate's window, then trigger the first switch.
  for (const std::string& name : dyn.candidate_names()) {
    f.stats.record_gen_outcome(name, false, 1, 0);
    f.stats.record_gen_outcome(name, false, 1, 0);
  }
  EXPECT_TRUE(dyn.evaluate_switch());
  const std::string second = dyn.active_name();
  EXPECT_NE(second, "predict");
  // Without fresh samples for the new active strategy, the policy must
  // hold — its stale all-failure window alone cannot re-trigger.
  EXPECT_FALSE(dyn.evaluate_switch());
  EXPECT_EQ(dyn.active_name(), second);
}

TEST(DynamicStrategyPolicy, SpecArgsOverrideConfigDefaults) {
  CtxFixture f;
  f.cfg.dynamic_window = 16;
  f.cfg.dynamic_threshold = 0.4;
  DynamicStrategy dyn(f.ctx(), "3,0.9");
  EXPECT_EQ(dyn.window(), 3u);
  EXPECT_DOUBLE_EQ(dyn.threshold(), 0.9);
}

// ----- end-to-end: the dynamic strategy inside the engine --------------------

TEST(DynamicStrategyEngine, SolvesBothVerdictClasses) {
  Config cfg;
  cfg.gen_spec = "dynamic:4,0.5";
  {
    const auto cc = circuits::token_ring_safe(5);
    const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
    Engine engine(ts, cfg);
    const Result r = engine.check(Deadline::in_seconds(60));
    EXPECT_EQ(r.verdict, Verdict::kSafe);
    // Per-strategy accounting reached the stats: some strategy attempted
    // generalizations and the totals match N_g.
    std::uint64_t attempts = 0;
    for (const GenStrategyStats& s : r.stats.gen_strategies) {
      attempts += s.attempts;
    }
    EXPECT_EQ(attempts, r.stats.num_generalizations);
  }
  {
    const auto cc = circuits::counter_unsafe(4, 6);
    const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
    Engine engine(ts, cfg);
    const Result r = engine.check(Deadline::in_seconds(60));
    EXPECT_EQ(r.verdict, Verdict::kUnsafe);
  }
}

TEST(DynamicStrategyEngine, UnknownSpecThrowsAtConstruction) {
  const auto cc = circuits::mutex_safe();
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  Config cfg;
  cfg.gen_spec = "no-such-strategy";
  EXPECT_THROW(Engine(ts, cfg), std::invalid_argument);
}

// ----- the ternary drop-filter -----------------------------------------------

TEST(DropFilter, WitnessRejectsItsCandidateAndLemmaInstallInvalidates) {
  CtxFixture f;
  f.solvers.ensure_level(2);
  f.frames.ensure_level(2);
  DropFilter filter(f.ts, f.stats);
  // Find a single-literal candidate whose drop solve fails at level 2 and
  // cache the CTI model the solver hands back.
  bool exercised = false;
  for (std::size_t i = 0; i < f.ts.num_latches() && !exercised; ++i) {
    for (const bool sign : {false, true}) {
      const Cube cand = Cube::from_lits({Lit::make(f.ts.state_var(i), sign)});
      if (f.ts.cube_intersects_init(cand.lits())) continue;
      if (f.solvers.relative_inductive(cand, 1,
                                       /*cube_clause_in_frame=*/false,
                                       nullptr, {})) {
        continue;
      }
      const Cube s = f.solvers.model_state(/*primed=*/false);
      filter.add_witness(s, f.solvers.model_inputs(), 2);
      // The witness proves the identical solve would fail again...
      EXPECT_TRUE(filter.rejects(cand, 2));
      // ...but only for query levels at or above the witness level (the
      // cached s is known to satisfy R_1, not the stronger R_0).
      EXPECT_FALSE(filter.rejects(cand, 1));
      // Installing a clause the cached state violates — ¬s itself is the
      // sharpest such clause — must kill the witness.
      filter.on_lemma(s, 2);
      EXPECT_FALSE(filter.rejects(cand, 2));
      exercised = true;
      break;
    }
  }
  EXPECT_TRUE(exercised) << "no failing drop solve found on token_ring(4)";
}

TEST(DropFilter, WitnessSurvivesLemmasItsStateSatisfies) {
  CtxFixture f;
  f.solvers.ensure_level(2);
  f.frames.ensure_level(2);
  DropFilter filter(f.ts, f.stats);
  for (std::size_t i = 0; i < f.ts.num_latches(); ++i) {
    const Cube cand = Cube::from_lits({Lit::make(f.ts.state_var(i), false)});
    if (f.ts.cube_intersects_init(cand.lits())) continue;
    if (f.solvers.relative_inductive(cand, 1, /*cube_clause_in_frame=*/false,
                                     nullptr, {})) {
      continue;
    }
    const Cube s = f.solvers.model_state(/*primed=*/false);
    filter.add_witness(s, f.solvers.model_inputs(), 2);
    ASSERT_TRUE(filter.rejects(cand, 2));
    // The new clause ¬cand is satisfied by s (s lies outside cand — that
    // is what made it a witness), so the cache must survive the install.
    filter.on_lemma(cand, 2);
    EXPECT_TRUE(filter.rejects(cand, 2));
    return;
  }
  GTEST_SKIP() << "no failing drop solve found on token_ring(4)";
}

// Engine-level A/B over the checked-in fixture corpus: the filter may only
// remove SAT calls whose outcome a cached witness already determines, so
// the entire proof trajectory — verdict, frame count, lemma count, and the
// final inductive invariant — must be bit-identical with the filter on and
// off, while the saved-solve accounting must balance exactly.
TEST(DropFilter, FilterIsTrajectoryInvisibleOnFixtureCorpus) {
  const std::vector<corpus::Case> cases =
      corpus::resolve_corpus(PILOT_TEST_CORPUS_DIR);
  ASSERT_FALSE(cases.empty());
  std::uint64_t total_saved = 0;
  std::uint64_t total_blocking = 0;
  for (const corpus::Case& c : cases) {
    const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(c.load());
    auto run = [&](bool filter) {
      Config cfg;
      cfg.gen_spec = "down";
      cfg.gen_ternary_filter = filter;
      // The exact-accounting invariant below is a property of the plain
      // sequential drop loop: batched probes resolve candidates in groups,
      // so a filter hit there changes group composition rather than
      // removing one dedicated solve (test_gen_batch covers that path).
      cfg.gen_batch = 1;
      Engine engine(ts, cfg);
      return engine.check(Deadline::in_seconds(60));
    };
    const Result on = run(true);
    const Result off = run(false);
    EXPECT_EQ(on.verdict, off.verdict) << c.name;
    EXPECT_EQ(on.frames, off.frames) << c.name;
    EXPECT_EQ(on.stats.num_lemmas, off.stats.num_lemmas) << c.name;
    ASSERT_EQ(on.invariant.has_value(), off.invariant.has_value()) << c.name;
    if (on.invariant.has_value()) {
      EXPECT_EQ(on.invariant->lemma_cubes, off.invariant->lemma_cubes)
          << c.name;
    }
    // Exact accounting: every skipped check is a solve the off-run issued.
    EXPECT_EQ(off.stats.num_filter_solves_saved, 0u) << c.name;
    EXPECT_EQ(on.stats.num_mic_queries + on.stats.num_filter_solves_saved,
              off.stats.num_mic_queries)
        << c.name;
    total_saved += on.stats.num_filter_solves_saved;
    // Blocking-query CTIs are donated to the witness cache only while the
    // filter exists; the off-run must account exactly zero of them.
    EXPECT_EQ(off.stats.num_filter_blocking_witnesses, 0u) << c.name;
    total_blocking += on.stats.num_filter_blocking_witnesses;
  }
  EXPECT_GT(total_saved, 0u) << "filter never fired on the fixture corpus";
  EXPECT_GT(total_blocking, 0u)
      << "no blocking-query CTI reached the witness cache";
}

}  // namespace
}  // namespace pilot::ic3
