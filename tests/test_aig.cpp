/// AIG builder tests: constant folding, structural hashing, latch plumbing,
/// wide gates, and cone-of-influence extraction.
#include <gtest/gtest.h>

#include "aig/aig.hpp"

namespace pilot::aig {
namespace {

TEST(Aig, ConstantsAndFolding) {
  Aig a;
  const AigLit t = AigLit::constant(true);
  const AigLit f = AigLit::constant(false);
  const AigLit x = a.add_input();

  EXPECT_EQ(a.make_and(x, f), f);
  EXPECT_EQ(a.make_and(f, x), f);
  EXPECT_EQ(a.make_and(x, t), x);
  EXPECT_EQ(a.make_and(t, x), x);
  EXPECT_EQ(a.make_and(x, x), x);
  EXPECT_EQ(a.make_and(x, !x), f);
  EXPECT_EQ(a.num_ands(), 0u);  // everything folded
}

TEST(Aig, StructuralHashingSharesGates) {
  Aig a;
  const AigLit x = a.add_input();
  const AigLit y = a.add_input();
  const AigLit g1 = a.make_and(x, y);
  const AigLit g2 = a.make_and(y, x);  // commuted — same gate
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(a.num_ands(), 1u);
  const AigLit g3 = a.make_and(!x, y);  // different polarity — new gate
  EXPECT_NE(g1, g3);
  EXPECT_EQ(a.num_ands(), 2u);
}

TEST(Aig, DerivedConnectives) {
  Aig a;
  const AigLit x = a.add_input();
  const AigLit y = a.add_input();
  // De Morgan sanity: or(x,y) == !and(!x,!y) structurally.
  EXPECT_EQ(a.make_or(x, y), !a.make_and(!x, !y));
  // xor / eq are complements.
  EXPECT_EQ(a.make_xor(x, y), !a.make_eq(x, y));
  // mux with constant selector folds.
  EXPECT_EQ(a.make_mux(AigLit::constant(true), x, y), x);
  EXPECT_EQ(a.make_mux(AigLit::constant(false), x, y), y);
}

TEST(Aig, LatchInitAndNext) {
  Aig a;
  const AigLit l0 = a.add_latch(l_False, "l0");
  const AigLit l1 = a.add_latch(l_True, "l1");
  const AigLit lx = a.add_latch(l_Undef, "lx");
  a.set_next(l0, !l1);
  a.set_next(l1, lx);
  a.set_next(lx, l0);

  EXPECT_EQ(a.num_latches(), 3u);
  EXPECT_EQ(a.init(l0.node()), l_False);
  EXPECT_EQ(a.init(l1.node()), l_True);
  EXPECT_TRUE(a.init(lx.node()).is_undef());
  EXPECT_EQ(a.next(l0.node()), !l1);
  EXPECT_EQ(a.name(l1.node()), "l1");
}

TEST(Aig, SetNextRejectsNonLatch) {
  Aig a;
  const AigLit x = a.add_input();
  const AigLit l = a.add_latch();
  EXPECT_THROW(a.set_next(x, l), std::invalid_argument);
  EXPECT_THROW(a.set_next(!l, x), std::invalid_argument);  // negated
}

TEST(Aig, WideAndOr) {
  Aig a;
  std::vector<AigLit> xs;
  for (int i = 0; i < 7; ++i) xs.push_back(a.add_input());
  const AigLit all = a.make_and_n(xs);
  const AigLit any = a.make_or_n(xs);
  EXPECT_NE(all, any);
  // Empty conjunction/disjunction are the neutral constants.
  EXPECT_EQ(a.make_and_n({}), AigLit::constant(true));
  EXPECT_EQ(a.make_or_n({}), AigLit::constant(false));
}

TEST(Aig, CoiDropsUnreachableLogic) {
  Aig a;
  const AigLit x = a.add_input();
  const AigLit y = a.add_input();  // not in the cone
  const AigLit l = a.add_latch(l_False);
  a.set_next(l, a.make_and(x, l));
  const AigLit junk = a.make_and(y, l);  // reachable only from "junk"
  (void)junk;

  LitMap map;
  const AigLit root = l;
  const Aig reduced = extract_coi(a, std::vector<AigLit>{root}, &map);
  EXPECT_EQ(reduced.num_inputs(), 1u);   // y dropped
  EXPECT_EQ(reduced.num_latches(), 1u);
  EXPECT_EQ(reduced.num_ands(), 1u);     // junk dropped
  EXPECT_EQ(map[y.node()], kInvalidLit);
  EXPECT_NE(map[l.node()], kInvalidLit);
}

TEST(Aig, CoiFollowsLatchNextFunctions) {
  // A latch chain l0 <- l1 <- l2: the cone of l0 must include all three.
  Aig a;
  const AigLit l0 = a.add_latch();
  const AigLit l1 = a.add_latch();
  const AigLit l2 = a.add_latch();
  const AigLit in = a.add_input();
  a.set_next(l0, l1);
  a.set_next(l1, l2);
  a.set_next(l2, in);
  const Aig reduced = extract_coi(a, std::vector<AigLit>{l0}, nullptr);
  EXPECT_EQ(reduced.num_latches(), 3u);
  EXPECT_EQ(reduced.num_inputs(), 1u);
}

TEST(Aig, CoiMapTranslatesNegations) {
  Aig a;
  const AigLit x = a.add_input();
  const AigLit y = a.add_input();
  const AigLit g = a.make_and(x, !y);
  LitMap map;
  const Aig reduced = extract_coi(a, std::vector<AigLit>{g}, &map);
  (void)reduced;
  const AigLit mapped = map_lit(!g, map);
  EXPECT_TRUE(mapped.negated());  // inversion preserved through the map
}

}  // namespace
}  // namespace pilot::aig
