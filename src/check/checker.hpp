/// \file checker.hpp
/// Unified model-checking front door: pick an engine configuration (or a
/// portfolio of them), get a verdict with a certified witness.
///
/// Engine selection is a registry `engine_spec` string resolved through
/// engine::Backend (engine/backend.hpp): any registered backend name, or
/// "portfolio[:a+b+c]" for a first-verdict-wins race.  The `EngineKind`
/// enum survives only as a thin CLI-facing shim mapping 1:1 onto registry
/// names via to_string(); nothing below the CLI dispatches on it.
///
/// The six configurations evaluated in the paper map onto specs as follows
/// (DESIGN.md §2):
///   RIC3         → "ic3-down"     RIC3-pl      → "ic3-down-pl"
///   IC3ref       → "ic3-ctg"      IC3ref-pl    → "ic3-ctg-pl"
///   IC3ref-CAV23 → "ic3-cav23"    ABC-PDR      → "pdr"
/// plus the "bmc" / "kind" baselines for cross-checking and "portfolio",
/// which races several backends and takes the first verdict.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "engine/portfolio.hpp"
#include "ic3/engine.hpp"
#include "ts/transition_system.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace pilot::check {

/// CLI-facing shim over the registry names; see the file comment.
enum class EngineKind {
  kIc3Down,
  kIc3DownPl,
  kIc3Ctg,
  kIc3CtgPl,
  kIc3Cav23,
  kPdr,
  kBmc,
  kKinduction,
  kPortfolio,
};

[[nodiscard]] const char* to_string(EngineKind kind);
[[nodiscard]] EngineKind engine_kind_from_string(const std::string& name);

/// All paper configurations as registry specs, in Table 1 order.
[[nodiscard]] const std::vector<std::string>& paper_configurations();

struct CheckOptions {
  /// Engine selector by registry name.  Accepts any registered backend name
  /// plus "portfolio[:a+b+c]" (a "+"-separated backend list) and
  /// "portfolio-x[:a+b+c]" (same race with lemma exchange enabled).
  std::string engine_spec = "ic3-ctg";
  /// Generalization-strategy spec override ("down", "dynamic:16,0.4", …;
  /// see ic3/gen_strategy.hpp).  Empty = the engine's own strategy.
  /// Applies to IC3-family backends, including every one in a portfolio.
  std::string gen_spec;
  /// Ternary-simulation backend for the lifter ("--lift-sim packed|byte");
  /// unset = the config default (packed).  Applies to IC3-family backends,
  /// including every one in a portfolio.
  std::optional<ic3::Config::LiftSim> lift_sim;
  /// Ternary drop-filter in the MIC core ("--gen-ternary-filter on|off");
  /// unset = the config default (on).  Same scope as lift_sim.
  std::optional<bool> gen_ternary_filter;
  /// SAT inprocessing ("--sat-inprocess on|off"): lemma-install subsumption
  /// and boundary vivification (IC3), failed-literal probing + SCC
  /// collapsing (BMC/k-induction).  Unset = defaults (on); applies to every
  /// backend, including portfolio members.
  std::optional<bool> sat_inprocess;
  /// Batched generalization probe width ("--gen-batch N", 1 = off); unset =
  /// the config default.  Same scope as lift_sim.
  std::optional<int> gen_batch;
  /// Adaptive batch width ("--gen-batch-adaptive on|off"): size probe
  /// groups from the observed candidate failure rate instead of the fixed
  /// gen_batch.  Unset = the config default (off).  Same scope as lift_sim.
  std::optional<bool> gen_batch_adaptive;
  /// Portfolio runs: share validated lemmas between the racing IC3
  /// backends (also enabled by the "portfolio-x" spec form).
  bool share_lemmas = false;
  std::int64_t budget_ms = 0;  // 0 = unlimited
  std::uint64_t seed = 0;
  std::size_t property_index = 0;
  /// Certify witnesses (trace replay / invariant re-check) after solving.
  bool verify_witness = true;
  /// External abort (nullable): the engine observes the token at its next
  /// deadline poll and returns kUnknown.  Must outlive the check call.
  const CancelToken* cancel = nullptr;
  /// Live-progress heartbeat period in seconds ("--progress[=secs]");
  /// <= 0 disables it.  Each backend gets its own named channel, so a
  /// portfolio run prints one line per racer per tick.
  double progress_interval = 0.0;
  /// Extra IC3 knobs forwarded verbatim (ablations).  Single-engine specs
  /// only: portfolio races keep each backend's own configuration (use
  /// engine::PortfolioOptions directly to override a whole race).
  std::optional<ic3::Config> ic3_overrides;
};

struct CheckResult {
  ic3::Verdict verdict = ic3::Verdict::kUnknown;
  double seconds = 0.0;
  ic3::Ic3Stats stats;           // meaningful for IC3 engines
  std::size_t frames = 0;
  bool witness_checked = false;  // a certificate was produced and verified
  std::string witness_error;     // non-empty if certification failed
  std::optional<ic3::Trace> trace;                  // UNSAFE certificate
  std::optional<ic3::InductiveInvariant> invariant; // SAFE certificate
  /// k-induction SAFE proofs: the closing bound (< 0 otherwise) and whether
  /// simple-path strengthening was on — the payload cert::from_kinduction
  /// turns into a certificate.
  int kind_k = -1;
  bool kind_simple_path = true;
  /// Portfolio runs only: the winning backend and one timing row per raced
  /// backend (spec order).
  std::string winner;
  std::vector<engine::BackendTiming> backend_timings;
  /// Portfolio runs with lemma exchange: hub-level traffic counters.
  engine::LemmaExchangeStats exchange;
};

/// Builds the ic3::Config corresponding to an IC3-family EngineKind.
/// (Compatibility shim over engine::ic3_config_for.)
[[nodiscard]] ic3::Config config_for(EngineKind kind, std::uint64_t seed);

/// Checks property `property_index` of `aig` with the chosen engine.
CheckResult check_aig(const aig::Aig& aig, const CheckOptions& options);

/// Same, over an already-built transition system.
CheckResult check_ts(const ts::TransitionSystem& ts,
                     const CheckOptions& options);

}  // namespace pilot::check
