/// BMC and k-induction tests: exact counterexample depths (known by
/// construction), bound behaviour, inductive proofs, and simple-path
/// completeness.
#include <gtest/gtest.h>

#include "bmc/bmc.hpp"
#include "bmc/kinduction.hpp"
#include "cert/certificate.hpp"
#include "circuits/families.hpp"
#include "ic3/witness.hpp"
#include "ts/transition_system.hpp"

namespace pilot::bmc {
namespace {

struct DepthCase {
  circuits::CircuitCase cc;
  int depth;
};

class BmcExactDepth : public ::testing::TestWithParam<int> {};

TEST_P(BmcExactDepth, CounterDepthMatchesTarget) {
  const int target = GetParam();
  const auto cc = circuits::counter_unsafe(6, target);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  const BmcResult r = run_bmc(ts, BmcOptions{});
  ASSERT_EQ(r.verdict, BmcVerdict::kUnsafe);
  EXPECT_EQ(r.counterexample_length, target);
}

INSTANTIATE_TEST_SUITE_P(Depths, BmcExactDepth,
                         ::testing::Values(0, 1, 7, 23));

TEST(Bmc, FamiliesWithKnownDepths) {
  const std::vector<DepthCase> cases = {
      {circuits::shift_register(5, false), 5},
      {circuits::token_ring_unsafe(4), 1},
      {circuits::twin_counters_unsafe(4), 1},
      {circuits::gray_counter_unsafe(4), 2},
      {circuits::fifo_unsafe(4, 6), 7},
      {circuits::combination_lock_unsafe(2, {1, 3, 0}), 3},
  };
  for (const auto& [cc, depth] : cases) {
    const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
    const BmcResult r = run_bmc(ts, BmcOptions{});
    ASSERT_EQ(r.verdict, BmcVerdict::kUnsafe) << cc.name;
    EXPECT_EQ(r.counterexample_length, depth) << cc.name;
    EXPECT_EQ(r.counterexample_length, cc.expected_cex_length) << cc.name;
  }
}

TEST(Bmc, TraceIsValid) {
  const auto cc = circuits::fifo_unsafe(4, 6);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  const BmcResult r = run_bmc(ts, BmcOptions{});
  ASSERT_TRUE(r.trace.has_value());
  const ic3::CheckOutcome out = ic3::check_trace(ts, *r.trace);
  EXPECT_TRUE(out.ok) << out.reason;
}

TEST(Bmc, BoundReachedOnSafeModel) {
  const auto cc = circuits::token_ring_safe(4);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  BmcOptions options;
  options.max_bound = 12;
  const BmcResult r = run_bmc(ts, options);
  EXPECT_EQ(r.verdict, BmcVerdict::kBoundReached);
}

TEST(Bmc, RespectsConstraints) {
  // The constrained shift register has no counterexample at any bound.
  const auto cc = circuits::shift_register(4, true);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  BmcOptions options;
  options.max_bound = 10;
  EXPECT_EQ(run_bmc(ts, options).verdict, BmcVerdict::kBoundReached);
}

TEST(Kinduction, ProvesInductiveProperties) {
  // The token ring's "at most one token" is inductive at small k with
  // simple-path constraints.
  const auto cc = circuits::token_ring_safe(5);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  const KindResult r = run_kinduction(ts, KindOptions{});
  EXPECT_EQ(r.verdict, KindVerdict::kSafe);
}

TEST(Kinduction, FindsCounterexamples) {
  const auto cc = circuits::counter_unsafe(5, 6);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  const KindResult r = run_kinduction(ts, KindOptions{});
  ASSERT_EQ(r.verdict, KindVerdict::kUnsafe);
  EXPECT_EQ(r.k, 6);
}

TEST(Kinduction, SimplePathCompletesOnFiniteSystems) {
  // The wrap counter needs simple-path constraints to converge: states
  // 4..7 are unreachable but non-bad, and without disequalities the step
  // case keeps finding longer fake paths through them.
  const auto cc = circuits::counter_wrap_safe(3, 4, 6);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  KindOptions options;
  options.max_k = 20;
  const KindResult with_sp = run_kinduction(ts, options);
  EXPECT_EQ(with_sp.verdict, KindVerdict::kSafe);
}

TEST(Kinduction, UnsafeWitnessesReplayUnderBitSimulator) {
  // Property: every counterexample extract_unrolled_trace produces from the
  // base-case model must replay concretely — once through ic3::check_trace
  // and once solver-free through the witness-certificate path (an HWMCC
  // rendering driven through aig::BitSimulator).
  std::vector<circuits::CircuitCase> cases;
  cases.push_back(circuits::counter_unsafe(4, 9));
  cases.push_back(circuits::counter_enable_unsafe(3, 5));
  cases.push_back(circuits::token_ring_unsafe(4));
  cases.push_back(circuits::gray_counter_unsafe(4));
  cases.push_back(circuits::fifo_unsafe(3, 5));
  cases.push_back(circuits::twin_counters_unsafe(4));
  cases.push_back(circuits::saturating_accumulator_unsafe(3, 5));
  cases.push_back(circuits::arbiter_unsafe(3));
  for (const circuits::CircuitCase& cc : cases) {
    const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
    const KindResult r = run_kinduction(ts, KindOptions{});
    ASSERT_EQ(r.verdict, KindVerdict::kUnsafe) << cc.name;
    ASSERT_TRUE(r.trace.has_value()) << cc.name;
    const ic3::CheckOutcome replay = ic3::check_trace(ts, *r.trace);
    EXPECT_TRUE(replay.ok) << cc.name << ": " << replay.reason;
    const cert::Certificate cert = cert::from_trace(ts, *r.trace);
    const ic3::CheckOutcome certified = cert::check(ts, cert);
    EXPECT_TRUE(certified.ok) << cc.name << ": " << certified.reason;
  }
}

TEST(Kinduction, DeadlineReturnsUnknown) {
  const auto cc = circuits::ring_parity_safe(12);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  const Deadline expired = Deadline::in_milliseconds(0);
  while (!expired.expired()) {
  }
  const KindResult r = run_kinduction(ts, KindOptions{}, expired);
  EXPECT_EQ(r.verdict, KindVerdict::kUnknown);
}

}  // namespace
}  // namespace pilot::bmc
