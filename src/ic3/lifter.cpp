#include "ic3/lifter.hpp"

#include <algorithm>

#include "ic3/solver_manager.hpp"  // TimeoutError
#include "obs/phase.hpp"

namespace pilot::ic3 {

Lifter::Lifter(const ts::TransitionSystem& ts, const Config& cfg,
               Ic3Stats& stats)
    : ts_(ts), cfg_(cfg), stats_(stats) {
  if (cfg_.lift_mode == Config::LiftMode::kSat) {
    solver_ = std::make_unique<sat::Solver>();
    solver_->set_seed(cfg.seed);
    ts_.install(*solver_);
  } else if (cfg_.lift_mode == Config::LiftMode::kTernary) {
    if (cfg_.lift_sim == Config::LiftSim::kPacked) {
      packed_ = std::make_unique<aig::PackedTernarySimulator>(ts_.aig());
    } else {
      ternary_ = std::make_unique<aig::TernarySimulator>(ts_.aig());
      latch_values_.resize(ts_.num_latches());
      input_values_.resize(ts_.num_inputs());
    }
  }
}

void Lifter::maybe_rebuild() {
  if (retired_tmp_ < cfg_.rebuild_tmp_threshold) return;
  solver_ = std::make_unique<sat::Solver>();
  solver_->set_seed(cfg_.seed);
  ts_.install(*solver_);
  retired_tmp_ = 0;
}

Cube Lifter::core_projection(const Cube& full) const {
  const std::vector<Lit>& core = solver_->core();
  std::vector<Lit> kept;
  for (const Lit l : full) {
    if (std::find(core.begin(), core.end(), l) != core.end()) {
      kept.push_back(l);
    }
  }
  if (kept.empty()) return full;  // defensive: keep something
  return Cube::from_sorted(std::move(kept));
}

// ----- ternary lifting -------------------------------------------------------

aig::TV Lifter::sim_value(aig::AigLit lit, std::size_t lane) const {
  return packed_ ? packed_->value(lit, lane) : ternary_->value(lit);
}

Cube Lifter::ternary_lift(const Cube& full, const std::vector<Lit>& inputs,
                          const TargetFn& target_definite) {
  return packed_ ? ternary_lift_packed(full, inputs, target_definite)
                 : ternary_lift_byte(full, inputs, target_definite);
}

Cube Lifter::ternary_lift_byte(const Cube& full, const std::vector<Lit>& inputs,
                               const TargetFn& target_definite) {
  // Seed the simulator frame: latches from `full`, inputs from `inputs`,
  // everything else X.
  std::fill(latch_values_.begin(), latch_values_.end(), aig::TV::kX);
  std::fill(input_values_.begin(), input_values_.end(), aig::TV::kX);
  for (const Lit l : full) {
    const int idx = ts_.latch_index_of(l.var());
    if (idx >= 0) {
      latch_values_[static_cast<std::size_t>(idx)] =
          l.sign() ? aig::TV::kZero : aig::TV::kOne;
    }
  }
  for (const Lit l : inputs) {
    for (std::size_t i = 0; i < ts_.num_inputs(); ++i) {
      if (ts_.input_var(i) == l.var()) {
        input_values_[i] = l.sign() ? aig::TV::kZero : aig::TV::kOne;
        break;
      }
    }
  }
  ternary_->compute(latch_values_, input_values_);
  if (!target_definite(0)) return full;  // partial model: nothing provable

  // Drop latches one at a time, keeping the X when the target stays
  // definite — one full sweep per latch; the packed backend below is the
  // production path.
  std::vector<Lit> kept;
  std::vector<Lit> order(full.begin(), full.end());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Lit l = order[i];
    const int idx = ts_.latch_index_of(l.var());
    if (idx < 0) continue;
    const aig::TV saved = latch_values_[static_cast<std::size_t>(idx)];
    latch_values_[static_cast<std::size_t>(idx)] = aig::TV::kX;
    ternary_->compute(latch_values_, input_values_);
    if (!target_definite(0)) {
      latch_values_[static_cast<std::size_t>(idx)] = saved;  // must keep
      kept.push_back(l);
    }
  }
  if (kept.empty()) return full;  // defensive
  return Cube::from_sorted(std::move(kept));
}

Cube Lifter::ternary_lift_packed(const Cube& full,
                                 const std::vector<Lit>& inputs,
                                 const TargetFn& target_definite) {
  constexpr std::size_t kLanes = aig::PackedTernarySimulator::kLanes;
  aig::PackedTernarySimulator& sim = *packed_;
  // Seed every lane with the full frame: latches from `full`, inputs from
  // `inputs`, everything else X.
  for (std::size_t i = 0; i < ts_.num_latches(); ++i) {
    sim.set_latch(i, aig::TV::kX);
  }
  for (std::size_t i = 0; i < ts_.num_inputs(); ++i) {
    sim.set_input(i, aig::TV::kX);
  }
  struct Cand {
    Lit lit;
    std::size_t idx;  // latch index
    aig::TV v;        // assigned value in `full`
    bool keep = false;
  };
  std::vector<Cand> cands;
  cands.reserve(full.size());
  for (const Lit l : full) {
    const int idx = ts_.latch_index_of(l.var());
    if (idx < 0) continue;
    const aig::TV v = l.sign() ? aig::TV::kZero : aig::TV::kOne;
    sim.set_latch(static_cast<std::size_t>(idx), v);
    cands.push_back(Cand{l, static_cast<std::size_t>(idx), v});
  }
  for (const Lit l : inputs) {
    for (std::size_t i = 0; i < ts_.num_inputs(); ++i) {
      if (ts_.input_var(i) == l.var()) {
        sim.set_input(i, l.sign() ? aig::TV::kZero : aig::TV::kOne);
        break;
      }
    }
  }
  sim.compute();
  if (!target_definite(0)) {  // partial model: nothing provable
    stats_.num_packed_sim_words += sim.take_words_evaluated();
    return full;
  }

  // Phase 1 — batched triage: lane j X-es out candidate j only, so one
  // sweep judges up to 32 candidates against the original assignment.  A
  // candidate whose target goes X here can never be dropped later —
  // ternary simulation is monotone in X, and the live frame only gains
  // X's — so it is kept permanently without ever re-testing it.
  std::vector<std::size_t> plausible;
  for (std::size_t base = 0; base < cands.size(); base += kLanes) {
    const std::size_t n = std::min(cands.size() - base, kLanes);
    for (std::size_t j = 0; j < n; ++j) {
      sim.set_latch(cands[base + j].idx, j, aig::TV::kX);
    }
    sim.compute();
    for (std::size_t j = 0; j < n; ++j) {
      if (target_definite(j)) {
        plausible.push_back(base + j);
      } else {
        cands[base + j].keep = true;
      }
      sim.set_latch(cands[base + j].idx, j, cands[base + j].v);
    }
  }
  // Re-establish the full assignment on every lane: the triage sweeps left
  // the AND words computed for the last batch's X-outs.
  sim.compute();

  // Phase 2 — sequential confirmation of the plausible candidates, in cube
  // order, against the live frame (accepted X's accumulate): X out one
  // latch at a time, re-evaluating only its fanout cone.  This preserves
  // the certified-assignment invariant of the byte-wise loop, so both
  // backends produce identical cubes.
  for (const std::size_t c : plausible) {
    sim.trial_set_latch(cands[c].idx, aig::TV::kX);
    if (target_definite(0)) {
      sim.trial_commit();  // X accepted: candidate dropped
    } else {
      sim.trial_rollback();
      cands[c].keep = true;
    }
  }
  stats_.num_packed_sim_words += sim.take_words_evaluated();
  std::vector<Lit> kept;
  for (const Cand& c : cands) {
    if (c.keep) kept.push_back(c.lit);
  }
  if (kept.empty()) return full;  // defensive
  return Cube::from_sorted(std::move(kept));
}

Cube Lifter::ternary_lift_predecessor(const Cube& pred_full,
                                      const std::vector<Lit>& inputs,
                                      const Cube& successor) {
  auto target_definite = [&](std::size_t lane) {
    for (const aig::AigLit c : ts_.aig().constraints()) {
      if (sim_value(c, lane) != aig::TV::kOne) return false;
    }
    for (const Lit l : successor) {
      const int idx = ts_.latch_index_of(l.var());
      const std::uint32_t latch_node =
          ts_.aig().latches()[static_cast<std::size_t>(idx)];
      const aig::TV v = sim_value(ts_.aig().next(latch_node), lane);
      const aig::TV want = l.sign() ? aig::TV::kZero : aig::TV::kOne;
      if (v != want) return false;
    }
    return true;
  };
  return ternary_lift(pred_full, inputs, target_definite);
}

Cube Lifter::ternary_lift_bad(const Cube& state_full,
                              const std::vector<Lit>& inputs) {
  auto target_definite = [&](std::size_t lane) {
    // No constraint checks needed: the bad cone conjoins the invariant
    // constraints at TransitionSystem construction, so bad == 1 (definite)
    // already forces every constraint definite-true.
    const Lit bad = ts_.bad();
    const aig::TV v = sim_value(
        aig::AigLit::make(static_cast<std::uint32_t>(bad.var()), bad.sign()),
        lane);
    return v == aig::TV::kOne;
  };
  return ternary_lift(state_full, inputs, target_definite);
}

// ----- public entry points ----------------------------------------------------

Cube Lifter::lift_predecessor(const Cube& pred_full,
                              const std::vector<Lit>& inputs,
                              const Cube& successor,
                              const Deadline& deadline) {
  obs::PhaseScope phase(&stats_.phases, obs::Phase::kLift);
  switch (cfg_.lift_mode) {
    case Config::LiftMode::kNone:
      return pred_full;
    case Config::LiftMode::kTernary:
      return ternary_lift_predecessor(pred_full, inputs, successor);
    case Config::LiftMode::kSat:
      break;
  }
  maybe_rebuild();
  const Lit tmp = Lit::make(solver_->new_var());
  std::vector<Lit> clause{~tmp};
  for (const Lit l : successor) clause.push_back(~ts_.prime(l));
  solver_->add_clause(clause);

  std::vector<Lit> assumptions;
  assumptions.reserve(pred_full.size() + inputs.size() + 1);
  // Assumption order matters for core quality: inputs and the activation
  // first so state literals land late in the final conflict analysis.
  assumptions.push_back(tmp);
  assumptions.insert(assumptions.end(), inputs.begin(), inputs.end());
  for (const Lit l : pred_full) assumptions.push_back(l);

  const sat::SolveResult res = solver_->solve(assumptions, deadline);
  solver_->add_unit(~tmp);
  ++retired_tmp_;
  if (res == sat::SolveResult::kUnknown) throw TimeoutError{};
  if (res == sat::SolveResult::kSat) return pred_full;  // defensive
  return core_projection(pred_full);
}

Cube Lifter::lift_bad(const Cube& state_full, const std::vector<Lit>& inputs,
                      const Deadline& deadline) {
  obs::PhaseScope phase(&stats_.phases, obs::Phase::kLift);
  switch (cfg_.lift_mode) {
    case Config::LiftMode::kNone:
      return state_full;
    case Config::LiftMode::kTernary:
      return ternary_lift_bad(state_full, inputs);
    case Config::LiftMode::kSat:
      break;
  }
  maybe_rebuild();
  std::vector<Lit> assumptions;
  assumptions.reserve(state_full.size() + inputs.size() + 1);
  assumptions.push_back(~ts_.bad());
  assumptions.insert(assumptions.end(), inputs.begin(), inputs.end());
  for (const Lit l : state_full) assumptions.push_back(l);

  const sat::SolveResult res = solver_->solve(assumptions, deadline);
  if (res == sat::SolveResult::kUnknown) throw TimeoutError{};
  if (res == sat::SolveResult::kSat) return state_full;  // defensive
  return core_projection(state_full);
}

}  // namespace pilot::ic3
