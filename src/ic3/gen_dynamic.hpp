/// \file gen_dynamic.hpp
/// The "dynamic" meta-strategy: mid-run switching between generalization
/// strategies driven by observed success rates — the dynamic-adjustment
/// idea of "Extended CTG Generalization and Dynamic Adjustment of
/// Generalization Strategies in IC3" (SuYC25).
///
/// The driver (Generalizer) records every generalization outcome into a
/// per-strategy sliding window in Ic3Stats; at each propagation boundary
/// this strategy evaluates the *active* sub-strategy's windowed success
/// rate and, once it has a full window of fresh samples, switches away
/// when the rate falls below the threshold.  Switch targets prefer
/// never-tried candidates (exploration, in rotation order), then the
/// best windowed success rate among the rest.
///
/// Spec: "dynamic[:window[,threshold]]" — e.g. "dynamic:8,0.5" evaluates
/// over the last 8 generalizations against a 50% success bar.  Defaults
/// come from Config::dynamic_window / dynamic_threshold.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ic3/gen_strategy.hpp"

namespace pilot::ic3 {

/// Parsed ":args" of a dynamic spec; unset fields fall back to Config.
struct DynamicArgs {
  std::optional<std::size_t> window;
  std::optional<double> threshold;
};

/// Parses "window[,threshold]" (either part may be omitted: "", "8",
/// "8,0.5").  Throws std::invalid_argument on malformed numbers, window
/// outside [1, GenStrategyStats::kGenWindowCapacity], or threshold
/// outside [0, 1].
[[nodiscard]] DynamicArgs parse_dynamic_args(const std::string& args);

class DynamicStrategy final : public GenStrategy {
 public:
  /// Builds the candidate pool ("predict", "ctg", "cav23", "down") over
  /// `ctx` and applies `args` on top of the Config defaults.
  DynamicStrategy(const GenContext& ctx, const std::string& args);

  [[nodiscard]] const std::string& name() const override;
  [[nodiscard]] const std::string& active_name() const override;

  Cube generalize(const Cube& cube, const Cube& core, std::size_t level,
                  const Deadline& deadline,
                  const AddLemmaFn& add_lemma) override;

  [[nodiscard]] bool wants_push_failures() const override { return true; }
  void on_push_failure(const Cube& lemma, std::size_t level,
                       Cube ctp) override;
  void on_propagate() override;
  void on_lemma(const Cube& lemma, std::size_t level) override;
  void on_blocking_cti(const Cube& state, const std::vector<Lit>& inputs,
                       std::size_t level) override;

  // --- policy introspection (unit tests drive these directly) ---

  /// Candidate names in rotation order.
  [[nodiscard]] std::vector<std::string> candidate_names() const;
  /// Runs one policy evaluation against the Ic3Stats windows; returns true
  /// when the active strategy changed (statistics updated accordingly).
  bool evaluate_switch();
  [[nodiscard]] std::size_t window() const { return window_; }
  [[nodiscard]] double threshold() const { return threshold_; }

 private:
  [[nodiscard]] std::size_t pick_successor() const;

  const GenContext ctx_;
  std::vector<std::unique_ptr<GenStrategy>> candidates_;
  std::size_t active_ = 0;
  std::size_t window_ = 16;
  double threshold_ = 0.4;
  /// Active strategy's lifetime attempt count at the moment it became
  /// active; the policy waits for `window_` *fresh* samples before judging
  /// so a stale window cannot trigger an immediate re-switch.
  std::uint64_t attempts_at_activation_ = 0;
};

}  // namespace pilot::ic3
