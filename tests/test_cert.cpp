/// Certificate subsystem tests: emission from engine verdicts, text
/// round-tripping with token-naming parse errors, independent-checker
/// accept/reject behavior (including hand-corrupted certificates), the
/// self-contained AIGER certificate circuit, and the portfolio's
/// fault-injection path — a lying backend must be quarantined while the
/// race still returns the correct certified verdict.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cert/certificate.hpp"
#include "check/checker.hpp"
#include "circuits/families.hpp"
#include "corpus/corpus.hpp"
#include "engine/backend.hpp"
#include "engine/portfolio.hpp"
#include "ic3/witness.hpp"
#include "sat/solver.hpp"
#include "ts/transition_system.hpp"
#include "ts/unroller.hpp"

namespace pilot::cert {
namespace {

check::CheckResult solve(const aig::Aig& a, const std::string& spec) {
  check::CheckOptions co;
  co.engine_spec = spec;
  co.budget_ms = 60000;
  co.verify_witness = true;
  return check::check_aig(a, co);
}

std::optional<Certificate> emit(const ts::TransitionSystem& ts,
                                const check::CheckResult& r,
                                std::string* why = nullptr) {
  std::string local;
  return from_verdict(ts, r.verdict, r.invariant, r.trace, r.kind_k,
                      r.kind_simple_path, /*property_index=*/0,
                      why != nullptr ? why : &local);
}

TEST(Cert, InvariantCertRoundTripsAndChecks) {
  const auto cc = circuits::token_ring_safe(4);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  const check::CheckResult r = solve(cc.aig, "ic3-ctg");
  ASSERT_EQ(r.verdict, ic3::Verdict::kSafe);
  ASSERT_TRUE(r.invariant.has_value());

  const std::optional<Certificate> cert = emit(ts, r);
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->kind, Certificate::Kind::kInvariant);
  EXPECT_EQ(cert->num_latches, ts.num_latches());
  const ic3::CheckOutcome ok = check(ts, *cert, /*seed=*/7);
  EXPECT_TRUE(ok.ok) << ok.reason;

  // Text round trip: parse(to_text(c)) reproduces every field and the
  // parsed form still checks.
  std::string error;
  const std::optional<Certificate> parsed = parse(to_text(*cert), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->kind, cert->kind);
  EXPECT_EQ(parsed->property_index, cert->property_index);
  EXPECT_EQ(parsed->num_latches, cert->num_latches);
  EXPECT_EQ(parsed->clauses, cert->clauses);
  EXPECT_TRUE(check(ts, *parsed, /*seed=*/11).ok);
}

TEST(Cert, HandCorruptedInvariantCertRejected) {
  const auto cc = circuits::token_ring_safe(3);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  const check::CheckResult r = solve(cc.aig, "ic3-ctg");
  ASSERT_EQ(r.verdict, ic3::Verdict::kSafe);
  std::optional<Certificate> cert = emit(ts, r);
  ASSERT_TRUE(cert.has_value());

  // (l0) ∧ (¬l0) admits no state at all: initiation must fail, loudly.
  cert->clauses = {{1}, {-1}};
  const ic3::CheckOutcome out = check(ts, *cert);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.reason.find("initiation"), std::string::npos) << out.reason;

  // A latch-count mismatch is rejected before any solving.
  std::optional<Certificate> wrong = emit(ts, r);
  wrong->num_latches += 1;
  EXPECT_FALSE(check(ts, *wrong).ok);
}

TEST(Cert, CertificateCircuitBadsAreUnsatisfiable) {
  const auto cc = circuits::token_ring_safe(4);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  const check::CheckResult r = solve(cc.aig, "ic3-ctg");
  ASSERT_EQ(r.verdict, ic3::Verdict::kSafe);
  const std::optional<Certificate> cert = emit(ts, r);
  ASSERT_TRUE(cert.has_value());

  const aig::Aig circuit = certificate_circuit(ts, *cert);
  ASSERT_EQ(circuit.bads().size(), 3u);
  EXPECT_EQ(circuit.num_latches(), 0u);  // purely combinational
  for (std::size_t i = 0; i < circuit.bads().size(); ++i) {
    const ts::TransitionSystem cts =
        ts::TransitionSystem::from_aig(circuit, i);
    sat::Solver solver;
    ts::Unroller un(cts, solver, /*assert_init=*/false);
    un.extend_to(0);
    EXPECT_EQ(solver.solve(std::vector<sat::Lit>{un.bad(0)}),
              sat::SolveResult::kUnsat)
        << "certificate-circuit bad output " << i << " is satisfiable";
  }

  // A corrupted certificate's circuit must NOT discharge: with the
  // contradictory invariant (l0)∧(¬l0), Init ∧ ¬Inv is exactly Init.
  Certificate bogus = *cert;
  bogus.clauses = {{1}, {-1}};
  const aig::Aig bad_circuit = certificate_circuit(ts, bogus);
  const ts::TransitionSystem bts =
      ts::TransitionSystem::from_aig(bad_circuit, 0);
  sat::Solver solver;
  ts::Unroller un(bts, solver, /*assert_init=*/false);
  un.extend_to(0);
  EXPECT_EQ(solver.solve(std::vector<sat::Lit>{un.bad(0)}),
            sat::SolveResult::kSat);
  EXPECT_THROW((void)certificate_circuit(
                   ts, from_kinduction(ts, 1, true)),
               std::invalid_argument);
}

TEST(Cert, KinductionCertChecksAndWrongBoundRejected) {
  const auto cc = circuits::shift_register(6, /*constrain_input_zero=*/true);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  const check::CheckResult r = solve(cc.aig, "kind");
  ASSERT_EQ(r.verdict, ic3::Verdict::kSafe);
  ASSERT_GE(r.kind_k, 0);

  std::optional<Certificate> cert = emit(ts, r);
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->kind, Certificate::Kind::kKinduction);
  const ic3::CheckOutcome ok = check(ts, *cert, /*seed=*/3);
  EXPECT_TRUE(ok.ok) << ok.reason;

  // The shift register is not 0-inductive: a state with the second-to-last
  // stage set reaches bad in one step, so the shrunken bound must fail.
  cert->k = 0;
  const ic3::CheckOutcome rejected = check(ts, *cert);
  EXPECT_FALSE(rejected.ok);
  EXPECT_NE(rejected.reason.find("step case"), std::string::npos)
      << rejected.reason;
}

TEST(Cert, WitnessCertReplaysAndCorruptionsRejected) {
  const auto cc = circuits::counter_unsafe(4, 9);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  const check::CheckResult r = solve(cc.aig, "bmc");
  ASSERT_EQ(r.verdict, ic3::Verdict::kUnsafe);
  ASSERT_TRUE(r.trace.has_value());

  const std::optional<Certificate> cert = emit(ts, r);
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->kind, Certificate::Kind::kWitness);
  const ic3::CheckOutcome ok = check(ts, *cert);
  EXPECT_TRUE(ok.ok) << ok.reason;

  // Corrupting the initial state must be caught even though the replay
  // itself would still "work": a trace from a non-initial state proves
  // nothing.  The counter resets to all-zero; force latch 0 high.
  {
    Certificate c = *cert;
    const std::size_t latch_line = c.witness.find('\n', 0) + 1;
    const std::size_t start = c.witness.find('\n', latch_line) + 1;
    ASSERT_EQ(c.witness[start], '0');
    c.witness[start] = '1';
    const ic3::CheckOutcome out = check(ts, c);
    EXPECT_FALSE(out.ok);
    EXPECT_NE(out.reason.find("reset value"), std::string::npos)
        << out.reason;
  }
  // Dropping the last input frame leaves the counter one short of the
  // target, so the bad signal never rises.
  {
    Certificate c = *cert;
    const std::size_t dot = c.witness.rfind("\n.");
    const std::size_t prev = c.witness.rfind('\n', dot - 1);
    c.witness = c.witness.substr(0, prev) + c.witness.substr(dot);
    const ic3::CheckOutcome out = check(ts, c);
    EXPECT_FALSE(out.ok);
    EXPECT_NE(out.reason.find("bad signal"), std::string::npos)
        << out.reason;
  }
  // Truncating the trailing "." is a layout error, named as such.
  {
    Certificate c = *cert;
    c.witness = c.witness.substr(0, c.witness.rfind("\n."));
    EXPECT_FALSE(check(ts, c).ok);
  }
}

TEST(Cert, ParseErrorsNameTheOffendingToken) {
  std::string error;
  EXPECT_FALSE(parse("pilot-cert v2\nkind invariant\n", &error).has_value());
  EXPECT_NE(error.find("pilot-cert v2"), std::string::npos) << error;

  EXPECT_FALSE(parse("pilot-cert v1\nkind sorcery\nproperty 0\nlatches 1\n",
                     &error)
                   .has_value());
  EXPECT_NE(error.find("sorcery"), std::string::npos) << error;

  // A clause-count lie is caught with the expected count in the message.
  EXPECT_FALSE(parse("pilot-cert v1\nkind invariant\nproperty 0\n"
                     "latches 2\nclauses 3\n1 2\n",
                     &error)
                   .has_value());
  EXPECT_NE(error.find("3"), std::string::npos) << error;
}

TEST(Cert, SaveLoadRoundTrips) {
  const auto cc = circuits::counter_unsafe(3, 5);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  const check::CheckResult r = solve(cc.aig, "bmc");
  ASSERT_EQ(r.verdict, ic3::Verdict::kUnsafe);
  const std::optional<Certificate> cert = emit(ts, r);
  ASSERT_TRUE(cert.has_value());

  const std::string path = ::testing::TempDir() + "pilot_test_cert.cert";
  ASSERT_TRUE(save(*cert, path));
  std::string error;
  const std::optional<Certificate> loaded = load(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->witness, cert->witness);
  EXPECT_TRUE(check(ts, *loaded).ok);

  EXPECT_FALSE(load(path + ".does-not-exist", &error).has_value());
  EXPECT_FALSE(error.empty());
}

#ifdef PILOT_TEST_CORPUS_DIR
TEST(Cert, FixtureCorpusVerdictsAllCertify) {
  // Every definitive verdict over the checked-in fixture corpus must
  // certify — SAFE cases through the invariant path, UNSAFE through the
  // witness replay — and a hand-corrupted certificate must be rejected.
  const std::vector<corpus::Case> cases =
      corpus::resolve_corpus(PILOT_TEST_CORPUS_DIR);
  ASSERT_FALSE(cases.empty());
  std::size_t certified = 0;
  for (const corpus::Case& c : cases) {
    const aig::Aig model = c.load();
    const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(model);
    const check::CheckResult r = solve(model, "ic3-ctg");
    if (r.verdict == ic3::Verdict::kUnknown) continue;
    std::string why;
    const std::optional<Certificate> cert = emit(ts, r, &why);
    ASSERT_TRUE(cert.has_value()) << c.name << ": " << why;
    const ic3::CheckOutcome ok = check(ts, *cert, /*seed=*/42);
    EXPECT_TRUE(ok.ok) << c.name << ": " << ok.reason;
    ++certified;

    if (cert->kind == Certificate::Kind::kInvariant) {
      Certificate bogus = *cert;
      bogus.clauses = {{1}, {-1}};
      EXPECT_FALSE(check(ts, bogus).ok) << c.name;
    }
  }
  EXPECT_GE(certified, 3u);  // the fixture corpus has 3 solvable cases
}
#endif

// --- portfolio fault injection ----------------------------------------------

/// A backend that always claims SAFE.  "bare" carries no payload at all;
/// "bogus" fabricates a one-clause invariant ("latch 0 is never 1") that
/// the independent checker must refute on any circuit where latch 0 can
/// rise.  Registered once per process.
class LyingBackend final : public engine::Backend {
 public:
  LyingBackend(std::string name, const ts::TransitionSystem& ts, bool bogus)
      : name_(std::move(name)) {
    if (bogus && ts.num_latches() > 0) {
      ic3::InductiveInvariant inv;
      inv.lemma_cubes.push_back(ic3::Cube::from_lits(
          {sat::Lit::make(ts.state_var(0), /*sign=*/false)}));
      invariant_ = std::move(inv);
    }
  }
  [[nodiscard]] const std::string& name() const override { return name_; }
  engine::EngineResult check(const Deadline&, const CancelToken*) override {
    engine::EngineResult r;
    r.verdict = ic3::Verdict::kSafe;
    r.invariant = invariant_;
    return r;
  }

 private:
  std::string name_;
  std::optional<ic3::InductiveInvariant> invariant_;
};

void register_liars() {
  static const bool once = [] {
    engine::register_backend(
        "lying-safe-bare",
        [](const ts::TransitionSystem& ts, const engine::BackendContext&) {
          return std::make_unique<LyingBackend>("lying-safe-bare", ts,
                                                /*bogus=*/false);
        });
    engine::register_backend(
        "lying-safe-bogus",
        [](const ts::TransitionSystem& ts, const engine::BackendContext&) {
          return std::make_unique<LyingBackend>("lying-safe-bogus", ts,
                                                /*bogus=*/true);
        });
    return true;
  }();
  (void)once;
}

TEST(PortfolioQuarantine, LyingBackendQuarantinedRaceReturnsTruth) {
  register_liars();
  // Both liars race BMC on an unsafe counter whose bit 0 toggles: the bare
  // liar fails from_verdict (SAFE without payload), the bogus one fails the
  // consecution check, and the race must still return certified UNSAFE.
  const auto cc = circuits::counter_unsafe(4, 9);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  engine::PortfolioOptions po;
  po.backends = {"lying-safe-bare", "lying-safe-bogus", "bmc"};
  po.certify = true;
  const engine::PortfolioResult pr = engine::run_portfolio(ts, po);

  EXPECT_EQ(pr.result.verdict, ic3::Verdict::kUnsafe);
  EXPECT_EQ(pr.winner, "bmc");
  ASSERT_EQ(pr.timings.size(), 3u);
  for (const engine::BackendTiming& t : pr.timings) {
    if (t.name == "bmc") {
      EXPECT_TRUE(t.winner);
      EXPECT_FALSE(t.quarantined);
    } else {
      EXPECT_FALSE(t.winner);
      EXPECT_TRUE(t.quarantined) << t.name;
      EXPECT_FALSE(t.quarantine_reason.empty()) << t.name;
      // The lie was recorded, not raced: the verdict column still shows
      // what the backend claimed.
      EXPECT_EQ(t.verdict, ic3::Verdict::kSafe);
    }
  }
  EXPECT_GE(pr.result.stats.num_cert_checks, 1u);
}

TEST(PortfolioQuarantine, AllBackendsQuarantinedReturnsUnknown) {
  register_liars();
  const auto cc = circuits::counter_unsafe(3, 5);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  engine::PortfolioOptions po;
  po.backends = {"lying-safe-bare", "lying-safe-bogus"};
  po.certify = true;
  const engine::PortfolioResult pr = engine::run_portfolio(ts, po);

  EXPECT_EQ(pr.result.verdict, ic3::Verdict::kUnknown);
  EXPECT_TRUE(pr.winner.empty());
  for (const engine::BackendTiming& t : pr.timings) {
    EXPECT_TRUE(t.quarantined) << t.name;
  }
}

TEST(PortfolioQuarantine, CertifyOffAcceptsTheLie) {
  register_liars();
  // The gate, not the race, is what catches the lie: with certification
  // off the bogus SAFE wins.  (This is exactly why the default is on.)
  const auto cc = circuits::counter_unsafe(3, 5);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  engine::PortfolioOptions po;
  po.backends = {"lying-safe-bare"};
  po.certify = false;
  const engine::PortfolioResult pr = engine::run_portfolio(ts, po);
  EXPECT_EQ(pr.result.verdict, ic3::Verdict::kSafe);
  EXPECT_EQ(pr.winner, "lying-safe-bare");
}

}  // namespace
}  // namespace pilot::cert
