/// \file pilot_main.cpp
/// `pilot` — the top-level command-line model checker built on pilot_core.
///
///   pilot [options] model.aag|model.aig        check an AIGER file
///   pilot [options] m1.aag m2.aig ...          batch-check several files
///   pilot --corpus <manifest|dir> [options]    batch-check a corpus
///   pilot --family FAMILY [options]            check a built-in circuit
///   pilot --family FAMILY --family-out out.aag write the circuit, don't check
///   pilot serve --socket PATH [options]        Unix-socket verdict server
///   pilot submit --socket PATH file.aag ...    client for a running server
///
/// Engine selection: `--engine` picks a backend (or portfolio[:a+b+c] /
/// portfolio-x[:a+b+c] with lemma exchange); `--gen` overrides the
/// generalization strategy of IC3-family engines (down / ctg / cav23 /
/// predict / dynamic[:window,threshold] — see ic3/gen_strategy.hpp).
///
/// Single-file mode prints the verdict as one line (SAFE / UNSAFE /
/// UNKNOWN) on stdout; diagnostics go to stderr.  With --witness, UNSAFE
/// runs print the counterexample in the AIGER/HWMCC witness format and SAFE
/// runs print the "0\nb<index>\n." certificate header.
///
/// Batch mode (--corpus, or more than one input file) runs every case with
/// the selected engine and emits one results-db JSONL row per case — the
/// same schema `pilot-bench run` writes (corpus/results_db.hpp) — to --out,
/// or to stdout when --out is not given.
///
/// Exit codes (HWMCC convention, shared with examples/aiger_check):
///   0 = SAFE, 1 = UNSAFE, 2 = UNKNOWN, 3 = usage/parse/internal error
/// Batch mode: 0 = completed, 1 = a verdict contradicted the manifest's
/// expected status, 3 = a case failed to load or a usage/internal error.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <exception>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aiger_io.hpp"
#include "cert/certificate.hpp"
#include "check/checker.hpp"
#include "check/runner.hpp"
#include "circuits/families.hpp"
#include "corpus/corpus.hpp"
#include "corpus/results_db.hpp"
#include "engine/backend.hpp"
#include "engine/portfolio.hpp"
#include "ic3/gen_strategy.hpp"
#include "ic3/witness.hpp"
#include "obs/trace.hpp"
#include "serve/advisor.hpp"
#include "serve/server.hpp"
#include "serve/verdict_cache.hpp"
#include "ts/transition_system.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/options.hpp"

using namespace pilot;

namespace {

using FamilyFn = circuits::CircuitCase (*)(std::int64_t n);

/// Built-in circuits from circuits/families, each scaled by a single `--gen-n`
/// knob (0 → the family's default size).  SAFE and UNSAFE variants are both
/// exposed so smoke tests can exercise every verdict without input files.
const std::map<std::string, FamilyFn>& family_registry() {
  static const std::map<std::string, FamilyFn> kRegistry = {
      {"counter-unsafe",
       [](std::int64_t n) {
         const std::uint64_t target = n > 0 ? static_cast<std::uint64_t>(n) : 10;
         return circuits::counter_unsafe(6, target);
       }},
      {"counter-wrap-safe",
       [](std::int64_t n) {
         const std::uint64_t limit = n > 0 ? static_cast<std::uint64_t>(n) : 10;
         return circuits::counter_wrap_safe(6, limit, limit + 5);
       }},
      {"lock-unsafe",
       [](std::int64_t n) {
         const std::size_t stages = n > 0 ? static_cast<std::size_t>(n) : 6;
         std::vector<std::uint64_t> digits;
         for (std::size_t i = 0; i < stages; ++i) digits.push_back(i % 4);
         return circuits::combination_lock_unsafe(2, digits);
       }},
      {"lock-safe",
       [](std::int64_t n) {
         const std::size_t stages = n > 0 ? static_cast<std::size_t>(n) : 6;
         std::vector<std::uint64_t> digits;
         for (std::size_t i = 0; i < stages; ++i) digits.push_back(i % 4);
         return circuits::combination_lock_safe(2, digits, stages / 2);
       }},
      {"token-ring-safe",
       [](std::int64_t n) {
         return circuits::token_ring_safe(n > 0 ? static_cast<std::size_t>(n)
                                                : 6);
       }},
      {"token-ring-unsafe",
       [](std::int64_t n) {
         return circuits::token_ring_unsafe(n > 0 ? static_cast<std::size_t>(n)
                                                  : 6);
       }},
      {"shift-register-unsafe",
       [](std::int64_t n) {
         return circuits::shift_register(
             n > 0 ? static_cast<std::size_t>(n) : 8, false);
       }},
      {"shift-register-safe",
       [](std::int64_t n) {
         return circuits::shift_register(
             n > 0 ? static_cast<std::size_t>(n) : 8, true);
       }},
      {"fifo-safe",
       [](std::int64_t n) {
         const std::uint64_t cap = n > 0 ? static_cast<std::uint64_t>(n) : 10;
         return circuits::fifo_safe(6, cap);
       }},
      {"fifo-unsafe",
       [](std::int64_t n) {
         const std::uint64_t cap = n > 0 ? static_cast<std::uint64_t>(n) : 10;
         return circuits::fifo_unsafe(6, cap);
       }},
      {"mutex-safe", [](std::int64_t) { return circuits::mutex_safe(); }},
      {"mutex-unsafe", [](std::int64_t) { return circuits::mutex_unsafe(); }},
  };
  return kRegistry;
}

std::vector<std::string> family_names() {
  std::vector<std::string> names;
  for (const auto& [name, fn] : family_registry()) names.push_back(name);
  return names;
}

/// `pilot certify <model> <certificate>` — the independent checker.
/// argv[0] is "certify" (main() shifts the program name off).
int run_certify(int argc, char** argv) {
  std::int64_t seed = 0;
  std::string log_level;
  OptionParser parser(
      "pilot certify — independently re-check a saved verdict certificate "
      "against its model.\n"
      "usage: pilot certify <model.aag|model.aig> <certificate>\n"
      "The checker deliberately uses a different solver configuration than "
      "the engines (trail reuse off, inprocessing off, fresh variable "
      "order), so a bug in the optimized hot path cannot vouch for itself.\n"
      "exit codes: 0 = certificate valid, 3 = usage/parse error, "
      "4 = certificate rejected");
  parser.add_int("seed", &seed, "checker randomization seed");
  parser.add_choice("log-level", &log_level,
                    {"silent", "error", "warn", "info", "debug"},
                    "log verbosity (overrides the PILOT_LOG environment "
                    "variable)");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(parser.help_text().c_str(), stdout);
      return 0;
    }
  }
  if (!parser.parse(argc, argv)) return 3;
  logcfg::init_from_env();
  if (!log_level.empty()) {
    logcfg::set_level(*logcfg::level_from_string(log_level));
  }

  if (parser.positional().size() != 2) {
    std::fprintf(stderr,
                 "pilot certify: expected exactly 2 arguments "
                 "(<model.aag|model.aig> <certificate>), got %zu\n"
                 "(try `pilot certify --help`)\n",
                 parser.positional().size());
    return 3;
  }
  const std::string& model_path = parser.positional()[0];
  const std::string& cert_path = parser.positional()[1];

  try {
    const aig::Aig model = aig::read_aiger_file(model_path);
    std::string error;
    const std::optional<cert::Certificate> c = cert::load(cert_path, &error);
    if (!c.has_value()) {
      std::fprintf(stderr, "pilot certify: %s: %s\n", cert_path.c_str(),
                   error.c_str());
      return 3;
    }
    const ts::TransitionSystem ts =
        ts::TransitionSystem::from_aig(model, c->property_index);
    const ic3::CheckOutcome outcome =
        cert::check(ts, *c, static_cast<std::uint64_t>(seed));
    if (!outcome.ok) {
      std::printf("REJECTED\n");
      std::fprintf(stderr, "[pilot] certificate (%s) rejected: %s\n",
                   cert::to_string(c->kind), outcome.reason.c_str());
      return 4;
    }
    std::printf("CERTIFIED\n");
    std::fprintf(stderr,
                 "[pilot] certificate (%s, property %zu) independently "
                 "checked against %s\n",
                 cert::to_string(c->kind), c->property_index,
                 model_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pilot certify: %s\n", e.what());
    return 3;
  }
}

// --- serve / submit ---------------------------------------------------------

/// SIGTERM/SIGINT trampoline for `pilot serve`: signal handlers may only
/// touch a sig_atomic_t flag, which the main thread polls and converts into
/// Server::request_stop() (the graceful drain).
volatile std::sig_atomic_t g_serve_stop = 0;
void handle_stop_signal(int) { g_serve_stop = 1; }

/// `pilot serve --socket PATH` — the Unix-socket verdict server.
/// argv[0] is "serve" (main() shifts the program name off).
int run_serve(int argc, char** argv) {
  std::string socket_path;
  std::string engine = "portfolio";
  std::int64_t budget_ms = 10000;
  std::int64_t seed = 0;
  std::int64_t queue = 64;
  std::int64_t jobs = 0;
  std::string cache_path;
  std::string history_path;
  std::string log_level;
  OptionParser parser(
      "pilot serve — long-running verdict server on a Unix stream socket.\n"
      "usage: pilot serve --socket PATH [options]\n"
      "One request per connection: 'ping', 'stats', 'stop', or\n"
      "'check <nbytes>' followed by <nbytes> of AIGER text (see `pilot "
      "submit`).\nEvery check runs the cache → advisor → engine pipeline; "
      "SIGTERM or a 'stop' request drains queued jobs before exiting.");
  parser.add_string("socket", &socket_path,
                    "filesystem path to listen on (required; a stale socket "
                    "file is replaced)");
  parser.add_string("engine", &engine,
                    "engine spec for cache misses (default portfolio)");
  parser.add_int("budget-ms", &budget_ms, "per-request wall-clock budget");
  parser.add_int("seed", &seed, "engine randomization seed");
  parser.add_int("queue", &queue,
                 "bounded request-queue capacity; a full queue answers "
                 "'error queue full' immediately");
  parser.add_int("jobs", &jobs,
                 "worker threads (0 = hardware concurrency)");
  parser.add_string("cache", &cache_path,
                    "JSONL verdict cache: serve revalidated hits, store new "
                    "certified verdicts (created when missing)");
  parser.add_string("history", &history_path,
                    "results db mined for engine/budget advice on cache "
                    "misses");
  parser.add_choice("log-level", &log_level,
                    {"silent", "error", "warn", "info", "debug"},
                    "log verbosity (overrides the PILOT_LOG environment "
                    "variable)");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(parser.help_text().c_str(), stdout);
      return 0;
    }
  }
  if (!parser.parse(argc, argv)) return 3;
  logcfg::init_from_env();
  if (!log_level.empty()) {
    logcfg::set_level(*logcfg::level_from_string(log_level));
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "pilot serve: --socket is required\n");
    return 3;
  }

  try {
    std::optional<serve::VerdictCache> cache;
    if (!cache_path.empty()) {
      cache.emplace(cache_path);
      std::fprintf(stderr, "[pilot] cache %s: %zu entries loaded\n",
                   cache_path.c_str(), cache->size());
    }
    serve::Advisor advisor;
    if (!history_path.empty()) {
      advisor = serve::Advisor::from_file(history_path);
      std::fprintf(stderr, "[pilot] advisor: %zu history rows from %s\n",
                   advisor.size(), history_path.c_str());
    }

    serve::ServerOptions so;
    so.socket_path = socket_path;
    so.engine_spec = engine;
    so.budget_ms = budget_ms;
    so.seed = static_cast<std::uint64_t>(seed);
    so.queue_capacity = queue > 0 ? static_cast<std::size_t>(queue) : 64;
    so.workers = jobs > 0 ? static_cast<std::size_t>(jobs) : 0;
    so.cache = cache.has_value() ? &*cache : nullptr;
    so.advisor = history_path.empty() ? nullptr : &advisor;

    serve::Server server(std::move(so));
    std::string error;
    if (!server.start(&error)) {
      std::fprintf(stderr, "pilot serve: %s\n", error.c_str());
      return 3;
    }
    std::signal(SIGTERM, handle_stop_signal);
    std::signal(SIGINT, handle_stop_signal);
    std::fprintf(stderr,
                 "[pilot] serving on %s (engine %s, budget %lld ms)\n",
                 socket_path.c_str(), engine.c_str(),
                 static_cast<long long>(budget_ms));
    while (g_serve_stop == 0 && !server.draining()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server.request_stop();
    server.wait();
    const serve::ServerStats st = server.stats();
    std::fprintf(stderr,
                 "[pilot] drained: accepted=%llu served=%llu errors=%llu "
                 "rejected_queue_full=%llu\n",
                 static_cast<unsigned long long>(st.accepted),
                 static_cast<unsigned long long>(st.served),
                 static_cast<unsigned long long>(st.errors),
                 static_cast<unsigned long long>(st.rejected_queue_full));
    if (cache.has_value()) {
      std::fprintf(stderr, "[pilot] cache: %s\n", cache->summary().c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pilot serve: %s\n", e.what());
    return 3;
  }
}

/// `pilot submit` — thin client for a running `pilot serve`.
int run_submit(int argc, char** argv) {
  std::string socket_path;
  std::string cmd;
  OptionParser parser(
      "pilot submit — send AIGER files (or a control command) to a running "
      "`pilot serve`.\n"
      "usage: pilot submit --socket PATH <model.aag|model.aig>...\n"
      "   or: pilot submit --socket PATH --cmd ping|stats|stop\n"
      "Each file is one 'check' request; the server's one-line response is "
      "printed per file.\nexit codes (single file): 0 = SAFE, 1 = UNSAFE, "
      "2 = UNKNOWN, 3 = error; several files: 0 unless any request failed");
  parser.add_string("socket", &socket_path,
                    "socket path of the running server (required)");
  parser.add_choice("cmd", &cmd, {"ping", "stats", "stop"},
                    "send a control command instead of checking files");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(parser.help_text().c_str(), stdout);
      return 0;
    }
  }
  if (!parser.parse(argc, argv)) return 3;
  if (socket_path.empty()) {
    std::fprintf(stderr, "pilot submit: --socket is required\n");
    return 3;
  }

  if (!cmd.empty()) {
    std::string error;
    const std::optional<std::string> resp =
        serve::client_request(socket_path, cmd + "\n", &error);
    if (!resp.has_value()) {
      std::fprintf(stderr, "pilot submit: %s\n", error.c_str());
      return 3;
    }
    std::fputs(resp->c_str(), stdout);
    return resp->rfind("ok", 0) == 0 ? 0 : 3;
  }

  if (parser.positional().empty()) {
    std::fprintf(stderr,
                 "usage: pilot submit --socket PATH <model.aag>...\n"
                 "(try `pilot submit --help`)\n");
    return 3;
  }
  int single_exit = 3;
  bool any_failed = false;
  for (const std::string& path : parser.positional()) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "pilot submit: cannot open %s\n", path.c_str());
      any_failed = true;
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    const std::optional<std::string> resp = serve::client_request(
        socket_path, serve::make_check_request(text.str()), &error);
    if (!resp.has_value()) {
      std::fprintf(stderr, "pilot submit: %s: %s\n", path.c_str(),
                   error.c_str());
      any_failed = true;
      continue;
    }
    std::printf("%s: %s", path.c_str(), resp->c_str());
    if (resp->rfind("ok", 0) != 0) {
      any_failed = true;
    } else if (resp->find("verdict=SAFE") != std::string::npos) {
      single_exit = 0;
    } else if (resp->find("verdict=UNSAFE") != std::string::npos) {
      single_exit = 1;
    } else {
      single_exit = 2;
    }
  }
  if (parser.positional().size() == 1) return any_failed ? 3 : single_exit;
  return any_failed ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Subcommand dispatch before flag parsing: `pilot certify <aig> <cert>`,
  // `pilot serve --socket PATH`, `pilot submit --socket PATH file.aag`.
  if (argc > 1 && std::string(argv[1]) == "certify") {
    return run_certify(argc - 1, argv + 1);
  }
  if (argc > 1 && std::string(argv[1]) == "serve") {
    return run_serve(argc - 1, argv + 1);
  }
  if (argc > 1 && std::string(argv[1]) == "submit") {
    return run_submit(argc - 1, argv + 1);
  }

  std::string engine = "ic3-ctg-pl";
  std::string gen_spec;
  std::string lift_sim;
  std::string ternary_filter;
  std::string sat_inprocess;
  std::int64_t gen_batch = -1;
  std::string gen_batch_adaptive;
  std::string cache_path;
  std::string history_path;
  bool exchange = false;
  std::int64_t budget_ms = 0;
  std::int64_t seed = 0;
  std::int64_t property = 0;
  bool verify_witness = true;
  bool show_stats = false;
  bool print_witness = false;
  bool list_families = false;
  std::string family;
  std::string family_out;
  std::string corpus_spec;
  std::int64_t jobs = 0;
  std::string out_path;
  std::string trace_path;
  double progress_secs = 0.0;
  std::string stats_json_path;
  std::string log_level;

  OptionParser parser(
      "pilot — SAT-based safety model checker: IC3 with lemma prediction "
      "from counterexamples to propagation (DAC'24).\n"
      "usage: pilot [options] <model.aag|model.aig>\n"
      "   or: pilot --family FAMILY [--family-out FILE] [options]\n"
      "   or: pilot certify <model.aag|model.aig> <certificate>\n"
      "   or: pilot serve --socket PATH [options]\n"
      "   or: pilot submit --socket PATH <model.aag>...\n"
      "exit codes: 0 = SAFE, 1 = UNSAFE, 2 = UNKNOWN, 3 = usage/internal "
      "error, 4 = certification failure");
  std::string engine_help = "engine configuration (-pl = predicted lemmas):";
  for (const std::string& name : engine::backend_names()) {
    engine_help += " " + name;
  }
  engine_help +=
      "; or portfolio[:a+b+c] to race several backends (first verdict "
      "wins), portfolio-x[:a+b+c] to race with lemma exchange";
  parser.add_string("engine", &engine, engine_help);
  std::string gen_help =
      "generalization strategy override for IC3-family engines:";
  for (const std::string& name : ic3::gen_strategy_names()) {
    gen_help += " " + name;
  }
  gen_help += "; dynamic takes ':window,threshold' (e.g. dynamic:16,0.4)";
  parser.add_string("gen", &gen_spec, gen_help);
  parser.add_choice("lift-sim", &lift_sim, {"packed", "byte"},
                    "ternary-simulation backend for the lifter: bit-packed "
                    "(32 patterns/word, default) or the byte-wise reference "
                    "simulator (A/B)");
  parser.add_choice("gen-ternary-filter", &ternary_filter, {"on", "off"},
                    "ternary drop-filter in the MIC core: skip "
                    "relative-induction solves a cached counterexample "
                    "already defeats (default on; off for A/B)");
  parser.add_choice("sat-inprocess", &sat_inprocess, {"on", "off"},
                    "SAT inprocessing: lemma-install subsumption and frame "
                    "boundary vivification (IC3), failed-literal probing "
                    "and binary-SCC collapsing (BMC/k-induction); default "
                    "on, off for A/B");
  parser.add_int("gen-batch", &gen_batch,
                 "batched generalization probes: MIC candidate drops "
                 "answered per SAT solve (1 = sequential, default 4; ctg "
                 "generalization is never batched)");
  parser.add_choice("gen-batch-adaptive", &gen_batch_adaptive, {"on", "off"},
                    "size MIC probe batches from the observed probe failure "
                    "rate instead of the fixed --gen-batch width (default "
                    "off)");
  parser.add_string("cache", &cache_path,
                    "JSONL verdict cache keyed by the canonical AIG hash: "
                    "serve a hit only after its stored certificate "
                    "re-checks, store new certified verdicts (created when "
                    "missing)");
  parser.add_string("history", &history_path,
                    "batch mode: results db mined for engine/budget advice "
                    "on cache misses");
  parser.add_flag("exchange", &exchange,
                  "portfolio runs: share validated lemmas between the "
                  "racing IC3 backends (same as the portfolio-x spec)");
  parser.add_int("budget-ms", &budget_ms, "wall-clock budget, 0 = unlimited");
  parser.add_int("seed", &seed, "engine randomization seed");
  parser.add_int("property", &property, "property index (bad array / output)");
  parser.add_flag("verify-witness", &verify_witness,
                  "re-check the produced certificate (default on; "
                  "--no-verify-witness to skip)");
  std::string certify_out;
  parser.add_string("certify", &certify_out,
                    "emit the verdict's certificate and independently "
                    "re-check it (exit 4 on failure).  Single-file mode: "
                    "certificate file path (invariant certificates also "
                    "write a <path>.aag certificate circuit); batch mode: "
                    "existing directory for per-case certificates");
  parser.add_flag("stats", &show_stats, "print engine statistics to stderr");
  parser.add_flag("witness", &print_witness,
                  "print the certificate in AIGER/HWMCC witness format");
  parser.add_choice("family", &family, family_names(),
                    "check a built-in circuit family instead of a file");
  std::int64_t family_n = 0;
  parser.add_int("family-n", &family_n,
                 "size parameter for --family (0 = default)");
  parser.add_string("family-out", &family_out,
                    "write the generated circuit as AIGER to this path and "
                    "exit without checking");
  parser.add_flag("list-families", &list_families,
                  "list built-in circuit families");
  parser.add_string("corpus", &corpus_spec,
                    "batch-check a corpus: a manifest.json, a directory of "
                    ".aig/.aag files, or suite:tiny|quick|full");
  parser.add_int("jobs", &jobs,
                 "batch mode: worker threads (0 = hardware concurrency)");
  parser.add_string("out", &out_path,
                    "batch mode: append results-db JSONL rows to this file "
                    "(default: stdout)");
  parser.add_string("trace", &trace_path,
                    "write a Chrome trace-event JSON of the run to this "
                    "path (open in Perfetto / chrome://tracing)");
  parser.add_opt_double("progress", &progress_secs, 2.0,
                        "print a live-progress heartbeat to stderr every "
                        "<double> seconds (bare --progress = every 2s); "
                        "portfolio runs print one line per backend");
  parser.add_string("stats-json", &stats_json_path,
                    "write the run's verdict, timing, and engine statistics "
                    "(including per-phase times) as JSON to this path");
  parser.add_choice("log-level", &log_level,
                    {"silent", "error", "warn", "info", "debug"},
                    "log verbosity (overrides the PILOT_LOG environment "
                    "variable)");

  // OptionParser::parse returns false for both --help and errors; handle
  // --help up front so `pilot --help` exits 0.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(parser.help_text().c_str(), stdout);
      return 0;
    }
  }
  if (!parser.parse(argc, argv)) return 3;

  // PILOT_LOG from the environment first; an explicit --log-level wins.
  logcfg::init_from_env();
  if (!log_level.empty()) {
    logcfg::set_level(*logcfg::level_from_string(log_level));
  }
  if (!trace_path.empty()) obs::set_trace_enabled(true);

  if (list_families) {
    for (const auto& name : family_names()) std::printf("%s\n", name.c_str());
    return 0;
  }

  // Exports the (process-global) trace once the run is over; shared by the
  // batch and single-check paths.
  const auto dump_trace = [&trace_path]() {
    if (trace_path.empty()) return true;
    if (!obs::write_chrome_trace(trace_path)) {
      std::fprintf(stderr, "pilot: cannot write trace to %s\n",
                   trace_path.c_str());
      return false;
    }
    std::fprintf(stderr,
                 "[pilot] trace written to %s (open in Perfetto or "
                 "chrome://tracing)\n",
                 trace_path.c_str());
    return true;
  };

  try {
    // Validate the strategy spec before any work: an unknown name or a
    // malformed ':args' suffix names the offending token and lists the
    // registered strategies.
    if (!gen_spec.empty()) ic3::validate_gen_spec(gen_spec);

    if (gen_batch == 0 || gen_batch < -1) {
      std::fprintf(stderr,
                   "pilot: --gen-batch must be >= 1 (1 = sequential)\n");
      return 3;
    }

    // --exchange only changes portfolio races; say so instead of silently
    // running a single engine the user believes is sharing lemmas.
    if (exchange && !engine::match_portfolio_spec(engine).has_value()) {
      std::fprintf(stderr,
                   "pilot: --exchange has no effect on single engine '%s'; "
                   "use --engine portfolio[:a+b+c] or portfolio-x[:a+b+c]\n",
                   engine.c_str());
    }

    // --- batch mode: --corpus and/or several input files -------------------
    if (!corpus_spec.empty() || parser.positional().size() > 1) {
      if (!family.empty() || !family_out.empty()) {
        std::fprintf(stderr, "pilot: --family and batch mode are exclusive\n");
        return 3;
      }
      std::vector<corpus::Case> cases;
      if (!corpus_spec.empty()) {
        cases = corpus::resolve_corpus(corpus_spec);
      }
      for (const std::string& path : parser.positional()) {
        corpus::Case c;
        const std::size_t slash = path.find_last_of("/\\");
        const std::string base =
            slash == std::string::npos ? path : path.substr(slash + 1);
        const std::size_t dot = base.find_last_of('.');
        c.name = dot == std::string::npos ? base : base.substr(0, dot);
        c.family = "aiger";
        c.source = path;
        c.load = [path]() { return aig::read_aiger_file(path); };
        cases.push_back(std::move(c));
      }
      if (cases.empty()) {
        std::fprintf(stderr, "pilot: corpus '%s' has no cases\n",
                     corpus_spec.c_str());
        return 3;
      }

      check::RunMatrixOptions mo;
      mo.budget_ms = budget_ms;
      mo.gen_spec = gen_spec;
      if (!lift_sim.empty()) {
        mo.lift_sim = lift_sim == "byte" ? ic3::Config::LiftSim::kByte
                                         : ic3::Config::LiftSim::kPacked;
      }
      if (!ternary_filter.empty()) {
        mo.gen_ternary_filter = ternary_filter == "on";
      }
      if (!sat_inprocess.empty()) mo.sat_inprocess = sat_inprocess == "on";
      if (gen_batch >= 1) mo.gen_batch = static_cast<int>(gen_batch);
      if (!gen_batch_adaptive.empty()) {
        mo.gen_batch_adaptive = gen_batch_adaptive == "on";
      }
      std::optional<serve::VerdictCache> cache;
      if (!cache_path.empty()) {
        cache.emplace(cache_path);
        mo.cache = &*cache;
        std::fprintf(stderr, "[pilot] cache %s: %zu entries loaded\n",
                     cache_path.c_str(), cache->size());
      }
      serve::Advisor advisor;
      if (!history_path.empty()) {
        advisor = serve::Advisor::from_file(history_path);
        mo.advisor = &advisor;
        std::fprintf(stderr, "[pilot] advisor: %zu history rows from %s\n",
                     advisor.size(), history_path.c_str());
      }
      mo.share_lemmas = exchange;
      mo.seed = static_cast<std::uint64_t>(seed);
      mo.jobs = static_cast<std::size_t>(jobs);
      mo.verify_witness = verify_witness;
      if (!certify_out.empty()) {
        mo.certify = true;
        mo.cert_dir = certify_out;
      }
      mo.strict = false;  // report mismatches via the exit code instead
      const std::vector<check::RunRecord> records =
          check::run_matrix(cases, {engine}, mo);

      const corpus::RunContext ctx = corpus::make_run_context(
          corpus_spec.empty() ? "files" : corpus_spec, budget_ms,
          static_cast<std::uint64_t>(seed), gen_spec);
      corpus::ResultsDb::Writer writer(out_path);
      for (const check::RunRecord& r : records) {
        writer.append({r, ctx});
        if (!r.error.empty()) {
          std::fprintf(stderr, "[pilot] %s: ERROR %s\n", r.case_name.c_str(),
                       r.error.c_str());
        }
      }
      if (!dump_trace()) return 3;
      std::size_t cert_failures = 0;
      for (const check::RunRecord& r : records) {
        if (!r.cert_status.empty() && r.cert_status != "ok") ++cert_failures;
      }
      const corpus::CampaignSummary s = corpus::summarize_campaign(records);
      std::fprintf(stderr,
                   "[pilot] %zu cases with %s: %zu solved, %zu unknown, "
                   "%zu mismatches, %zu errors%s%s\n",
                   s.total, engine.c_str(), s.solved, s.unknown,
                   s.mismatches, s.errors,
                   out_path.empty() ? "" : ", rows appended to ",
                   out_path.c_str());
      if (cache.has_value()) {
        std::fprintf(stderr, "[pilot] cache: %s\n",
                     cache->summary().c_str());
      }
      if (cert_failures > 0) {
        std::fprintf(stderr, "[pilot] %zu certificate check failure%s\n",
                     cert_failures, cert_failures == 1 ? "" : "s");
        return 4;
      }
      return s.exit_code();
    }

    aig::Aig model;
    std::string source;
    if (!family.empty()) {
      if (!parser.positional().empty()) {
        std::fprintf(stderr,
                     "pilot: --family and a model file are exclusive\n");
        return 3;
      }
      const circuits::CircuitCase c = family_registry().at(family)(family_n);
      model = c.aig;
      source = "family:" + c.name;
      if (!family_out.empty()) {
        aig::write_aiger_file(model, family_out);
        std::fprintf(stderr, "pilot: wrote %s (%s, expected %s)\n",
                     family_out.c_str(), c.name.c_str(),
                     c.expected_safe ? "SAFE" : "UNSAFE");
        return 0;
      }
    } else {
      if (!family_out.empty()) {
        std::fprintf(stderr, "pilot: --family-out requires --family\n");
        return 3;
      }
      if (parser.positional().size() != 1) {
        std::fprintf(stderr,
                     "usage: pilot [options] <model.aag|model.aig>\n"
                     "(try `pilot --help`)\n");
        return 3;
      }
      source = parser.positional()[0];
      model = aig::read_aiger_file(source);
    }

    std::fprintf(stderr,
                 "[pilot] %s: %zu inputs, %zu latches, %zu ands, %zu bad, "
                 "%zu constraints\n",
                 source.c_str(), model.num_inputs(), model.num_latches(),
                 model.num_ands(), model.bads().size(),
                 model.constraints().size());

    check::CheckOptions opts;
    opts.engine_spec = engine;  // resolved against the backend registry
    opts.gen_spec = gen_spec;
    if (!lift_sim.empty()) {
      opts.lift_sim = lift_sim == "byte" ? ic3::Config::LiftSim::kByte
                                         : ic3::Config::LiftSim::kPacked;
    }
    if (!ternary_filter.empty()) {
      opts.gen_ternary_filter = ternary_filter == "on";
    }
    if (!sat_inprocess.empty()) opts.sat_inprocess = sat_inprocess == "on";
    if (gen_batch >= 1) opts.gen_batch = static_cast<int>(gen_batch);
    if (!gen_batch_adaptive.empty()) {
      opts.gen_batch_adaptive = gen_batch_adaptive == "on";
    }
    opts.share_lemmas = exchange;
    opts.budget_ms = budget_ms;
    opts.seed = static_cast<std::uint64_t>(seed);
    opts.property_index = static_cast<std::size_t>(property);
    opts.verify_witness = verify_witness;
    opts.progress_interval = progress_secs;
    // Build the transition system once; witness rendering reuses it.
    const ts::TransitionSystem ts =
        ts::TransitionSystem::from_aig(model, opts.property_index);

    if (!history_path.empty()) {
      std::fprintf(stderr,
                   "[pilot] --history only informs batch mode (--corpus); "
                   "ignored for a single model\n");
    }
    std::optional<serve::VerdictCache> cache;
    std::string model_hash;
    if (!cache_path.empty()) {
      cache.emplace(cache_path);
      model_hash = aig::canonical_hash_hex(model);
      const std::optional<serve::CacheEntry> hit =
          cache->lookup(model_hash, ts, opts.seed);
      if (hit.has_value()) {
        std::printf("%s\n", ic3::to_string(hit->verdict));
        if (print_witness) {
          if (hit->verdict == ic3::Verdict::kSafe) {
            std::printf("0\nb%zu\n.\n", opts.property_index);
          } else {
            std::string why;
            const std::optional<cert::Certificate> c =
                cert::parse(hit->cert_text, &why);
            if (c.has_value() &&
                c->kind == cert::Certificate::Kind::kWitness) {
              std::fputs(c->witness.c_str(), stdout);
            }
          }
        }
        std::fprintf(stderr,
                     "[pilot] cache hit: solved by %s in %.3fs "
                     "(certificate revalidated against this model)\n",
                     hit->engine.c_str(), hit->seconds);
        if (show_stats) {
          std::fprintf(stderr, "[pilot] cache: %s\n",
                       cache->summary().c_str());
        }
        if (!dump_trace()) return 3;
        switch (hit->verdict) {
          case ic3::Verdict::kSafe: return 0;
          case ic3::Verdict::kUnsafe: return 1;
          default: return 2;
        }
      }
    }

    const check::CheckResult r = check::check_ts(ts, opts);

    std::printf("%s\n", ic3::to_string(r.verdict));
    if (print_witness) {
      if (r.verdict == ic3::Verdict::kUnsafe && r.trace.has_value()) {
        std::fputs(
            ic3::to_aiger_witness(ts, *r.trace, opts.property_index).c_str(),
            stdout);
      } else if (r.verdict == ic3::Verdict::kSafe) {
        std::printf("0\nb%zu\n.\n", opts.property_index);
      }
    }
    std::fprintf(stderr, "[pilot] %.3fs, frames=%zu%s\n", r.seconds, r.frames,
                 r.witness_checked ? ", witness verified" : "");
    if (!r.backend_timings.empty()) {
      std::fprintf(stderr, "[pilot] portfolio winner: %s\n",
                   r.winner.empty() ? "(none)" : r.winner.c_str());
      for (const engine::BackendTiming& t : r.backend_timings) {
        std::fprintf(stderr, "[pilot]   %-12s %-7s %8.3fs%s\n", t.name.c_str(),
                     ic3::to_string(t.verdict), t.seconds,
                     t.winner ? "  << winner" : (t.cancelled ? "  (cancelled)"
                                                             : ""));
        if (t.lemmas_published + t.lemmas_imported + t.lemmas_rejected > 0) {
          std::fprintf(stderr,
                       "[pilot]     exchange: published=%llu imported=%llu "
                       "rejected=%llu\n",
                       static_cast<unsigned long long>(t.lemmas_published),
                       static_cast<unsigned long long>(t.lemmas_imported),
                       static_cast<unsigned long long>(t.lemmas_rejected));
        }
      }
      if (r.exchange.published + r.exchange.deduped + r.exchange.delivered >
          0) {
        std::fprintf(stderr,
                     "[pilot] exchange hub: published=%llu deduped=%llu "
                     "delivered=%llu\n",
                     static_cast<unsigned long long>(r.exchange.published),
                     static_cast<unsigned long long>(r.exchange.deduped),
                     static_cast<unsigned long long>(r.exchange.delivered));
      }
    }
    // A produced-but-invalid witness/invariant is a certification failure
    // (exit 4), distinct from usage/internal errors (exit 3).
    if (!r.witness_error.empty()) {
      std::fprintf(stderr, "[pilot] WITNESS ERROR: %s\n",
                   r.witness_error.c_str());
      return 4;
    }
    if (!certify_out.empty()) {
      if (r.verdict == ic3::Verdict::kUnknown) {
        std::fprintf(stderr,
                     "[pilot] no certificate written: verdict is UNKNOWN\n");
      } else {
        std::string why;
        const std::optional<cert::Certificate> c = cert::from_verdict(
            ts, r.verdict, r.invariant, r.trace, r.kind_k, r.kind_simple_path,
            opts.property_index, &why);
        if (!c.has_value()) {
          std::fprintf(stderr, "[pilot] CERTIFICATION FAILED: %s\n",
                       why.c_str());
          return 4;
        }
        const ic3::CheckOutcome outcome = cert::check(ts, *c, opts.seed);
        if (!outcome.ok) {
          std::fprintf(stderr, "[pilot] CERTIFICATION FAILED: %s\n",
                       outcome.reason.c_str());
          return 4;
        }
        if (!cert::save(*c, certify_out)) {
          std::fprintf(stderr, "pilot: cannot write certificate to %s\n",
                       certify_out.c_str());
          return 3;
        }
        std::fprintf(stderr,
                     "[pilot] certificate (%s) independently checked, "
                     "written to %s\n",
                     cert::to_string(c->kind), certify_out.c_str());
        if (c->kind == cert::Certificate::Kind::kInvariant) {
          const std::string circuit_path = certify_out + ".aag";
          aig::write_aiger_file(cert::certificate_circuit(ts, *c),
                                circuit_path);
          std::fprintf(stderr,
                       "[pilot] certificate circuit written to %s (3 bad "
                       "outputs; all must be unsatisfiable)\n",
                       circuit_path.c_str());
        }
      }
    }
    if (cache.has_value() && r.verdict != ic3::Verdict::kUnknown) {
      std::string why;
      const std::optional<cert::Certificate> c = cert::from_verdict(
          ts, r.verdict, r.invariant, r.trace, r.kind_k, r.kind_simple_path,
          opts.property_index, &why);
      if (c.has_value() && cert::check(ts, *c, opts.seed).ok) {
        serve::CacheEntry entry;
        entry.hash = model_hash;
        entry.verdict = r.verdict;
        entry.engine = engine;
        entry.seconds = r.seconds;
        entry.frames = r.frames;
        entry.cert_text = cert::to_text(*c);
        entry.case_name = source;
        entry.timestamp = corpus::now_utc_iso8601();
        cache->store(entry);
      } else {
        // Not cacheable (no certificate, or it failed its own re-check);
        // the verdict itself is still reported normally.
        std::fprintf(stderr, "[pilot] verdict not cached: %s\n",
                     why.empty() ? "certificate re-check failed"
                                 : why.c_str());
      }
    }
    if (show_stats) {
      std::fprintf(stderr, "[pilot] %s\n", r.stats.summary().c_str());
      if (!r.stats.phases.empty()) {
        std::fputs(r.stats.phases.table(r.stats.time_total).c_str(), stderr);
      }
      if (cache.has_value()) {
        std::fprintf(stderr, "[pilot] cache: %s\n",
                     cache->summary().c_str());
      }
    }
    if (!dump_trace()) return 3;
    if (!stats_json_path.empty()) {
      json::Object o;
      o["engine"] = engine;
      o["verdict"] = ic3::to_string(r.verdict);
      o["seconds"] = r.seconds;
      o["frames"] = r.frames;
      if (!r.winner.empty()) o["winner"] = r.winner;
      o["stats"] = corpus::stats_to_json(r.stats);
      const std::string text = json::Value(std::move(o)).dump() + "\n";
      std::FILE* f = std::fopen(stats_json_path.c_str(), "wb");
      const bool wrote =
          f != nullptr &&
          std::fwrite(text.data(), 1, text.size(), f) == text.size();
      const bool closed = f != nullptr && std::fclose(f) == 0;
      if (!wrote || !closed) {
        std::fprintf(stderr, "pilot: cannot write stats to %s\n",
                     stats_json_path.c_str());
        return 3;
      }
      std::fprintf(stderr, "[pilot] stats written to %s\n",
                   stats_json_path.c_str());
    }
    switch (r.verdict) {
      case ic3::Verdict::kSafe: return 0;
      case ic3::Verdict::kUnsafe: return 1;
      default: return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pilot: %s\n", e.what());
    return 3;
  }
}
