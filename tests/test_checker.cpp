/// Check-facade tests: engine-kind mapping, the paper-configuration table,
/// option plumbing (budgets, overrides), and witness propagation through
/// CheckResult.
#include <gtest/gtest.h>

#include "check/checker.hpp"
#include "circuits/builder.hpp"
#include "circuits/families.hpp"
#include "engine/backend.hpp"

namespace pilot::check {
namespace {

TEST(Checker, EngineKindStringsRoundTrip) {
  for (const EngineKind k :
       {EngineKind::kIc3Down, EngineKind::kIc3DownPl, EngineKind::kIc3Ctg,
        EngineKind::kIc3CtgPl, EngineKind::kIc3Cav23, EngineKind::kPdr,
        EngineKind::kBmc, EngineKind::kKinduction, EngineKind::kPortfolio}) {
    EXPECT_EQ(engine_kind_from_string(to_string(k)), k);
  }
  EXPECT_THROW((void)engine_kind_from_string("nope"), std::invalid_argument);
}

TEST(Checker, EnumKindsResolveInBackendRegistry) {
  // The enum is a shim over the registry: every kind except kPortfolio
  // (which is a scheduler, not a backend) must name a registered backend.
  for (const EngineKind k :
       {EngineKind::kIc3Down, EngineKind::kIc3DownPl, EngineKind::kIc3Ctg,
        EngineKind::kIc3CtgPl, EngineKind::kIc3Cav23, EngineKind::kPdr,
        EngineKind::kBmc, EngineKind::kKinduction}) {
    EXPECT_TRUE(engine::backend_registered(to_string(k))) << to_string(k);
  }
}

TEST(Checker, EngineSpecSelectsBackend) {
  // k-induction (unlike BMC) can prove the constrained shift register safe.
  const auto cc = circuits::shift_register(5, true);
  CheckOptions opts;
  opts.engine_spec = "kind";
  opts.budget_ms = 30000;
  EXPECT_EQ(check_aig(cc.aig, opts).verdict, ic3::Verdict::kSafe);
}

TEST(Checker, PaperConfigurationsMatchTable1Order) {
  const auto& configs = paper_configurations();
  ASSERT_EQ(configs.size(), 6u);
  EXPECT_EQ(configs[0], "ic3-down");     // RIC3
  EXPECT_EQ(configs[1], "ic3-down-pl");  // RIC3-pl
  EXPECT_EQ(configs[2], "ic3-ctg");      // IC3ref
  EXPECT_EQ(configs[3], "ic3-ctg-pl");   // IC3ref-pl
  EXPECT_EQ(configs[4], "ic3-cav23");    // IC3ref-CAV23
  EXPECT_EQ(configs[5], "pdr");          // ABC-PDR
  // Every paper spec resolves in the registry.
  for (const std::string& spec : configs) {
    EXPECT_TRUE(engine::backend_registered(spec)) << spec;
  }
}

TEST(Checker, ConfigForSetsTheRightKnobs) {
  const ic3::Config down = config_for(EngineKind::kIc3Down, 1);
  EXPECT_EQ(down.gen_mode, ic3::GenMode::kDown);
  EXPECT_FALSE(down.predict_lemmas);

  const ic3::Config down_pl = config_for(EngineKind::kIc3DownPl, 1);
  EXPECT_EQ(down_pl.gen_mode, ic3::GenMode::kDown);
  EXPECT_TRUE(down_pl.predict_lemmas);

  const ic3::Config ctg_pl = config_for(EngineKind::kIc3CtgPl, 1);
  EXPECT_EQ(ctg_pl.gen_mode, ic3::GenMode::kCtg);
  EXPECT_TRUE(ctg_pl.predict_lemmas);

  const ic3::Config cav = config_for(EngineKind::kIc3Cav23, 1);
  EXPECT_EQ(cav.gen_mode, ic3::GenMode::kCav23);

  const ic3::Config pdr = config_for(EngineKind::kPdr, 1);
  EXPECT_EQ(pdr.gen_mode, ic3::GenMode::kDown);
  EXPECT_EQ(pdr.ctg_max_ctgs, 0);
  EXPECT_EQ(pdr.lift_mode, ic3::Config::LiftMode::kTernary);

  EXPECT_THROW((void)config_for(EngineKind::kBmc, 1), std::invalid_argument);
}

TEST(Checker, ResultCarriesVerifiedTrace) {
  const auto cc = circuits::counter_unsafe(4, 6);
  CheckOptions opts;
  opts.engine_spec = "ic3-ctg-pl";
  const CheckResult r = check_aig(cc.aig, opts);
  EXPECT_EQ(r.verdict, ic3::Verdict::kUnsafe);
  ASSERT_TRUE(r.trace.has_value());
  EXPECT_TRUE(r.witness_checked);
  EXPECT_TRUE(r.witness_error.empty());
  EXPECT_FALSE(r.invariant.has_value());
}

TEST(Checker, ResultCarriesVerifiedInvariant) {
  const auto cc = circuits::token_ring_safe(5);
  CheckOptions opts;
  opts.engine_spec = "ic3-down";
  const CheckResult r = check_aig(cc.aig, opts);
  EXPECT_EQ(r.verdict, ic3::Verdict::kSafe);
  ASSERT_TRUE(r.invariant.has_value());
  EXPECT_TRUE(r.witness_checked);
  EXPECT_FALSE(r.trace.has_value());
}

TEST(Checker, BmcProducesTraceButCannotProve) {
  CheckOptions opts;
  opts.engine_spec = "bmc";
  opts.budget_ms = 3000;
  const CheckResult unsafe_r =
      check_aig(circuits::counter_unsafe(4, 6).aig, opts);
  EXPECT_EQ(unsafe_r.verdict, ic3::Verdict::kUnsafe);
  EXPECT_TRUE(unsafe_r.trace.has_value());

  const CheckResult safe_r =
      check_aig(circuits::token_ring_safe(4).aig, opts);
  EXPECT_EQ(safe_r.verdict, ic3::Verdict::kUnknown);  // bound/budget only
}

TEST(Checker, OverridesTakePrecedence) {
  // Engine says ctg+pl, but the override forces prediction off — the
  // stats must show zero prediction queries.
  const auto cc = circuits::counter_wrap_safe(5, 16, 30);
  CheckOptions opts;
  opts.engine_spec = "ic3-ctg-pl";
  ic3::Config override_cfg = config_for(EngineKind::kIc3CtgPl, 0);
  override_cfg.predict_lemmas = false;
  opts.ic3_overrides = override_cfg;
  const CheckResult r = check_aig(cc.aig, opts);
  EXPECT_EQ(r.verdict, ic3::Verdict::kSafe);
  EXPECT_EQ(r.stats.num_prediction_queries, 0u);
}

TEST(Checker, BudgetYieldsUnknown) {
  // A case that certainly needs more than 1 ms.
  const auto cc = circuits::counter_wrap_safe(10, 320, 900);
  CheckOptions opts;
  opts.engine_spec = "ic3-ctg";
  opts.budget_ms = 1;
  const CheckResult r = check_aig(cc.aig, opts);
  EXPECT_EQ(r.verdict, ic3::Verdict::kUnknown);
}

TEST(Checker, PropertyIndexSelectsAmongBads) {
  // Two bad properties: bad0 = count==2 (reachable), bad1 = constant false.
  aig::Aig a;
  const circuits::Word count = circuits::make_latches(a, 3, 0, "c");
  circuits::connect(a, count, circuits::increment(a, count));
  a.add_bad(circuits::equals_const(a, count, 2));
  a.add_bad(aig::AigLit::constant(false));
  CheckOptions opts;
  opts.engine_spec = "ic3-down";
  opts.property_index = 0;
  EXPECT_EQ(check_aig(a, opts).verdict, ic3::Verdict::kUnsafe);
  opts.property_index = 1;
  EXPECT_EQ(check_aig(a, opts).verdict, ic3::Verdict::kSafe);
}

}  // namespace
}  // namespace pilot::check
