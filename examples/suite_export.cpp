/// \file suite_export.cpp
/// Exports the synthetic benchmark suite as AIGER files — the bridge for
/// cross-checking pilot against external model checkers (ABC, IC3ref,
/// nuXmv): export, run the external tool, diff the verdicts.
///
///   suite_export --suite quick --dir /tmp/pilot_suite [--format aag|aig]
///
/// Also writes a `manifest.tsv` with the expected verdict and, where known,
/// the exact counterexample depth of every case.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "aig/aiger_io.hpp"
#include "circuits/suite.hpp"
#include "util/options.hpp"

using namespace pilot;

int main(int argc, char** argv) {
  std::string suite = "quick";
  std::string dir = "/tmp/pilot_suite";
  std::string format = "aag";
  OptionParser parser("suite_export — write the benchmark suite as AIGER");
  parser.add_choice("suite", &suite, {"tiny", "quick", "full"},
                    "suite size");
  parser.add_string("dir", &dir, "output directory");
  parser.add_choice("format", &format, {"aag", "aig"},
                    "AIGER flavour (ascii or binary)");
  if (!parser.parse(argc, argv)) return 1;

  const auto cases =
      circuits::make_suite(circuits::suite_size_from_string(suite));
  std::filesystem::create_directories(dir);

  std::ofstream manifest(dir + "/manifest.tsv");
  manifest << "name\tfamily\texpected\tcex_depth\tfile\n";
  for (const auto& cc : cases) {
    const std::string file = cc.name + "." + format;
    aig::write_aiger_file(cc.aig, dir + "/" + file);
    manifest << cc.name << "\t" << cc.family << "\t"
             << (cc.expected_safe ? "safe" : "unsafe") << "\t"
             << cc.expected_cex_length << "\t" << file << "\n";
  }
  std::printf("wrote %zu cases to %s (manifest.tsv included)\n",
              cases.size(), dir.c_str());
  return 0;
}
