/// \file table2_success_rates.cpp
/// Reproduces **Table 2: Average Success Rates** for the two `-pl`
/// configurations:
///   SR_lp  = N_sp / N_p   (lemma-prediction success per prediction query)
///   SR_fp  = N_fp / N_g   (generalizations that found a failed-push parent)
///   SR_adv = N_sp / N_g   (generalizations that skipped variable dropping)
///
/// Paper values (HWMCC, 1000 s): RIC3-pl 38.61 / 40.67 / 24.03 %,
/// IC3ref-pl 31.5 / 37.81 / 19.46 %.  Rates are averaged per case (cases
/// with zero generalizations are skipped), matching the paper's
/// "average success rates" phrasing.
#include "bench/bench_common.hpp"

using namespace pilot;
using namespace pilot::bench;

int main(int argc, char** argv) {
  BenchArgs args;
  if (!parse_bench_args(argc, argv,
                        "table2_success_rates — Table 2: Average Success "
                        "Rates",
                        &args)) {
    return 1;
  }
  const std::vector<std::string> engines{"ic3-down-pl", "ic3-ctg-pl"};
  const auto records = run_suite(args, engines);
  const auto groups = by_engine(records);

  std::printf("Table 2: Average Success Rates  (budget %lld ms)\n\n",
              static_cast<long long>(args.budget_ms));
  std::printf("%-14s %12s %12s %12s %10s\n", "Configuration", "Avg SR_lp",
              "Avg SR_fp", "Avg SR_adv", "cases");
  for (const std::string& spec : engines) {
    double sum_lp = 0.0;
    double sum_fp = 0.0;
    double sum_adv = 0.0;
    int counted = 0;
    for (const auto& r : groups.at(spec)) {
      if (r.stats.num_generalizations == 0) continue;
      sum_lp += r.stats.sr_lp();
      sum_fp += r.stats.sr_fp();
      sum_adv += r.stats.sr_adv();
      ++counted;
    }
    if (counted == 0) counted = 1;
    std::printf("%-14s %11.2f%% %11.2f%% %11.2f%% %10d\n",
                paper_label(spec).c_str(), 100.0 * sum_lp / counted,
                100.0 * sum_fp / counted, 100.0 * sum_adv / counted,
                counted);
  }
  std::printf(
      "\nShape check vs paper: SR_fp > SR_lp > SR_adv in rough magnitude\n"
      "(paper: 38.61/40.67/24.03 for RIC3-pl, 31.5/37.81/19.46 for "
      "IC3ref-pl);\nprediction succeeds for a substantial fraction of "
      "generalizations once\na failed-push parent is found.\n");
  return 0;
}
